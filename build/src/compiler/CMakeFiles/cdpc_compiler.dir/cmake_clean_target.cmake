file(REMOVE_RECURSE
  "libcdpc_compiler.a"
)
