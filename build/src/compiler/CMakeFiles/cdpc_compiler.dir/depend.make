# Empty dependencies file for cdpc_compiler.
# This may be replaced when dependencies are built.
