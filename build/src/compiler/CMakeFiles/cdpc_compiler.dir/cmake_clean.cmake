file(REMOVE_RECURSE
  "CMakeFiles/cdpc_compiler.dir/aligner.cc.o"
  "CMakeFiles/cdpc_compiler.dir/aligner.cc.o.d"
  "CMakeFiles/cdpc_compiler.dir/analysis.cc.o"
  "CMakeFiles/cdpc_compiler.dir/analysis.cc.o.d"
  "CMakeFiles/cdpc_compiler.dir/compiler.cc.o"
  "CMakeFiles/cdpc_compiler.dir/compiler.cc.o.d"
  "CMakeFiles/cdpc_compiler.dir/parallelizer.cc.o"
  "CMakeFiles/cdpc_compiler.dir/parallelizer.cc.o.d"
  "CMakeFiles/cdpc_compiler.dir/prefetcher.cc.o"
  "CMakeFiles/cdpc_compiler.dir/prefetcher.cc.o.d"
  "CMakeFiles/cdpc_compiler.dir/summaries_io.cc.o"
  "CMakeFiles/cdpc_compiler.dir/summaries_io.cc.o.d"
  "CMakeFiles/cdpc_compiler.dir/transpose.cc.o"
  "CMakeFiles/cdpc_compiler.dir/transpose.cc.o.d"
  "libcdpc_compiler.a"
  "libcdpc_compiler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpc_compiler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
