
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/compiler/aligner.cc" "src/compiler/CMakeFiles/cdpc_compiler.dir/aligner.cc.o" "gcc" "src/compiler/CMakeFiles/cdpc_compiler.dir/aligner.cc.o.d"
  "/root/repo/src/compiler/analysis.cc" "src/compiler/CMakeFiles/cdpc_compiler.dir/analysis.cc.o" "gcc" "src/compiler/CMakeFiles/cdpc_compiler.dir/analysis.cc.o.d"
  "/root/repo/src/compiler/compiler.cc" "src/compiler/CMakeFiles/cdpc_compiler.dir/compiler.cc.o" "gcc" "src/compiler/CMakeFiles/cdpc_compiler.dir/compiler.cc.o.d"
  "/root/repo/src/compiler/parallelizer.cc" "src/compiler/CMakeFiles/cdpc_compiler.dir/parallelizer.cc.o" "gcc" "src/compiler/CMakeFiles/cdpc_compiler.dir/parallelizer.cc.o.d"
  "/root/repo/src/compiler/prefetcher.cc" "src/compiler/CMakeFiles/cdpc_compiler.dir/prefetcher.cc.o" "gcc" "src/compiler/CMakeFiles/cdpc_compiler.dir/prefetcher.cc.o.d"
  "/root/repo/src/compiler/summaries_io.cc" "src/compiler/CMakeFiles/cdpc_compiler.dir/summaries_io.cc.o" "gcc" "src/compiler/CMakeFiles/cdpc_compiler.dir/summaries_io.cc.o.d"
  "/root/repo/src/compiler/transpose.cc" "src/compiler/CMakeFiles/cdpc_compiler.dir/transpose.cc.o" "gcc" "src/compiler/CMakeFiles/cdpc_compiler.dir/transpose.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cdpc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
