# Empty compiler generated dependencies file for cdpc_core.
# This may be replaced when dependencies are built.
