file(REMOVE_RECURSE
  "CMakeFiles/cdpc_core.dir/coloring.cc.o"
  "CMakeFiles/cdpc_core.dir/coloring.cc.o.d"
  "CMakeFiles/cdpc_core.dir/ordering.cc.o"
  "CMakeFiles/cdpc_core.dir/ordering.cc.o.d"
  "CMakeFiles/cdpc_core.dir/procset.cc.o"
  "CMakeFiles/cdpc_core.dir/procset.cc.o.d"
  "CMakeFiles/cdpc_core.dir/runtime.cc.o"
  "CMakeFiles/cdpc_core.dir/runtime.cc.o.d"
  "CMakeFiles/cdpc_core.dir/segments.cc.o"
  "CMakeFiles/cdpc_core.dir/segments.cc.o.d"
  "libcdpc_core.a"
  "libcdpc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
