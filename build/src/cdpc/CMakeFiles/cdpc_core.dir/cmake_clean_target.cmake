file(REMOVE_RECURSE
  "libcdpc_core.a"
)
