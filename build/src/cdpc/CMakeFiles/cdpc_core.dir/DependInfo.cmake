
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cdpc/coloring.cc" "src/cdpc/CMakeFiles/cdpc_core.dir/coloring.cc.o" "gcc" "src/cdpc/CMakeFiles/cdpc_core.dir/coloring.cc.o.d"
  "/root/repo/src/cdpc/ordering.cc" "src/cdpc/CMakeFiles/cdpc_core.dir/ordering.cc.o" "gcc" "src/cdpc/CMakeFiles/cdpc_core.dir/ordering.cc.o.d"
  "/root/repo/src/cdpc/procset.cc" "src/cdpc/CMakeFiles/cdpc_core.dir/procset.cc.o" "gcc" "src/cdpc/CMakeFiles/cdpc_core.dir/procset.cc.o.d"
  "/root/repo/src/cdpc/runtime.cc" "src/cdpc/CMakeFiles/cdpc_core.dir/runtime.cc.o" "gcc" "src/cdpc/CMakeFiles/cdpc_core.dir/runtime.cc.o.d"
  "/root/repo/src/cdpc/segments.cc" "src/cdpc/CMakeFiles/cdpc_core.dir/segments.cc.o" "gcc" "src/cdpc/CMakeFiles/cdpc_core.dir/segments.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/cdpc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cdpc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cdpc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cdpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cdpc_mem.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
