# CMake generated Testfile for 
# Source directory: /root/repo/src/cdpc
# Build directory: /root/repo/build/src/cdpc
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
