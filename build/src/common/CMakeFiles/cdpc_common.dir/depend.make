# Empty dependencies file for cdpc_common.
# This may be replaced when dependencies are built.
