file(REMOVE_RECURSE
  "CMakeFiles/cdpc_common.dir/logging.cc.o"
  "CMakeFiles/cdpc_common.dir/logging.cc.o.d"
  "CMakeFiles/cdpc_common.dir/stats.cc.o"
  "CMakeFiles/cdpc_common.dir/stats.cc.o.d"
  "CMakeFiles/cdpc_common.dir/table.cc.o"
  "CMakeFiles/cdpc_common.dir/table.cc.o.d"
  "libcdpc_common.a"
  "libcdpc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
