file(REMOVE_RECURSE
  "libcdpc_common.a"
)
