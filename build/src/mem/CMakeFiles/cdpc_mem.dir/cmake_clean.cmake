file(REMOVE_RECURSE
  "CMakeFiles/cdpc_mem.dir/bus.cc.o"
  "CMakeFiles/cdpc_mem.dir/bus.cc.o.d"
  "CMakeFiles/cdpc_mem.dir/cache.cc.o"
  "CMakeFiles/cdpc_mem.dir/cache.cc.o.d"
  "CMakeFiles/cdpc_mem.dir/memsystem.cc.o"
  "CMakeFiles/cdpc_mem.dir/memsystem.cc.o.d"
  "CMakeFiles/cdpc_mem.dir/miss_classify.cc.o"
  "CMakeFiles/cdpc_mem.dir/miss_classify.cc.o.d"
  "CMakeFiles/cdpc_mem.dir/recolor.cc.o"
  "CMakeFiles/cdpc_mem.dir/recolor.cc.o.d"
  "CMakeFiles/cdpc_mem.dir/tlb.cc.o"
  "CMakeFiles/cdpc_mem.dir/tlb.cc.o.d"
  "libcdpc_mem.a"
  "libcdpc_mem.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpc_mem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
