file(REMOVE_RECURSE
  "libcdpc_mem.a"
)
