
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mem/bus.cc" "src/mem/CMakeFiles/cdpc_mem.dir/bus.cc.o" "gcc" "src/mem/CMakeFiles/cdpc_mem.dir/bus.cc.o.d"
  "/root/repo/src/mem/cache.cc" "src/mem/CMakeFiles/cdpc_mem.dir/cache.cc.o" "gcc" "src/mem/CMakeFiles/cdpc_mem.dir/cache.cc.o.d"
  "/root/repo/src/mem/memsystem.cc" "src/mem/CMakeFiles/cdpc_mem.dir/memsystem.cc.o" "gcc" "src/mem/CMakeFiles/cdpc_mem.dir/memsystem.cc.o.d"
  "/root/repo/src/mem/miss_classify.cc" "src/mem/CMakeFiles/cdpc_mem.dir/miss_classify.cc.o" "gcc" "src/mem/CMakeFiles/cdpc_mem.dir/miss_classify.cc.o.d"
  "/root/repo/src/mem/recolor.cc" "src/mem/CMakeFiles/cdpc_mem.dir/recolor.cc.o" "gcc" "src/mem/CMakeFiles/cdpc_mem.dir/recolor.cc.o.d"
  "/root/repo/src/mem/tlb.cc" "src/mem/CMakeFiles/cdpc_mem.dir/tlb.cc.o" "gcc" "src/mem/CMakeFiles/cdpc_mem.dir/tlb.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cdpc_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
