# Empty compiler generated dependencies file for cdpc_mem.
# This may be replaced when dependencies are built.
