file(REMOVE_RECURSE
  "CMakeFiles/cdpc_harness.dir/attribution.cc.o"
  "CMakeFiles/cdpc_harness.dir/attribution.cc.o.d"
  "CMakeFiles/cdpc_harness.dir/experiment.cc.o"
  "CMakeFiles/cdpc_harness.dir/experiment.cc.o.d"
  "CMakeFiles/cdpc_harness.dir/spec.cc.o"
  "CMakeFiles/cdpc_harness.dir/spec.cc.o.d"
  "libcdpc_harness.a"
  "libcdpc_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpc_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
