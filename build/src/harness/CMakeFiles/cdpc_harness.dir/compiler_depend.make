# Empty compiler generated dependencies file for cdpc_harness.
# This may be replaced when dependencies are built.
