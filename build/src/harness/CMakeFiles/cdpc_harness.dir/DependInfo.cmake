
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/harness/attribution.cc" "src/harness/CMakeFiles/cdpc_harness.dir/attribution.cc.o" "gcc" "src/harness/CMakeFiles/cdpc_harness.dir/attribution.cc.o.d"
  "/root/repo/src/harness/experiment.cc" "src/harness/CMakeFiles/cdpc_harness.dir/experiment.cc.o" "gcc" "src/harness/CMakeFiles/cdpc_harness.dir/experiment.cc.o.d"
  "/root/repo/src/harness/spec.cc" "src/harness/CMakeFiles/cdpc_harness.dir/spec.cc.o" "gcc" "src/harness/CMakeFiles/cdpc_harness.dir/spec.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/cdpc/CMakeFiles/cdpc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/compiler/CMakeFiles/cdpc_compiler.dir/DependInfo.cmake"
  "/root/repo/build/src/machine/CMakeFiles/cdpc_machine.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cdpc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cdpc_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cdpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/cdpc_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
