file(REMOVE_RECURSE
  "libcdpc_harness.a"
)
