
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vm/hints.cc" "src/vm/CMakeFiles/cdpc_vm.dir/hints.cc.o" "gcc" "src/vm/CMakeFiles/cdpc_vm.dir/hints.cc.o.d"
  "/root/repo/src/vm/physmem.cc" "src/vm/CMakeFiles/cdpc_vm.dir/physmem.cc.o" "gcc" "src/vm/CMakeFiles/cdpc_vm.dir/physmem.cc.o.d"
  "/root/repo/src/vm/policy.cc" "src/vm/CMakeFiles/cdpc_vm.dir/policy.cc.o" "gcc" "src/vm/CMakeFiles/cdpc_vm.dir/policy.cc.o.d"
  "/root/repo/src/vm/virtual_memory.cc" "src/vm/CMakeFiles/cdpc_vm.dir/virtual_memory.cc.o" "gcc" "src/vm/CMakeFiles/cdpc_vm.dir/virtual_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
