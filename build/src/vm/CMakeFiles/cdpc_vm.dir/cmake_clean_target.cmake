file(REMOVE_RECURSE
  "libcdpc_vm.a"
)
