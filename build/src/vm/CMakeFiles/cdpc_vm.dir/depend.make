# Empty dependencies file for cdpc_vm.
# This may be replaced when dependencies are built.
