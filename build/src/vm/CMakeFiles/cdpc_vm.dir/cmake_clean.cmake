file(REMOVE_RECURSE
  "CMakeFiles/cdpc_vm.dir/hints.cc.o"
  "CMakeFiles/cdpc_vm.dir/hints.cc.o.d"
  "CMakeFiles/cdpc_vm.dir/physmem.cc.o"
  "CMakeFiles/cdpc_vm.dir/physmem.cc.o.d"
  "CMakeFiles/cdpc_vm.dir/policy.cc.o"
  "CMakeFiles/cdpc_vm.dir/policy.cc.o.d"
  "CMakeFiles/cdpc_vm.dir/virtual_memory.cc.o"
  "CMakeFiles/cdpc_vm.dir/virtual_memory.cc.o.d"
  "libcdpc_vm.a"
  "libcdpc_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpc_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
