
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/machine/config.cc" "src/machine/CMakeFiles/cdpc_machine.dir/config.cc.o" "gcc" "src/machine/CMakeFiles/cdpc_machine.dir/config.cc.o.d"
  "/root/repo/src/machine/simulator.cc" "src/machine/CMakeFiles/cdpc_machine.dir/simulator.cc.o" "gcc" "src/machine/CMakeFiles/cdpc_machine.dir/simulator.cc.o.d"
  "/root/repo/src/machine/stats.cc" "src/machine/CMakeFiles/cdpc_machine.dir/stats.cc.o" "gcc" "src/machine/CMakeFiles/cdpc_machine.dir/stats.cc.o.d"
  "/root/repo/src/machine/trace.cc" "src/machine/CMakeFiles/cdpc_machine.dir/trace.cc.o" "gcc" "src/machine/CMakeFiles/cdpc_machine.dir/trace.cc.o.d"
  "/root/repo/src/machine/tracefile.cc" "src/machine/CMakeFiles/cdpc_machine.dir/tracefile.cc.o" "gcc" "src/machine/CMakeFiles/cdpc_machine.dir/tracefile.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/mem/CMakeFiles/cdpc_mem.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cdpc_ir.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/cdpc_vm.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
