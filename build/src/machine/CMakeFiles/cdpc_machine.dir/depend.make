# Empty dependencies file for cdpc_machine.
# This may be replaced when dependencies are built.
