file(REMOVE_RECURSE
  "CMakeFiles/cdpc_machine.dir/config.cc.o"
  "CMakeFiles/cdpc_machine.dir/config.cc.o.d"
  "CMakeFiles/cdpc_machine.dir/simulator.cc.o"
  "CMakeFiles/cdpc_machine.dir/simulator.cc.o.d"
  "CMakeFiles/cdpc_machine.dir/stats.cc.o"
  "CMakeFiles/cdpc_machine.dir/stats.cc.o.d"
  "CMakeFiles/cdpc_machine.dir/trace.cc.o"
  "CMakeFiles/cdpc_machine.dir/trace.cc.o.d"
  "CMakeFiles/cdpc_machine.dir/tracefile.cc.o"
  "CMakeFiles/cdpc_machine.dir/tracefile.cc.o.d"
  "libcdpc_machine.a"
  "libcdpc_machine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpc_machine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
