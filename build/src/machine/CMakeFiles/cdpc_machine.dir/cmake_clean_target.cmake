file(REMOVE_RECURSE
  "libcdpc_machine.a"
)
