file(REMOVE_RECURSE
  "CMakeFiles/cdpc_ir.dir/exec.cc.o"
  "CMakeFiles/cdpc_ir.dir/exec.cc.o.d"
  "CMakeFiles/cdpc_ir.dir/layout.cc.o"
  "CMakeFiles/cdpc_ir.dir/layout.cc.o.d"
  "CMakeFiles/cdpc_ir.dir/loop.cc.o"
  "CMakeFiles/cdpc_ir.dir/loop.cc.o.d"
  "CMakeFiles/cdpc_ir.dir/program.cc.o"
  "CMakeFiles/cdpc_ir.dir/program.cc.o.d"
  "libcdpc_ir.a"
  "libcdpc_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpc_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
