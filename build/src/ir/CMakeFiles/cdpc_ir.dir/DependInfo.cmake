
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ir/exec.cc" "src/ir/CMakeFiles/cdpc_ir.dir/exec.cc.o" "gcc" "src/ir/CMakeFiles/cdpc_ir.dir/exec.cc.o.d"
  "/root/repo/src/ir/layout.cc" "src/ir/CMakeFiles/cdpc_ir.dir/layout.cc.o" "gcc" "src/ir/CMakeFiles/cdpc_ir.dir/layout.cc.o.d"
  "/root/repo/src/ir/loop.cc" "src/ir/CMakeFiles/cdpc_ir.dir/loop.cc.o" "gcc" "src/ir/CMakeFiles/cdpc_ir.dir/loop.cc.o.d"
  "/root/repo/src/ir/program.cc" "src/ir/CMakeFiles/cdpc_ir.dir/program.cc.o" "gcc" "src/ir/CMakeFiles/cdpc_ir.dir/program.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdpc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
