# Empty dependencies file for cdpc_ir.
# This may be replaced when dependencies are built.
