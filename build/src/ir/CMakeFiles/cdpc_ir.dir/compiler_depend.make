# Empty compiler generated dependencies file for cdpc_ir.
# This may be replaced when dependencies are built.
