file(REMOVE_RECURSE
  "libcdpc_ir.a"
)
