file(REMOVE_RECURSE
  "CMakeFiles/cdpc_workloads.dir/applu.cc.o"
  "CMakeFiles/cdpc_workloads.dir/applu.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/apsi.cc.o"
  "CMakeFiles/cdpc_workloads.dir/apsi.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/builder.cc.o"
  "CMakeFiles/cdpc_workloads.dir/builder.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/fpppp.cc.o"
  "CMakeFiles/cdpc_workloads.dir/fpppp.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/hydro2d.cc.o"
  "CMakeFiles/cdpc_workloads.dir/hydro2d.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/mgrid.cc.o"
  "CMakeFiles/cdpc_workloads.dir/mgrid.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/su2cor.cc.o"
  "CMakeFiles/cdpc_workloads.dir/su2cor.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/swim.cc.o"
  "CMakeFiles/cdpc_workloads.dir/swim.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/tomcatv.cc.o"
  "CMakeFiles/cdpc_workloads.dir/tomcatv.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/turb3d.cc.o"
  "CMakeFiles/cdpc_workloads.dir/turb3d.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/wave5.cc.o"
  "CMakeFiles/cdpc_workloads.dir/wave5.cc.o.d"
  "CMakeFiles/cdpc_workloads.dir/workload.cc.o"
  "CMakeFiles/cdpc_workloads.dir/workload.cc.o.d"
  "libcdpc_workloads.a"
  "libcdpc_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpc_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
