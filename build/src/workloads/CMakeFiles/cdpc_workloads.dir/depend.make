# Empty dependencies file for cdpc_workloads.
# This may be replaced when dependencies are built.
