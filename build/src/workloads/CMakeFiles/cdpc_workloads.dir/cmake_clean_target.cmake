file(REMOVE_RECURSE
  "libcdpc_workloads.a"
)
