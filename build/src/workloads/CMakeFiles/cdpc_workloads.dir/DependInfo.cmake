
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/applu.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/applu.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/applu.cc.o.d"
  "/root/repo/src/workloads/apsi.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/apsi.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/apsi.cc.o.d"
  "/root/repo/src/workloads/builder.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/builder.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/builder.cc.o.d"
  "/root/repo/src/workloads/fpppp.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/fpppp.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/fpppp.cc.o.d"
  "/root/repo/src/workloads/hydro2d.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/hydro2d.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/hydro2d.cc.o.d"
  "/root/repo/src/workloads/mgrid.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/mgrid.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/mgrid.cc.o.d"
  "/root/repo/src/workloads/su2cor.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/su2cor.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/su2cor.cc.o.d"
  "/root/repo/src/workloads/swim.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/swim.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/swim.cc.o.d"
  "/root/repo/src/workloads/tomcatv.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/tomcatv.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/tomcatv.cc.o.d"
  "/root/repo/src/workloads/turb3d.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/turb3d.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/turb3d.cc.o.d"
  "/root/repo/src/workloads/wave5.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/wave5.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/wave5.cc.o.d"
  "/root/repo/src/workloads/workload.cc" "src/workloads/CMakeFiles/cdpc_workloads.dir/workload.cc.o" "gcc" "src/workloads/CMakeFiles/cdpc_workloads.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/cdpc_common.dir/DependInfo.cmake"
  "/root/repo/build/src/ir/CMakeFiles/cdpc_ir.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
