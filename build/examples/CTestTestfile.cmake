# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart" "hydro2d" "4")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;12;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_custom_stencil "/root/repo/build/examples/custom_stencil" "96" "4")
set_tests_properties(example_custom_stencil PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;13;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_hint_inspector "/root/repo/build/examples/hint_inspector" "mgrid" "4")
set_tests_properties(example_hint_inspector PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;14;add_test;/root/repo/examples/CMakeLists.txt;0;")
