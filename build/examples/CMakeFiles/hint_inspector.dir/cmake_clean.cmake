file(REMOVE_RECURSE
  "CMakeFiles/hint_inspector.dir/hint_inspector.cpp.o"
  "CMakeFiles/hint_inspector.dir/hint_inspector.cpp.o.d"
  "hint_inspector"
  "hint_inspector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hint_inspector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
