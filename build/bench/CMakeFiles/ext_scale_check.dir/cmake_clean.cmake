file(REMOVE_RECURSE
  "CMakeFiles/ext_scale_check.dir/ext_scale_check.cc.o"
  "CMakeFiles/ext_scale_check.dir/ext_scale_check.cc.o.d"
  "ext_scale_check"
  "ext_scale_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_scale_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
