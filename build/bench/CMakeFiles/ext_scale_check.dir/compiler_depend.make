# Empty compiler generated dependencies file for ext_scale_check.
# This may be replaced when dependencies are built.
