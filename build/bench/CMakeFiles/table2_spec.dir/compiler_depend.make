# Empty compiler generated dependencies file for table2_spec.
# This may be replaced when dependencies are built.
