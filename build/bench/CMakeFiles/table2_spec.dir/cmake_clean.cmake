file(REMOVE_RECURSE
  "CMakeFiles/table2_spec.dir/table2_spec.cc.o"
  "CMakeFiles/table2_spec.dir/table2_spec.cc.o.d"
  "table2_spec"
  "table2_spec.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_spec.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
