# Empty compiler generated dependencies file for ablation_cdpc.
# This may be replaced when dependencies are built.
