file(REMOVE_RECURSE
  "CMakeFiles/ablation_cdpc.dir/ablation_cdpc.cc.o"
  "CMakeFiles/ablation_cdpc.dir/ablation_cdpc.cc.o.d"
  "ablation_cdpc"
  "ablation_cdpc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cdpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
