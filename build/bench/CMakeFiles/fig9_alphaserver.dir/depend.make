# Empty dependencies file for fig9_alphaserver.
# This may be replaced when dependencies are built.
