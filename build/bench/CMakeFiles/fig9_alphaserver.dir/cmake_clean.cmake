file(REMOVE_RECURSE
  "CMakeFiles/fig9_alphaserver.dir/fig9_alphaserver.cc.o"
  "CMakeFiles/fig9_alphaserver.dir/fig9_alphaserver.cc.o.d"
  "fig9_alphaserver"
  "fig9_alphaserver.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_alphaserver.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
