# Empty dependencies file for fig6_cdpc_dm.
# This may be replaced when dependencies are built.
