file(REMOVE_RECURSE
  "CMakeFiles/fig6_cdpc_dm.dir/fig6_cdpc_dm.cc.o"
  "CMakeFiles/fig6_cdpc_dm.dir/fig6_cdpc_dm.cc.o.d"
  "fig6_cdpc_dm"
  "fig6_cdpc_dm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_cdpc_dm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
