file(REMOVE_RECURSE
  "CMakeFiles/fig5_cdpc_patterns.dir/fig5_cdpc_patterns.cc.o"
  "CMakeFiles/fig5_cdpc_patterns.dir/fig5_cdpc_patterns.cc.o.d"
  "fig5_cdpc_patterns"
  "fig5_cdpc_patterns.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_cdpc_patterns.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
