file(REMOVE_RECURSE
  "CMakeFiles/ext_associativity.dir/ext_associativity.cc.o"
  "CMakeFiles/ext_associativity.dir/ext_associativity.cc.o.d"
  "ext_associativity"
  "ext_associativity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_associativity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
