# Empty compiler generated dependencies file for ext_associativity.
# This may be replaced when dependencies are built.
