file(REMOVE_RECURSE
  "CMakeFiles/methodology_window.dir/methodology_window.cc.o"
  "CMakeFiles/methodology_window.dir/methodology_window.cc.o.d"
  "methodology_window"
  "methodology_window.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/methodology_window.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
