# Empty dependencies file for methodology_window.
# This may be replaced when dependencies are built.
