# Empty dependencies file for ext_dynamic_recolor.
# This may be replaced when dependencies are built.
