file(REMOVE_RECURSE
  "CMakeFiles/ext_dynamic_recolor.dir/ext_dynamic_recolor.cc.o"
  "CMakeFiles/ext_dynamic_recolor.dir/ext_dynamic_recolor.cc.o.d"
  "ext_dynamic_recolor"
  "ext_dynamic_recolor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_dynamic_recolor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
