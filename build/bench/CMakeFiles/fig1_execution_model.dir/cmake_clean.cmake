file(REMOVE_RECURSE
  "CMakeFiles/fig1_execution_model.dir/fig1_execution_model.cc.o"
  "CMakeFiles/fig1_execution_model.dir/fig1_execution_model.cc.o.d"
  "fig1_execution_model"
  "fig1_execution_model.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig1_execution_model.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
