file(REMOVE_RECURSE
  "CMakeFiles/fig4_algorithm_example.dir/fig4_algorithm_example.cc.o"
  "CMakeFiles/fig4_algorithm_example.dir/fig4_algorithm_example.cc.o.d"
  "fig4_algorithm_example"
  "fig4_algorithm_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_algorithm_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
