file(REMOVE_RECURSE
  "CMakeFiles/fig7_assoc_and_4mb.dir/fig7_assoc_and_4mb.cc.o"
  "CMakeFiles/fig7_assoc_and_4mb.dir/fig7_assoc_and_4mb.cc.o.d"
  "fig7_assoc_and_4mb"
  "fig7_assoc_and_4mb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_assoc_and_4mb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
