# Empty dependencies file for fig7_assoc_and_4mb.
# This may be replaced when dependencies are built.
