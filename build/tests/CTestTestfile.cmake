# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_intmath[1]_include.cmake")
include("/root/repo/build/tests/test_common[1]_include.cmake")
include("/root/repo/build/tests/test_cache[1]_include.cmake")
include("/root/repo/build/tests/test_mem_units[1]_include.cmake")
include("/root/repo/build/tests/test_vm[1]_include.cmake")
include("/root/repo/build/tests/test_memsystem[1]_include.cmake")
include("/root/repo/build/tests/test_ir[1]_include.cmake")
include("/root/repo/build/tests/test_exec[1]_include.cmake")
include("/root/repo/build/tests/test_compiler[1]_include.cmake")
include("/root/repo/build/tests/test_cdpc[1]_include.cmake")
include("/root/repo/build/tests/test_simulator[1]_include.cmake")
include("/root/repo/build/tests/test_workloads[1]_include.cmake")
include("/root/repo/build/tests/test_experiment[1]_include.cmake")
include("/root/repo/build/tests/test_recolor[1]_include.cmake")
include("/root/repo/build/tests/test_mesi[1]_include.cmake")
include("/root/repo/build/tests/test_plan_properties[1]_include.cmake")
include("/root/repo/build/tests/test_transpose[1]_include.cmake")
include("/root/repo/build/tests/test_tracefile[1]_include.cmake")
include("/root/repo/build/tests/test_fuzz_pipeline[1]_include.cmake")
include("/root/repo/build/tests/test_attribution[1]_include.cmake")
include("/root/repo/build/tests/test_summaries_io[1]_include.cmake")
include("/root/repo/build/tests/test_config[1]_include.cmake")
