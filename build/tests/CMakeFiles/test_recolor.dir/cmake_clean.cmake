file(REMOVE_RECURSE
  "CMakeFiles/test_recolor.dir/test_recolor.cc.o"
  "CMakeFiles/test_recolor.dir/test_recolor.cc.o.d"
  "test_recolor"
  "test_recolor.pdb"
  "test_recolor[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_recolor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
