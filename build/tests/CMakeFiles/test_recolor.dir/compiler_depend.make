# Empty compiler generated dependencies file for test_recolor.
# This may be replaced when dependencies are built.
