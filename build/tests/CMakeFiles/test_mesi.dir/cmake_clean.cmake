file(REMOVE_RECURSE
  "CMakeFiles/test_mesi.dir/test_mesi.cc.o"
  "CMakeFiles/test_mesi.dir/test_mesi.cc.o.d"
  "test_mesi"
  "test_mesi.pdb"
  "test_mesi[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_mesi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
