# Empty compiler generated dependencies file for test_mesi.
# This may be replaced when dependencies are built.
