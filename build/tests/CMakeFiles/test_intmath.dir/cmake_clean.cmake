file(REMOVE_RECURSE
  "CMakeFiles/test_intmath.dir/test_intmath.cc.o"
  "CMakeFiles/test_intmath.dir/test_intmath.cc.o.d"
  "test_intmath"
  "test_intmath.pdb"
  "test_intmath[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_intmath.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
