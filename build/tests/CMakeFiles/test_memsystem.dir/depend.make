# Empty dependencies file for test_memsystem.
# This may be replaced when dependencies are built.
