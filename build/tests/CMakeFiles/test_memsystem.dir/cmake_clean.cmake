file(REMOVE_RECURSE
  "CMakeFiles/test_memsystem.dir/test_memsystem.cc.o"
  "CMakeFiles/test_memsystem.dir/test_memsystem.cc.o.d"
  "test_memsystem"
  "test_memsystem.pdb"
  "test_memsystem[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_memsystem.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
