# Empty dependencies file for test_attribution.
# This may be replaced when dependencies are built.
