# Empty dependencies file for test_plan_properties.
# This may be replaced when dependencies are built.
