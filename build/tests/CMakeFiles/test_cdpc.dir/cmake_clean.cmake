file(REMOVE_RECURSE
  "CMakeFiles/test_cdpc.dir/test_cdpc.cc.o"
  "CMakeFiles/test_cdpc.dir/test_cdpc.cc.o.d"
  "test_cdpc"
  "test_cdpc.pdb"
  "test_cdpc[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_cdpc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
