# Empty dependencies file for test_cdpc.
# This may be replaced when dependencies are built.
