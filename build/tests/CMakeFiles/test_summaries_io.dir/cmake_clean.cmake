file(REMOVE_RECURSE
  "CMakeFiles/test_summaries_io.dir/test_summaries_io.cc.o"
  "CMakeFiles/test_summaries_io.dir/test_summaries_io.cc.o.d"
  "test_summaries_io"
  "test_summaries_io.pdb"
  "test_summaries_io[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_summaries_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
