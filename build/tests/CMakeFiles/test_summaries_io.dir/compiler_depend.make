# Empty compiler generated dependencies file for test_summaries_io.
# This may be replaced when dependencies are built.
