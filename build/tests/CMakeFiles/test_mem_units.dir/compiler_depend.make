# Empty compiler generated dependencies file for test_mem_units.
# This may be replaced when dependencies are built.
