# Empty dependencies file for cdpcsim.
# This may be replaced when dependencies are built.
