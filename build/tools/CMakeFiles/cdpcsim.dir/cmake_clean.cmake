file(REMOVE_RECURSE
  "CMakeFiles/cdpcsim.dir/cdpcsim.cc.o"
  "CMakeFiles/cdpcsim.dir/cdpcsim.cc.o.d"
  "cdpcsim"
  "cdpcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cdpcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
