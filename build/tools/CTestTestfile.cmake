# CMake generated Testfile for 
# Source directory: /root/repo/tools
# Build directory: /root/repo/build/tools
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(cli_list "/root/repo/build/tools/cdpcsim" "list")
set_tests_properties(cli_list PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;5;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_run "/root/repo/build/tools/cdpcsim" "run" "hydro2d" "--cpus" "2" "--policy" "pc")
set_tests_properties(cli_run PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;6;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_compare "/root/repo/build/tools/cdpcsim" "compare" "mgrid" "--cpus" "2")
set_tests_properties(cli_compare PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;7;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_plan "/root/repo/build/tools/cdpcsim" "plan" "swim" "--cpus" "4")
set_tests_properties(cli_plan PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;8;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_attribute "/root/repo/build/tools/cdpcsim" "attribute" "mgrid" "--cpus" "2" "--policy" "pc")
set_tests_properties(cli_attribute PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;9;add_test;/root/repo/tools/CMakeLists.txt;0;")
add_test(cli_bad_command "/root/repo/build/tools/cdpcsim" "frobnicate")
set_tests_properties(cli_bad_command PROPERTIES  WILL_FAIL "TRUE" _BACKTRACE_TRIPLES "/root/repo/tools/CMakeLists.txt;10;add_test;/root/repo/tools/CMakeLists.txt;0;")
