/**
 * @file
 * chaos_batch — crash-recovery harness for `cdpcsim batch --journal`
 * (DESIGN.md §13).
 *
 *   chaos_batch <cdpcsim> <spec-file> <workdir> [options]
 *
 * The harness first runs one clean journaled batch to produce the
 * golden output, then repeatedly launches `cdpcsim batch --journal
 * --resume`, kills the child at a deterministic, seeded progress
 * point (after the journal reaches a chosen number of newly
 * committed jobs), and resumes — alternating SIGKILL (no chance to
 * clean up; exercises torn-tail healing) with SIGTERM (graceful
 * drain; exercises the cancel path and exit code 4). After the
 * configured kills it lets the batch run to completion and asserts
 * that the merged output is byte-identical to the clean run and that
 * the completion manifest was published.
 *
 * Options:
 *   --kills N    chaos rounds before convergence (default 5)
 *   --seed S     seed for the kill-point sequence (default 1)
 *   --jobs N     worker threads per child (default 2)
 *   --keep       keep the workdir files on success
 *
 * Exit codes: 0 converged byte-identical, 1 divergence or a child
 * misbehaving, 2 usage error.
 */

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>

#include "common/digest.h"

namespace
{

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::fprintf(stderr, "chaos_batch: %s\n\n", msg);
    std::fprintf(stderr,
                 "usage: chaos_batch <cdpcsim> <spec-file> <workdir>"
                 " [--kills N] [--seed S] [--jobs N] [--keep]\n");
    std::exit(2);
}

[[noreturn]] void
die(const std::string &msg)
{
    std::fprintf(stderr, "chaos_batch: %s\n", msg.c_str());
    std::exit(1);
}

std::uint64_t
splitmix64(std::uint64_t &state)
{
    std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::string
readFile(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return {};
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

/** Complete (newline-terminated) lines in @p path. */
std::size_t
completeLines(const std::string &path)
{
    std::string text = readFile(path);
    std::size_t n = 0;
    for (char c : text)
        if (c == '\n')
            n++;
    return n;
}

/** Journal records committed so far (complete lines minus header). */
std::size_t
journalRecords(const std::string &journal)
{
    std::size_t lines = completeLines(journal);
    return lines > 0 ? lines - 1 : 0;
}

void
sleepMs(long ms)
{
    struct timespec ts;
    ts.tv_sec = ms / 1000;
    ts.tv_nsec = (ms % 1000) * 1000000L;
    nanosleep(&ts, nullptr);
}

struct Child
{
    pid_t pid = -1;
};

Child
spawnBatch(const std::string &cdpcsim, const std::string &spec,
           const std::string &out, const std::string &jobs)
{
    Child c;
    c.pid = fork();
    if (c.pid < 0)
        die(std::string("fork failed: ") + std::strerror(errno));
    if (c.pid == 0) {
        std::vector<std::string> args = {
            cdpcsim, "batch", spec,    "--out",    out,
            "--jobs", jobs,   "--journal", "--resume",
        };
        std::vector<char *> argv;
        for (std::string &a : args)
            argv.push_back(a.data());
        argv.push_back(nullptr);
        execv(cdpcsim.c_str(), argv.data());
        std::fprintf(stderr, "chaos_batch: execv %s: %s\n",
                     cdpcsim.c_str(), std::strerror(errno));
        _exit(127);
    }
    return c;
}

/** waitpid and render how the child ended. */
std::string
reap(pid_t pid, int &exit_code, int &term_signal)
{
    int status = 0;
    exit_code = -1;
    term_signal = 0;
    if (waitpid(pid, &status, 0) < 0)
        die(std::string("waitpid failed: ") + std::strerror(errno));
    if (WIFEXITED(status)) {
        exit_code = WEXITSTATUS(status);
        return "exit " + std::to_string(exit_code);
    }
    if (WIFSIGNALED(status)) {
        term_signal = WTERMSIG(status);
        return std::string("killed by ") +
               (term_signal == SIGKILL ? "SIGKILL"
                : term_signal == SIGTERM ? "SIGTERM"
                                         : "signal") +
               " (" + std::to_string(term_signal) + ")";
    }
    return "unknown status";
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 4)
        usage();
    const std::string cdpcsim = argv[1];
    const std::string spec = argv[2];
    const std::string workdir = argv[3];
    int kills = 5;
    std::uint64_t seed = 1;
    std::string jobs = "2";
    bool keep = false;
    for (int i = 4; i < argc; i++) {
        std::string a = argv[i];
        auto value = [&]() -> std::string {
            if (i + 1 >= argc)
                usage((a + " needs a value").c_str());
            return argv[++i];
        };
        if (a == "--kills")
            kills = std::atoi(value().c_str());
        else if (a == "--seed")
            seed = static_cast<std::uint64_t>(
                std::strtoull(value().c_str(), nullptr, 10));
        else if (a == "--jobs")
            jobs = value();
        else if (a == "--keep")
            keep = true;
        else
            usage(("unknown option " + a).c_str());
    }

    const std::string ref = workdir + "/chaos_ref.jsonl";
    const std::string out = workdir + "/chaos_out.jsonl";
    const std::string journal = out + ".journal";
    const std::string manifest = out + ".manifest";
    // Stale state from a previous (possibly aborted) harness run
    // must not leak into this one.
    for (const std::string &p :
         {ref, ref + ".journal", ref + ".part", ref + ".manifest",
          out, journal, out + ".part", manifest})
        std::remove(p.c_str());

    // Clean golden run (also exercises the journaled uninterrupted
    // path: journal created, then removed by finalize).
    {
        Child c = spawnBatch(cdpcsim, spec, ref, jobs);
        int code = -1, sig = 0;
        std::string how = reap(c.pid, code, sig);
        if (code != 0)
            die("clean reference run failed (" + how + ")");
    }
    const std::string golden = readFile(ref);
    if (golden.empty())
        die("clean reference run produced no output");
    const std::size_t num_jobs = completeLines(ref);
    std::printf("chaos_batch: golden run: %zu jobs, digest %s\n",
                num_jobs, cdpc::digestHex(cdpc::fnv1a(golden)).c_str());

    // Chaos rounds: kill at seeded progress points, resume.
    std::uint64_t rng = seed;
    int performed = 0;
    for (int round = 0; round < kills; round++) {
        const std::size_t before = journalRecords(journal);
        if (before >= num_jobs)
            break; // already fully committed; nothing left to kill
        // Kill after 1..3 *new* commits so several rounds fit into
        // one batch even when kills outnumber jobs.
        const std::size_t span = 1 + splitmix64(rng) % 3;
        const std::size_t target = before + span;
        const int sig = (round % 2 == 0) ? SIGKILL : SIGTERM;

        Child c = spawnBatch(cdpcsim, spec, out, jobs);
        bool sent = false;
        for (int waited = 0; waited < 120000; waited += 5) {
            if (journalRecords(journal) >= target) {
                kill(c.pid, sig);
                sent = true;
                break;
            }
            // Child finished early (all jobs committed)?
            int status = 0;
            pid_t r = waitpid(c.pid, &status, WNOHANG);
            if (r == c.pid) {
                if (!WIFEXITED(status) || WEXITSTATUS(status) != 0)
                    die("child ended unexpectedly mid-round");
                c.pid = -1;
                break;
            }
            sleepMs(5);
        }
        if (c.pid < 0) {
            std::printf("chaos_batch: round %d: batch completed "
                        "before the kill point\n", round);
            break;
        }
        if (!sent)
            kill(c.pid, SIGKILL); // watchdog: never hang the harness
        int code = -1, term = 0;
        std::string how = reap(c.pid, code, term);
        // SIGTERM may land after the last job: the drain then turns
        // into a normal completion (exit 0). SIGKILL always shows as
        // a signal death; SIGTERM as exit 4 (drain), exit 0, or a
        // signal death when it hit before the handler was installed.
        if (sig == SIGTERM && code != 4 && code != 0 && term == 0)
            die("SIGTERM round ended oddly (" + how + ")");
        performed++;
        std::printf("chaos_batch: round %d: killed with %s at >=%zu "
                    "commits -> %s (journal now %zu/%zu)\n",
                    round, sig == SIGKILL ? "SIGKILL" : "SIGTERM",
                    target, how.c_str(), journalRecords(journal),
                    num_jobs);
    }

    // Convergence: resume until the batch completes.
    int final_code = -1;
    for (int attempt = 0; attempt < kills + 2; attempt++) {
        Child c = spawnBatch(cdpcsim, spec, out, jobs);
        int code = -1, sig = 0;
        std::string how = reap(c.pid, code, sig);
        if (code == 0) {
            final_code = 0;
            break;
        }
        die("convergence run failed (" + how + ")");
    }
    if (final_code != 0)
        die("batch never converged");

    const std::string merged = readFile(out);
    std::printf("chaos_batch: %d kills, merged digest %s\n",
                performed,
                cdpc::digestHex(cdpc::fnv1a(merged)).c_str());
    if (merged != golden)
        die("merged output differs from the clean run");
    if (readFile(manifest).empty())
        die("completion manifest missing after convergence");
    std::printf("chaos_batch: PASS — merged output byte-identical "
                "to the clean run\n");
    if (!keep) {
        for (const std::string &p :
             {ref, ref + ".manifest", out, manifest})
            std::remove(p.c_str());
    }
    return 0;
}
