/**
 * @file
 * trace_summarize: fold a cdpcsim --trace file (Chrome trace_event
 * JSON) into a profile table on stdout.
 *
 *   trace_summarize <trace.json> [--strict]
 *
 * Reports, per track (pid), the begin/end spans aggregated by name
 * (count, total and mean duration), the instant-event counts
 * (recolor, colorSteal, fallback, faultFire, busStall, retry,
 * quarantine, conflict, ...), the counter-series sample counts, and
 * a per-category rollup keyed on the events' "cat" field (phase,
 * sim, runner, counter, fault, profile — the profiler's conflict
 * instants land in "profile"). Also verifies span integrity: every
 * 'E' must match the innermost open 'B' of its (pid, tid) lane, and
 * nothing may remain open at EOF. With --strict an unbalanced trace
 * exits 1 — CI uses this to prove the tracer's RAII discipline
 * survives faults and timeouts.
 *
 * Events with a phase this tool does not fold (anything outside
 * M/B/E/i/C) or with no name are warned about once per kind rather
 * than silently dropped, so a tracer change can never make events
 * vanish from the summary unnoticed.
 *
 * The JSON parser below is a deliberately small recursive-descent
 * one: the repo takes no JSON dependency, and the subset the tracer
 * emits (objects, arrays, strings, numbers, bools) is all it needs
 * to accept. Exit status: 0 clean, 1 unbalanced under --strict,
 * 2 usage/parse error.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "common/table.h"

using cdpc::TextTable;
using cdpc::fmtF;

namespace
{

/** A parsed JSON value; only what the tracer's output uses. */
struct Json
{
    enum class Type { Null, Bool, Number, String, Array, Object };

    Type type = Type::Null;
    bool boolean = false;
    double number = 0.0;
    std::string string;
    std::vector<Json> array;
    std::map<std::string, Json> object;

    const Json *
    find(const std::string &key) const
    {
        auto it = object.find(key);
        return it == object.end() ? nullptr : &it->second;
    }
};

class Parser
{
  public:
    explicit Parser(const std::string &text) : text_(text) {}

    bool
    parse(Json &out, std::string &error)
    {
        bool ok = value(out) && (skipWs(), pos_ == text_.size());
        if (!ok)
            error = "parse error at offset " + std::to_string(pos_);
        return ok;
    }

  private:
    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                text_[pos_] == '\n' || text_[pos_] == '\r'))
            pos_++;
    }

    bool
    literal(const char *word)
    {
        std::size_t n = std::string(word).size();
        if (text_.compare(pos_, n, word) != 0)
            return false;
        pos_ += n;
        return true;
    }

    bool
    value(Json &out)
    {
        skipWs();
        if (pos_ >= text_.size())
            return false;
        char c = text_[pos_];
        if (c == '{')
            return object(out);
        if (c == '[')
            return array(out);
        if (c == '"') {
            out.type = Json::Type::String;
            return string(out.string);
        }
        if (c == 't') {
            out.type = Json::Type::Bool;
            out.boolean = true;
            return literal("true");
        }
        if (c == 'f') {
            out.type = Json::Type::Bool;
            out.boolean = false;
            return literal("false");
        }
        if (c == 'n') {
            out.type = Json::Type::Null;
            return literal("null");
        }
        return number(out);
    }

    bool
    string(std::string &out)
    {
        pos_++; // opening quote
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out += c;
                continue;
            }
            if (pos_ >= text_.size())
                return false;
            char esc = text_[pos_++];
            switch (esc) {
              case '"': out += '"'; break;
              case '\\': out += '\\'; break;
              case '/': out += '/'; break;
              case 'n': out += '\n'; break;
              case 'r': out += '\r'; break;
              case 't': out += '\t'; break;
              case 'b': out += '\b'; break;
              case 'f': out += '\f'; break;
              case 'u': {
                if (pos_ + 4 > text_.size())
                    return false;
                // The tracer only escapes controls; a replacement
                // char keeps the summary readable either way.
                pos_ += 4;
                out += '?';
                break;
              }
              default:
                return false;
            }
        }
        if (pos_ >= text_.size())
            return false;
        pos_++; // closing quote
        return true;
    }

    bool
    number(Json &out)
    {
        const char *start = text_.c_str() + pos_;
        char *end = nullptr;
        double v = std::strtod(start, &end);
        if (end == start)
            return false;
        out.type = Json::Type::Number;
        out.number = v;
        pos_ += static_cast<std::size_t>(end - start);
        return true;
    }

    bool
    array(Json &out)
    {
        out.type = Json::Type::Array;
        pos_++; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            pos_++;
            return true;
        }
        while (true) {
            Json elem;
            if (!value(elem))
                return false;
            out.array.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (text_[pos_] == ']') {
                pos_++;
                return true;
            }
            return false;
        }
    }

    bool
    object(Json &out)
    {
        out.type = Json::Type::Object;
        pos_++; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return false;
            std::string key;
            if (!string(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return false;
            pos_++;
            Json val;
            if (!value(val))
                return false;
            out.object.emplace(std::move(key), std::move(val));
            skipWs();
            if (pos_ >= text_.size())
                return false;
            if (text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (text_[pos_] == '}') {
                pos_++;
                return true;
            }
            return false;
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
};

struct SpanStats
{
    std::uint64_t count = 0;
    double totalUs = 0.0;
};

struct OpenSpan
{
    std::string name;
    std::string cat;
    double ts = 0.0;
};

/** Rollup of everything filed under one "cat" value. */
struct CatStats
{
    std::uint64_t spans = 0;
    double spanUs = 0.0;
    std::uint64_t instants = 0;
    std::uint64_t counters = 0;
};

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    bool strict = false;
    for (int a = 1; a < argc; a++) {
        std::string arg = argv[a];
        if (arg == "--strict") {
            strict = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout
                << "usage: trace_summarize <trace.json> [--strict]\n";
            return 0;
        } else if (!path) {
            path = argv[a];
        } else {
            std::cerr << "trace_summarize: unexpected argument " << arg
                      << "\n";
            return 2;
        }
    }
    if (!path) {
        std::cerr << "usage: trace_summarize <trace.json> [--strict]\n";
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::cerr << "trace_summarize: cannot open " << path << "\n";
        return 2;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    Json root;
    std::string error;
    if (!Parser(text).parse(root, error)) {
        std::cerr << "trace_summarize: " << path << ": " << error
                  << "\n";
        return 2;
    }
    const Json *events = root.find("traceEvents");
    if (!events || events->type != Json::Type::Array) {
        std::cerr << "trace_summarize: " << path
                  << ": no traceEvents array\n";
        return 2;
    }

    // (pid, tid) -> stack of open spans; per-name aggregates.
    std::map<std::pair<int, int>, std::vector<OpenSpan>> open;
    std::map<std::string, SpanStats> spans;
    std::map<std::string, std::uint64_t> instants;
    std::map<std::string, std::uint64_t> counters;
    std::map<std::string, CatStats> cats;
    std::map<int, std::string> tracks;
    std::map<std::string, std::uint64_t> unknown;
    std::size_t unbalanced = 0;

    for (const Json &ev : events->array) {
        const Json *ph = ev.find("ph");
        const Json *name = ev.find("name");
        if (!ph || !name) {
            // Warn once, then keep counting quietly: a tracer bug
            // that emits nameless events must not hide.
            if (unknown["(missing ph/name)"]++ == 0)
                std::cerr << "trace_summarize: event without ph/name "
                             "fields — counting, not folding\n";
            continue;
        }
        const Json *cat_f = ev.find("cat");
        const std::string cat =
            cat_f && cat_f->type == Json::Type::String
                ? cat_f->string
                : std::string("(none)");
        const Json *pid_f = ev.find("pid");
        const Json *tid_f = ev.find("tid");
        const Json *ts_f = ev.find("ts");
        int pid = pid_f ? static_cast<int>(pid_f->number) : 0;
        int tid = tid_f ? static_cast<int>(tid_f->number) : 0;
        double ts = ts_f ? ts_f->number : 0.0;
        const std::string &n = name->string;
        const std::string &p = ph->string;

        if (p == "M") {
            if (n == "process_name") {
                const Json *args = ev.find("args");
                const Json *label = args ? args->find("name") : nullptr;
                if (label)
                    tracks[pid] = label->string;
            }
        } else if (p == "B") {
            open[{pid, tid}].push_back({n, cat, ts});
        } else if (p == "E") {
            auto &stack = open[{pid, tid}];
            if (stack.empty() || stack.back().name != n) {
                std::cerr << "trace_summarize: 'E' \"" << n
                          << "\" (pid " << pid << ", tid " << tid
                          << ") does not match the innermost open "
                             "span\n";
                unbalanced++;
                if (!stack.empty())
                    stack.pop_back();
                continue;
            }
            SpanStats &s = spans[n];
            s.count++;
            s.totalUs += ts - stack.back().ts;
            // Durations file under the opening event's category —
            // that is the one the tracer stamped.
            CatStats &c = cats[stack.back().cat];
            c.spans++;
            c.spanUs += ts - stack.back().ts;
            stack.pop_back();
        } else if (p == "i") {
            instants[n]++;
            cats[cat].instants++;
        } else if (p == "C") {
            counters[n]++;
            cats[cat].counters++;
        } else if (p != "M") {
            // An unfolded phase: warn the first time each shows up.
            if (unknown["ph '" + p + "' (" + n + ")"]++ == 0)
                std::cerr << "trace_summarize: unknown event phase '"
                          << p << "' (first seen on \"" << n
                          << "\") — counting, not folding\n";
        }
    }
    for (const auto &[lane, stack] : open) {
        for (const OpenSpan &s : stack) {
            std::cerr << "trace_summarize: span \"" << s.name
                      << "\" (pid " << lane.first << ", tid "
                      << lane.second << ") never closed\n";
            unbalanced++;
        }
    }

    std::cout << path << ": " << events->array.size() << " events, "
              << tracks.size() << " named tracks\n";
    if (!spans.empty()) {
        TextTable t({"span", "count", "total ms", "mean ms"});
        for (const auto &[n, s] : spans)
            t.addRow({n, std::to_string(s.count),
                      fmtF(s.totalUs / 1e3, 3),
                      fmtF(s.totalUs / 1e3 / s.count, 3)});
        std::cout << "\n" << t.render();
    }
    if (!instants.empty()) {
        TextTable t({"instant", "count"});
        for (const auto &[n, c] : instants)
            t.addRow({n, std::to_string(c)});
        std::cout << "\n" << t.render();
    }
    if (!counters.empty()) {
        TextTable t({"counter series", "samples"});
        for (const auto &[n, c] : counters)
            t.addRow({n, std::to_string(c)});
        std::cout << "\n" << t.render();
    }
    if (!cats.empty()) {
        TextTable t({"category", "spans", "span ms", "instants",
                     "counter samples"});
        for (const auto &[n, c] : cats)
            t.addRow({n, std::to_string(c.spans),
                      fmtF(c.spanUs / 1e3, 3),
                      std::to_string(c.instants),
                      std::to_string(c.counters)});
        std::cout << "\n" << t.render();
    }
    if (!unknown.empty()) {
        TextTable t({"unfolded events", "count"});
        for (const auto &[n, c] : unknown)
            t.addRow({n, std::to_string(c)});
        std::cout << "\n" << t.render();
    }

    if (unbalanced) {
        std::cerr << "trace_summarize: " << unbalanced
                  << " unbalanced span events\n";
        return strict ? 1 : 0;
    }
    std::cout << "\nall begin/end spans balanced\n";
    return 0;
}
