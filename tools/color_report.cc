/**
 * @file
 * color_report: render `cdpcsim profile --out` JSONL into a human
 * conflict report, and optionally gate CI on the advisor's promise.
 *
 *   color_report <profile.jsonl> [--top N] [--json] [--validate]
 *
 * Input: one JSON object per line as written by `cdpcsim profile`,
 * {"label":...,"workload":...,"cpus":...,"policy":...,"profile":{...}}
 * where "profile" is the conflict-attribution object (entities,
 * per-color totals, sparse matrix cells, advice; DESIGN.md §15).
 *
 * Text output: a per-run reconciliation summary, the globally
 * hottest evictor→victim cells (--top N, default 10), and every
 * advised recoloring with its predicted and (when validated)
 * measured conflict-miss delta. --json emits the same aggregation
 * as one machine-readable object instead.
 *
 * --validate is the CI gate: exit 1 unless (a) every run's matrix
 * totals reconcile with miss_classify's conflict counter, and
 * (b) at least one validated advice *measured* an improvement
 * (measuredDelta < 0) with the predicted sign agreeing
 * (predictedDelta < 0). Advice whose validation re-run measured no
 * improvement is reported — honesty is the point — but only a
 * sign-consistent measured win satisfies the gate.
 *
 * Exit status: 0 clean, 1 validation failure, 2 usage/parse error.
 *
 * The parser is hand-rolled recursive descent: the repo has no JSON
 * dependency, and the input grammar is the small fixed subset our
 * own serializer emits.
 */

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

namespace
{

// --- Minimal JSON value + recursive-descent parser --------------------

struct JsonValue
{
    enum class Kind { Null, Bool, Number, String, Array, Object };

    Kind kind = Kind::Null;
    bool boolean = false;
    double number = 0;
    std::string str;
    std::vector<JsonValue> items;
    std::vector<std::pair<std::string, JsonValue>> fields;

    const JsonValue *
    find(const std::string &key) const
    {
        for (const auto &[k, v] : fields)
            if (k == key)
                return &v;
        return nullptr;
    }

    double
    num(const std::string &key, double fallback = 0) const
    {
        const JsonValue *v = find(key);
        return v && v->kind == Kind::Number ? v->number : fallback;
    }

    bool
    flag(const std::string &key) const
    {
        const JsonValue *v = find(key);
        return v && v->kind == Kind::Bool && v->boolean;
    }

    std::string
    text(const std::string &key) const
    {
        const JsonValue *v = find(key);
        return v && v->kind == Kind::String ? v->str : std::string();
    }
};

class JsonParser
{
  public:
    explicit JsonParser(const std::string &text) : text_(text) {}

    bool
    parse(JsonValue &out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        return pos_ == text_.size();
    }

    const std::string &error() const { return error_; }

  private:
    bool
    fail(const char *what)
    {
        std::ostringstream os;
        os << "expected " << what << " at offset " << pos_;
        error_ = os.str();
        return false;
    }

    void
    skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            pos_++;
    }

    bool
    parseValue(JsonValue &out)
    {
        if (pos_ >= text_.size())
            return fail("a value");
        char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out.kind = JsonValue::Kind::String;
            return parseString(out.str);
        }
        if (text_.compare(pos_, 4, "true") == 0) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = true;
            pos_ += 4;
            return true;
        }
        if (text_.compare(pos_, 5, "false") == 0) {
            out.kind = JsonValue::Kind::Bool;
            out.boolean = false;
            pos_ += 5;
            return true;
        }
        if (text_.compare(pos_, 4, "null") == 0) {
            out.kind = JsonValue::Kind::Null;
            pos_ += 4;
            return true;
        }
        char *end = nullptr;
        double v = std::strtod(text_.c_str() + pos_, &end);
        if (end == text_.c_str() + pos_)
            return fail("a value");
        out.kind = JsonValue::Kind::Number;
        out.number = v;
        pos_ = static_cast<std::size_t>(end - text_.c_str());
        return true;
    }

    bool
    parseString(std::string &out)
    {
        pos_++; // opening quote
        out.clear();
        while (pos_ < text_.size() && text_[pos_] != '"') {
            char c = text_[pos_++];
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (pos_ >= text_.size())
                return fail("an escape");
            char e = text_[pos_++];
            switch (e) {
              case 'n': out.push_back('\n'); break;
              case 't': out.push_back('\t'); break;
              case 'r': out.push_back('\r'); break;
              case 'u':
                // Our serializer only \u-escapes control chars;
                // substitute and skip the 4 hex digits.
                out.push_back('?');
                pos_ += 4;
                break;
              default: out.push_back(e); break;
            }
        }
        if (pos_ >= text_.size())
            return fail("closing '\"'");
        pos_++; // closing quote
        return true;
    }

    bool
    parseObject(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Object;
        pos_++; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("'\"' starting a key");
            std::string key;
            if (!parseString(key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("':'");
            pos_++;
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.fields.emplace_back(std::move(key), std::move(v));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == '}') {
                pos_++;
                return true;
            }
            return fail("',' or '}'");
        }
    }

    bool
    parseArray(JsonValue &out)
    {
        out.kind = JsonValue::Kind::Array;
        pos_++; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            pos_++;
            return true;
        }
        while (true) {
            skipWs();
            JsonValue v;
            if (!parseValue(v))
                return false;
            out.items.push_back(std::move(v));
            skipWs();
            if (pos_ < text_.size() && text_[pos_] == ',') {
                pos_++;
                continue;
            }
            if (pos_ < text_.size() && text_[pos_] == ']') {
                pos_++;
                return true;
            }
            return fail("',' or ']'");
        }
    }

    const std::string &text_;
    std::size_t pos_ = 0;
    std::string error_;
};

// --- Aggregated report model ------------------------------------------

struct AdviceRow
{
    std::string run;
    std::string move;
    unsigned fromColor = 0;
    unsigned toColor = 0;
    unsigned long long pages = 0;
    double predicted = 0;
    double measured = 0;
    bool validated = false;
};

struct CellRow
{
    std::string run;
    unsigned color = 0;
    std::string evictor;
    std::string victim;
    unsigned long long count = 0;
};

struct RunRow
{
    std::string label;
    unsigned long long conflicts = 0;
    unsigned long long classified = 0;
    bool reconciled = false;
    unsigned hotColor = 0;
    unsigned long long hotColorConflicts = 0;
    std::size_t adviceCount = 0;
};

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    for (char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const char *path = nullptr;
    std::size_t top = 10;
    bool as_json = false;
    bool validate = false;
    for (int a = 1; a < argc; a++) {
        std::string arg = argv[a];
        if (arg == "--top" && a + 1 < argc) {
            top = static_cast<std::size_t>(std::atoll(argv[++a]));
        } else if (arg == "--json") {
            as_json = true;
        } else if (arg == "--validate") {
            validate = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: color_report <profile.jsonl> [--top N] "
                         "[--json] [--validate]\n";
            return 0;
        } else if (!path) {
            path = argv[a];
        } else {
            std::cerr << "color_report: unexpected argument " << arg
                      << "\n";
            return 2;
        }
    }
    if (!path || top == 0) {
        std::cerr << "usage: color_report <profile.jsonl> [--top N] "
                     "[--json] [--validate]\n";
        return 2;
    }

    std::ifstream in(path);
    if (!in) {
        std::cerr << "color_report: cannot open " << path << "\n";
        return 2;
    }

    std::vector<RunRow> runs;
    std::vector<CellRow> cells;
    std::vector<AdviceRow> advice;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        if (line.empty())
            continue;
        JsonParser parser(line);
        JsonValue obj;
        if (!parser.parse(obj) ||
            obj.kind != JsonValue::Kind::Object) {
            std::cerr << "color_report: " << path << ":" << lineno
                      << ": " << parser.error() << "\n";
            return 2;
        }
        const JsonValue *prof = obj.find("profile");
        if (!prof || prof->kind != JsonValue::Kind::Object) {
            std::cerr << "color_report: " << path << ":" << lineno
                      << ": line has no \"profile\" object\n";
            return 2;
        }

        RunRow run;
        run.label = obj.text("label");
        if (run.label.empty())
            run.label = obj.text("workload");
        run.conflicts =
            static_cast<unsigned long long>(prof->num("totalConflicts"));
        run.classified = static_cast<unsigned long long>(
            prof->num("classifiedConflicts"));
        run.reconciled = prof->flag("reconciled");
        if (const JsonValue *cc = prof->find("colorConflicts");
            cc && cc->kind == JsonValue::Kind::Array) {
            for (std::size_t c = 0; c < cc->items.size(); c++) {
                auto v = static_cast<unsigned long long>(
                    cc->items[c].number);
                if (v > run.hotColorConflicts) {
                    run.hotColorConflicts = v;
                    run.hotColor = static_cast<unsigned>(c);
                }
            }
        }

        if (const JsonValue *cs = prof->find("cells");
            cs && cs->kind == JsonValue::Kind::Array) {
            for (const JsonValue &c : cs->items) {
                CellRow row;
                row.run = run.label;
                row.color = static_cast<unsigned>(c.num("color"));
                row.evictor = c.text("evictor");
                row.victim = c.text("victim");
                row.count =
                    static_cast<unsigned long long>(c.num("count"));
                cells.push_back(std::move(row));
            }
        }
        if (const JsonValue *av = prof->find("advice");
            av && av->kind == JsonValue::Kind::Array) {
            run.adviceCount = av->items.size();
            for (const JsonValue &a : av->items) {
                AdviceRow row;
                row.run = run.label;
                row.move = a.text("move");
                row.fromColor = static_cast<unsigned>(a.num("color"));
                row.toColor = static_cast<unsigned>(a.num("toColor"));
                row.pages = static_cast<unsigned long long>(
                    a.num("movePages"));
                row.predicted = a.num("predictedDelta");
                row.measured = a.num("measuredDelta");
                row.validated = a.flag("validated");
                advice.push_back(std::move(row));
            }
        }
        runs.push_back(std::move(run));
    }
    if (runs.empty()) {
        std::cerr << "color_report: " << path << ": no profile lines\n";
        return 2;
    }

    std::stable_sort(cells.begin(), cells.end(),
                     [](const CellRow &a, const CellRow &b) {
                         return a.count > b.count;
                     });
    if (cells.size() > top)
        cells.resize(top);

    std::size_t reconciled = 0;
    for (const RunRow &r : runs)
        if (r.reconciled)
            reconciled++;

    // The gate: a validated, sign-consistent measured improvement.
    const AdviceRow *best = nullptr;
    for (const AdviceRow &a : advice) {
        if (!a.validated || a.measured >= 0 || a.predicted >= 0)
            continue;
        if (!best || a.measured < best->measured)
            best = &a;
    }

    if (as_json) {
        std::ostringstream os;
        os << "{\"runs\":" << runs.size()
           << ",\"reconciled\":" << reconciled << ",\"topCells\":[";
        for (std::size_t i = 0; i < cells.size(); i++) {
            const CellRow &c = cells[i];
            os << (i ? "," : "") << "{\"run\":\"" << jsonEscape(c.run)
               << "\",\"color\":" << c.color << ",\"evictor\":\""
               << jsonEscape(c.evictor) << "\",\"victim\":\""
               << jsonEscape(c.victim) << "\",\"count\":" << c.count
               << "}";
        }
        os << "],\"advice\":[";
        for (std::size_t i = 0; i < advice.size(); i++) {
            const AdviceRow &a = advice[i];
            os << (i ? "," : "") << "{\"run\":\"" << jsonEscape(a.run)
               << "\",\"move\":\"" << jsonEscape(a.move)
               << "\",\"fromColor\":" << a.fromColor
               << ",\"toColor\":" << a.toColor
               << ",\"pages\":" << a.pages
               << ",\"predictedDelta\":" << a.predicted
               << ",\"measuredDelta\":" << a.measured
               << ",\"validated\":" << (a.validated ? "true" : "false")
               << "}";
        }
        os << "],\"validatedImprovement\":"
           << (best ? "true" : "false") << "}";
        std::cout << os.str() << "\n";
    } else {
        std::printf("color_report: %zu runs, %zu reconciled (%s)\n",
                    runs.size(), reconciled, path);
        std::printf("\n%-32s %12s %12s %5s %9s %6s\n", "run",
                    "conflicts", "classified", "recon", "hot-color",
                    "advice");
        for (const RunRow &r : runs)
            std::printf("%-32s %12llu %12llu %5s %9u %6zu\n",
                        r.label.c_str(), r.conflicts, r.classified,
                        r.reconciled ? "yes" : "NO", r.hotColor,
                        r.adviceCount);

        std::printf("\ntop %zu conflict cells (evictor -> victim)\n",
                    top);
        std::printf("%-32s %6s %-12s %-12s %10s\n", "run", "color",
                    "evictor", "victim", "conflicts");
        for (const CellRow &c : cells)
            std::printf("%-32s %6u %-12s %-12s %10llu\n",
                        c.run.c_str(), c.color, c.evictor.c_str(),
                        c.victim.c_str(), c.count);

        std::printf("\nrecoloring advice (%zu total)\n", advice.size());
        std::printf("%-32s %-10s %6s %4s %6s %11s %11s %s\n", "run",
                    "move", "from", "to", "pages", "predicted",
                    "measured", "status");
        for (const AdviceRow &a : advice)
            std::printf("%-32s %-10s %6u %4u %6llu %11.1f %11.1f %s\n",
                        a.run.c_str(), a.move.c_str(), a.fromColor,
                        a.toColor, a.pages, a.predicted,
                        a.validated ? a.measured : 0.0,
                        !a.validated        ? "unvalidated"
                        : a.measured < 0    ? "improved"
                                            : "no-improvement");
        if (best)
            std::printf("\nbest validated move: %s on %s, color %u -> "
                        "%u (%llu pages): measured %+.1f conflicts "
                        "(predicted %+.1f)\n",
                        best->move.c_str(), best->run.c_str(),
                        best->fromColor, best->toColor, best->pages,
                        best->measured, best->predicted);
    }

    if (validate) {
        if (reconciled != runs.size()) {
            std::cerr << "color_report: " << (runs.size() - reconciled)
                      << " of " << runs.size()
                      << " runs failed reconciliation\n";
            return 1;
        }
        if (!best) {
            std::cerr << "color_report: no validated advice measured "
                         "an improvement with the predicted sign\n";
            return 1;
        }
        std::cerr << "color_report: validation ok (" << best->move
                  << ": predicted " << best->predicted << ", measured "
                  << best->measured << ")\n";
    }
    return 0;
}
