/**
 * @file
 * bench_diff: compare a fresh BENCH_micro_throughput.json against the
 * committed baseline and fail on regression.
 *
 *   bench_diff <baseline.json> <current.json> [--threshold PCT]
 *              [--strict-keys]
 *
 * Both files are the flat one-object JSON micro_throughput writes:
 * string and numeric fields only, no nesting. Comparison rules:
 *
 *  - keys ending in "_ns" are per-iteration latencies: lower is
 *    better; current > baseline * (1 + threshold) is a regression.
 *  - "refsPerSecond" is throughput and "simdParallelEfficiency"
 *    is the epoch-engine intra-experiment scaling factor: higher is
 *    better; current < baseline * (1 - threshold) is a regression.
 *  - keys starting with "mt." are per-cell multi-tenant isolation
 *    metrics from BENCH_ext_multitenant.json; the ".missvar",
 *    ".p99slowdown" and ".crossevict" suffixes are lower-is-better,
 *    the rest are context.
 *  - keys starting with "prof." are conflict-profiler metrics from
 *    the profile-smoke job; the ".conflicts" suffix is lower-is-
 *    better, the rest are context.
 *  - keys starting with "hash." are hostile-index-function metrics
 *    from BENCH_ext_hashed_llc.json; the ".mcpi" suffix is lower-is-
 *    better, the rest are context.
 *  - every other numeric key is reported for context only.
 *
 * Keys present in only one file are listed but by default never fail
 * the run (benchmark filters and battery changes would otherwise
 * break CI spuriously); --strict-keys turns any one-sided key into a
 * failure, for pipelines that pin the battery and want to catch a
 * silently dropped benchmark. "mt.", "prof." and "hash." keys are
 * exempt from --strict-keys: baselines captured before the
 * multi-tenant bench, the conflict profiler or the index-function
 * battery existed stay usable under strict pipelines. Exit status:
 * 0 clean, 1 regression or strict-key mismatch, 2 usage/parse error.
 *
 * The parser is deliberately hand-rolled: the repo has no JSON
 * dependency and this format is a single flat object produced by a
 * snprintf a few lines long.
 */

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>

namespace
{

/** Flat {"key":value,...} -> numeric fields. Strings are skipped. */
bool
parseFlatJson(const std::string &path, std::map<std::string, double> &out)
{
    std::ifstream in(path);
    if (!in) {
        std::cerr << "bench_diff: cannot open " << path << "\n";
        return false;
    }
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string text = ss.str();

    std::size_t i = 0;
    auto skipWs = [&] {
        while (i < text.size() &&
               std::isspace(static_cast<unsigned char>(text[i])))
            i++;
    };
    auto fail = [&](const char *what) {
        std::cerr << "bench_diff: " << path << ": expected " << what
                  << " at offset " << i << "\n";
        return false;
    };

    skipWs();
    if (i >= text.size() || text[i] != '{')
        return fail("'{'");
    i++;
    skipWs();
    if (i < text.size() && text[i] == '}')
        return true; // empty object
    while (true) {
        skipWs();
        if (i >= text.size() || text[i] != '"')
            return fail("'\"' starting a key");
        std::size_t end = text.find('"', i + 1);
        if (end == std::string::npos)
            return fail("closing '\"' of a key");
        std::string key = text.substr(i + 1, end - i - 1);
        i = end + 1;
        skipWs();
        if (i >= text.size() || text[i] != ':')
            return fail("':'");
        i++;
        skipWs();
        if (i < text.size() && text[i] == '"') {
            // String value: skip (no escapes in our output).
            end = text.find('"', i + 1);
            if (end == std::string::npos)
                return fail("closing '\"' of a value");
            i = end + 1;
        } else {
            char *num_end = nullptr;
            double v = std::strtod(text.c_str() + i, &num_end);
            if (num_end == text.c_str() + i)
                return fail("a number");
            out[key] = v;
            i = static_cast<std::size_t>(num_end - text.c_str());
        }
        skipWs();
        if (i < text.size() && text[i] == ',') {
            i++;
            continue;
        }
        if (i < text.size() && text[i] == '}')
            return true;
        return fail("',' or '}'");
    }
}

bool
endsWith(const std::string &s, const char *suffix)
{
    std::size_t n = std::strlen(suffix);
    return s.size() >= n && s.compare(s.size() - n, n, suffix) == 0;
}

/** Multi-tenant isolation metric (BENCH_ext_multitenant.json)? */
bool
isMultiTenantKey(const std::string &key)
{
    return key.compare(0, 3, "mt.") == 0;
}

/** Lower-is-better multi-tenant metric? */
bool
isMultiTenantRegression(const std::string &key)
{
    return isMultiTenantKey(key) &&
           (endsWith(key, ".missvar") ||
            endsWith(key, ".p99slowdown") ||
            endsWith(key, ".crossevict"));
}

/** Conflict-profiler metric (profile-smoke's prof_summary.json)? */
bool
isProfileKey(const std::string &key)
{
    return key.compare(0, 5, "prof.") == 0;
}

/** Lower-is-better conflict-profiler metric? */
bool
isProfileRegression(const std::string &key)
{
    return isProfileKey(key) && endsWith(key, ".conflicts");
}

/** Hostile-index-function metric (BENCH_ext_hashed_llc.json)? */
bool
isHashedLlcKey(const std::string &key)
{
    return key.compare(0, 5, "hash.") == 0;
}

/** Lower-is-better hashed-LLC metric? (".conflictpct" and
 *  ".speedup_vs_pc" are context — they legitimately move when a
 *  policy improves on a different axis.) */
bool
isHashedLlcRegression(const std::string &key)
{
    return isHashedLlcKey(key) && endsWith(key, ".mcpi");
}

} // namespace

int
main(int argc, char **argv)
{
    double threshold_pct = 25.0;
    bool strict_keys = false;
    const char *baseline_path = nullptr;
    const char *current_path = nullptr;
    for (int a = 1; a < argc; a++) {
        std::string arg = argv[a];
        if (arg == "--threshold" && a + 1 < argc) {
            threshold_pct = std::atof(argv[++a]);
        } else if (arg == "--strict-keys") {
            strict_keys = true;
        } else if (arg == "--help" || arg == "-h") {
            std::cout << "usage: bench_diff <baseline.json> "
                         "<current.json> [--threshold PCT] "
                         "[--strict-keys]\n";
            return 0;
        } else if (!baseline_path) {
            baseline_path = argv[a];
        } else if (!current_path) {
            current_path = argv[a];
        } else {
            std::cerr << "bench_diff: unexpected argument " << arg << "\n";
            return 2;
        }
    }
    if (!baseline_path || !current_path || threshold_pct <= 0) {
        std::cerr << "usage: bench_diff <baseline.json> <current.json> "
                     "[--threshold PCT]\n";
        return 2;
    }

    std::map<std::string, double> base, cur;
    if (!parseFlatJson(baseline_path, base) ||
        !parseFlatJson(current_path, cur))
        return 2;

    const double slack = threshold_pct / 100.0;
    int regressions = 0;
    int compared = 0;
    int one_sided = 0;

    std::cout << "bench_diff: threshold " << threshold_pct << "%  ("
              << baseline_path << " -> " << current_path << ")\n";
    for (const auto &[key, base_v] : base) {
        auto it = cur.find(key);
        if (it == cur.end()) {
            std::cout << "  [skip] " << key << ": only in baseline\n";
            // mt.* cells come and go with the sweep grid, prof.*
            // keys with the smoke figure, and hash.* keys with the
            // index-function battery; none counts against
            // --strict-keys.
            if (!isMultiTenantKey(key) && !isProfileKey(key) &&
                !isHashedLlcKey(key))
                one_sided++;
            continue;
        }
        double cur_v = it->second;
        bool lower_better = endsWith(key, "_ns") ||
                            isMultiTenantRegression(key) ||
                            isProfileRegression(key) ||
                            isHashedLlcRegression(key);
        bool higher_better = key == "refsPerSecond" ||
                             key == "simdParallelEfficiency";
        if (!lower_better && !higher_better)
            continue; // informational field
        compared++;
        double delta_pct =
            base_v != 0 ? 100.0 * (cur_v - base_v) / base_v : 0.0;
        bool bad = lower_better ? cur_v > base_v * (1.0 + slack)
                                : cur_v < base_v * (1.0 - slack);
        std::printf("  [%s] %-28s base %12.2f  cur %12.2f  %+7.1f%%\n",
                    bad ? "FAIL" : " ok ", key.c_str(), base_v, cur_v,
                    delta_pct);
        if (bad)
            regressions++;
    }
    for (const auto &[key, v] : cur) {
        if (base.contains(key))
            continue;
        if (endsWith(key, "_ns") || key == "refsPerSecond") {
            std::cout << "  [new ] " << key << " = " << v
                      << " (no baseline)\n";
            one_sided++;
        } else if (isMultiTenantRegression(key) ||
                   isProfileRegression(key) ||
                   isHashedLlcRegression(key)) {
            // New isolation/profiler metrics vs an older baseline:
            // visible but exempt from --strict-keys.
            std::cout << "  [new ] " << key << " = " << v
                      << " (no baseline)\n";
        }
    }

    if (compared == 0) {
        std::cerr << "bench_diff: no comparable keys — baseline stale?\n";
        return 2;
    }
    if (regressions > 0) {
        std::cerr << "bench_diff: " << regressions << " of " << compared
                  << " metrics regressed beyond " << threshold_pct
                  << "%\n";
        return 1;
    }
    if (strict_keys && one_sided > 0) {
        std::cerr << "bench_diff: " << one_sided
                  << " keys present in only one file (--strict-keys)\n";
        return 1;
    }
    std::cout << "bench_diff: " << compared << " metrics within "
              << threshold_pct << "%\n";
    return 0;
}
