/**
 * @file
 * cdpcsim — the command-line driver for the CDPC simulator.
 *
 *   cdpcsim list
 *       The bundled SPEC95fp workloads.
 *   cdpcsim run <workload> [options]
 *       One experiment with a full execution/memory breakdown.
 *   cdpcsim compare <workload> [options]
 *       All four page mapping policies side by side.
 *   cdpcsim sweep <workload> [options]
 *       One policy across 1..16 CPUs.
 *   cdpcsim plan <workload> [options]
 *       The compiler summaries and the CDPC plan, no simulation;
 *       with --out FILE, also save the summaries for later staging.
 *   cdpcsim record <workload> --out FILE [options]
 *       Capture the demand reference trace of one run.
 *   cdpcsim replay FILE [options]
 *       Replay a recorded trace through a (possibly different)
 *       memory-system configuration.
 *   cdpcsim attribute <workload> [options]
 *       Per-array reference and miss attribution.
 *   cdpcsim hints FILE [options]
 *       Compute a CDPC plan from saved summaries (the run-time
 *       library step, decoupled from compilation).
 *   cdpcsim batch <spec-file> [options]
 *       Run a file of job specs (one per line: workload key=value
 *       ...) through the work-stealing batch engine; JSON-lines
 *       results to --out FILE or stdout. With --journal every
 *       committed job is recorded in a sidecar journal
 *       (<out>.journal) so a killed batch can be continued with
 *       --resume, skipping committed jobs and producing a merged
 *       output byte-identical to an uninterrupted run; the first
 *       SIGINT/SIGTERM drains gracefully (in-flight jobs finish,
 *       exit code 4 = interrupted, resumable).
 *   cdpcsim verify <figure|workload> [options]
 *       Run with the reference memory system in lockstep and report
 *       the verification counters; any divergence aborts with a
 *       minimal repro. A figure name (fig6 fig7 fig8 table2 tenant1)
 *       runs that golden grid under verification.
 *   cdpcsim profile <figure|workload> [options]
 *       Conflict-attribution profiling (DESIGN.md §15): run with the
 *       streaming profiler attached, print the per-color
 *       evictor→victim conflict matrix, per-color occupancy and
 *       pressure, and the recoloring advisor's ranked proposals;
 *       the best-predicted move is validated by re-running with the
 *       proposed preferred-color overrides and reporting the
 *       measured conflict-miss delta. --top N bounds the cells and
 *       advice shown; --out FILE writes one JSON object per run for
 *       tools/color_report.
 *   cdpcsim tenants <spec-file> [options]
 *       Run a multi-tenant scenario (DESIGN.md §12): N workloads
 *       co-scheduled over one machine under per-tenant color
 *       budgets, with per-tenant isolation metrics (miss rates,
 *       cross-tenant evictions, slowdown vs running alone); --out
 *       FILE saves the canonical scenario serialization.
 *
 * Options:
 *   --cpus N        processors (default 8)
 *   --policy P      pc | bh | cdpc | cdpc-touch (default cdpc)
 *   --machine M     scaled | scaled-2way | scaled-4mb | alpha | full |
 *                   scaled-slicedhash | dram-cache
 *   --cache KB      override external cache size (KB)
 *   --assoc N       override external cache associativity
 *   --prefetch      enable compiler-inserted prefetching
 *   --dynamic       enable the dynamic recoloring extension
 *   --unaligned     disable the Section 5.4 alignment/padding
 *   --no-cyclic     disable CDPC Step 4 (ablation)
 *   --no-greedy     disable CDPC Steps 2-3 ordering (ablation)
 *   --jobs N        worker threads for compare/sweep/batch
 *                   (default: hardware concurrency)
 *   --sim-threads N|auto    host threads sharding each experiment's
 *                   per-CPU reference streams (the epoch-parallel
 *                   engine, DESIGN.md §14); output is bit-identical
 *                   at every value. "auto" = hardware concurrency.
 *                   In batch mode the per-job thread budget is
 *                   capped at hardware_concurrency / --jobs so
 *                   nested parallelism never oversubscribes the
 *                   host. verify with N>1 runs each job twice —
 *                   lockstep-verified serial and sharded — and
 *                   byte-compares the canonical records.
 *   --seed N        base seed for seed=auto jobs in a batch file
 *   --out FILE      output path (record trace, plan summaries,
 *                   batch results)
 *   --mem-pressure PCT      pre-claim PCT% of physical memory with
 *                           reclaimable competitor pages
 *   --pressure-pattern P    low-half | uniform | fragmented
 *   --fallback F            any | nearest | steal (what a fault gets
 *                           when its preferred color is empty)
 *   --fault-plan SPEC       arm deterministic fault injection, e.g.
 *                           "physmem.alloc=fail*2@10,job.run#x=panic"
 *   --timeout SEC           per-job watchdog for batch (0 = off)
 *   --retries N             transient-error retries per batch job
 *   --journal               batch: keep a durable job journal next
 *                           to --out for crash-safe resumption
 *   --resume                batch: skip jobs already committed in
 *                           the journal (implies --journal)
 *   --fsync                 batch: fsync the journal and part file
 *                           after every commit (survives OS crashes,
 *                           not just process kills)
 *   --trace FILE            write a Chrome trace_event JSON trace
 *                           (load in Perfetto or chrome://tracing)
 *   --metrics FILE          collect the metrics registry and write
 *                           it as JSON on exit
 *   --stats-interval N      capture per-CPU interval snapshots every
 *                           N demand references (0 = off)
 *   --verify-every N        lockstep-verify against the reference
 *                           memory system, deep-comparing the full
 *                           structural state every N references
 *                           (any command; implied by verify)
 *   --audit-every N         run the runtime structural auditors
 *                           every N references (0 = off)
 *
 * Exit codes: 0 success, 1 partial failure (quarantined batch
 * jobs), 2 usage or fatal (user) error, 3 internal panic,
 * 4 interrupted by SIGINT/SIGTERM after a graceful drain — with
 * --journal the batch is resumable via --resume.
 */

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/faultpoint.h"
#include "common/signals.h"
#include "common/stats.h"
#include "common/table.h"
#include "compiler/summaries_io.h"
#include "harness/attribution.h"
#include "harness/experiment.h"
#include "harness/spec.h"
#include "machine/tracefile.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/runner.h"
#include "tenant/scenario.h"
#include "tenant/spec.h"
#include "verify/golden.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"

using namespace cdpc;

namespace
{

struct CliOptions
{
    std::string command;
    std::string workload;
    std::uint32_t cpus = 8;
    MappingPolicy policy = MappingPolicy::Cdpc;
    std::string machine = "scaled";
    std::uint64_t cacheKb = 0;
    std::uint32_t assoc = 0;
    bool prefetch = false;
    bool dynamic = false;
    bool unaligned = false;
    bool noCyclic = false;
    bool noGreedy = false;
    std::string out;
    /** Batch worker threads; 0 means hardware_concurrency. */
    unsigned jobs = 0;
    /** Base seed for seed=auto jobs in a batch file. */
    std::uint64_t seed = 1;
    /** Percent of physical memory pre-claimed by competitors. */
    double memPressure = 0.0;
    std::string pressurePattern = "fragmented";
    std::string fallback = "any";
    /** Fault-injection plan, armed process-wide before dispatch. */
    std::string faultPlan;
    /** Per-job watchdog timeout for batch jobs; 0 disables. */
    double timeoutSec = 0.0;
    /** Transient-error retries per batch job. */
    std::uint32_t retries = 0;
    /** Keep a durable job journal next to --out (crash-safe). */
    bool journal = false;
    /** Resume from the journal's committed prefix. */
    bool resume = false;
    /** fsync the journal/part file after every commit. */
    bool fsyncEach = false;
    /** Chrome trace_event JSON output path; empty disables tracing. */
    std::string traceFile;
    /** Metrics-registry JSON output path; empty leaves metrics off. */
    std::string metricsFile;
    /** Interval-snapshot period in demand references; 0 disables. */
    std::uint32_t statsInterval = 0;
    /** Lockstep-verification deep-compare cadence; 0 disables. */
    std::uint64_t verifyEvery = 0;
    /** Runtime structural-audit cadence; 0 disables. */
    std::uint64_t auditEvery = 0;
    /** Epoch-engine host threads per experiment; 0 = auto. */
    std::uint32_t simThreads = 1;
    /** Matrix cells / advice entries shown by `profile`. */
    std::uint32_t top = 10;
    /** Attach the conflict profiler (tenants runs). */
    bool profile = false;
};

[[noreturn]] void
usage(const char *msg = nullptr)
{
    // A half-written trace is worse than none: close the JSON
    // footer before exiting on a usage error.
    obs::finalizeTrace();
    if (msg)
        std::cerr << "cdpcsim: " << msg << "\n\n";
    std::cerr <<
        "usage: cdpcsim <command> [workload|file] [options]\n"
        "commands:\n"
        "  list                 the bundled SPEC95fp workloads\n"
        "  run <workload>       one experiment, full breakdown\n"
        "  compare <workload>   all four mapping policies side by "
        "side\n"
        "  sweep <workload>     one policy across 1..16 CPUs\n"
        "  plan <workload>      compiler summaries + CDPC plan, no "
        "simulation\n"
        "  record <workload>    capture a demand reference trace "
        "(--out)\n"
        "  replay <trace>       replay a recorded trace\n"
        "  attribute <workload> per-array reference/miss "
        "attribution\n"
        "  hints <summaries>    CDPC plan from saved summaries\n"
        "  batch <spec-file>    job specs through the batch engine\n"
        "  verify <fig|wkld>    lockstep differential verification\n"
        "  profile <fig|wkld>   conflict attribution: evictor->victim "
        "matrix,\n"
        "                       per-color pressure, recoloring advice "
        "(--top N,\n"
        "                       --out FILE for tools/color_report)\n"
        "  tenants <spec-file>  multi-tenant scenario with isolation "
        "metrics\n"
        "                       (--profile attributes cross-tenant "
        "conflicts)\n"
        "options: --cpus N --policy pc|bh|cdpc|cdpc-touch\n"
        "         --machine scaled|scaled-2way|scaled-4mb|alpha|full|\n"
        "                   scaled-slicedhash|dram-cache\n"
        "         --cache KB --assoc N --prefetch --dynamic\n"
        "         --unaligned --no-cyclic --no-greedy\n"
        "         --jobs N --seed N --out FILE\n"
        "         --mem-pressure PCT --pressure-pattern "
        "low-half|uniform|fragmented\n"
        "         --fallback any|nearest|steal --fault-plan SPEC\n"
        "         --timeout SEC --retries N\n"
        "         --journal --resume --fsync (crash-safe batches)\n"
        "         --trace FILE --metrics FILE --stats-interval N\n"
        "         --verify-every N --audit-every N\n"
        "         --sim-threads N|auto (epoch-parallel engine; "
        "bit-identical output)\n"
        "         --top N (profile: cells/advice shown) --profile "
        "(tenants)\n"
        "exit codes: 0 success, 1 quarantined jobs, 2 usage/fatal,\n"
        "            3 internal panic, 4 interrupted (resumable "
        "with --resume)\n";
    std::exit(msg ? 2 : 0);
}

MappingPolicy
parsePolicy(const std::string &s)
{
    if (s == "pc" || s == "page-coloring")
        return MappingPolicy::PageColoring;
    if (s == "bh" || s == "bin-hopping")
        return MappingPolicy::BinHopping;
    if (s == "cdpc")
        return MappingPolicy::Cdpc;
    if (s == "cdpc-touch")
        return MappingPolicy::CdpcTouchOrder;
    usage("unknown policy");
}

CliOptions
parseArgs(int argc, char **argv)
{
    CliOptions o;
    if (argc < 2)
        usage();
    o.command = argv[1];
    if (o.command == "--help" || o.command == "-h" ||
        o.command == "help")
        usage();
    int i = 2;
    if (i < argc && argv[i][0] != '-')
        o.workload = argv[i++];
    auto need_value = [&](const char *flag) -> std::string {
        if (i >= argc)
            usage((std::string(flag) + " needs a value").c_str());
        return argv[i++];
    };
    while (i < argc) {
        std::string a = argv[i++];
        if (a == "--cpus")
            o.cpus = static_cast<std::uint32_t>(
                std::atoi(need_value("--cpus").c_str()));
        else if (a == "--policy")
            o.policy = parsePolicy(need_value("--policy"));
        else if (a == "--machine")
            o.machine = need_value("--machine");
        else if (a == "--cache")
            o.cacheKb = static_cast<std::uint64_t>(
                std::atoll(need_value("--cache").c_str()));
        else if (a == "--assoc")
            o.assoc = static_cast<std::uint32_t>(
                std::atoi(need_value("--assoc").c_str()));
        else if (a == "--prefetch")
            o.prefetch = true;
        else if (a == "--dynamic")
            o.dynamic = true;
        else if (a == "--unaligned")
            o.unaligned = true;
        else if (a == "--no-cyclic")
            o.noCyclic = true;
        else if (a == "--no-greedy")
            o.noGreedy = true;
        else if (a == "--out")
            o.out = need_value("--out");
        else if (a == "--jobs")
            o.jobs = static_cast<unsigned>(
                std::atoi(need_value("--jobs").c_str()));
        else if (a == "--seed")
            o.seed = static_cast<std::uint64_t>(
                std::atoll(need_value("--seed").c_str()));
        else if (a == "--mem-pressure")
            o.memPressure = std::atof(need_value("--mem-pressure")
                                          .c_str());
        else if (a == "--pressure-pattern")
            o.pressurePattern = need_value("--pressure-pattern");
        else if (a == "--fallback")
            o.fallback = need_value("--fallback");
        else if (a == "--fault-plan")
            o.faultPlan = need_value("--fault-plan");
        else if (a == "--timeout")
            o.timeoutSec = std::atof(need_value("--timeout").c_str());
        else if (a == "--retries")
            o.retries = static_cast<std::uint32_t>(
                std::atoi(need_value("--retries").c_str()));
        else if (a == "--journal")
            o.journal = true;
        else if (a == "--resume")
            o.resume = o.journal = true;
        else if (a == "--fsync")
            o.fsyncEach = true;
        else if (a == "--trace")
            o.traceFile = need_value("--trace");
        else if (a == "--metrics")
            o.metricsFile = need_value("--metrics");
        else if (a == "--stats-interval")
            o.statsInterval = static_cast<std::uint32_t>(
                std::atoi(need_value("--stats-interval").c_str()));
        else if (a == "--verify-every")
            o.verifyEvery = static_cast<std::uint64_t>(
                std::atoll(need_value("--verify-every").c_str()));
        else if (a == "--audit-every")
            o.auditEvery = static_cast<std::uint64_t>(
                std::atoll(need_value("--audit-every").c_str()));
        else if (a == "--top")
            o.top = static_cast<std::uint32_t>(
                std::atoi(need_value("--top").c_str()));
        else if (a == "--profile")
            o.profile = true;
        else if (a == "--sim-threads") {
            std::string v = need_value("--sim-threads");
            o.simThreads =
                v == "auto"
                    ? 0
                    : static_cast<std::uint32_t>(std::atoi(v.c_str()));
        }
        else if (a == "--help" || a == "-h")
            usage();
        else
            usage(("unknown option " + a).c_str());
    }
    return o;
}

MachineConfig
makeMachine(const CliOptions &o, std::uint32_t cpus)
{
    MachineConfig m;
    if (o.machine == "scaled")
        m = MachineConfig::paperScaled(cpus);
    else if (o.machine == "scaled-2way")
        m = MachineConfig::paperScaledTwoWay(cpus);
    else if (o.machine == "scaled-4mb")
        m = MachineConfig::paperScaledBig(cpus);
    else if (o.machine == "alpha")
        m = MachineConfig::alphaScaled(cpus);
    else if (o.machine == "full")
        m = MachineConfig::paperFull(cpus);
    else if (o.machine == "scaled-slicedhash")
        m = MachineConfig::paperScaledSlicedHash(cpus);
    else if (o.machine == "dram-cache")
        m = MachineConfig::dramCacheMode(cpus);
    else
        usage("unknown machine preset");
    if (o.cacheKb)
        m.l2.sizeBytes = o.cacheKb * 1024;
    if (o.assoc)
        m.l2.assoc = o.assoc;
    m.validate();
    return m;
}

ExperimentConfig
makeConfig(const CliOptions &o, std::uint32_t cpus,
           MappingPolicy policy)
{
    ExperimentConfig cfg;
    cfg.machine = makeMachine(o, cpus);
    cfg.mapping = policy;
    cfg.prefetch = o.prefetch;
    cfg.dynamicRecolor = o.dynamic;
    cfg.aligned = !o.unaligned;
    cfg.cdpcOptions.cyclicAssignment = !o.noCyclic;
    cfg.cdpcOptions.greedyOrdering = !o.noGreedy;
    cfg.pressure.occupancy = o.memPressure / 100.0;
    cfg.pressure.pattern = parsePressurePattern(o.pressurePattern);
    cfg.pressure.seed = o.seed;
    cfg.fallback = parseFallback(o.fallback);
    cfg.sim.statsInterval = o.statsInterval;
    cfg.sim.simThreads = o.simThreads;
    cfg.verifyEvery = o.verifyEvery;
    cfg.auditEvery = o.auditEvery;
    return cfg;
}

int
cmdList()
{
    TextTable t({"workload", "paper data", "model data", "arrays",
                 "description"});
    for (const WorkloadInfo &w : allWorkloads()) {
        Program p = w.build();
        t.addRow({w.name,
                  w.paperDataSetMB == 1
                      ? "< 1MB"
                      : std::to_string(w.paperDataSetMB) + "MB",
                  formatBytes(p.dataSetBytes()),
                  std::to_string(p.arrays.size()), w.description});
    }
    std::cout << t.render();
    return 0;
}

void
printBreakdown(const ExperimentResult &r)
{
    const WeightedTotals &t = r.totals;
    double combined = t.combinedTime();
    std::cout << r.workload << " on " << r.ncpus << " CPUs, "
              << r.policy << ":\n\n";

    TextTable exec({"category", "cycles (M)", "share"});
    auto row = [&](const char *name, double v) {
        exec.addRow({name, fmtF(v / 1e6, 1),
                     fmtF(100.0 * v / combined, 1) + "%"});
    };
    row("execution", t.busy);
    row("memory stall", t.memStall);
    row("kernel", t.kernel);
    row("load imbalance", t.imbalance);
    row("sequential", t.sequential);
    row("suppressed", t.suppressed);
    row("synchronization", t.sync);
    exec.addSeparator();
    exec.addRow({"combined", fmtF(combined / 1e6, 1), "100.0%"});
    std::cout << exec.render() << "\n";

    TextTable mem({"memory stall source", "cycles (M)", "share"});
    auto mrow = [&](const char *name, double v) {
        if (t.memStall > 0) {
            mem.addRow({name, fmtF(v / 1e6, 1),
                        fmtF(100.0 * v / t.memStall, 1) + "%"});
        }
    };
    mrow("on-chip (external-cache hits)", t.l2HitStall);
    mrow("cold misses", t.missStallOf(MissKind::Cold));
    mrow("capacity misses", t.missStallOf(MissKind::Capacity));
    mrow("conflict misses", t.missStallOf(MissKind::Conflict));
    mrow("true sharing", t.missStallOf(MissKind::TrueSharing));
    mrow("false sharing", t.missStallOf(MissKind::FalseSharing));
    mrow("upgrades", t.missStallOf(MissKind::Upgrade));
    mrow("late prefetches", t.prefetchLateStall);
    mrow("prefetch queue full", t.prefetchFullStall);
    std::cout << mem.render() << "\n";

    std::cout << "MCPI " << fmtF(t.mcpi(), 3) << ", bus utilization "
              << fmtF(t.busUtilization() * 100.0, 1)
              << "%, wall " << fmtI(static_cast<std::uint64_t>(t.wall))
              << " cycles\n";
    if (r.plan) {
        std::cout << "CDPC: " << r.plan->coloring.hints.size()
                  << " hints over " << r.plan->segments.size()
                  << " segments, "
                  << fmtF(r.hintsHonored * 100.0, 1) << "% honored\n";
    }
    if (r.recolorStats.recolorings || r.recolorStats.conflictsObserved) {
        std::cout << "dynamic recoloring: "
                  << r.recolorStats.recolorings << " recolorings, "
                  << fmtF(r.recolorStats.overheadCycles / 1e6, 1)
                  << "M overhead cycles\n";
    }
}

int
cmdRun(const CliOptions &o)
{
    if (o.workload.empty())
        usage("run needs a workload");
    ExperimentResult r =
        runWorkload(o.workload, makeConfig(o, o.cpus, o.policy));
    printBreakdown(r);
    return 0;
}

int
cmdCompare(const CliOptions &o)
{
    if (o.workload.empty())
        usage("compare needs a workload");
    const MappingPolicy policies[] = {
        MappingPolicy::PageColoring, MappingPolicy::BinHopping,
        MappingPolicy::Cdpc, MappingPolicy::CdpcTouchOrder};
    std::vector<runner::JobSpec> specs;
    for (MappingPolicy pol : policies)
        specs.push_back(
            runner::makeJob(o.workload, makeConfig(o, o.cpus, pol)));
    runner::BatchOptions bopts;
    bopts.jobs = o.jobs;
    std::vector<ExperimentResult> results =
        runner::runBatchOrThrow(std::move(specs), bopts);

    TextTable t({"policy", "combined (M)", "MCPI", "conflict%",
                 "bus", "speedup vs pc"});
    double pc = 0.0;
    for (std::size_t i = 0; i < results.size(); i++) {
        MappingPolicy pol = policies[i];
        const ExperimentResult &r = results[i];
        double combined = r.totals.combinedTime();
        if (pol == MappingPolicy::PageColoring)
            pc = combined;
        double conf =
            r.totals.memStall > 0
                ? 100.0 * r.totals.missStallOf(MissKind::Conflict) /
                      r.totals.memStall
                : 0.0;
        t.addRow({r.policy, fmtF(combined / 1e6, 0),
                  fmtF(r.totals.mcpi(), 2), fmtF(conf, 1) + "%",
                  fmtF(r.totals.busUtilization() * 100.0, 1) + "%",
                  fmtF(pc / combined, 2) + "x"});
    }
    std::cout << o.workload << " on " << o.cpus << " CPUs ("
              << o.machine << "):\n" << t.render();
    return 0;
}

int
cmdSweep(const CliOptions &o)
{
    if (o.workload.empty())
        usage("sweep needs a workload");
    const std::uint32_t cpu_counts[] = {1u, 2u, 4u, 8u, 16u};
    std::vector<runner::JobSpec> specs;
    for (std::uint32_t p : cpu_counts)
        specs.push_back(
            runner::makeJob(o.workload, makeConfig(o, p, o.policy)));
    runner::BatchOptions bopts;
    bopts.jobs = o.jobs;
    std::vector<ExperimentResult> results =
        runner::runBatchOrThrow(std::move(specs), bopts);

    TextTable t({"CPUs", "combined (M)", "wall (M)", "speedup",
                 "MCPI", "bus"});
    double wall1 = 0.0;
    for (std::size_t i = 0; i < results.size(); i++) {
        std::uint32_t p = cpu_counts[i];
        const ExperimentResult &r = results[i];
        if (p == 1)
            wall1 = r.totals.wall;
        t.addRow({std::to_string(p),
                  fmtF(r.totals.combinedTime() / 1e6, 0),
                  fmtF(r.totals.wall / 1e6, 0),
                  fmtF(wall1 / r.totals.wall, 2) + "x",
                  fmtF(r.totals.mcpi(), 2),
                  fmtF(r.totals.busUtilization() * 100.0, 1) + "%"});
    }
    std::cout << o.workload << ", " << mappingName(o.policy) << " ("
              << o.machine << "):\n" << t.render();
    return 0;
}

int
cmdPlan(const CliOptions &o)
{
    if (o.workload.empty())
        usage("plan needs a workload");
    Program prog = buildWorkload(o.workload);
    MachineConfig m = makeMachine(o, o.cpus);
    CompilerOptions copts;
    copts.align = !o.unaligned;
    copts.aligner.lineBytes = m.l2.lineBytes;
    copts.aligner.l1SpanBytes = m.l1d.sizeBytes / m.l1d.assoc;
    CompileResult compiled = compileProgram(prog, copts);
    CdpcOptions cdpc_opts;
    cdpc_opts.cyclicAssignment = !o.noCyclic;
    cdpc_opts.greedyOrdering = !o.noGreedy;
    CdpcPlan plan = computeCdpcPlan(compiled.summaries, cdpcParams(m),
                                    cdpc_opts);
    if (!o.out.empty()) {
        saveSummaries(compiled.summaries, o.out);
        std::cout << "saved summaries to " << o.out << "\n";
    }

    std::cout << o.workload << ", " << o.cpus << " CPUs, "
              << m.numColors() << " colors:\n"
              << "  " << compiled.summaries.partitions.size()
              << " partition summaries, "
              << compiled.summaries.comms.size()
              << " comm patterns, " << compiled.summaries.groups.size()
              << " group pairs, "
              << compiled.summaries.unanalyzable.size()
              << " unanalyzable arrays\n"
              << "  " << plan.segments.size() << " segments in "
              << plan.sets.size() << " uniform access sets, "
              << plan.coloring.hints.size() << " page hints\n";

    TextTable t({"set", "segments", "pages"});
    for (const UniformSet &set : plan.sets) {
        std::uint64_t pages = 0;
        for (std::size_t id : set.segIds)
            pages += plan.segments[id].numPages;
        t.addRow({set.procs.str(), std::to_string(set.segIds.size()),
                  std::to_string(pages)});
    }
    std::cout << t.render();
    return 0;
}

int
cmdAttribute(const CliOptions &o)
{
    if (o.workload.empty())
        usage("attribute needs a workload");
    AttributionResult res =
        attributeMisses(findWorkload(o.workload).name,
                        makeConfig(o, o.cpus, o.policy));
    std::cout << o.workload << " on " << o.cpus << " CPUs, "
              << mappingName(o.policy) << ": per-array misses\n";
    TextTable t({"array", "size", "refs(K)", "misses(K)",
                 "miss rate", "conflict(K)", "capacity(K)",
                 "sharing(K)"});
    auto add = [&](const ArrayAttribution &a) {
        if (a.refs == 0)
            return;
        double sharing =
            static_cast<double>(
                a.missCount[static_cast<int>(MissKind::TrueSharing)] +
                a.missCount[static_cast<int>(
                    MissKind::FalseSharing)]);
        t.addRow({
            a.name,
            formatBytes(a.sizeBytes),
            fmtF(a.refs / 1e3, 1),
            fmtF(a.l2Misses / 1e3, 1),
            fmtF(a.missRate() * 100.0, 1) + "%",
            fmtF(a.missCount[static_cast<int>(MissKind::Conflict)] /
                     1e3, 1),
            fmtF(a.missCount[static_cast<int>(MissKind::Capacity)] /
                     1e3, 1),
            fmtF(sharing / 1e3, 1),
        });
    };
    for (const ArrayAttribution &a : res.arrays)
        add(a);
    add(res.other);
    std::cout << t.render();
    return 0;
}

int
cmdHints(const CliOptions &o)
{
    if (o.workload.empty())
        usage("hints needs a summaries file");
    AccessSummaries summaries = loadSummaries(o.workload);
    MachineConfig m = makeMachine(o, o.cpus);
    CdpcOptions cdpc_opts;
    cdpc_opts.cyclicAssignment = !o.noCyclic;
    cdpc_opts.greedyOrdering = !o.noGreedy;
    CdpcPlan plan =
        computeCdpcPlan(summaries, cdpcParams(m), cdpc_opts);
    std::cout << "plan for " << summaries.programName << " on "
              << o.cpus << " CPUs (" << m.numColors()
              << " colors): " << plan.segments.size()
              << " segments, " << plan.coloring.hints.size()
              << " hints\n";
    // Print the first few hints as the madvise payload preview.
    std::size_t show =
        std::min<std::size_t>(plan.coloring.hints.size(), 16);
    for (std::size_t i = 0; i < show; i++) {
        const ColorHint &h = plan.coloring.hints[i];
        std::cout << "  vpn " << h.vpn << " -> color " << h.color
                  << "\n";
    }
    if (plan.coloring.hints.size() > show)
        std::cout << "  ... " << plan.coloring.hints.size() - show
                  << " more\n";
    return 0;
}

/**
 * Parse one batch-file line into a JobSpec. Grammar:
 *   <workload> [key=value]...
 * with keys cpus, policy, machine, cache, assoc, prefetch, dynamic,
 * aligned, racy, cyclic, greedy, seed (integer or "auto"), pressure
 * (percent), pattern, fallback, interval (snapshot period),
 * simthreads (epoch-engine threads, integer or "auto"; capped at
 * hardware_concurrency / --jobs at dispatch), trace
 * (0|1 sim-event opt-in under --trace), name and tags
 * (comma-separated). Unset keys inherit the command-line defaults,
 * so a spec file can be as terse as one workload per line.
 *
 * Batch jobs default trace=0 — with hundreds of jobs the per-access
 * sim events would swamp the file — so a spec opts the interesting
 * jobs back in. Runner spans (queue/attempt/retry) are always
 * emitted for every job when --trace is given.
 */
runner::JobSpec
parseBatchLine(const std::string &line, std::size_t index,
               const CliOptions &defaults)
{
    std::istringstream in(line);
    std::string workload;
    in >> workload;

    CliOptions o = defaults;
    runner::JobSpec spec;
    spec.trace = false;
    bool auto_seed = false;
    std::uint64_t seed = defaults.seed;
    std::string kv;
    while (in >> kv) {
        auto eq = kv.find('=');
        fatalIf(eq == std::string::npos, "batch line ", index + 1,
                ": expected key=value, got '", kv, "'");
        std::string key = kv.substr(0, eq);
        std::string value = kv.substr(eq + 1);
        auto flag = [&](const char *name) {
            fatalIf(value != "0" && value != "1", "batch line ",
                    index + 1, ": ", name, " wants 0 or 1, got '",
                    value, "'");
            return value == "1";
        };
        if (key == "cpus")
            o.cpus = static_cast<std::uint32_t>(std::atoi(value.c_str()));
        else if (key == "policy")
            o.policy = parsePolicy(value);
        else if (key == "machine")
            o.machine = value;
        else if (key == "cache")
            o.cacheKb =
                static_cast<std::uint64_t>(std::atoll(value.c_str()));
        else if (key == "assoc")
            o.assoc = static_cast<std::uint32_t>(std::atoi(value.c_str()));
        else if (key == "prefetch")
            o.prefetch = flag("prefetch");
        else if (key == "dynamic")
            o.dynamic = flag("dynamic");
        else if (key == "aligned")
            o.unaligned = !flag("aligned");
        else if (key == "racy")
            spec.config.binHopRacy = flag("racy");
        else if (key == "cyclic")
            o.noCyclic = !flag("cyclic");
        else if (key == "greedy")
            o.noGreedy = !flag("greedy");
        else if (key == "pressure")
            o.memPressure = std::atof(value.c_str());
        else if (key == "pattern")
            o.pressurePattern = value;
        else if (key == "fallback")
            o.fallback = value;
        else if (key == "interval")
            o.statsInterval =
                static_cast<std::uint32_t>(std::atoi(value.c_str()));
        else if (key == "simthreads")
            o.simThreads =
                value == "auto"
                    ? 0
                    : static_cast<std::uint32_t>(
                          std::atoi(value.c_str()));
        else if (key == "trace")
            spec.trace = flag("trace");
        else if (key == "seed" && value == "auto")
            auto_seed = true;
        else if (key == "seed")
            seed = static_cast<std::uint64_t>(std::atoll(value.c_str()));
        else if (key == "name")
            spec.name = value;
        else if (key == "tags") {
            std::istringstream tags(value);
            std::string tag;
            while (std::getline(tags, tag, ','))
                if (!tag.empty())
                    spec.tags.push_back(tag);
        } else {
            fatal("batch line ", index + 1, ": unknown key '", key,
                  "'");
        }
    }
    bool racy = spec.config.binHopRacy;
    spec.workload = workload;
    spec.config = makeConfig(o, o.cpus, o.policy);
    spec.config.binHopRacy = racy;
    spec.config.seed =
        auto_seed ? runner::deriveJobSeed(defaults.seed, index) : seed;
    return spec;
}

int
cmdBatch(const CliOptions &o)
{
    if (o.workload.empty())
        usage("batch needs a spec file");
    std::ifstream in(o.workload);
    fatalIf(!in, "cannot open batch file ", o.workload);

    std::vector<runner::JobSpec> specs;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        lineno++;
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        specs.push_back(
            parseBatchLine(line.substr(first), specs.size(), o));
    }
    fatalIf(specs.empty(), "batch file ", o.workload, " has no jobs");

    // Nested-parallelism budget: each batch worker may itself shard
    // its experiment with the epoch engine (simthreads=), but the
    // product of the two levels must never oversubscribe the host.
    // Cap per-job threads at hardware_concurrency / workers; the
    // clamp is output-neutral (results are bit-identical at every
    // simThreads value), so the same spec file produces the same
    // bytes on any machine.
    {
        const unsigned hw =
            std::max(1u, std::thread::hardware_concurrency());
        const unsigned workers = o.jobs ? std::max(1u, o.jobs) : hw;
        const std::uint32_t budget = std::max(1u, hw / workers);
        std::size_t clamped = 0;
        for (runner::JobSpec &spec : specs) {
            std::uint32_t req = spec.config.sim.simThreads;
            if (req == 0)
                req = hw; // auto resolves before the cap
            if (req > budget) {
                spec.config.sim.simThreads = budget;
                clamped++;
            } else {
                spec.config.sim.simThreads = req;
            }
        }
        if (clamped > 0) {
            CDPC_METRIC_COUNT("runner.simThreadsClamped",
                              static_cast<std::int64_t>(clamped));
            std::cerr << "cdpcsim: capped sim-threads to " << budget
                      << " on " << clamped << " job(s) ("
                      << workers << " batch workers on " << hw
                      << " host threads)\n";
        }
    }

    // JSONL goes to --out FILE (summary table to stdout), or to
    // stdout itself (summary suppressed) for piping into jq & co.
    bool to_stdout = o.out.empty();
    fatalIf(o.journal && to_stdout,
            "--journal/--resume need --out FILE (the journal lives "
            "next to the output file)");

    if (o.resume &&
        runner::DurableJsonlSink::manifestComplete(o.out)) {
        std::cout << "batch already complete (manifest present); "
                  << "results in " << o.out << "\n";
        return 0;
    }

    std::unique_ptr<runner::ResultSink> sink;
    runner::DurableJsonlSink *durable = nullptr;
    if (o.journal) {
        runner::DurableJsonlSink::Options dopts;
        dopts.resume = o.resume;
        dopts.fsyncEach = o.fsyncEach;
        auto d = std::make_unique<runner::DurableJsonlSink>(
            o.out, specs, dopts);
        durable = d.get();
        sink = std::move(d);
    } else if (to_stdout) {
        sink = std::make_unique<runner::JsonlResultSink>(std::cout);
    } else {
        sink = std::make_unique<runner::JsonlResultSink>(o.out);
    }
    if (durable && durable->resumedCount() > 0 && !to_stdout) {
        std::cout << "resuming: " << durable->resumedCount() << " of "
                  << specs.size() << " jobs already committed"
                  << (durable->repairedTail()
                          ? " (healed a torn journal tail)"
                          : "")
                  << "\n";
    }

    runner::ThreadPool pool(o.jobs);
    runner::Batch batch(pool);
    for (runner::JobSpec &spec : specs)
        batch.add(std::move(spec));
    runner::ProgressReporter progress(batch.size());
    runner::RunPolicy policy;
    policy.timeoutSeconds = o.timeoutSec;
    policy.maxRetries = o.retries;

    // First SIGINT/SIGTERM drains: queued jobs cancel, in-flight
    // jobs finish and commit, then exit 4 (resumable). A second
    // signal falls through to the default disposition and kills.
    signals::installDrainHandlers();
    runner::BatchControl control;
    control.cancel = &signals::drainToken();
    if (durable)
        control.skip = durable->committed();

    std::vector<runner::JobResult> results =
        batch.run(&progress, sink.get(), policy, &control);
    progress.finish();
    runner::joinAbandonedJobThreads();
    const bool drained = signals::drainToken().cancelled();
    const std::string drain_signal = signals::drainSignalName();
    signals::resetDrainHandlers();

    std::size_t quarantined = 0, cancelled = 0;
    for (const runner::JobResult &r : results) {
        if (r.quarantined())
            quarantined++;
        if (r.outcome == runner::JobOutcome::Cancelled)
            cancelled++;
    }

    // Only a run that committed every job publishes the final
    // output + manifest; a drained run leaves the part/journal
    // pair behind for --resume.
    if (durable && !drained)
        durable->finalize();

    if (!to_stdout) {
        TextTable t({"job", "name", "cpus", "combined (M)", "MCPI",
                     "attempts", "status"});
        for (const runner::JobResult &r : results) {
            std::string status = runner::jobOutcomeName(r.outcome);
            if (r.quarantined())
                status += " (" + r.errorKind + ": " + r.error + ")";
            t.addRow({std::to_string(r.index), r.spec.displayName(),
                      std::to_string(r.spec.config.machine.numCpus),
                      r.ok() ? fmtF(r.result->totals.combinedTime() /
                                        1e6, 0)
                             : "-",
                      r.ok() ? fmtF(r.result->totals.mcpi(), 2) : "-",
                      std::to_string(r.attempts), status});
        }
        std::cout << t.render();
        std::cout << results.size() << " jobs on " << pool.workerCount()
                  << " workers, " << quarantined
                  << " quarantined; results in " << o.out << "\n";
    }
    if (drained) {
        std::cerr << "cdpcsim: batch interrupted (" << drain_signal
                  << "): " << cancelled << " jobs not run"
                  << (durable ? "; continue with --resume" : "")
                  << "\n";
        return 4;
    }
    return quarantined == 0 ? 0 : 1;
}

int
cmdVerify(const CliOptions &o)
{
    if (o.workload.empty())
        usage("verify needs a figure (fig6 fig7 fig8 table2 tenant1) "
              "or a workload");
    // Per-reference lockstep checks always run in verify mode; the
    // cadence only controls the expensive full-structure compares.
    const std::uint64_t deep_every =
        o.verifyEvery ? o.verifyEvery : 4096;

    const std::vector<std::string> &figures = verify::goldenFigures();
    bool is_figure = std::find(figures.begin(), figures.end(),
                               o.workload) != figures.end();

    std::vector<std::string> labels;
    std::vector<runner::JobSpec> specs;
    if (is_figure) {
        for (verify::GoldenJob &j : verify::goldenJobs(o.workload)) {
            j.config.verifyEvery = deep_every;
            j.config.auditEvery = o.auditEvery;
            runner::JobSpec spec =
                runner::makeJob(j.workload, j.config);
            spec.trace = false;
            labels.push_back(j.label);
            specs.push_back(std::move(spec));
        }
    } else {
        ExperimentConfig cfg = makeConfig(o, o.cpus, o.policy);
        cfg.verifyEvery = deep_every;
        labels.push_back(o.workload);
        specs.push_back(runner::makeJob(o.workload, cfg));
    }

    // The lockstep observer needs the global reference order, so a
    // verified run always executes serially. With --sim-threads N>1
    // we therefore run every job twice — verified serial and
    // sharded unverified — and byte-compare the canonical records,
    // extending the lockstep guarantee to the epoch engine.
    std::vector<runner::JobSpec> sharded;
    const bool dual_run = o.simThreads != 1;
    if (dual_run) {
        for (const runner::JobSpec &s : specs) {
            runner::JobSpec p = s;
            p.config.verifyEvery = 0;
            p.config.auditEvery = 0;
            p.config.sim.simThreads = o.simThreads;
            sharded.push_back(std::move(p));
        }
    }

    runner::BatchOptions bopts;
    bopts.jobs = o.jobs;
    std::vector<ExperimentResult> results =
        runner::runBatchOrThrow(std::move(specs), bopts);

    std::size_t shard_diverged = 0;
    if (dual_run) {
        std::vector<ExperimentResult> shard_results =
            runner::runBatchOrThrow(std::move(sharded), bopts);
        for (std::size_t i = 0; i < results.size(); i++) {
            std::string a =
                verify::goldenRecord(labels[i], results[i]);
            std::string b =
                verify::goldenRecord(labels[i], shard_results[i]);
            if (a != b) {
                shard_diverged++;
                std::cerr << "cdpcsim: sharded run diverges on "
                          << labels[i] << "\n  serial:  " << a
                          << "\n  sharded: " << b << "\n";
            }
        }
    }

    std::uint64_t refs = 0, deeps = 0, audits = 0;
    for (const ExperimentResult &r : results) {
        refs += r.verifiedRefs;
        deeps += r.verifiedDeepCompares;
        audits += r.auditsRun;
    }
    std::cout << o.workload << ": " << results.size() << " run(s), "
              << fmtI(refs) << " references verified in lockstep, "
              << fmtI(deeps) << " deep compares, " << fmtI(audits)
              << " audits, 0 divergences";
    if (dual_run)
        std::cout << "; sharded re-run at sim-threads="
                  << (o.simThreads ? std::to_string(o.simThreads)
                                   : std::string("auto"))
                  << ": " << shard_diverged << " record divergences";
    std::cout << "\n";
    return shard_diverged == 0 ? 0 : 1;
}

int
cmdProfile(const CliOptions &o)
{
    if (o.workload.empty())
        usage("profile needs a figure (fig6 fig7 fig8 table2 "
              "tenant1) or a workload");

    const std::vector<std::string> &figures = verify::goldenFigures();
    bool is_figure = std::find(figures.begin(), figures.end(),
                               o.workload) != figures.end();

    std::vector<std::string> labels;
    std::vector<runner::JobSpec> specs;
    if (is_figure) {
        for (verify::GoldenJob &j : verify::goldenJobs(o.workload)) {
            j.config.profile = true;
            runner::JobSpec spec =
                runner::makeJob(j.workload, j.config);
            spec.trace = false;
            labels.push_back(j.label);
            specs.push_back(std::move(spec));
        }
    } else {
        ExperimentConfig cfg = makeConfig(o, o.cpus, o.policy);
        cfg.profile = true;
        labels.push_back(o.workload);
        specs.push_back(runner::makeJob(o.workload, cfg));
    }

    // Validation re-runs need the original configs after the batch
    // engine consumes the specs.
    std::vector<runner::JobSpec> orig = specs;
    runner::BatchOptions bopts;
    bopts.jobs = o.jobs;
    std::vector<ExperimentResult> results =
        runner::runBatchOrThrow(std::move(specs), bopts);

    // --- Reconciliation + summary -------------------------------------
    std::size_t unreconciled = 0;
    TextTable t({"run", "conflicts", "reconciled", "top color",
                 "advice"});
    for (std::size_t i = 0; i < results.size(); i++) {
        const obs::ProfileResult &p = results[i].profile;
        if (!p.reconciled())
            unreconciled++;
        std::uint32_t top_color = 0;
        for (std::uint32_t c = 1; c < p.colorConflicts.size(); c++)
            if (p.colorConflicts[c] > p.colorConflicts[top_color])
                top_color = c;
        t.addRow({labels[i], fmtI(p.totalConflicts),
                  p.reconciled() ? "yes" : "NO",
                  p.totalConflicts
                      ? std::to_string(top_color) + " (" +
                            fmtI(p.colorConflicts[top_color]) + ")"
                      : "-",
                  std::to_string(p.advice.size())});
    }
    std::cout << o.workload << ": conflict attribution over "
              << results.size() << " run(s)\n" << t.render() << "\n";

    // --- Rank advised moves across all runs ---------------------------
    struct Candidate
    {
        std::size_t job;
        std::size_t adv;
    };
    std::vector<Candidate> candidates;
    for (std::size_t i = 0; i < results.size(); i++)
        for (std::size_t a = 0; a < results[i].profile.advice.size();
             a++)
            candidates.push_back({i, a});
    std::sort(candidates.begin(), candidates.end(),
              [&](const Candidate &a, const Candidate &b) {
                  return results[a.job]
                             .profile.advice[a.adv]
                             .predictedDelta <
                         results[b.job]
                             .profile.advice[b.adv]
                             .predictedDelta;
              });
    std::size_t best_job =
        candidates.empty() ? results.size() : candidates[0].job;

    // Detail view: the run holding the best advice, else the most
    // conflicted run.
    std::size_t detail = best_job;
    if (detail == results.size()) {
        detail = 0;
        for (std::size_t i = 1; i < results.size(); i++)
            if (results[i].profile.totalConflicts >
                results[detail].profile.totalConflicts)
                detail = i;
    }
    if (detail < results.size() &&
        results[detail].profile.totalConflicts > 0) {
        const obs::ProfileResult &p = results[detail].profile;
        struct Cell
        {
            std::uint32_t c, e, v;
            std::uint64_t count;
        };
        std::vector<Cell> cells;
        std::size_t n = p.entities.size();
        for (std::uint32_t c = 0; c < p.numColors; c++)
            for (std::uint32_t e = 0; e < n; e++)
                for (std::uint32_t v = 0; v < n; v++)
                    if (std::uint64_t k = p.cell(c, e, v))
                        cells.push_back({c, e, v, k});
        std::sort(cells.begin(), cells.end(),
                  [](const Cell &a, const Cell &b) {
                      return a.count > b.count;
                  });
        TextTable m({"color", "evictor", "victim", "conflicts"});
        std::size_t show =
            std::min<std::size_t>(cells.size(), o.top);
        for (std::size_t i = 0; i < show; i++)
            m.addRow({std::to_string(cells[i].c),
                      p.entities[cells[i].e], p.entities[cells[i].v],
                      fmtI(cells[i].count)});
        std::cout << labels[detail] << ": top conflict cells ("
                  << show << " of " << cells.size() << ")\n"
                  << m.render() << "\n";

        if (!p.advice.empty()) {
            TextTable adv({"move", "from", "to", "pages",
                           "predicted d-conflicts"});
            std::size_t ashow =
                std::min<std::size_t>(p.advice.size(), o.top);
            for (std::size_t i = 0; i < ashow; i++) {
                const obs::ProfileAdvice &a = p.advice[i];
                adv.addRow({p.entities[a.moveEntity],
                            std::to_string(a.color),
                            std::to_string(a.toColor),
                            std::to_string(a.movePages),
                            fmtF(a.predictedDelta, 1)});
            }
            std::cout << labels[detail] << ": recoloring advice\n"
                      << adv.render() << "\n";
        }
    }

    // --- Validate advised moves by re-running with overrides ----------
    // Best-predicted first; stop at the first move that measures an
    // improvement (up to 3 attempts). Every attempted move keeps its
    // measured delta, improved or not — validation is a measurement,
    // not a filter.
    const std::size_t kMaxValidations = 3;
    bool improved = false;
    for (std::size_t k = 0;
         k < candidates.size() && k < kMaxValidations && !improved;
         k++) {
        obs::ProfileAdvice &a = results[candidates[k].job]
                                    .profile.advice[candidates[k].adv];
        const obs::ProfileResult &p = results[candidates[k].job].profile;
        const runner::JobSpec &spec = orig[candidates[k].job];
        if (a.movePageList.empty())
            continue;
        // The advice carries the exact conflicting pages to remap.
        std::vector<ColorHint> ov;
        ov.reserve(a.movePageList.size());
        for (PageNum vpn : a.movePageList)
            ov.push_back({vpn, static_cast<Color>(a.toColor)});
        ExperimentConfig vcfg = spec.config;
        vcfg.profile = false;
        vcfg.colorOverrides = ov;
        ExperimentResult after = runWorkload(spec.workload, vcfg);
        double before_conf = results[candidates[k].job]
                                 .totals.missCountOf(
                                     MissKind::Conflict);
        double after_conf =
            after.totals.missCountOf(MissKind::Conflict);
        a.measuredDelta = after_conf - before_conf;
        a.validated = true;
        improved = a.measuredDelta < 0;
        std::cout << "validation (" << labels[candidates[k].job]
                  << "): move " << p.entities[a.moveEntity]
                  << " color " << a.color << " -> " << a.toColor
                  << " (" << ov.size() << " pages): conflicts "
                  << fmtF(before_conf, 0) << " -> "
                  << fmtF(after_conf, 0) << " (predicted "
                  << fmtF(a.predictedDelta, 1) << ", measured "
                  << fmtF(a.measuredDelta, 1) << ", "
                  << (improved ? "improved" : "not improved")
                  << ")\n";
    }
    if (candidates.empty())
        std::cout << "no recoloring advice (no movable entity "
                     "predicts an improvement)\n";

    if (!o.out.empty()) {
        std::ofstream out(o.out, std::ios::trunc);
        fatalIf(!out, "cannot write profile report to ", o.out);
        for (std::size_t i = 0; i < results.size(); i++) {
            out << "{\"label\":\""
                << runner::jsonEscape(labels[i]) << "\","
                << "\"workload\":\""
                << runner::jsonEscape(orig[i].workload) << "\","
                << "\"cpus\":" << orig[i].config.machine.numCpus
                << ","
                << "\"policy\":\""
                << mappingName(orig[i].config.mapping) << "\","
                << "\"profile\":"
                << runner::profileToJson(results[i].profile)
                << "}\n";
        }
        std::cout << "profile report written to " << o.out << "\n";
    }
    return unreconciled == 0 ? 0 : 1;
}

int
cmdTenants(const CliOptions &o)
{
    if (o.workload.empty())
        usage("tenants needs a scenario spec file");
    tenant::ScenarioSpec spec =
        tenant::parseScenarioFile(o.workload);
    // Observability knobs ride the command line, not the spec file:
    // interval snapshots and conflict attribution apply to every
    // tenant of the scenario.
    for (tenant::TenantSpec &t : spec.tenants) {
        if (o.statsInterval)
            t.base.sim.statsInterval = o.statsInterval;
        if (o.profile)
            t.base.profile = true;
    }
    tenant::ScenarioOptions topts;
    topts.jobs = o.jobs;
    tenant::AloneCache cache;
    topts.aloneCache = &cache;
    tenant::ScenarioResult res = tenant::runScenario(spec, topts);

    std::cout << res.name << ": " << res.tenants.size()
              << " tenant(s) on " << res.cpus << " CPUs ("
              << spec.machineName << "), budget="
              << tenant::budgetPolicyName(res.budget)
              << ", scheduler="
              << tenant::schedulerName(res.scheduler) << "\n\n";

    TextTable t({"tenant", "workload", "vcpus", "lease", "miss rate",
                 "cross-evict", "inflicted", "overflow", "slowdown",
                 "p99", "exit round"});
    for (std::size_t i = 0; i < res.tenants.size(); i++) {
        const tenant::TenantResult &tr = res.tenants[i];
        t.addRow({tr.name, tr.result.workload,
                  std::to_string(spec.tenants[i].vcpus),
                  tr.unlimited ? "all"
                               : std::to_string(tr.leaseSize),
                  fmtF(tr.missRate * 100.0, 2) + "%",
                  fmtI(tr.crossTenantEvictions),
                  fmtI(tr.evictionsInflicted),
                  fmtI(tr.budgetOverflows),
                  tr.slowdown > 0 ? fmtF(tr.slowdown, 3) + "x" : "-",
                  tr.p99Slowdown > 0 ? fmtF(tr.p99Slowdown, 3) + "x"
                                     : "-",
                  std::to_string(tr.exitRound)});
    }
    std::cout << t.render() << "\n";

    std::cout << res.rounds << " scheduling rounds, "
              << fmtI(res.totalCrossEvictions)
              << " cross-tenant evictions, " << res.leasesReclaimed
              << " leases reclaimed, miss-rate variance "
              << fmtF(res.missRateVariance * 1e4, 3) << "e-4";
    if (res.maxSlowdown > 0)
        std::cout << ", max slowdown "
                  << fmtF(res.maxSlowdown, 3) << "x";
    std::cout << "\n";

    for (const tenant::TenantResult &tr : res.tenants) {
        if (!tr.result.snapshots.empty())
            std::cout << tr.name << ": "
                      << tr.result.snapshots.size()
                      << " interval snapshots captured\n";
        if (!tr.result.profile.enabled)
            continue;
        const obs::ProfileResult &p = tr.result.profile;
        // Who hurt this tenant most: the foreign evictor with the
        // largest total across all colors.
        std::vector<std::uint64_t> byEvictor(p.entities.size(), 0);
        std::size_t n = p.entities.size();
        for (std::uint32_t c = 0; c < p.numColors; c++)
            for (std::uint32_t e = 0; e < n; e++)
                for (std::uint32_t v = 0; v < n; v++)
                    byEvictor[e] += p.cell(c, e, v);
        std::size_t top = 0;
        for (std::size_t e = 1; e < n; e++)
            if (byEvictor[e] > byEvictor[top])
                top = e;
        std::cout << "profile " << tr.name << ": "
                  << fmtI(p.totalConflicts) << " conflict misses"
                  << (p.reconciled() ? "" : " (UNRECONCILED)");
        if (p.totalConflicts > 0)
            std::cout << ", top evictor " << p.entities[top] << " ("
                      << fmtI(byEvictor[top]) << ")";
        std::cout << "\n";
    }

    if (!o.out.empty()) {
        std::ofstream out(o.out, std::ios::trunc);
        fatalIf(!out, "cannot write scenario result to ", o.out);
        out << tenant::canonicalScenario(res);
        std::cout << "canonical scenario written to " << o.out
                  << "\n";
    }
    return 0;
}

int
cmdRecord(const CliOptions &o)
{
    if (o.workload.empty())
        usage("record needs a workload");
    if (o.out.empty())
        usage("record needs --out FILE");

    Program prog = buildWorkload(o.workload);
    MachineConfig m = makeMachine(o, o.cpus);
    CompilerOptions copts;
    copts.align = !o.unaligned;
    copts.prefetch = o.prefetch;
    copts.aligner.lineBytes = m.l2.lineBytes;
    copts.aligner.l1SpanBytes = m.l1d.sizeBytes / m.l1d.assoc;
    compileProgram(prog, copts);

    PhysMem phys(m.physPages, m.indexFunction());
    PageColoringPolicy policy(m.numColors());
    VirtualMemory vm(m, phys, policy);
    MemorySystem mem(m, vm);
    MpSimulator sim(m, mem);

    TraceWriter writer(o.out, o.cpus);
    SimOptions opts;
    opts.record = &writer;
    sim.run(prog, opts);
    writer.close();
    std::cout << "wrote " << fmtI(writer.records())
              << " demand references to " << o.out << "\n";
    return 0;
}

int
cmdReplay(const CliOptions &o)
{
    if (o.workload.empty())
        usage("replay needs a trace file");
    TraceReader reader(o.workload);
    std::uint32_t cpus = std::max(o.cpus, reader.numCpus());
    MachineConfig m = makeMachine(o, cpus);
    PhysMem phys(m.physPages, m.indexFunction());
    PageColoringPolicy policy(m.numColors());
    VirtualMemory vm(m, phys, policy);
    MemorySystem mem(m, vm);
    ReplayResult res = replayTrace(reader, mem);

    CpuMemStats s = mem.totalStats();
    std::cout << "replayed " << fmtI(res.records) << " references ("
              << reader.numCpus() << "-CPU trace) on " << m.name
              << ":\n";
    TextTable t({"metric", "value"});
    t.addRow({"references", fmtI(s.totalRefs())});
    t.addRow({"L1 misses", fmtI(s.l1Misses)});
    t.addRow({"external-cache misses", fmtI(s.l2Misses)});
    for (int k = 0; k < 6; k++) {
        t.addRow({std::string(missKindName(static_cast<MissKind>(k))) +
                      " misses",
                  fmtI(s.missCount[k])});
    }
    t.addRow({"combined cycles", fmtI(res.combinedCycles())});
    std::cout << t.render();
    return 0;
}

int
dispatch(const CliOptions &o)
{
    if (o.command == "list")
        return cmdList();
    if (o.command == "run")
        return cmdRun(o);
    if (o.command == "compare")
        return cmdCompare(o);
    if (o.command == "sweep")
        return cmdSweep(o);
    if (o.command == "plan")
        return cmdPlan(o);
    if (o.command == "record")
        return cmdRecord(o);
    if (o.command == "attribute")
        return cmdAttribute(o);
    if (o.command == "hints")
        return cmdHints(o);
    if (o.command == "replay")
        return cmdReplay(o);
    if (o.command == "batch")
        return cmdBatch(o);
    if (o.command == "verify")
        return cmdVerify(o);
    if (o.command == "profile")
        return cmdProfile(o);
    if (o.command == "tenants")
        return cmdTenants(o);
    usage(("unknown command " + o.command).c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    CliOptions o = parseArgs(argc, argv);
    int rc;
    try {
        if (!o.traceFile.empty())
            obs::installTraceWriter(o.traceFile);
        if (!o.metricsFile.empty())
            obs::setMetricsEnabled(true);
        if (!o.faultPlan.empty())
            faultpoints::install(FaultPlan::parse(o.faultPlan));
        rc = dispatch(o);
    } catch (const FatalError &e) {
        std::cerr << "cdpcsim: " << e.what() << "\n";
        rc = 2;
    } catch (const PanicError &e) {
        std::cerr << "cdpcsim: internal error: " << e.what() << "\n";
        rc = 3;
    } catch (const std::exception &e) {
        std::cerr << "cdpcsim: unexpected error: " << e.what()
                  << "\n";
        rc = 3;
    }
    // Finalization runs on the error paths too: a failed batch still
    // leaves a loadable trace and a metrics file describing how far
    // it got.
    obs::finalizeTrace();
    if (!o.metricsFile.empty()) {
        try {
            obs::MetricsRegistry::global().writeJsonFile(
                o.metricsFile);
        } catch (const std::exception &e) {
            std::cerr << "cdpcsim: " << e.what() << "\n";
            if (rc == 0)
                rc = 2;
        }
    }
    return rc;
}
