/**
 * @file
 * golden_check — regenerate and verify the committed golden result
 * digests under tests/golden/ (DESIGN.md §11).
 *
 *   golden_check [figure...] [options]
 *       Run each figure's job grid and compare the canonical records
 *       against the committed golden file; a structured diff table is
 *       printed for every mismatching field. No figures = all
 *       registered figures (fig6 fig7 fig8 table2 tenant1).
 *
 * The tenant1 figure is special: each of its jobs runs twice — once
 * as a plain experiment and once as a 1-tenant unlimited-budget
 * scenario through the multi-tenant layer — and golden_check fatals
 * unless the two agree byte-for-byte (the degeneracy contract of
 * DESIGN.md §12) before checking the records against the file.
 *   golden_check <figure...> --update
 *       Rewrite the golden files from the freshly computed results.
 *   golden_check --diff FILE1 FILE2
 *       Compare two golden files without running any simulation.
 *
 * Options:
 *   --dir DIR   golden file directory (default tests/golden)
 *   --jobs N    worker threads for the figure grid (default: cores)
 *   --sim-threads N|auto  run every grid job through the
 *               epoch-parallel engine (DESIGN.md §14); the committed
 *               goldens must stay byte-identical at every value
 *
 * Exit codes: 0 match, 1 mismatch (diff printed), 2 usage/user error,
 * 3 internal panic.
 */

#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/table.h"
#include "runner/runner.h"
#include "tenant/scenario.h"
#include "verify/golden.h"

using namespace cdpc;
using namespace cdpc::verify;

namespace
{

[[noreturn]] void
usage(const char *msg = nullptr)
{
    if (msg)
        std::cerr << "golden_check: " << msg << "\n\n";
    std::cerr
        << "usage: golden_check [figure...] [--update] [--dir DIR] "
           "[--jobs N] [--sim-threads N|auto]\n"
           "       golden_check --diff FILE1 FILE2\n"
           "figures: fig6 fig7 fig8 table2 tenant1 (default: all)\n";
    std::exit(2);
}

GoldenData
loadGoldenFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open golden file ", path,
            " (generate it with golden_check --update)");
    return parseGolden(in, path);
}

/** Numeric delta column when both sides parse as doubles. */
std::string
deltaOf(const std::string &golden, const std::string &actual)
{
    char *end = nullptr;
    double g = std::strtod(golden.c_str(), &end);
    if (end == golden.c_str())
        return "-";
    double a = std::strtod(actual.c_str(), &end);
    if (end == actual.c_str())
        return "-";
    std::ostringstream os;
    os.precision(6);
    os << a - g;
    return os.str();
}

int
reportDiffs(const std::string &what,
            const std::vector<GoldenDiff> &diffs)
{
    if (diffs.empty()) {
        std::cout << what << ": OK\n";
        return 0;
    }
    TextTable t({"record", "field", "golden", "actual", "delta"});
    for (const GoldenDiff &d : diffs) {
        t.addRow({d.label, d.field.empty() ? "-" : d.field, d.golden,
                  d.actual, deltaOf(d.golden, d.actual)});
    }
    std::cout << what << ": " << diffs.size()
              << " mismatching field(s)\n"
              << t.render();
    return 1;
}

/**
 * Everything the degeneracy check compares: the golden record's
 * metrics plus the VM-layer degradation counters. Two results with
 * equal dumps took the same allocation decisions and produced the
 * same timing, byte for byte.
 */
std::string
degeneracyDump(const std::string &label, const ExperimentResult &r)
{
    const VmStats &vs = r.degradation;
    std::ostringstream os;
    os << goldenRecord(label, r) << " faults=" << vs.pageFaults
       << " honored=" << vs.hintHonored
       << " fallback=" << vs.hintFallback << " denied=" << vs.hintDenied
       << " noPref=" << vs.noPreference << " stolen=" << vs.hintStolen
       << " reclaimed=" << vs.reclaimedPages;
    return os.str();
}

int
checkFigure(const std::string &figure, const std::string &dir,
            unsigned jobs, bool update, std::uint32_t sim_threads)
{
    std::vector<GoldenJob> grid = goldenJobs(figure);
    for (GoldenJob &j : grid)
        j.config.sim.simThreads = sim_threads;
    std::vector<runner::JobSpec> specs;
    specs.reserve(grid.size());
    for (const GoldenJob &j : grid) {
        runner::JobSpec spec = runner::makeJob(j.workload, j.config);
        spec.trace = false;
        specs.push_back(std::move(spec));
    }
    runner::BatchOptions bopts;
    bopts.jobs = jobs;
    std::vector<ExperimentResult> results =
        runner::runBatchOrThrow(std::move(specs), bopts);

    if (figure == "tenant1") {
        // Degeneracy gate: the same job through the tenant layer
        // must be indistinguishable from the plain harness run.
        for (std::size_t i = 0; i < results.size(); i++) {
            ExperimentResult viaTenant = tenant::runSingleTenant(
                grid[i].workload, grid[i].config);
            std::string plain =
                degeneracyDump(grid[i].label, results[i]);
            std::string scenario =
                degeneracyDump(grid[i].label, viaTenant);
            fatalIf(plain != scenario,
                    "tenant1 degeneracy violated for ", grid[i].label,
                    "\n  plain:    ", plain, "\n  scenario: ",
                    scenario);
        }
        std::cout << "tenant1: degeneracy OK (" << results.size()
                  << " job(s) identical through the tenant layer)\n";
    }

    std::vector<std::string> lines;
    lines.reserve(results.size());
    for (std::size_t i = 0; i < results.size(); i++)
        lines.push_back(goldenRecord(grid[i].label, results[i]));

    std::string path = dir + "/" + figure + ".golden";
    if (update) {
        std::ofstream out(path, std::ios::trunc);
        fatalIf(!out, "cannot write golden file ", path);
        out << renderGolden(figure, lines);
        std::cout << figure << ": wrote " << lines.size()
                  << " records to " << path << "\n";
        return 0;
    }

    GoldenData golden = loadGoldenFile(path);
    GoldenData actual = goldenFromRecords(lines);
    return reportDiffs(figure + " vs " + path,
                       diffGolden(golden, actual));
}

} // namespace

int
main(int argc, char **argv)
{
    std::vector<std::string> figures;
    std::string dir = "tests/golden";
    std::vector<std::string> diffFiles;
    unsigned jobs = 0;
    bool update = false;
    std::uint32_t simThreads = 1;

    int i = 1;
    auto need_value = [&](const char *flag) -> std::string {
        if (i >= argc)
            usage((std::string(flag) + " needs a value").c_str());
        return argv[i++];
    };
    while (i < argc) {
        std::string a = argv[i++];
        if (a == "--update")
            update = true;
        else if (a == "--dir")
            dir = need_value("--dir");
        else if (a == "--jobs")
            jobs = static_cast<unsigned>(
                std::atoi(need_value("--jobs").c_str()));
        else if (a == "--sim-threads") {
            std::string v = need_value("--sim-threads");
            simThreads =
                v == "auto"
                    ? 0
                    : static_cast<std::uint32_t>(std::atoi(v.c_str()));
        } else if (a == "--diff") {
            diffFiles.push_back(need_value("--diff"));
            diffFiles.push_back(need_value("--diff"));
        } else if (a == "--help" || a == "-h")
            usage();
        else if (!a.empty() && a[0] == '-')
            usage(("unknown option " + a).c_str());
        else
            figures.push_back(a);
    }

    int rc = 0;
    try {
        if (!diffFiles.empty()) {
            if (!figures.empty() || update)
                usage("--diff does not combine with figures or "
                      "--update");
            GoldenData a = loadGoldenFile(diffFiles[0]);
            GoldenData b = loadGoldenFile(diffFiles[1]);
            return reportDiffs(diffFiles[0] + " vs " + diffFiles[1],
                               diffGolden(a, b));
        }
        if (figures.empty())
            figures = goldenFigures();
        for (const std::string &f : figures)
            rc |= checkFigure(f, dir, jobs, update, simThreads);
    } catch (const FatalError &e) {
        std::cerr << "golden_check: " << e.what() << "\n";
        return 2;
    } catch (const PanicError &e) {
        std::cerr << "golden_check: internal error: " << e.what()
                  << "\n";
        return 3;
    }
    return rc;
}
