/**
 * @file
 * Conflict-attribution profiler tests (DESIGN.md §15): synthetic
 * event-stream attribution, advisor behavior, exact reconciliation
 * of the matrix against miss_classify's conflict counter in a real
 * run, and byte-identity of profiler-off figure records across
 * epoch-engine thread counts.
 */

#include <gtest/gtest.h>

#include <cstdint>

#include "harness/experiment.h"
#include "obs/profile.h"
#include "verify/golden.h"

namespace cdpc
{
namespace
{

using obs::ConflictProfiler;
using obs::ProfileResult;

ConflictProfiler::Config
syntheticConfig()
{
    ConflictProfiler::Config cfg;
    cfg.numCpus = 1;
    cfg.numColors = 4;
    cfg.pageBytes = 4096;
    cfg.lineBytes = 64;
    cfg.colorCapacityBytes = 0; // no slice-size gate in unit tests
    cfg.entities.push_back({"A", 0, 4 * 4096});
    cfg.entities.push_back({"B", 4 * 4096, 4 * 4096});
    return cfg;
}

TEST(ConflictProfilerUnit, AttributesEvictorAndVictim)
{
    ConflictProfiler prof(syntheticConfig());
    std::uint32_t a = prof.entityOf(0);
    std::uint32_t b = prof.entityOf(4 * 4096);
    ASSERT_NE(a, b);
    ASSERT_NE(a, prof.otherEntity());
    ASSERT_NE(b, prof.otherEntity());

    // B's reference displaces a line; A later conflict-misses on it.
    PAddr pa = 2 * 4096; // page color 2
    Addr line = pa >> 6;
    prof.onRefStart(0, 4 * 4096);
    prof.onEvict(0, line, EvictCause::Replace);
    prof.onRefStart(0, 0);
    prof.onConflictMiss(0, 0, pa, 100);

    ProfileResult r = prof.result({});
    EXPECT_EQ(r.totalConflicts, 1u);
    EXPECT_EQ(r.cell(2, b, a), 1u);
    EXPECT_EQ(r.colorConflicts[2], 1u);
    EXPECT_EQ(r.colorConflicts[0], 0u);

    // A second miss on the same line has no recorded evictor left
    // (the record was consumed): it attributes to "(extern)".
    prof.onConflictMiss(0, 0, pa, 200);
    ProfileResult r2 = prof.result({});
    EXPECT_EQ(r2.cell(2, prof.externEntity(), a), 1u);
    EXPECT_EQ(r2.totalConflicts, 2u);
}

TEST(ConflictProfilerUnit, AdvisorMovesConflictingPageSlice)
{
    ConflictProfiler prof(syntheticConfig());
    std::uint32_t a = prof.entityOf(0);
    std::uint32_t b = prof.entityOf(4 * 4096);

    PAddr pa = 2 * 4096;
    Addr line = pa >> 6;
    prof.onRefStart(0, 4 * 4096);
    prof.onEvict(0, line, EvictCause::Replace);
    prof.onConflictMiss(0, 0, pa, 100);

    ProfileResult r = prof.result({});
    ASSERT_EQ(r.advice.size(), 1u);
    const obs::ProfileAdvice &adv = r.advice[0];
    EXPECT_EQ(adv.color, 2u);
    EXPECT_EQ(adv.evictor, b);
    EXPECT_EQ(adv.victim, a);
    // Equal-sized pair: the tie breaks to the victim, and the slice
    // is the victim's one observed conflicting page.
    EXPECT_EQ(adv.moveEntity, a);
    ASSERT_EQ(adv.movePageList.size(), 1u);
    EXPECT_EQ(adv.movePageList[0], 0u);
    EXPECT_NE(adv.toColor, 2u);
    EXPECT_LT(adv.predictedDelta, 0.0);
}

TEST(ConflictProfilerUnit, ContextSwitchChargesForeignTenant)
{
    ConflictProfiler::Config cfg = syntheticConfig();
    ConflictProfiler prof(cfg);
    std::uint32_t a = prof.entityOf(0);
    std::uint32_t b = prof.entityOf(4 * 4096);

    prof.setContextEvictor(b);
    PAddr pa = 3 * 4096;
    prof.onEvict(0, pa >> 6, EvictCause::ContextSwitch);
    prof.clearContextEvictor();
    prof.onConflictMiss(0, 0, pa, 50);

    ProfileResult r = prof.result({});
    EXPECT_EQ(r.cell(3, b, a), 1u);
    // Context-switch evictions carry no evictor-page evidence, so no
    // advice can propose moving the immaterial "evictor page"; the
    // victim's page still contributes to its own slice.
    for (const obs::ProfileAdvice &adv : r.advice)
        EXPECT_EQ(adv.moveEntity, a);
}

TEST(ConflictProfilerUnit, ResetClearsWithStats)
{
    ConflictProfiler prof(syntheticConfig());
    prof.onRefStart(0, 0);
    prof.onEvict(0, 32, EvictCause::Replace);
    prof.onConflictMiss(0, 0, 2 * 4096, 10);
    EXPECT_EQ(prof.totalConflicts(), 1u);
    prof.onReset();
    EXPECT_EQ(prof.totalConflicts(), 0u);
    ProfileResult r = prof.result({});
    EXPECT_EQ(r.totalConflicts, 0u);
    for (std::uint64_t v : r.colorConflicts)
        EXPECT_EQ(v, 0u);
}

/** The lockstep reconciliation contract: matrix per-color totals sum
 *  to exactly what miss_classify counted as conflicts. */
TEST(ProfileExperiment, MatrixReconcilesWithMissClassify)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    cfg.mapping = MappingPolicy::Cdpc;
    cfg.profile = true;
    ExperimentResult res = runWorkload("107.mgrid", cfg);

    ASSERT_TRUE(res.profile.enabled);
    // classifiedConflicts is the raw miss_classify counter the
    // harness read back from the memory system (WeightedTotals
    // extrapolates by phase weights, so it is not comparable); the
    // matrix must match it event for event.
    EXPECT_TRUE(res.profile.reconciled());
    EXPECT_GT(res.profile.totalConflicts, 0u);
    EXPECT_EQ(res.profile.totalConflicts,
              res.profile.classifiedConflicts);

    // Per-color: every color's matrix cells sum to colorConflicts[c],
    // and the colors sum to the total.
    std::size_t n = res.profile.entities.size();
    std::uint64_t grand = 0;
    for (std::uint32_t c = 0; c < res.profile.numColors; c++) {
        std::uint64_t color_total = 0;
        for (std::uint32_t e = 0; e < n; e++)
            for (std::uint32_t v = 0; v < n; v++)
                color_total += res.profile.cell(c, e, v);
        EXPECT_EQ(color_total, res.profile.colorConflicts[c])
            << "color " << c;
        grand += color_total;
    }
    EXPECT_EQ(grand, res.profile.totalConflicts);
}

TEST(ProfileExperiment, OffByDefaultAndDisabledInResult)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(1);
    ExperimentResult res = runWorkload("101.tomcatv", cfg);
    EXPECT_FALSE(res.profile.enabled);
    EXPECT_TRUE(res.profile.advice.empty());
}

/** Profiler-off fig6 records must be byte-identical whether the
 *  epoch engine runs serial or with 4 shards — the golden registry
 *  depends on it. */
TEST(ProfileGolden, OffIsBitIdenticalAcrossSimThreads)
{
    std::size_t checked = 0;
    for (const verify::GoldenJob &j : verify::goldenJobs("fig6")) {
        if (j.label.find("cpus=2/") == std::string::npos)
            continue;
        ExperimentConfig serial = j.config;
        serial.sim.simThreads = 1;
        ExperimentConfig sharded = j.config;
        sharded.sim.simThreads = 4;
        std::string a =
            verify::goldenRecord(j.label, runWorkload(j.workload, serial));
        std::string b = verify::goldenRecord(j.label,
                                             runWorkload(j.workload,
                                                         sharded));
        EXPECT_EQ(a, b) << j.label;
        checked++;
    }
    EXPECT_GE(checked, 2u);
}

/** Profiled runs degrade parallel nests to serial: the figure record
 *  and the matrix must not depend on simThreads. */
TEST(ProfileGolden, ProfiledRunDegradesDeterministically)
{
    verify::GoldenJob job;
    for (const verify::GoldenJob &j : verify::goldenJobs("fig6")) {
        if (j.label.find("cpus=2/") != std::string::npos) {
            job = j;
            break;
        }
    }
    ASSERT_FALSE(job.workload.empty());

    ExperimentConfig serial = job.config;
    serial.profile = true;
    serial.sim.simThreads = 1;
    ExperimentConfig sharded = serial;
    sharded.sim.simThreads = 4;

    ExperimentResult ra = runWorkload(job.workload, serial);
    ExperimentResult rb = runWorkload(job.workload, sharded);
    EXPECT_EQ(verify::goldenRecord(job.label, ra),
              verify::goldenRecord(job.label, rb));
    ASSERT_TRUE(ra.profile.enabled);
    ASSERT_TRUE(rb.profile.enabled);
    EXPECT_EQ(ra.profile.totalConflicts, rb.profile.totalConflicts);
    EXPECT_EQ(ra.profile.matrix, rb.profile.matrix);
}

} // namespace
} // namespace cdpc
