/**
 * @file
 * Tests for the data-transposition pass: column-partitioned arrays
 * become row-partitioned, reference semantics are preserved, and
 * the pass refuses anything it cannot rewrite exactly.
 */

#include <gtest/gtest.h>

#include <set>

#include "compiler/analysis.h"
#include "compiler/transpose.h"
#include "ir/exec.h"
#include "ir/layout.h"
#include "workloads/builder.h"
#include "workloads/workload.h"

namespace cdpc
{
namespace
{

/**
 * A column-partitioned sweep: parallel loop i drives the *column*
 * index of a row-major array — each CPU's footprint is strided.
 */
Program
columnPartitioned(std::uint64_t rows = 16, std::uint64_t cols = 8)
{
    ProgramBuilder b("colpart");
    std::uint32_t a = b.array2d("a", rows, cols);
    Phase ph;
    ph.name = "p";
    LoopNest nest;
    nest.label = "colsweep";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {cols, rows}; // i over columns, j over rows
    nest.instsPerIter = 200;
    AffineRef r;
    r.arrayId = a;
    r.terms = {{0, 1},
               {1, static_cast<std::int64_t>(cols)}}; // a[j][i]
    r.isWrite = true;
    nest.refs = {r};
    ph.nests.push_back(nest);
    b.phase(ph);
    return b.build();
}

TEST(Transpose, ColumnPartitionBecomesRowPartition)
{
    Program p = columnPartitioned(16, 8);
    // Before: no partition summary (mid-dimension partition).
    EXPECT_TRUE(analyzeProgram(p).partitions.empty());

    TransposeResult res = transposeForContiguity(p);
    EXPECT_EQ(res.arraysTransposed, 1u);
    EXPECT_EQ(p.arrays[0].dims[0], 8u); // columns now outermost
    EXPECT_EQ(p.arrays[0].dims[1], 16u);

    // After: the analysis emits a clean partition.
    AccessSummaries s = analyzeProgram(p);
    ASSERT_EQ(s.partitions.size(), 1u);
    EXPECT_EQ(s.partitions[0].unitBytes, 16u * 8u);
    EXPECT_EQ(s.partitions[0].numUnits, 8u);
}

TEST(Transpose, ElementSetPreserved)
{
    // The set of addresses touched must be identical before and
    // after (same array size, bijective remap of which iteration
    // touches which element, full sweep either way).
    Program before = columnPartitioned(16, 8);
    Program after = columnPartitioned(16, 8);
    transposeForContiguity(after);
    assignAddresses(before, LayoutOptions{});
    assignAddresses(after, LayoutOptions{});

    auto touch_count = [](Program &p) {
        RunCursor cur(p, p.steady[0].nests[0], 0, 1, 64);
        LineAccess la;
        std::uint64_t elems = 0;
        std::set<std::uint64_t> lines;
        while (cur.next(la)) {
            elems += la.elems;
            if (la.elems)
                lines.insert(la.va / 64);
        }
        return std::pair(elems, lines.size());
    };
    auto [e1, l1] = touch_count(before);
    auto [e2, l2] = touch_count(after);
    EXPECT_EQ(e1, e2);
    EXPECT_EQ(l1, l2); // full sweep covers every line either way
}

TEST(Transpose, PerCpuFootprintBecomesContiguous)
{
    Program p = columnPartitioned(16, 8);
    transposeForContiguity(p);
    assignAddresses(p, LayoutOptions{});

    // CPU 0 of 4 now touches one contiguous quarter of the array.
    RunCursor cur(p, p.steady[0].nests[0], 0, 4, 64);
    LineAccess la;
    VAddr lo = ~0ull, hi = 0;
    std::uint64_t bytes = 0;
    while (cur.next(la)) {
        if (!la.elems)
            continue;
        lo = std::min(lo, la.va);
        hi = std::max(hi, la.va);
        bytes += la.elems * 8;
    }
    // Footprint (1/4 of the array) spans no more than itself.
    EXPECT_LE(hi - lo + 8, bytes + 64);
}

TEST(Transpose, ConstOffsetsRewritten)
{
    Program p = columnPartitioned(16, 8);
    AffineRef &r = p.steady[0].nests[0].refs[0];
    r.constElems = 8 + 1; // a[j+1][i+1] in the old layout
    transposeForContiguity(p);
    // New layout is [col][row]: offset (col+1, row+1) = 16 + 1.
    EXPECT_EQ(p.steady[0].nests[0].refs[0].constElems, 16 + 1);
}

TEST(Transpose, RowPartitionedLeftAlone)
{
    ProgramBuilder b("rowpart");
    std::uint32_t a = b.array2d("a", 16, 8);
    Phase ph;
    ph.name = "p";
    LoopNest nest;
    nest.label = "rowsweep";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {16, 8};
    nest.instsPerIter = 200;
    nest.refs = {b.at2(a, 0, 1, 0, 0, true)};
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    TransposeResult res = transposeForContiguity(p);
    EXPECT_EQ(res.arraysTransposed, 0u);
    EXPECT_EQ(p.arrays[0].dims[0], 16u);
}

TEST(Transpose, InconsistentPartitionsSkipped)
{
    Program p = columnPartitioned(16, 8);
    // Add a second nest partitioning the other dimension.
    LoopNest other = p.steady[0].nests[0];
    other.label = "rowsweep";
    other.bounds = {16, 8};
    other.refs[0].terms = {{0, 8}, {1, 1}};
    p.steady[0].nests.push_back(other);
    TransposeResult res = transposeForContiguity(p);
    EXPECT_EQ(res.arraysTransposed, 0u);
    EXPECT_EQ(res.skippedInconsistent, 1u);
}

TEST(Transpose, NonExactCoefficientsSkipped)
{
    Program p = columnPartitioned(16, 8);
    // A coefficient that is 2x a stride (restriction-style) cannot
    // be decomposed exactly.
    p.steady[0].nests[0].refs[0].terms[1].coeffElems = 16;
    TransposeResult res = transposeForContiguity(p);
    EXPECT_EQ(res.arraysTransposed, 0u);
    EXPECT_EQ(res.skippedUnanalyzable, 1u);
}

TEST(Transpose, WrappedRefsSkipped)
{
    Program p = columnPartitioned(16, 8);
    p.steady[0].nests[0].refs[0].wrapModElems = 128;
    TransposeResult res = transposeForContiguity(p);
    EXPECT_EQ(res.arraysTransposed, 0u);
    EXPECT_EQ(res.skippedUnanalyzable, 1u);
}

TEST(Transpose, WorkloadSuiteUnaffected)
{
    // The bundled workloads are already affinity-laid-out; the pass
    // must leave all of them untouched (it runs by default in the
    // compiler driver, so this is load-bearing).
    for (const WorkloadInfo &w : allWorkloads()) {
        Program p = w.build();
        TransposeResult res = transposeForContiguity(p);
        EXPECT_EQ(res.arraysTransposed, 0u) << w.name;
    }
}

} // namespace
} // namespace cdpc
