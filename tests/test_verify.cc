/**
 * @file
 * The differential-verification subsystem: the reference model's
 * primitive structures against hand-computed LRU/MESI sequences, the
 * DifferentialVerifier in lockstep with the real hierarchy, and the
 * golden-output registry's render/parse/diff round trip.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <sstream>

#include "common/stats.h"
#include "harness/experiment.h"
#include "mem/memsystem.h"
#include "obs/metrics.h"
#include "verify/differential.h"
#include "verify/golden.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"

namespace cdpc
{
namespace
{

using verify::DifferentialVerifier;
using verify::DivergenceError;
using verify::GoldenData;
using verify::GoldenDiff;
using verify::RefCache;
using verify::RefLine;
using verify::RefLru;

// ---- Reference primitives vs hand-computed sequences -------------------

TEST(RefLru, HandComputedPromoteAndEvict)
{
    RefLru lru(2);
    EXPECT_FALSE(lru.accessAndUpdate(10)); // [10]
    EXPECT_FALSE(lru.accessAndUpdate(20)); // [20 10]
    EXPECT_TRUE(lru.accessAndUpdate(10));  // [10 20], 10 promoted
    EXPECT_FALSE(lru.accessAndUpdate(30)); // evicts 20, the true LRU
    EXPECT_TRUE(lru.contains(10));
    EXPECT_FALSE(lru.contains(20));
    EXPECT_TRUE(lru.contains(30));
    EXPECT_EQ(lru.size(), 2u);

    EXPECT_TRUE(lru.invalidate(10));
    EXPECT_FALSE(lru.invalidate(10));
    EXPECT_EQ(lru.size(), 1u);
    lru.flush();
    EXPECT_EQ(lru.size(), 0u);
}

TEST(RefCacheTest, HandComputedLruEvictionOrder)
{
    // 256B, 2-way, 32B lines -> 4 sets; set 0 holds index addresses
    // 0, 128, 256, ... (multiples of numSets * lineBytes).
    RefCache c(CacheConfig{256, 2, 32});
    RefLine victim;
    bool evicted = false;

    c.insert(0, 0, Mesi::Exclusive, &victim, &evicted);
    EXPECT_FALSE(evicted);
    c.insert(128, 4, Mesi::Shared, &victim, &evicted);
    EXPECT_FALSE(evicted);
    EXPECT_EQ(c.validCount(), 2u);

    // Set full: the next insert evicts line 0 (inserted first, never
    // re-touched, hence LRU).
    c.insert(256, 8, Mesi::Exclusive, &victim, &evicted);
    ASSERT_TRUE(evicted);
    EXPECT_EQ(victim.line, 0u);
    EXPECT_EQ(victim.state, Mesi::Exclusive);
    EXPECT_EQ(c.probe(0, 0), nullptr);

    // Touch line 4 so line 8 becomes LRU, then insert again.
    ASSERT_NE(c.access(128, 4), nullptr);
    c.insert(384, 12, Mesi::Modified, &victim, &evicted);
    ASSERT_TRUE(evicted);
    EXPECT_EQ(victim.line, 8u);
    ASSERT_NE(c.probe(128, 4), nullptr);
    EXPECT_EQ(c.probe(128, 4)->state, Mesi::Shared);
    ASSERT_NE(c.probe(384, 12), nullptr);
    EXPECT_EQ(c.probe(384, 12)->state, Mesi::Modified);

    EXPECT_TRUE(c.invalidate(384, 12));
    EXPECT_FALSE(c.invalidate(384, 12));
    EXPECT_EQ(c.validCount(), 1u);
}

// ---- Lockstep verification against the real hierarchy ------------------

/** A two-CPU hierarchy with the verifier attached as observer. */
class Lockstep : public ::testing::Test
{
  protected:
    Lockstep()
        : m(MachineConfig::paperScaled(2)),
          phys(m.physPages, m.numColors()), policy(m.numColors()),
          vm(m, phys, policy), mem(m, vm),
          verifier(m, mem, vm, /*deep_every=*/1)
    {
        mem.setMemObserver(&verifier);
    }

    AccessOutcome
    access(CpuId cpu, VAddr va, AccessKind kind)
    {
        MemAccess acc;
        acc.va = va;
        acc.kind = kind;
        acc.wordMask = std::uint32_t{1}
                       << (va % m.l2.lineBytes / 8 % 32);
        AccessOutcome out = mem.access(cpu, acc, clock[cpu]);
        clock[cpu] += out.stall + 1;
        return out;
    }

    MachineConfig m;
    PhysMem phys;
    PageColoringPolicy policy;
    VirtualMemory vm;
    MemorySystem mem;
    DifferentialVerifier verifier;
    Cycles clock[2] = {0, 0};
};

TEST_F(Lockstep, HandComputedMesiSequence)
{
    // cpu1 reads the line first: a cold miss, filled Exclusive.
    AccessOutcome a = access(1, 0x1000, AccessKind::Load);
    EXPECT_TRUE(a.l2Miss);
    EXPECT_EQ(a.missKind, MissKind::Cold);

    // cpu0 stores the same word: its own cold miss; the write
    // invalidates cpu1's copy.
    AccessOutcome b = access(0, 0x1000, AccessKind::Store);
    EXPECT_TRUE(b.l2Miss);
    EXPECT_EQ(b.missKind, MissKind::Cold);

    // cpu1 re-reads the word it lost to cpu0's write: true sharing.
    AccessOutcome c = access(1, 0x1000, AccessKind::Load);
    EXPECT_TRUE(c.l2Miss);
    EXPECT_EQ(c.missKind, MissKind::TrueSharing);

    // The cache-to-cache transfer left cpu0's copy Shared, so its
    // next store is an ownership upgrade, not a miss.
    AccessOutcome u = access(0, 0x1000, AccessKind::Store);
    EXPECT_TRUE(u.l2Hit);
    EXPECT_FALSE(u.l2Miss);
    EXPECT_EQ(u.missKind, MissKind::Upgrade);

    // cpu1 stores a *different* word of the line it just lost again:
    // the Dubois classification calls that false sharing.
    AccessOutcome f = access(1, 0x1008, AccessKind::Store);
    EXPECT_TRUE(f.l2Miss);
    EXPECT_EQ(f.missKind, MissKind::FalseSharing);

    // Every event above was cross-checked per-reference AND deep
    // compared (deep_every = 1); do a final explicit pass as well.
    verifier.deepCompare();
    EXPECT_EQ(verifier.stats().refsChecked, 5u);
    EXPECT_GE(verifier.stats().deepCompares, 5u);
}

TEST_F(Lockstep, StridingSurvivesDeepCompareEveryEvent)
{
    // Walk several pages from both CPUs with a mix of loads and
    // stores; every reference is deep-compared.
    for (int i = 0; i < 512; i++) {
        VAddr va = static_cast<VAddr>(i) * 40; // crosses lines/pages
        access(i % 2, va, i % 3 ? AccessKind::Load : AccessKind::Store);
    }
    EXPECT_EQ(verifier.stats().refsChecked, 512u);
    verifier.deepCompare();
}

TEST_F(Lockstep, IfetchesVerifyThroughTheL1i)
{
    for (int i = 0; i < 64; i++)
        access(0, 0x8000 + static_cast<VAddr>(i) * 32,
               AccessKind::Ifetch);
    verifier.deepCompare();
}

TEST_F(Lockstep, MissedEventIsReportedAsDivergence)
{
    access(0, 0x2000, AccessKind::Store);
    // Let the real hierarchy advance while the model is blind: the
    // next access to the same line must then diverge (real L1 hit,
    // model cold miss).
    mem.setMemObserver(nullptr);
    access(0, 0x3000, AccessKind::Store);
    mem.setMemObserver(&verifier);
    EXPECT_THROW(access(0, 0x3000, AccessKind::Store),
                 DivergenceError);
}

// ---- End-to-end verified experiment runs -------------------------------

TEST(VerifyExperiment, LockstepRunMatchesAndCounts)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    cfg.mapping = MappingPolicy::Cdpc;
    cfg.verifyEvery = 4096;
    cfg.auditEvery = 100000;
    ExperimentResult r = runWorkload("107.mgrid", cfg);
    EXPECT_GT(r.verifiedRefs, 0u);
    EXPECT_GT(r.verifiedDeepCompares, 0u);
    EXPECT_GT(r.auditsRun, 0u);
    EXPECT_GT(r.totals.combinedTime(), 0.0);
}

TEST(VerifyExperiment, VerifiesUnderRecolorAndPressure)
{
    // Dynamic recoloring remaps pages and memory pressure steals
    // them; both mutate translations mid-run, which is exactly what
    // the mirror resynchronization must absorb.
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    cfg.mapping = MappingPolicy::Cdpc;
    cfg.dynamicRecolor = true;
    cfg.pressure.occupancy = 0.5;
    cfg.verifyEvery = 4096;
    ExperimentResult r = runWorkload("107.mgrid", cfg);
    EXPECT_GT(r.verifiedRefs, 0u);
}

// ---- Golden-output registry --------------------------------------------

TEST(Golden, RegistryListsTheFiveFigures)
{
    EXPECT_EQ(verify::goldenFigures().size(), 5u);
    EXPECT_EQ(verify::goldenJobs("fig6").size(), 80u);
    EXPECT_EQ(verify::goldenJobs("fig7").size(), 24u);
    EXPECT_EQ(verify::goldenJobs("fig8").size(), 20u);
    EXPECT_FALSE(verify::goldenJobs("table2").empty());
    EXPECT_EQ(verify::goldenJobs("tenant1").size(), 2u);
    EXPECT_THROW(verify::goldenJobs("fig9"), FatalError);
}

std::vector<std::string>
sampleRecords()
{
    return {"app/pc/cpus=2/scaled combined=100 mcpi=0.5",
            "app/cdpc/cpus=2/scaled combined=80 mcpi=0.25"};
}

TEST(Golden, RenderParseRoundTrips)
{
    std::string text = verify::renderGolden("figX", sampleRecords());
    std::istringstream in(text);
    GoldenData parsed = verify::parseGolden(in, "figX.golden");
    GoldenData direct = verify::goldenFromRecords(sampleRecords());
    EXPECT_EQ(parsed.digest, direct.digest);
    EXPECT_EQ(parsed.records, direct.records);
    EXPECT_TRUE(verify::diffGolden(parsed, direct).empty());
}

TEST(Golden, HandEditedFileIsFatal)
{
    std::string text = verify::renderGolden("figX", sampleRecords());
    // Tamper with a metric value without updating the digest.
    auto at = text.find("combined=100");
    ASSERT_NE(at, std::string::npos);
    text.replace(at, 12, "combined=999");
    std::istringstream in(text);
    EXPECT_THROW(verify::parseGolden(in, "tampered"), FatalError);
}

TEST(Golden, TruncatedAndEmptyFilesAreFatal)
{
    std::istringstream no_digest(
        "# comment\napp combined=1 mcpi=0.5\n");
    EXPECT_THROW(verify::parseGolden(no_digest, "t"), FatalError);
    std::istringstream no_records("digest 0x0\n");
    EXPECT_THROW(verify::parseGolden(no_records, "t"), FatalError);
    std::istringstream bad_field("digest 0x0\napp combined\n");
    EXPECT_THROW(verify::parseGolden(bad_field, "t"), FatalError);
}

TEST(Golden, DiffReportsValueAndPresenceMismatches)
{
    GoldenData a = verify::goldenFromRecords(
        {"r1 x=1 y=2", "r2 x=3"});
    GoldenData b = verify::goldenFromRecords(
        {"r1 x=1 y=9 z=5", "r3 x=3"});
    std::vector<GoldenDiff> diffs = verify::diffGolden(a, b);
    // y changed, z only in actual, r2 missing, r3 unexpected.
    ASSERT_EQ(diffs.size(), 4u);
    bool saw_y = false, saw_z = false, saw_r2 = false, saw_r3 = false;
    for (const GoldenDiff &d : diffs) {
        if (d.label == "r1" && d.field == "y") {
            EXPECT_EQ(d.golden, "2");
            EXPECT_EQ(d.actual, "9");
            saw_y = true;
        }
        if (d.label == "r1" && d.field == "z") {
            EXPECT_EQ(d.golden, "<absent>");
            saw_z = true;
        }
        if (d.label == "r2")
            saw_r2 = true;
        if (d.label == "r3")
            saw_r3 = true;
    }
    EXPECT_TRUE(saw_y && saw_z && saw_r2 && saw_r3);
}

TEST(Golden, DigestIsOrderAndContentSensitive)
{
    std::uint64_t h1 = verify::fnv1a("a b=1\n");
    std::uint64_t h2 = verify::fnv1a("a b=2\n");
    EXPECT_NE(h1, h2);
    GoldenData fwd = verify::goldenFromRecords({"a x=1", "b x=2"});
    GoldenData rev = verify::goldenFromRecords({"b x=2", "a x=1"});
    EXPECT_NE(fwd.digest, rev.digest);
}

// ---- Satellite guards ---------------------------------------------------

TEST(SafeDiv, GuardsZeroAndNonFinite)
{
    EXPECT_DOUBLE_EQ(safeDiv(10.0, 4.0), 2.5);
    EXPECT_DOUBLE_EQ(safeDiv(10.0, 0.0), 0.0);
    EXPECT_DOUBLE_EQ(safeDiv(10.0, 0.0, 1.0), 1.0);
    double inf = std::numeric_limits<double>::infinity();
    EXPECT_DOUBLE_EQ(safeDiv(inf, 2.0, -1.0), -1.0);
    EXPECT_DOUBLE_EQ(safeDiv(std::nan(""), 1.0, -1.0), -1.0);
}

TEST(FormatPercent, ClampsNonFinite)
{
    EXPECT_EQ(formatPercent(0.423), "42.3%");
    EXPECT_EQ(formatPercent(std::nan("")), "0.0%");
    EXPECT_EQ(formatPercent(std::numeric_limits<double>::infinity()),
              "0.0%");
}

TEST(Metrics, FindCounterDoesNotRegister)
{
    obs::MetricsRegistry reg;
    EXPECT_EQ(reg.findCounter("verify.nothere"), nullptr);
    reg.counter("verify.here").inc(3);
    const obs::Counter *c = reg.findCounter("verify.here");
    ASSERT_NE(c, nullptr);
    EXPECT_EQ(c->value(), 3u);
}

} // namespace
} // namespace cdpc
