/**
 * @file
 * Equivalence suite for the flat fast-path data structures.
 *
 * The per-reference fast path (flat translation/TLB/residence
 * structures) re-implemented the TLB, the LruShadow and the page
 * table on flat arrays. Experiment output must stay bit-identical,
 * so each flat structure is driven here in lockstep with a
 * straightforward reference model (the shape of the previous
 * implementation: std::list LRU + std::unordered_map index) on
 * randomized streams, asserting identical hit/miss/eviction
 * behaviour at every step. A final set of tests exercises the
 * MemorySystem translation micro-cache against purgePage/recolor
 * interleavings, including auditInvariants() sweeps.
 */

#include <gtest/gtest.h>

#include <list>
#include <unordered_map>

#include "common/flat_hash.h"
#include "common/random.h"
#include "machine/config.h"
#include "mem/memsystem.h"
#include "mem/miss_classify.h"
#include "mem/recolor.h"
#include "mem/tlb.h"
#include "vm/page_table.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"

namespace cdpc
{
namespace
{

/**
 * Reference true-LRU cache over u64 keys: front of the list is most
 * recent — the exact structure the old Tlb/LruShadow used.
 */
class RefLru
{
  public:
    explicit RefLru(std::size_t capacity) : cap(capacity) {}

    bool
    accessAndUpdate(std::uint64_t key)
    {
        auto it = map.find(key);
        if (it != map.end()) {
            lru.splice(lru.begin(), lru, it->second);
            return true;
        }
        if (map.size() >= cap) {
            map.erase(lru.back());
            lru.pop_back();
        }
        lru.push_front(key);
        map[key] = lru.begin();
        return false;
    }

    bool contains(std::uint64_t key) const { return map.contains(key); }

    bool
    invalidate(std::uint64_t key)
    {
        auto it = map.find(key);
        if (it == map.end())
            return false;
        lru.erase(it->second);
        map.erase(it);
        return true;
    }

    void
    flush()
    {
        lru.clear();
        map.clear();
    }

    std::size_t size() const { return map.size(); }

  private:
    std::size_t cap;
    std::list<std::uint64_t> lru;
    std::unordered_map<std::uint64_t,
                       std::list<std::uint64_t>::iterator>
        map;
};

// ---- Tlb vs reference --------------------------------------------------

TEST(FastPathEquiv, TlbMatchesReferenceOnRandomStream)
{
    constexpr std::uint32_t kEntries = 16;
    constexpr PageNum kVpnSpace = 64; // 4x capacity: heavy eviction
    Tlb tlb(kEntries);
    RefLru ref(kEntries);
    Rng rng(0xfa570001);

    for (int step = 0; step < 20000; step++) {
        PageNum vpn = rng.below(kVpnSpace);
        std::uint64_t op = rng.below(100);
        if (op < 80) {
            ASSERT_EQ(tlb.access(vpn), ref.accessAndUpdate(vpn))
                << "step " << step << " vpn " << vpn;
        } else if (op < 90) {
            ASSERT_EQ(tlb.contains(vpn), ref.contains(vpn));
        } else if (op < 99) {
            ASSERT_EQ(tlb.invalidate(vpn), ref.invalidate(vpn));
        } else {
            tlb.flush();
            ref.flush();
        }
        ASSERT_EQ(tlb.size(), ref.size()) << "step " << step;
        // Same resident set => same eviction decisions so far.
        if (step % 97 == 0) {
            for (PageNum v = 0; v < kVpnSpace; v++)
                ASSERT_EQ(tlb.contains(v), ref.contains(v))
                    << "step " << step << " vpn " << v;
        }
    }
}

TEST(FastPathEquiv, TlbHitAtIsEquivalentToAccessOnHit)
{
    Tlb fast(8);
    Tlb slow(8);
    Rng rng(0xfa570002);
    // Track the slot each vpn was last installed in for the fast
    // copy, exactly like the MemorySystem micro-cache does.
    std::unordered_map<PageNum, std::uint32_t> memo;

    for (int step = 0; step < 20000; step++) {
        PageNum vpn = rng.below(24);
        if (rng.below(20) == 0) {
            fast.invalidate(vpn);
            slow.invalidate(vpn);
            continue;
        }
        bool slow_hit = slow.access(vpn);
        auto it = memo.find(vpn);
        bool fast_hit = it != memo.end() && fast.hitAt(it->second, vpn);
        if (!fast_hit) {
            std::uint32_t slot = 0;
            fast_hit = fast.access(vpn, &slot);
            memo[vpn] = slot;
        }
        ASSERT_EQ(fast_hit, slow_hit) << "step " << step;
        ASSERT_EQ(fast.stats().accesses, slow.stats().accesses);
        ASSERT_EQ(fast.stats().misses, slow.stats().misses);
    }
}

// ---- LruShadow vs reference --------------------------------------------

TEST(FastPathEquiv, LruShadowMatchesReferenceOnRandomStream)
{
    constexpr std::uint64_t kCap = 32;
    constexpr Addr kLineSpace = 128;
    LruShadow shadow(kCap);
    RefLru ref(kCap);
    Rng rng(0xfa570003);

    for (int step = 0; step < 30000; step++) {
        // Mix uniform lines with short sequential bursts (the shape
        // cache fills actually produce).
        Addr line = rng.below(kLineSpace);
        std::uint64_t burst = 1 + rng.below(4);
        for (std::uint64_t b = 0; b < burst; b++) {
            Addr l = (line + b) % kLineSpace;
            ASSERT_EQ(shadow.accessAndUpdate(l), ref.accessAndUpdate(l))
                << "step " << step << " line " << l;
        }
        ASSERT_EQ(shadow.size(), ref.size());
        if (step % 101 == 0) {
            for (Addr l = 0; l < kLineSpace; l++)
                ASSERT_EQ(shadow.contains(l), ref.contains(l))
                    << "step " << step << " line " << l;
        }
    }
}

// ---- PageTable vs reference --------------------------------------------

TEST(FastPathEquiv, PageTableMatchesUnorderedMap)
{
    PageTable pt;
    std::unordered_map<PageNum, PageNum> ref;
    Rng rng(0xfa570004);

    // Two far-apart bases (text/data-like), plus a sparse far range:
    // ascending runs, descending runs, random pokes and remaps.
    const PageNum bases[] = {0x2000, 0x80000, 0x500000000ULL};
    PageNum next_ppn = 1;
    for (int step = 0; step < 20000; step++) {
        PageNum base = bases[rng.below(3)];
        PageNum vpn = base + rng.below(2000);
        std::uint64_t op = rng.below(100);
        if (op < 70) { // fault-if-unmapped, then translate
            if (!ref.contains(vpn)) {
                pt.insert(vpn, next_ppn);
                ref[vpn] = next_ppn;
                next_ppn++;
            }
            ASSERT_EQ(pt.lookup(vpn), ref.at(vpn));
        } else if (op < 90) { // lookup (possibly unmapped)
            auto it = ref.find(vpn);
            ASSERT_EQ(pt.lookup(vpn), it == ref.end()
                                          ? PageTable::kUnmapped
                                          : it->second)
                << "vpn " << vpn;
        } else { // remap in place
            PageNum *slot = pt.slotOf(vpn);
            auto it = ref.find(vpn);
            ASSERT_EQ(slot != nullptr, it != ref.end());
            if (slot) {
                *slot = next_ppn;
                it->second = next_ppn;
                next_ppn++;
            }
        }
        ASSERT_EQ(pt.size(), ref.size());
    }

    // forEach must visit exactly the reference pairs, ascending.
    PageNum prev_vpn = 0;
    bool first = true;
    std::size_t visited = 0;
    pt.forEach([&](PageNum vpn, PageNum ppn) {
        if (!first) {
            EXPECT_GT(vpn, prev_vpn) << "forEach not ascending";
        }
        first = false;
        prev_vpn = vpn;
        auto it = ref.find(vpn);
        ASSERT_NE(it, ref.end());
        EXPECT_EQ(ppn, it->second);
        visited++;
    });
    EXPECT_EQ(visited, ref.size());

    pt.clear();
    EXPECT_EQ(pt.size(), 0u);
    EXPECT_EQ(pt.lookup(bases[0]), PageTable::kUnmapped);
}

TEST(FastPathEquiv, PageTableDescendingFaultsStayDense)
{
    PageTable pt;
    // Fault 4096 pages in strictly descending order; the backward
    // growth slack must keep this from fragmenting into thousands of
    // segments (and from going quadratic).
    for (PageNum i = 0; i < 4096; i++)
        pt.insert(0x100000 - i, i + 1);
    EXPECT_EQ(pt.size(), 4096u);
    EXPECT_LE(pt.segmentCount(), 2u);
    for (PageNum i = 0; i < 4096; i++)
        EXPECT_EQ(pt.lookup(0x100000 - i), i + 1);
}

TEST(FastPathEquiv, PageTableMergesAdjacentRanges)
{
    PageTable pt;
    pt.insert(100, 1);
    pt.insert(300, 2); // within kMaxGap: same segment, hole between
    EXPECT_EQ(pt.segmentCount(), 1u);
    pt.insert(200, 3);
    EXPECT_EQ(pt.lookup(100), 1u);
    EXPECT_EQ(pt.lookup(200), 3u);
    EXPECT_EQ(pt.lookup(300), 2u);
    EXPECT_EQ(pt.lookup(150), PageTable::kUnmapped);
    // A distant range starts its own segment.
    pt.insert(100000, 4);
    EXPECT_EQ(pt.segmentCount(), 2u);
}

// ---- MemorySystem micro-cache vs TLB/translation semantics -------------

class FastPathMemTest : public ::testing::Test
{
  protected:
    FastPathMemTest()
        : cfg(MachineConfig::paperScaled(2)),
          phys(cfg.physPages, cfg.numColors()),
          policy(cfg.numColors()), vm(cfg, phys, policy), mem(cfg, vm)
    {}

    MachineConfig cfg;
    PhysMem phys;
    PageColoringPolicy policy;
    VirtualMemory vm;
    MemorySystem mem;
};

/**
 * The micro-cache must leave TLB statistics exactly as a standalone
 * reference TLB fed the same vpn stream (with the same shootdowns)
 * — that is what keeps kernel-time figures bit-identical.
 */
TEST_F(FastPathMemTest, TlbStatsMatchReferenceUnderPurges)
{
    RefLru ref(cfg.tlbEntries);
    std::uint64_t ref_accesses = 0, ref_misses = 0;
    Rng rng(0xfa570005);

    for (int step = 0; step < 30000; step++) {
        VAddr va =
            rng.below(512) * cfg.pageBytes + rng.below(cfg.pageBytes);
        if (rng.below(50) == 0 && vm.isMapped(va)) {
            // A recolor-style purge: shootdown on every CPU.
            mem.purgePage(va);
            ref.invalidate(vm.vpnOf(va));
            continue;
        }
        MemAccess a;
        a.va = va;
        a.kind = rng.below(4) == 0 ? AccessKind::Store : AccessKind::Load;
        a.wordMask = 1;
        AccessOutcome out =
            mem.access(0, a, static_cast<Cycles>(step) * 7);
        ref_accesses++;
        bool ref_hit = ref.accessAndUpdate(vm.vpnOf(va));
        if (!ref_hit)
            ref_misses++;
        ASSERT_EQ(out.tlbMiss, !ref_hit) << "step " << step;
    }
    EXPECT_EQ(mem.tlb(0).stats().accesses, ref_accesses);
    EXPECT_EQ(mem.tlb(0).stats().misses, ref_misses);
    EXPECT_EQ(mem.cpuStats(0).tlbMisses, ref_misses);
}

/**
 * Purge-then-remap (the recolorer's contract) interleaved with
 * accesses from two CPUs: the micro-cache must never serve a stale
 * translation, which auditInvariants() would flag as residence /
 * sharing entries the caches do not actually hold.
 */
TEST_F(FastPathMemTest, MicroCacheSurvivesPurgeRemapInterleaving)
{
    Rng rng(0xfa570006);
    constexpr PageNum kPages = 64;

    for (int step = 0; step < 20000; step++) {
        VAddr va = rng.below(kPages) * cfg.pageBytes;
        if (rng.below(40) == 0 && vm.isMapped(va)) {
            PageNum vpn = vm.vpnOf(va);
            Color target = static_cast<Color>(rng.below(vm.numColors()));
            mem.purgePage(va);
            vm.remap(vpn, target);
            continue;
        }
        MemAccess a;
        a.va = va + rng.below(cfg.pageBytes / 2);
        a.kind = AccessKind::Load;
        mem.access(static_cast<CpuId>(rng.below(2)), a,
                   static_cast<Cycles>(step) * 3);
        if (step % 1024 == 0)
            mem.auditInvariants();
    }
    mem.auditInvariants();
}

/**
 * auditInvariants() after purgePage and after dynamic recoloring
 * with the translation micro-cache active (satellite requirement).
 */
TEST_F(FastPathMemTest, AuditCleanAfterPurgeAndRecolor)
{
    Rng rng(0xfa570007);

    RecolorConfig rc;
    rc.missThreshold = 4; // recolor eagerly
    DynamicRecolorer recolorer(vm, phys, mem, rc);
    mem.setConflictObserver(
        [&](CpuId cpu, PageNum vpn, Cycles now) {
            return recolorer.onConflictMiss(cpu, vpn, now);
        });

    // Hammer a conflict-prone footprint: many pages aliasing the
    // same color so the recolorer fires while accesses stream.
    std::uint64_t colors = vm.numColors();
    for (int step = 0; step < 40000; step++) {
        PageNum page = rng.below(16) * colors; // one color class
        MemAccess a;
        a.va = page * cfg.pageBytes + rng.below(cfg.pageBytes);
        a.kind = rng.below(3) == 0 ? AccessKind::Store : AccessKind::Load;
        a.wordMask = 1;
        mem.access(static_cast<CpuId>(rng.below(2)), a,
                   static_cast<Cycles>(step) * 5);
        if (step % 4096 == 0)
            mem.auditInvariants();
    }
    EXPECT_GT(recolorer.stats().recolorings, 0u);
    mem.auditInvariants();

    // Explicit purges on top, then audit again.
    for (PageNum p = 0; p < 16; p++)
        mem.purgePage(p * colors * cfg.pageBytes);
    mem.auditInvariants();
}

// ---- FlatHashMap/FlatHashSet unit coverage -----------------------------

TEST(FlatHash, MapMatchesUnorderedMapOnRandomOps)
{
    FlatHashMap<std::uint64_t> map(4);
    std::unordered_map<std::uint64_t, std::uint64_t> ref;
    Rng rng(0xfa570008);

    for (int step = 0; step < 50000; step++) {
        std::uint64_t key = rng.below(512);
        switch (rng.below(4)) {
          case 0:
            map.insertOrAssign(key, step);
            ref[key] = static_cast<std::uint64_t>(step);
            break;
          case 1: {
            std::uint64_t *v = map.find(key);
            auto it = ref.find(key);
            ASSERT_EQ(v != nullptr, it != ref.end()) << "key " << key;
            if (v) {
                ASSERT_EQ(*v, it->second);
            }
            break;
          }
          case 2:
            ASSERT_EQ(map.erase(key), ref.erase(key) > 0);
            break;
          default:
            ASSERT_EQ(map.contains(key), ref.contains(key));
            break;
        }
        ASSERT_EQ(map.size(), ref.size());
    }

    std::size_t seen = 0;
    map.forEach([&](std::uint64_t k, std::uint64_t &v) {
        auto it = ref.find(k);
        ASSERT_NE(it, ref.end());
        ASSERT_EQ(v, it->second);
        seen++;
    });
    ASSERT_EQ(seen, ref.size());

    map.eraseIf([](std::uint64_t k, std::uint64_t) { return k % 2 == 0; });
    std::erase_if(ref, [](const auto &kv) { return kv.first % 2 == 0; });
    ASSERT_EQ(map.size(), ref.size());
    map.forEach([&](std::uint64_t k, std::uint64_t &) {
        ASSERT_TRUE(ref.contains(k));
    });
}

TEST(FlatHash, SetInsertContains)
{
    FlatHashSet set(2);
    EXPECT_TRUE(set.insert(7));
    EXPECT_FALSE(set.insert(7));
    for (std::uint64_t i = 1; i <= 1000; i++)
        set.insert(i * 31);
    EXPECT_EQ(set.size(), 1001u); // 7 plus the 1000 multiples of 31
    for (std::uint64_t i = 1; i <= 1000; i++)
        EXPECT_TRUE(set.contains(i * 31));
    EXPECT_FALSE(set.contains(5));
    set.clear();
    EXPECT_EQ(set.size(), 0u);
    EXPECT_FALSE(set.contains(7));
}

} // namespace
} // namespace cdpc
