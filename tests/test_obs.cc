/**
 * @file
 * The observability layer: metric exactness under the work-stealing
 * pool, the runtime gates, trace well-formedness (balanced B/E),
 * snapshot determinism across worker counts, and the cardinal rule
 * that observers never perturb simulation results.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <sstream>
#include <string>

#include "common/faultpoint.h"
#include "harness/experiment.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/runner.h"

namespace cdpc
{
namespace
{

class QuietGuard
{
  public:
    QuietGuard() { setQuiet(true); }
    ~QuietGuard() { setQuiet(false); }
};

/** RAII: metrics on for the test body, reset + off afterwards. */
class MetricsGuard
{
  public:
    MetricsGuard()
    {
        obs::MetricsRegistry::global().resetAll();
        obs::setMetricsEnabled(true);
    }
    ~MetricsGuard()
    {
        obs::setMetricsEnabled(false);
        obs::MetricsRegistry::global().resetAll();
    }
};

std::string
readFile(const std::string &path)
{
    std::ifstream in(path);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

std::size_t
countOccurrences(const std::string &text, const std::string &needle)
{
    std::size_t n = 0;
    for (std::size_t pos = text.find(needle);
         pos != std::string::npos; pos = text.find(needle, pos + 1))
        n++;
    return n;
}

ExperimentConfig
smallConfig(std::uint32_t stats_interval = 0)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    cfg.mapping = MappingPolicy::Cdpc;
    cfg.sim.statsInterval = stats_interval;
    return cfg;
}

// ------------------------------------------------------------ metrics

TEST(Metrics, ConcurrentCountsAreExact)
{
    MetricsGuard metrics;
    runner::ThreadPool pool(8);
    constexpr int kTasks = 64;
    constexpr int kIncsPerTask = 10000;
    for (int t = 0; t < kTasks; t++) {
        pool.submit([] {
            for (int i = 0; i < kIncsPerTask; i++)
                CDPC_METRIC_COUNT("test.concurrent", 1);
        });
    }
    pool.waitIdle();
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .counter("test.concurrent")
                  .value(),
              static_cast<std::uint64_t>(kTasks) * kIncsPerTask);
}

TEST(Metrics, RuntimeGateDropsUpdatesWhenOff)
{
    obs::MetricsRegistry::global().resetAll();
    obs::setMetricsEnabled(false);
    CDPC_METRIC_COUNT("test.gated", 1);
    CDPC_METRIC_OBSERVE("test.gated_hist", 42);
    EXPECT_EQ(
        obs::MetricsRegistry::global().counter("test.gated").value(),
        0u);
    EXPECT_EQ(obs::MetricsRegistry::global()
                  .histogram("test.gated_hist")
                  .count(),
              0u);
}

TEST(Metrics, HistogramBucketsByPowerOfTwo)
{
    obs::Histogram h;
    h.observe(0);    // bucket 0
    h.observe(1);    // bucket 1: [1, 2)
    h.observe(3);    // bucket 2: [2, 4)
    h.observe(8);    // bucket 4: [8, 16)
    h.observe(1000); // bucket 10: [512, 1024)
    EXPECT_EQ(h.count(), 5u);
    EXPECT_EQ(h.sum(), 1012u);
    EXPECT_EQ(h.max(), 1000u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    EXPECT_EQ(h.bucket(10), 1u);
}

TEST(Metrics, WriteJsonCoversAllThreeKinds)
{
    MetricsGuard metrics;
    obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
    reg.counter("test.c").inc(3);
    reg.gauge("test.g").set(-7);
    reg.histogram("test.h").observe(5);
    std::ostringstream out;
    reg.writeJson(out);
    const std::string json = out.str();
    EXPECT_NE(json.find("\"counters\""), std::string::npos);
    EXPECT_NE(json.find("\"test.c\": 3"), std::string::npos);
    EXPECT_NE(json.find("\"test.g\": -7"), std::string::npos);
    EXPECT_NE(json.find("\"histograms\""), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '\n');
}

// -------------------------------------------------------------- trace

TEST(Trace, ExperimentTraceIsBalancedAndWellFormed)
{
    const std::string path =
        ::testing::TempDir() + "cdpc_obs_trace.json";
    obs::installTraceWriter(path);
    runWorkload("107.mgrid", smallConfig(20000));
    obs::finalizeTrace();

    const std::string text = readFile(path);
    ASSERT_FALSE(text.empty());
    EXPECT_EQ(text.rfind("{\"traceEvents\": [", 0), 0u);
    EXPECT_NE(text.find("]}"), std::string::npos);
    std::size_t begins = countOccurrences(text, "\"ph\": \"B\"");
    std::size_t ends = countOccurrences(text, "\"ph\": \"E\"");
    EXPECT_GT(begins, 0u);
    EXPECT_EQ(begins, ends);
    // The setup phases and the simulation appear as spans; interval
    // snapshots feed the miss-rate counter series.
    EXPECT_NE(text.find("\"compile\""), std::string::npos);
    EXPECT_NE(text.find("\"simulate\""), std::string::npos);
    EXPECT_NE(text.find("\"l2MissRate\""), std::string::npos);
}

TEST(Trace, InactiveWithoutWriter)
{
    EXPECT_FALSE(obs::traceActive());
    // All emit helpers must be safe no-ops with no writer installed.
    obs::simInstant("noop", {{"k", 1}});
    obs::runnerInstant("noop", 0, {});
    obs::setSimCycles(123);
}

// ---------------------------------------------------- interval stats

std::vector<std::string>
batchResultJson(unsigned workers, std::uint32_t stats_interval)
{
    std::vector<runner::JobSpec> specs;
    specs.push_back(
        runner::makeJob("107.mgrid", smallConfig(stats_interval)));
    specs.push_back(
        runner::makeJob("104.hydro2d", smallConfig(stats_interval)));
    specs.push_back(runner::makeJob(
        "107.mgrid", smallConfig(stats_interval ? stats_interval * 2
                                                : 0)));
    runner::BatchOptions opts;
    opts.jobs = workers;
    std::vector<runner::JobResult> results =
        runner::runBatch(std::move(specs), opts);
    std::vector<std::string> json;
    for (const runner::JobResult &r : results)
        json.push_back(runner::resultToJson(r));
    return json;
}

TEST(Snapshots, CapturedAtRequestedInterval)
{
    ExperimentResult r = runWorkload("107.mgrid", smallConfig(10000));
    ASSERT_FALSE(r.snapshots.empty());
    const obs::IntervalSnapshot &first = r.snapshots.front();
    EXPECT_EQ(first.seq, 0u);
    EXPECT_EQ(first.refs, 10000u);
    EXPECT_EQ(first.cpus.size(), 2u);
    EXPECT_FALSE(first.colorPages.empty());
    // Cumulative counters are monotone across snapshots.
    for (std::size_t i = 1; i < r.snapshots.size(); i++) {
        EXPECT_GE(r.snapshots[i].refs, r.snapshots[i - 1].refs);
        EXPECT_GE(r.snapshots[i].cycles, r.snapshots[i - 1].cycles);
    }
}

TEST(Snapshots, DeterministicAcrossWorkerCounts)
{
    QuietGuard quiet;
    std::vector<std::string> serial = batchResultJson(1, 5000);
    std::vector<std::string> parallel = batchResultJson(8, 5000);
    ASSERT_EQ(serial.size(), parallel.size());
    for (std::size_t i = 0; i < serial.size(); i++)
        EXPECT_EQ(serial[i], parallel[i]) << "job " << i;
    EXPECT_NE(serial[0].find("\"snapshots\""), std::string::npos);
}

TEST(Snapshots, ObserversDoNotPerturbResults)
{
    QuietGuard quiet;
    // Baseline: observability fully off, no snapshot request.
    std::vector<std::string> plain = batchResultJson(2, 0);

    // Same jobs with metrics collected and a trace being written:
    // the result JSON must stay byte-identical.
    const std::string path =
        ::testing::TempDir() + "cdpc_obs_perturb.json";
    std::vector<std::string> observed;
    {
        MetricsGuard metrics;
        obs::installTraceWriter(path);
        observed = batchResultJson(2, 0);
        obs::finalizeTrace();
    }
    ASSERT_EQ(plain.size(), observed.size());
    for (std::size_t i = 0; i < plain.size(); i++)
        EXPECT_EQ(plain[i], observed[i]) << "job " << i;
    // And without a snapshot request the field is absent entirely.
    EXPECT_EQ(plain[0].find("\"snapshots\""), std::string::npos);
}

// -------------------------------------------------------- faultpoint

TEST(FaultPoints, FiresAreObservable)
{
    QuietGuard quiet;
    MetricsGuard metrics;
    const std::string path =
        ::testing::TempDir() + "cdpc_obs_fault.json";
    obs::installTraceWriter(path);
    faultpoints::install(FaultPlan::parse("obs.test=fail"));
    EXPECT_THROW(faultPoint("obs.test"), FaultInjectedError);
    faultpoints::clear();
    obs::finalizeTrace();

    EXPECT_EQ(
        obs::MetricsRegistry::global().counter("fault.fires").value(),
        1u);
    const std::string text = readFile(path);
    EXPECT_NE(text.find("\"faultFire\""), std::string::npos);
    EXPECT_NE(text.find("\"site\""), std::string::npos);
}

// ------------------------------------------------------------- runner

TEST(Progress, ReportsRetriesAndQuarantines)
{
    std::ostringstream out;
    runner::ProgressReporter progress(3, &out, 0.0);
    progress.jobDone(true);
    progress.jobDone(true, 3, false);  // two retries, then ok
    progress.jobDone(false, 2, true);  // quarantined after a retry
    progress.finish();
    EXPECT_EQ(progress.retries(), 3u);
    EXPECT_EQ(progress.quarantined(), 1u);
    const std::string text = out.str();
    EXPECT_NE(text.find("1 quarantined"), std::string::npos);
    EXPECT_NE(text.find("3 retries"), std::string::npos);
}

} // namespace
} // namespace cdpc
