/**
 * @file
 * Tests for the TLB, bus and miss-classification helpers.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "mem/bus.h"
#include "mem/miss_classify.h"
#include "mem/tlb.h"

namespace cdpc
{
namespace
{

// ---- TLB ---------------------------------------------------------------

TEST(Tlb, HitAfterRefill)
{
    Tlb t(4);
    EXPECT_FALSE(t.access(7));
    EXPECT_TRUE(t.access(7));
    EXPECT_EQ(t.stats().accesses, 2u);
    EXPECT_EQ(t.stats().misses, 1u);
}

TEST(Tlb, LruEvictionAtCapacity)
{
    Tlb t(2);
    t.access(1);
    t.access(2);
    t.access(1);       // 2 becomes LRU
    t.access(3);       // evicts 2
    EXPECT_TRUE(t.contains(1));
    EXPECT_FALSE(t.contains(2));
    EXPECT_TRUE(t.contains(3));
    EXPECT_EQ(t.size(), 2u);
}

TEST(Tlb, ContainsDoesNotRefill)
{
    Tlb t(2);
    EXPECT_FALSE(t.contains(5));
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.stats().accesses, 0u);
}

TEST(Tlb, Flush)
{
    Tlb t(4);
    t.access(1);
    t.access(2);
    t.flush();
    EXPECT_EQ(t.size(), 0u);
    EXPECT_FALSE(t.contains(1));
}

TEST(Tlb, ZeroEntriesRejected)
{
    EXPECT_THROW(Tlb(0), FatalError);
}

// ---- Bus ---------------------------------------------------------------

TEST(Bus, ImmediateGrantWhenIdle)
{
    Bus b(40, 40, 8);
    EXPECT_EQ(b.acquire(BusKind::Data, 100), 100u);
    EXPECT_EQ(b.freeAt(), 140u);
    EXPECT_EQ(b.stats().dataTxns, 1u);
    EXPECT_EQ(b.stats().dataBusy, 40u);
    EXPECT_EQ(b.stats().queueing, 0u);
}

TEST(Bus, QueueingWhenBusy)
{
    Bus b(40, 40, 8);
    b.acquire(BusKind::Data, 0);
    // Second request at t=10 waits until 40.
    EXPECT_EQ(b.acquire(BusKind::Data, 10), 40u);
    EXPECT_EQ(b.stats().queueing, 30u);
    EXPECT_EQ(b.freeAt(), 80u);
}

TEST(Bus, CategoriesTrackedSeparately)
{
    Bus b(40, 30, 8);
    b.acquire(BusKind::Data, 0);
    b.acquire(BusKind::Writeback, 100);
    b.acquire(BusKind::Upgrade, 200);
    EXPECT_EQ(b.stats().dataBusy, 40u);
    EXPECT_EQ(b.stats().writebackBusy, 30u);
    EXPECT_EQ(b.stats().upgradeBusy, 8u);
    EXPECT_EQ(b.stats().totalTxns(), 3u);
    EXPECT_EQ(b.stats().totalBusy(), 78u);
}

TEST(Bus, Utilization)
{
    Bus b(40, 40, 8);
    b.acquire(BusKind::Data, 0);
    EXPECT_DOUBLE_EQ(b.utilization(80), 0.5);
    EXPECT_DOUBLE_EQ(b.utilization(0), 0.0);
    // Clamped at 1.
    EXPECT_DOUBLE_EQ(b.utilization(10), 1.0);
}

TEST(Bus, Reset)
{
    Bus b(40, 40, 8);
    b.acquire(BusKind::Data, 0);
    b.reset();
    EXPECT_EQ(b.freeAt(), 0u);
    EXPECT_EQ(b.stats().totalTxns(), 0u);
}

TEST(Bus, ZeroOccupancyRejected)
{
    EXPECT_THROW(Bus(0, 40, 8), FatalError);
}

// ---- LruShadow / ColdTracker -------------------------------------------

TEST(LruShadow, HitWithinCapacity)
{
    LruShadow s(4);
    EXPECT_FALSE(s.accessAndUpdate(1));
    EXPECT_TRUE(s.accessAndUpdate(1));
}

TEST(LruShadow, EvictsLruBeyondCapacity)
{
    LruShadow s(2);
    s.accessAndUpdate(1);
    s.accessAndUpdate(2);
    s.accessAndUpdate(1); // 2 is now LRU
    s.accessAndUpdate(3); // evicts 2
    EXPECT_TRUE(s.contains(1));
    EXPECT_FALSE(s.contains(2));
    EXPECT_TRUE(s.contains(3));
}

TEST(LruShadow, StreamingNeverHits)
{
    // The classic capacity pattern: a cyclic sweep of N+1 lines over
    // an N-line fully associative LRU cache misses every time.
    LruShadow s(8);
    for (int round = 0; round < 3; round++) {
        for (Addr l = 0; l < 9; l++)
            EXPECT_FALSE(s.accessAndUpdate(l)) << "round " << round;
    }
}

TEST(ColdTracker, FirstTouchOnly)
{
    ColdTracker c;
    EXPECT_FALSE(c.seenBefore(10));
    EXPECT_TRUE(c.seenBefore(10));
    EXPECT_FALSE(c.seenBefore(11));
    EXPECT_EQ(c.linesSeen(), 2u);
    c.reset();
    EXPECT_FALSE(c.seenBefore(10));
}

TEST(MissKind, Names)
{
    EXPECT_STREQ(missKindName(MissKind::Cold), "cold");
    EXPECT_STREQ(missKindName(MissKind::Capacity), "capacity");
    EXPECT_STREQ(missKindName(MissKind::Conflict), "conflict");
    EXPECT_STREQ(missKindName(MissKind::TrueSharing), "true-sharing");
    EXPECT_STREQ(missKindName(MissKind::FalseSharing), "false-sharing");
    EXPECT_STREQ(missKindName(MissKind::Upgrade), "upgrade");
}

} // namespace
} // namespace cdpc
