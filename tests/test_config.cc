/**
 * @file
 * Tests for MachineConfig: preset geometry, the color formula (the
 * paper's Section 2.1 arithmetic), and validation of every rejection
 * branch.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "machine/config.h"

namespace cdpc
{
namespace
{

TEST(MachineConfig, PaperColorFormula)
{
    // "in a system with a 1MB cache and 4KB page size, there are 256
    //  colors if the cache is direct-mapped, and 128 if the cache is
    //  two-way set-associative."
    MachineConfig m = MachineConfig::paperFull(1);
    EXPECT_EQ(m.numColors(), 256u);
    m.l2.assoc = 2;
    EXPECT_EQ(m.numColors(), 128u);
}

TEST(MachineConfig, ScaledPresetKeepsColors)
{
    EXPECT_EQ(MachineConfig::paperScaled(8).numColors(), 256u);
    EXPECT_EQ(MachineConfig::paperScaledTwoWay(8).numColors(), 128u);
    EXPECT_EQ(MachineConfig::paperScaledBig(8).numColors(), 1024u);
    EXPECT_EQ(MachineConfig::alphaScaled(8).numColors(), 1024u);
}

TEST(MachineConfig, PresetsValidate)
{
    for (std::uint32_t p : {1u, 2u, 16u}) {
        EXPECT_NO_THROW(MachineConfig::paperScaled(p).validate());
        EXPECT_NO_THROW(MachineConfig::paperScaledTwoWay(p).validate());
        EXPECT_NO_THROW(MachineConfig::paperScaledBig(p).validate());
        EXPECT_NO_THROW(MachineConfig::alphaScaled(p).validate());
        EXPECT_NO_THROW(MachineConfig::paperFull(p).validate());
    }
}

TEST(MachineConfig, LinesPerPage)
{
    MachineConfig m = MachineConfig::paperScaled(1);
    EXPECT_EQ(m.linesPerPage(), 512u / 64u);
    EXPECT_EQ(MachineConfig::paperFull(1).linesPerPage(),
              4096u / 128u);
}

TEST(MachineConfig, CacheGeometryHelpers)
{
    CacheConfig c{128 * 1024, 2, 64};
    EXPECT_EQ(c.numLines(), 2048u);
    EXPECT_EQ(c.numSets(), 1024u);
}

class ConfigRejection : public ::testing::Test
{
  protected:
    MachineConfig m = MachineConfig::paperScaled(2);
};

TEST_F(ConfigRejection, ZeroCpus)
{
    m.numCpus = 0;
    EXPECT_THROW(m.validate(), FatalError);
}

TEST_F(ConfigRejection, NonPowerOfTwoPage)
{
    m.pageBytes = 500;
    EXPECT_THROW(m.validate(), FatalError);
}

TEST_F(ConfigRejection, ZeroCacheSize)
{
    m.l2.sizeBytes = 0;
    EXPECT_THROW(m.validate(), FatalError);
}

TEST_F(ConfigRejection, NonPowerOfTwoLine)
{
    m.l1d.lineBytes = 48;
    EXPECT_THROW(m.validate(), FatalError);
}

TEST_F(ConfigRejection, ZeroAssoc)
{
    m.l2.assoc = 0;
    EXPECT_THROW(m.validate(), FatalError);
}

TEST_F(ConfigRejection, CacheNotMultipleOfWaySize)
{
    m.l2.sizeBytes = 96 * 1024;
    m.l2.assoc = 1;
    m.l2.lineBytes = 64;
    // 96KB / 64B = 1536 sets: not a power of two.
    EXPECT_THROW(m.validate(), FatalError);
}

TEST_F(ConfigRejection, CacheNotMultipleOfPageTimesAssoc)
{
    m.pageBytes = 512;
    m.l2.sizeBytes = 64 * 1024;
    m.l2.assoc = 1;
    m.l2.lineBytes = 64;
    m.physPages = 1024;
    EXPECT_NO_THROW(m.validate());
    m.pageBytes = 2048;
    m.l1d.lineBytes = 64;
    // 64KB / (2KB * 1) = 32 colors: fine. Break it instead with a
    // page larger than the cache span per way times assoc.
    m.l2.sizeBytes = 1024; // smaller than the page
    EXPECT_THROW(m.validate(), FatalError);
}

TEST_F(ConfigRejection, PageNotMultipleOfLine)
{
    m.pageBytes = 32; // smaller than the 64B line
    EXPECT_THROW(m.validate(), FatalError);
}

TEST_F(ConfigRejection, TooFewPhysPages)
{
    m.physPages = 4; // fewer than numColors()
    EXPECT_THROW(m.validate(), FatalError);
}

} // namespace
} // namespace cdpc
