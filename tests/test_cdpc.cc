/**
 * @file
 * Tests for the CDPC core: ProcSet, Step 1 segments, Steps 2-3
 * ordering, Steps 4-5 coloring, and the run-time facade, including
 * the touch-order equivalence property of Section 5.3.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>

#include "cdpc/runtime.h"
#include "compiler/compiler.h"
#include "vm/physmem.h"
#include "vm/virtual_memory.h"
#include "workloads/builder.h"

namespace cdpc
{
namespace
{

// ---- ProcSet ---------------------------------------------------------------

TEST(ProcSet, Basics)
{
    ProcSet s;
    EXPECT_TRUE(s.empty());
    s.add(3);
    s.add(5);
    EXPECT_TRUE(s.contains(3));
    EXPECT_FALSE(s.contains(4));
    EXPECT_EQ(s.count(), 2u);
    EXPECT_FALSE(s.singleton());
    EXPECT_TRUE(ProcSet::single(7).singleton());
    EXPECT_EQ(ProcSet::all(4).mask, 0b1111u);
    EXPECT_EQ(s.str(), "{3,5}");
}

TEST(ProcSet, IntersectionAndOverlap)
{
    ProcSet a{0b0110}, b{0b0011}, c{0b1000};
    EXPECT_TRUE(a.intersects(b));
    EXPECT_FALSE(a.intersects(c));
    EXPECT_EQ(a.overlap(b), 1u);
    EXPECT_EQ(a.overlap(a), 2u);
}

// ---- Fixtures ---------------------------------------------------------------

/**
 * Two 16-page arrays row-partitioned over the CPUs, with shift
 * communication on the first — the Figure 4 flavor.
 */
Program
planProgram()
{
    ProgramBuilder b("plan");
    std::uint32_t a = b.array2d("A", 16, 64); // 16 rows x 512B = 16 pages
    std::uint32_t o = b.array2d("B", 16, 64);
    Phase ph;
    ph.name = "p";
    LoopNest nest;
    nest.label = "stencil";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {14, 64};
    nest.instsPerIter = 200;
    nest.refs = {
        b.at2(a, 0, 1, 0, 0),
        b.at2(a, 0, 1, 1, 0),
        b.at2(o, 0, 1, 0, 0, true),
    };
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    return p;
}

CdpcParams
params(std::uint32_t ncpus, std::uint64_t colors = 8)
{
    CdpcParams prm;
    prm.numCpus = ncpus;
    prm.pageBytes = 512;
    prm.numColors = colors;
    return prm;
}

// ---- Step 1: segments --------------------------------------------------------

TEST(Segments, SingleCpuIsOneSegmentPerArray)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    std::vector<Segment> segs = buildSegments(s, params(1));
    ASSERT_EQ(segs.size(), 2u);
    for (const Segment &seg : segs) {
        EXPECT_EQ(seg.numPages, 16u);
        EXPECT_EQ(seg.procs, ProcSet::single(0));
    }
}

TEST(Segments, TwoCpusSplitWithBoundarySharing)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    std::vector<Segment> segs = buildSegments(s, params(2));

    // Array A: rows 0-7 belong to cpu0; the a[i+1] ref makes cpu0
    // also touch row 8 -> pages {0..7}:{0}, {8}:{0,1}, {9..15}:{1}.
    std::map<std::uint32_t, std::vector<const Segment *>> by_array;
    for (const Segment &seg : segs)
        by_array[seg.arrayId].push_back(&seg);

    ASSERT_EQ(by_array[0].size(), 3u);
    EXPECT_EQ(by_array[0][0]->numPages, 8u);
    EXPECT_EQ(by_array[0][0]->procs, ProcSet::single(0));
    EXPECT_EQ(by_array[0][1]->numPages, 1u);
    EXPECT_EQ(by_array[0][1]->procs.mask, 0b11u);
    EXPECT_EQ(by_array[0][2]->numPages, 7u);
    EXPECT_EQ(by_array[0][2]->procs, ProcSet::single(1));

    // Array B has no communication: a clean two-way split.
    ASSERT_EQ(by_array[1].size(), 2u);
    EXPECT_EQ(by_array[1][0]->numPages, 8u);
    EXPECT_EQ(by_array[1][1]->numPages, 8u);
}

TEST(Segments, UnanalyzableArrayProducesNoSegments)
{
    Program p = planProgram();
    p.arrays[0].summarizable = false;
    AccessSummaries s = analyzeProgram(p);
    std::vector<Segment> segs = buildSegments(s, params(2));
    for (const Segment &seg : segs)
        EXPECT_EQ(seg.arrayId, 1u);
}

TEST(Segments, ReplicatedArrayGetsFullProcSet)
{
    Program p = planProgram();
    // Strip the parallel-dim dependence: array A replicated.
    LoopNest &nest = p.steady[0].nests[0];
    nest.refs = {nest.refs[0]};
    nest.refs[0].terms = {{1, 1}};
    AccessSummaries s = analyzeProgram(p);
    std::vector<Segment> segs = buildSegments(s, params(4));
    bool found_a = false;
    for (const Segment &seg : segs) {
        if (seg.arrayId == 0) {
            found_a = true;
            EXPECT_EQ(seg.procs, ProcSet::all(4));
        }
    }
    EXPECT_TRUE(found_a);
}

TEST(Segments, RotateCommMarksWrapAroundBoundaries)
{
    Program p = planProgram();
    // Declare periodic (rotate) communication on array A.
    p.declaredComms.push_back(DeclaredComm{0, true, 1});
    AccessSummaries s = analyzeProgram(p);
    std::vector<Segment> segs = buildSegments(s, params(4));

    // With 4 CPUs and rotate comm, CPU 3 also touches CPU 0's first
    // unit and CPU 0 touches CPU 3's last: the first and last pages
    // of array A are shared between CPUs 0 and 3.
    const Segment *first = nullptr, *last = nullptr;
    for (const Segment &seg : segs) {
        if (seg.arrayId != 0)
            continue;
        if (!first || seg.firstVpn < first->firstVpn)
            first = &seg;
        if (!last || seg.lastVpn() > last->lastVpn())
            last = &seg;
    }
    ASSERT_NE(first, nullptr);
    ASSERT_NE(last, nullptr);
    EXPECT_TRUE(first->procs.contains(0));
    EXPECT_TRUE(first->procs.contains(3));
    EXPECT_TRUE(last->procs.contains(3));
    EXPECT_TRUE(last->procs.contains(0));
}

TEST(Segments, PagesCoveredExactlyOnce)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    for (std::uint32_t ncpus : {1u, 2u, 4u, 8u}) {
        std::vector<Segment> segs = buildSegments(s, params(ncpus));
        std::set<PageNum> seen;
        for (const Segment &seg : segs) {
            for (std::uint64_t i = 0; i < seg.numPages; i++) {
                PageNum v = seg.firstVpn + i;
                EXPECT_TRUE(seen.insert(v).second)
                    << "page " << v << " duplicated at " << ncpus;
            }
        }
        EXPECT_EQ(seen.size(), 32u) << "ncpus " << ncpus;
    }
}

// ---- Steps 2-3: ordering -------------------------------------------------------

TEST(Ordering, GroupsByProcSet)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    std::vector<Segment> segs = buildSegments(s, params(2));
    std::vector<UniformSet> sets = groupIntoSets(segs);
    // {0}, {0,1}, {1}
    EXPECT_EQ(sets.size(), 3u);
    std::size_t total = 0;
    for (const UniformSet &set : sets)
        total += set.segIds.size();
    EXPECT_EQ(total, segs.size());
}

TEST(Ordering, PathStartsWithSingletonAndClusters)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    std::vector<Segment> segs = buildSegments(s, params(2));
    std::vector<UniformSet> sets =
        orderUniformSets(groupIntoSets(segs));
    ASSERT_EQ(sets.size(), 3u);
    EXPECT_TRUE(sets.front().procs.singleton());
    // The shared {0,1} set sits between the two singletons (the
    // paper's Figure 4(b) shape).
    EXPECT_EQ(sets[1].procs.count(), 2u);
    EXPECT_TRUE(sets[2].procs.singleton());
    EXPECT_NE(sets[0].procs, sets[2].procs);
}

TEST(Ordering, SegmentsWithinSetFollowGroupGraph)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    std::vector<Segment> segs = buildSegments(s, params(2));
    std::vector<UniformSet> sets =
        orderUniformSets(groupIntoSets(segs));
    orderSegmentsWithinSets(sets, segs, s.groups);
    // Within each set, the first segment has the smallest address.
    for (const UniformSet &set : sets) {
        ASSERT_FALSE(set.segIds.empty());
        PageNum first = segs[set.segIds[0]].firstVpn;
        for (std::size_t id : set.segIds)
            EXPECT_GE(segs[id].firstVpn, first);
    }
}

// ---- Steps 4-5: coloring -------------------------------------------------------

TEST(Coloring, RoundRobinColors)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    CdpcParams prm = params(2);
    CdpcPlan plan = computeCdpcPlan(s, prm);
    ASSERT_EQ(plan.coloring.hints.size(), 32u);
    for (std::size_t i = 0; i < plan.coloring.hints.size(); i++) {
        EXPECT_EQ(plan.coloring.hints[i].color,
                  static_cast<Color>(i % prm.numColors));
    }
}

TEST(Coloring, EveryPageHintedExactlyOnce)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    CdpcPlan plan = computeCdpcPlan(s, params(4));
    std::set<PageNum> pages(plan.coloring.pageOrder.begin(),
                            plan.coloring.pageOrder.end());
    EXPECT_EQ(pages.size(), plan.coloring.pageOrder.size());
    EXPECT_EQ(pages.size(), 32u);
}

TEST(Coloring, RotationIsCyclicShiftOfSegmentPages)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    CdpcPlan plan = computeCdpcPlan(s, params(2));
    // Reconstruct each segment's emitted order and verify it is a
    // rotation of its ascending page range.
    std::size_t cursor = 0;
    for (std::size_t id : plan.coloring.segmentOrder) {
        const Segment &seg = plan.segments[id];
        std::uint64_t rot = plan.coloring.rotation[id];
        for (std::uint64_t i = 0; i < seg.numPages; i++) {
            PageNum expect =
                seg.firstVpn + (rot + i) % seg.numPages;
            EXPECT_EQ(plan.coloring.pageOrder[cursor + i], expect);
        }
        cursor += seg.numPages;
    }
}

TEST(Coloring, CyclicAssignmentSpreadsConflictingStarts)
{
    // Two arrays used together by the same CPU, each a whole number
    // of cache spans: without Step 4 their start colors coincide.
    ProgramBuilder b("spread");
    std::uint32_t x = b.array1d("x", 8 * 512 / 8); // 8 pages
    std::uint32_t y = b.array1d("y", 8 * 512 / 8);
    Phase ph;
    ph.name = "p";
    LoopNest nest;
    nest.label = "n";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {512};
    nest.instsPerIter = 200;
    nest.refs = {b.at1(x, 0), b.at1(y, 0, 1, 0, true)};
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    AccessSummaries s = analyzeProgram(p);

    CdpcParams prm = params(1, /*colors*/ 8);
    CdpcOptions with;
    CdpcOptions without;
    without.cyclicAssignment = false;
    CdpcPlan plan_on = computeCdpcPlan(s, prm, with);
    CdpcPlan plan_off = computeCdpcPlan(s, prm, without);

    ASSERT_EQ(plan_on.segments.size(), 2u);
    // Without Step 4 both 8-page segments start at color 0.
    EXPECT_EQ(plan_off.coloring.startColor[0],
              plan_off.coloring.startColor[1]);
    // With Step 4 the starts are spread apart.
    EXPECT_NE(plan_on.coloring.startColor[0],
              plan_on.coloring.startColor[1]);
}

// ---- Runtime facade -------------------------------------------------------------

TEST(Runtime, ParamsFromMachineConfig)
{
    MachineConfig m = MachineConfig::paperScaled(8);
    CdpcParams prm = cdpcParams(m);
    EXPECT_EQ(prm.numCpus, 8u);
    EXPECT_EQ(prm.pageBytes, 512u);
    EXPECT_EQ(prm.numColors, 256u);
}

TEST(Runtime, ApplyHintsInstallsAll)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    CdpcPlan plan = computeCdpcPlan(s, params(2));
    PageColoringPolicy base(8);
    CdpcHintPolicy policy(base);
    applyHints(plan, policy);
    EXPECT_EQ(policy.numHints(), 32u);
    // Faulting a hinted page returns the plan's color.
    const ColorHint &h = plan.coloring.hints[5];
    EXPECT_EQ(policy.preferredColor({h.vpn, 0, 1}), h.color);
}

/**
 * The Section 5.3 equivalence: touching pages in coloring order on a
 * bin-hopping kernel yields exactly the hinted colors, up to one
 * constant rotation of the whole color space.
 */
TEST(Runtime, TouchOrderEquivalentToHintsUpToRotation)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    MachineConfig m = MachineConfig::paperScaled(4);
    CdpcPlan plan = computeCdpcPlan(s, cdpcParams(m));

    PhysMem phys(m.physPages, m.numColors());
    BinHoppingPolicy binhop(m.numColors(), false);
    VirtualMemory vm(m, phys, binhop);
    applyByTouchOrder(plan, vm);

    ASSERT_FALSE(plan.coloring.hints.empty());
    std::uint64_t colors = m.numColors();
    const ColorHint &first = plan.coloring.hints[0];
    std::uint64_t shift =
        (vm.colorOf(first.vpn * m.pageBytes) + colors - first.color) %
        colors;
    for (const ColorHint &h : plan.coloring.hints) {
        EXPECT_EQ(vm.colorOf(h.vpn * m.pageBytes),
                  (h.color + shift) % colors)
            << "vpn " << h.vpn;
    }
}

TEST(Runtime, GreedyOrderingOffStillColorsEverything)
{
    Program p = planProgram();
    AccessSummaries s = analyzeProgram(p);
    CdpcOptions opts;
    opts.greedyOrdering = false;
    CdpcPlan plan = computeCdpcPlan(s, params(4), opts);
    EXPECT_EQ(plan.coloring.hints.size(), 32u);
}

} // namespace
} // namespace cdpc
