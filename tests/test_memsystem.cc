/**
 * @file
 * Behavioural tests for the full memory hierarchy: cache filling,
 * inclusion, MESI transitions, miss classification, the bus, and
 * the prefetch unit.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "machine/config.h"
#include "mem/memsystem.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"

namespace cdpc
{
namespace
{

class MemSystemTest : public ::testing::Test
{
  protected:
    MemSystemTest()
        : config(MachineConfig::paperScaled(4)),
          phys(config.physPages, config.numColors()),
          policy(config.numColors()), vm(config, phys, policy),
          mem(config, vm)
    {}

    AccessOutcome
    load(CpuId cpu, VAddr va, Cycles now = 0)
    {
        MemAccess a;
        a.va = va;
        a.kind = AccessKind::Load;
        return mem.access(cpu, a, now);
    }

    AccessOutcome
    store(CpuId cpu, VAddr va, std::uint32_t word_mask = 1,
          Cycles now = 0)
    {
        MemAccess a;
        a.va = va;
        a.kind = AccessKind::Store;
        a.wordMask = word_mask;
        return mem.access(cpu, a, now);
    }

    /** A virtual address with page-color c and line offset within page. */
    VAddr
    coloredVa(Color c, std::uint64_t page_round = 0,
              std::uint64_t line_in_page = 0)
    {
        std::uint64_t vpn = c + page_round * config.numColors();
        return vpn * config.pageBytes + line_in_page * config.l2.lineBytes;
    }

    MachineConfig config;
    PhysMem phys;
    PageColoringPolicy policy;
    VirtualMemory vm;
    MemorySystem mem;
};

TEST_F(MemSystemTest, FirstAccessIsColdMissWithKernelTime)
{
    AccessOutcome out = load(0, 0x0);
    EXPECT_TRUE(out.tlbMiss);
    EXPECT_TRUE(out.pageFault);
    EXPECT_EQ(out.kernel, config.tlbMissCycles + config.pageFaultCycles);
    EXPECT_TRUE(out.l2Miss);
    EXPECT_EQ(out.missKind, MissKind::Cold);
    EXPECT_GE(out.stall, out.kernel + config.memLatencyCycles);
}

TEST_F(MemSystemTest, SecondAccessHitsL1WithNoStall)
{
    load(0, 0x0);
    AccessOutcome out = load(0, 0x0);
    EXPECT_TRUE(out.l1Hit);
    EXPECT_EQ(out.stall, 0u);
}

TEST_F(MemSystemTest, SameLineDifferentWordIsL1Hit)
{
    load(0, 0x0);
    AccessOutcome out = load(0, 0x38); // same 64B line
    EXPECT_TRUE(out.l1Hit);
}

TEST_F(MemSystemTest, SamePageSecondLineAvoidsKernelCosts)
{
    load(0, 0x0);
    AccessOutcome out = load(0, 0x40);
    EXPECT_FALSE(out.tlbMiss);
    EXPECT_FALSE(out.pageFault);
    EXPECT_EQ(out.kernel, 0u);
}

TEST_F(MemSystemTest, L1EvictionLeadsToL2Hit)
{
    // Walk more lines than L1 holds but fewer than L2: revisits are
    // L1 misses served as L2 hits with the on-chip stall.
    std::uint64_t lines = config.l1d.numLines() * 2;
    for (std::uint64_t i = 0; i < lines; i++)
        load(0, i * config.l2.lineBytes);
    AccessOutcome out = load(0, 0x0);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_TRUE(out.l2Hit);
    EXPECT_EQ(out.stall, config.l2HitCycles);
}

TEST_F(MemSystemTest, CapacityMissClassification)
{
    // Stream 2x the external cache, twice: second-round misses have
    // been seen before and miss in the fully associative shadow too.
    std::uint64_t lines = config.l2.numLines() * 2;
    for (int round = 0; round < 2; round++) {
        for (std::uint64_t i = 0; i < lines; i++)
            load(0, i * config.l2.lineBytes);
    }
    const CpuMemStats &s = mem.cpuStats(0);
    EXPECT_GT(s.missCount[static_cast<int>(MissKind::Capacity)], 0u);
    EXPECT_EQ(s.missCount[static_cast<int>(MissKind::Conflict)], 0u);
}

TEST_F(MemSystemTest, ConflictMissClassification)
{
    // Three pages of the same color: their lines share one
    // direct-mapped L2 set but all fit the fully associative shadow,
    // so steady-state misses classify as conflicts.
    VAddr a = coloredVa(5, 0);
    VAddr b = coloredVa(5, 1);
    VAddr c = coloredVa(5, 2);
    for (int round = 0; round < 10; round++) {
        load(0, a);
        load(0, b);
        load(0, c);
    }
    const CpuMemStats &s = mem.cpuStats(0);
    EXPECT_GT(s.missCount[static_cast<int>(MissKind::Conflict)], 10u);
    EXPECT_EQ(s.missCount[static_cast<int>(MissKind::Capacity)], 0u);
}

TEST_F(MemSystemTest, DifferentColorsDoNotConflict)
{
    VAddr a = coloredVa(5);
    VAddr b = coloredVa(6);
    load(0, a);
    load(0, b);
    // Both L2-resident; flush L1 influence by streaming elsewhere...
    // direct probe: both lines present in L2.
    const CpuMemStats &before = mem.cpuStats(0);
    std::uint64_t misses = before.l2Misses;
    load(0, a);
    load(0, b);
    EXPECT_EQ(mem.cpuStats(0).l2Misses, misses);
}

TEST_F(MemSystemTest, UpgradeOnWriteToSharedLine)
{
    load(0, 0x0);
    load(1, 0x0); // both Shared
    AccessOutcome out = store(1, 0x0);
    EXPECT_EQ(out.missKind, MissKind::Upgrade);
    EXPECT_EQ(mem.busStats().upgradeTxns, 1u);
}

TEST_F(MemSystemTest, TrueSharingMiss)
{
    load(0, 0x0);              // cpu0 caches the line
    store(1, 0x0, /*mask*/ 1); // cpu1 writes word 0, invalidating cpu0
    MemAccess a;
    a.va = 0x0;
    a.kind = AccessKind::Load;
    a.wordMask = 1; // cpu0 re-reads the written word
    AccessOutcome out = mem.access(0, a, 0);
    EXPECT_TRUE(out.l2Miss);
    EXPECT_EQ(out.missKind, MissKind::TrueSharing);
}

TEST_F(MemSystemTest, FalseSharingMiss)
{
    load(0, 0x0);
    store(1, 0x0, /*mask*/ 1 << 0); // writes word 0
    MemAccess a;
    a.va = 0x8;
    a.kind = AccessKind::Load;
    a.wordMask = 1 << 1; // cpu0 reads a different word of the line
    AccessOutcome out = mem.access(0, a, 0);
    EXPECT_TRUE(out.l2Miss);
    EXPECT_EQ(out.missKind, MissKind::FalseSharing);
}

TEST_F(MemSystemTest, RemoteDirtyFetchIsSlower)
{
    store(0, 0x0);
    // cpu1's miss is served by cpu0's Modified copy.
    AccessOutcome out = load(1, 0x0);
    EXPECT_TRUE(out.l2Miss);
    EXPECT_GE(out.stall - out.kernel, config.remoteDirtyLatencyCycles);
}

TEST_F(MemSystemTest, WritebackOnDirtyEviction)
{
    // Dirty a line, then push it out of both L1 and L2 with
    // same-color traffic.
    store(0, coloredVa(3, 0));
    for (std::uint64_t r = 1; r <= 4; r++)
        load(0, coloredVa(3, r));
    EXPECT_GT(mem.busStats().writebackTxns, 0u);
}

TEST_F(MemSystemTest, InclusionBackInvalidatesL1)
{
    VAddr victim = coloredVa(9, 0);
    load(0, victim);
    EXPECT_TRUE(load(0, victim).l1Hit);
    // Conflict the line out of the direct-mapped L2.
    load(0, coloredVa(9, 1));
    // The L1 copy must be gone too: the next access is an L2-level
    // event, not an L1 hit.
    AccessOutcome out = load(0, victim);
    EXPECT_FALSE(out.l1Hit);
}

TEST_F(MemSystemTest, IfetchUsesSeparateL1)
{
    MemAccess ia;
    ia.va = 0x0;
    ia.kind = AccessKind::Ifetch;
    mem.access(0, ia, 0);
    // A data load of the same line misses L1D but hits L2.
    AccessOutcome out = load(0, 0x0);
    EXPECT_FALSE(out.l1Hit);
    EXPECT_TRUE(out.l2Hit);
    EXPECT_EQ(mem.cpuStats(0).ifetches, 1u);
}

// ---- Prefetch unit -------------------------------------------------------

TEST_F(MemSystemTest, PrefetchDroppedOnTlbMiss)
{
    // Page never touched: not in the TLB, prefetch is dropped.
    Cycles stall = mem.prefetch(0, 0x8000, 0);
    EXPECT_EQ(stall, 0u);
    EXPECT_EQ(mem.cpuStats(0).prefetchesDropped, 1u);
    // And it must not have faulted the page in.
    EXPECT_FALSE(vm.isMapped(0x8000));
}

TEST_F(MemSystemTest, UsefulPrefetchAvoidsMissStall)
{
    load(0, 0x0); // maps the page, fills the TLB
    VAddr next = 0x40;
    mem.prefetch(0, next, /*now*/ 100);
    // Demand long after completion: only the L2-hit stall remains.
    AccessOutcome out = load(0, next, /*now*/ 10000);
    EXPECT_TRUE(out.l2Hit);
    EXPECT_EQ(out.stall, config.l2HitCycles);
    EXPECT_EQ(mem.cpuStats(0).prefetchesUseful, 1u);
}

TEST_F(MemSystemTest, LatePrefetchPartiallyCovers)
{
    load(0, 0x0);
    VAddr next = 0x40;
    // Times comfortably after the first load's (kernel-delayed) bus
    // transaction, so the clock stays monotonic.
    mem.prefetch(0, next, /*now*/ 5000);
    // Demand 50 cycles later: waits out the remaining latency.
    AccessOutcome out = load(0, next, /*now*/ 5050);
    EXPECT_GT(out.stall, 0u);
    EXPECT_LT(out.stall, config.memLatencyCycles + config.l2HitCycles);
    EXPECT_GT(mem.cpuStats(0).prefetchLateStall, 0u);
}

TEST_F(MemSystemTest, FifthOutstandingPrefetchStalls)
{
    // Map a page region first so prefetches survive the TLB check.
    for (int i = 0; i < 8; i++)
        load(0, 0x0 + i * config.pageBytes);
    Cycles now = 100000;
    std::uint32_t issued = 0;
    Cycles stall_total = 0;
    for (std::uint32_t i = 0; i < config.maxOutstandingPrefetches + 1;
         i++) {
        VAddr va = i * config.pageBytes + 7 * config.l2.lineBytes;
        stall_total += mem.prefetch(0, va, now);
        issued++;
    }
    EXPECT_GT(stall_total, 0u);
    EXPECT_GT(mem.cpuStats(0).prefetchFullStall, 0u);
    EXPECT_EQ(mem.cpuStats(0).prefetchesIssued, issued + 0u);
}

TEST_F(MemSystemTest, PrefetchOfResidentLineIsNoOp)
{
    load(0, 0x0);
    std::uint64_t txns = mem.busStats().totalTxns();
    mem.prefetch(0, 0x0, 100);
    EXPECT_EQ(mem.busStats().totalTxns(), txns);
}

// ---- Stats & reset --------------------------------------------------------

TEST_F(MemSystemTest, TotalStatsAggregateAcrossCpus)
{
    load(0, 0x0);
    load(1, 0x10000);
    load(2, 0x20000);
    CpuMemStats total = mem.totalStats();
    EXPECT_EQ(total.loads, 3u);
    EXPECT_EQ(total.l2Misses, 3u);
}

TEST_F(MemSystemTest, ResetClearsCachesAndStats)
{
    load(0, 0x0);
    mem.reset();
    EXPECT_EQ(mem.totalStats().loads, 0u);
    // Page stays mapped (reset is caches only), but the line must
    // miss again.
    AccessOutcome out = load(0, 0x0);
    EXPECT_TRUE(out.l2Miss);
    EXPECT_FALSE(out.pageFault);
}

TEST_F(MemSystemTest, StallAccountingConserved)
{
    // missStall + l2HitStall + prefetch stalls == memStall().
    for (int i = 0; i < 100; i++)
        load(0, i * 64);
    const CpuMemStats &s = mem.cpuStats(0);
    Cycles sum = s.l2HitStall + s.prefetchLateStall +
                 s.prefetchFullStall;
    for (Cycles c : s.missStall)
        sum += c;
    EXPECT_EQ(sum, s.memStall());
}

} // namespace
} // namespace cdpc
