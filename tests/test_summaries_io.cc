/**
 * @file
 * Round-trip tests for the summaries serialization, including the
 * staging property: a plan computed from reloaded summaries is
 * identical to one computed from the originals.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "cdpc/runtime.h"
#include "common/logging.h"
#include "compiler/compiler.h"
#include "compiler/summaries_io.h"
#include "workloads/workload.h"

namespace cdpc
{
namespace
{

AccessSummaries
summariesFor(const char *name)
{
    Program p = buildWorkload(name);
    return compileProgram(p).summaries;
}

TEST(SummariesIo, RoundTripPreservesEverything)
{
    AccessSummaries s = summariesFor("102.swim");
    std::stringstream buf;
    saveSummaries(s, buf);
    AccessSummaries t = loadSummaries(buf);

    EXPECT_EQ(t.programName, s.programName);
    ASSERT_EQ(t.arrays.size(), s.arrays.size());
    for (std::size_t i = 0; i < s.arrays.size(); i++) {
        EXPECT_EQ(t.arrays[i].arrayId, s.arrays[i].arrayId);
        EXPECT_EQ(t.arrays[i].start, s.arrays[i].start);
        EXPECT_EQ(t.arrays[i].sizeBytes, s.arrays[i].sizeBytes);
        EXPECT_EQ(t.arrays[i].analyzable, s.arrays[i].analyzable);
    }
    ASSERT_EQ(t.partitions.size(), s.partitions.size());
    for (std::size_t i = 0; i < s.partitions.size(); i++) {
        EXPECT_EQ(t.partitions[i].arrayId, s.partitions[i].arrayId);
        EXPECT_EQ(t.partitions[i].unitBytes,
                  s.partitions[i].unitBytes);
        EXPECT_EQ(t.partitions[i].numUnits, s.partitions[i].numUnits);
        EXPECT_EQ(t.partitions[i].policy, s.partitions[i].policy);
        EXPECT_EQ(t.partitions[i].dir, s.partitions[i].dir);
    }
    ASSERT_EQ(t.comms.size(), s.comms.size());
    for (std::size_t i = 0; i < s.comms.size(); i++) {
        EXPECT_EQ(t.comms[i].arrayId, s.comms[i].arrayId);
        EXPECT_EQ(t.comms[i].type, s.comms[i].type);
        EXPECT_EQ(t.comms[i].boundaryUnits, s.comms[i].boundaryUnits);
        EXPECT_EQ(t.comms[i].dir, s.comms[i].dir);
    }
    EXPECT_EQ(t.groups.size(), s.groups.size());
    EXPECT_EQ(t.unanalyzable, s.unanalyzable);
}

TEST(SummariesIo, StagedPlanIdenticalToDirectPlan)
{
    // The paper's deployment: compile once, plan at start-up on
    // whatever machine you find. A plan from reloaded summaries must
    // be bit-identical.
    for (const char *name : {"101.tomcatv", "103.su2cor"}) {
        AccessSummaries s = summariesFor(name);
        std::stringstream buf;
        saveSummaries(s, buf);
        AccessSummaries t = loadSummaries(buf);

        CdpcParams params = cdpcParams(MachineConfig::paperScaled(8));
        CdpcPlan direct = computeCdpcPlan(s, params);
        CdpcPlan staged = computeCdpcPlan(t, params);
        ASSERT_EQ(staged.coloring.hints.size(),
                  direct.coloring.hints.size())
            << name;
        for (std::size_t i = 0; i < direct.coloring.hints.size(); i++) {
            EXPECT_EQ(staged.coloring.hints[i], direct.coloring.hints[i])
                << name << " hint " << i;
        }
    }
}

TEST(SummariesIo, RejectsGarbage)
{
    std::stringstream buf;
    buf << "definitely not a summaries stream";
    EXPECT_THROW(loadSummaries(buf), FatalError);
}

TEST(SummariesIo, RejectsTruncated)
{
    AccessSummaries s = summariesFor("104.hydro2d");
    std::stringstream buf;
    saveSummaries(s, buf);
    std::string whole = buf.str();
    std::stringstream cut(whole.substr(0, whole.size() / 2));
    EXPECT_THROW(loadSummaries(cut), FatalError);
}

TEST(SummariesIo, MissingFileRejected)
{
    EXPECT_THROW(loadSummaries(std::string("/nonexistent/x.sum")),
                 FatalError);
}

} // namespace
} // namespace cdpc
