/**
 * @file
 * Tests for the memory-pressure resilience layer: exact/any-color
 * allocation primitives, reclaimable competitor pages, the fallback
 * policies, the pressure fragmenter's determinism, and the VM-layer
 * degradation accounting that feeds ExperimentStats.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "machine/config.h"
#include "vm/fallback.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/pressure.h"
#include "vm/virtual_memory.h"

namespace cdpc
{
namespace
{

// ---- PhysMem primitives ------------------------------------------------

TEST(PhysMemPressure, TryAllocExactDrainsOneColorOnly)
{
    PhysMem pm(32, 16); // two pages per color
    EXPECT_EQ(pm.freePagesOfColor(4), 2u);
    auto a = pm.tryAllocExact(4);
    auto b = pm.tryAllocExact(4);
    ASSERT_TRUE(a && b);
    EXPECT_EQ(pm.colorOf(*a), 4u);
    EXPECT_EQ(pm.colorOf(*b), 4u);
    EXPECT_EQ(pm.freePagesOfColor(4), 0u);
    // Exhausted color: exact allocation reports it instead of
    // silently falling to a neighbor.
    EXPECT_FALSE(pm.tryAllocExact(4).has_value());
    // Every other color is untouched.
    for (Color c = 0; c < 16; c++)
        if (c != 4)
            EXPECT_EQ(pm.freePagesOfColor(c), 2u);
}

TEST(PhysMemPressure, PerColorDepletionOrderIsAscending)
{
    PhysMem pm(48, 16); // three pages per color
    // Allocation order within one color is ascending ppn: c, c+16,
    // c+32 for color c.
    for (Color c : {0u, 7u, 15u}) {
        EXPECT_EQ(*pm.tryAllocExact(c), c);
        EXPECT_EQ(*pm.tryAllocExact(c), c + 16u);
        EXPECT_EQ(*pm.tryAllocExact(c), c + 32u);
        EXPECT_FALSE(pm.tryAllocExact(c).has_value());
    }
}

TEST(PhysMemPressure, FreePagesOfColorTracksAllocAndFree)
{
    PhysMem pm(32, 8); // four pages per color
    std::uint64_t before = pm.freePages();
    auto p = pm.tryAllocExact(3);
    ASSERT_TRUE(p);
    EXPECT_EQ(pm.freePagesOfColor(3), 3u);
    EXPECT_EQ(pm.freePages(), before - 1);
    pm.free(*p);
    EXPECT_EQ(pm.freePagesOfColor(3), 4u);
    EXPECT_EQ(pm.freePages(), before);
}

TEST(PhysMemPressure, TrueDoubleFreeIsDetected)
{
    PhysMem pm(32, 8);
    PageNum p = pm.alloc(2);
    pm.free(p);
    // The old implementation only counted frees; freeing the same
    // page twice while other pages were still allocated slipped
    // through. Now the page's own state is checked.
    pm.alloc(5); // keep the allocator non-empty
    EXPECT_THROW(pm.free(p), PanicError);
    // Never-allocated pages are also double frees.
    PhysMem fresh(16, 4);
    EXPECT_THROW(fresh.free(0), PanicError);
}

TEST(PhysMemPressure, ReclaimTransfersCompetitorPages)
{
    PhysMem pm(16, 4);
    auto held = pm.tryAllocExact(2);
    ASSERT_TRUE(held);
    pm.markReclaimable(*held);
    EXPECT_EQ(pm.reclaimablePages(), 1u);

    // Preferred color matches the reclaimable page's color.
    auto got = pm.reclaim(2);
    ASSERT_TRUE(got);
    EXPECT_EQ(*got, *held);
    EXPECT_EQ(pm.reclaimablePages(), 0u);
    EXPECT_EQ(pm.stats().reclaimed, 1u);
    // The pool is empty now.
    EXPECT_FALSE(pm.reclaim(2).has_value());
    // A reclaimed page is owned (not free): freeing it once is fine,
    // twice is a double free.
    pm.free(*got);
    EXPECT_THROW(pm.free(*got), PanicError);
}

// ---- Fallback policies -------------------------------------------------

TEST(Fallback, AnyColorScansForwardThenReclaims)
{
    PhysMem pm(16, 4); // four pages per color
    // Drain colors 1 and 2 completely.
    for (int i = 0; i < 4; i++) {
        pm.tryAllocExact(1);
        pm.tryAllocExact(2);
    }
    auto policy = makeFallbackPolicy(FallbackKind::AnyColor);
    // Preferred 1 is empty; forward scan reaches 3 first (2 is also
    // empty).
    auto p = policy->allocFallback(pm, nullptr, 1);
    ASSERT_TRUE(p);
    EXPECT_EQ(pm.colorOf(*p), 3u);

    // Exhaust everything, leave one reclaimable competitor page.
    while (pm.freePages() > 1)
        pm.tryAllocAny();
    auto last = pm.tryAllocAny();
    ASSERT_TRUE(last);
    pm.markReclaimable(*last);
    auto reclaimed = policy->allocFallback(pm, nullptr, 0);
    ASSERT_TRUE(reclaimed);
    EXPECT_EQ(*reclaimed, *last);
    // Now truly nothing is left.
    EXPECT_FALSE(policy->allocFallback(pm, nullptr, 0).has_value());
}

TEST(Fallback, NearestColorMinimizesRingDistance)
{
    PhysMem pm(64, 16);
    // Empty colors 5..8 except 7; nearest free to 6 should be 7
    // (distance 1), not 9 (distance 3) or 4 (distance 2)... drain
    // 5, 6, 8 fully and keep 7 free.
    for (Color c : {5u, 6u, 8u}) {
        while (pm.freePagesOfColor(c) > 0)
            pm.tryAllocExact(c);
    }
    auto policy = makeFallbackPolicy(FallbackKind::NearestColor);
    auto p = policy->allocFallback(pm, nullptr, 6);
    ASSERT_TRUE(p);
    EXPECT_EQ(pm.colorOf(*p), 7u);

    // With 7 also drained, distance 2 ties break upward: 8 is empty,
    // so 4 (downward distance 2) wins.
    while (pm.freePagesOfColor(7) > 0)
        pm.tryAllocExact(7);
    auto q = policy->allocFallback(pm, nullptr, 6);
    ASSERT_TRUE(q);
    EXPECT_EQ(pm.colorOf(*q), 4u);
}

TEST(Fallback, StealRecolorsAVictimAndReturnsPreferredColor)
{
    MachineConfig m = MachineConfig::paperScaled(1);
    PhysMem pm(m.physPages, m.numColors());
    PageColoringPolicy coloring(m.numColors());
    auto policy = makeFallbackPolicy(FallbackKind::Steal);
    VirtualMemory vm(m, pm, coloring, policy.get());

    // Map one page, then drain its color completely.
    vm.touch(0, 0); // vpn 0 -> preferred color 0
    Color victim_color = vm.colorOf(0);
    while (pm.freePagesOfColor(victim_color) > 0)
        pm.tryAllocExact(victim_color);

    std::uint64_t purges = 0;
    PageNum purged_vpn = 12345;
    vm.setRemapObserver([&](PageNum vpn) {
        purges++;
        purged_vpn = vpn;
    });

    // A fault preferring the drained color steals vpn 0's page: the
    // fault still gets the preferred color and the victim moved.
    auto p = vm.stealMappedPage(victim_color);
    ASSERT_TRUE(p);
    EXPECT_EQ(pm.colorOf(*p), victim_color);
    EXPECT_EQ(purges, 1u);
    EXPECT_EQ(purged_vpn, 0u);
    EXPECT_TRUE(vm.isMapped(0));
    EXPECT_NE(vm.colorOf(0), victim_color);
}

TEST(Fallback, NamesRoundTrip)
{
    for (FallbackKind k :
         {FallbackKind::AnyColor, FallbackKind::NearestColor,
          FallbackKind::Steal}) {
        EXPECT_EQ(parseFallback(fallbackName(k)), k);
        EXPECT_STREQ(makeFallbackPolicy(k)->name(), fallbackName(k));
    }
    EXPECT_THROW(parseFallback("bogus"), FatalError);
}

// ---- Exhaustion with fallback policies ---------------------------------

TEST(Fallback, ExhaustionDegradesToDenialNotCrash)
{
    MachineConfig m = MachineConfig::paperScaled(1);
    for (FallbackKind kind :
         {FallbackKind::AnyColor, FallbackKind::NearestColor,
          FallbackKind::Steal}) {
        PhysMem pm(m.numColors() * 2, m.numColors());
        PageColoringPolicy coloring(m.numColors());
        auto policy = makeFallbackPolicy(kind);
        VirtualMemory vm(m, pm, coloring, policy.get());
        // Faulting more pages than exist must end in FatalError
        // (denial), never a PanicError or a crash.
        std::uint64_t mapped = 0;
        try {
            for (PageNum vpn = 0; vpn < pm.totalPages() + 4; vpn++) {
                vm.touch(vpn * m.pageBytes, 0);
                mapped++;
            }
            FAIL() << "over-allocation should have been fatal";
        } catch (const FatalError &) {
            EXPECT_EQ(mapped, pm.totalPages());
            EXPECT_EQ(vm.stats().hintDenied, 1u);
        }
    }
}

// ---- Pressure generator ------------------------------------------------

TEST(Pressure, ClaimsRequestedFractionReclaimably)
{
    PhysMem pm(1024, 16);
    MemPressureConfig cfg;
    cfg.occupancy = 0.75;
    cfg.pattern = PressurePattern::Uniform;
    cfg.seed = 42;
    PressureStats stats = applyMemoryPressure(pm, cfg);
    EXPECT_EQ(stats.claimedPages, 768u);
    EXPECT_EQ(pm.reclaimablePages(), 768u);
    EXPECT_EQ(pm.freePages(), 1024u - 768u);
    std::uint64_t sum = 0;
    for (std::uint64_t n : stats.perColor)
        sum += n;
    EXPECT_EQ(sum, stats.claimedPages);
}

TEST(Pressure, LeavesOneFreePagePerColorHeadroom)
{
    PhysMem pm(64, 16);
    MemPressureConfig cfg;
    cfg.occupancy = 0.99; // would claim 63 of 64; clamped to 48
    cfg.pattern = PressurePattern::LowHalf;
    PressureStats stats = applyMemoryPressure(pm, cfg);
    EXPECT_EQ(stats.claimedPages, 48u);
    EXPECT_EQ(pm.freePages(), 16u);
}

TEST(Pressure, FragmenterIsDeterministicPerSeed)
{
    auto fingerprint = [](std::uint64_t seed) {
        PhysMem pm(2048, 32);
        MemPressureConfig cfg;
        cfg.occupancy = 0.9;
        cfg.pattern = PressurePattern::Fragmented;
        cfg.seed = seed;
        return applyMemoryPressure(pm, cfg).perColor;
    };
    // Same seed: bit-identical claim fingerprint.
    EXPECT_EQ(fingerprint(7), fingerprint(7));
    EXPECT_EQ(fingerprint(99), fingerprint(99));
    // Different seeds: different fragmentation.
    EXPECT_NE(fingerprint(7), fingerprint(8));
}

TEST(Pressure, FragmentedDrainsSomeColorsNearlyDry)
{
    PhysMem pm(2048, 32); // 64 pages per color
    MemPressureConfig cfg;
    cfg.occupancy = 0.5;
    cfg.pattern = PressurePattern::Fragmented;
    cfg.seed = 3;
    applyMemoryPressure(pm, cfg);
    // Fragmentation means inequality: some colors nearly empty,
    // others nearly full.
    std::uint64_t min_free = ~0ull, max_free = 0;
    for (Color c = 0; c < 32; c++) {
        min_free = std::min(min_free, pm.freePagesOfColor(c));
        max_free = std::max(max_free, pm.freePagesOfColor(c));
    }
    EXPECT_LE(min_free, 1u);
    EXPECT_GE(max_free, 32u);
}

TEST(Pressure, RejectsOutOfRangeOccupancy)
{
    PhysMem pm(64, 16);
    MemPressureConfig cfg;
    cfg.occupancy = 1.0;
    EXPECT_THROW(applyMemoryPressure(pm, cfg), FatalError);
    cfg.occupancy = -0.1;
    EXPECT_THROW(applyMemoryPressure(pm, cfg), FatalError);
}

TEST(Pressure, PatternNamesRoundTrip)
{
    for (PressurePattern p :
         {PressurePattern::LowHalf, PressurePattern::Uniform,
          PressurePattern::Fragmented})
        EXPECT_EQ(parsePressurePattern(pressurePatternName(p)), p);
    EXPECT_THROW(parsePressurePattern("bogus"), FatalError);
}

// ---- Degradation accounting --------------------------------------------

TEST(Degradation, HonoredFallbackReclaimCounted)
{
    MachineConfig m = MachineConfig::paperScaled(1);
    PhysMem pm(m.numColors() * 2, m.numColors());
    PageColoringPolicy coloring(m.numColors());
    auto policy = makeFallbackPolicy(FallbackKind::AnyColor);
    VirtualMemory vm(m, pm, coloring, policy.get());

    // Fault every page twice over: the first totalPages faults are
    // honored or fall back; after that competitor pages would be
    // reclaimed (none here, so we stop at exhaustion).
    for (PageNum vpn = 0; vpn < pm.totalPages(); vpn++)
        vm.touch(vpn * m.pageBytes, 0);
    const VmStats &s = vm.stats();
    EXPECT_EQ(s.pageFaults, pm.totalPages());
    EXPECT_EQ(s.hintHonored + s.hintFallback, pm.totalPages());
    // Page coloring spreads vpns over colors evenly; with exactly
    // 2 pages per color and 2 faults per color, every hint fits.
    EXPECT_EQ(s.hintFallback, 0u);

    // Now a pressured VM where half the memory is competitor-owned.
    PhysMem pm2(m.numColors() * 2, m.numColors());
    MemPressureConfig pcfg;
    pcfg.occupancy = 0.45;
    pcfg.pattern = PressurePattern::Uniform;
    applyMemoryPressure(pm2, pcfg);
    VirtualMemory vm2(m, pm2, coloring, policy.get());
    for (PageNum vpn = 0; vpn < pm2.totalPages(); vpn++)
        vm2.touch(vpn * m.pageBytes, 0);
    const VmStats &s2 = vm2.stats();
    EXPECT_EQ(s2.pageFaults, pm2.totalPages());
    EXPECT_EQ(s2.hintHonored + s2.hintFallback + s2.hintDenied,
              pm2.totalPages());
    EXPECT_EQ(s2.hintDenied, 0u); // reclaim kept every fault alive
    EXPECT_GT(s2.reclaimedPages, 0u);
}

} // namespace
} // namespace cdpc
