/**
 * @file
 * Tests for IR execution: RunGenerator and RunCursor, including the
 * conservation properties that line coalescing must preserve.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "ir/exec.h"
#include "ir/layout.h"
#include "workloads/builder.h"

namespace cdpc
{
namespace
{

/** A 2-array program with one 2-D parallel stencil nest. */
Program
stencilProgram(std::uint64_t rows = 8, std::uint64_t cols = 16)
{
    ProgramBuilder b("exec-test");
    std::uint32_t a = b.array2d("a", rows, cols);
    std::uint32_t o = b.array2d("o", rows, cols);
    Phase ph;
    ph.name = "p";
    LoopNest nest;
    nest.label = "stencil";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {rows, cols};
    nest.instsPerIter = 10;
    nest.refs = {b.at2(a, 0, 1, 0, 0), b.at2(o, 0, 1, 0, 0, true)};
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    return p;
}

TEST(RunGenerator, RunCountEqualsOuterItersTimesRefs)
{
    Program p = stencilProgram(8, 16);
    RunGenerator gen(p, p.steady[0].nests[0], 0, 1);
    cdpc::Run run;
    int count = 0;
    while (gen.next(run))
        count++;
    EXPECT_EQ(count, 8 * 2); // 8 rows x 2 refs
}

TEST(RunGenerator, RunShapeMatchesNest)
{
    Program p = stencilProgram(8, 16);
    RunGenerator gen(p, p.steady[0].nests[0], 0, 1);
    cdpc::Run run;
    ASSERT_TRUE(gen.next(run));
    EXPECT_EQ(run.count, 16u);           // full innermost extent
    EXPECT_EQ(run.strideBytes, 8);       // unit stride doubles
    EXPECT_EQ(run.start, p.arrays[0].base);
    EXPECT_TRUE(gen.next(run));
    EXPECT_TRUE(run.isWrite);            // second ref writes o
    EXPECT_EQ(run.start, p.arrays[1].base);
}

TEST(RunGenerator, ParallelSliceRestrictsRows)
{
    Program p = stencilProgram(8, 16);
    // CPU 1 of 4 gets rows [2, 4).
    RunGenerator gen(p, p.steady[0].nests[0], 1, 4);
    cdpc::Run run;
    ASSERT_TRUE(gen.next(run));
    EXPECT_EQ(run.start, p.arrays[0].base + 2 * 16 * 8);
    int count = 1;
    while (gen.next(run))
        count++;
    EXPECT_EQ(count, 2 * 2); // 2 rows x 2 refs
}

TEST(RunGenerator, IdleCpuProducesNothing)
{
    Program p = stencilProgram(2, 16);
    RunGenerator gen(p, p.steady[0].nests[0], 3, 4); // extent 2 < cpu 3
    cdpc::Run run;
    EXPECT_FALSE(gen.next(run));
}

TEST(RunGenerator, ComputeOnlyNestYieldsInstructionRuns)
{
    Program p = stencilProgram();
    LoopNest &nest = p.steady[0].nests[0];
    nest.refs.clear();
    RunGenerator gen(p, nest, 0, 1);
    cdpc::Run run;
    Insts total = 0;
    int runs = 0;
    while (gen.next(run)) {
        EXPECT_EQ(run.ref, nullptr);
        total += run.insts;
        runs++;
    }
    EXPECT_EQ(runs, 8);
    EXPECT_EQ(total, 8u * 16u * 10u);
}

// ---- RunCursor -------------------------------------------------------------

struct Trace
{
    std::uint64_t elems = 0;
    Insts insts = 0;
    std::set<std::uint64_t> lines;
    std::map<std::uint64_t, std::uint32_t> wordMaskByLine;
};

Trace
drain(const Program &p, const LoopNest &nest, CpuId cpu,
      std::uint32_t ncpus, std::uint32_t line_bytes = 64)
{
    RunCursor cur(p, nest, cpu, ncpus, line_bytes);
    LineAccess la;
    Trace t;
    while (cur.next(la)) {
        t.elems += la.elems;
        t.insts += la.insts;
        if (la.elems) {
            t.lines.insert(la.va / line_bytes);
            t.wordMaskByLine[la.va / line_bytes] |= la.wordMask;
        }
    }
    return t;
}

TEST(RunCursor, ElementConservation)
{
    Program p = stencilProgram(8, 16);
    Trace t = drain(p, p.steady[0].nests[0], 0, 1);
    EXPECT_EQ(t.elems, 8u * 16u * 2u); // iters x refs
}

TEST(RunCursor, InstructionConservation)
{
    Program p = stencilProgram(8, 16);
    Trace t = drain(p, p.steady[0].nests[0], 0, 1);
    EXPECT_EQ(t.insts, 8u * 16u * 10u);
}

TEST(RunCursor, UnitStrideCoalescesToLineCount)
{
    Program p = stencilProgram(8, 16);
    Trace t = drain(p, p.steady[0].nests[0], 0, 1);
    // 8 rows x 16 cols x 8B = 1024B per array = 16 lines, 2 arrays.
    EXPECT_EQ(t.lines.size(), 32u);
}

TEST(RunCursor, FullLineWordMask)
{
    Program p = stencilProgram(8, 16);
    Trace t = drain(p, p.steady[0].nests[0], 0, 1);
    for (const auto &[line, mask] : t.wordMaskByLine)
        EXPECT_EQ(mask, 0xffu) << "line " << line; // 8 words touched
}

TEST(RunCursor, LargeStrideOneElementPerLine)
{
    Program p = stencilProgram(8, 16);
    LoopNest &nest = p.steady[0].nests[0];
    // Column walk: stride = 16 elems = 128B > 64B line.
    nest.bounds = {16, 8};
    nest.refs = {nest.refs[0]};
    nest.refs[0].terms = {{0, 1}, {1, 16}};
    RunCursor cur(p, nest, 0, 1, 64);
    LineAccess la;
    while (cur.next(la)) {
        if (la.elems)
            EXPECT_EQ(la.elems, 1u);
    }
}

TEST(RunCursor, BackwardRunsFlagged)
{
    Program p = stencilProgram(4, 8);
    LoopNest &nest = p.steady[0].nests[0];
    nest.refs = {nest.refs[0]};
    nest.refs[0].terms = {{0, 8}, {1, -1}};
    nest.refs[0].constElems = 7; // start at row end, walk down
    RunCursor cur(p, nest, 0, 1, 64);
    LineAccess la;
    ASSERT_TRUE(cur.next(la));
    EXPECT_TRUE(la.backward);
}

TEST(RunCursor, WrappedRefStaysInsideArray)
{
    ProgramBuilder b("wrap");
    std::uint32_t a = b.array1d("a", 100);
    Phase ph;
    ph.name = "p";
    LoopNest nest;
    nest.label = "gather";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {1, 400};
    nest.instsPerIter = 1;
    nest.refs = {b.gather1(a, 1, 37)};
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    LayoutOptions lo;
    assignAddresses(p, lo);

    RunCursor cur(p, p.steady[0].nests[0], 0, 1, 64);
    LineAccess la;
    std::uint64_t elems = 0;
    while (cur.next(la)) {
        if (!la.elems)
            continue;
        EXPECT_GE(la.va, p.arrays[0].base);
        EXPECT_LT(la.va, p.arrays[0].endAddr());
        elems += la.elems;
    }
    EXPECT_EQ(elems, 400u);
}

TEST(RunCursor, ZeroStrideSingleAccess)
{
    Program p = stencilProgram(1, 50);
    LoopNest &nest = p.steady[0].nests[0];
    nest.refs = {nest.refs[0]};
    nest.refs[0].terms.clear(); // loop-invariant scalar-like ref
    RunCursor cur(p, nest, 0, 1, 64);
    LineAccess la;
    ASSERT_TRUE(cur.next(la));
    EXPECT_EQ(la.elems, 50u);
    EXPECT_FALSE(cur.next(la));
}

/** Property: conservation holds across CPU counts and shapes. */
class CursorConservation
    : public ::testing::TestWithParam<std::tuple<std::uint32_t,
                                                 std::uint64_t,
                                                 std::uint64_t>>
{};

TEST_P(CursorConservation, AcrossCpus)
{
    auto [ncpus, rows, cols] = GetParam();
    Program p = stencilProgram(rows, cols);
    std::uint64_t elems = 0;
    Insts insts = 0;
    for (CpuId c = 0; c < ncpus; c++) {
        Trace t = drain(p, p.steady[0].nests[0], c, ncpus);
        elems += t.elems;
        insts += t.insts;
    }
    EXPECT_EQ(elems, rows * cols * 2);
    EXPECT_EQ(insts, rows * cols * 10);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CursorConservation,
    ::testing::Combine(::testing::Values(1u, 3u, 8u, 16u),
                       ::testing::Values(5u, 16u, 33u),
                       ::testing::Values(7u, 64u)));

} // namespace
} // namespace cdpc
