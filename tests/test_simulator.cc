/**
 * @file
 * Tests for the multiprocessor simulator: timing attribution,
 * barriers, sequential/suppressed semantics, the weighted-phase
 * methodology, tracing and determinism.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "ir/layout.h"
#include "machine/simulator.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"
#include "workloads/builder.h"

namespace cdpc
{
namespace
{

Program
simProgram(std::uint64_t rows = 16, std::uint64_t cols = 64,
           NestKind kind = NestKind::Parallel,
           std::uint64_t occurrences = 1)
{
    ProgramBuilder b("sim-test");
    std::uint32_t a = b.array2d("a", rows, cols);
    b.initNest(interleavedInit2d(b, {a}, rows, cols));
    Phase ph;
    ph.name = "p";
    ph.occurrences = occurrences;
    LoopNest nest;
    nest.label = "sweep";
    nest.kind = kind;
    nest.parallelDim = 0;
    nest.bounds = {rows, cols};
    nest.instsPerIter = 10;
    nest.refs = {b.at2(a, 0, 1, 0, 0, true)};
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    return p;
}

struct Rig
{
    explicit Rig(std::uint32_t ncpus)
        : config(MachineConfig::paperScaled(ncpus)),
          phys(config.physPages, config.numColors()),
          policy(config.numColors()), vm(config, phys, policy),
          mem(config, vm), sim(config, mem)
    {}

    MachineConfig config;
    PhysMem phys;
    PageColoringPolicy policy;
    VirtualMemory vm;
    MemorySystem mem;
    MpSimulator sim;
};

TEST(Simulator, InstructionConservationAcrossCpuCounts)
{
    // Total instructions = iters * (insts + refs) regardless of CPUs.
    std::uint64_t expected = 16 * 64 * (10 + 1);
    for (std::uint32_t ncpus : {1u, 2u, 4u, 8u}) {
        Rig rig(ncpus);
        Program p = simProgram();
        SimOptions opts;
        opts.warmupRounds = 0;
        WeightedTotals t = rig.sim.run(p, opts);
        EXPECT_DOUBLE_EQ(t.insts, static_cast<double>(expected))
            << ncpus << " cpus";
    }
}

TEST(Simulator, ClocksAlignedAfterBarrier)
{
    Rig rig(4);
    Program p = simProgram();
    rig.sim.run(p, {});
    Cycles c0 = rig.sim.cpuClock(0);
    for (CpuId c = 1; c < 4; c++)
        EXPECT_EQ(rig.sim.cpuClock(c), c0);
}

TEST(Simulator, SequentialNestChargesSlaveIdleTime)
{
    Rig rig(4);
    Program p = simProgram(16, 64, NestKind::Sequential);
    SimOptions opts;
    opts.warmupRounds = 0;
    WeightedTotals t = rig.sim.run(p, opts);
    EXPECT_GT(t.sequential, 0.0);
    EXPECT_DOUBLE_EQ(t.suppressed, 0.0);
    // The three slaves idle while the master works: the idle time is
    // about 3x the master's busy+stall time.
    EXPECT_NEAR(t.sequential, 3.0 * (t.busy + t.memStall + t.kernel),
                t.sequential * 0.05);
}

TEST(Simulator, SuppressedNestChargedSeparately)
{
    Rig rig(2);
    Program p = simProgram(16, 64, NestKind::Suppressed);
    SimOptions opts;
    opts.warmupRounds = 0;
    WeightedTotals t = rig.sim.run(p, opts);
    EXPECT_GT(t.suppressed, 0.0);
    EXPECT_DOUBLE_EQ(t.sequential, 0.0);
}

TEST(Simulator, ParallelNestPaysForkAndBarrier)
{
    Rig rig(4);
    Program p = simProgram();
    SimOptions opts;
    opts.warmupRounds = 0;
    opts.runInit = false;
    WeightedTotals t = rig.sim.run(p, opts);
    // One parallel nest: fork + barrier on each of 4 CPUs.
    double expected =
        4.0 * (rig.config.forkCycles + rig.config.barrierCycles);
    EXPECT_DOUBLE_EQ(t.sync, expected);
    EXPECT_DOUBLE_EQ(t.barriers, 1.0);
}

TEST(Simulator, ImbalanceFromUnevenIterations)
{
    // 5 iterations over 4 CPUs: one CPU does double work.
    Rig rig(4);
    Program p = simProgram(5, 64);
    SimOptions opts;
    opts.warmupRounds = 0;
    WeightedTotals t = rig.sim.run(p, opts);
    EXPECT_GT(t.imbalance, 0.0);
}

TEST(Simulator, OccurrenceWeightingScalesLinearly)
{
    Rig rig1(2), rig2(2);
    Program p1 = simProgram(16, 64, NestKind::Parallel, 1);
    Program p10 = simProgram(16, 64, NestKind::Parallel, 10);
    SimOptions opts;
    WeightedTotals t1 = rig1.sim.run(p1, opts);
    WeightedTotals t10 = rig2.sim.run(p10, opts);
    EXPECT_NEAR(t10.insts, 10.0 * t1.insts, 1e-6);
    // Warm caches make later rounds cheaper, but the weighted stall
    // must scale with occurrences to within the warmup difference.
    EXPECT_GT(t10.combinedTime(), 5.0 * t1.combinedTime());
}

TEST(Simulator, MeasureRoundsAverage)
{
    Rig a(2), b(2);
    Program p = simProgram(16, 64, NestKind::Parallel, 6);
    SimOptions one;
    one.measureRounds = 1;
    SimOptions three;
    three.measureRounds = 3;
    WeightedTotals t1 = a.sim.run(p, one);
    WeightedTotals t3 = b.sim.run(p, three);
    // Same weighted instruction total either way.
    EXPECT_NEAR(t1.insts, t3.insts, 1e-6);
}

TEST(Simulator, TraceCollectsSteadyPagesOnly)
{
    Rig rig(2);
    Program p = simProgram();
    PageTraceCollector trace(2);
    SimOptions opts;
    opts.trace = &trace;
    rig.sim.run(p, opts);
    // Both CPUs touched their slice: 16 rows x 512B = 16 pages total.
    std::vector<PageNum> pages = trace.allPages();
    EXPECT_EQ(pages.size(), 16u);
    EXPECT_GE(trace.pagesOf(0).size(), 8u);
    EXPECT_GE(trace.pagesOf(1).size(), 8u);
}

TEST(Simulator, DeterministicAcrossRuns)
{
    auto run_once = [] {
        Rig rig(4);
        Program p = simProgram(32, 64);
        return rig.sim.run(p, {});
    };
    WeightedTotals a = run_once();
    WeightedTotals b = run_once();
    EXPECT_DOUBLE_EQ(a.combinedTime(), b.combinedTime());
    EXPECT_DOUBLE_EQ(a.memStall, b.memStall);
    EXPECT_DOUBLE_EQ(a.wall, b.wall);
}

TEST(Simulator, IfetchModelGeneratesInstructionFetches)
{
    Rig rig(1);
    Program p = simProgram();
    p.modelIfetch = true;
    p.textBytes = 16 * 1024;
    SimOptions opts;
    opts.warmupRounds = 0;
    rig.sim.run(p, opts);
    EXPECT_GT(rig.mem.totalStats().ifetches, 0u);
}

TEST(Simulator, ResetExecState)
{
    Rig rig(2);
    Program p = simProgram();
    rig.sim.run(p, {});
    rig.sim.resetExecState();
    EXPECT_EQ(rig.sim.cpuClock(0), 0u);
    RunTotals t = rig.sim.snapshot();
    EXPECT_EQ(t.cpus[0].insts, 0u);
    EXPECT_EQ(t.barriers, 0u);
}

TEST(Simulator, ZeroMeasureRoundsRejected)
{
    Rig rig(1);
    Program p = simProgram();
    SimOptions opts;
    opts.measureRounds = 0;
    EXPECT_THROW(rig.sim.run(p, opts), FatalError);
}

TEST(Simulator, CombinedTimeEqualsCpuTimeSum)
{
    Rig rig(4);
    Program p = simProgram(32, 64);
    SimOptions opts;
    opts.warmupRounds = 0;
    opts.runInit = false;
    WeightedTotals t = rig.sim.run(p, opts);
    // With no init and no warmup, the weighted combined time equals
    // the sum of the CPUs' clocks.
    double clock_sum = 0.0;
    for (CpuId c = 0; c < 4; c++)
        clock_sum += static_cast<double>(rig.sim.cpuClock(c));
    EXPECT_NEAR(t.combinedTime(), clock_sum, clock_sum * 1e-12);
}

TEST(Simulator, TimelineRecordsEveryNest)
{
    Rig rig(4);
    ProgramBuilder b("timeline");
    std::uint32_t a = b.array2d("a", 16, 64);
    Phase ph;
    ph.name = "phase-x";
    for (NestKind kind : {NestKind::Sequential, NestKind::Parallel,
                          NestKind::Suppressed}) {
        LoopNest nest;
        nest.label = kind == NestKind::Parallel ? "par" : "other";
        nest.kind = kind;
        nest.parallelDim = 0;
        nest.bounds = {16, 64};
        nest.instsPerIter = 10;
        nest.refs = {b.at2(a, 0, 1, 0, 0, true)};
        ph.nests.push_back(nest);
    }
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});

    std::vector<NestTimelineEntry> timeline;
    SimOptions opts;
    opts.warmupRounds = 0;
    opts.runInit = false;
    opts.timeline = &timeline;
    rig.sim.run(p, opts);

    ASSERT_EQ(timeline.size(), 3u);
    EXPECT_EQ(timeline[0].kind, NestKind::Sequential);
    EXPECT_EQ(timeline[1].kind, NestKind::Parallel);
    EXPECT_EQ(timeline[2].kind, NestKind::Suppressed);
    for (const NestTimelineEntry &e : timeline) {
        EXPECT_EQ(e.phase, "phase-x");
        EXPECT_EQ(e.cpuEnd.size(), 4u);
        EXPECT_LE(e.start, e.end);
        for (Cycles c : e.cpuEnd) {
            EXPECT_GE(c, e.start);
            EXPECT_LE(c, e.end);
        }
    }
    // Entries are time-ordered and contiguous.
    EXPECT_LE(timeline[0].end, timeline[1].start);
    EXPECT_LE(timeline[1].end, timeline[2].start);
}

/** Property: stat categories always sum to the combined time. */
class SimBreakdownProperty : public ::testing::TestWithParam<std::uint32_t>
{};

TEST_P(SimBreakdownProperty, CategoriesAreExhaustive)
{
    Rig rig(GetParam());
    Program p = simProgram(33, 64); // odd extent: imbalance present
    SimOptions opts;
    WeightedTotals t = rig.sim.run(p, opts);
    double sum = t.busy + t.memStall + t.kernel + t.imbalance +
                 t.sequential + t.suppressed + t.sync;
    EXPECT_NEAR(sum, t.combinedTime(), 1e-9);
    EXPECT_GE(t.wall, 0.0);
    EXPECT_GT(t.busy, 0.0);
}

INSTANTIATE_TEST_SUITE_P(Cpus, SimBreakdownProperty,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u));

} // namespace
} // namespace cdpc
