/**
 * @file
 * Structural tests for the ten SPEC95fp stand-ins: every workload
 * builds and validates, data-set sizes track Table 1 at the 1/8
 * scale, and the per-benchmark characteristics the paper relies on
 * are present (swim's 13 arrays, turb3d's phase occurrences, applu's
 * 33-iteration blocked loops, fpppp's instruction-stream model, the
 * unanalyzable structures of su2cor and wave5).
 */

#include <gtest/gtest.h>

#include <set>

#include "workloads/workload.h"

namespace cdpc
{
namespace
{

TEST(Workloads, RegistryHasAllTen)
{
    EXPECT_EQ(allWorkloads().size(), 10u);
}

TEST(Workloads, AllBuildAndValidate)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        Program p = w.build();
        EXPECT_NO_THROW(p.validate()) << w.name;
        EXPECT_EQ(p.name, w.name);
        EXPECT_FALSE(p.steady.empty()) << w.name;
        EXPECT_FALSE(p.init.nests.empty()) << w.name;
    }
}

TEST(Workloads, DataSetSizesTrackTable1)
{
    // Scaled size x 8 should be within 20% of the paper's Table 1
    // (fpppp's "< 1MB" is excluded from the tolerance check).
    for (const WorkloadInfo &w : allWorkloads()) {
        Program p = w.build();
        double scaled_up =
            static_cast<double>(p.dataSetBytes()) * 8.0 /
            (1024.0 * 1024.0);
        if (w.name == "145.fpppp") {
            EXPECT_LT(scaled_up, 1.0);
            continue;
        }
        EXPECT_NEAR(scaled_up, w.paperDataSetMB,
                    0.20 * w.paperDataSetMB)
            << w.name;
    }
}

TEST(Workloads, LookupByFullAndShortName)
{
    EXPECT_EQ(findWorkload("102.swim").name, "102.swim");
    EXPECT_EQ(findWorkload("swim").name, "102.swim");
    EXPECT_THROW(findWorkload("nosuch"), FatalError);
}

TEST(Workloads, SpecReferenceTimesPositive)
{
    for (const WorkloadInfo &w : allWorkloads())
        EXPECT_GT(w.specRefSeconds, 0.0) << w.name;
}

TEST(Workloads, SwimHasThirteenCacheSpanningArrays)
{
    Program p = buildWorkload("swim");
    EXPECT_EQ(p.arrays.size(), 13u);
    for (const ArrayDecl &a : p.arrays)
        EXPECT_EQ(a.sizeBytes(), 130u * 128u * 8u) << a.name;
}

TEST(Workloads, TomcatvHasSevenArrays)
{
    Program p = buildWorkload("tomcatv");
    EXPECT_EQ(p.arrays.size(), 7u);
}

TEST(Workloads, Turb3dPhaseOccurrencesMatchPaper)
{
    // "four phases that each occur 11, 66, 100 and 120 times"
    Program p = buildWorkload("turb3d");
    ASSERT_EQ(p.steady.size(), 4u);
    EXPECT_EQ(p.steady[0].occurrences, 11u);
    EXPECT_EQ(p.steady[1].occurrences, 66u);
    EXPECT_EQ(p.steady[2].occurrences, 100u);
    EXPECT_EQ(p.steady[3].occurrences, 120u);
}

TEST(Workloads, AppluHas33IterationBlockedLoops)
{
    Program p = buildWorkload("applu");
    bool found = false;
    for (const Phase &ph : p.steady) {
        for (const LoopNest &nest : ph.nests) {
            if (nest.kind != NestKind::Parallel)
                continue;
            EXPECT_EQ(nest.partition.policy, PartitionPolicy::Blocked)
                << nest.label;
            if (nest.bounds[nest.parallelDim] == 33)
                found = true;
        }
    }
    EXPECT_TRUE(found) << "no 33-iteration parallel loop";
}

TEST(Workloads, AppluWavefrontsInhibitPrefetchPipelining)
{
    Program p = buildWorkload("applu");
    for (const Phase &ph : p.steady) {
        for (const LoopNest &nest : ph.nests)
            EXPECT_TRUE(nest.prefetchPipelineInhibited) << nest.label;
    }
}

TEST(Workloads, FppppIsSequentialAndIfetchBound)
{
    Program p = buildWorkload("fpppp");
    EXPECT_TRUE(p.modelIfetch);
    EXPECT_GT(p.textBytes, 4u * 1024u);   // exceeds the L1I
    EXPECT_LT(p.textBytes, 128u * 1024u); // fits the external cache
    for (const Phase &ph : p.steady) {
        for (const LoopNest &nest : ph.nests)
            EXPECT_EQ(nest.kind, NestKind::Sequential) << nest.label;
    }
    EXPECT_LT(p.dataSetBytes(), 128u * 1024u);
}

TEST(Workloads, Su2corHasUnanalyzableStructures)
{
    Program p = buildWorkload("su2cor");
    int unanalyzable = 0;
    for (const ArrayDecl &a : p.arrays)
        unanalyzable += a.summarizable ? 0 : 1;
    EXPECT_EQ(unanalyzable, 3); // prop0, prop1, latt
}

TEST(Workloads, Wave5ParticlePushIsSuppressed)
{
    Program p = buildWorkload("wave5");
    bool suppressed_gather = false;
    for (const Phase &ph : p.steady) {
        for (const LoopNest &nest : ph.nests) {
            if (nest.kind != NestKind::Suppressed)
                continue;
            for (const AffineRef &r : nest.refs) {
                if (r.wrapModElems != 0)
                    suppressed_gather = true;
            }
        }
    }
    EXPECT_TRUE(suppressed_gather);
}

TEST(Workloads, ApsiHasFineGrainNests)
{
    // The nests apsi authors as Parallel must be small enough that
    // the parallelizer suppresses most of them.
    Program p = buildWorkload("apsi");
    int narrow = 0;
    for (const Phase &ph : p.steady) {
        for (const LoopNest &nest : ph.nests) {
            std::uint64_t work =
                nest.totalIters() * (nest.instsPerIter +
                                     nest.refs.size());
            if (nest.kind == NestKind::Parallel && work < 50000)
                narrow++;
        }
    }
    EXPECT_GE(narrow, 4);
}

TEST(Workloads, ArraysHaveUniqueNames)
{
    for (const WorkloadInfo &w : allWorkloads()) {
        Program p = w.build();
        std::set<std::string> names;
        for (const ArrayDecl &a : p.arrays)
            EXPECT_TRUE(names.insert(a.name).second)
                << w.name << ": " << a.name;
    }
}

} // namespace
} // namespace cdpc
