/**
 * @file
 * The batch-execution subsystem: work-stealing pool mechanics, the
 * Batch API's ordering/determinism/failure-isolation guarantees, and
 * the JSON-lines result sink.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <clocale>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "common/digest.h"
#include "common/faultpoint.h"
#include "common/signals.h"
#include "runner/runner.h"

namespace cdpc::runner
{
namespace
{

class QuietGuard
{
  public:
    QuietGuard() { setQuiet(true); }
    ~QuietGuard() { setQuiet(false); }
};

// ---------------------------------------------------------------- pool

TEST(ThreadPool, DrainsMoreJobsThanWorkers)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 300; i++)
        pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 300);
    ThreadPoolStats s = pool.stats();
    EXPECT_EQ(s.submitted, 300u);
    EXPECT_EQ(s.executed, 300u);
}

TEST(ThreadPool, SingleWorkerDrains)
{
    ThreadPool pool(1);
    EXPECT_EQ(pool.workerCount(), 1u);
    std::atomic<int> count{0};
    for (int i = 0; i < 50; i++)
        pool.submit([&] { count.fetch_add(1); });
    pool.waitIdle();
    EXPECT_EQ(count.load(), 50);
}

TEST(ThreadPool, DestructorDrainsPendingWork)
{
    std::atomic<int> count{0};
    {
        ThreadPool pool(3);
        for (int i = 0; i < 100; i++)
            pool.submit([&] { count.fetch_add(1); });
        // No waitIdle: the destructor must finish the queue.
    }
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, TasksSubmittedFromInsideTasksRun)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    for (int i = 0; i < 10; i++) {
        pool.submit([&] {
            count.fetch_add(1);
            pool.submit([&] { count.fetch_add(1); });
        });
    }
    pool.waitIdle();
    EXPECT_EQ(count.load(), 20);
}

TEST(ThreadPool, WorkSpreadsAcrossWorkers)
{
    // With tasks that block until every worker has one, all workers
    // must participate (steals or round-robin placement get them
    // there).
    constexpr unsigned kWorkers = 4;
    ThreadPool pool(kWorkers);
    std::mutex mutex;
    std::set<int> seen;
    std::atomic<int> arrived{0};
    for (unsigned i = 0; i < kWorkers; i++) {
        pool.submit([&] {
            {
                std::lock_guard<std::mutex> lock(mutex);
                seen.insert(currentWorkerId());
            }
            arrived.fetch_add(1);
            while (arrived.load() < static_cast<int>(kWorkers))
                std::this_thread::yield();
        });
    }
    pool.waitIdle();
    EXPECT_EQ(seen.size(), kWorkers);
}

TEST(ThreadPool, WaitIdleOnIdlePoolReturns)
{
    ThreadPool pool(2);
    pool.waitIdle();
    SUCCEED();
}

// ------------------------------------------------------------- seeding

TEST(Job, DerivedSeedsAreDistinct)
{
    std::set<std::uint64_t> seeds;
    for (std::uint64_t base = 0; base < 4; base++)
        for (std::uint64_t i = 0; i < 64; i++)
            seeds.insert(deriveJobSeed(base, i));
    EXPECT_EQ(seeds.size(), 4u * 64u);
    EXPECT_EQ(deriveJobSeed(7, 3), deriveJobSeed(7, 3));
}

TEST(Job, DefaultDisplayName)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(4);
    cfg.mapping = MappingPolicy::BinHopping;
    JobSpec spec = makeJob("102.swim", cfg);
    EXPECT_EQ(spec.displayName(), "102.swim/bin-hopping/4cpu");
    spec.name = "custom";
    EXPECT_EQ(spec.displayName(), "custom");
}

// --------------------------------------------------------------- batch

std::vector<JobSpec>
smallSpecs()
{
    // Mix policies, CPU counts and seeds; mgrid is the cheapest
    // policy-sensitive workload so the suite stays fast.
    std::vector<JobSpec> specs;
    const MappingPolicy policies[] = {
        MappingPolicy::PageColoring, MappingPolicy::Cdpc,
        MappingPolicy::BinHopping, MappingPolicy::Random};
    for (std::size_t i = 0; i < 8; i++) {
        ExperimentConfig cfg;
        cfg.machine =
            MachineConfig::paperScaled(i % 2 == 0 ? 2 : 4);
        cfg.mapping = policies[i % 4];
        cfg.seed = deriveJobSeed(42, i);
        specs.push_back(makeJob("107.mgrid", cfg));
    }
    return specs;
}

TEST(Batch, ParallelBitIdenticalToSerial)
{
    QuietGuard quiet;
    BatchOptions serial;
    serial.jobs = 1;
    BatchOptions parallel;
    parallel.jobs = 4;
    std::vector<JobResult> a = runBatch(smallSpecs(), serial);
    std::vector<JobResult> b = runBatch(smallSpecs(), parallel);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); i++) {
        ASSERT_TRUE(a[i].ok());
        ASSERT_TRUE(b[i].ok());
        // The serialized form renders every double at round-trip
        // precision, so string equality is bit equality.
        EXPECT_EQ(resultToJson(a[i]), resultToJson(b[i]))
            << "job " << i << " diverged between serial and parallel";
    }
}

TEST(Batch, ResultsArriveInSubmissionOrder)
{
    QuietGuard quiet;
    std::vector<JobSpec> specs = smallSpecs();
    std::vector<std::string> expect_names;
    for (const JobSpec &s : specs)
        expect_names.push_back(s.displayName());
    BatchOptions options;
    options.jobs = 4;
    std::vector<JobResult> results = runBatch(specs, options);
    ASSERT_EQ(results.size(), expect_names.size());
    for (std::size_t i = 0; i < results.size(); i++) {
        EXPECT_EQ(results[i].index, i);
        EXPECT_EQ(results[i].spec.displayName(), expect_names[i]);
        ASSERT_TRUE(results[i].ok());
        EXPECT_EQ(results[i].result->ncpus,
                  specs[i].config.machine.numCpus);
    }
}

TEST(Batch, FailedJobDoesNotPoisonTheBatch)
{
    QuietGuard quiet;
    std::vector<JobSpec> specs = smallSpecs();
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    specs.insert(specs.begin() + 3,
                 makeJob("999.no-such-workload", cfg));
    BatchOptions options;
    options.jobs = 4;
    std::vector<JobResult> results = runBatch(specs, options);
    ASSERT_EQ(results.size(), 9u);
    for (std::size_t i = 0; i < results.size(); i++) {
        if (i == 3) {
            EXPECT_FALSE(results[i].ok());
            EXPECT_NE(results[i].error.find("999.no-such-workload"),
                      std::string::npos);
        } else {
            EXPECT_TRUE(results[i].ok())
                << "job " << i << ": " << results[i].error;
        }
    }
    // And the throwing wrapper surfaces the failure.
    EXPECT_THROW(
        {
            BatchOptions opts;
            opts.jobs = 2;
            std::vector<JobSpec> bad;
            bad.push_back(makeJob("999.no-such-workload", cfg));
            runBatchOrThrow(std::move(bad), opts);
        },
        FatalError);
}

TEST(Batch, OneWorkerPoolCompletesBatch)
{
    QuietGuard quiet;
    ThreadPool pool(1);
    Batch batch(pool);
    std::vector<JobSpec> specs = smallSpecs();
    specs.resize(3);
    for (JobSpec &s : specs)
        batch.add(std::move(s));
    std::vector<JobResult> results = batch.run();
    ASSERT_EQ(results.size(), 3u);
    for (const JobResult &r : results)
        EXPECT_TRUE(r.ok());
}

TEST(Batch, SharedPoolRunsBatchesBackToBack)
{
    QuietGuard quiet;
    ThreadPool pool(2);
    for (int round = 0; round < 2; round++) {
        Batch batch(pool);
        std::vector<JobSpec> specs = smallSpecs();
        specs.resize(2);
        for (JobSpec &s : specs)
            batch.add(std::move(s));
        std::vector<JobResult> results = batch.run();
        ASSERT_EQ(results.size(), 2u);
        EXPECT_TRUE(results[0].ok());
        EXPECT_TRUE(results[1].ok());
    }
}

// ---------------------------------------------------------------- sink

TEST(ResultSink, JsonEscaping)
{
    EXPECT_EQ(jsonEscape("plain"), "plain");
    EXPECT_EQ(jsonEscape("a\"b\\c"), "a\\\"b\\\\c");
    EXPECT_EQ(jsonEscape("line\nbreak"), "line\\nbreak");
}

TEST(ResultSink, WritesOneLinePerJobWithIndices)
{
    QuietGuard quiet;
    std::ostringstream out;
    JsonlResultSink sink(out);
    BatchOptions options;
    options.jobs = 4;
    options.sink = &sink;
    std::vector<JobSpec> specs = smallSpecs();
    specs.resize(4);
    std::vector<JobResult> results = runBatch(specs, options);
    EXPECT_EQ(sink.lines(), 4u);

    std::istringstream lines(out.str());
    std::string line;
    std::set<std::string> job_fields;
    std::size_t n = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"workload\":\"107.mgrid\""),
                  std::string::npos);
        EXPECT_NE(line.find("\"totals\":{"), std::string::npos);
        job_fields.insert(line.substr(0, line.find(',')));
        n++;
    }
    EXPECT_EQ(n, 4u);
    // Completion order may vary; the four distinct indices must all
    // be present.
    EXPECT_EQ(job_fields.size(), 4u);
}

TEST(ResultSink, ErrorJobsSerializeErrorField)
{
    JobResult r;
    r.index = 7;
    r.spec = makeJob("102.swim", ExperimentConfig{});
    r.error = "boom";
    std::string json = resultToJson(r);
    EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(json.find("\"error\":\"boom\""), std::string::npos);
    EXPECT_EQ(json.find("\"totals\""), std::string::npos);
}

// ------------------------------------- self-healing: watchdog + retries

class SelfHealing : public ::testing::Test
{
  protected:
    void
    TearDown() override
    {
        faultpoints::clear();
        joinAbandonedJobThreads();
    }
};

JobSpec
namedJob(const std::string &name)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    JobSpec spec = makeJob("107.mgrid", cfg);
    spec.name = name;
    return spec;
}

TEST_F(SelfHealing, TransientFailuresAreRetriedUntilSuccess)
{
    faultpoints::install(FaultPlan::parse("job.run#flaky=fail*2"));
    RunPolicy policy;
    policy.maxRetries = 3;
    policy.backoffMs = 1;
    JobResult r = runJobWithPolicy(namedJob("flaky"), 0, policy);
    EXPECT_TRUE(r.ok());
    EXPECT_EQ(r.outcome, JobOutcome::Ok);
    EXPECT_EQ(r.attempts, 3u);
    EXPECT_FALSE(r.quarantined());
}

TEST_F(SelfHealing, RetriesExhaustedQuarantines)
{
    faultpoints::install(FaultPlan::parse("job.run#flaky=fail*10"));
    RunPolicy policy;
    policy.maxRetries = 2;
    policy.backoffMs = 1;
    JobResult r = runJobWithPolicy(namedJob("flaky"), 0, policy);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.outcome, JobOutcome::Failed);
    EXPECT_EQ(r.errorKind, "transient");
    EXPECT_EQ(r.attempts, 3u); // 1 try + 2 retries
    EXPECT_TRUE(r.quarantined());
}

TEST_F(SelfHealing, PermanentErrorsAreNotRetried)
{
    faultpoints::install(FaultPlan::parse("job.run#bad=fatal"));
    RunPolicy policy;
    policy.maxRetries = 5;
    policy.backoffMs = 1;
    JobResult r = runJobWithPolicy(namedJob("bad"), 0, policy);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.outcome, JobOutcome::Failed);
    EXPECT_EQ(r.errorKind, "fatal");
    EXPECT_EQ(r.attempts, 1u);
}

TEST_F(SelfHealing, WatchdogTimesOutAHungJob)
{
    faultpoints::install(FaultPlan::parse("job.run#hanger=hang"));
    RunPolicy policy;
    policy.timeoutSeconds = 0.5;
    JobResult r = runJobWithPolicy(namedJob("hanger"), 0, policy);
    EXPECT_FALSE(r.ok());
    EXPECT_EQ(r.outcome, JobOutcome::TimedOut);
    EXPECT_EQ(r.errorKind, "timeout");
    EXPECT_EQ(r.attempts, 1u);
}

/**
 * The acceptance batch: jobs 1 and 3 crash/hang, job 6 needs two
 * retries, the rest are healthy. Instance-qualified fault triggers
 * make this deterministic whatever the worker count.
 */
std::vector<JobSpec>
healingSpecs()
{
    std::vector<JobSpec> specs = smallSpecs();
    specs.resize(4);
    specs.insert(specs.begin() + 1, namedJob("crasher"));
    specs.insert(specs.begin() + 3, namedJob("hanger"));
    specs.push_back(namedJob("flaky"));
    return specs;
}

void
installHealingPlan()
{
    faultpoints::install(FaultPlan::parse(
        "job.run#crasher=panic,job.run#hanger=hang,"
        "job.run#flaky=fail*2"));
}

TEST_F(SelfHealing, BatchQuarantinesAndHealsDeterministically)
{
    QuietGuard quiet;
    BatchOptions serial;
    serial.jobs = 1;
    serial.policy.timeoutSeconds = 2.0;
    serial.policy.maxRetries = 3;
    serial.policy.backoffMs = 1;
    BatchOptions parallel = serial;
    parallel.jobs = 4;

    // Fresh trigger counters per run, so both executions see the
    // identical fault schedule.
    installHealingPlan();
    std::vector<JobResult> a = runBatch(healingSpecs(), serial);
    installHealingPlan();
    std::vector<JobResult> b = runBatch(healingSpecs(), parallel);

    ASSERT_EQ(a.size(), 7u);
    ASSERT_EQ(b.size(), 7u);
    for (const std::vector<JobResult> *run : {&a, &b}) {
        const std::vector<JobResult> &r = *run;
        EXPECT_EQ(r[1].outcome, JobOutcome::Failed);
        EXPECT_EQ(r[1].errorKind, "panic");
        EXPECT_EQ(r[1].attempts, 1u);
        EXPECT_EQ(r[3].outcome, JobOutcome::TimedOut);
        EXPECT_EQ(r[3].errorKind, "timeout");
        EXPECT_TRUE(r[6].ok());
        EXPECT_EQ(r[6].attempts, 3u);
        for (std::size_t i : {0u, 2u, 4u, 5u}) {
            EXPECT_TRUE(r[i].ok()) << "job " << i << ": "
                                   << r[i].error;
            EXPECT_EQ(r[i].attempts, 1u);
        }
    }
    // Bit-identical serialization across worker counts — for every
    // job: results carry no wall-clock fields and the fault schedule
    // is instance-pinned.
    for (std::size_t i = 0; i < a.size(); i++)
        EXPECT_EQ(resultToJson(a[i]), resultToJson(b[i]))
            << "job " << i << " diverged between serial and parallel";
}

TEST(ResultSink, QuarantineFieldsSerialized)
{
    JobResult r;
    r.index = 2;
    r.spec = makeJob("102.swim", ExperimentConfig{});
    r.error = "attempt exceeded 2.0s timeout";
    r.errorKind = "timeout";
    r.outcome = JobOutcome::TimedOut;
    r.attempts = 2;
    std::string json = resultToJson(r);
    EXPECT_NE(json.find("\"ok\":false"), std::string::npos);
    EXPECT_NE(json.find("\"outcome\":\"timeout\""),
              std::string::npos);
    EXPECT_NE(json.find("\"attempts\":2"), std::string::npos);
    EXPECT_NE(json.find("\"errorKind\":\"timeout\""),
              std::string::npos);
}

// ------------------------------------------------------------ progress

TEST(Progress, CountsAndRateLimit)
{
    std::ostringstream out;
    // min_interval of an hour: only the final job may print.
    ProgressReporter progress(100, &out, 3600.0);
    for (int i = 0; i < 100; i++)
        progress.jobDone(i % 10 != 0);
    progress.finish();
    EXPECT_EQ(progress.done(), 100u);
    EXPECT_EQ(progress.failed(), 10u);
    // One line when done hit total, plus the finish() summary.
    std::size_t newlines = 0;
    for (char c : out.str())
        if (c == '\n')
            newlines++;
    EXPECT_LE(newlines, 2u);
    EXPECT_NE(out.str().find("100/100"), std::string::npos);
    EXPECT_NE(out.str().find("10 failed"), std::string::npos);
}

TEST(Progress, QuietSuppressesOutput)
{
    QuietGuard quiet;
    std::ostringstream out;
    ProgressReporter progress(2, &out, 0.0);
    progress.jobDone(true);
    progress.jobDone(true);
    progress.finish();
    EXPECT_TRUE(out.str().empty());
    EXPECT_EQ(progress.done(), 2u);
}

// -------------------------------------------------------- jsonNumber

TEST(ResultSink, JsonNumberShortestFormRoundTrips)
{
    // Shortest form preferred: values with short exact decimals must
    // not pick up %.17g noise digits.
    EXPECT_EQ(jsonNumber(0.1), "0.1");
    EXPECT_EQ(jsonNumber(1.5), "1.5");
    EXPECT_EQ(jsonNumber(0.0), "0");
    EXPECT_EQ(jsonNumber(1e300), "1e+300");
    // And whatever form is chosen must round-trip bit-exactly.
    for (double v : {1.0 / 3.0, 2.0 / 7.0, 3.14159265358979,
                     1.0000000000000002, 123456789.123456789}) {
        std::string s = jsonNumber(v);
        EXPECT_EQ(std::strtod(s.c_str(), nullptr), v) << s;
    }
}

TEST(ResultSink, JsonNumberIsLocaleIndependent)
{
    // Under a comma-decimal locale the old snprintf/sscanf pair
    // rendered "0,1" or silently failed its round-trip check; the
    // to_chars path must not care about LC_NUMERIC at all.
    const char *applied = std::setlocale(LC_NUMERIC, "de_DE.UTF-8");
    if (!applied)
        applied = std::setlocale(LC_NUMERIC, "de_DE.utf8");
    if (!applied)
        GTEST_SKIP() << "no comma-decimal locale installed";
    std::string got = jsonNumber(0.1);
    std::string got_big = jsonNumber(123456789.123456789);
    std::setlocale(LC_NUMERIC, "C");
    EXPECT_EQ(got, "0.1");
    EXPECT_EQ(got_big.find(','), std::string::npos) << got_big;
}

/** A minimal failed-job result (cheap: no simulation needed). */
JobResult
errorResult(std::size_t index)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    JobResult r;
    r.index = index;
    r.spec = makeJob("107.mgrid", cfg);
    r.outcome = JobOutcome::Failed;
    r.error = "synthetic";
    r.errorKind = "fatal";
    return r;
}

TEST(ResultSink, StreamWriteFailureIsTypedFatal)
{
    QuietGuard quiet;
    std::ostringstream out;
    JsonlResultSink sink(out);
    out.setstate(std::ios::badbit);
    EXPECT_THROW(sink.write(errorResult(0)), FatalError);
}

// ------------------------------------------------------ canonicalKey

TEST(Job, CanonicalKeyIsStable)
{
    std::vector<JobSpec> a = smallSpecs();
    std::vector<JobSpec> b = smallSpecs();
    for (std::size_t i = 0; i < a.size(); i++)
        EXPECT_EQ(a[i].canonicalKey(), b[i].canonicalKey());
    // displayName prefix + "@" + 16-hex digest.
    std::string key = a[0].canonicalKey();
    ASSERT_NE(key.find('@'), std::string::npos);
    EXPECT_EQ(key.substr(0, key.find('@')), a[0].displayName());
    EXPECT_EQ(key.size() - key.find('@') - 1, 16u);
}

TEST(Job, CanonicalKeySeesSemanticDrift)
{
    JobSpec base = smallSpecs()[0];
    auto key = [](JobSpec s) { return s.canonicalKey(); };
    JobSpec seed = base;
    seed.config.seed++;
    EXPECT_NE(key(base), key(seed));
    JobSpec wl = base;
    wl.workload = "102.swim";
    EXPECT_NE(key(base), key(wl));
    JobSpec policy = base;
    policy.config.mapping = MappingPolicy::Hash;
    EXPECT_NE(key(base), key(policy));
    JobSpec pressure = base;
    pressure.config.pressure.occupancy = 0.5;
    EXPECT_NE(key(base), key(pressure));
    JobSpec cpus = base;
    cpus.config.machine = MachineConfig::paperScaled(8);
    EXPECT_NE(key(base), key(cpus));
}

// ----------------------------------------------------------- journal

TEST(Journal, RecordRoundTrips)
{
    std::string path = ::testing::TempDir() + "journal_rt.journal";
    {
        JournalWriter w(path, true, false);
        for (std::uint64_t i = 0; i < 3; i++) {
            JournalRecord rec;
            rec.job = i * 7;
            rec.digest = fnv1a("line " + std::to_string(i));
            rec.outcome = i == 1 ? "failed" : "ok";
            rec.key = "name with spaces@0123456789abcdef";
            w.append(rec);
        }
    }
    JournalLoad load = loadJournal(path);
    ASSERT_EQ(load.records.size(), 3u);
    EXPECT_FALSE(load.tornTail);
    for (std::uint64_t i = 0; i < 3; i++) {
        EXPECT_EQ(load.records[i].job, i * 7);
        EXPECT_EQ(load.records[i].digest,
                  fnv1a("line " + std::to_string(i)));
        EXPECT_EQ(load.records[i].key,
                  "name with spaces@0123456789abcdef");
    }
    EXPECT_EQ(load.records[1].outcome, "failed");
    std::remove(path.c_str());
}

TEST(Journal, TornTailIsDroppedCleanly)
{
    std::string path = ::testing::TempDir() + "journal_torn.journal";
    {
        JournalWriter w(path, true, false);
        JournalRecord rec;
        rec.job = 0;
        rec.digest = 1;
        rec.outcome = "ok";
        rec.key = "k";
        w.append(rec);
    }
    // A crash mid-append: half a record, no newline.
    {
        std::ofstream out(path, std::ios::binary | std::ios::app);
        out << "R 999 0123";
    }
    JournalLoad load = loadJournal(path);
    EXPECT_EQ(load.records.size(), 1u);
    EXPECT_TRUE(load.tornTail);
    std::remove(path.c_str());
}

// ------------------------------------------------------ durable sink

/** Remove every artifact the durable sink may leave for @p out. */
void
cleanArtifacts(const std::string &out)
{
    for (const std::string &p :
         {out, out + ".part", out + ".journal", out + ".manifest",
          out + ".manifest.part", out + ".tmp"})
        std::remove(p.c_str());
}

std::string
fileBytes(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

TEST(DurableSink, FinalizeWritesCanonicalOrderAndManifest)
{
    QuietGuard quiet;
    std::string out = ::testing::TempDir() + "durable_clean.jsonl";
    cleanArtifacts(out);
    std::vector<JobSpec> specs = smallSpecs();

    DurableJsonlSink::Options dopts;
    auto sink =
        std::make_unique<DurableJsonlSink>(out, specs, dopts);
    BatchOptions options;
    options.jobs = 4;
    options.sink = sink.get();
    std::vector<JobResult> results = runBatch(specs, options);
    EXPECT_TRUE(fileExists(out + ".part"));
    EXPECT_TRUE(fileExists(out + ".journal"));
    EXPECT_FALSE(DurableJsonlSink::manifestComplete(out));
    sink->finalize();

    // Final artifact: submission order, bytes equal to the in-order
    // result vector's serialization; manifest present, scratch gone.
    std::string expect;
    for (const JobResult &r : results)
        expect += resultToJson(r) + "\n";
    EXPECT_EQ(fileBytes(out), expect);
    EXPECT_TRUE(DurableJsonlSink::manifestComplete(out));
    EXPECT_FALSE(fileExists(out + ".part"));
    EXPECT_FALSE(fileExists(out + ".journal"));
    std::string manifest = fileBytes(out + ".manifest");
    EXPECT_NE(manifest.find("cdpc-batch-manifest v1"),
              std::string::npos);
    EXPECT_NE(manifest.find("jobs=" +
                            std::to_string(results.size())),
              std::string::npos);
    cleanArtifacts(out);
}

/** Forwarding sink that cancels @p token after N writes. */
class CancelAfterSink : public ResultSink
{
  public:
    CancelAfterSink(ResultSink &next, CancelToken &token,
                    std::size_t after)
        : next_(next), token_(token), after_(after)
    {}

    void write(const JobResult &r) override
    {
        next_.write(r);
        if (++written_ >= after_)
            token_.cancel();
    }

  private:
    ResultSink &next_;
    CancelToken &token_;
    std::size_t after_;
    std::atomic<std::size_t> written_{0};
};

TEST(DurableSink, InterruptedThenResumedIsByteIdentical)
{
    QuietGuard quiet;
    std::vector<JobSpec> specs = smallSpecs();
    std::string clean = ::testing::TempDir() + "durable_ref.jsonl";
    std::string out = ::testing::TempDir() + "durable_resume.jsonl";
    cleanArtifacts(clean);
    cleanArtifacts(out);

    // Uninterrupted golden run.
    DurableJsonlSink::Options dopts;
    {
        DurableJsonlSink sink(clean, specs, dopts);
        BatchOptions options;
        options.jobs = 2;
        options.sink = &sink;
        runBatch(specs, options);
        sink.finalize();
    }
    std::string golden = fileBytes(clean);
    ASSERT_FALSE(golden.empty());

    // Interrupted run: drain via the cancel token after 3 commits,
    // then tear the tails the way a SIGKILL would.
    {
        auto sink =
            std::make_unique<DurableJsonlSink>(out, specs, dopts);
        CancelToken token;
        CancelAfterSink canceller(*sink, token, 3);
        BatchControl control;
        control.cancel = &token;
        BatchOptions options;
        options.jobs = 2;
        options.sink = &canceller;
        options.control = &control;
        std::vector<JobResult> results = runBatch(specs, options);
        std::size_t cancelled = 0;
        for (const JobResult &r : results)
            if (r.outcome == JobOutcome::Cancelled)
                cancelled++;
        EXPECT_GT(cancelled, 0u);
        EXPECT_GE(sink->lines(), 3u);
        // No finalize: the drain leaves part + journal behind.
    }
    {
        std::ofstream part(out + ".part",
                           std::ios::binary | std::ios::app);
        part << "{\"job\":torn";
        std::ofstream journal(out + ".journal",
                              std::ios::binary | std::ios::app);
        journal << "R 57 0123456789";
    }

    // Resume: committed jobs skipped, the rest re-run, merged output
    // byte-identical to the uninterrupted run.
    {
        DurableJsonlSink::Options ropts;
        ropts.resume = true;
        auto sink =
            std::make_unique<DurableJsonlSink>(out, specs, ropts);
        EXPECT_GE(sink->resumedCount(), 3u);
        EXPECT_LT(sink->resumedCount(), specs.size());
        EXPECT_TRUE(sink->repairedTail());
        BatchControl control;
        control.skip = sink->committed();
        BatchOptions options;
        options.jobs = 2;
        options.sink = sink.get();
        options.control = &control;
        std::vector<JobResult> results = runBatch(specs, options);
        std::size_t skipped = 0;
        for (const JobResult &r : results)
            if (r.outcome == JobOutcome::Skipped)
                skipped++;
        EXPECT_EQ(skipped, sink->resumedCount());
        sink->finalize();
    }
    EXPECT_EQ(fileBytes(out), golden);
    EXPECT_TRUE(DurableJsonlSink::manifestComplete(out));
    cleanArtifacts(clean);
    cleanArtifacts(out);
}

TEST(DurableSink, ResumeAgainstDriftedSpecIsTypedFatal)
{
    QuietGuard quiet;
    std::string out = ::testing::TempDir() + "durable_drift.jsonl";
    cleanArtifacts(out);
    std::vector<JobSpec> specs = smallSpecs();

    DurableJsonlSink::Options dopts;
    {
        DurableJsonlSink sink(out, specs, dopts);
        BatchOptions options;
        options.jobs = 2;
        options.sink = &sink;
        runBatch(specs, options);
        // No finalize: keep the journal for the resume attempt.
    }
    // The spec file changed out from under the journal.
    specs[0].config.seed += 1000;
    DurableJsonlSink::Options ropts;
    ropts.resume = true;
    try {
        DurableJsonlSink sink(out, specs, ropts);
        FAIL() << "spec drift must be fatal";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("spec drift"),
                  std::string::npos);
    }
    cleanArtifacts(out);
}

// -------------------------------------------------- cancel and drain

TEST(Batch, PreCancelledTokenRunsNothing)
{
    QuietGuard quiet;
    std::vector<JobSpec> specs = smallSpecs();
    CancelToken token;
    token.cancel();
    BatchControl control;
    control.cancel = &token;
    std::ostringstream json;
    JsonlResultSink sink(json);
    BatchOptions options;
    options.jobs = 2;
    options.sink = &sink;
    options.control = &control;
    std::vector<JobResult> results = runBatch(specs, options);
    ASSERT_EQ(results.size(), specs.size());
    for (const JobResult &r : results) {
        EXPECT_EQ(r.outcome, JobOutcome::Cancelled);
        EXPECT_FALSE(r.quarantined());
        EXPECT_EQ(r.attempts, 0u);
    }
    // Cancelled jobs never reach the sink: nothing committed.
    EXPECT_EQ(sink.lines(), 0u);
}

TEST(Batch, SkipMaskReportsSkippedWithoutRunning)
{
    QuietGuard quiet;
    std::vector<JobSpec> specs = smallSpecs();
    BatchControl control;
    control.skip.assign(specs.size(), false);
    control.skip[0] = control.skip[5] = true;
    std::ostringstream json;
    JsonlResultSink sink(json);
    BatchOptions options;
    options.jobs = 2;
    options.sink = &sink;
    options.control = &control;
    std::vector<JobResult> results = runBatch(specs, options);
    EXPECT_EQ(results[0].outcome, JobOutcome::Skipped);
    EXPECT_EQ(results[5].outcome, JobOutcome::Skipped);
    EXPECT_FALSE(results[0].quarantined());
    std::size_t ran = 0;
    for (const JobResult &r : results)
        if (r.outcome == JobOutcome::Ok)
            ran++;
    EXPECT_EQ(ran, specs.size() - 2);
    EXPECT_EQ(sink.lines(), specs.size() - 2);
}

TEST(Signals, DrainTokenLifecycle)
{
    signals::installDrainHandlers();
    EXPECT_FALSE(signals::drainToken().cancelled());
    EXPECT_EQ(signals::drainSignal(), 0);
    EXPECT_STREQ(signals::drainSignalName(), "none");
    // raise() delivers synchronously: the handler must cancel the
    // token, record the signal, and re-arm the default disposition
    // (so this raise must NOT re-enter the handler path next time —
    // which is exactly why we reset below before any second raise).
    std::raise(SIGTERM);
    EXPECT_TRUE(signals::drainToken().cancelled());
    EXPECT_EQ(signals::drainSignal(), SIGTERM);
    EXPECT_STREQ(signals::drainSignalName(), "SIGTERM");
    signals::resetDrainHandlers();
    EXPECT_FALSE(signals::drainToken().cancelled());
}

} // namespace
} // namespace cdpc::runner
