/**
 * @file
 * Table-driven MESI protocol tests: every reachable state of a line
 * in one cache is driven through local and remote reads/writes and
 * the resulting states, bus transactions and latencies are checked.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "machine/config.h"
#include "mem/memsystem.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"

namespace cdpc
{
namespace
{

class MesiTest : public ::testing::Test
{
  protected:
    MesiTest()
        : config(MachineConfig::paperScaled(4)),
          phys(config.physPages, config.numColors()),
          policy(config.numColors()), vm(config, phys, policy),
          mem(config, vm)
    {}

    AccessOutcome
    access(CpuId cpu, VAddr va, bool write)
    {
        MemAccess a;
        a.va = va;
        a.kind = write ? AccessKind::Store : AccessKind::Load;
        return mem.access(cpu, a, 0);
    }

    /** L2-visible state check: does a re-access hit, and writably? */
    bool
    l2Holds(CpuId cpu, VAddr va)
    {
        auto pa = vm.translateIfMapped(va);
        if (!pa)
            return false;
        Addr line = *pa / config.l2.lineBytes;
        return mem.l2Cache(cpu).probe(line * config.l2.lineBytes,
                                      line) != nullptr;
    }

    Mesi
    l2State(CpuId cpu, VAddr va)
    {
        auto pa = vm.translateIfMapped(va);
        panicIfNot(pa.has_value(), "unmapped");
        Addr line = *pa / config.l2.lineBytes;
        const CacheLine *l = mem.l2Cache(cpu).probe(
            line * config.l2.lineBytes, line);
        panicIfNot(l != nullptr, "line absent");
        return l->state;
    }

    /** Every scenario must leave the hierarchy coherent. */
    void TearDown() override { mem.auditInvariants(); }

    MachineConfig config;
    PhysMem phys;
    PageColoringPolicy policy;
    VirtualMemory vm;
    MemorySystem mem;
};

TEST_F(MesiTest, ColdReadFillsExclusive)
{
    access(0, 0x0, false);
    EXPECT_EQ(l2State(0, 0x0), Mesi::Exclusive);
}

TEST_F(MesiTest, ColdWriteFillsModified)
{
    access(0, 0x0, true);
    EXPECT_EQ(l2State(0, 0x0), Mesi::Modified);
}

TEST_F(MesiTest, SecondReaderMakesBothShared)
{
    access(0, 0x0, false);
    access(1, 0x0, false);
    EXPECT_EQ(l2State(0, 0x0), Mesi::Shared);
    EXPECT_EQ(l2State(1, 0x0), Mesi::Shared);
}

TEST_F(MesiTest, ReadOfModifiedDowngradesOwner)
{
    access(0, 0x0, true);
    access(1, 0x0, false);
    EXPECT_EQ(l2State(0, 0x0), Mesi::Shared);
    EXPECT_EQ(l2State(1, 0x0), Mesi::Shared);
}

TEST_F(MesiTest, WriteToSharedInvalidatesOthers)
{
    access(0, 0x0, false);
    access(1, 0x0, false);
    access(1, 0x0, true); // upgrade
    EXPECT_EQ(l2State(1, 0x0), Mesi::Modified);
    EXPECT_FALSE(l2Holds(0, 0x0));
}

TEST_F(MesiTest, WriteMissInvalidatesAllSharers)
{
    access(0, 0x0, false);
    access(1, 0x0, false);
    access(2, 0x0, true); // write miss with two sharers
    EXPECT_EQ(l2State(2, 0x0), Mesi::Modified);
    EXPECT_FALSE(l2Holds(0, 0x0));
    EXPECT_FALSE(l2Holds(1, 0x0));
}

TEST_F(MesiTest, SilentExclusiveToModifiedUpgrade)
{
    access(0, 0x0, false); // E, and the L1 copy is writable
    std::uint64_t upgrades = mem.busStats().upgradeTxns;
    // The store is absorbed by the writable L1 copy: no bus
    // transaction of any kind, and the hierarchy holds the line
    // dirty (L1-Modified above L2-Exclusive).
    access(0, 0x0, true);
    EXPECT_EQ(mem.busStats().upgradeTxns, upgrades);
    // The dirty-above-Exclusive state must be visible to snoops: a
    // remote reader pays the dirty-remote latency and both caches
    // end Shared.
    AccessOutcome out = access(1, 0x0, false);
    EXPECT_GE(out.stall - out.kernel,
              config.remoteDirtyLatencyCycles);
    EXPECT_EQ(l2State(0, 0x0), Mesi::Shared);
    EXPECT_EQ(l2State(1, 0x0), Mesi::Shared);
}

TEST_F(MesiTest, ExclusiveDowngradesToSharedOnRemoteRead)
{
    access(0, 0x0, false); // E in cpu0
    access(1, 0x0, false);
    EXPECT_EQ(l2State(0, 0x0), Mesi::Shared);
}

TEST_F(MesiTest, WriteAfterInvalidationIsWriteMissNotUpgrade)
{
    access(0, 0x0, false);
    access(1, 0x0, true); // invalidates cpu0
    std::uint64_t upgrades = mem.busStats().upgradeTxns;
    AccessOutcome out = access(0, 0x0, true);
    EXPECT_TRUE(out.l2Miss);
    // A write miss is a data transaction, not an address-only upgrade.
    EXPECT_EQ(mem.busStats().upgradeTxns, upgrades);
    EXPECT_EQ(l2State(0, 0x0), Mesi::Modified);
    EXPECT_FALSE(l2Holds(1, 0x0));
}

TEST_F(MesiTest, ChainOfOwnershipMigration)
{
    // The line migrates M->M->M across three writers; each step
    // invalidates the previous owner. The new writers themselves
    // take cold misses (they never held the line); the invalidated
    // previous owners take true-sharing misses when they return.
    for (CpuId w = 0; w < 3; w++)
        access(w, 0x0, true);
    EXPECT_EQ(l2State(2, 0x0), Mesi::Modified);
    EXPECT_FALSE(l2Holds(0, 0x0));
    EXPECT_FALSE(l2Holds(1, 0x0));

    AccessOutcome back0 = access(0, 0x0, false);
    EXPECT_EQ(back0.missKind, MissKind::TrueSharing);
    AccessOutcome back1 = access(1, 0x0, false);
    EXPECT_EQ(back1.missKind, MissKind::TrueSharing);
}

TEST_F(MesiTest, NoCoherenceTrafficForPrivateData)
{
    // Four CPUs working on disjoint lines: no upgrades, no sharing
    // misses, no invalidations ever.
    for (CpuId c = 0; c < 4; c++) {
        for (int i = 0; i < 50; i++) {
            access(c, 0x100000ull * (c + 1) + i * 64, (i & 1) != 0);
        }
    }
    CpuMemStats t = mem.totalStats();
    EXPECT_EQ(t.missCount[static_cast<int>(MissKind::TrueSharing)], 0u);
    EXPECT_EQ(t.missCount[static_cast<int>(MissKind::FalseSharing)],
              0u);
    EXPECT_EQ(mem.busStats().upgradeTxns, 0u);
}

TEST_F(MesiTest, AuditPassesAfterMixedTraffic)
{
    Rng rng(42);
    for (int i = 0; i < 5000; i++) {
        CpuId cpu = static_cast<CpuId>(rng.below(4));
        VAddr va = rng.below(64) * 64;
        access(cpu, va, rng.below(3) == 0);
    }
    mem.auditInvariants();
}

TEST_F(MesiTest, AuditPassesAfterPrefetchTraffic)
{
    for (int i = 0; i < 32; i++)
        access(0, i * config.pageBytes, false);
    for (int i = 0; i < 32; i++)
        mem.prefetch(0, i * config.pageBytes + 64, 1000000 + i * 50);
    for (int i = 0; i < 32; i++)
        access(1, i * config.pageBytes + 64, true);
    mem.auditInvariants();
}

} // namespace
} // namespace cdpc
