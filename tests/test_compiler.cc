/**
 * @file
 * Tests for the compiler passes: access-pattern analysis,
 * parallelizer suppression, prefetch insertion, alignment.
 */

#include <gtest/gtest.h>

#include <algorithm>

#include "compiler/compiler.h"
#include "workloads/builder.h"

namespace cdpc
{
namespace
{

/** A program with one row-partitioned stencil over two arrays. */
Program
analysisProgram()
{
    ProgramBuilder b("analysis");
    std::uint32_t a = b.array2d("a", 32, 64);
    std::uint32_t o = b.array2d("o", 32, 64);
    Phase ph;
    ph.name = "p";
    LoopNest nest;
    nest.label = "stencil";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {30, 64};
    nest.instsPerIter = 100;
    nest.refs = {
        b.at2(a, 0, 1, 0, 0),
        b.at2(a, 0, 1, -1, 0), // reads the lower neighbour's row
        b.at2(o, 0, 1, 0, 0, true),
    };
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    return p;
}

// ---- Analysis ---------------------------------------------------------------

TEST(Analysis, PartitionUnitIsRowBytes)
{
    Program p = analysisProgram();
    AccessSummaries s = analyzeProgram(p);
    ASSERT_EQ(s.partitions.size(), 2u);
    for (const ArrayPartitionSummary &part : s.partitions) {
        EXPECT_EQ(part.unitBytes, 64u * 8u);
        EXPECT_EQ(part.numUnits, 32u);
        EXPECT_EQ(part.policy, PartitionPolicy::Even);
        EXPECT_EQ(part.sizeBytes, 32u * 64u * 8u);
    }
}

TEST(Analysis, ShiftCommDetectedWithDirection)
{
    Program p = analysisProgram();
    AccessSummaries s = analyzeProgram(p);
    ASSERT_EQ(s.comms.size(), 1u);
    EXPECT_EQ(s.comms[0].arrayId, p.arrayId("a"));
    EXPECT_EQ(s.comms[0].type, CommType::Shift);
    EXPECT_EQ(s.comms[0].boundaryUnits, 1u);
    EXPECT_EQ(s.comms[0].dir, CommDir::Low);
}

TEST(Analysis, BothDirectionsMerge)
{
    Program p = analysisProgram();
    AffineRef up = p.steady[0].nests[0].refs[1];
    up.constElems = 64; // also read the upper neighbour
    p.steady[0].nests[0].refs.push_back(up);
    AccessSummaries s = analyzeProgram(p);
    ASSERT_EQ(s.comms.size(), 1u);
    EXPECT_EQ(s.comms[0].dir, CommDir::Both);
}

TEST(Analysis, GroupAccessPairs)
{
    Program p = analysisProgram();
    AccessSummaries s = analyzeProgram(p);
    ASSERT_EQ(s.groups.size(), 1u);
    GroupAccessPair g = s.groups[0];
    EXPECT_TRUE((g.arrayA == 0 && g.arrayB == 1) ||
                (g.arrayA == 1 && g.arrayB == 0));
}

TEST(Analysis, DuplicatePartitionsDeduped)
{
    Program p = analysisProgram();
    // Clone the nest: same partitions should not duplicate.
    p.steady[0].nests.push_back(p.steady[0].nests[0]);
    AccessSummaries s = analyzeProgram(p);
    EXPECT_EQ(s.partitions.size(), 2u);
}

TEST(Analysis, WrappedRefMarksArrayUnanalyzable)
{
    Program p = analysisProgram();
    AffineRef &r = p.steady[0].nests[0].refs[0];
    r.wrapModElems = 2048;
    AccessSummaries s = analyzeProgram(p);
    EXPECT_FALSE(s.isAnalyzable(0));
    EXPECT_TRUE(s.isAnalyzable(1));
    // No partition survives for array 0.
    for (const ArrayPartitionSummary &part : s.partitions)
        EXPECT_NE(part.arrayId, 0u);
}

TEST(Analysis, AuthorFlaggedArrayUnanalyzable)
{
    Program p = analysisProgram();
    p.arrays[1].summarizable = false;
    AccessSummaries s = analyzeProgram(p);
    EXPECT_FALSE(s.isAnalyzable(1));
}

TEST(Analysis, MidDimensionPartitionSkipped)
{
    Program p = analysisProgram();
    // Make the parallel loop drive the *column* index (smaller
    // stride than the row term): footprint not contiguous, so no
    // partition summary may be emitted.
    LoopNest &nest = p.steady[0].nests[0];
    nest.refs = {nest.refs[0]};
    nest.refs[0].terms = {{0, 1}, {1, 64}};
    AccessSummaries s = analyzeProgram(p);
    EXPECT_TRUE(s.partitions.empty());
}

TEST(Analysis, ReplicatedAccessYieldsNoPartition)
{
    Program p = analysisProgram();
    LoopNest &nest = p.steady[0].nests[0];
    // Remove the parallel-dim dependence from all refs to array a.
    nest.refs = {nest.refs[0]};
    nest.refs[0].terms = {{1, 1}};
    AccessSummaries s = analyzeProgram(p);
    EXPECT_TRUE(s.partitions.empty());
    EXPECT_TRUE(s.isAnalyzable(0));
}

TEST(Analysis, ArrayExtentsReported)
{
    Program p = analysisProgram();
    AccessSummaries s = analyzeProgram(p);
    ASSERT_EQ(s.arrays.size(), 2u);
    EXPECT_EQ(s.arrays[0].start, p.arrays[0].base);
    EXPECT_EQ(s.arrays[0].sizeBytes, p.arrays[0].sizeBytes());
    EXPECT_TRUE(s.arrays[0].analyzable);
}

TEST(Analysis, DeclaredRotateCommIncluded)
{
    Program p = analysisProgram();
    p.declaredComms.push_back(DeclaredComm{p.arrayId("o"), true, 1});
    AccessSummaries s = analyzeProgram(p);
    bool found = false;
    for (const CommPatternSummary &c : s.comms) {
        if (c.arrayId == p.arrayId("o")) {
            found = true;
            EXPECT_EQ(c.type, CommType::Rotate);
            EXPECT_EQ(c.dir, CommDir::Both);
        }
    }
    EXPECT_TRUE(found);
}

TEST(Analysis, DeclaredCommMergesWithDetected)
{
    Program p = analysisProgram();
    // Array "a" already has a detected Shift; declaring a wider one
    // merges rather than duplicates.
    p.declaredComms.push_back(DeclaredComm{p.arrayId("a"), false, 2});
    AccessSummaries s = analyzeProgram(p);
    int count = 0;
    for (const CommPatternSummary &c : s.comms) {
        if (c.arrayId == p.arrayId("a") && c.type == CommType::Shift) {
            count++;
            EXPECT_EQ(c.boundaryUnits, 2u);
            EXPECT_EQ(c.dir, CommDir::Both);
        }
    }
    EXPECT_EQ(count, 1);
}

TEST(Analysis, DeclaredCommBadArrayRejected)
{
    Program p = analysisProgram();
    p.declaredComms.push_back(DeclaredComm{99, true, 1});
    EXPECT_THROW(analyzeProgram(p), FatalError);
}

// ---- Parallelizer -------------------------------------------------------------

TEST(Parallelizer, SuppressesFineGrainNests)
{
    Program p = analysisProgram();
    LoopNest tiny = p.steady[0].nests[0];
    tiny.label = "tiny";
    tiny.bounds = {4, 4};
    p.steady[0].nests.push_back(tiny);
    ParallelizerResult r = parallelize(p);
    EXPECT_EQ(r.parallelNests, 1u);
    EXPECT_EQ(r.suppressedNests, 1u);
    EXPECT_EQ(p.steady[0].nests[1].kind, NestKind::Suppressed);
    EXPECT_EQ(p.steady[0].nests[0].kind, NestKind::Parallel);
}

TEST(Parallelizer, SequentialNestsUntouched)
{
    Program p = analysisProgram();
    p.steady[0].nests[0].kind = NestKind::Sequential;
    ParallelizerResult r = parallelize(p);
    EXPECT_EQ(r.sequentialNests, 1u);
    EXPECT_EQ(p.steady[0].nests[0].kind, NestKind::Sequential);
}

TEST(Parallelizer, ThresholdConfigurable)
{
    Program p = analysisProgram();
    ParallelizerOptions opts;
    opts.suppressionThresholdInsts = 1ULL << 40;
    parallelize(p, opts);
    EXPECT_EQ(p.steady[0].nests[0].kind, NestKind::Suppressed);
}

// ---- Prefetcher -------------------------------------------------------------

Program
prefetchProgram()
{
    ProgramBuilder b("pf");
    std::uint32_t big = b.array2d("big", 512, 512);   // 2MB
    std::uint32_t small = b.array1d("small", 128);    // 1KB
    Phase ph;
    ph.name = "p";
    LoopNest nest;
    nest.label = "sweep";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {512, 512};
    nest.instsPerIter = 8;
    nest.refs = {
        b.at2(big, 0, 1, 0, 0),
        b.at2(big, 0, 1, 0, 1), // group partner < 1 line away
        b.at1(small, 1, 0, 5),  // zero innermost stride
    };
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    return p;
}

TEST(Prefetcher, AnnotatesLeadingBigArrayRef)
{
    Program p = prefetchProgram();
    PrefetcherResult r = insertPrefetches(p);
    EXPECT_EQ(r.refsAnnotated, 1u);
    EXPECT_GT(p.steady[0].nests[0].refs[0].prefetchDistLines, 0u);
    EXPECT_FALSE(p.steady[0].nests[0].refs[0].prefetchLate);
}

TEST(Prefetcher, SkipsGroupReuse)
{
    Program p = prefetchProgram();
    PrefetcherResult r = insertPrefetches(p);
    EXPECT_EQ(r.refsSkippedGroupReuse, 1u);
    EXPECT_EQ(p.steady[0].nests[0].refs[1].prefetchDistLines, 0u);
}

TEST(Prefetcher, SkipsZeroStrideAndSmallArrays)
{
    Program p = prefetchProgram();
    PrefetcherResult r = insertPrefetches(p);
    EXPECT_EQ(r.refsSkippedSmallArray, 1u);
    EXPECT_EQ(p.steady[0].nests[0].refs[2].prefetchDistLines, 0u);
    (void)r;
}

TEST(Prefetcher, DistanceCoversLatency)
{
    Program p = prefetchProgram();
    PrefetcherOptions opts;
    opts.targetLatency = 400;
    insertPrefetches(p, opts);
    // 8 insts/iter, 8 elems/line -> 64 insts/line; 400/64 + 1 = 8.
    EXPECT_EQ(p.steady[0].nests[0].refs[0].prefetchDistLines, 7u + 1u);
}

TEST(Prefetcher, InhibitedNestsGetLatePrefetch)
{
    Program p = prefetchProgram();
    p.steady[0].nests[0].prefetchPipelineInhibited = true;
    insertPrefetches(p);
    const AffineRef &r = p.steady[0].nests[0].refs[0];
    EXPECT_EQ(r.prefetchDistLines, 1u);
    EXPECT_TRUE(r.prefetchLate);
}

TEST(Prefetcher, ClearRemovesAnnotations)
{
    Program p = prefetchProgram();
    insertPrefetches(p);
    clearPrefetches(p);
    for (const AffineRef &r : p.steady[0].nests[0].refs) {
        EXPECT_EQ(r.prefetchDistLines, 0u);
        EXPECT_FALSE(r.prefetchLate);
    }
}

// ---- Aligner -------------------------------------------------------------

TEST(Aligner, PartnersGetDistinctL1Offsets)
{
    ProgramBuilder b("align");
    // Three arrays exactly one L1 span each: without padding they
    // would all start at L1 offset 0.
    std::vector<std::uint32_t> ids;
    for (const char *nm : {"x", "y", "z"})
        ids.push_back(b.array1d(nm, 2048 / 8));
    Phase ph;
    ph.name = "p";
    LoopNest nest;
    nest.label = "n";
    nest.kind = NestKind::Parallel;
    nest.bounds = {256};
    nest.instsPerIter = 400;
    for (std::uint32_t id : ids)
        nest.refs.push_back(b.at1(id, 0));
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();

    AccessSummaries pre = analyzeProgram(p);
    AlignerOptions opts;
    opts.l1SpanBytes = 2048;
    LayoutOptions layout = computeAlignedLayout(p, pre.groups, opts);
    assignAddresses(p, layout);

    std::set<std::uint64_t> offsets;
    for (const ArrayDecl &a : p.arrays) {
        EXPECT_EQ(a.base % opts.lineBytes, 0u);
        offsets.insert(a.base % opts.l1SpanBytes);
    }
    EXPECT_EQ(offsets.size(), p.arrays.size());
}

TEST(Aligner, UnalignedLayoutIsUnaligned)
{
    LayoutOptions layout = computeUnalignedLayout();
    EXPECT_TRUE(layout.deliberatelyUnaligned);
    EXPECT_FALSE(layout.alignToLine);
}

// ---- Driver ---------------------------------------------------------------

TEST(CompilerDriver, EndToEnd)
{
    Program p = analysisProgram();
    CompilerOptions opts;
    opts.prefetch = true;
    // The test arrays are small; lower the selectivity bar.
    opts.prefetcher.minArrayBytes = 1024;
    CompileResult res = compileProgram(p, opts);
    EXPECT_FALSE(res.summaries.partitions.empty());
    EXPECT_GT(res.prefetcher.refsAnnotated, 0u);
    EXPECT_GT(p.arrays[0].base, 0u);
    // Summaries carry post-layout addresses.
    EXPECT_EQ(res.summaries.partitions[0].start,
              p.arrays[res.summaries.partitions[0].arrayId].base);
}

TEST(CompilerDriver, NoPrefetchClearsAnnotations)
{
    Program p = analysisProgram();
    CompilerOptions with;
    with.prefetch = true;
    compileProgram(p, with);
    CompilerOptions without;
    compileProgram(p, without);
    for (const AffineRef &r : p.steady[0].nests[0].refs)
        EXPECT_EQ(r.prefetchDistLines, 0u);
}

} // namespace
} // namespace cdpc
