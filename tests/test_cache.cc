/**
 * @file
 * Tests for the set-associative cache tag array.
 */

#include <gtest/gtest.h>

#include "mem/cache.h"

namespace cdpc
{
namespace
{

CacheConfig
smallCache(std::uint32_t assoc = 1)
{
    return CacheConfig{1024, assoc, 64}; // 16 lines
}

TEST(Cache, MissOnEmpty)
{
    Cache c(smallCache());
    EXPECT_EQ(c.access(0, 0), nullptr);
    EXPECT_EQ(c.stats().accesses, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, HitAfterInsert)
{
    Cache c(smallCache());
    c.insert(0x100, 4, Mesi::Shared);
    CacheLine *l = c.access(0x100, 4);
    ASSERT_NE(l, nullptr);
    EXPECT_EQ(l->lineAddr, 4u);
    EXPECT_EQ(l->state, Mesi::Shared);
    EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, DirectMappedConflictEvicts)
{
    Cache c(smallCache(1));
    // Two lines mapping to the same set (index addr differs by the
    // cache size).
    c.insert(0x000, 1, Mesi::Shared);
    CacheLine victim;
    c.insert(0x400, 2, Mesi::Modified, &victim);
    EXPECT_EQ(victim.lineAddr, 1u);
    EXPECT_EQ(c.access(0x000, 1), nullptr);
    EXPECT_NE(c.access(0x400, 2), nullptr);
    EXPECT_EQ(c.stats().evictions, 1u);
}

TEST(Cache, TwoWayHoldsBothConflictingLines)
{
    Cache c(smallCache(2));
    c.insert(0x000, 1, Mesi::Shared);
    c.insert(0x400, 2, Mesi::Shared);
    EXPECT_NE(c.access(0x000, 1), nullptr);
    EXPECT_NE(c.access(0x400, 2), nullptr);
    EXPECT_EQ(c.stats().evictions, 0u);
}

TEST(Cache, TrueLruEviction)
{
    Cache c(smallCache(2));
    c.insert(0x000, 1, Mesi::Shared);
    c.insert(0x400, 2, Mesi::Shared);
    // Touch line 1 so line 2 becomes LRU.
    c.access(0x000, 1);
    CacheLine victim;
    c.insert(0x800, 3, Mesi::Shared, &victim);
    EXPECT_EQ(victim.lineAddr, 2u);
    EXPECT_NE(c.probe(0x000, 1), nullptr);
    EXPECT_EQ(c.probe(0x400, 2), nullptr);
}

TEST(Cache, ProbeDoesNotTouchLruOrStats)
{
    Cache c(smallCache(2));
    c.insert(0x000, 1, Mesi::Shared);
    c.insert(0x400, 2, Mesi::Shared);
    std::uint64_t accesses = c.stats().accesses;
    // Probing line 1 must not refresh it...
    c.probe(0x000, 1);
    EXPECT_EQ(c.stats().accesses, accesses);
    // ...so after touching line 2, line 1 is the LRU victim.
    c.access(0x400, 2);
    CacheLine victim;
    c.insert(0x800, 3, Mesi::Shared, &victim);
    EXPECT_EQ(victim.lineAddr, 1u);
}

TEST(Cache, Invalidate)
{
    Cache c(smallCache());
    c.insert(0x100, 4, Mesi::Modified);
    EXPECT_TRUE(c.invalidate(0x100, 4));
    EXPECT_FALSE(c.invalidate(0x100, 4));
    EXPECT_EQ(c.access(0x100, 4), nullptr);
    EXPECT_EQ(c.stats().invalidations, 1u);
}

TEST(Cache, VirtualIndexPhysicalTag)
{
    // Same physical line reachable through its virtual index only.
    Cache c(smallCache(1));
    c.insert(/*index*/ 0x3c0, /*phys line*/ 99, Mesi::Shared);
    EXPECT_NE(c.probe(0x3c0, 99), nullptr);
    // A different index addr maps to a different set: not found.
    EXPECT_EQ(c.probe(0x000, 99), nullptr);
}

TEST(Cache, ResetClearsEverything)
{
    Cache c(smallCache());
    c.insert(0, 1, Mesi::Shared);
    c.access(0, 1);
    c.reset();
    EXPECT_EQ(c.access(0, 1), nullptr);
    EXPECT_EQ(c.stats().accesses, 1u);
    EXPECT_EQ(c.stats().hits, 0u);
}

TEST(Cache, InsertDuplicatePanics)
{
    Cache c(smallCache(2));
    c.insert(0, 1, Mesi::Shared);
    EXPECT_THROW(c.insert(0, 1, Mesi::Shared), PanicError);
}

TEST(Cache, InsertInvalidStatePanics)
{
    Cache c(smallCache());
    EXPECT_THROW(c.insert(0, 1, Mesi::Invalid), PanicError);
}

/** Property sweep: geometry invariants across configurations. */
class CacheGeometry
    : public ::testing::TestWithParam<
          std::tuple<std::uint64_t, std::uint32_t, std::uint32_t>>
{};

TEST_P(CacheGeometry, CapacityAndResidency)
{
    auto [size, assoc, line] = GetParam();
    Cache c(CacheConfig{size, assoc, line});
    std::uint64_t lines = size / line;

    // Fill exactly to capacity with distinct, set-spread lines.
    for (std::uint64_t i = 0; i < lines; i++)
        c.insert(i * line, i, Mesi::Shared);
    EXPECT_EQ(c.stats().evictions, 0u);

    // Everything still resident.
    for (std::uint64_t i = 0; i < lines; i++)
        EXPECT_NE(c.probe(i * line, i), nullptr) << "line " << i;

    // One more wave evicts exactly one per insertion.
    for (std::uint64_t i = 0; i < lines; i++)
        c.insert(i * line, lines + i, Mesi::Shared);
    EXPECT_EQ(c.stats().evictions, lines);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, CacheGeometry,
    ::testing::Combine(::testing::Values(1024u, 4096u, 128u * 1024u),
                       ::testing::Values(1u, 2u, 4u),
                       ::testing::Values(32u, 64u)));

} // namespace
} // namespace cdpc
