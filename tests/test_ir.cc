/**
 * @file
 * Tests for the IR: arrays, partitions, programs and layout.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "common/logging.h"
#include "ir/array.h"
#include "ir/layout.h"
#include "ir/loop.h"
#include "ir/program.h"

namespace cdpc
{
namespace
{

// ---- ArrayDecl -----------------------------------------------------------

TEST(ArrayDecl, SizesAndStrides)
{
    ArrayDecl a;
    a.name = "m";
    a.elemBytes = 8;
    a.dims = {10, 20, 30};
    EXPECT_EQ(a.elements(), 6000u);
    EXPECT_EQ(a.sizeBytes(), 48000u);
    EXPECT_EQ(a.strideElems(2), 1u);
    EXPECT_EQ(a.strideElems(1), 30u);
    EXPECT_EQ(a.strideElems(0), 600u);
}

TEST(ArrayDecl, EndAddr)
{
    ArrayDecl a;
    a.elemBytes = 8;
    a.dims = {4};
    a.base = 1000;
    EXPECT_EQ(a.endAddr(), 1032u);
}

// ---- Partition -------------------------------------------------------------

TEST(Partition, EvenForwardSplitsContiguously)
{
    Partition p;
    std::uint64_t lo, hi;
    // 10 iterations over 4 CPUs: sizes 3,3,2,2.
    p.range(10, 4, 0, lo, hi);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 3u);
    p.range(10, 4, 3, lo, hi);
    EXPECT_EQ(lo, 8u);
    EXPECT_EQ(hi, 10u);
}

TEST(Partition, BlockedGivesCeilChunks)
{
    Partition p;
    p.policy = PartitionPolicy::Blocked;
    std::uint64_t lo, hi;
    // The paper's applu case: 33 iterations over 16 CPUs -> chunks
    // of 3; only 11 CPUs get work.
    p.range(33, 16, 0, lo, hi);
    EXPECT_EQ(hi - lo, 3u);
    p.range(33, 16, 10, lo, hi);
    EXPECT_EQ(lo, 30u);
    EXPECT_EQ(hi, 33u);
    p.range(33, 16, 11, lo, hi);
    EXPECT_EQ(lo, hi); // idle CPU
}

TEST(Partition, ReverseAssignsChunksBackwards)
{
    Partition p;
    p.dir = PartitionDir::Reverse;
    std::uint64_t lo, hi;
    p.range(8, 4, 0, lo, hi);
    EXPECT_EQ(lo, 6u);
    EXPECT_EQ(hi, 8u);
    p.range(8, 4, 3, lo, hi);
    EXPECT_EQ(lo, 0u);
    EXPECT_EQ(hi, 2u);
}

/**
 * Property: any partition covers every iteration exactly once,
 * across policies, directions, extents and CPU counts.
 */
class PartitionProperty
    : public ::testing::TestWithParam<
          std::tuple<PartitionPolicy, PartitionDir, std::uint64_t,
                     std::uint32_t>>
{};

TEST_P(PartitionProperty, ExactCoverage)
{
    auto [policy, dir, extent, ncpus] = GetParam();
    Partition p{policy, dir};
    std::vector<int> covered(extent, 0);
    for (CpuId c = 0; c < ncpus; c++) {
        std::uint64_t lo, hi;
        p.range(extent, ncpus, c, lo, hi);
        EXPECT_LE(lo, hi);
        EXPECT_LE(hi, extent);
        for (std::uint64_t i = lo; i < hi; i++)
            covered[i]++;
    }
    for (std::uint64_t i = 0; i < extent; i++)
        EXPECT_EQ(covered[i], 1) << "iteration " << i;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PartitionProperty,
    ::testing::Combine(
        ::testing::Values(PartitionPolicy::Even,
                          PartitionPolicy::Blocked),
        ::testing::Values(PartitionDir::Forward, PartitionDir::Reverse),
        ::testing::Values(1u, 7u, 33u, 128u, 1000u),
        ::testing::Values(1u, 2u, 8u, 16u)));

// ---- Program ---------------------------------------------------------------

Program
tinyProgram()
{
    Program p;
    p.name = "tiny";
    ArrayDecl a;
    a.name = "a";
    a.dims = {16};
    p.arrays.push_back(a);
    LoopNest nest;
    nest.label = "sweep";
    nest.bounds = {16};
    nest.kind = NestKind::Parallel;
    AffineRef r;
    r.arrayId = 0;
    r.terms = {{0, 1}};
    nest.refs.push_back(r);
    Phase ph;
    ph.name = "main";
    ph.nests.push_back(nest);
    p.steady.push_back(ph);
    return p;
}

TEST(Program, ValidatesCleanProgram)
{
    EXPECT_NO_THROW(tinyProgram().validate());
}

TEST(Program, RejectsNoArrays)
{
    Program p = tinyProgram();
    p.arrays.clear();
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, RejectsEmptySteadyState)
{
    Program p = tinyProgram();
    p.steady.clear();
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, RejectsBadArrayRef)
{
    Program p = tinyProgram();
    p.steady[0].nests[0].refs[0].arrayId = 5;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, RejectsBadLoopDim)
{
    Program p = tinyProgram();
    p.steady[0].nests[0].refs[0].terms[0].loopDim = 3;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, RejectsZeroBound)
{
    Program p = tinyProgram();
    p.steady[0].nests[0].bounds[0] = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, RejectsZeroOccurrences)
{
    Program p = tinyProgram();
    p.steady[0].occurrences = 0;
    EXPECT_THROW(p.validate(), FatalError);
}

TEST(Program, ArrayIdLookup)
{
    Program p = tinyProgram();
    EXPECT_EQ(p.arrayId("a"), 0u);
    EXPECT_THROW(p.arrayId("zzz"), FatalError);
}

TEST(Program, DataSetBytesSumsArrays)
{
    Program p = tinyProgram();
    EXPECT_EQ(p.dataSetBytes(), 16u * 8u);
}

// ---- Layout ----------------------------------------------------------------

Program
twoArrayProgram()
{
    Program p = tinyProgram();
    ArrayDecl b;
    b.name = "b";
    b.dims = {10};
    b.elemBytes = 8;
    p.arrays.push_back(b);
    return p;
}

TEST(Layout, SequentialLineAligned)
{
    Program p = twoArrayProgram();
    LayoutOptions opts;
    opts.lineBytes = 64;
    assignAddresses(p, opts);
    EXPECT_EQ(p.arrays[0].base, opts.dataBase);
    EXPECT_EQ(p.arrays[0].base % 64, 0u);
    EXPECT_EQ(p.arrays[1].base % 64, 0u);
    EXPECT_GE(p.arrays[1].base, p.arrays[0].endAddr());
    EXPECT_EQ(p.textBase, opts.textBase);
}

TEST(Layout, PadsApplied)
{
    Program p = twoArrayProgram();
    LayoutOptions opts;
    opts.padBytes = {0, 192};
    assignAddresses(p, opts);
    EXPECT_GE(p.arrays[1].base, p.arrays[0].endAddr() + 192);
}

TEST(Layout, PadVectorArityChecked)
{
    Program p = twoArrayProgram();
    LayoutOptions opts;
    opts.padBytes = {1};
    EXPECT_THROW(assignAddresses(p, opts), FatalError);
}

TEST(Layout, DeliberatelyUnalignedBreaksLineAlignment)
{
    Program p = twoArrayProgram();
    LayoutOptions opts;
    opts.deliberatelyUnaligned = true;
    assignAddresses(p, opts);
    EXPECT_NE(p.arrays[0].base % 64, 0u);
}

TEST(Layout, ArraysNeverOverlap)
{
    Program p = twoArrayProgram();
    for (bool unaligned : {false, true}) {
        LayoutOptions opts;
        opts.deliberatelyUnaligned = unaligned;
        assignAddresses(p, opts);
        EXPECT_GE(p.arrays[1].base, p.arrays[0].endAddr());
    }
}

} // namespace
} // namespace cdpc
