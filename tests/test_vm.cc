/**
 * @file
 * Tests for the VM substrate: physical allocator, mapping policies,
 * hint table and the VirtualMemory facade.
 */

#include <gtest/gtest.h>

#include <set>

#include "common/logging.h"
#include "machine/config.h"
#include "vm/hints.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"

namespace cdpc
{
namespace
{

// ---- PhysMem -----------------------------------------------------------

TEST(PhysMem, ColorOfCyclesThroughColors)
{
    PhysMem pm(64, 16);
    for (PageNum p = 0; p < 64; p++)
        EXPECT_EQ(pm.colorOf(p), p % 16);
}

TEST(PhysMem, PreferredColorHonored)
{
    PhysMem pm(64, 16);
    for (Color c : {3u, 7u, 3u, 15u}) {
        PageNum p = pm.alloc(c);
        EXPECT_EQ(pm.colorOf(p), c);
    }
    EXPECT_EQ(pm.stats().preferredHonored, 4u);
    EXPECT_EQ(pm.stats().preferredDenied, 0u);
}

TEST(PhysMem, FallbackUnderColorPressure)
{
    PhysMem pm(32, 16); // two pages per color
    PageNum a = pm.alloc(5);
    PageNum b = pm.alloc(5);
    EXPECT_EQ(pm.colorOf(a), 5u);
    EXPECT_EQ(pm.colorOf(b), 5u);
    // Color 5 exhausted: the next request falls forward to color 6.
    PageNum c = pm.alloc(5);
    EXPECT_EQ(pm.colorOf(c), 6u);
    EXPECT_EQ(pm.stats().preferredDenied, 1u);
}

TEST(PhysMem, ExhaustionIsFatal)
{
    PhysMem pm(4, 4);
    for (int i = 0; i < 4; i++)
        pm.alloc(kNoColor);
    EXPECT_THROW(pm.alloc(kNoColor), FatalError);
}

TEST(PhysMem, FreeReturnsPageToItsColor)
{
    PhysMem pm(16, 16); // one page per color
    PageNum p = pm.alloc(9);
    EXPECT_EQ(pm.freePagesOfColor(9), 0u);
    pm.free(p);
    EXPECT_EQ(pm.freePagesOfColor(9), 1u);
    EXPECT_EQ(pm.alloc(9), p);
}

TEST(PhysMem, NoPreferenceRotatesColors)
{
    PhysMem pm(64, 16);
    Color c0 = pm.colorOf(pm.alloc(kNoColor));
    Color c1 = pm.colorOf(pm.alloc(kNoColor));
    EXPECT_NE(c0, c1);
    EXPECT_EQ(pm.stats().noPreference, 2u);
}

TEST(PhysMem, AscendingAllocationWithinColor)
{
    PhysMem pm(64, 16);
    PageNum a = pm.alloc(0);
    PageNum b = pm.alloc(0);
    EXPECT_LT(a, b);
}

// ---- Policies ----------------------------------------------------------

TEST(PageColoringPolicy, VpnModuloColors)
{
    PageColoringPolicy p(256);
    EXPECT_EQ(p.preferredColor({0, 0, 1}), 0u);
    EXPECT_EQ(p.preferredColor({255, 0, 1}), 255u);
    EXPECT_EQ(p.preferredColor({256, 0, 1}), 0u);
    EXPECT_EQ(p.preferredColor({1000, 3, 4}), 1000u % 256);
    EXPECT_EQ(p.name(), "page-coloring");
}

TEST(BinHoppingPolicy, CyclesInFaultOrder)
{
    BinHoppingPolicy p(8, false);
    for (std::uint32_t i = 0; i < 20; i++)
        EXPECT_EQ(p.preferredColor({i * 977, 0, 1}), i % 8);
}

TEST(BinHoppingPolicy, ResetRestartsCycle)
{
    BinHoppingPolicy p(8, false);
    p.preferredColor({1, 0, 1});
    p.preferredColor({2, 0, 1});
    p.reset();
    EXPECT_EQ(p.preferredColor({3, 0, 1}), 0u);
}

TEST(BinHoppingPolicy, RacyPerturbationBounded)
{
    BinHoppingPolicy p(64, true, 123);
    // With k concurrent faulters the color lands within k slots of
    // the deterministic cursor.
    for (std::uint32_t i = 0; i < 200; i++) {
        Color c = p.preferredColor({i, 0, 4});
        std::uint32_t base = i % 64;
        std::uint32_t delta = (c + 64 - base) % 64;
        EXPECT_LT(delta, 4u) << "fault " << i;
    }
}

TEST(BinHoppingPolicy, RacyIsDeterministicPerSeed)
{
    BinHoppingPolicy a(64, true, 5), b(64, true, 5);
    for (std::uint32_t i = 0; i < 100; i++) {
        EXPECT_EQ(a.preferredColor({i, 0, 8}),
                  b.preferredColor({i, 0, 8}));
    }
}

TEST(BinHoppingPolicy, NoRaceWithSingleFaulter)
{
    BinHoppingPolicy p(16, true, 99);
    for (std::uint32_t i = 0; i < 50; i++)
        EXPECT_EQ(p.preferredColor({i, 0, 1}), i % 16);
}

TEST(RandomPolicy, SeededDeterministicAndInRange)
{
    RandomPolicy a(64, 7), b(64, 7);
    for (std::uint32_t i = 0; i < 200; i++) {
        Color ca = a.preferredColor({i, 0, 1});
        EXPECT_LT(ca, 64u);
        EXPECT_EQ(ca, b.preferredColor({i, 0, 1}));
    }
}

TEST(RandomPolicy, ResetReplaysSequence)
{
    RandomPolicy p(64, 7);
    Color first = p.preferredColor({0, 0, 1});
    p.preferredColor({1, 0, 1});
    p.reset();
    EXPECT_EQ(p.preferredColor({0, 0, 1}), first);
}

TEST(RandomPolicy, CoversTheColorSpace)
{
    RandomPolicy p(16, 3);
    std::set<Color> seen;
    for (std::uint32_t i = 0; i < 500; i++)
        seen.insert(p.preferredColor({i, 0, 1}));
    EXPECT_EQ(seen.size(), 16u);
}

TEST(HashPolicy, DeterministicAndInRange)
{
    HashPolicy p(256);
    for (PageNum v : {0ull, 255ull, 256ull, 123456789ull}) {
        Color c1 = p.preferredColor({v, 0, 1});
        Color c2 = p.preferredColor({v, 0, 1});
        EXPECT_EQ(c1, c2);
        EXPECT_LT(c1, 256u);
    }
}

TEST(HashPolicy, BreaksCacheSpanAliasing)
{
    // The pathology hash coloring exists to break: pages exactly one
    // color-span apart alias under plain page coloring. Hashing must
    // separate most such pairs.
    HashPolicy p(256);
    int aliased = 0;
    for (PageNum base = 1; base <= 64; base++) {
        Color c1 = p.preferredColor({base * 256, 0, 1});
        Color c2 = p.preferredColor({(base + 1) * 256, 0, 1});
        if (c1 == c2)
            aliased++;
    }
    EXPECT_LT(aliased, 8);
}

// ---- CdpcHintPolicy ------------------------------------------------------

TEST(CdpcHintPolicy, HintsOverrideFallback)
{
    PageColoringPolicy base(16);
    CdpcHintPolicy hints(base);
    hints.madviseColors({{100, 7}, {101, 3}});
    EXPECT_EQ(hints.preferredColor({100, 0, 1}), 7u);
    EXPECT_EQ(hints.preferredColor({101, 0, 1}), 3u);
    EXPECT_EQ(hints.preferredColor({102, 0, 1}), 102u % 16);
    EXPECT_EQ(hints.hintedFaults(), 2u);
    EXPECT_EQ(hints.unhintedFaults(), 1u);
    EXPECT_EQ(hints.name(), "cdpc(page-coloring)");
}

TEST(CdpcHintPolicy, LaterHintsOverwrite)
{
    PageColoringPolicy base(16);
    CdpcHintPolicy hints(base);
    hints.madviseColors({{5, 1}});
    hints.madviseColors({{5, 9}});
    EXPECT_EQ(hints.numHints(), 1u);
    EXPECT_EQ(hints.preferredColor({5, 0, 1}), 9u);
}

TEST(CdpcHintPolicy, ClearHints)
{
    PageColoringPolicy base(16);
    CdpcHintPolicy hints(base);
    hints.madviseColors({{5, 1}});
    hints.clearHints();
    EXPECT_EQ(hints.numHints(), 0u);
    EXPECT_EQ(hints.preferredColor({5, 0, 1}), 5u % 16);
}

// ---- VirtualMemory --------------------------------------------------------

class VirtualMemoryTest : public ::testing::Test
{
  protected:
    VirtualMemoryTest()
        : config(MachineConfig::paperScaled(1)),
          phys(config.physPages, config.numColors()),
          policy(config.numColors()), vm(config, phys, policy)
    {}

    MachineConfig config;
    PhysMem phys;
    PageColoringPolicy policy;
    VirtualMemory vm;
};

TEST_F(VirtualMemoryTest, FaultThenHit)
{
    Translation t1 = vm.translate(0x1000, 0);
    EXPECT_TRUE(t1.faulted);
    Translation t2 = vm.translate(0x1000, 0);
    EXPECT_FALSE(t2.faulted);
    EXPECT_EQ(t1.pa, t2.pa);
    EXPECT_EQ(vm.stats().pageFaults, 1u);
    EXPECT_EQ(vm.stats().translations, 2u);
}

TEST_F(VirtualMemoryTest, OffsetPreservedWithinPage)
{
    Translation t = vm.translate(0x1234, 0);
    EXPECT_EQ(t.pa % config.pageBytes,
              0x1234u % config.pageBytes);
}

TEST_F(VirtualMemoryTest, ColorMatchesPolicy)
{
    VAddr va = 77 * config.pageBytes;
    vm.translate(va, 0);
    EXPECT_EQ(vm.colorOf(va),
              static_cast<Color>(77 % config.numColors()));
}

TEST_F(VirtualMemoryTest, TranslateIfMapped)
{
    EXPECT_FALSE(vm.translateIfMapped(0x5000).has_value());
    vm.touch(0x5000, 0);
    EXPECT_TRUE(vm.translateIfMapped(0x5000).has_value());
    EXPECT_TRUE(vm.isMapped(0x5000));
    EXPECT_FALSE(vm.isMapped(0x9000));
}

TEST_F(VirtualMemoryTest, ColorOfUnmappedPanics)
{
    EXPECT_THROW(vm.colorOf(0xdead000), PanicError);
}

TEST_F(VirtualMemoryTest, UnmapAllReturnsPages)
{
    std::uint64_t before = phys.freePages();
    vm.touch(0x1000, 0);
    vm.touch(0x2000, 0);
    EXPECT_EQ(phys.freePages(), before - 2);
    vm.unmapAll();
    EXPECT_EQ(phys.freePages(), before);
    EXPECT_EQ(vm.mappedPages(), 0u);
}

} // namespace
} // namespace cdpc
