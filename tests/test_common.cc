/**
 * @file
 * Tests for logging, statistics, tables and the RNG.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "common/stats.h"
#include "common/table.h"

namespace cdpc
{
namespace
{

TEST(Logging, PanicThrowsLogicError)
{
    EXPECT_THROW(panic("boom ", 42), PanicError);
    try {
        panic("value=", 7);
    } catch (const PanicError &e) {
        EXPECT_STREQ(e.what(), "panic: value=7");
    }
}

TEST(Logging, FatalThrowsRuntimeError)
{
    EXPECT_THROW(fatal("bad config"), FatalError);
    try {
        fatal("n=", 3, " too big");
    } catch (const FatalError &e) {
        EXPECT_STREQ(e.what(), "fatal: n=3 too big");
    }
}

TEST(Logging, ConditionalHelpers)
{
    EXPECT_NO_THROW(panicIfNot(true, "fine"));
    EXPECT_THROW(panicIfNot(false, "bad"), PanicError);
    EXPECT_NO_THROW(fatalIf(false, "fine"));
    EXPECT_THROW(fatalIf(true, "bad"), FatalError);
}

TEST(Logging, QuietToggle)
{
    bool was = isQuiet();
    setQuiet(true);
    EXPECT_TRUE(isQuiet());
    warn("should be invisible");
    inform("also invisible");
    setQuiet(was);
}

TEST(Distribution, Basic)
{
    Distribution d;
    EXPECT_EQ(d.count(), 0u);
    EXPECT_DOUBLE_EQ(d.mean(), 0.0);
    d.sample(2.0);
    d.sample(4.0);
    d.sample(6.0);
    EXPECT_EQ(d.count(), 3u);
    EXPECT_DOUBLE_EQ(d.mean(), 4.0);
    EXPECT_DOUBLE_EQ(d.min(), 2.0);
    EXPECT_DOUBLE_EQ(d.max(), 6.0);
    EXPECT_NEAR(d.stddev(), 1.63299, 1e-4);
    d.reset();
    EXPECT_EQ(d.count(), 0u);
}

TEST(Distribution, SingleSampleHasZeroStddev)
{
    Distribution d;
    d.sample(5.0);
    EXPECT_DOUBLE_EQ(d.stddev(), 0.0);
}

TEST(Histogram, BucketsAndClamping)
{
    Histogram h(4, 10.0);
    h.sample(0.0);
    h.sample(9.9);
    h.sample(10.0);
    h.sample(35.0);
    h.sample(1000.0); // clamps into the last bucket
    h.sample(-3.0);   // clamps into the first
    EXPECT_EQ(h.bucketCount(0), 3u);
    EXPECT_EQ(h.bucketCount(1), 1u);
    EXPECT_EQ(h.bucketCount(2), 0u);
    EXPECT_EQ(h.bucketCount(3), 2u);
    EXPECT_EQ(h.total(), 6u);
}

TEST(Histogram, RejectsBadShape)
{
    EXPECT_THROW(Histogram(0, 1.0), FatalError);
    EXPECT_THROW(Histogram(4, 0.0), FatalError);
}

TEST(GeometricMean, Basics)
{
    EXPECT_DOUBLE_EQ(geometricMean({4.0}), 4.0);
    EXPECT_DOUBLE_EQ(geometricMean({1.0, 4.0}), 2.0);
    EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
    EXPECT_THROW(geometricMean({}), FatalError);
    EXPECT_THROW(geometricMean({1.0, 0.0}), FatalError);
    EXPECT_THROW(geometricMean({-1.0}), FatalError);
}

TEST(Format, Bytes)
{
    EXPECT_EQ(formatBytes(0), "0B");
    EXPECT_EQ(formatBytes(512), "512B");
    EXPECT_EQ(formatBytes(2048), "2KB");
    EXPECT_EQ(formatBytes(128 * 1024), "128KB");
    EXPECT_EQ(formatBytes(14 * 1024 * 1024), "14.0MB");
}

TEST(Format, Percent)
{
    EXPECT_EQ(formatPercent(0.5), "50.0%");
    EXPECT_EQ(formatPercent(0.123, 2), "12.30%");
}

TEST(TextTable, RendersAligned)
{
    TextTable t({"name", "value"});
    t.addRow({"a", "1"});
    t.addRow({"long-name", "123"});
    std::string out = t.render();
    EXPECT_NE(out.find("| name"), std::string::npos);
    EXPECT_NE(out.find("long-name"), std::string::npos);
    // Numeric cells right-align.
    EXPECT_NE(out.find("  1 |"), std::string::npos);
}

TEST(TextTable, EnforcesArity)
{
    TextTable t({"a", "b"});
    EXPECT_THROW(t.addRow({"only-one"}), FatalError);
    EXPECT_THROW(TextTable({}), FatalError);
}

TEST(TextTable, SeparatorRows)
{
    TextTable t({"x"});
    t.addRow({"1"});
    t.addSeparator();
    t.addRow({"2"});
    std::string out = t.render();
    // Header separator plus the explicit one.
    std::size_t first = out.find("|---");
    ASSERT_NE(first, std::string::npos);
    EXPECT_NE(out.find("|---", first + 1), std::string::npos);
}

TEST(TextBar, Proportional)
{
    EXPECT_EQ(textBar(0.0, 10.0, 10), "          ");
    EXPECT_EQ(textBar(10.0, 10.0, 10), "##########");
    EXPECT_EQ(textBar(5.0, 10.0, 10), "#####     ");
    // Values beyond max clamp.
    EXPECT_EQ(textBar(20.0, 10.0, 4), "####");
}

TEST(Format, ThousandsSeparators)
{
    EXPECT_EQ(fmtI(0), "0");
    EXPECT_EQ(fmtI(999), "999");
    EXPECT_EQ(fmtI(1000), "1,000");
    EXPECT_EQ(fmtI(1234567), "1,234,567");
}

TEST(Rng, DeterministicPerSeed)
{
    Rng a(42), b(42), c(43);
    EXPECT_EQ(a.next(), b.next());
    EXPECT_EQ(a.next(), b.next());
    EXPECT_NE(a.next(), c.next());
}

TEST(Rng, BelowRespectsBound)
{
    Rng r(7);
    for (int i = 0; i < 1000; i++)
        EXPECT_LT(r.below(17), 17u);
}

TEST(Rng, RealInUnitInterval)
{
    Rng r(9);
    for (int i = 0; i < 1000; i++) {
        double v = r.real();
        EXPECT_GE(v, 0.0);
        EXPECT_LT(v, 1.0);
    }
}

TEST(Rng, ZeroSeedStillWorks)
{
    Rng r(0);
    EXPECT_NE(r.next(), 0u);
}

} // namespace
} // namespace cdpc
