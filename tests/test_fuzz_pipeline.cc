/**
 * @file
 * Randomized whole-pipeline property tests: generate structurally
 * random (but valid) programs from seeds and assert that every stage
 * — validation, transposition, analysis, planning, simulation —
 * upholds its invariants on inputs nobody hand-crafted.
 */

#include <gtest/gtest.h>

#include <set>

#include "cdpc/runtime.h"
#include "common/random.h"
#include "compiler/compiler.h"
#include "harness/experiment.h"
#include "workloads/builder.h"

namespace cdpc
{
namespace
{

/** Generate a random valid program from a seed. */
Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b("fuzz-" + std::to_string(seed));

    std::uint32_t narrays = 2 + static_cast<std::uint32_t>(rng.below(5));
    std::vector<std::uint32_t> arrays;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> shapes;
    for (std::uint32_t i = 0; i < narrays; i++) {
        std::uint64_t rows = 8 + rng.below(120);
        std::uint64_t cols = 8 + rng.below(120);
        arrays.push_back(
            b.array2d("arr" + std::to_string(i), rows, cols));
        shapes.emplace_back(rows, cols);
        if (rng.below(8) == 0)
            b.markUnanalyzable(arrays.back());
    }

    b.initNest(interleavedInit2d(b, {arrays[0]}, shapes[0].first,
                                 shapes[0].second));

    std::uint32_t nphases = 1 + static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t ph = 0; ph < nphases; ph++) {
        Phase phase;
        phase.name = "phase" + std::to_string(ph);
        phase.occurrences = 1 + rng.below(40);
        std::uint32_t nnests =
            1 + static_cast<std::uint32_t>(rng.below(3));
        for (std::uint32_t n = 0; n < nnests; n++) {
            // Every nest iterates the shape of one "driver" array and
            // only references arrays at in-range offsets of it.
            std::uint32_t driver =
                static_cast<std::uint32_t>(rng.below(narrays));
            auto [rows, cols] = shapes[driver];
            LoopNest nest;
            nest.label = "nest" + std::to_string(n);
            switch (rng.below(4)) {
              case 0:
                nest.kind = NestKind::Sequential;
                break;
              case 1:
                nest.kind = NestKind::Suppressed;
                break;
              default:
                nest.kind = NestKind::Parallel;
            }
            nest.parallelDim = 0;
            if (rng.below(3) == 0)
                nest.partition.policy = PartitionPolicy::Blocked;
            nest.bounds = {rows - 2, cols - 2};
            nest.instsPerIter =
                4 + static_cast<std::uint32_t>(rng.below(60));
            std::uint32_t nrefs =
                1 + static_cast<std::uint32_t>(rng.below(4));
            for (std::uint32_t r = 0; r < nrefs; r++) {
                // Reference the driver (always shape-safe) or another
                // array wrapped to its own size (also safe).
                if (rng.below(4) != 0) {
                    std::int64_t di =
                        static_cast<std::int64_t>(rng.below(3)) - 1;
                    std::int64_t dj =
                        static_cast<std::int64_t>(rng.below(3)) - 1;
                    nest.refs.push_back(
                        b.at2(arrays[driver], 0, 1, 1 + di, 1 + dj,
                              rng.below(3) == 0));
                } else {
                    std::uint32_t other = static_cast<std::uint32_t>(
                        rng.below(narrays));
                    nest.refs.push_back(
                        b.gather1(arrays[other], 1,
                                  static_cast<std::int64_t>(
                                      3 + rng.below(977)),
                                  rng.below(3) == 0));
                }
            }
            phase.nests.push_back(nest);
        }
        b.phase(phase);
    }
    return b.build();
}

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzPipeline, CompileAnalyzePlanInvariants)
{
    Program p = randomProgram(GetParam());
    MachineConfig m = MachineConfig::paperScaled(
        1u << (GetParam() % 4)); // 1..8 CPUs
    CompilerOptions copts;
    copts.aligner.lineBytes = m.l2.lineBytes;
    copts.aligner.l1SpanBytes = m.l1d.sizeBytes / m.l1d.assoc;
    CompileResult compiled = compileProgram(p, copts);

    // Partitions only over analyzable arrays with sane geometry.
    for (const ArrayPartitionSummary &part :
         compiled.summaries.partitions) {
        EXPECT_TRUE(compiled.summaries.isAnalyzable(part.arrayId));
        EXPECT_GT(part.unitBytes, 0u);
        EXPECT_GT(part.numUnits, 0u);
        EXPECT_EQ(part.start, p.arrays[part.arrayId].base);
    }

    CdpcPlan plan = computeCdpcPlan(compiled.summaries, cdpcParams(m));
    std::set<PageNum> seen;
    for (const ColorHint &h : plan.coloring.hints) {
        EXPECT_LT(h.color, m.numColors());
        EXPECT_TRUE(seen.insert(h.vpn).second);
    }
    for (const Segment &seg : plan.segments) {
        EXPECT_FALSE(seg.procs.empty());
        EXPECT_GT(seg.numPages, 0u);
        EXPECT_TRUE(compiled.summaries.isAnalyzable(seg.arrayId));
    }
}

TEST_P(FuzzPipeline, SimulationConservesAndStaysCoherent)
{
    std::uint32_t ncpus = 1u << (GetParam() % 4);
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(ncpus);
    cfg.mapping = (GetParam() % 3 == 0)
                      ? MappingPolicy::Cdpc
                      : (GetParam() % 3 == 1)
                            ? MappingPolicy::BinHopping
                            : MappingPolicy::PageColoring;
    cfg.prefetch = GetParam() % 2 == 0;
    ExperimentResult r = runProgram(randomProgram(GetParam()), cfg);

    const WeightedTotals &t = r.totals;
    EXPECT_GT(t.insts, 0.0);
    double sum = t.busy + t.memStall + t.kernel + t.imbalance +
                 t.sequential + t.suppressed + t.sync;
    EXPECT_NEAR(sum, t.combinedTime(), 1e-6);
    EXPECT_GE(t.wall, 0.0);
    EXPECT_LE(t.busUtilization(), 1.0);

    // Instruction totals are independent of CPU count and policy.
    ExperimentConfig cfg2 = cfg;
    cfg2.machine = MachineConfig::paperScaled(
        ncpus == 1 ? 4 : ncpus / 2);
    cfg2.mapping = MappingPolicy::PageColoring;
    cfg2.prefetch = false;
    ExperimentResult r2 = runProgram(randomProgram(GetParam()), cfg2);
    // Prefetch adds one instruction per prefetched line; compare
    // loosely when prefetch was on.
    double tolerance = cfg.prefetch ? 0.15 * t.insts : 1e-6;
    EXPECT_NEAR(r2.totals.insts, t.insts, tolerance);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<std::uint64_t>(1, 25));

} // namespace
} // namespace cdpc
