/**
 * @file
 * Randomized whole-pipeline property tests: generate structurally
 * random (but valid) programs from seeds and assert that every stage
 * — validation, transposition, analysis, planning, simulation —
 * upholds its invariants on inputs nobody hand-crafted.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <fstream>
#include <set>
#include <sstream>

#include "cdpc/runtime.h"
#include "common/digest.h"
#include "common/faultpoint.h"
#include "common/random.h"
#include "compiler/compiler.h"
#include "compiler/summaries_io.h"
#include "harness/experiment.h"
#include "machine/tracefile.h"
#include "runner/runner.h"
#include "tenant/spec.h"
#include "workloads/builder.h"

namespace cdpc
{
namespace
{

/** Generate a random valid program from a seed. */
Program
randomProgram(std::uint64_t seed)
{
    Rng rng(seed);
    ProgramBuilder b("fuzz-" + std::to_string(seed));

    std::uint32_t narrays = 2 + static_cast<std::uint32_t>(rng.below(5));
    std::vector<std::uint32_t> arrays;
    std::vector<std::pair<std::uint64_t, std::uint64_t>> shapes;
    for (std::uint32_t i = 0; i < narrays; i++) {
        std::uint64_t rows = 8 + rng.below(120);
        std::uint64_t cols = 8 + rng.below(120);
        arrays.push_back(
            b.array2d("arr" + std::to_string(i), rows, cols));
        shapes.emplace_back(rows, cols);
        if (rng.below(8) == 0)
            b.markUnanalyzable(arrays.back());
    }

    b.initNest(interleavedInit2d(b, {arrays[0]}, shapes[0].first,
                                 shapes[0].second));

    std::uint32_t nphases = 1 + static_cast<std::uint32_t>(rng.below(3));
    for (std::uint32_t ph = 0; ph < nphases; ph++) {
        Phase phase;
        phase.name = "phase" + std::to_string(ph);
        phase.occurrences = 1 + rng.below(40);
        std::uint32_t nnests =
            1 + static_cast<std::uint32_t>(rng.below(3));
        for (std::uint32_t n = 0; n < nnests; n++) {
            // Every nest iterates the shape of one "driver" array and
            // only references arrays at in-range offsets of it.
            std::uint32_t driver =
                static_cast<std::uint32_t>(rng.below(narrays));
            auto [rows, cols] = shapes[driver];
            LoopNest nest;
            nest.label = "nest" + std::to_string(n);
            switch (rng.below(4)) {
              case 0:
                nest.kind = NestKind::Sequential;
                break;
              case 1:
                nest.kind = NestKind::Suppressed;
                break;
              default:
                nest.kind = NestKind::Parallel;
            }
            nest.parallelDim = 0;
            if (rng.below(3) == 0)
                nest.partition.policy = PartitionPolicy::Blocked;
            nest.bounds = {rows - 2, cols - 2};
            nest.instsPerIter =
                4 + static_cast<std::uint32_t>(rng.below(60));
            std::uint32_t nrefs =
                1 + static_cast<std::uint32_t>(rng.below(4));
            for (std::uint32_t r = 0; r < nrefs; r++) {
                // Reference the driver (always shape-safe) or another
                // array wrapped to its own size (also safe).
                if (rng.below(4) != 0) {
                    std::int64_t di =
                        static_cast<std::int64_t>(rng.below(3)) - 1;
                    std::int64_t dj =
                        static_cast<std::int64_t>(rng.below(3)) - 1;
                    nest.refs.push_back(
                        b.at2(arrays[driver], 0, 1, 1 + di, 1 + dj,
                              rng.below(3) == 0));
                } else {
                    std::uint32_t other = static_cast<std::uint32_t>(
                        rng.below(narrays));
                    nest.refs.push_back(
                        b.gather1(arrays[other], 1,
                                  static_cast<std::int64_t>(
                                      3 + rng.below(977)),
                                  rng.below(3) == 0));
                }
            }
            phase.nests.push_back(nest);
        }
        b.phase(phase);
    }
    return b.build();
}

class FuzzPipeline : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FuzzPipeline, CompileAnalyzePlanInvariants)
{
    Program p = randomProgram(GetParam());
    MachineConfig m = MachineConfig::paperScaled(
        1u << (GetParam() % 4)); // 1..8 CPUs
    CompilerOptions copts;
    copts.aligner.lineBytes = m.l2.lineBytes;
    copts.aligner.l1SpanBytes = m.l1d.sizeBytes / m.l1d.assoc;
    CompileResult compiled = compileProgram(p, copts);

    // Partitions only over analyzable arrays with sane geometry.
    for (const ArrayPartitionSummary &part :
         compiled.summaries.partitions) {
        EXPECT_TRUE(compiled.summaries.isAnalyzable(part.arrayId));
        EXPECT_GT(part.unitBytes, 0u);
        EXPECT_GT(part.numUnits, 0u);
        EXPECT_EQ(part.start, p.arrays[part.arrayId].base);
    }

    CdpcPlan plan = computeCdpcPlan(compiled.summaries, cdpcParams(m));
    std::set<PageNum> seen;
    for (const ColorHint &h : plan.coloring.hints) {
        EXPECT_LT(h.color, m.numColors());
        EXPECT_TRUE(seen.insert(h.vpn).second);
    }
    for (const Segment &seg : plan.segments) {
        EXPECT_FALSE(seg.procs.empty());
        EXPECT_GT(seg.numPages, 0u);
        EXPECT_TRUE(compiled.summaries.isAnalyzable(seg.arrayId));
    }
}

TEST_P(FuzzPipeline, SimulationConservesAndStaysCoherent)
{
    std::uint32_t ncpus = 1u << (GetParam() % 4);
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(ncpus);
    cfg.mapping = (GetParam() % 3 == 0)
                      ? MappingPolicy::Cdpc
                      : (GetParam() % 3 == 1)
                            ? MappingPolicy::BinHopping
                            : MappingPolicy::PageColoring;
    cfg.prefetch = GetParam() % 2 == 0;
    ExperimentResult r = runProgram(randomProgram(GetParam()), cfg);

    const WeightedTotals &t = r.totals;
    EXPECT_GT(t.insts, 0.0);
    double sum = t.busy + t.memStall + t.kernel + t.imbalance +
                 t.sequential + t.suppressed + t.sync;
    EXPECT_NEAR(sum, t.combinedTime(), 1e-6);
    EXPECT_GE(t.wall, 0.0);
    EXPECT_LE(t.busUtilization(), 1.0);

    // Instruction totals are independent of CPU count and policy.
    ExperimentConfig cfg2 = cfg;
    cfg2.machine = MachineConfig::paperScaled(
        ncpus == 1 ? 4 : ncpus / 2);
    cfg2.mapping = MappingPolicy::PageColoring;
    cfg2.prefetch = false;
    ExperimentResult r2 = runProgram(randomProgram(GetParam()), cfg2);
    // Prefetch adds one instruction per prefetched line; compare
    // loosely when prefetch was on.
    double tolerance = cfg.prefetch ? 0.15 * t.insts : 1e-6;
    EXPECT_NEAR(r2.totals.insts, t.insts, tolerance);
}

/**
 * Lockstep differential verification over random programs: the
 * reference memory system re-executes every reference of every
 * configuration the fuzzer generates; any fast-path shortcut that
 * changes observable behaviour throws a DivergenceError (a
 * PanicError) and fails the test.
 */
TEST_P(FuzzPipeline, FastPathMatchesReferenceModelInLockstep)
{
    std::uint32_t ncpus = 1u << (GetParam() % 4);
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(ncpus);
    cfg.mapping = (GetParam() % 3 == 0)
                      ? MappingPolicy::Cdpc
                      : (GetParam() % 3 == 1)
                            ? MappingPolicy::BinHopping
                            : MappingPolicy::PageColoring;
    cfg.prefetch = GetParam() % 2 == 0;
    cfg.dynamicRecolor = GetParam() % 5 == 0;
    if (GetParam() % 4 == 0)
        cfg.pressure.occupancy = 0.5;
    // Per-event outcome checks run on every reference; the deep
    // structural compare is sampled to keep the fuzz suite fast.
    cfg.verifyEvery = 8192;
    ExperimentResult r = runProgram(randomProgram(GetParam()), cfg);
    EXPECT_GT(r.verifiedRefs, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzPipeline,
                         ::testing::Range<std::uint64_t>(1, 25));

// ---- Corrupt-input robustness ------------------------------------------
//
// The readers' contract under fuzzer-style mutations: load either
// succeeds or throws a typed FatalError. A PanicError (or a crash,
// which the sanitizer CI job would catch) is always a bug.

/** Serialize the summaries of a small random program. */
std::string
summariesBytes(std::uint64_t seed)
{
    Program p = randomProgram(seed);
    CompilerOptions copts;
    MachineConfig m = MachineConfig::paperScaled(4);
    copts.aligner.lineBytes = m.l2.lineBytes;
    copts.aligner.l1SpanBytes = m.l1d.sizeBytes / m.l1d.assoc;
    CompileResult compiled = compileProgram(p, copts);
    std::ostringstream out;
    saveSummaries(compiled.summaries, out);
    return out.str();
}

/** loadSummaries() on @p bytes must succeed or be FatalError. */
void
expectGracefulSummaries(const std::string &bytes)
{
    std::istringstream in(bytes);
    try {
        loadSummaries(in);
    } catch (const FatalError &) {
        // Typed rejection is the expected failure mode.
    }
}

TEST(CorruptSummaries, RoundTripBaseline)
{
    std::string bytes = summariesBytes(1);
    std::istringstream in(bytes);
    AccessSummaries s = loadSummaries(in);
    EXPECT_EQ(s.programName, "fuzz-1");
}

TEST(CorruptSummaries, EveryTruncationIsGraceful)
{
    std::string bytes = summariesBytes(1);
    for (std::size_t len = 0; len < bytes.size(); len++)
        expectGracefulSummaries(bytes.substr(0, len));
}

TEST(CorruptSummaries, SingleByteMutationsAreGraceful)
{
    std::string bytes = summariesBytes(2);
    Rng rng(7);
    for (int i = 0; i < 512; i++) {
        std::string mutated = bytes;
        std::size_t pos = rng.below(mutated.size());
        mutated[pos] = static_cast<char>(rng.below(256));
        expectGracefulSummaries(mutated);
    }
}

TEST(CorruptSummaries, HugeCountsAreRejectedNotAllocated)
{
    // Magic + empty name + an absurd array count: must be a typed
    // error, not a multi-gigabyte allocation attempt.
    std::string bytes(8, '\0');
    std::memcpy(bytes.data(), "CDPCSUM1", 8);
    std::uint64_t zero = 0, huge = ~0ull >> 1;
    bytes.append(reinterpret_cast<char *>(&zero), 8);
    bytes.append(reinterpret_cast<char *>(&huge), 8);
    std::istringstream in(bytes);
    EXPECT_THROW(loadSummaries(in), FatalError);
}

/** Write a tiny valid trace and return its path. */
std::string
writeSmallTrace(const std::string &name, std::uint32_t ncpus,
                std::uint32_t records)
{
    std::string path = ::testing::TempDir() + name;
    TraceWriter w(path, ncpus);
    for (std::uint32_t i = 0; i < records; i++) {
        TraceRecord rec;
        rec.va = i * 64;
        rec.insts = 4;
        rec.wordMask = 1;
        rec.elems = 1;
        rec.cpu = static_cast<std::uint8_t>(i % ncpus);
        w.append(rec);
    }
    w.close();
    return path;
}

/** Reading @p path end to end must succeed or be FatalError. */
void
expectGracefulTrace(const std::string &path)
{
    try {
        TraceReader r(path);
        TraceRecord rec;
        while (r.next(rec)) {
        }
    } catch (const FatalError &) {
    }
}

TEST(CorruptTrace, EveryTruncationIsGraceful)
{
    std::string path = writeSmallTrace("fuzz_trace.bin", 4, 32);
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();

    std::string cut = ::testing::TempDir() + "fuzz_trace_cut.bin";
    for (std::size_t len = 0; len < bytes.size(); len += 3) {
        std::ofstream out(cut, std::ios::binary | std::ios::trunc);
        out.write(bytes.data(), static_cast<std::streamsize>(len));
        out.close();
        expectGracefulTrace(cut);
    }
    std::remove(path.c_str());
    std::remove(cut.c_str());
}

TEST(CorruptTrace, HeaderMutationsAreGraceful)
{
    std::string path = writeSmallTrace("fuzz_trace2.bin", 4, 16);
    std::ifstream in(path, std::ios::binary);
    std::stringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();

    std::string mut = ::testing::TempDir() + "fuzz_trace_mut.bin";
    Rng rng(11);
    for (int i = 0; i < 256; i++) {
        std::string mutated = bytes;
        // Bias mutations toward the header, where lying metadata
        // (record counts, CPU counts) lives.
        std::size_t pos = i % 2 == 0 ? rng.below(24)
                                     : rng.below(mutated.size());
        mutated[pos] = static_cast<char>(rng.below(256));
        std::ofstream out(mut, std::ios::binary | std::ios::trunc);
        out.write(mutated.data(),
                  static_cast<std::streamsize>(mutated.size()));
        out.close();
        expectGracefulTrace(mut);
    }
    std::remove(path.c_str());
    std::remove(mut.c_str());
}

TEST(CorruptTrace, LyingRecordCountIsFatalUpFront)
{
    std::string path = writeSmallTrace("fuzz_trace3.bin", 2, 8);
    // Patch the header's record count to claim more than the file
    // holds (offset 16, uint64).
    std::fstream f(path, std::ios::binary | std::ios::in |
                             std::ios::out);
    std::uint64_t lie = 1u << 20;
    f.seekp(16);
    f.write(reinterpret_cast<char *>(&lie), 8);
    f.close();
    EXPECT_THROW(TraceReader r(path), FatalError);
    std::remove(path.c_str());
}

// ---- Fault-point-driven failure paths ----------------------------------

class FaultPoints : public ::testing::Test
{
  protected:
    void TearDown() override { faultpoints::clear(); }
};

TEST_F(FaultPoints, PlanGrammarParses)
{
    FaultPlan plan = FaultPlan::parse(
        "physmem.alloc=fail*2@10,job.run#x=panic,io=hang250,"
        "summaries.load=fatal");
    ASSERT_EQ(plan.triggers().size(), 4u);
    EXPECT_EQ(plan.triggers()[0].site, "physmem.alloc");
    EXPECT_EQ(plan.triggers()[0].action, FaultAction::Fail);
    EXPECT_EQ(plan.triggers()[0].count, 2u);
    EXPECT_EQ(plan.triggers()[0].skip, 10u);
    EXPECT_EQ(plan.triggers()[1].site, "job.run#x");
    EXPECT_EQ(plan.triggers()[1].action, FaultAction::Panic);
    EXPECT_EQ(plan.triggers()[2].action, FaultAction::Hang);
    EXPECT_EQ(plan.triggers()[2].hangMs, 250u);
    EXPECT_EQ(plan.triggers()[3].action, FaultAction::Fatal);
}

TEST_F(FaultPoints, MalformedPlansAreFatal)
{
    EXPECT_THROW(FaultPlan::parse("site=explode"), FatalError);
    EXPECT_THROW(FaultPlan::parse("=fail"), FatalError);
    EXPECT_THROW(FaultPlan::parse("*2"), FatalError);
    EXPECT_THROW(FaultPlan::parse("@1"), FatalError);
    EXPECT_THROW(FaultPlan::parse("site*0"), FatalError);
    EXPECT_THROW(FaultPlan::parse("site*x"), FatalError);
    EXPECT_THROW(FaultPlan::parse("site@x"), FatalError);
    // Suffixes in the wrong order: skip before count, action last.
    EXPECT_THROW(FaultPlan::parse("site@1*2"), FatalError);
    EXPECT_THROW(FaultPlan::parse("site*2=fail"), FatalError);
    EXPECT_THROW(FaultPlan::parse("site@1=fail"), FatalError);
}

TEST_F(FaultPoints, ParseErrorsCarryUsageHint)
{
    try {
        FaultPlan::parse("site@1*2");
        FAIL() << "swapped suffixes must not parse";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find(
                      "site[=action][*count][@skip]"),
                  std::string::npos)
            << e.what();
    }
}

TEST_F(FaultPoints, SummariesLoadSiteFires)
{
    faultpoints::install(FaultPlan::parse("summaries.load=fail"));
    std::string bytes = summariesBytes(1);
    std::istringstream in(bytes);
    EXPECT_THROW(loadSummaries(in), FaultInjectedError);
    // One-shot: the second load goes through.
    std::istringstream again(bytes);
    EXPECT_EQ(loadSummaries(again).programName, "fuzz-1");
}

TEST_F(FaultPoints, TraceReadSiteFiresAfterSkip)
{
    std::string path = writeSmallTrace("fault_trace.bin", 2, 8);
    faultpoints::install(FaultPlan::parse("tracefile.read=fail@3"));
    TraceReader r(path);
    TraceRecord rec;
    EXPECT_TRUE(r.next(rec));
    EXPECT_TRUE(r.next(rec));
    EXPECT_TRUE(r.next(rec));
    EXPECT_THROW(r.next(rec), FaultInjectedError);
    // Disarmed after one firing: the stream continues.
    EXPECT_TRUE(r.next(rec));
    std::remove(path.c_str());
}

TEST_F(FaultPoints, PhysmemAllocSiteMakesExperimentsFail)
{
    faultpoints::install(
        FaultPlan::parse("physmem.alloc=fail@16"));
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(1);
    EXPECT_THROW(runProgram(randomProgram(1), cfg),
                 FaultInjectedError);
    faultpoints::clear();
    // With the plan cleared the same experiment runs fine.
    ExperimentResult r = runProgram(randomProgram(1), cfg);
    EXPECT_GT(r.totals.insts, 0.0);
}

TEST_F(FaultPoints, InactivePlanCostsNothingAndFiresNothing)
{
    EXPECT_FALSE(faultpoints::active());
    faultPoint("physmem.alloc"); // must be a no-op
    faultpoints::install(FaultPlan::parse("other.site=panic"));
    faultPoint("physmem.alloc"); // armed, but no match
    faultpoints::clear();
    EXPECT_FALSE(faultpoints::active());
}

// ---- Corrupt tenant-scenario specs -------------------------------------

const char kValidScenario[] =
    "# a comment\n"
    "scenario cpus=4 machine=scaled scheduler=locality budget=hard "
    "pressure=25 pattern=fragmented seed=3\n"
    "tenant web workload=tomcatv vcpus=2 colors=128 policy=cdpc\n"
    "tenant db workload=107.mgrid vcpus=2 colors=64 weight=2\n";

tenant::ScenarioSpec
parseSpecText(const std::string &text)
{
    std::istringstream in(text);
    return tenant::parseScenario(in, "fuzz.spec");
}

TEST(CorruptTenantSpec, ValidSpecBaseline)
{
    tenant::ScenarioSpec spec = parseSpecText(kValidScenario);
    EXPECT_EQ(spec.cpus, 4u);
    EXPECT_EQ(spec.tenants.size(), 2u);
    EXPECT_EQ(spec.tenants[0].name, "web");
    EXPECT_EQ(spec.tenants[1].colors, 64u);
}

TEST(CorruptTenantSpec, EveryTruncationIsGraceful)
{
    // Every prefix must either parse or throw the typed FatalError —
    // never a panic, a crash, or an unbounded allocation.
    const std::string text = kValidScenario;
    for (std::size_t len = 0; len < text.size(); len++) {
        try {
            parseSpecText(text.substr(0, len));
        } catch (const FatalError &) {
            // expected for most prefixes
        }
    }
}

TEST(CorruptTenantSpec, DiagnosticsNameTheGrammar)
{
    try {
        parseSpecText("scenario cpus=4\n"
                      "tenant a workload=mgrid frobnicate=1\n");
        FAIL() << "unknown key must be fatal";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("tenant keys"),
                  std::string::npos)
            << "diagnostic must carry the grammar: " << e.what();
    }
}

TEST(CorruptTenantSpec, TenantBeforeScenarioHeaderIsFatal)
{
    EXPECT_THROW(parseSpecText("tenant a workload=mgrid vcpus=1\n"),
                 FatalError);
}

TEST(CorruptTenantSpec, EmptyAndTenantlessSpecsAreFatal)
{
    EXPECT_THROW(parseSpecText(""), FatalError);
    EXPECT_THROW(parseSpecText("scenario cpus=4\n"), FatalError);
    EXPECT_THROW(parseSpecText("# only comments\n\n"), FatalError);
}

TEST(CorruptTenantSpec, DuplicateTenantNamesAreFatal)
{
    EXPECT_THROW(
        parseSpecText("scenario cpus=4\n"
                      "tenant a workload=mgrid vcpus=1\n"
                      "tenant a workload=swim vcpus=1\n"),
        FatalError);
}

TEST(CorruptTenantSpec, BudgetExceedingMachineColorsIsFatal)
{
    EXPECT_THROW(
        parseSpecText("scenario cpus=4 machine=scaled\n"
                      "tenant a workload=mgrid vcpus=1 colors=9999\n"),
        FatalError);
}

TEST(CorruptTenantSpec, ZeroCpuPlacementIsFatal)
{
    EXPECT_THROW(
        parseSpecText("scenario cpus=4\n"
                      "tenant a workload=mgrid vcpus=0\n"),
        FatalError);
    EXPECT_THROW( // more vcpus than the machine has CPUs
        parseSpecText("scenario cpus=2\n"
                      "tenant a workload=mgrid vcpus=4\n"),
        FatalError);
}

TEST(CorruptTenantSpec, UnknownWorkloadAndMissingWorkloadAreFatal)
{
    EXPECT_THROW(
        parseSpecText("scenario cpus=4\n"
                      "tenant a workload=nope vcpus=1\n"),
        FatalError);
    EXPECT_THROW(parseSpecText("scenario cpus=4\n"
                               "tenant a vcpus=1\n"),
                 FatalError);
}

// ---- Corrupt batch journals --------------------------------------------
//
// The resume loader's contract under fuzzer-style damage: either it
// recovers cleanly (dropping ONLY a torn tail) or it throws a typed
// FatalError naming the journal — and in no case may it mark a job
// as committed whose intact record+line pair it cannot verify.

/** A tiny batch of synthetic specs (never executed, just keyed). */
std::vector<runner::JobSpec>
journalSpecs(std::size_t n)
{
    std::vector<runner::JobSpec> specs;
    for (std::size_t i = 0; i < n; i++) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(2);
        cfg.seed = 100 + i;
        runner::JobSpec s = runner::makeJob("107.mgrid", cfg);
        s.name = "fuzzjob" + std::to_string(i);
        specs.push_back(std::move(s));
    }
    return specs;
}

/** Write a consistent journal + part pair for the first @p n jobs. */
void
writeCommitted(const std::string &out,
               const std::vector<runner::JobSpec> &specs,
               std::size_t n)
{
    std::ofstream part(out + ".part",
                       std::ios::binary | std::ios::trunc);
    runner::JournalWriter w(out + ".journal", true, false);
    for (std::size_t i = 0; i < n; i++) {
        std::string line =
            "{\"job\":" + std::to_string(i) + ",\"fuzz\":true}";
        part << line << "\n";
        part.flush();
        runner::JournalRecord rec;
        rec.job = i;
        rec.digest = fnv1a(line);
        rec.outcome = "ok";
        rec.key = specs[i].canonicalKey();
        w.append(rec);
    }
}

void
removeBatchArtifacts(const std::string &out)
{
    for (const std::string &p :
         {out, out + ".part", out + ".journal", out + ".manifest"})
        std::remove(p.c_str());
}

/**
 * loadResumePlan() on the (possibly damaged) pair must either
 * succeed or throw FatalError; on success, no job beyond what
 * writeCommitted() really committed may be marked committed, and
 * every committed job's line must carry the digest it was journaled
 * with.
 */
void
expectGracefulResume(const std::string &out,
                     const std::vector<runner::JobSpec> &specs,
                     std::size_t truly_committed)
{
    try {
        runner::ResumePlan plan =
            runner::loadResumePlan(out, specs);
        EXPECT_LE(plan.committedCount, truly_committed);
        for (const auto &[job, line] : plan.lines) {
            ASSERT_LT(job, specs.size());
            EXPECT_TRUE(plan.committed[job]);
        }
    } catch (const FatalError &e) {
        // Typed rejection must name the journal so the operator
        // knows which file to inspect or delete.
        EXPECT_NE(std::string(e.what()).find("journal"),
                  std::string::npos)
            << e.what();
    }
}

TEST(CorruptJournal, ConsistentPairLoadsFully)
{
    std::string out = ::testing::TempDir() + "cj_ok.jsonl";
    auto specs = journalSpecs(4);
    writeCommitted(out, specs, 3);
    runner::ResumePlan plan = runner::loadResumePlan(out, specs);
    EXPECT_EQ(plan.committedCount, 3u);
    EXPECT_TRUE(plan.committed[0]);
    EXPECT_TRUE(plan.committed[2]);
    EXPECT_FALSE(plan.committed[3]);
    EXPECT_FALSE(plan.repairedTail);
    removeBatchArtifacts(out);
}

TEST(CorruptJournal, EveryTruncationRecoversOrIsFatal)
{
    std::string out = ::testing::TempDir() + "cj_trunc.jsonl";
    auto specs = journalSpecs(4);
    writeCommitted(out, specs, 4);
    std::ifstream in(out + ".journal", std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    in.close();

    for (std::size_t len = 0; len <= bytes.size(); len++) {
        // Rebuild the pair: full part file, journal cut at len. The
        // loader heals by truncating, so each iteration rewrites.
        writeCommitted(out, specs, 4);
        std::ofstream cut(out + ".journal",
                          std::ios::binary | std::ios::trunc);
        cut.write(bytes.data(), static_cast<std::streamsize>(len));
        cut.close();
        expectGracefulResume(out, specs, 4);
    }
    removeBatchArtifacts(out);
}

TEST(CorruptJournal, SingleByteMutationsNeverMisSkip)
{
    std::string out = ::testing::TempDir() + "cj_flip.jsonl";
    auto specs = journalSpecs(3);
    writeCommitted(out, specs, 3);
    std::ifstream in(out + ".journal", std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    in.close();

    for (std::size_t pos = 0; pos < bytes.size(); pos += 2) {
        writeCommitted(out, specs, 3);
        std::string mutated = bytes;
        mutated[pos] ^= 0x20; // also hits newlines: merges records
        std::ofstream mut(out + ".journal",
                          std::ios::binary | std::ios::trunc);
        mut.write(mutated.data(),
                  static_cast<std::streamsize>(mutated.size()));
        mut.close();
        expectGracefulResume(out, specs, 3);
    }
    removeBatchArtifacts(out);
}

TEST(CorruptJournal, MidFileCorruptionIsFatalNotSkipped)
{
    std::string out = ::testing::TempDir() + "cj_mid.jsonl";
    auto specs = journalSpecs(4);
    writeCommitted(out, specs, 4);
    // Break record 1 of 4 (not the tail): silent recovery here could
    // mis-skip job 1, so it must be fatal.
    std::ifstream in(out + ".journal", std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    in.close();
    std::size_t first = bytes.find('\n') + 1;
    std::size_t second = bytes.find('\n', first) + 1;
    bytes[second + 5] ^= 0xff;
    std::ofstream mut(out + ".journal",
                      std::ios::binary | std::ios::trunc);
    mut.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    mut.close();
    EXPECT_THROW(runner::loadResumePlan(out, specs), FatalError);
    removeBatchArtifacts(out);
}

TEST(CorruptJournal, DuplicateRecordIsFatal)
{
    std::string out = ::testing::TempDir() + "cj_dup.jsonl";
    auto specs = journalSpecs(3);
    {
        std::ofstream part(out + ".part",
                           std::ios::binary | std::ios::trunc);
        runner::JournalWriter w(out + ".journal", true, false);
        for (int rep = 0; rep < 2; rep++) {
            std::string line = "{\"job\":0,\"fuzz\":true}";
            part << line << "\n";
            runner::JournalRecord rec;
            rec.job = 0;
            rec.digest = fnv1a(line);
            rec.outcome = "ok";
            rec.key = specs[0].canonicalKey();
            w.append(rec);
        }
    }
    EXPECT_THROW(runner::loadResumePlan(out, specs), FatalError);
    removeBatchArtifacts(out);
}

TEST(CorruptJournal, RecordBeyondSpecListIsFatal)
{
    std::string out = ::testing::TempDir() + "cj_range.jsonl";
    auto specs = journalSpecs(4);
    writeCommitted(out, specs, 2);
    // The journal was written for a larger batch than the spec file
    // now describes.
    EXPECT_THROW(
        runner::loadResumePlan(out, journalSpecs(1)), FatalError);
    removeBatchArtifacts(out);
}

TEST(CorruptJournal, DriftedSpecKeyIsFatalAndNamesTheJob)
{
    std::string out = ::testing::TempDir() + "cj_drift.jsonl";
    auto specs = journalSpecs(3);
    writeCommitted(out, specs, 3);
    specs[1].config.seed ^= 0xdead;
    try {
        runner::loadResumePlan(out, specs);
        FAIL() << "spec drift must be fatal";
    } catch (const FatalError &e) {
        std::string what = e.what();
        EXPECT_NE(what.find("spec drift"), std::string::npos);
        EXPECT_NE(what.find("job 1"), std::string::npos) << what;
    }
    removeBatchArtifacts(out);
}

TEST(CorruptJournal, WrongHeaderIsFatal)
{
    std::string out = ::testing::TempDir() + "cj_hdr.jsonl";
    auto specs = journalSpecs(2);
    writeCommitted(out, specs, 2);
    std::ofstream mut(out + ".journal",
                      std::ios::binary | std::ios::trunc);
    mut << "not-a-journal v9\n";
    mut.close();
    EXPECT_THROW(runner::loadResumePlan(out, specs), FatalError);
    removeBatchArtifacts(out);
}

TEST(CorruptJournal, MissingJournalIsAFreshStart)
{
    std::string out = ::testing::TempDir() + "cj_none.jsonl";
    auto specs = journalSpecs(3);
    removeBatchArtifacts(out);
    runner::ResumePlan plan = runner::loadResumePlan(out, specs);
    EXPECT_EQ(plan.committedCount, 0u);
    EXPECT_FALSE(plan.repairedTail);
    for (std::size_t i = 0; i < specs.size(); i++)
        EXPECT_FALSE(plan.committed[i]);
}

TEST(CorruptJournal, PartLineDigestMismatchMidFileIsFatal)
{
    std::string out = ::testing::TempDir() + "cj_digest.jsonl";
    auto specs = journalSpecs(4);
    writeCommitted(out, specs, 4);
    // Flip a byte in part line 1 (journal intact): the output no
    // longer matches what was committed.
    std::ifstream in(out + ".part", std::ios::binary);
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string bytes = buf.str();
    in.close();
    std::size_t second = bytes.find('\n') + 1;
    bytes[second + 2] ^= 0x01;
    std::ofstream mut(out + ".part",
                      std::ios::binary | std::ios::trunc);
    mut.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size()));
    mut.close();
    EXPECT_THROW(runner::loadResumePlan(out, specs), FatalError);
    removeBatchArtifacts(out);
}

} // namespace
} // namespace cdpc
