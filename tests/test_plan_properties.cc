/**
 * @file
 * Property sweeps over the full workload suite: for every bundled
 * benchmark and CPU count, the CDPC plan must satisfy the structural
 * invariants the algorithm promises (valid colors, unique pages,
 * balanced round-robin, analyzable coverage, page ranges inside the
 * data segment) and end-to-end runs must be deterministic.
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "cdpc/runtime.h"
#include "compiler/compiler.h"
#include "harness/experiment.h"

namespace cdpc
{
namespace
{

class PlanProperty
    : public ::testing::TestWithParam<
          std::tuple<const char *, std::uint32_t>>
{
  protected:
    void
    SetUp() override
    {
        auto [name, ncpus] = GetParam();
        machine = MachineConfig::paperScaled(ncpus);
        prog = buildWorkload(name);
        CompilerOptions copts;
        copts.aligner.lineBytes = machine.l2.lineBytes;
        copts.aligner.l1SpanBytes =
            machine.l1d.sizeBytes / machine.l1d.assoc;
        summaries = compileProgram(prog, copts).summaries;
        plan = computeCdpcPlan(summaries, cdpcParams(machine));
    }

    MachineConfig machine;
    Program prog;
    AccessSummaries summaries;
    CdpcPlan plan;
};

TEST_P(PlanProperty, ColorsAreValid)
{
    for (const ColorHint &h : plan.coloring.hints)
        EXPECT_LT(h.color, machine.numColors());
}

TEST_P(PlanProperty, PagesHintedExactlyOnce)
{
    std::set<PageNum> seen;
    for (const ColorHint &h : plan.coloring.hints)
        EXPECT_TRUE(seen.insert(h.vpn).second) << "vpn " << h.vpn;
}

TEST_P(PlanProperty, RoundRobinIsBalanced)
{
    // Step 5 hands out colors cyclically: per-color hint counts
    // differ by at most one.
    std::map<Color, std::uint64_t> per_color;
    for (const ColorHint &h : plan.coloring.hints)
        per_color[h.color]++;
    if (plan.coloring.hints.size() < machine.numColors())
        return; // trivially balanced
    std::uint64_t lo = ~0ULL, hi = 0;
    for (auto &[c, n] : per_color) {
        lo = std::min(lo, n);
        hi = std::max(hi, n);
    }
    EXPECT_LE(hi - lo, 1u);
}

TEST_P(PlanProperty, HintsStayInsideAnalyzableArrays)
{
    // Every hinted page lies within some analyzable array's extent.
    for (const ColorHint &h : plan.coloring.hints) {
        VAddr page_start = h.vpn * machine.pageBytes;
        VAddr page_end = page_start + machine.pageBytes;
        bool inside = false;
        for (const ArrayExtent &a : summaries.arrays) {
            if (!a.analyzable)
                continue;
            if (page_end > a.start &&
                page_start < a.start + a.sizeBytes) {
                inside = true;
                break;
            }
        }
        EXPECT_TRUE(inside) << "vpn " << h.vpn;
    }
}

TEST_P(PlanProperty, SegmentsCoverOnlyRealCpus)
{
    auto [name, ncpus] = GetParam();
    (void)name;
    for (const Segment &seg : plan.segments) {
        EXPECT_FALSE(seg.procs.empty());
        for (CpuId c = ncpus; c < 32; c++)
            EXPECT_FALSE(seg.procs.contains(c))
                << "phantom CPU " << c;
    }
}

TEST_P(PlanProperty, SegmentOrderIsAPermutation)
{
    std::set<std::size_t> ids(plan.coloring.segmentOrder.begin(),
                              plan.coloring.segmentOrder.end());
    EXPECT_EQ(ids.size(), plan.segments.size());
    EXPECT_EQ(plan.coloring.segmentOrder.size(), plan.segments.size());
}

INSTANTIATE_TEST_SUITE_P(
    AllWorkloads, PlanProperty,
    ::testing::Combine(
        ::testing::Values("101.tomcatv", "102.swim", "103.su2cor",
                          "104.hydro2d", "107.mgrid", "110.applu",
                          "125.turb3d", "141.apsi", "145.fpppp",
                          "146.wave5"),
        ::testing::Values(1u, 4u, 16u)),
    [](const auto &info) {
        std::string name = std::get<0>(info.param);
        for (char &c : name) {
            if (c == '.')
                c = '_';
        }
        return name + "_p" + std::to_string(std::get<1>(info.param));
    });

/** End-to-end determinism across the whole suite at 8 CPUs. */
class RunDeterminism : public ::testing::TestWithParam<const char *>
{};

TEST_P(RunDeterminism, IdenticalTotalsAcrossRuns)
{
    auto run = [&] {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(8);
        cfg.mapping = MappingPolicy::Cdpc;
        return runWorkload(GetParam(), cfg).totals;
    };
    WeightedTotals a = run();
    WeightedTotals b = run();
    EXPECT_DOUBLE_EQ(a.combinedTime(), b.combinedTime());
    EXPECT_DOUBLE_EQ(a.memStall, b.memStall);
    EXPECT_DOUBLE_EQ(a.insts, b.insts);
    EXPECT_DOUBLE_EQ(a.wall, b.wall);
}

INSTANTIATE_TEST_SUITE_P(Suite, RunDeterminism,
                         ::testing::Values("101.tomcatv", "102.swim",
                                           "103.su2cor", "146.wave5"),
                         [](const auto &info) {
                             std::string n = info.param;
                             for (char &c : n) {
                                 if (c == '.')
                                     c = '_';
                             }
                             return n;
                         });

} // namespace
} // namespace cdpc
