/**
 * @file
 * Integration tests: the experiment harness end to end, the paper's
 * headline qualitative results as regression checks, and the SPEC
 * ratio helpers.
 */

#include <gtest/gtest.h>

#include "common/intmath.h"
#include "harness/experiment.h"
#include "harness/spec.h"

namespace cdpc
{
namespace
{

TEST(Spec, RatioAnchorsUniprocessor)
{
    EXPECT_DOUBLE_EQ(specRatio(1000.0, 1000.0), kUniprocessorRating);
    EXPECT_DOUBLE_EQ(specRatio(1000.0, 500.0),
                     2.0 * kUniprocessorRating);
    EXPECT_THROW(specRatio(0.0, 1.0), FatalError);
}

TEST(Spec, RatingIsGeometricMean)
{
    EXPECT_DOUBLE_EQ(specRating({4.0, 16.0}), 8.0);
}

TEST(Experiment, MappingNames)
{
    EXPECT_STREQ(mappingName(MappingPolicy::PageColoring),
                 "page-coloring");
    EXPECT_STREQ(mappingName(MappingPolicy::BinHopping),
                 "bin-hopping");
    EXPECT_STREQ(mappingName(MappingPolicy::Cdpc), "cdpc");
    EXPECT_STREQ(mappingName(MappingPolicy::CdpcTouchOrder),
                 "cdpc-touch-order");
}

TEST(Experiment, RunsAndPopulatesResult)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    cfg.mapping = MappingPolicy::PageColoring;
    ExperimentResult r = runWorkload("104.hydro2d", cfg);
    EXPECT_EQ(r.workload, "104.hydro2d");
    EXPECT_EQ(r.policy, "page-coloring");
    EXPECT_EQ(r.ncpus, 2u);
    EXPECT_GT(r.totals.insts, 0.0);
    EXPECT_GT(r.totals.combinedTime(), 0.0);
    EXPECT_FALSE(r.plan.has_value());
    EXPECT_GT(r.dataSetBytes, 0u);
}

TEST(Experiment, CdpcRunsProducePlans)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(4);
    cfg.mapping = MappingPolicy::Cdpc;
    ExperimentResult r = runWorkload("104.hydro2d", cfg);
    ASSERT_TRUE(r.plan.has_value());
    EXPECT_FALSE(r.plan->coloring.hints.empty());
    EXPECT_NEAR(r.hintsHonored, 1.0, 0.01);
}

TEST(Experiment, Su2corPlanExcludesUnanalyzableArrays)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(4);
    cfg.mapping = MappingPolicy::Cdpc;
    ExperimentResult r = runWorkload("103.su2cor", cfg);
    ASSERT_TRUE(r.plan.has_value());
    for (const Segment &seg : r.plan->segments) {
        EXPECT_TRUE(r.summaries.isAnalyzable(seg.arrayId))
            << "segment of unanalyzable array " << seg.arrayId;
    }
}

TEST(Experiment, MemoryPressureDegradesHintHonoring)
{
    // Competing processes hold most of the low-color pages: the
    // kernel cannot honor the hints targeting those colors, yet the
    // run completes (hints are hints, Section 5).
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    cfg.mapping = MappingPolicy::Cdpc;
    Program prog = buildWorkload("102.swim");
    std::uint64_t data_pages =
        prog.dataSetBytes() / cfg.machine.pageBytes + 64;
    cfg.machine.physPages = roundUp(
        data_pages + cfg.machine.physPages / 2,
        cfg.machine.numColors());
    cfg.preallocatedPages = cfg.machine.physPages - data_pages;
    ExperimentResult r = runProgram(std::move(prog), cfg);
    EXPECT_LT(r.hintsHonored, 0.95);
    EXPECT_GT(r.hintsHonored, 0.0);
    EXPECT_GT(r.totals.insts, 0.0); // still ran to completion
}

TEST(Experiment, BalancedHintsFullyHonoredWithoutPressure)
{
    // Step 5's round-robin hints are perfectly color-balanced, so
    // an uncontended allocator honors every one of them even with
    // little slack.
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    cfg.mapping = MappingPolicy::Cdpc;
    Program prog = buildWorkload("102.swim");
    cfg.machine.physPages =
        roundUp(prog.dataSetBytes() / cfg.machine.pageBytes,
                cfg.machine.numColors()) +
        cfg.machine.numColors();
    ExperimentResult r = runProgram(std::move(prog), cfg);
    EXPECT_DOUBLE_EQ(r.hintsHonored, 1.0);
}

// ---- Paper-shape regressions (fast configurations) ------------------------

TEST(PaperShapes, CdpcBeatsPageColoringForSwimAt8)
{
    double combined[2];
    int i = 0;
    for (MappingPolicy pol :
         {MappingPolicy::PageColoring, MappingPolicy::Cdpc}) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(8);
        cfg.mapping = pol;
        combined[i++] = runWorkload("102.swim", cfg)
                            .totals.combinedTime();
    }
    EXPECT_GT(combined[0] / combined[1], 1.15);
}

TEST(PaperShapes, CdpcRoughlyNeutralForAppluAt1MB)
{
    double combined[2];
    int i = 0;
    for (MappingPolicy pol :
         {MappingPolicy::PageColoring, MappingPolicy::Cdpc}) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(8);
        cfg.mapping = pol;
        combined[i++] = runWorkload("110.applu", cfg)
                            .totals.combinedTime();
    }
    double ratio = combined[0] / combined[1];
    EXPECT_GT(ratio, 0.85);
    EXPECT_LT(ratio, 1.15);
}

TEST(PaperShapes, FppppInsensitiveToPolicy)
{
    double combined[3];
    int i = 0;
    for (MappingPolicy pol :
         {MappingPolicy::PageColoring, MappingPolicy::BinHopping,
          MappingPolicy::CdpcTouchOrder}) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::alphaScaled(4);
        cfg.mapping = pol;
        combined[i++] = runWorkload("145.fpppp", cfg)
                            .totals.combinedTime();
    }
    EXPECT_NEAR(combined[1] / combined[0], 1.0, 0.05);
    EXPECT_NEAR(combined[2] / combined[0], 1.0, 0.05);
}

TEST(PaperShapes, CdpcEliminatesConflictStallForHydro2dAt8)
{
    ExperimentConfig pc;
    pc.machine = MachineConfig::paperScaled(8);
    pc.mapping = MappingPolicy::PageColoring;
    ExperimentConfig cd = pc;
    cd.mapping = MappingPolicy::Cdpc;
    double pc_conflict = runWorkload("104.hydro2d", pc)
                             .totals.missStallOf(MissKind::Conflict);
    double cd_conflict = runWorkload("104.hydro2d", cd)
                             .totals.missStallOf(MissKind::Conflict);
    EXPECT_LT(cd_conflict, 0.5 * pc_conflict);
}

TEST(PaperShapes, PrefetchingHidesLatencyForTomcatv)
{
    double combined[2];
    int i = 0;
    for (bool pf : {false, true}) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(4);
        cfg.mapping = MappingPolicy::Cdpc;
        cfg.prefetch = pf;
        combined[i++] = runWorkload("101.tomcatv", cfg)
                            .totals.combinedTime();
    }
    EXPECT_GT(combined[0] / combined[1], 1.2);
}

TEST(PaperShapes, PrefetchingIneffectiveForApplu)
{
    double combined[2];
    int i = 0;
    for (bool pf : {false, true}) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(4);
        cfg.mapping = MappingPolicy::PageColoring;
        cfg.prefetch = pf;
        combined[i++] = runWorkload("110.applu", cfg)
                            .totals.combinedTime();
    }
    double speedup = combined[0] / combined[1];
    EXPECT_LT(speedup, 1.1);
}

TEST(PaperShapes, Wave5FlatAcrossCpuCounts)
{
    // Suppressed particle push: no speedup from more CPUs.
    double wall[2];
    int i = 0;
    for (std::uint32_t ncpus : {1u, 8u}) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(ncpus);
        cfg.mapping = MappingPolicy::PageColoring;
        wall[i++] = runWorkload("146.wave5", cfg).totals.wall;
    }
    EXPECT_NEAR(wall[1] / wall[0], 1.0, 0.25);
}

TEST(PaperShapes, TouchOrderCdpcMatchesKernelCdpcClosely)
{
    // The two implementations of Section 5.3 should land within a
    // few percent of each other (identical colors up to rotation).
    double combined[2];
    int i = 0;
    for (MappingPolicy pol :
         {MappingPolicy::Cdpc, MappingPolicy::CdpcTouchOrder}) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(8);
        cfg.mapping = pol;
        combined[i++] = runWorkload("104.hydro2d", cfg)
                            .totals.combinedTime();
    }
    EXPECT_NEAR(combined[1] / combined[0], 1.0, 0.10);
}

} // namespace
} // namespace cdpc
