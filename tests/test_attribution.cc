/**
 * @file
 * Tests for per-array miss attribution.
 */

#include <gtest/gtest.h>

#include "harness/attribution.h"

namespace cdpc
{
namespace
{

TEST(Attribution, CoversAllArraysAndConserves)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(4);
    cfg.mapping = MappingPolicy::PageColoring;
    AttributionResult res = attributeMisses("104.hydro2d", cfg);

    ASSERT_EQ(res.arrays.size(), 8u);
    std::uint64_t refs = res.other.refs;
    std::uint64_t misses = res.other.l2Misses;
    for (const ArrayAttribution &a : res.arrays) {
        EXPECT_GT(a.refs, 0u) << a.name;
        EXPECT_GT(a.sizeBytes, 0u);
        refs += a.refs;
        misses += a.l2Misses;
        std::uint64_t by_kind = 0;
        for (std::uint64_t c : a.missCount)
            by_kind += c;
        // Upgrades are hits, not misses: kinds may exceed l2Misses
        // by exactly the upgrade count.
        EXPECT_EQ(by_kind - a.missCount[static_cast<int>(
                                MissKind::Upgrade)],
                  a.l2Misses)
            << a.name;
    }
    EXPECT_GT(refs, 0u);
    EXPECT_GT(misses, 0u);
    // Nearly everything belongs to a real array.
    EXPECT_LT(res.other.refs, refs / 100 + 100);
}

TEST(Attribution, CdpcReducesConflictsPerArray)
{
    ExperimentConfig pc;
    pc.machine = MachineConfig::paperScaled(8);
    pc.mapping = MappingPolicy::PageColoring;
    ExperimentConfig cd = pc;
    cd.mapping = MappingPolicy::Cdpc;
    AttributionResult rpc = attributeMisses("104.hydro2d", pc);
    AttributionResult rcd = attributeMisses("104.hydro2d", cd);

    std::uint64_t conf_pc = 0, conf_cd = 0;
    for (std::size_t i = 0; i < rpc.arrays.size(); i++) {
        conf_pc += rpc.arrays[i].missCount[static_cast<int>(
            MissKind::Conflict)];
        conf_cd += rcd.arrays[i].missCount[static_cast<int>(
            MissKind::Conflict)];
    }
    EXPECT_LT(conf_cd, conf_pc / 2);
}

TEST(Attribution, UnanalyzableArraysStillAttributed)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(4);
    cfg.mapping = MappingPolicy::Cdpc;
    AttributionResult res = attributeMisses("103.su2cor", cfg);
    bool latt_seen = false;
    for (const ArrayAttribution &a : res.arrays) {
        if (a.name == "latt") {
            latt_seen = true;
            EXPECT_GT(a.refs, 0u);
        }
    }
    EXPECT_TRUE(latt_seen);
}

} // namespace
} // namespace cdpc
