/**
 * @file
 * Unit tests for the pluggable IndexFunction (DESIGN.md §16): the
 * optimized/reference agreement of every mapping family, the
 * same-set⇒same-color contract, golden identity of the default
 * modulo map with the historical inline math, the PhysMem color
 * drift regression, and the fig6-style lockstep verification of the
 * sliced-hash machine.
 */

#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/intmath.h"
#include "common/logging.h"
#include "harness/experiment.h"
#include "machine/config.h"
#include "machine/index_function.h"
#include "mem/cache.h"
#include "vm/physmem.h"
#include "workloads/workload.h"

using namespace cdpc;

namespace
{

/** The three external-cache geometries under test. */
CacheConfig
moduloL2()
{
    return MachineConfig::paperScaled(2).l2;
}

CacheConfig
slicedL2()
{
    return MachineConfig::paperScaledSlicedHash(2).l2;
}

CacheConfig
dramL2()
{
    return MachineConfig::dramCacheMode(2).l2;
}

} // namespace

// ---- optimized vs reference agreement --------------------------------------

TEST(IndexFunction, ModuloSetOfMatchesReference)
{
    IndexFunction f(moduloL2(), 512);
    for (Addr a = 0; a < 1 << 20; a += 37)
        ASSERT_EQ(f.setOf(a), f.setOfRef(a)) << "addr " << a;
}

TEST(IndexFunction, SlicedHashSetOfMatchesReference)
{
    IndexFunction f(slicedL2(), 512);
    // Dense low range plus sparse high addresses so the tiled hash
    // window above bit 30 is exercised too.
    for (Addr a = 0; a < 1 << 20; a += 37)
        ASSERT_EQ(f.setOf(a), f.setOfRef(a)) << "addr " << a;
    for (Addr a = 0; a < 64; a++) {
        Addr high = (a * 0x9e3779b97f4a7c15ULL) & ((Addr{1} << 40) - 1);
        ASSERT_EQ(f.setOf(high), f.setOfRef(high)) << "addr " << high;
    }
}

TEST(IndexFunction, DramCacheSetOfMatchesReference)
{
    IndexFunction f(dramL2(), 4096);
    for (Addr a = 0; a < 1 << 22; a += 131)
        ASSERT_EQ(f.setOf(a), f.setOfRef(a)) << "addr " << a;
}

TEST(IndexFunction, PageColorRefAgreesWithOptimizedEverywhere)
{
    const struct
    {
        CacheConfig cache;
        std::uint64_t pageBytes;
        std::uint64_t pages;
    } cases[] = {
        {moduloL2(), 512, 4096},
        {slicedL2(), 512, 4096},
        {dramL2(), 4096, 4096},
        // assoc > 1 modulo: color = set-group of the page.
        {MachineConfig::paperScaledTwoWay(2).l2, 512, 4096},
    };
    for (const auto &c : cases) {
        IndexFunction f(c.cache, c.pageBytes);
        for (PageNum p = 0; p < c.pages; p++)
            ASSERT_EQ(f.pageColorOf(p), f.pageColorRef(p)) << "ppn " << p;
    }
}

// ---- golden identity of the default map ------------------------------------

TEST(IndexFunction, ModuloIsBitIdenticalToHistoricalInlineMath)
{
    MachineConfig m = MachineConfig::paperScaled(4);
    IndexFunction f = m.indexFunction();
    const std::uint64_t colors = m.numColors();
    const unsigned line_shift = 6; // 64B lines
    const std::uint64_t set_mask = m.l2.numSets() - 1;
    for (PageNum p = 0; p < 3 * colors + 7; p++)
        ASSERT_EQ(f.pageColorOf(p), p % colors);
    for (Addr a = 0; a < 1 << 18; a += 61)
        ASSERT_EQ(f.setOf(a), (a >> line_shift) & set_mask);
}

// ---- distribution and counts -----------------------------------------------

TEST(IndexFunction, EveryKindCoversTheWholeColorSpace)
{
    const struct
    {
        CacheConfig cache;
        std::uint64_t pageBytes;
    } cases[] = {
        {moduloL2(), 512}, {slicedL2(), 512}, {dramL2(), 4096}};
    for (const auto &c : cases) {
        IndexFunction f(c.cache, c.pageBytes);
        std::vector<std::uint64_t> hits(f.numColors(), 0);
        // Enough pages that a sound mapping touches every color.
        for (PageNum p = 0; p < 64 * f.numColors(); p++) {
            Color col = f.pageColorOf(p);
            ASSERT_LT(col, f.numColors());
            hits[col]++;
        }
        for (std::uint64_t c2 = 0; c2 < f.numColors(); c2++)
            EXPECT_GT(hits[c2], 0u) << "color " << c2 << " never hit ("
                                    << indexKindName(f.kind()) << ")";
    }
}

TEST(IndexFunction, ColorCountIsKindIndependent)
{
    // The paper's formula size/(page*assoc) holds for every kind;
    // only the mapping differs.
    EXPECT_EQ(MachineConfig::paperScaled(2).numColors(), 256u);
    EXPECT_EQ(MachineConfig::paperScaledSlicedHash(2).numColors(), 384u);
    EXPECT_EQ(MachineConfig::dramCacheMode(2).numColors(), 512u);
    EXPECT_EQ(IndexFunction(slicedL2(), 512).numColors(), 384u);
    EXPECT_EQ(IndexFunction(dramL2(), 4096).numColors(), 512u);
}

// ---- the same-set ⇒ same-color contract ------------------------------------

TEST(IndexFunction, SameColorIffSameSetFootprint)
{
    const struct
    {
        CacheConfig cache;
        std::uint64_t pageBytes;
    } cases[] = {
        {moduloL2(), 512}, {slicedL2(), 512}, {dramL2(), 4096}};
    for (const auto &c : cases) {
        IndexFunction f(c.cache, c.pageBytes);
        // Sampled page pairs: footprints must coincide exactly when
        // the colors do.
        for (PageNum a = 0; a < 128; a++) {
            for (PageNum b = a; b < a + 2 * f.numColors();
                 b += 97) {
                bool same_color = f.pageColorOf(a) == f.pageColorOf(b);
                ASSERT_EQ(f.sameFootprint(a, b), same_color)
                    << indexKindName(f.kind()) << " pages " << a
                    << "," << b;
            }
        }
    }
}

TEST(IndexFunction, ColorStableUnderRemapToSameColorPage)
{
    // Recoloring moves a vpn to a new physical page of the target
    // color; the contract that makes this meaningful is that any two
    // pages of that color are interchangeable set-wise.
    IndexFunction f(slicedL2(), 512);
    std::vector<std::vector<PageNum>> byColor(f.numColors());
    for (PageNum p = 0; p < 8 * f.numColors(); p++)
        byColor[f.pageColorOf(p)].push_back(p);
    for (Color c = 0; c < 16; c++) {
        ASSERT_GE(byColor[c].size(), 2u);
        EXPECT_TRUE(f.sameFootprint(byColor[c][0], byColor[c][1]));
    }
}

// ---- Cache / IndexFunction wiring ------------------------------------------

TEST(IndexFunction, CacheSetIndexRoutesThroughIndexFunction)
{
    Cache modulo(moduloL2(), 512);
    Cache sliced(slicedL2(), 512);
    IndexFunction fm(moduloL2(), 512);
    IndexFunction fs(slicedL2(), 512);
    for (Addr a = 0; a < 1 << 18; a += 43) {
        ASSERT_EQ(modulo.setIndex(a), fm.setOf(a));
        ASSERT_EQ(sliced.setIndex(a), fs.setOf(a));
    }
    // The sliced cache really is hashed: some address must land in a
    // different set than the modulo bit-select would pick.
    bool differs = false;
    for (Addr a = 0; a < 1 << 20 && !differs; a += 64)
        differs = fs.setOf(a) != (a / 64) % slicedL2().numSets();
    EXPECT_TRUE(differs);
}

// ---- PhysMem drift regression (the 7-site bugfix) --------------------------

TEST(PhysMemIndex, HashedColorMapCannotDriftFromModulo)
{
    // The poison probe: under the DRAM-cache mapping, ppn % colors —
    // what the 7 formerly inlined sites computed — disagrees with
    // colorOf() for most pages. This proves the assertions below
    // have discriminating power: any site still doing inline modulo
    // would fail them.
    MachineConfig m = MachineConfig::dramCacheMode(2);
    IndexFunction f = m.indexFunction();
    std::uint64_t poisoned = 0;
    for (PageNum p = 0; p < 1024; p++) {
        if (f.pageColorOf(p) != p % f.numColors())
            poisoned++;
    }
    ASSERT_GT(poisoned, 512u)
        << "mapping too close to modulo to detect drift";

    PhysMem phys(m.physPages, f);
    // Seeding: every exact-color allocation must return a page whose
    // colorOf() matches, across the whole color space.
    std::vector<PageNum> got;
    for (std::uint64_t c = 0; c < f.numColors(); c++) {
        auto p = phys.tryAllocExact(static_cast<Color>(c));
        ASSERT_TRUE(p.has_value()) << "color " << c;
        ASSERT_EQ(phys.colorOf(*p), c);
        got.push_back(*p);
    }
    // free(): pages must return to the list matching their color.
    for (PageNum p : got)
        phys.free(p);
    for (std::uint64_t c = 0; c < f.numColors(); c++) {
        auto p = phys.tryAllocExact(static_cast<Color>(c));
        ASSERT_TRUE(p.has_value());
        ASSERT_EQ(phys.colorOf(*p), c);
    }
    // markReclaimable()/reclaim(): the reclaim bookkeeping must use
    // the same mapping, or a preferred-color reclaim returns a page
    // of the wrong color.
    Color want = phys.colorOf(got[7]);
    phys.markReclaimable(got[7]);
    auto back = phys.reclaim(want);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, got[7]);
    EXPECT_EQ(phys.colorOf(*back), want);
}

TEST(PhysMemIndex, EqualFreeListDepthsOnEveryMachinePreset)
{
    // validate() guarantees physPages % numColors == 0; with the
    // modulo map that makes every per-color free list exactly
    // physPages / numColors deep.
    MachineConfig m = MachineConfig::paperScaled(2);
    PhysMem phys(m.physPages, m.indexFunction());
    for (std::uint64_t c = 0; c < m.numColors(); c++) {
        EXPECT_EQ(phys.freePagesOfColor(static_cast<Color>(c)),
                  m.physPages / m.numColors());
    }
}

// ---- machine presets and validate() ----------------------------------------

TEST(IndexMachines, NewPresetsValidate)
{
    EXPECT_NO_THROW(MachineConfig::paperScaledSlicedHash(8).validate());
    EXPECT_NO_THROW(MachineConfig::dramCacheMode(8).validate());
}

TEST(IndexMachines, PhysPagesMustBeAMultipleOfColors)
{
    MachineConfig m = MachineConfig::paperScaled(2);
    m.physPages += 1;
    try {
        m.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("multiple"),
                  std::string::npos)
            << e.what();
    }
}

TEST(IndexMachines, ValidateNamesTheFailingCache)
{
    MachineConfig m = MachineConfig::paperScaled(2);
    m.l1d.lineBytes = 48; // not a power of two
    try {
        m.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("l1d"), std::string::npos)
            << e.what();
    }
    MachineConfig m2 = MachineConfig::paperScaled(2);
    m2.l2.sizeBytes = 96 * 1024; // 1536 sets, not a power of two
    try {
        m2.validate();
        FAIL() << "expected FatalError";
    } catch (const FatalError &e) {
        EXPECT_NE(std::string(e.what()).find("l2"), std::string::npos)
            << e.what();
    }
}

TEST(IndexMachines, NonPow2SetsLegalOnlyForHashedCaches)
{
    // The exact geometry validate() rejects above becomes legal once
    // the cache declares hash indexing with pow2 sets per slice.
    MachineConfig m = MachineConfig::paperScaledSlicedHash(2);
    EXPECT_EQ(m.l2.numSets(), 3072u);
    EXPECT_FALSE(isPowerOf2(m.l2.numSets()));
    EXPECT_NO_THROW(m.validate());
}

// ---- fig6-style lockstep verification on the hostile machines --------------

TEST(IndexVerify, SlicedHashGridLockstepHasZeroDivergences)
{
    // A small fig6-shaped grid (policies x cpus) on the sliced-hash
    // machine, with per-reference lockstep checks and periodic deep
    // compares. Any divergence throws DivergenceError.
    for (MappingPolicy pol :
         {MappingPolicy::PageColoring, MappingPolicy::Cdpc}) {
        for (std::uint32_t cpus : {2u, 4u}) {
            ExperimentConfig cfg;
            cfg.machine = MachineConfig::paperScaledSlicedHash(cpus);
            cfg.mapping = pol;
            cfg.verifyEvery = 2048;
            ExperimentResult r =
                runProgram(buildWorkload("102.swim"), cfg);
            EXPECT_GT(r.verifiedRefs, 0u);
            EXPECT_GT(r.verifiedDeepCompares, 0u);
        }
    }
}

TEST(IndexVerify, DramCacheLockstepHasZeroDivergences)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::dramCacheMode(4);
    cfg.mapping = MappingPolicy::Cdpc;
    cfg.verifyEvery = 2048;
    ExperimentResult r = runProgram(buildWorkload("101.tomcatv"), cfg);
    EXPECT_GT(r.verifiedRefs, 0u);
    EXPECT_GT(r.verifiedDeepCompares, 0u);
}
