/**
 * @file
 * Epoch-parallel engine tests: every configuration must produce
 * output bit-identical to the serial interleave at any --sim-threads
 * value, runs whose hooks need the global reference order must
 * degrade to serial, and the epoch statistics must account for every
 * committed line.
 *
 * Identity is checked on a full fingerprint: occurrence-weighted
 * totals (doubles printed as hexfloat — no tolerance), per-CPU
 * clocks, per-CPU memory statistics, bus statistics and VM
 * statistics. Any divergence in interleaving, MESI traffic or stat
 * accounting shows up as a byte difference.
 */

#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "harness/experiment.h"
#include "ir/layout.h"
#include "machine/simulator.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"
#include "workloads/builder.h"

namespace cdpc
{
namespace
{

struct Rig
{
    explicit Rig(std::uint32_t ncpus)
        : config(MachineConfig::paperScaled(ncpus)),
          phys(config.physPages, config.numColors()),
          policy(config.numColors()), vm(config, phys, policy),
          mem(config, vm), sim(config, mem)
    {}

    MachineConfig config;
    PhysMem phys;
    PageColoringPolicy policy;
    VirtualMemory vm;
    MemorySystem mem;
    MpSimulator sim;
};

void
put(std::ostream &os, double v)
{
    os << std::hexfloat << v << '|';
}

void
put(std::ostream &os, std::uint64_t v)
{
    os << v << '|';
}

std::string
fpTotals(const WeightedTotals &t)
{
    std::ostringstream os;
    put(os, t.insts);
    put(os, t.busy);
    put(os, t.memStall);
    put(os, t.kernel);
    put(os, t.imbalance);
    put(os, t.sequential);
    put(os, t.suppressed);
    put(os, t.sync);
    put(os, t.wall);
    put(os, t.barriers);
    put(os, t.refs);
    put(os, t.l1Misses);
    put(os, t.l2Hits);
    put(os, t.l2Misses);
    put(os, t.pageFaults);
    put(os, t.tlbMisses);
    put(os, t.l2HitStall);
    put(os, t.prefetchLateStall);
    put(os, t.prefetchFullStall);
    for (double v : t.missCount)
        put(os, v);
    for (double v : t.missStall)
        put(os, v);
    put(os, t.busDataBusy);
    put(os, t.busWritebackBusy);
    put(os, t.busUpgradeBusy);
    put(os, t.busQueueing);
    put(os, t.prefetchesIssued);
    put(os, t.prefetchesDropped);
    put(os, t.prefetchesUseful);
    return os.str();
}

void
fpMem(std::ostream &os, const CpuMemStats &m)
{
    put(os, m.loads);
    put(os, m.stores);
    put(os, m.ifetches);
    put(os, m.l1Hits);
    put(os, m.l1Misses);
    put(os, m.l2Hits);
    put(os, m.l2Misses);
    put(os, m.tlbMisses);
    put(os, m.pageFaults);
    for (std::uint64_t v : m.missCount)
        put(os, v);
    for (Cycles v : m.missStall)
        put(os, v);
    put(os, m.l2HitStall);
    put(os, m.kernelStall);
    put(os, m.prefetchLateStall);
    put(os, m.prefetchFullStall);
    put(os, m.prefetchesIssued);
    put(os, m.prefetchesDropped);
    put(os, m.prefetchesUseful);
}

std::string
fpRig(Rig &rig, std::uint32_t ncpus)
{
    std::ostringstream os;
    for (CpuId c = 0; c < ncpus; c++) {
        put(os, rig.sim.cpuClock(c));
        fpMem(os, rig.mem.cpuStats(c));
        os << '\n';
    }
    const BusStats &b = rig.mem.busStats();
    put(os, b.dataTxns);
    put(os, b.writebackTxns);
    put(os, b.upgradeTxns);
    put(os, b.dataBusy);
    put(os, b.writebackBusy);
    put(os, b.upgradeBusy);
    put(os, b.queueing);
    os << '\n';
    const VmStats &v = rig.vm.stats();
    put(os, v.translations);
    put(os, v.pageFaults);
    put(os, v.hintHonored);
    put(os, v.hintFallback);
    put(os, v.hintDenied);
    put(os, v.noPreference);
    put(os, v.hintStolen);
    put(os, v.reclaimedPages);
    return os.str();
}

/** A perfectly partitioned write sweep: the fast-path poster child. */
Program
privateSweep(std::uint64_t rows = 32, std::uint64_t cols = 256)
{
    ProgramBuilder b("epoch-private");
    std::uint32_t a = b.array2d("a", rows, cols);
    b.initNest(interleavedInit2d(b, {a}, rows, cols));
    Phase ph;
    ph.name = "p";
    ph.occurrences = 2;
    LoopNest nest;
    nest.label = "sweep";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {rows, cols};
    nest.instsPerIter = 10;
    nest.refs = {b.at2(a, 0, 1, 0, 0, true)};
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    return p;
}

/**
 * A row stencil (a[i-1], a[i], a[i+1] read; w[i] written): partition
 * boundary rows are genuinely shared, so both the fast path and the
 * deferred boundary path must run — and their interleaving must
 * still be bit-identical to serial.
 */
Program
stencilSweep(std::uint64_t rows = 32, std::uint64_t cols = 128)
{
    ProgramBuilder b("epoch-stencil");
    std::uint32_t a = b.array2d("a", rows, cols);
    std::uint32_t w = b.array2d("w", rows, cols);
    b.initNest(interleavedInit2d(b, {a, w}, rows, cols));
    Phase ph;
    ph.name = "p";
    ph.occurrences = 1;
    LoopNest nest;
    nest.label = "stencil";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {rows - 2, cols};
    nest.instsPerIter = 6;
    nest.refs = {b.at2(a, 0, 1, 0, 0, false),
                 b.at2(a, 0, 1, 1, 0, false),
                 b.at2(a, 0, 1, 2, 0, false),
                 b.at2(w, 0, 1, 1, 0, true)};
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    return p;
}

/**
 * Every CPU reads the same small shared vector (plus a private
 * write): nothing is provably local for the shared array, so nearly
 * everything defers — the engine must still match serial exactly.
 */
Program
sharedVector(std::uint64_t rows = 16, std::uint64_t cols = 64)
{
    ProgramBuilder b("epoch-shared");
    std::uint32_t a = b.array2d("a", rows, cols);
    std::uint32_t s = b.array1d("s", cols);
    LoopNest init = interleavedInit2d(b, {a}, rows, cols);
    init.refs.push_back(b.at1(s, 1, 1, 0, true));
    b.initNest(init);
    Phase ph;
    ph.name = "p";
    ph.occurrences = 1;
    LoopNest nest;
    nest.label = "shared";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {rows, cols};
    nest.instsPerIter = 8;
    nest.refs = {b.at2(a, 0, 1, 0, 0, true), b.at1(s, 1, 1, 0, false)};
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    return p;
}

/** Unanalyzable wrapped strides defeat the footprint prescan. */
Program
wrappedSweep(std::uint64_t rows = 16, std::uint64_t cols = 64)
{
    ProgramBuilder b("epoch-wrap");
    std::uint32_t a = b.array2d("a", rows, cols);
    b.markUnanalyzable(a);
    b.initNest(interleavedInit2d(b, {a}, rows, cols));
    Phase ph;
    ph.name = "p";
    ph.occurrences = 1;
    LoopNest nest;
    nest.label = "wrap";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {rows, cols};
    nest.instsPerIter = 5;
    AffineRef r = b.at2(a, 0, 1, 0, 0, true);
    r.wrapModElems = static_cast<std::int64_t>(rows * cols / 2);
    nest.refs = {r};
    ph.nests.push_back(nest);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    return p;
}

/** privateSweep with compiler prefetches (one scheduled, one late). */
Program
prefetchedSweep()
{
    Program p = privateSweep(32, 256);
    for (Phase &ph : p.steady)
        for (LoopNest &nest : ph.nests)
            for (std::size_t i = 0; i < nest.refs.size(); i++) {
                nest.refs[i].prefetchDistLines = 4;
                nest.refs[i].prefetchLate = (i % 2) == 1;
            }
    return p;
}

/**
 * Run @p make()'s program serially and at each thread count and
 * expect bit-identical fingerprints everywhere.
 */
void
expectIdentity(Program (*make)(), std::uint32_t ncpus,
               const SimOptions &base, bool expect_parallel = true)
{
    SimOptions serial = base;
    serial.simThreads = 1;
    Rig ref(ncpus);
    WeightedTotals st = ref.sim.run(make(), serial);
    std::string sfp = fpTotals(st) + fpRig(ref, ncpus);

    for (std::uint32_t threads : {2u, 4u, 8u}) {
        SimOptions par = base;
        par.simThreads = threads;
        Rig rig(ncpus);
        WeightedTotals pt = rig.sim.run(make(), par);
        std::string pfp = fpTotals(pt) + fpRig(rig, ncpus);
        EXPECT_EQ(sfp, pfp) << "simThreads=" << threads;
        if (expect_parallel) {
            EXPECT_GT(rig.sim.epochStats().parallelNests, 0u)
                << "simThreads=" << threads;
        }
    }
}

TEST(EpochParallel, EffectiveSimThreadsClamps)
{
    EXPECT_EQ(MpSimulator::effectiveSimThreads(1, 8), 1u);
    EXPECT_EQ(MpSimulator::effectiveSimThreads(3, 8), 3u);
    EXPECT_EQ(MpSimulator::effectiveSimThreads(16, 8), 8u);
    EXPECT_GE(MpSimulator::effectiveSimThreads(0, 8), 1u);
    EXPECT_LE(MpSimulator::effectiveSimThreads(0, 8), 8u);
    EXPECT_EQ(MpSimulator::effectiveSimThreads(4, 1), 1u);
}

TEST(EpochParallel, PrivateSweepBitIdentical)
{
    expectIdentity(+[] { return privateSweep(); }, 8, SimOptions{});
}

TEST(EpochParallel, PrivateSweepMostlyLocal)
{
    SimOptions opts;
    opts.simThreads = 4;
    // The cold warmup round correctly defers (those lines need the
    // bus); warm rounds must run on the fast path, so with enough
    // measured rounds local commits dominate.
    opts.measureRounds = 4;
    Rig rig(8);
    rig.sim.run(privateSweep(), opts);
    const EpochStats &es = rig.sim.epochStats();
    EXPECT_GT(es.parallelNests, 0u);
    EXPECT_GT(es.epochs, 0u);
    EXPECT_GT(es.localLines, 0u);
    EXPECT_GT(es.localLines, es.deferredLines);
}

TEST(EpochParallel, StencilSharingBitIdentical)
{
    expectIdentity(+[] { return stencilSweep(); }, 8, SimOptions{});

    // Boundary rows are shared: the deferred path must actually run.
    SimOptions opts;
    opts.simThreads = 4;
    Rig rig(8);
    rig.sim.run(stencilSweep(), opts);
    EXPECT_GT(rig.sim.epochStats().deferredLines, 0u);
    EXPECT_GT(rig.sim.epochStats().localLines, 0u);
}

TEST(EpochParallel, SharedVectorBitIdentical)
{
    expectIdentity(+[] { return sharedVector(); }, 8, SimOptions{});
}

TEST(EpochParallel, WrappedUnanalyzableBitIdentical)
{
    expectIdentity(+[] { return wrappedSweep(); }, 8, SimOptions{});
}

TEST(EpochParallel, PrefetchedSweepBitIdentical)
{
    expectIdentity(+[] { return prefetchedSweep(); }, 8,
                   SimOptions{});

    SimOptions opts;
    opts.simThreads = 4;
    Rig rig(8);
    WeightedTotals t = rig.sim.run(prefetchedSweep(), opts);
    EXPECT_GT(t.prefetchesIssued, 0.0);
}

TEST(EpochParallel, ColdFaultsAtBoundariesBitIdentical)
{
    // Without the init phase every page faults inside the parallel
    // nest; faults happen on deferred refs at epoch boundaries and
    // must land in the same order as serial.
    SimOptions opts;
    opts.runInit = false;
    expectIdentity(+[] { return privateSweep(); }, 8, opts);
}

TEST(EpochParallel, MultiRoundPhasesBitIdentical)
{
    SimOptions opts;
    opts.warmupRounds = 2;
    opts.measureRounds = 3;
    expectIdentity(+[] { return stencilSweep(); }, 8, opts);
}

TEST(EpochParallel, FewerCpusThanThreadsBitIdentical)
{
    expectIdentity(+[] { return privateSweep(); }, 4, SimOptions{});
    expectIdentity(+[] { return stencilSweep(); }, 2, SimOptions{});
}

TEST(EpochParallel, EpochWindowIsPacingOnly)
{
    SimOptions serial;
    Rig ref(8);
    WeightedTotals st = ref.sim.run(privateSweep(), serial);
    std::string sfp = fpTotals(st) + fpRig(ref, 8);
    for (Cycles window : {Cycles(1), Cycles(64), Cycles(100000)}) {
        SimOptions par;
        par.simThreads = 4;
        par.epochWindow = window;
        Rig rig(8);
        WeightedTotals pt = rig.sim.run(privateSweep(), par);
        EXPECT_EQ(sfp, fpTotals(pt) + fpRig(rig, 8))
            << "window=" << window;
    }
}

TEST(EpochParallel, UnsafeHooksDegradeToSerial)
{
    // statsInterval needs the global reference order: the engine
    // must refuse to shard and count the degrade.
    SimOptions opts;
    opts.simThreads = 4;
    opts.statsInterval = 64;
    std::vector<obs::IntervalSnapshot> snaps;
    opts.snapshots = &snaps;
    Rig rig(8);
    rig.sim.run(privateSweep(), opts);
    EXPECT_EQ(rig.sim.epochStats().parallelNests, 0u);
    EXPECT_GT(rig.sim.epochStats().serialNests, 0u);

    // batchLines > 1 already changes the serial interleave; the
    // epoch engine's identity target is batchLines <= 1 only.
    SimOptions batched;
    batched.simThreads = 4;
    batched.batchLines = 8;
    Rig rig2(8);
    rig2.sim.run(privateSweep(), batched);
    EXPECT_EQ(rig2.sim.epochStats().parallelNests, 0u);
}

TEST(EpochParallel, TraceSinkStaysEligibleAndIdentical)
{
    // Page traces are per-CPU sets (order-free): allowed in epoch
    // mode and must come out identical.
    auto collect = [](std::uint32_t threads) {
        Rig rig(8);
        PageTraceCollector trace(8);
        SimOptions opts;
        opts.simThreads = threads;
        opts.trace = &trace;
        rig.sim.run(privateSweep(), opts);
        std::ostringstream os;
        for (CpuId c = 0; c < 8; c++) {
            for (PageNum p : trace.pagesOf(c))
                os << p << ',';
            os << '\n';
        }
        return os.str();
    };
    EXPECT_EQ(collect(1), collect(4));
}

TEST(EpochParallel, HarnessWorkloadBitIdentical)
{
    // Full harness path (compiler, CDPC plan, faults, barrier
    // totals) on a real workload.
    auto fingerprint = [](std::uint32_t threads) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(8);
        cfg.mapping = MappingPolicy::Cdpc;
        cfg.prefetch = true;
        cfg.sim.simThreads = threads;
        ExperimentResult r = runWorkload("101.tomcatv", cfg);
        std::ostringstream os;
        os << fpTotals(r.totals);
        put(os, r.degradation.translations);
        put(os, r.degradation.pageFaults);
        put(os, r.degradation.hintHonored);
        put(os, r.degradation.hintFallback);
        put(os, r.hintsHonored);
        put(os, static_cast<std::uint64_t>(r.dataSetBytes));
        return os.str();
    };
    std::string serial = fingerprint(1);
    EXPECT_EQ(serial, fingerprint(2));
    EXPECT_EQ(serial, fingerprint(8));
}

TEST(EpochParallel, HarnessPressureFallbackBitIdentical)
{
    // Memory pressure + reclaim fallback: faults degrade, but the
    // fallback never rewrites existing mappings, so the engine stays
    // eligible and must match serial bit-for-bit.
    auto fingerprint = [](std::uint32_t threads) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(8);
        cfg.mapping = MappingPolicy::Cdpc;
        cfg.pressure.occupancy = 0.5;
        cfg.pressure.pattern = PressurePattern::Fragmented;
        cfg.fallback = FallbackKind::NearestColor;
        cfg.sim.simThreads = threads;
        ExperimentResult r = runWorkload("102.swim", cfg);
        std::ostringstream os;
        os << fpTotals(r.totals);
        put(os, r.degradation.hintHonored);
        put(os, r.degradation.hintFallback);
        put(os, r.degradation.reclaimedPages);
        put(os, static_cast<std::uint64_t>(r.pressurePages));
        return os.str();
    };
    EXPECT_EQ(fingerprint(1), fingerprint(4));
}

TEST(EpochParallel, HarnessDynamicRecolorBitIdentical)
{
    // Dynamic recoloring installs a conflict observer: the engine
    // must degrade (recoloring needs the global order) and still
    // produce identical output.
    auto fingerprint = [](std::uint32_t threads) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(4);
        cfg.mapping = MappingPolicy::PageColoring;
        cfg.dynamicRecolor = true;
        cfg.sim.simThreads = threads;
        ExperimentResult r = runWorkload("101.tomcatv", cfg);
        std::ostringstream os;
        os << fpTotals(r.totals);
        put(os, r.recolorStats.conflictsObserved);
        put(os, r.recolorStats.recolorings);
        return os.str();
    };
    EXPECT_EQ(fingerprint(1), fingerprint(4));
}

TEST(EpochParallel, HarnessStealFallbackBitIdentical)
{
    // The steal fallback may rewrite existing mappings mid-nest,
    // which would invalidate the footprint privacy proof — the
    // engine must degrade (vm.fallbackMaySteal()) yet stay
    // bit-identical.
    auto fingerprint = [](std::uint32_t threads) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(4);
        cfg.mapping = MappingPolicy::Cdpc;
        cfg.pressure.occupancy = 0.6;
        cfg.fallback = FallbackKind::Steal;
        cfg.sim.simThreads = threads;
        ExperimentResult r = runWorkload("101.tomcatv", cfg);
        std::ostringstream os;
        os << fpTotals(r.totals);
        put(os, r.degradation.hintStolen);
        return os.str();
    };
    EXPECT_EQ(fingerprint(1), fingerprint(4));
}

TEST(EpochParallel, HarnessLockstepVerifyBitIdentical)
{
    // verifyEvery installs a MemObserver: parallelSafe() is false,
    // the run degrades to serial, and the verifier still sees every
    // reference.
    auto run = [](std::uint32_t threads) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(4);
        cfg.verifyEvery = 50000;
        cfg.sim.simThreads = threads;
        return runWorkload("101.tomcatv", cfg);
    };
    ExperimentResult a = run(1);
    ExperimentResult b = run(4);
    EXPECT_EQ(fpTotals(a.totals), fpTotals(b.totals));
    EXPECT_GT(b.verifiedRefs, 0u);
    EXPECT_EQ(a.verifiedRefs, b.verifiedRefs);
}

TEST(EpochParallel, LineAccountingConsistent)
{
    // local + deferred must equal the demand lines the serial run
    // executes in the steady (and warmup) parallel nests.
    SimOptions opts;
    opts.simThreads = 4;
    Rig rig(8);
    rig.sim.run(stencilSweep(), opts);
    const EpochStats &es = rig.sim.epochStats();

    Rig ref(8);
    ref.sim.run(stencilSweep(), SimOptions{});
    // Total demand loads+stores match (init runs serially in both).
    std::uint64_t par_refs = rig.mem.totalStats().loads +
                             rig.mem.totalStats().stores;
    std::uint64_t ser_refs = ref.mem.totalStats().loads +
                             ref.mem.totalStats().stores;
    EXPECT_EQ(par_refs, ser_refs);
    EXPECT_GT(es.localLines + es.deferredLines, 0u);
}

} // namespace
} // namespace cdpc
