/**
 * @file
 * Tests for the dynamic-recoloring extension and its supporting
 * primitives: VirtualMemory::remap, Tlb::invalidate,
 * MemorySystem::purgePage and the conflict observer hook.
 */

#include <gtest/gtest.h>

#include "common/logging.h"
#include "machine/config.h"
#include "mem/memsystem.h"
#include "mem/recolor.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"

namespace cdpc
{
namespace
{

class RecolorTest : public ::testing::Test
{
  protected:
    RecolorTest()
        : config(MachineConfig::paperScaled(2)),
          phys(config.physPages, config.numColors()),
          policy(config.numColors()), vm(config, phys, policy),
          mem(config, vm)
    {}

    AccessOutcome
    load(CpuId cpu, VAddr va)
    {
        MemAccess a;
        a.va = va;
        a.kind = AccessKind::Load;
        return mem.access(cpu, a, 0);
    }

    VAddr
    coloredVa(Color c, std::uint64_t round = 0)
    {
        return (c + round * config.numColors()) * config.pageBytes;
    }

    MachineConfig config;
    PhysMem phys;
    PageColoringPolicy policy;
    VirtualMemory vm;
    MemorySystem mem;
};

TEST_F(RecolorTest, RemapChangesColor)
{
    vm.touch(coloredVa(5), 0);
    EXPECT_EQ(vm.colorOf(coloredVa(5)), 5u);
    auto newc = vm.remap(vm.vpnOf(coloredVa(5)), 9);
    ASSERT_TRUE(newc.has_value());
    EXPECT_EQ(*newc, 9u);
    EXPECT_EQ(vm.colorOf(coloredVa(5)), 9u);
}

TEST_F(RecolorTest, RemapOfUnmappedReturnsNullopt)
{
    EXPECT_FALSE(vm.remap(12345, 3).has_value());
}

TEST_F(RecolorTest, RemapFreesTheOldPage)
{
    std::uint64_t before = phys.freePages();
    vm.touch(coloredVa(5), 0);
    vm.remap(vm.vpnOf(coloredVa(5)), 9);
    EXPECT_EQ(phys.freePages(), before - 1);
}

TEST_F(RecolorTest, TlbSingleInvalidate)
{
    Tlb tlb(8);
    tlb.access(7);
    tlb.access(9);
    EXPECT_TRUE(tlb.invalidate(7));
    EXPECT_FALSE(tlb.invalidate(7));
    EXPECT_FALSE(tlb.contains(7));
    EXPECT_TRUE(tlb.contains(9));
}

TEST_F(RecolorTest, PurgePageEvictsAllCachedLines)
{
    VAddr va = coloredVa(3);
    load(0, va);
    load(1, va); // both CPUs cache the line
    EXPECT_TRUE(load(0, va).l1Hit);
    mem.purgePage(va);
    // The line is gone everywhere: the next access re-misses...
    AccessOutcome out = load(0, va);
    EXPECT_TRUE(out.l2Miss);
    // ...and the TLB was shot down on both CPUs.
    EXPECT_TRUE(out.tlbMiss);
}

TEST_F(RecolorTest, PurgePageWritesBackDirtyLines)
{
    MemAccess st;
    st.va = coloredVa(4);
    st.kind = AccessKind::Store;
    mem.access(0, st, 0);
    std::uint64_t wb = mem.busStats().writebackTxns;
    mem.purgePage(coloredVa(4));
    EXPECT_GT(mem.busStats().writebackTxns, wb);
}

TEST_F(RecolorTest, ObserverFiresOnConflictMissesOnly)
{
    std::uint64_t fired = 0;
    mem.setConflictObserver(
        [&](CpuId, PageNum, Cycles) -> Cycles {
            fired++;
            return 0;
        });
    // Conflict pattern: three same-color pages round-robined.
    for (int round = 0; round < 5; round++) {
        for (std::uint64_t r = 0; r < 3; r++)
            load(0, coloredVa(6, r));
    }
    EXPECT_GT(fired, 0u);
    std::uint64_t fired_before_capacity = fired;
    // A streaming (capacity) pattern must not fire the observer;
    // two passes so the second classifies as capacity, not cold.
    for (int pass = 0; pass < 2; pass++) {
        for (std::uint64_t i = 0; i < config.l2.numLines() * 3; i++)
            load(1, 0x4000000 + i * config.l2.lineBytes);
    }
    const CpuMemStats &s = mem.cpuStats(1);
    EXPECT_GT(s.missCount[static_cast<int>(MissKind::Capacity)], 0u);
    EXPECT_EQ(fired, fired_before_capacity);
}

TEST_F(RecolorTest, ObserverCyclesChargedAsKernelTime)
{
    mem.setConflictObserver(
        [](CpuId, PageNum, Cycles) -> Cycles { return 777; });
    for (int round = 0; round < 3; round++) {
        for (std::uint64_t r = 0; r < 3; r++)
            load(0, coloredVa(6, r));
    }
    // Find one conflicted access and check the charge.
    AccessOutcome out = load(0, coloredVa(6, 0));
    if (out.l2Miss && out.missKind == MissKind::Conflict) {
        EXPECT_GE(out.kernel, 777u);
        EXPECT_GE(out.stall, 777u);
    }
    EXPECT_GT(mem.cpuStats(0).kernelStall, 777u);
}

TEST_F(RecolorTest, RecolorerMovesHotPagesApart)
{
    RecolorConfig rc;
    rc.missThreshold = 4;
    DynamicRecolorer recolorer(vm, phys, mem, rc);
    mem.setConflictObserver(
        [&](CpuId cpu, PageNum vpn, Cycles now) {
            return recolorer.onConflictMiss(cpu, vpn, now);
        });

    VAddr a = coloredVa(6, 0);
    VAddr b = coloredVa(6, 1);
    for (int round = 0; round < 40; round++) {
        load(0, a);
        load(0, b);
    }
    EXPECT_GT(recolorer.stats().recolorings, 0u);
    EXPECT_GT(recolorer.stats().overheadCycles, 0u);
    // After recoloring the two pages no longer share a color.
    EXPECT_NE(vm.colorOf(a), vm.colorOf(b));
    // And the conflict storm has stopped: both now hit.
    load(0, a);
    load(0, b);
    EXPECT_TRUE(load(0, a).l1Hit || load(0, a).l2Hit);
    EXPECT_TRUE(load(0, b).l1Hit || load(0, b).l2Hit);
}

TEST_F(RecolorTest, RecolorerRespectsMaxRecolorings)
{
    RecolorConfig rc;
    rc.missThreshold = 1;
    rc.maxRecolorings = 2;
    DynamicRecolorer recolorer(vm, phys, mem, rc);
    mem.setConflictObserver(
        [&](CpuId cpu, PageNum vpn, Cycles now) {
            return recolorer.onConflictMiss(cpu, vpn, now);
        });
    for (int round = 0; round < 50; round++) {
        for (std::uint64_t r = 0; r < 3; r++)
            load(0, coloredVa(9, r));
    }
    EXPECT_LE(recolorer.stats().recolorings, 2u);
}

TEST_F(RecolorTest, ZeroThresholdRejected)
{
    RecolorConfig rc;
    rc.missThreshold = 0;
    EXPECT_THROW(DynamicRecolorer(vm, phys, mem, rc), FatalError);
}

} // namespace
} // namespace cdpc
