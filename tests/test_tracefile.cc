/**
 * @file
 * Tests for trace capture and replay: file round-trip, capture from
 * the simulator, and the replay-equivalence property — replaying a
 * recorded demand stream through an identically configured memory
 * system reproduces the exact external-cache miss counts.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "common/logging.h"
#include "ir/layout.h"
#include "machine/simulator.h"
#include "machine/tracefile.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"
#include "workloads/builder.h"

namespace cdpc
{
namespace
{

std::string
tmpPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/cdpc_trace_" + tag +
           ".bin";
}

TEST(TraceFile, RoundTrip)
{
    std::string path = tmpPath("roundtrip");
    {
        TraceWriter w(path, 4);
        TraceRecord r;
        r.va = 0x1234;
        r.insts = 7;
        r.wordMask = 0xff;
        r.elems = 8;
        r.cpu = 3;
        r.flags = 1;
        w.append(r);
        r.va = 0x5678;
        r.flags = 2;
        w.append(r);
    }
    TraceReader reader(path);
    EXPECT_EQ(reader.numCpus(), 4u);
    EXPECT_EQ(reader.records(), 2u);
    TraceRecord r;
    ASSERT_TRUE(reader.next(r));
    EXPECT_EQ(r.va, 0x1234u);
    EXPECT_EQ(r.insts, 7u);
    EXPECT_EQ(r.wordMask, 0xffu);
    EXPECT_EQ(r.elems, 8u);
    EXPECT_EQ(r.cpu, 3);
    EXPECT_TRUE(r.isWrite());
    EXPECT_FALSE(r.isIfetch());
    ASSERT_TRUE(reader.next(r));
    EXPECT_TRUE(r.isIfetch());
    EXPECT_FALSE(reader.next(r));
    std::remove(path.c_str());
}

TEST(TraceFile, RejectsGarbage)
{
    std::string path = tmpPath("garbage");
    {
        std::ofstream f(path, std::ios::binary);
        f << "this is not a trace file at all, sorry";
    }
    EXPECT_THROW(TraceReader reader(path), FatalError);
    std::remove(path.c_str());
}

TEST(TraceFile, MissingFileRejected)
{
    EXPECT_THROW(TraceReader("/nonexistent/trace.bin"), FatalError);
}

class TraceCaptureTest : public ::testing::Test
{
  protected:
    static Program
    makeProgram()
    {
        ProgramBuilder b("trace-test");
        std::uint32_t a = b.array2d("a", 16, 64);
        std::uint32_t o = b.array2d("o", 16, 64);
        b.initNest(interleavedInit2d(b, {a, o}, 16, 64));
        Phase ph;
        ph.name = "p";
        LoopNest nest;
        nest.label = "sweep";
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        nest.bounds = {16, 64};
        nest.instsPerIter = 10;
        nest.refs = {b.at2(a, 0, 1, 0, 0),
                     b.at2(o, 0, 1, 0, 0, true)};
        ph.nests.push_back(nest);
        b.phase(ph);
        Program p = b.build();
        assignAddresses(p, LayoutOptions{});
        return p;
    }

    struct Rig
    {
        explicit Rig(std::uint32_t ncpus)
            : config(MachineConfig::paperScaled(ncpus)),
              phys(config.physPages, config.numColors()),
              policy(config.numColors()), vm(config, phys, policy),
              mem(config, vm), sim(config, mem)
        {}

        MachineConfig config;
        PhysMem phys;
        PageColoringPolicy policy;
        VirtualMemory vm;
        MemorySystem mem;
        MpSimulator sim;
    };
};

TEST_F(TraceCaptureTest, SimulatorRecordsDemandStream)
{
    std::string path = tmpPath("capture");
    Rig rig(2);
    Program p = makeProgram();
    {
        TraceWriter writer(path, 2);
        SimOptions opts;
        opts.warmupRounds = 0;
        opts.record = &writer;
        rig.sim.run(p, opts);
    }
    TraceReader reader(path);
    // One record per line access: init (2 arrays, 16KB / 64B = 256
    // lines) + steady (256 lines) = 512.
    EXPECT_EQ(reader.records(), 512u);
    std::remove(path.c_str());
}

TEST_F(TraceCaptureTest, ReplayReproducesMissCounts)
{
    std::string path = tmpPath("replay");
    Rig record_rig(2);
    Program p = makeProgram();
    {
        TraceWriter writer(path, 2);
        SimOptions opts;
        opts.warmupRounds = 0;
        opts.record = &writer;
        record_rig.sim.run(p, opts);
    }
    CpuMemStats recorded = record_rig.mem.totalStats();

    Rig replay_rig(2);
    TraceReader reader(path);
    ReplayResult res = replayTrace(reader, replay_rig.mem);
    CpuMemStats replayed = replay_rig.mem.totalStats();

    EXPECT_EQ(res.records, reader.records());
    EXPECT_EQ(replayed.l2Misses, recorded.l2Misses);
    EXPECT_EQ(replayed.l1Misses, recorded.l1Misses);
    EXPECT_EQ(replayed.totalRefs(), recorded.totalRefs());
    for (std::size_t k = 0; k < recorded.missCount.size(); k++) {
        EXPECT_EQ(replayed.missCount[k], recorded.missCount[k])
            << "miss kind " << k;
    }
    replay_rig.mem.auditInvariants();
    std::remove(path.c_str());
}

TEST_F(TraceCaptureTest, ReplayOnDifferentCacheDiffers)
{
    // The point of a trace: replay the same stream against another
    // configuration. A 4x external cache must miss less.
    std::string path = tmpPath("whatif");
    Rig record_rig(2);
    Program p = makeProgram();
    {
        TraceWriter writer(path, 2);
        SimOptions opts;
        opts.warmupRounds = 0;
        opts.record = &writer;
        record_rig.sim.run(p, opts);
    }

    MachineConfig big = MachineConfig::paperScaledBig(2);
    PhysMem phys(big.physPages, big.numColors());
    PageColoringPolicy policy(big.numColors());
    VirtualMemory vm(big, phys, policy);
    MemorySystem mem(big, vm);
    TraceReader reader(path);
    replayTrace(reader, mem);
    EXPECT_LE(mem.totalStats().l2Misses,
              record_rig.mem.totalStats().l2Misses);
    std::remove(path.c_str());
}

TEST_F(TraceCaptureTest, ReplayRejectsTooFewCpus)
{
    std::string path = tmpPath("cpus");
    {
        TraceWriter w(path, 8);
    }
    Rig rig(2);
    TraceReader reader(path);
    EXPECT_THROW(replayTrace(reader, rig.mem), FatalError);
    std::remove(path.c_str());
}

} // namespace
} // namespace cdpc
