/**
 * @file
 * The multi-tenant scenario layer: broker lease arithmetic, budget
 * enforcement through the VM wrappers, placement determinism, the
 * context-switch pollution primitives in MemorySystem, and the two
 * contracts the subsystem stakes its correctness on — the 1-tenant
 * degeneracy (scenario == plain experiment, byte for byte) and the
 * serial==parallel identity of the alone-baseline fan-out.
 */

#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "harness/experiment.h"
#include "mem/memsystem.h"
#include "tenant/broker.h"
#include "tenant/scenario.h"
#include "tenant/scheduler.h"
#include "tenant/spec.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"

namespace cdpc
{
namespace
{

using tenant::AloneCache;
using tenant::BudgetPolicy;
using tenant::ColorBroker;
using tenant::ColorLease;
using tenant::LeasedFallbackPolicy;
using tenant::LeasedMappingPolicy;
using tenant::Placement;
using tenant::ScenarioOptions;
using tenant::ScenarioResult;
using tenant::ScenarioSpec;
using tenant::SchedulerKind;
using tenant::TenantFootprint;

ScenarioSpec
parseSpecText(const std::string &text)
{
    std::istringstream in(text);
    return tenant::parseScenario(in, "test.spec");
}

// ---- ColorBroker -------------------------------------------------------

TEST(ColorBroker, HardBudgetsCarveDisjointLeases)
{
    ScenarioSpec spec = parseSpecText(
        "scenario cpus=8 machine=scaled budget=hard\n"
        "tenant a workload=mgrid vcpus=2 colors=64\n"
        "tenant b workload=swim vcpus=2 colors=64\n"
        "tenant c workload=tomcatv vcpus=2 colors=64\n");
    ColorBroker broker(spec);
    EXPECT_EQ(broker.numColors(), 256u);
    std::vector<bool> seen(256, false);
    for (std::size_t t = 0; t < 3; t++) {
        const ColorLease &l = broker.lease(t);
        EXPECT_EQ(l.colors.size(), 64u);
        EXPECT_FALSE(l.unlimited);
        for (Color c : l.colors) {
            EXPECT_FALSE(seen[c]) << "color " << c
                                  << " leased twice";
            seen[c] = true;
        }
    }
}

TEST(ColorBroker, ZeroColorsMeansUnlimited)
{
    ScenarioSpec spec = parseSpecText(
        "scenario cpus=4 machine=scaled budget=best-effort\n"
        "tenant a workload=mgrid vcpus=2 colors=0\n");
    ColorBroker broker(spec);
    const ColorLease &l = broker.lease(0);
    EXPECT_TRUE(l.unlimited);
    EXPECT_EQ(l.colors.size(), 256u);
}

TEST(ColorBroker, OversubscribedCarveWrapsAround)
{
    // 3 x 96 colors on a 256-color machine: the last lease wraps
    // past color 255 and overlaps the first — contention by design.
    ScenarioSpec spec = parseSpecText(
        "scenario cpus=8 machine=scaled budget=best-effort\n"
        "tenant a workload=mgrid vcpus=2 colors=96\n"
        "tenant b workload=swim vcpus=2 colors=96\n"
        "tenant c workload=tomcatv vcpus=2 colors=96\n");
    ColorBroker broker(spec);
    EXPECT_EQ(broker.lease(2).colors.size(), 96u);
    // c owns [192,256) + [0,32): overlaps a's [0,96).
    EXPECT_TRUE(broker.lease(2).contains(0));
    EXPECT_TRUE(broker.lease(0).contains(0));
    EXPECT_FALSE(broker.lease(1).contains(0));
}

TEST(ColorBroker, ProportionalSharesPartitionByWeight)
{
    ScenarioSpec spec = parseSpecText(
        "scenario cpus=8 machine=scaled budget=proportional\n"
        "tenant a workload=mgrid vcpus=2 weight=1\n"
        "tenant b workload=swim vcpus=2 weight=3\n");
    ColorBroker broker(spec);
    EXPECT_EQ(broker.lease(0).colors.size(), 64u);
    EXPECT_EQ(broker.lease(1).colors.size(), 192u);
    // A partition: disjoint and exhaustive.
    std::vector<bool> seen(256, false);
    for (std::size_t t = 0; t < 2; t++)
        for (Color c : broker.lease(t).colors) {
            EXPECT_FALSE(seen[c]);
            seen[c] = true;
        }
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(ColorBroker, ReclaimIsIdempotent)
{
    ScenarioSpec spec = parseSpecText(
        "scenario cpus=4 machine=scaled budget=hard\n"
        "tenant a workload=mgrid vcpus=2 colors=32\n"
        "tenant b workload=swim vcpus=2 colors=32\n");
    ColorBroker broker(spec);
    EXPECT_EQ(broker.releasedColors(), 0u);
    broker.reclaim(0);
    EXPECT_EQ(broker.releasedColors(), 32u);
    broker.reclaim(0);
    EXPECT_EQ(broker.releasedColors(), 32u);
    broker.reclaim(1);
    EXPECT_EQ(broker.releasedColors(), 64u);
}

TEST(ColorLeaseTest, ProjectIsIdentityInsideDeterministicOutside)
{
    ColorLease lease;
    lease.colors = {8, 9, 10, 11};
    EXPECT_TRUE(lease.contains(9));
    EXPECT_FALSE(lease.contains(12));
    EXPECT_EQ(lease.project(10), 10u);
    Color out = lease.project(100);
    EXPECT_TRUE(lease.contains(out));
    EXPECT_EQ(lease.project(100), out); // deterministic
}

// ---- Budget enforcement through the VM wrappers ------------------------

/** A policy with no opinion, for exercising the kNoColor path. */
class NoPreferencePolicy : public PageMappingPolicy
{
  public:
    Color
    preferredColor(const FaultContext &) override
    {
        return kNoColor;
    }
    std::string name() const override { return "none"; }
};

TEST(LeasedMapping, ProjectsEveryPreferenceIntoTheLease)
{
    PageColoringPolicy inner(256);
    ColorLease lease;
    lease.colors = {8, 9, 10, 11, 12, 13, 14, 15};
    LeasedMappingPolicy hard(inner, lease, true);
    for (PageNum vpn = 0; vpn < 512; vpn++) {
        FaultContext ctx;
        ctx.vpn = vpn;
        EXPECT_TRUE(lease.contains(hard.preferredColor(ctx)));
    }
    // In-lease preferences pass through unchanged.
    FaultContext ctx;
    ctx.vpn = 10;
    EXPECT_EQ(hard.preferredColor(ctx), 10u);
}

TEST(LeasedMapping, HardPinsNoPreferenceSoftLeavesIt)
{
    NoPreferencePolicy inner;
    ColorLease lease;
    lease.colors = {4, 5};
    LeasedMappingPolicy hard(inner, lease, true);
    LeasedMappingPolicy soft(inner, lease, false);
    FaultContext ctx;
    ctx.vpn = 7;
    EXPECT_TRUE(lease.contains(hard.preferredColor(ctx)));
    EXPECT_EQ(soft.preferredColor(ctx), kNoColor);
}

TEST(LeasedFallback, ExhaustsLeaseThenOverflowsCounted)
{
    // 8 colors x 2 pages each; lease = {0, 1} -> 4 lease pages.
    PhysMem phys(16, 8);
    ColorLease lease;
    lease.colors = {0, 1};
    LeasedFallbackPolicy fb(makeFallbackPolicy(FallbackKind::AnyColor),
                            lease, true);
    for (int i = 0; i < 4; i++) {
        auto page = fb.allocFallback(phys, nullptr, 0);
        ASSERT_TRUE(page.has_value());
        EXPECT_TRUE(lease.contains(phys.colorOf(*page)));
    }
    EXPECT_EQ(fb.leaseAllocs(), 4u);
    EXPECT_EQ(fb.overflows(), 0u);

    // The lease is physically dry: liveness wins, the overflow is
    // counted, and the page comes from outside the budget.
    auto page = fb.allocFallback(phys, nullptr, 0);
    ASSERT_TRUE(page.has_value());
    EXPECT_FALSE(lease.contains(phys.colorOf(*page)));
    EXPECT_EQ(fb.overflows(), 1u);
}

TEST(LeasedFallback, ReclaimsCompetitorPagesWithinTheLease)
{
    PhysMem phys(16, 8);
    ColorLease lease;
    lease.colors = {2};
    // Competitors hold both color-2 pages, reclaimable.
    for (int i = 0; i < 2; i++) {
        auto page = phys.tryAllocExact(2);
        ASSERT_TRUE(page.has_value());
        phys.markReclaimable(*page);
    }
    LeasedFallbackPolicy fb(makeFallbackPolicy(FallbackKind::AnyColor),
                            lease, true);
    auto page = fb.allocFallback(phys, nullptr, 2);
    ASSERT_TRUE(page.has_value());
    EXPECT_EQ(phys.colorOf(*page), 2u);
    EXPECT_EQ(fb.overflows(), 0u);
}

// ---- Placement ---------------------------------------------------------

ScenarioSpec
placementSpec(std::size_t tenants)
{
    std::ostringstream text;
    text << "scenario cpus=8 machine=scaled budget=best-effort\n";
    const char *workloads[] = {"mgrid", "swim", "tomcatv", "hydro2d"};
    for (std::size_t i = 0; i < tenants; i++)
        text << "tenant t" << i << " workload=" << workloads[i % 4]
             << " vcpus=1\n";
    return parseSpecText(text.str());
}

TEST(PlaceTenants, RoundRobinCyclesDeclarationOrder)
{
    ScenarioSpec spec = placementSpec(3);
    Placement p = placeTenants(spec, {}, SchedulerKind::RoundRobin, 2);
    EXPECT_EQ(p.cpuOf[0][0], 0u);
    EXPECT_EQ(p.cpuOf[1][0], 1u);
    EXPECT_EQ(p.cpuOf[2][0], 0u);
    EXPECT_EQ(p.residents[0].size(), 2u);
    EXPECT_EQ(p.residents[1].size(), 1u);
}

TEST(PlaceTenants, LocalityTieBreaksTowardEmptierThenLowerCpu)
{
    // All-zero footprints: every CPU costs the same, so placement is
    // decided purely by the documented tie-break. Twice, to lock
    // determinism.
    ScenarioSpec spec = placementSpec(3);
    std::vector<TenantFootprint> fp(3);
    for (TenantFootprint &f : fp)
        f.weight.assign(8, 0.0);
    Placement a =
        placeTenants(spec, fp, SchedulerKind::LocalityAware, 2);
    Placement b =
        placeTenants(spec, fp, SchedulerKind::LocalityAware, 2);
    EXPECT_EQ(a.cpuOf, b.cpuOf);
    EXPECT_EQ(a.cpuOf[0][0], 0u); // empty tie -> lower id
    EXPECT_EQ(a.cpuOf[1][0], 1u); // emptier CPU
    EXPECT_EQ(a.cpuOf[2][0], 0u); // load tie -> lower id
}

TEST(PlaceTenants, LocalityAvoidsPredictedOverlap)
{
    // t0/t2 share colors, t1/t3 share colors, the pairs are
    // disjoint. Round-robin on 2 CPUs co-locates the conflicting
    // pairs; locality-aware must not.
    ScenarioSpec spec = placementSpec(4);
    std::vector<TenantFootprint> fp(4);
    fp[0].weight = {1, 0};
    fp[2].weight = {1, 0};
    fp[1].weight = {0, 1};
    fp[3].weight = {0, 1};

    Placement rr = placeTenants(spec, {}, SchedulerKind::RoundRobin, 2);
    EXPECT_EQ(rr.cpuOf[0][0], rr.cpuOf[2][0]); // the bad pairing

    Placement la =
        placeTenants(spec, fp, SchedulerKind::LocalityAware, 2);
    EXPECT_NE(la.cpuOf[0][0], la.cpuOf[2][0]);
    EXPECT_NE(la.cpuOf[1][0], la.cpuOf[3][0]);
}

TEST(FootprintOverlapTest, ElementwiseMin)
{
    TenantFootprint a, b;
    a.weight = {2, 0, 5};
    b.weight = {1, 7, 3};
    EXPECT_DOUBLE_EQ(tenant::footprintOverlap(a, b), 1 + 0 + 3);
}

// ---- MemorySystem context-switch primitives ----------------------------

class TenantMemTest : public ::testing::Test
{
  protected:
    TenantMemTest()
        : config(MachineConfig::paperScaled(2)),
          phys(config.physPages, config.numColors()),
          policy(config.numColors()), vm(config, phys, policy),
          mem(config, vm)
    {}

    void
    load(CpuId cpu, VAddr va)
    {
        MemAccess a;
        a.va = va;
        a.kind = AccessKind::Load;
        mem.access(cpu, a, 0);
    }

    VAddr
    coloredVa(Color c)
    {
        return static_cast<VAddr>(c) * config.pageBytes;
    }

    MachineConfig config;
    PhysMem phys;
    PageColoringPolicy policy;
    VirtualMemory vm;
    MemorySystem mem;
};

TEST_F(TenantMemTest, ColorFootprintTracksResidentColors)
{
    load(0, coloredVa(5));
    load(0, coloredVa(9));
    std::vector<std::uint8_t> fp = mem.colorFootprint(0);
    ASSERT_EQ(fp.size(), config.numColors());
    EXPECT_TRUE(fp[5]);
    EXPECT_TRUE(fp[9]);
    EXPECT_FALSE(fp[6]);
    // The other CPU's cache is untouched.
    std::vector<std::uint8_t> other = mem.colorFootprint(1);
    EXPECT_FALSE(other[5]);
}

TEST_F(TenantMemTest, EvictColorsInvalidatesOnlyMaskedColors)
{
    load(0, coloredVa(5));
    load(0, coloredVa(9));
    std::vector<std::uint8_t> mask(config.numColors(), 0);
    mask[5] = 1;
    std::uint64_t evicted = mem.evictColors(0, mask);
    EXPECT_GT(evicted, 0u);
    std::vector<std::uint8_t> fp = mem.colorFootprint(0);
    EXPECT_FALSE(fp[5]);
    EXPECT_TRUE(fp[9]);
    mem.auditInvariants(); // structure stays coherent
}

TEST_F(TenantMemTest, FlushTlbForcesRefillsNotReloads)
{
    load(0, coloredVa(3));
    std::uint64_t missesBefore = mem.cpuStats(0).tlbMisses;
    mem.flushTlb(0);
    load(0, coloredVa(3));
    EXPECT_EQ(mem.cpuStats(0).tlbMisses, missesBefore + 1);
    mem.auditInvariants();
}

// ---- Scenario integration ----------------------------------------------

TEST(Scenario, SingleTenantDegeneratesToPlainExperiment)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(2);
    cfg.mapping = MappingPolicy::Cdpc;
    ExperimentResult plain = runWorkload("107.mgrid", cfg);
    ExperimentResult viaTenant =
        tenant::runSingleTenant("107.mgrid", cfg);

    EXPECT_EQ(plain.totals.wall, viaTenant.totals.wall);
    EXPECT_EQ(plain.totals.combinedTime(),
              viaTenant.totals.combinedTime());
    EXPECT_EQ(plain.totals.l2Misses, viaTenant.totals.l2Misses);
    EXPECT_EQ(plain.hintsHonored, viaTenant.hintsHonored);
    EXPECT_EQ(plain.degradation.pageFaults,
              viaTenant.degradation.pageFaults);
    EXPECT_EQ(plain.degradation.hintHonored,
              viaTenant.degradation.hintHonored);
    EXPECT_EQ(plain.degradation.hintFallback,
              viaTenant.degradation.hintFallback);
}

const char *kTwoTenantSpec =
    "scenario cpus=1 machine=scaled budget=hard scheduler=rr\n"
    "tenant a workload=mgrid vcpus=1 colors=128\n"
    "tenant b workload=swim vcpus=1 colors=128\n";

TEST(Scenario, HardDisjointBudgetsIsolateCoResidentTenants)
{
    // Both tenants time-share the single CPU, so pollution would be
    // maximal — but the leases are disjoint, so the context-switch
    // eviction mask never matches and isolation holds.
    ScenarioSpec spec = parseSpecText(kTwoTenantSpec);
    ScenarioOptions opts;
    opts.computeAlone = false;
    ScenarioResult res = runScenario(spec, opts);
    ASSERT_EQ(res.tenants.size(), 2u);
    EXPECT_EQ(res.totalCrossEvictions, 0u);
    EXPECT_EQ(res.tenants[0].leaseSize, 128u);
    EXPECT_FALSE(res.tenants[0].unlimited);
    EXPECT_GT(res.tenants[0].result.totals.wall, 0.0);
}

TEST(Scenario, OverlappingTenantsSufferSymmetricEvictions)
{
    ScenarioSpec spec = parseSpecText(
        "scenario cpus=1 machine=scaled budget=best-effort\n"
        "tenant a workload=mgrid vcpus=1 colors=0\n"
        "tenant b workload=swim vcpus=1 colors=0\n");
    ScenarioOptions opts;
    opts.computeAlone = false;
    ScenarioResult res = runScenario(spec, opts);
    EXPECT_GT(res.totalCrossEvictions, 0u);
    std::uint64_t suffered = 0, inflicted = 0;
    for (const tenant::TenantResult &t : res.tenants) {
        suffered += t.crossTenantEvictions;
        inflicted += t.evictionsInflicted;
        EXPECT_GT(t.tlbFlushes, 0u);
    }
    EXPECT_EQ(suffered, inflicted);
    EXPECT_EQ(res.totalCrossEvictions, suffered);
}

TEST(Scenario, BudgetEnforcementUnderPressure)
{
    ScenarioSpec spec = parseSpecText(
        "scenario cpus=2 machine=scaled budget=hard pressure=60 "
        "pattern=fragmented\n"
        "tenant a workload=mgrid vcpus=1 colors=64\n"
        "tenant b workload=swim vcpus=1 colors=64\n");
    ScenarioOptions opts;
    opts.computeAlone = false;
    ScenarioResult res = runScenario(spec, opts);
    // The pressure pushes allocations off their preferred colors and
    // into the leased fallback path, which must stay in-lease.
    std::uint64_t leaseAllocs = 0;
    for (const tenant::TenantResult &t : res.tenants)
        leaseAllocs += t.leaseAllocs;
    EXPECT_GT(leaseAllocs, 0u);
    EXPECT_EQ(res.totalCrossEvictions, 0u); // leases stay disjoint
}

TEST(Scenario, ExitingTenantsReclaimTheirLeases)
{
    ScenarioSpec spec = parseSpecText(kTwoTenantSpec);
    ScenarioOptions opts;
    opts.computeAlone = false;
    ScenarioResult res = runScenario(spec, opts);
    EXPECT_EQ(res.leasesReclaimed, 2u);
    for (const tenant::TenantResult &t : res.tenants) {
        EXPECT_GE(t.exitRound, 1u);
        EXPECT_LE(t.exitRound, res.rounds);
    }
}

TEST(Scenario, SerialEqualsParallelThroughTheRunner)
{
    // The alone-baseline fan-out rides the work-stealing ThreadPool;
    // the canonical serialization must not depend on the job count.
    ScenarioSpec spec = parseSpecText(kTwoTenantSpec);
    ScenarioOptions serial;
    serial.jobs = 1;
    ScenarioOptions parallel;
    parallel.jobs = 4;
    std::string a = canonicalScenario(runScenario(spec, serial));
    std::string b = canonicalScenario(runScenario(spec, parallel));
    EXPECT_EQ(a, b);
    EXPECT_NE(a.find("slowdown="), std::string::npos);
}

TEST(Scenario, AloneCacheIsSharedAcrossRuns)
{
    ScenarioSpec spec = parseSpecText(kTwoTenantSpec);
    AloneCache cache;
    ScenarioOptions opts;
    opts.jobs = 2;
    opts.aloneCache = &cache;
    ScenarioResult first = runScenario(spec, opts);
    EXPECT_EQ(cache.size(), 2u);
    ScenarioResult second = runScenario(spec, opts);
    EXPECT_EQ(cache.size(), 2u); // hits, no growth
    EXPECT_EQ(canonicalScenario(first), canonicalScenario(second));
}

} // namespace
} // namespace cdpc
