/**
 * @file
 * Unit and property tests for common/intmath.h.
 */

#include <gtest/gtest.h>

#include "common/intmath.h"

namespace cdpc
{
namespace
{

TEST(IntMath, IsPowerOf2)
{
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_TRUE(isPowerOf2(1ULL << 40));
    EXPECT_FALSE(isPowerOf2((1ULL << 40) + 1));
    EXPECT_TRUE(isPowerOf2(1ULL << 63));
}

TEST(IntMath, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(4), 2u);
    EXPECT_EQ(floorLog2(1023), 9u);
    EXPECT_EQ(floorLog2(1024), 10u);
    EXPECT_EQ(floorLog2(~0ULL), 63u);
}

TEST(IntMath, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(4), 2u);
    EXPECT_EQ(ceilLog2(5), 3u);
    EXPECT_EQ(ceilLog2(1025), 11u);
}

TEST(IntMath, DivCeil)
{
    EXPECT_EQ(divCeil(0, 4), 0u);
    EXPECT_EQ(divCeil(1, 4), 1u);
    EXPECT_EQ(divCeil(4, 4), 1u);
    EXPECT_EQ(divCeil(5, 4), 2u);
    EXPECT_EQ(divCeil(33, 16), 3u);
}

TEST(IntMath, RoundUpDown)
{
    EXPECT_EQ(roundUp(0, 64), 0u);
    EXPECT_EQ(roundUp(1, 64), 64u);
    EXPECT_EQ(roundUp(64, 64), 64u);
    EXPECT_EQ(roundUp(65, 64), 128u);
    EXPECT_EQ(roundDown(63, 64), 0u);
    EXPECT_EQ(roundDown(64, 64), 64u);
    EXPECT_EQ(roundDown(129, 64), 128u);
}

TEST(IntMath, PosMod)
{
    EXPECT_EQ(posMod(5, 4), 1u);
    EXPECT_EQ(posMod(-1, 4), 3u);
    EXPECT_EQ(posMod(-4, 4), 0u);
    EXPECT_EQ(posMod(-5, 4), 3u);
    EXPECT_EQ(posMod(0, 7), 0u);
}

/** Property: for powers of two, floor and ceil log agree. */
class Log2Property : public ::testing::TestWithParam<unsigned>
{};

TEST_P(Log2Property, FloorEqualsCeilOnPowers)
{
    unsigned k = GetParam();
    std::uint64_t n = 1ULL << k;
    EXPECT_EQ(floorLog2(n), k);
    EXPECT_EQ(ceilLog2(n), k);
    if (k > 1) {
        EXPECT_EQ(floorLog2(n - 1), k - 1);
        EXPECT_EQ(ceilLog2(n - 1), k);
        EXPECT_EQ(floorLog2(n + 1), k);
        EXPECT_EQ(ceilLog2(n + 1), k + 1);
    }
}

INSTANTIATE_TEST_SUITE_P(Powers, Log2Property,
                         ::testing::Values(1u, 2u, 3u, 8u, 16u, 31u,
                                           32u, 47u, 62u));

/** Property: roundUp/divCeil consistency over a grid. */
class RoundingProperty
    : public ::testing::TestWithParam<std::tuple<std::uint64_t,
                                                 std::uint64_t>>
{};

TEST_P(RoundingProperty, Consistent)
{
    auto [a, align] = GetParam();
    std::uint64_t up = roundUp(a, align);
    EXPECT_GE(up, a);
    EXPECT_LT(up - a, align);
    EXPECT_EQ(up % align, 0u);
    EXPECT_EQ(up / align, divCeil(a, align));
    std::uint64_t down = roundDown(a, align);
    EXPECT_LE(down, a);
    EXPECT_LT(a - down, align);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, RoundingProperty,
    ::testing::Combine(::testing::Values(0u, 1u, 63u, 64u, 65u, 511u,
                                         4097u, 1000000u),
                       ::testing::Values(1u, 8u, 64u, 512u, 4096u)));

} // namespace
} // namespace cdpc
