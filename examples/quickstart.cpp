/**
 * @file
 * Quickstart: run one benchmark under the three page mapping
 * policies and print the headline comparison — the 60-second tour
 * of the library.
 *
 * Usage: quickstart [workload] [ncpus]
 * Defaults: 102.swim on 8 CPUs (the paper's most dramatic case).
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/table.h"
#include "harness/experiment.h"

using namespace cdpc;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "102.swim";
    std::uint32_t ncpus =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;

    std::cout << "CDPC quickstart: " << workload << " on " << ncpus
              << " CPUs (1/8-scale SimOS model, 1MB-class "
                 "direct-mapped external cache)\n\n";

    TextTable table({"policy", "combined cycles", "MCPI",
                     "conflict stall %", "bus util", "speedup vs PC"});

    double pc_time = 0.0;
    for (MappingPolicy policy :
         {MappingPolicy::PageColoring, MappingPolicy::BinHopping,
          MappingPolicy::Cdpc}) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(ncpus);
        cfg.mapping = policy;
        ExperimentResult r = runWorkload(workload, cfg);

        double combined = r.totals.combinedTime();
        if (policy == MappingPolicy::PageColoring)
            pc_time = combined;
        double conflict_frac =
            r.totals.memStall > 0
                ? r.totals.missStallOf(MissKind::Conflict) /
                      r.totals.memStall
                : 0.0;
        table.addRow({
            r.policy,
            fmtI(static_cast<std::uint64_t>(combined)),
            fmtF(r.totals.mcpi(), 3),
            fmtF(conflict_frac * 100.0, 1) + "%",
            fmtF(r.totals.busUtilization() * 100.0, 1) + "%",
            fmtF(pc_time / combined, 2) + "x",
        });
    }

    std::cout << table.render() << "\n";
    std::cout << "CDPC eliminates the conflict misses the default\n"
                 "policies leave behind; see bench/ for the full\n"
                 "reproduction of the paper's figures.\n";
    return 0;
}
