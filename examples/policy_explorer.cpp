/**
 * @file
 * Architectural what-if exploration: sweep external-cache size and
 * associativity for one workload and CPU count, and report where
 * each page mapping policy wins — the study an architect would run
 * before deciding whether CDPC is worth the OS change on a new
 * design.
 *
 * Usage: policy_explorer [workload] [ncpus]   (defaults: 102.swim, 8)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "common/stats.h"
#include "common/table.h"
#include "harness/experiment.h"

using namespace cdpc;

int
main(int argc, char **argv)
{
    std::string workload = argc > 1 ? argv[1] : "102.swim";
    std::uint32_t ncpus =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;

    std::cout << "Policy explorer: " << workload << " on " << ncpus
              << " CPUs; sweeping the external cache.\n"
              << "(model scale: 128KB here plays the role of a 1MB "
                 "cache)\n\n";

    TextTable table({"cache", "assoc", "colors", "PC MCPI", "BH MCPI",
                     "CDPC MCPI", "best static", "CDPC vs best"});

    for (std::uint64_t kb : {64u, 128u, 256u, 512u}) {
        for (std::uint32_t assoc : {1u, 2u}) {
            double mcpi[3];
            int i = 0;
            for (MappingPolicy pol :
                 {MappingPolicy::PageColoring, MappingPolicy::BinHopping,
                  MappingPolicy::Cdpc}) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::paperScaled(ncpus);
                cfg.machine.l2.sizeBytes = kb * 1024;
                cfg.machine.l2.assoc = assoc;
                cfg.machine.validate();
                cfg.mapping = pol;
                mcpi[i++] = runWorkload(workload, cfg).totals.mcpi();
            }
            double best_static = std::min(mcpi[0], mcpi[1]);
            ExperimentConfig probe;
            probe.machine = MachineConfig::paperScaled(ncpus);
            probe.machine.l2.sizeBytes = kb * 1024;
            probe.machine.l2.assoc = assoc;
            table.addRow({
                formatBytes(kb * 1024),
                std::to_string(assoc) + "-way",
                std::to_string(probe.machine.numColors()),
                fmtF(mcpi[0], 2),
                fmtF(mcpi[1], 2),
                fmtF(mcpi[2], 2),
                mcpi[0] <= mcpi[1] ? "page-coloring" : "bin-hopping",
                fmtF(best_static / std::max(mcpi[2], 1e-9), 2) + "x",
            });
        }
    }
    std::cout << table.render() << "\n";
    std::cout << "Reading the last column: >1.0x means CDPC beats the\n"
                 "better of the two static policies at that design "
                 "point.\n";
    return 0;
}
