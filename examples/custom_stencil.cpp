/**
 * @file
 * Using the library on your own application: build a red/black
 * Gauss-Seidel solver in the loop-nest IR, run the full compiler
 * pipeline, inspect the CDPC plan, and compare page mapping
 * policies on it.
 *
 * This is the path a user takes for a workload that is not one of
 * the bundled SPEC95fp stand-ins.
 *
 * Usage: custom_stencil [n] [ncpus]     (defaults: 192, 8)
 */

#include <cstdlib>
#include <iostream>

#include "common/stats.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "workloads/builder.h"

using namespace cdpc;

namespace
{

/** A 5-point red/black Gauss-Seidel relaxation over two grids. */
Program
buildRedBlack(std::uint64_t n)
{
    ProgramBuilder b("custom.redblack");
    std::uint32_t u = b.array2d("u", n, n);
    std::uint32_t f = b.array2d("f", n, n);
    std::uint32_t res = b.array2d("res", n, n);

    b.initNest(interleavedInit2d(b, {u, f, res}, n, n));

    Phase sweep;
    sweep.name = "relaxation";
    sweep.occurrences = 80;

    for (const char *color : {"red", "black"}) {
        LoopNest nest;
        nest.label = std::string("relax-") + color;
        nest.kind = NestKind::Parallel;
        nest.parallelDim = 0;
        // Half the points per sweep: stride 2 through the columns.
        nest.bounds = {n - 2, (n - 2) / 2};
        nest.instsPerIter = 24;
        AffineRef c = b.at2(u, 0, 1, 0, 0, true);
        AffineRef up = b.at2(u, 0, 1, -1, 0);
        AffineRef dn = b.at2(u, 0, 1, 1, 0);
        AffineRef rhs = b.at2(f, 0, 1, 0, 0);
        for (AffineRef *r : {&c, &up, &dn, &rhs}) {
            // Column index advances by 2 per iteration.
            r->terms[1].coeffElems = 2;
            if (color[0] == 'b')
                r->constElems += 1;
        }
        nest.refs = {c, up, dn, rhs};
        sweep.nests.push_back(nest);
    }

    // Residual check every iteration (uses all three arrays).
    LoopNest resid;
    resid.label = "residual";
    resid.kind = NestKind::Parallel;
    resid.parallelDim = 0;
    resid.bounds = {n - 2, n - 2};
    resid.instsPerIter = 12;
    resid.refs = {
        b.at2(u, 0, 1, 0, 0), b.at2(f, 0, 1, 0, 0),
        b.at2(res, 0, 1, 0, 0, true),
    };
    sweep.nests.push_back(resid);

    b.phase(sweep);
    return b.build();
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t n =
        argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 192;
    std::uint32_t ncpus =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 8;

    std::cout << "Custom workload: red/black Gauss-Seidel, " << n
              << "x" << n << " grids (";
    {
        Program probe = buildRedBlack(n);
        std::cout << formatBytes(probe.dataSetBytes());
    }
    std::cout << " data) on " << ncpus << " CPUs\n\n";

    // 1. What did the compiler find? Run one CDPC experiment and
    //    print the summary bundle and the resulting plan.
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(ncpus);
    cfg.mapping = MappingPolicy::Cdpc;
    ExperimentResult cdpc_run = runProgram(buildRedBlack(n), cfg);

    std::cout << "Compiler summaries:\n"
              << "  partitions: " << cdpc_run.summaries.partitions.size()
              << " (unit = row of " << n * 8 << "B)\n"
              << "  comm patterns: " << cdpc_run.summaries.comms.size()
              << " (i±1 stencil -> shift)\n"
              << "  group pairs: " << cdpc_run.summaries.groups.size()
              << "\n";
    std::cout << "CDPC plan: " << cdpc_run.plan->segments.size()
              << " uniform access segments in "
              << cdpc_run.plan->sets.size() << " sets, "
              << cdpc_run.plan->coloring.hints.size()
              << " page hints, " << fmtF(cdpc_run.hintsHonored * 100, 1)
              << "% honored\n\n";

    // 2. Policy comparison.
    TextTable table({"policy", "combined cycles", "MCPI",
                     "conflict stall %", "speedup vs PC"});
    double pc = 0.0;
    for (MappingPolicy pol :
         {MappingPolicy::PageColoring, MappingPolicy::BinHopping,
          MappingPolicy::Cdpc}) {
        ExperimentConfig c2 = cfg;
        c2.mapping = pol;
        ExperimentResult r = runProgram(buildRedBlack(n), c2);
        double combined = r.totals.combinedTime();
        if (pol == MappingPolicy::PageColoring)
            pc = combined;
        double conf = r.totals.memStall > 0
                          ? 100.0 *
                                r.totals.missStallOf(MissKind::Conflict) /
                                r.totals.memStall
                          : 0.0;
        table.addRow({
            r.policy,
            fmtI(static_cast<std::uint64_t>(combined)),
            fmtF(r.totals.mcpi(), 2),
            fmtF(conf, 1) + "%",
            fmtF(pc / combined, 2) + "x",
        });
    }
    std::cout << table.render();
    return 0;
}
