/**
 * @file
 * A debugging lens on the CDPC pipeline: for any workload, print the
 * compiler's access summaries and walk the run-time algorithm's five
 * steps, showing the uniform access segments, the set ordering, the
 * chosen rotations and the final color map — the tool you reach for
 * when a hinted mapping does not behave as expected.
 *
 * Usage: hint_inspector [workload] [ncpus]  (defaults: 101.tomcatv, 4)
 */

#include <cstdlib>
#include <iostream>
#include <string>

#include "cdpc/runtime.h"
#include "common/stats.h"
#include "common/table.h"
#include "compiler/compiler.h"
#include "workloads/workload.h"

using namespace cdpc;

int
main(int argc, char **argv)
{
    std::string name = argc > 1 ? argv[1] : "101.tomcatv";
    std::uint32_t ncpus =
        argc > 2 ? static_cast<std::uint32_t>(std::atoi(argv[2])) : 4;

    Program prog = buildWorkload(name);
    MachineConfig machine = MachineConfig::paperScaled(ncpus);
    CompilerOptions copts;
    copts.aligner.lineBytes = machine.l2.lineBytes;
    copts.aligner.l1SpanBytes =
        machine.l1d.sizeBytes / machine.l1d.assoc;
    CompileResult compiled = compileProgram(prog, copts);

    std::cout << "=== " << name << " on " << ncpus << " CPUs, "
              << machine.numColors() << " colors ===\n\n";

    std::cout << "Arrays (" << prog.arrays.size() << "):\n";
    {
        TextTable t({"name", "size", "base vpn", "analyzable"});
        for (std::size_t i = 0; i < prog.arrays.size(); i++) {
            const ArrayDecl &a = prog.arrays[i];
            t.addRow({a.name, formatBytes(a.sizeBytes()),
                      std::to_string(a.base / machine.pageBytes),
                      compiled.summaries.isAnalyzable(
                          static_cast<std::uint32_t>(i))
                          ? "yes"
                          : "NO"});
        }
        std::cout << t.render() << "\n";
    }

    std::cout << "Partition summaries ("
              << compiled.summaries.partitions.size() << "):\n";
    for (const ArrayPartitionSummary &p : compiled.summaries.partitions) {
        std::cout << "  " << prog.arrays[p.arrayId].name << ": "
                  << p.numUnits << " units of " << p.unitBytes << "B, "
                  << (p.policy == PartitionPolicy::Even ? "even"
                                                        : "blocked")
                  << "/"
                  << (p.dir == PartitionDir::Forward ? "forward"
                                                     : "reverse")
                  << "\n";
    }
    std::cout << "Communication patterns ("
              << compiled.summaries.comms.size() << "):\n";
    for (const CommPatternSummary &c : compiled.summaries.comms) {
        std::cout << "  " << prog.arrays[c.arrayId].name << ": "
                  << (c.type == CommType::Shift ? "shift" : "rotate")
                  << " of " << c.boundaryUnits << " unit(s), "
                  << (c.dir == CommDir::Low
                          ? "low side"
                          : c.dir == CommDir::High ? "high side"
                                                   : "both sides")
                  << "\n";
    }
    std::cout << "Group access pairs: "
              << compiled.summaries.groups.size() << "\n\n";

    CdpcPlan plan =
        computeCdpcPlan(compiled.summaries, cdpcParams(machine));

    std::cout << "Step 1: " << plan.segments.size()
              << " uniform access segments\n";
    std::cout << "Step 2: " << plan.sets.size()
              << " uniform access sets, in path order:\n  ";
    for (const UniformSet &set : plan.sets)
        std::cout << set.procs.str() << " ";
    std::cout << "\n\nSteps 3-5: segments in final order:\n";
    {
        TextTable t({"#", "array", "pages", "procs", "rotation",
                     "start color"});
        int idx = 0;
        for (std::size_t id : plan.coloring.segmentOrder) {
            const Segment &s = plan.segments[id];
            t.addRow({
                std::to_string(idx++),
                prog.arrays[s.arrayId].name,
                std::to_string(s.numPages),
                s.procs.str(),
                std::to_string(plan.coloring.rotation[id]),
                std::to_string(plan.coloring.startColor[id]),
            });
        }
        std::cout << t.render();
    }
    std::cout << "\nTotal hints: " << plan.coloring.hints.size()
              << " pages ("
              << formatBytes(plan.coloring.hints.size() *
                             machine.pageBytes)
              << " of "
              << formatBytes(prog.dataSetBytes()) << " data)\n";
    return 0;
}
