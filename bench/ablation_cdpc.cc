/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  1. Step 4 cyclic assignment on/off — does conflict spacing of
 *     segment start colors matter?
 *  2. Steps 2-3 greedy ordering vs raw virtual-address order — does
 *     clustering each processor's pages matter?
 *  3. Hint honoring under memory pressure — how gracefully does
 *     CDPC degrade when the allocator cannot supply the preferred
 *     colors? (The paper's kernels treat colors strictly as hints.)
 *  4. The bin-hopping kernel fault race on/off.
 */

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main()
{
    banner("Ablations — CDPC design choices",
           "DESIGN.md section 5; 8 CPUs, base config");
    constexpr std::uint32_t ncpus = 8;
    const char *apps[] = {"101.tomcatv", "102.swim", "104.hydro2d"};

    std::cout << "--- 1+2: algorithm steps ---\n";
    {
        TextTable table({"workload", "full CDPC(M)", "no-cyclic(M)",
                         "no-greedy(M)", "addr-order-only(M)",
                         "PC baseline(M)"});
        for (const char *app : apps) {
            std::vector<std::string> row = {app};
            struct Mode
            {
                bool cyclic, greedy;
            };
            for (const Mode m : {Mode{true, true}, Mode{false, true},
                                 Mode{true, false},
                                 Mode{false, false}}) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::paperScaled(ncpus);
                cfg.mapping = MappingPolicy::Cdpc;
                cfg.cdpcOptions.cyclicAssignment = m.cyclic;
                cfg.cdpcOptions.greedyOrdering = m.greedy;
                ExperimentResult r = runWorkload(app, cfg);
                row.push_back(fmtF(r.totals.combinedTime() / 1e6, 0));
            }
            ExperimentConfig cfg;
            cfg.machine = MachineConfig::paperScaled(ncpus);
            cfg.mapping = MappingPolicy::PageColoring;
            row.push_back(fmtF(
                runWorkload(app, cfg).totals.combinedTime() / 1e6, 0));
            table.addRow(row);
        }
        std::cout << table.render() << "\n";
    }

    std::cout << "--- 3: memory pressure (hint honoring) ---\n";
    {
        // Competing processes hog low-color pages, leaving just
        // enough memory for the application: the kernel must deny a
        // growing share of the hints (it treats them strictly as
        // hints, Section 5).
        TextTable table({"memory hogged", "hints honored",
                         "combined(M)", "vs unconstrained"});
        double base = 0.0;
        for (double hogged : {0.0, 0.3, 0.45, 0.49}) {
            ExperimentConfig cfg;
            cfg.machine = MachineConfig::paperScaled(ncpus);
            cfg.mapping = MappingPolicy::Cdpc;
            Program prog = buildWorkload("102.swim");
            std::uint64_t data_pages =
                prog.dataSetBytes() / cfg.machine.pageBytes + 64;
            cfg.machine.physPages = 2 * data_pages;
            cfg.preallocatedPages = static_cast<std::uint64_t>(
                hogged * 2 * data_pages);
            ExperimentResult r = runProgram(std::move(prog), cfg);
            double combined = r.totals.combinedTime();
            if (base == 0.0)
                base = combined;
            table.addRow({
                fmtF(hogged * 100.0, 0) + "%",
                fmtF(r.hintsHonored * 100.0, 1) + "%",
                fmtF(combined / 1e6, 0),
                fmtF(combined / base, 2) + "x",
            });
        }
        std::cout << table.render() << "\n";
    }

    std::cout << "--- 4: bin-hopping fault race ---\n";
    {
        TextTable table({"workload", "deterministic(M)", "racy(M)",
                         "racy penalty"});
        for (const char *app : apps) {
            double t[2];
            for (int racy = 0; racy < 2; racy++) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::paperScaled(ncpus);
                cfg.mapping = MappingPolicy::BinHopping;
                cfg.binHopRacy = racy == 1;
                t[racy] = runWorkload(app, cfg).totals.combinedTime();
            }
            table.addRow({app, fmtF(t[0] / 1e6, 0), fmtF(t[1] / 1e6, 0),
                          fmtF(t[1] / t[0], 3) + "x"});
        }
        std::cout << table.render();
        std::cout << "(the race matters only when CPUs fault "
                     "concurrently; init here is sequential, so the "
                     "penalty is small — the paper calls the effect "
                     "'unpredictable performance')\n";
    }
    return 0;
}
