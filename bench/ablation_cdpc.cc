/**
 * @file
 * Ablation studies for the design choices DESIGN.md calls out:
 *
 *  1. Step 4 cyclic assignment on/off — does conflict spacing of
 *     segment start colors matter?
 *  2. Steps 2-3 greedy ordering vs raw virtual-address order — does
 *     clustering each processor's pages matter?
 *  3. Hint honoring under memory pressure — how gracefully does
 *     CDPC degrade when the allocator cannot supply the preferred
 *     colors? (The paper's kernels treat colors strictly as hints.)
 *  4. The bin-hopping kernel fault race on/off.
 */

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobs(argc, argv);
    banner("Ablations — CDPC design choices",
           "DESIGN.md section 5; 8 CPUs, base config");
    constexpr std::uint32_t ncpus = 8;
    const char *apps[] = {"101.tomcatv", "102.swim", "104.hydro2d"};

    // All four ablation sections as one batch; the print loops below
    // consume the results in the same submission order.
    std::vector<runner::JobSpec> specs;

    // 1+2: algorithm steps (four CDPC variants + the PC baseline).
    struct Mode
    {
        bool cyclic, greedy;
    };
    const Mode modes[] = {Mode{true, true}, Mode{false, true},
                          Mode{true, false}, Mode{false, false}};
    for (const char *app : apps) {
        for (const Mode m : modes) {
            ExperimentConfig cfg;
            cfg.machine = MachineConfig::paperScaled(ncpus);
            cfg.mapping = MappingPolicy::Cdpc;
            cfg.cdpcOptions.cyclicAssignment = m.cyclic;
            cfg.cdpcOptions.greedyOrdering = m.greedy;
            addJob(specs, app, cfg);
        }
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(ncpus);
        cfg.mapping = MappingPolicy::PageColoring;
        addJob(specs, app, cfg);
    }

    // 3: memory pressure. Competing processes hog low-color pages,
    // leaving just enough memory for the application: the kernel
    // must deny a growing share of the hints (it treats them
    // strictly as hints, Section 5).
    const double hog_levels[] = {0.0, 0.3, 0.45, 0.49};
    {
        std::uint64_t data_pages =
            buildWorkload("102.swim").dataSetBytes() /
                MachineConfig::paperScaled(ncpus).pageBytes +
            64;
        for (double hogged : hog_levels) {
            ExperimentConfig cfg;
            cfg.machine = MachineConfig::paperScaled(ncpus);
            cfg.mapping = MappingPolicy::Cdpc;
            cfg.machine.physPages = 2 * data_pages;
            cfg.preallocatedPages = static_cast<std::uint64_t>(
                hogged * 2 * data_pages);
            addJob(specs, "102.swim", cfg);
        }
    }

    // 4: bin-hopping fault race.
    for (const char *app : apps) {
        for (int racy = 0; racy < 2; racy++) {
            ExperimentConfig cfg;
            cfg.machine = MachineConfig::paperScaled(ncpus);
            cfg.mapping = MappingPolicy::BinHopping;
            cfg.binHopRacy = racy == 1;
            addJob(specs, app, cfg);
        }
    }

    std::vector<ExperimentResult> results = runBatch(specs, jobs);
    std::size_t next = 0;

    std::cout << "--- 1+2: algorithm steps ---\n";
    {
        TextTable table({"workload", "full CDPC(M)", "no-cyclic(M)",
                         "no-greedy(M)", "addr-order-only(M)",
                         "PC baseline(M)"});
        for (const char *app : apps) {
            std::vector<std::string> row = {app};
            for (int i = 0; i < 5; i++) {
                row.push_back(fmtF(
                    results[next++].totals.combinedTime() / 1e6, 0));
            }
            table.addRow(row);
        }
        std::cout << table.render() << "\n";
    }

    std::cout << "--- 3: memory pressure (hint honoring) ---\n";
    {
        TextTable table({"memory hogged", "hints honored",
                         "combined(M)", "vs unconstrained"});
        double base = 0.0;
        for (double hogged : hog_levels) {
            const ExperimentResult &r = results[next++];
            double combined = r.totals.combinedTime();
            if (base == 0.0)
                base = combined;
            table.addRow({
                fmtF(hogged * 100.0, 0) + "%",
                fmtF(r.hintsHonored * 100.0, 1) + "%",
                fmtF(combined / 1e6, 0),
                fmtF(combined / base, 2) + "x",
            });
        }
        std::cout << table.render() << "\n";
    }

    std::cout << "--- 4: bin-hopping fault race ---\n";
    {
        TextTable table({"workload", "deterministic(M)", "racy(M)",
                         "racy penalty"});
        for (const char *app : apps) {
            double t[2];
            for (int racy = 0; racy < 2; racy++)
                t[racy] = results[next++].totals.combinedTime();
            table.addRow({app, fmtF(t[0] / 1e6, 0), fmtF(t[1] / 1e6, 0),
                          fmtF(t[1] / t[0], 3) + "x"});
        }
        std::cout << table.render();
        std::cout << "(the race matters only when CPUs fault "
                     "concurrently; init here is sequential, so the "
                     "penalty is small — the paper calls the effect "
                     "'unpredictable performance')\n";
    }
    return 0;
}
