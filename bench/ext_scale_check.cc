/**
 * @file
 * Extension experiment: does the 1/8 model scale preserve the
 * paper-relevant ratios?
 *
 * Every other bench runs the scaled machine (DESIGN.md §6). This one
 * re-runs two policy comparisons on the *full-size* machine
 * (1MB direct-mapped external cache, 4KB pages, 128B lines) with
 * full-size data sets, and prints the CDPC speedups side by side.
 * If the scaling argument holds, the speedups agree in shape even
 * though the absolute cycle counts differ by roughly the scale
 * factor.
 */

#include "bench/bench_util.h"
#include "ir/layout.h"
#include "workloads/builder.h"

using namespace cdpc;
using namespace cdpc::bench;

namespace
{

/** swim rebuilt with full-size (513-era) arrays. */
Program
buildSwimFull()
{
    // The scaled model's arrays are 260 pages against a 256-color
    // cache (1.016x the color span). The full-size machine also has
    // 256 colors (1MB / 4KB), so the equivalent array is 260 pages
    // of 4KB: 260 x 512 doubles = 1.04MB, and 13 of them give
    // 13.5MB — the paper's 14MB data set.
    constexpr std::uint64_t rows = 260;
    constexpr std::uint64_t cols = 512;
    ProgramBuilder b("swim-full");
    std::vector<std::uint32_t> ids;
    const char *names[] = {"u", "v", "p", "unew", "vnew", "pnew",
                           "uold", "vold", "pold", "cu", "cv", "z",
                           "h"};
    for (const char *nm : names)
        ids.push_back(b.array2d(nm, rows, cols));
    b.initNest(interleavedInit2d(b, {ids[0], ids[1], ids[2]}, rows,
                                 cols));
    b.initNest(interleavedInit2d(b, {ids[6], ids[7], ids[8]}, rows,
                                 cols));
    b.initNest(interleavedInit2d(b, {ids[3], ids[4], ids[5]}, rows,
                                 cols));
    b.initNest(interleavedInit2d(
        b, {ids[9], ids[10], ids[11], ids[12]}, rows, cols));

    Phase step;
    step.name = "time-step";
    step.occurrences = 20;
    LoopNest calc;
    calc.label = "calc";
    calc.kind = NestKind::Parallel;
    calc.parallelDim = 0;
    calc.bounds = {rows - 1, cols - 1};
    calc.instsPerIter = 42;
    calc.refs = {
        b.at2(ids[0], 0, 1, 0, 0), b.at2(ids[0], 0, 1, 1, 0),
        b.at2(ids[1], 0, 1, 0, 0), b.at2(ids[2], 0, 1, 0, 0),
        b.at2(ids[9], 0, 1, 0, 0, true),
        b.at2(ids[10], 0, 1, 0, 0, true),
        b.at2(ids[11], 0, 1, 0, 0, true),
        b.at2(ids[12], 0, 1, 0, 0, true),
    };
    step.nests.push_back(calc);
    LoopNest calc2;
    calc2.label = "calc2";
    calc2.kind = NestKind::Parallel;
    calc2.parallelDim = 0;
    calc2.bounds = {rows - 1, cols - 1};
    calc2.instsPerIter = 48;
    calc2.refs = {
        b.at2(ids[6], 0, 1), b.at2(ids[9], 0, 1, 0, 0),
        b.at2(ids[9], 0, 1, -1, 0), b.at2(ids[10], 0, 1, 0, 0),
        b.at2(ids[3], 0, 1, 0, 0, true),
        b.at2(ids[4], 0, 1, 0, 0, true),
        b.at2(ids[5], 0, 1, 0, 0, true),
    };
    step.nests.push_back(calc2);
    b.phase(step);
    return b.build();
}

} // namespace

int
main()
{
    banner("Extension — Scale-Model Validation",
           "DESIGN.md §6: 1/8-scale vs full-size machine");
    constexpr std::uint32_t ncpus = 8;

    TextTable table({"machine", "policy", "combined(M)", "MCPI",
                     "CDPC speedup"});
    for (int full = 0; full < 2; full++) {
        double base = 0.0;
        for (MappingPolicy pol :
             {MappingPolicy::PageColoring, MappingPolicy::Cdpc}) {
            ExperimentConfig cfg;
            cfg.machine = full ? MachineConfig::paperFull(ncpus)
                               : MachineConfig::paperScaled(ncpus);
            if (full) {
                // Full-size pages need more physical memory.
                cfg.machine.physPages = 16 * 1024; // 64MB of 4KB pages
            }
            cfg.mapping = pol;
            ExperimentResult r =
                full ? runProgram(buildSwimFull(), cfg)
                     : runWorkload("102.swim", cfg);
            double combined = r.totals.combinedTime();
            if (pol == MappingPolicy::PageColoring)
                base = combined;
            table.addRow({
                full ? "full-size" : "1/8-scale",
                r.policy,
                fmtF(combined / 1e6, 0),
                fmtF(r.totals.mcpi(), 2),
                fmtF(base / combined, 2) + "x",
            });
        }
        table.addSeparator();
    }
    std::cout << table.render();
    std::cout << "\nThe CDPC speedup should agree between the rows "
                 "(same conflict\nstructure at either scale); absolute "
                 "cycles differ with the data size.\n";
    return 0;
}
