/**
 * @file
 * Figure 3: page-level access patterns of the data segment.
 *
 * For tomcatv, swim and hydro2d on 16 CPUs, plots which virtual
 * pages each CPU touches during the steady state, in virtual-address
 * order. The paper's point: per-CPU footprints are *sparse* — each
 * CPU touches less than a cache's worth of data but spread over a
 * range far larger than the cache, so the default policies leave
 * cache regions idle while others thrash.
 *
 * Output: one text raster per workload (rows = CPUs, columns =
 * page-range buckets) plus footprint statistics per CPU.
 */

#include <algorithm>

#include "bench/bench_util.h"
#include "machine/trace.h"

using namespace cdpc;
using namespace cdpc::bench;

namespace
{

void
plotWorkload(const std::string &name)
{
    constexpr std::uint32_t ncpus = 16;
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(ncpus);
    cfg.mapping = MappingPolicy::PageColoring;
    PageTraceCollector trace(ncpus);
    cfg.sim.trace = &trace;
    ExperimentResult r = runWorkload(name, cfg);

    std::vector<PageNum> pages = trace.allPages();
    if (pages.empty()) {
        std::cout << name << ": no pages traced\n";
        return;
    }
    PageNum lo = pages.front();
    PageNum hi = pages.back();
    constexpr int width = 96;
    double span = static_cast<double>(hi - lo + 1);

    std::cout << "--- " << name << " @ " << ncpus << " CPUs: "
              << pages.size() << " pages touched, range "
              << formatBytes((hi - lo + 1) * cfg.machine.pageBytes)
              << " (cache " << formatBytes(cfg.machine.l2.sizeBytes)
              << ") ---\n";
    std::cout << "virtual-address order, '#' = pages this CPU "
                 "touches in the bucket\n";

    for (CpuId c = 0; c < ncpus; c++) {
        std::string row(width, '.');
        for (PageNum v : trace.pagesOf(c)) {
            auto b = static_cast<std::size_t>(
                (static_cast<double>(v - lo) / span) * width);
            row[std::min<std::size_t>(b, width - 1)] = '#';
        }
        std::uint64_t footprint =
            trace.pagesOf(c).size() * cfg.machine.pageBytes;
        std::cout << "cpu" << (c < 10 ? " " : "") << c << " |" << row
                  << "| " << formatBytes(footprint) << "\n";
    }

    // Sparseness metric: per-CPU footprint vs the span it covers.
    double mean_fp = 0.0;
    for (CpuId c = 0; c < ncpus; c++)
        mean_fp += static_cast<double>(trace.pagesOf(c).size());
    mean_fp = mean_fp / ncpus * static_cast<double>(cfg.machine.pageBytes);
    std::cout << "mean per-CPU footprint: " << formatBytes(
                     static_cast<std::uint64_t>(mean_fp))
              << " spread over " << formatBytes(
                     (hi - lo + 1) * cfg.machine.pageBytes)
              << " (" << fmtF(span * cfg.machine.pageBytes /
                                  cfg.machine.l2.sizeBytes, 1)
              << "x the cache)\n\n";
    (void)r;
}

} // namespace

int
main()
{
    banner("Figure 3 — Page-level Access Patterns (virtual order)",
           "Figure 3 (Section 4.2); 16 CPUs, page coloring");
    for (const char *w : {"101.tomcatv", "102.swim", "104.hydro2d"})
        plotWorkload(w);
    return 0;
}
