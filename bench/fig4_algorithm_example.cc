/**
 * @file
 * Figure 4: the CDPC algorithm walked through on the paper's style
 * of example — two data structures distributed across two CPUs —
 * printing the intermediate state after each of the five steps.
 */

#include "bench/bench_util.h"
#include "cdpc/runtime.h"
#include "workloads/builder.h"
#include "compiler/compiler.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main()
{
    banner("Figure 4 — The CDPC Algorithm, Step by Step",
           "Figure 4 (Section 5.2); illustrative 2-CPU example");

    // Two arrays of 8 pages each, row-partitioned across 2 CPUs,
    // with one page of boundary communication — the flavor of the
    // paper's worked example.
    ProgramBuilder b("fig4-example");
    std::uint32_t a0 = b.array2d("A", 16, 32); // 16 rows x 32 cols x 8B
    std::uint32_t a1 = b.array2d("B", 16, 32);

    Phase ph;
    ph.name = "sweep";
    LoopNest nest;
    nest.label = "stencil";
    nest.kind = NestKind::Parallel;
    nest.parallelDim = 0;
    nest.bounds = {14, 32};
    nest.instsPerIter = 200; // keep it above the suppression bar
    nest.refs = {
        b.at2(a0, 0, 1, 0, 0), b.at2(a0, 0, 1, 1, 0),
        b.at2(a1, 0, 1, 0, 0, true),
    };
    ph.nests.push_back(nest);
    b.phase(ph);
    Program prog = b.build();

    CompilerOptions copts;
    copts.parallelizer.suppressionThresholdInsts = 1;
    CompileResult compiled = compileProgram(prog, copts);

    std::cout << "Compiler summaries:\n";
    for (const auto &p : compiled.summaries.partitions) {
        std::cout << "  partition: array "
                  << prog.arrays[p.arrayId].name << ", unit "
                  << p.unitBytes << "B x " << p.numUnits << " units, "
                  << (p.policy == PartitionPolicy::Even ? "even"
                                                        : "blocked")
                  << "/"
                  << (p.dir == PartitionDir::Forward ? "fwd" : "rev")
                  << "\n";
    }
    for (const auto &c : compiled.summaries.comms) {
        std::cout << "  comm: array " << prog.arrays[c.arrayId].name
                  << ", shift of " << c.boundaryUnits << " unit(s)\n";
    }
    for (const auto &g : compiled.summaries.groups) {
        std::cout << "  group: (" << prog.arrays[g.arrayA].name << ", "
                  << prog.arrays[g.arrayB].name << ")\n";
    }

    CdpcParams params;
    params.numCpus = 2;
    params.pageBytes = 512;
    params.numColors = 8; // a small cache so the wrap is visible
    CdpcPlan plan = computeCdpcPlan(compiled.summaries, params);

    std::cout << "\nStep 1 — uniform access segments:\n";
    for (std::size_t i = 0; i < plan.segments.size(); i++) {
        const Segment &s = plan.segments[i];
        std::cout << "  seg" << i << ": array "
                  << prog.arrays[s.arrayId].name << ", pages ["
                  << s.firstVpn << ", " << s.lastVpn() << "], procs "
                  << s.procs.str() << "\n";
    }

    std::cout << "\nStep 2 — uniform access sets in path order:\n";
    for (const UniformSet &set : plan.sets) {
        std::cout << "  set " << set.procs.str() << ": segments {";
        for (std::size_t id : set.segIds)
            std::cout << " " << id;
        std::cout << " }\n";
    }

    std::cout << "\nStep 4 — cyclic rotations chosen:\n";
    for (std::size_t id : plan.coloring.segmentOrder) {
        std::cout << "  seg" << id << ": rotation "
                  << plan.coloring.rotation[id] << ", start color "
                  << plan.coloring.startColor[id] << "\n";
    }

    std::cout << "\nStep 5 — final page -> color hints (page order):\n  ";
    for (std::size_t i = 0; i < plan.coloring.hints.size(); i++) {
        const ColorHint &h = plan.coloring.hints[i];
        std::cout << h.vpn << ":" << h.color
                  << (i + 1 < plan.coloring.hints.size() ? ", " : "\n");
        if (i % 8 == 7)
            std::cout << "  ";
    }

    std::cout << "\nNote how the starting pages of A and B no longer "
                 "share a color,\nand each CPU's pages occupy a "
                 "contiguous run of colors.\n";
    return 0;
}
