/**
 * @file
 * Extension: CDPC hint degradation under memory pressure.
 *
 * The paper evaluates CDPC on an unloaded machine and notes only
 * that the kernel honors color hints "when possible" (Sections 2.1
 * and 5). This sweep quantifies the "when it is not possible" half:
 * competitor processes pre-claim 0..95% of physical memory in a
 * fragmented color pattern, and we measure how each fallback policy
 * (any-color, nearest-color, steal-via-recolor) degrades CDPC's
 * conflict-miss advantage over plain page coloring as the hint
 * honor rate collapses.
 *
 * Emits BENCH_ext_pressure_sweep.json with one record per
 * (occupancy, fallback, policy) cell for plotting.
 */

#include <fstream>

#include "bench/bench_util.h"
#include "mem/miss_classify.h"

using namespace cdpc;
using namespace cdpc::bench;

namespace
{

const char *kWorkload = "101.tomcatv";
constexpr std::uint32_t kCpus = 8;

const std::vector<double> kOccupancies = {0.0, 0.25, 0.50, 0.75,
                                          0.85, 0.90, 0.95};
const std::vector<FallbackKind> kFallbacks = {
    FallbackKind::AnyColor, FallbackKind::NearestColor,
    FallbackKind::Steal};
const std::vector<MappingPolicy> kPolicies = {
    MappingPolicy::PageColoring, MappingPolicy::Cdpc};

ExperimentConfig
makeCell(double occupancy, FallbackKind fallback,
         MappingPolicy policy)
{
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(kCpus);
    cfg.mapping = policy;
    cfg.pressure.occupancy = occupancy;
    cfg.pressure.pattern = PressurePattern::Fragmented;
    cfg.pressure.seed = 7;
    cfg.fallback = fallback;
    return cfg;
}

double
conflictShare(const WeightedTotals &t)
{
    return t.memStall > 0
               ? 100.0 * t.missStallOf(MissKind::Conflict) / t.memStall
               : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobs(argc, argv);
    banner("Extension: memory-pressure sweep",
           "beyond the paper -- Sections 2.1/5 'honored when "
           "possible' under 0..95% occupancy");

    std::vector<runner::JobSpec> specs;
    for (double occ : kOccupancies)
        for (FallbackKind fb : kFallbacks)
            for (MappingPolicy pol : kPolicies)
                addJob(specs, kWorkload, makeCell(occ, fb, pol));
    std::vector<ExperimentResult> results = runBatch(specs, jobs);

    std::ofstream json("BENCH_ext_pressure_sweep.json");
    fatalIf(!json, "cannot open BENCH_ext_pressure_sweep.json");
    json << "[\n";

    TextTable t({"occupancy", "fallback", "policy", "MCPI",
                 "conflict", "honored", "fallback%", "denied",
                 "stolen", "reclaimed"});
    std::size_t i = 0;
    bool first = true;
    for (double occ : kOccupancies) {
        for (FallbackKind fb : kFallbacks) {
            for (std::size_t p = 0; p < kPolicies.size(); p++) {
                const ExperimentResult &r = results[i++];
                const VmStats &d = r.degradation;
                std::uint64_t expressed =
                    d.hintHonored + d.hintFallback + d.hintDenied;
                auto share = [&](std::uint64_t v) {
                    return expressed
                               ? fmtF(100.0 * v / expressed, 1) + "%"
                               : std::string("-");
                };
                t.addRow({fmtF(occ * 100.0, 0) + "%",
                          fallbackName(fb), r.policy,
                          fmtF(r.totals.mcpi(), 3),
                          fmtF(conflictShare(r.totals), 1) + "%",
                          share(d.hintHonored), share(d.hintFallback),
                          share(d.hintDenied),
                          std::to_string(d.hintStolen),
                          std::to_string(d.reclaimedPages)});

                if (!first)
                    json << ",\n";
                first = false;
                json << "  {\"occupancy\": " << occ
                     << ", \"fallback\": \"" << fallbackName(fb)
                     << "\", \"policy\": \"" << r.policy
                     << "\", \"mcpi\": " << r.totals.mcpi()
                     << ", \"conflictShare\": "
                     << conflictShare(r.totals) / 100.0
                     << ", \"hintsHonored\": " << r.hintsHonored
                     << ", \"hintHonored\": " << d.hintHonored
                     << ", \"hintFallback\": " << d.hintFallback
                     << ", \"hintDenied\": " << d.hintDenied
                     << ", \"hintStolen\": " << d.hintStolen
                     << ", \"reclaimedPages\": " << d.reclaimedPages
                     << ", \"pressurePages\": " << r.pressurePages
                     << "}";
            }
        }
        t.addSeparator();
    }
    json << "\n]\n";
    json.close();
    fatalIf(!json, "write to BENCH_ext_pressure_sweep.json failed");

    std::cout << t.render()
              << "\nWrote BENCH_ext_pressure_sweep.json ("
              << results.size() << " cells)\n"
              << "Reading: page-coloring is hint-free, so its rows "
                 "isolate raw allocator pressure;\nCDPC rows show the "
                 "honor rate collapsing and each fallback's MCPI "
                 "cost.\n";
    return 0;
}
