/**
 * @file
 * Figure 7: CDPC on a two-way set-associative cache and on a larger
 * (4MB-class) direct-mapped cache.
 *
 * Paper's findings to reproduce:
 *  - two-way associativity does not subsume CDPC: it removes some
 *    conflict hot spots but not the under-utilization, so CDPC's
 *    improvements persist;
 *  - with the 4x cache, CDPC's benefits appear at *fewer* CPUs
 *    (the aggregate cache fits the data set earlier), hydro2d's
 *    problem largely disappears (the default policy suffices), and
 *    applu — unhelped at 1MB — now benefits.
 */

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

namespace
{

void
sweep(const char *title, MachineConfig (*make)(std::uint32_t),
      unsigned jobs)
{
    std::cout << "### " << title << " ###\n";
    const char *apps[] = {"101.tomcatv", "102.swim", "104.hydro2d",
                          "107.mgrid", "110.applu", "125.turb3d"};
    std::vector<runner::JobSpec> specs;
    for (const char *app : apps) {
        for (std::uint32_t p : kSimCpuCounts) {
            for (MappingPolicy pol :
                 {MappingPolicy::PageColoring, MappingPolicy::Cdpc}) {
                ExperimentConfig cfg;
                cfg.machine = make(p);
                cfg.mapping = pol;
                addJob(specs, app, cfg);
            }
        }
    }
    std::vector<ExperimentResult> results = runBatch(specs, jobs);
    std::size_t next = 0;
    for (const char *app : apps) {
        TextTable table({"P", "PC combined(M)", "CDPC combined(M)",
                         "CDPC speedup", "PC conflict%",
                         "CDPC conflict%"});
        for (std::uint32_t p : kSimCpuCounts) {
            WeightedTotals pc = results[next++].totals;
            WeightedTotals cd = results[next++].totals;
            auto conf_pct = [](const WeightedTotals &t) {
                return t.memStall > 0
                           ? fmtF(100.0 *
                                      t.missStallOf(MissKind::Conflict) /
                                      t.memStall, 1) + "%"
                           : std::string("-");
            };
            table.addRow({
                std::to_string(p),
                fmtF(pc.combinedTime() / 1e6, 0),
                fmtF(cd.combinedTime() / 1e6, 0),
                fmtF(pc.combinedTime() / cd.combinedTime(), 2) + "x",
                conf_pct(pc),
                conf_pct(cd),
            });
        }
        std::cout << "--- " << app << " ---\n" << table.render() << "\n";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobs(argc, argv);
    banner("Figure 7 — CDPC with 2-way and 4MB-class caches",
           "Figure 7 (Section 6.1)");
    sweep("two-way set-associative, 1MB-class",
          MachineConfig::paperScaledTwoWay, jobs);
    sweep("direct-mapped, 4MB-class", MachineConfig::paperScaledBig,
          jobs);
    return 0;
}
