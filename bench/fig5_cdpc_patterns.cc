/**
 * @file
 * Figure 5: effect of compiler-directed page coloring on page-level
 * access patterns.
 *
 * Same workloads and CPU count as Figure 3, but the x-axis is the
 * CDPC *coloring order* (the final page order of Step 5; each
 * numColors-page stretch wraps around the cache once). Compared
 * with Figure 3's virtual-order plots, the per-CPU access patterns
 * become dense clusters: each processor's pages occupy a compact
 * stretch of the color space.
 */

#include <algorithm>
#include <unordered_map>

#include "bench/bench_util.h"
#include "machine/trace.h"

using namespace cdpc;
using namespace cdpc::bench;

namespace
{

void
plotWorkload(const std::string &name)
{
    constexpr std::uint32_t ncpus = 16;
    ExperimentConfig cfg;
    cfg.machine = MachineConfig::paperScaled(ncpus);
    cfg.mapping = MappingPolicy::Cdpc;
    PageTraceCollector trace(ncpus);
    cfg.sim.trace = &trace;
    ExperimentResult r = runWorkload(name, cfg);
    panicIfNot(r.plan.has_value(), "CDPC run produced no plan");

    const std::vector<PageNum> &order = r.plan->coloring.pageOrder;
    std::unordered_map<PageNum, std::size_t> position;
    for (std::size_t i = 0; i < order.size(); i++)
        position[order[i]] = i;

    constexpr int width = 96;
    double span = static_cast<double>(order.size());
    std::uint64_t colors = cfg.machine.numColors();

    std::cout << "--- " << name << " @ " << ncpus
              << " CPUs: coloring order, " << order.size()
              << " hinted pages, " << colors
              << " colors (each tick of " << width << "/"
              << fmtF(span / colors, 1)
              << " columns wraps the cache once) ---\n";

    for (CpuId c = 0; c < ncpus; c++) {
        std::string row(width, '.');
        std::size_t in_plan = 0;
        for (PageNum v : trace.pagesOf(c)) {
            auto it = position.find(v);
            if (it == position.end())
                continue; // unanalyzable pages have no hint
            in_plan++;
            auto b = static_cast<std::size_t>(
                (static_cast<double>(it->second) / span) * width);
            row[std::min<std::size_t>(b, width - 1)] = '#';
        }
        std::cout << "cpu" << (c < 10 ? " " : "") << c << " |" << row
                  << "| " << in_plan << " pages\n";
    }

    // Density metric: mean per-CPU cluster span in coloring order
    // relative to the whole order (smaller = denser = fewer
    // same-color collisions within a CPU's working set).
    double mean_span = 0.0;
    std::uint32_t counted = 0;
    for (CpuId c = 0; c < ncpus; c++) {
        std::size_t lo = order.size(), hi = 0;
        std::size_t n = 0;
        for (PageNum v : trace.pagesOf(c)) {
            auto it = position.find(v);
            if (it == position.end())
                continue;
            lo = std::min(lo, it->second);
            hi = std::max(hi, it->second);
            n++;
        }
        if (n > 1) {
            mean_span += static_cast<double>(hi - lo + 1);
            counted++;
        }
    }
    if (counted) {
        mean_span /= counted;
        std::cout << "mean per-CPU span in coloring order: "
                  << fmtF(100.0 * mean_span / span, 1)
                  << "% of the order (vs ~100% in virtual order, "
                     "Figure 3)\n\n";
    }
}

} // namespace

int
main()
{
    banner("Figure 5 — Access Patterns in CDPC Coloring Order",
           "Figure 5 (Section 5.2); 16 CPUs, CDPC");
    for (const char *w : {"101.tomcatv", "102.swim", "104.hydro2d"})
        plotWorkload(w);
    return 0;
}
