/**
 * @file
 * Section 3.3's methodology check: representative execution windows.
 *
 * "We analyze the variation in execution behavior between different
 *  occurrences of each phase. We found that in all but one case
 *  (wave5), the standard deviation of both the number of
 *  instructions and the miss rate is less than 1% of the mean."
 *
 * This bench replays every workload's steady phases several times
 * (after a warm-up occurrence, as the paper discards cold-start
 * transients) and reports the occurrence-to-occurrence variation of
 * instructions and external-cache misses — the evidence that
 * simulating a few occurrences and weighting by the occurrence count
 * is sound.
 */

#include "bench/bench_util.h"
#include "common/stats.h"
#include "machine/simulator.h"
#include "mem/memsystem.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"
#include "compiler/compiler.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main()
{
    banner("Methodology — Representative Execution Windows",
           "Section 3.3: per-phase occurrence variation");
    constexpr std::uint32_t ncpus = 8;
    constexpr int kRounds = 6;

    TextTable table({"workload", "phase", "insts mean(M)",
                     "insts stddev", "misses mean(K)",
                     "miss stddev"});

    for (const WorkloadInfo &w : allWorkloads()) {
        Program prog = w.build();
        MachineConfig machine = MachineConfig::paperScaled(ncpus);
        CompilerOptions copts;
        copts.aligner.lineBytes = machine.l2.lineBytes;
        copts.aligner.l1SpanBytes =
            machine.l1d.sizeBytes / machine.l1d.assoc;
        compileProgram(prog, copts);

        PhysMem phys(machine.physPages, machine.numColors());
        PageColoringPolicy policy(machine.numColors());
        VirtualMemory vm(machine, phys, policy);
        MemorySystem mem(machine, vm);
        MpSimulator sim(machine, mem);
        SimOptions opts;
        sim.runPhase(prog, prog.init, opts);

        for (const Phase &phase : prog.steady) {
            // One warm-up occurrence, then measure the rest.
            sim.runPhase(prog, phase, opts);
            Distribution insts, misses;
            for (int r = 0; r < kRounds; r++) {
                RunTotals before = sim.snapshot();
                sim.runPhase(prog, phase, opts);
                RunTotals after = sim.snapshot();
                double di = 0.0;
                for (std::size_t c = 0; c < after.cpus.size(); c++) {
                    di += static_cast<double>(after.cpus[c].insts -
                                              before.cpus[c].insts);
                }
                insts.sample(di);
                misses.sample(static_cast<double>(
                    after.mem.l2Misses - before.mem.l2Misses));
            }
            auto rel = [](const Distribution &d) {
                return d.mean() > 0
                           ? fmtF(100.0 * d.stddev() / d.mean(), 2) +
                                 "%"
                           : std::string("-");
            };
            table.addRow({
                w.name,
                phase.name,
                fmtF(insts.mean() / 1e6, 2),
                rel(insts),
                fmtF(misses.mean() / 1e3, 1),
                rel(misses),
            });
        }
        table.addSeparator();
    }
    std::cout << table.render();
    std::cout << "\nThe paper found <1% variation everywhere except "
                 "one wave5 phase.\nOur synthetic kernels are exactly "
                 "periodic, so near-zero variation\nvalidates the "
                 "weighted-occurrence methodology every other bench\n"
                 "relies on (wave5's real-data 30% miss variation is "
                 "a property of\nits input file that a synthetic "
                 "stand-in does not carry).\n";
    return 0;
}
