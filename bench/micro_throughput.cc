/**
 * @file
 * google-benchmark microbenchmarks: raw throughput of the simulator
 * substrate (cache lookups, full memory-system accesses, TLB, CDPC
 * plan computation, whole-experiment runs). These bound how much
 * paper-scale simulation the figure benches can afford.
 */

#include <benchmark/benchmark.h>

#include "cdpc/runtime.h"
#include "common/logging.h"
#include "compiler/compiler.h"
#include "harness/experiment.h"
#include "mem/cache.h"
#include "mem/memsystem.h"
#include "mem/tlb.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"
#include "workloads/workload.h"

namespace
{

using namespace cdpc;

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig{128 * 1024, 1, 64});
    std::uint64_t addr = 0;
    for (auto _ : state) {
        Addr line = (addr * 64) % (1 << 22);
        CacheLine *l = cache.access(line * 64, line);
        if (!l)
            cache.insert(line * 64, line, Mesi::Shared);
        addr++;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbAccess(benchmark::State &state)
{
    Tlb tlb(64);
    std::uint64_t vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.access(vpn % 256));
        vpn += 3;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbAccess);

void
BM_MemSystemAccess(benchmark::State &state)
{
    auto ncpus = static_cast<std::uint32_t>(state.range(0));
    MachineConfig m = MachineConfig::paperScaled(ncpus);
    PhysMem phys(m.physPages, m.numColors());
    PageColoringPolicy policy(m.numColors());
    VirtualMemory vm(m, phys, policy);
    MemorySystem mem(m, vm);

    std::uint64_t i = 0;
    Cycles now = 0;
    for (auto _ : state) {
        MemAccess a;
        a.va = (i * 64) % (4 << 20);
        a.kind = (i & 3) == 0 ? AccessKind::Store : AccessKind::Load;
        AccessOutcome out =
            mem.access(static_cast<CpuId>(i % ncpus), a, now);
        now += 10 + out.stall;
        i++;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemSystemAccess)->Arg(1)->Arg(8)->Arg(16);

void
BM_CdpcPlan(benchmark::State &state)
{
    Program prog = buildWorkload("102.swim");
    CompileResult compiled = compileProgram(prog);
    CdpcParams params = cdpcParams(MachineConfig::paperScaled(16));
    for (auto _ : state) {
        CdpcPlan plan = computeCdpcPlan(compiled.summaries, params);
        benchmark::DoNotOptimize(plan.coloring.hints.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CdpcPlan);

void
BM_FullExperiment(benchmark::State &state)
{
    auto ncpus = static_cast<std::uint32_t>(state.range(0));
    for (auto _ : state) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(ncpus);
        cfg.mapping = MappingPolicy::Cdpc;
        ExperimentResult r = runWorkload("104.hydro2d", cfg);
        benchmark::DoNotOptimize(r.totals.wall);
    }
}
BENCHMARK(BM_FullExperiment)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
