/**
 * @file
 * google-benchmark microbenchmarks: raw throughput of the simulator
 * substrate (cache lookups, full memory-system accesses, TLB, VM
 * translation, CDPC plan computation, whole-experiment runs). These
 * bound how much paper-scale simulation the figure benches can
 * afford.
 *
 * The per-reference benchmarks (BM_MemAccess, BM_Translate,
 * BM_TlbAccess, BM_CacheAccess) are the guarded fast path: their
 * per-iteration nanoseconds are recorded into
 * BENCH_micro_throughput.json next to the batch-engine throughput
 * baseline, and tools/bench_diff compares a fresh run against the
 * committed baseline (CI fails on >25% regression). Workflow:
 *
 *   cmake -B build -S . -DCMAKE_BUILD_TYPE=Release
 *   cmake --build build -j
 *   (cd build && ./bench/micro_throughput)   # writes the JSON
 *   ./build/tools/bench_diff BENCH_micro_throughput.json \
 *       build/BENCH_micro_throughput.json
 *
 * To re-baseline after an intentional change, copy the fresh JSON
 * over the committed one at the repo root.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "cdpc/runtime.h"
#include "common/logging.h"
#include "common/table.h"
#include "compiler/compiler.h"
#include "harness/experiment.h"
#include "mem/cache.h"
#include "mem/memsystem.h"
#include "mem/tlb.h"
#include "runner/runner.h"
#include "verify/differential.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"
#include "workloads/workload.h"

namespace
{

using namespace cdpc;

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(CacheConfig{128 * 1024, 1, 64});
    std::uint64_t addr = 0;
    for (auto _ : state) {
        Addr line = (addr * 64) % (1 << 22);
        CacheLine *l = cache.access(line * 64, line);
        if (!l)
            cache.insert(line * 64, line, Mesi::Shared);
        addr++;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccess);

void
BM_TlbAccess(benchmark::State &state)
{
    Tlb tlb(64);
    std::uint64_t vpn = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(tlb.access(vpn % 256));
        vpn += 3;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TlbAccess);

/**
 * Raw translation throughput over a pre-faulted footprint: the page
 * walk the memory system performs whenever the translation
 * micro-cache misses.
 */
void
BM_Translate(benchmark::State &state)
{
    MachineConfig m = MachineConfig::paperScaled(1);
    PhysMem phys(m.physPages, m.numColors());
    PageColoringPolicy policy(m.numColors());
    VirtualMemory vm(m, phys, policy);

    constexpr std::uint64_t kPages = 1024;
    for (std::uint64_t p = 0; p < kPages; p++)
        vm.touch(p * m.pageBytes, 0);

    std::uint64_t i = 0;
    for (auto _ : state) {
        VAddr va = ((i * 7) % kPages) * m.pageBytes + (i & 63);
        benchmark::DoNotOptimize(vm.translate(va, 0).pa);
        i++;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_Translate);

/**
 * The headline per-reference number: one full MemorySystem::access
 * (TLB + translation + L1 + L2 + classification) per iteration,
 * striding lines through a 4MB virtual footprint.
 */
void
BM_MemAccess(benchmark::State &state)
{
    auto ncpus = static_cast<std::uint32_t>(state.range(0));
    MachineConfig m = MachineConfig::paperScaled(ncpus);
    PhysMem phys(m.physPages, m.numColors());
    PageColoringPolicy policy(m.numColors());
    VirtualMemory vm(m, phys, policy);
    MemorySystem mem(m, vm);

    std::uint64_t i = 0;
    Cycles now = 0;
    for (auto _ : state) {
        MemAccess a;
        a.va = (i * 64) % (4 << 20);
        a.kind = (i & 3) == 0 ? AccessKind::Store : AccessKind::Load;
        AccessOutcome out =
            mem.access(static_cast<CpuId>(i % ncpus), a, now);
        now += 10 + out.stall;
        i++;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemAccess)->Arg(1)->Arg(8)->Arg(16);

/**
 * BM_MemAccess with the differential verifier attached (deep compare
 * every 4096 references): bounds the cost of running `cdpcsim
 * verify`-style lockstep checks. Not part of the recorded baseline —
 * this is a budget check, not a regression-diffed key.
 *
 * Context for the budget: BM_MemAccess strides a 4MB footprint
 * through a 128KB L2, so every reference misses — the worst case for
 * the reference model, whose list+map structures pay several
 * dependent memory touches per miss where the optimized flat path
 * pays one. After node recycling and the array-of-sets layout the
 * measured ratio is ~4x here (down from ~6x for the naive model);
 * pushing to the nominal 3x target would require giving the model
 * the optimized path's own machinery (flat hashing, a sharers
 * directory), defeating its independence. Hit-heavy streams verify
 * proportionally cheaper.
 */
void
BM_MemAccessVerify(benchmark::State &state)
{
    auto ncpus = static_cast<std::uint32_t>(state.range(0));
    auto deep = static_cast<std::uint64_t>(state.range(1));
    MachineConfig m = MachineConfig::paperScaled(ncpus);
    PhysMem phys(m.physPages, m.numColors());
    PageColoringPolicy policy(m.numColors());
    VirtualMemory vm(m, phys, policy);
    MemorySystem mem(m, vm);
    verify::DifferentialVerifier verifier(m, mem, vm, deep);
    mem.setMemObserver(&verifier);

    std::uint64_t i = 0;
    Cycles now = 0;
    for (auto _ : state) {
        MemAccess a;
        a.va = (i * 64) % (4 << 20);
        a.kind = (i & 3) == 0 ? AccessKind::Store : AccessKind::Load;
        AccessOutcome out =
            mem.access(static_cast<CpuId>(i % ncpus), a, now);
        now += 10 + out.stall;
        i++;
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MemAccessVerify)
    ->Args({1, 4096})
    ->Args({8, 4096})
    ->Args({8, 1 << 20});

void
BM_CdpcPlan(benchmark::State &state)
{
    Program prog = buildWorkload("102.swim");
    CompileResult compiled = compileProgram(prog);
    CdpcParams params = cdpcParams(MachineConfig::paperScaled(16));
    for (auto _ : state) {
        CdpcPlan plan = computeCdpcPlan(compiled.summaries, params);
        benchmark::DoNotOptimize(plan.coloring.hints.size());
    }
    state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CdpcPlan);

void
BM_FullExperiment(benchmark::State &state, std::uint32_t ncpus,
                  std::uint32_t sim_threads)
{
    for (auto _ : state) {
        ExperimentConfig cfg;
        cfg.machine = MachineConfig::paperScaled(ncpus);
        cfg.mapping = MappingPolicy::Cdpc;
        cfg.sim.simThreads = sim_threads;
        ExperimentResult r = runWorkload("104.hydro2d", cfg);
        benchmark::DoNotOptimize(r.totals.wall);
    }
}
BENCHMARK_CAPTURE(BM_FullExperiment, 1, 1u, 1u)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullExperiment, 8, 8u, 1u)
    ->Unit(benchmark::kMillisecond);
// The epoch-parallel scaling ladder (DESIGN.md §14): the same
// 8-CPU experiment sharded over 1/2/4/8 host threads. Outputs are
// bit-identical; only the host time may change. The t1 variant
// measures the engine's bookkeeping overhead against the plain
// serial interleave above; simdParallelEfficiency in the baseline
// JSON is derived from t1 vs t8.
BENCHMARK_CAPTURE(BM_FullExperiment, 8_t1, 8u, 1u)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullExperiment, 8_t2, 8u, 2u)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullExperiment, 8_t4, 8u, 4u)
    ->Unit(benchmark::kMillisecond);
BENCHMARK_CAPTURE(BM_FullExperiment, 8_t8, 8u, 8u)
    ->Unit(benchmark::kMillisecond);

/**
 * ConsoleReporter that additionally records each benchmark's
 * per-iteration real time in nanoseconds, keyed by a
 * JSON-identifier-safe name ("BM_MemAccess/8" -> "BM_MemAccess_8"),
 * so the results can be written into the machine-readable baseline.
 */
class RecordingReporter : public benchmark::ConsoleReporter
{
  public:
    std::map<std::string, double> nsPerIter;

    void
    ReportRuns(const std::vector<Run> &runs) override
    {
        for (const Run &r : runs) {
            if (r.error_occurred || r.run_type != Run::RT_Iteration)
                continue;
            std::string key = r.benchmark_name();
            // Verification benches are informational (the reference
            // model is deliberately slow); keep them out of the
            // recorded baseline so bench_diff --strict-keys holds.
            if (key.find("Verify") != std::string::npos)
                continue;
            std::replace(key.begin(), key.end(), '/', '_');
            double iters =
                r.iterations > 0 ? static_cast<double>(r.iterations) : 1.0;
            nsPerIter[key] = r.real_accumulated_time / iters * 1e9;
        }
        ConsoleReporter::ReportRuns(runs);
    }
};

/**
 * The fixed batch baseline: a small representative battery (two
 * policy-sensitive workloads x {1, 8} CPUs x {PC, CDPC}) pushed
 * through the work-stealing runner at hardware concurrency, plus
 * the per-iteration nanoseconds of every microbenchmark that ran.
 * The figures of merit are simulated references per host second and
 * the *_ns keys — the quantities every future fast-path PR must not
 * regress (tools/bench_diff enforces this against the committed
 * BENCH_micro_throughput.json).
 */
void
writeBatchBaseline(const char *path,
                   const std::map<std::string, double> &ns_per_iter)
{
    std::vector<runner::JobSpec> specs;
    for (const char *app : {"101.tomcatv", "104.hydro2d"}) {
        for (std::uint32_t p : {1u, 8u}) {
            for (MappingPolicy pol :
                 {MappingPolicy::PageColoring, MappingPolicy::Cdpc}) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::paperScaled(p);
                cfg.mapping = pol;
                specs.push_back(runner::makeJob(app, cfg));
            }
        }
    }

    runner::BatchOptions options;
    auto start = std::chrono::steady_clock::now();
    std::vector<runner::JobResult> results =
        runner::runBatch(specs, options);
    double wall = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - start)
                      .count();

    double refs = 0.0;
    double sim_seconds = 0.0;
    for (const runner::JobResult &r : results) {
        fatalIf(!r.ok(), "baseline job failed: ", r.error);
        refs += r.result->totals.refs;
        sim_seconds += r.hostSeconds;
    }

    std::ofstream out(path, std::ios::trunc);
    fatalIf(!out, "cannot open ", path);
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "{\"bench\":\"micro_throughput\",\"jobs\":%zu,"
        "\"workers\":%u,\"wallSeconds\":%.6f,"
        "\"jobSecondsTotal\":%.6f,\"simulatedRefs\":%.0f,"
        "\"refsPerSecond\":%.0f,\"parallelEfficiency\":%.3f",
        results.size(),
        std::max(1u, std::thread::hardware_concurrency()), wall,
        sim_seconds, refs, wall > 0 ? refs / wall : 0.0,
        wall > 0 ? sim_seconds / wall : 0.0);
    out << buf;
    // Epoch-engine intra-experiment scaling: serial-equivalent time
    // over the widest sharded variant, normalized by the thread
    // count the host can actually run. 1.0 = perfect scaling.
    auto t1 = ns_per_iter.find("BM_FullExperiment_8_t1");
    auto t8 = ns_per_iter.find("BM_FullExperiment_8_t8");
    if (t1 != ns_per_iter.end() && t8 != ns_per_iter.end() &&
        t8->second > 0) {
        double threads = static_cast<double>(std::min(
            8u, std::max(1u, std::thread::hardware_concurrency())));
        std::snprintf(buf, sizeof(buf),
                      ",\"simdParallelEfficiency\":%.3f",
                      (t1->second / t8->second) / threads);
        out << buf;
    }
    for (const auto &[name, ns] : ns_per_iter) {
        std::snprintf(buf, sizeof(buf), ",\"%s_ns\":%.2f", name.c_str(),
                      ns);
        out << buf;
    }
    out << "}\n";
    std::cout << "batch baseline: " << results.size() << " jobs, "
              << fmtF(wall, 2) << "s wall, "
              << fmtF(refs / 1e6, 1) << "M simulated refs, "
              << ns_per_iter.size() << " micro timings -> " << path
              << "\n";
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    RecordingReporter reporter;
    benchmark::RunSpecifiedBenchmarks(&reporter);
    benchmark::Shutdown();
    writeBatchBaseline("BENCH_micro_throughput.json", reporter.nsPerIter);
    return 0;
}
