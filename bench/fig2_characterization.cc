/**
 * @file
 * Figure 2: high-level characterization of the workloads.
 *
 * Four complementary views for all ten benchmarks at 1-16 CPUs on
 * the base machine (1MB-class direct-mapped external cache, IRIX
 * page coloring):
 *   1. combined execution time (sum over CPUs) split into
 *      execution / memory stall / overheads;
 *   2. the overheads split into kernel, load imbalance, sequential,
 *      suppressed and synchronization time;
 *   3. memory system behaviour (MCPI) split into on-chip,
 *      replacement and communication stalls;
 *   4. bus utilization split into data, writeback and upgrade
 *      occupancy.
 */

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main()
{
    banner("Figure 2 — High Level Characterization of the Workloads",
           "Figure 2 (Section 4.1); base config, page coloring");

    for (const WorkloadInfo &w : allWorkloads()) {
        std::cout << "--- " << w.name << " (" << w.description
                  << ") ---\n";
        TextTable table({"P", "combined(M)", "exec%", "mem%", "ovhd%",
                         "kern%", "imb%", "seq%", "supp%", "sync%",
                         "MCPI", "on-chip%", "repl%", "comm%",
                         "bus", "data%", "wb%", "upg%"});

        double base_combined = 0.0;
        for (std::uint32_t p : kSimCpuCounts) {
            ExperimentConfig cfg;
            cfg.machine = MachineConfig::paperScaled(p);
            cfg.mapping = MappingPolicy::PageColoring;
            ExperimentResult r = runWorkload(w.name, cfg);
            const WeightedTotals &t = r.totals;

            double combined = t.combinedTime();
            if (p == 1)
                base_combined = combined;
            auto pct_of = [&](double v, double whole) {
                return whole > 0 ? fmtF(100.0 * v / whole, 1)
                                 : std::string("0.0");
            };
            double bus_busy =
                t.busDataBusy + t.busWritebackBusy + t.busUpgradeBusy;
            table.addRow({
                std::to_string(p),
                fmtF(combined / 1e6, 0),
                pct_of(t.busy, combined),
                pct_of(t.memStall, combined),
                pct_of(t.overheadTime(), combined),
                pct_of(t.kernel, combined),
                pct_of(t.imbalance, combined),
                pct_of(t.sequential, combined),
                pct_of(t.suppressed, combined),
                pct_of(t.sync, combined),
                fmtF(t.mcpi(), 2),
                pct_of(t.l2HitStall, t.memStall),
                pct_of(t.replacementStall(), t.memStall),
                pct_of(t.communicationStall(), t.memStall),
                fmtF(t.busUtilization() * 100.0, 1) + "%",
                pct_of(t.busDataBusy, bus_busy),
                pct_of(t.busWritebackBusy, bus_busy),
                pct_of(t.busUpgradeBusy, bus_busy),
            });
        }
        std::cout << table.render();
        // A constant combined time across P means linear speedup.
        std::cout << "speedup@16 (combined-time ratio vs 1P deviation "
                     "from 1.0 indicates overheads)\n\n";
        (void)base_combined;
    }
    return 0;
}
