/**
 * @file
 * Extension experiment: does compiler-directed coloring survive
 * hostile index functions?
 *
 * The paper's machines map consecutive physical pages to consecutive
 * colors. Modern hardware does not: sliced LLCs hash the slice from
 * high physical-address bits (Sandy Bridge's recovered XOR
 * functions), and DRAM-cache memory mode explodes the color space to
 * hundreds of colors with channel-interleaved pages. This bench
 * races page coloring, bin hopping and CDPC across the three index
 * families — the modulo baseline, paperScaledSlicedHash and
 * dramCacheMode — and asks whether CDPC's advantage is an artifact
 * of linear color cycling.
 *
 * Emits BENCH_ext_hashed_llc.json — a flat object of "hash."-prefixed
 * metrics per (machine, app, policy) cell — which tools/bench_diff
 * compares against the committed baseline in CI (".mcpi" cells gate,
 * the rest are context).
 */

#include <fstream>

#include "bench/bench_util.h"
#include "machine/index_function.h"

using namespace cdpc;
using namespace cdpc::bench;

namespace
{

struct MachineRow
{
    const char *tag;
    MachineConfig (*make)(std::uint32_t);
};

const MachineRow kMachines[] = {
    {"mod", MachineConfig::paperScaled},
    {"slicedhash", MachineConfig::paperScaledSlicedHash},
    {"dramcache", MachineConfig::dramCacheMode},
};

const MappingPolicy kPolicies[] = {
    MappingPolicy::PageColoring,
    MappingPolicy::BinHopping,
    MappingPolicy::Cdpc,
};

const char *
policyTag(MappingPolicy p)
{
    switch (p) {
      case MappingPolicy::PageColoring:
        return "pc";
      case MappingPolicy::BinHopping:
        return "bh";
      case MappingPolicy::Cdpc:
        return "cdpc";
      default:
        return "?";
    }
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobs(argc, argv);
    banner("Extension — Hostile Index Functions",
           "modulo vs sliced-hash LLC vs DRAM-cache color mapping");

    const char *apps[] = {"101.tomcatv", "102.swim"};
    const std::uint32_t cpus = 8;

    std::vector<runner::JobSpec> specs;
    for (const MachineRow &mr : kMachines) {
        for (const char *app : apps) {
            for (MappingPolicy pol : kPolicies) {
                ExperimentConfig cfg;
                cfg.machine = mr.make(cpus);
                cfg.mapping = pol;
                addJob(specs, app, cfg);
            }
        }
    }
    std::vector<ExperimentResult> results = runBatch(specs, jobs);

    std::ofstream json("BENCH_ext_hashed_llc.json");
    fatalIf(!json, "cannot open BENCH_ext_hashed_llc.json");
    json << "{\n  \"bench\": \"ext_hashed_llc\"";

    std::size_t next = 0;
    for (const MachineRow &mr : kMachines) {
        MachineConfig m = mr.make(cpus);
        std::cout << "--- " << m.name << " ("
                  << indexKindName(m.l2.indexKind) << ", "
                  << m.numColors() << " colors) ---\n";
        TextTable table({"app", "policy", "combined(M)", "MCPI",
                         "conflict%", "vs page-coloring"});
        for (const char *app : apps) {
            double pc = 0.0;
            for (MappingPolicy pol : kPolicies) {
                const ExperimentResult &r = results[next++];
                double combined = r.totals.combinedTime();
                if (pol == MappingPolicy::PageColoring)
                    pc = combined;
                double conf =
                    r.totals.memStall > 0
                        ? 100.0 *
                              r.totals.missStallOf(MissKind::Conflict) /
                              r.totals.memStall
                        : 0.0;
                table.addRow({
                    app,
                    r.policy,
                    fmtF(combined / 1e6, 0),
                    fmtF(r.totals.mcpi(), 2),
                    fmtF(conf, 1) + "%",
                    fmtF(pc / combined, 2) + "x",
                });

                std::string key = std::string("hash.") + mr.tag + "." +
                                  app + "." + policyTag(pol);
                json << ",\n  \"" << key
                     << ".mcpi\": " << r.totals.mcpi()
                     << ",\n  \"" << key << ".conflictpct\": " << conf
                     << ",\n  \"" << key << ".speedup_vs_pc\": "
                     << (combined > 0 ? pc / combined : 0.0);
            }
            table.addSeparator();
        }
        std::cout << table.render() << "\n";
    }
    json << "\n}\n";
    json.close();
    fatalIf(!json, "write to BENCH_ext_hashed_llc.json failed");

    std::cout << "Wrote BENCH_ext_hashed_llc.json (" << next
              << " cells)\n"
              << "The slice hash already de-aliases power-of-two\n"
                 "strides, so page coloring's pathology shrinks — but\n"
                 "CDPC still wins where per-CPU working sets need\n"
                 "*packing*, and the huge DRAM-cache color space makes\n"
                 "hints nearly free to honor.\n";
    return 0;
}
