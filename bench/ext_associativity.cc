/**
 * @file
 * Extension experiment: how much associativity replaces CDPC?
 *
 * Section 6.1: "tomcatv has seven large data structures and only an
 * eight-way set-associative cache of size 1MB would eliminate all
 * conflicts for 16 processors." This bench sweeps the external
 * cache's associativity from 1 to 8 ways at constant capacity and
 * measures the conflict stall under page coloring vs CDPC — checking
 * that claim directly, and showing that even high associativity does
 * not recover CDPC's cache-utilization benefit.
 */

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main()
{
    banner("Extension — Associativity Sweep vs CDPC",
           "validates the Section 6.1 eight-way claim; 16 CPUs");
    constexpr std::uint32_t ncpus = 16;

    for (const char *app : {"101.tomcatv", "102.swim", "104.hydro2d"}) {
        std::cout << "--- " << app << " ---\n";
        TextTable table({"assoc", "colors", "PC combined(M)",
                         "PC conflict stall(M)", "CDPC combined(M)",
                         "CDPC speedup"});
        for (std::uint32_t assoc : {1u, 2u, 4u, 8u}) {
            double combined[2], conflict_pc = 0.0;
            std::uint64_t colors = 0;
            int i = 0;
            for (MappingPolicy pol :
                 {MappingPolicy::PageColoring, MappingPolicy::Cdpc}) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::paperScaled(ncpus);
                cfg.machine.l2.assoc = assoc;
                cfg.machine.validate();
                colors = cfg.machine.numColors();
                cfg.mapping = pol;
                ExperimentResult r = runWorkload(app, cfg);
                combined[i] = r.totals.combinedTime();
                if (pol == MappingPolicy::PageColoring) {
                    conflict_pc =
                        r.totals.missStallOf(MissKind::Conflict);
                }
                i++;
            }
            table.addRow({
                std::to_string(assoc) + "-way",
                std::to_string(colors),
                fmtF(combined[0] / 1e6, 0),
                fmtF(conflict_pc / 1e6, 0),
                fmtF(combined[1] / 1e6, 0),
                fmtF(combined[0] / combined[1], 2) + "x",
            });
        }
        std::cout << table.render() << "\n";
    }
    std::cout << "Expected: the page-coloring conflict stall shrinks "
                 "with associativity\nand is largely gone by 8-way "
                 "(the paper's tomcatv claim), while CDPC\nachieves "
                 "the same with a direct-mapped cache.\n";
    return 0;
}
