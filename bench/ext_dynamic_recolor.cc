/**
 * @file
 * Extension experiment: dynamic page recoloring vs CDPC.
 *
 * Section 2.1 of the paper describes hardware-assisted dynamic
 * recoloring [4, 20] and notes: "To our knowledge, the performance
 * of dynamic policies for multiprocessors has not been studied ...
 * The TLB state of each processor must be individually flushed and
 * the recoloring operation may generate significant inter-processor
 * communication." This bench runs that unevaluated comparison on our
 * model: page coloring alone, page coloring + dynamic recoloring
 * (with the full purge/shootdown/copy costs), and CDPC.
 *
 * Expected shape: dynamic recoloring recovers much of what page
 * coloring loses — it is a real policy — but pays per-recoloring
 * overhead that grows with the CPU count, while CDPC gets the
 * mapping right *before* the faults and pays nothing at run time.
 */

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main()
{
    banner("Extension — Dynamic Recoloring vs CDPC",
           "Section 2.1's unevaluated alternative; base config");

    const char *apps[] = {"101.tomcatv", "102.swim", "104.hydro2d",
                          "107.mgrid"};

    for (const char *app : apps) {
        std::cout << "--- " << app << " ---\n";
        TextTable table({"P", "config", "combined(M)", "speedup vs PC",
                         "recolorings", "overhead(M)", "conflict%"});
        for (std::uint32_t p : {4u, 8u, 16u}) {
            double pc_base = 0.0;
            struct Mode
            {
                const char *name;
                MappingPolicy pol;
                bool dynamic;
            };
            const Mode modes[] = {
                {"PC", MappingPolicy::PageColoring, false},
                {"PC+dyn", MappingPolicy::PageColoring, true},
                {"CDPC", MappingPolicy::Cdpc, false},
            };
            for (const Mode &m : modes) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::paperScaled(p);
                cfg.mapping = m.pol;
                cfg.dynamicRecolor = m.dynamic;
                // The dynamic policy needs time to converge: give it
                // extra warmup rounds (its recolorings mostly happen
                // there, as they would early in a real run) and a
                // threshold matched to the short simulated window.
                cfg.recolor.missThreshold = 8;
                cfg.sim.warmupRounds = m.dynamic ? 3 : 1;
                cfg.sim.measureRounds = 2;
                ExperimentResult r = runWorkload(app, cfg);
                double combined = r.totals.combinedTime();
                if (std::string(m.name) == "PC")
                    pc_base = combined;
                double conf =
                    r.totals.memStall > 0
                        ? 100.0 *
                              r.totals.missStallOf(MissKind::Conflict) /
                              r.totals.memStall
                        : 0.0;
                table.addRow({
                    std::to_string(p),
                    m.name,
                    fmtF(combined / 1e6, 0),
                    fmtF(pc_base / combined, 2) + "x",
                    fmtI(r.recolorStats.recolorings),
                    fmtF(r.recolorStats.overheadCycles / 1e6, 1),
                    fmtF(conf, 1) + "%",
                });
            }
            table.addSeparator();
        }
        std::cout << table.render() << "\n";
    }
    std::cout
        << "Reading: PC+dyn closes part of the gap to CDPC but pays\n"
           "shootdown/copy overhead per recoloring; CDPC fixes the\n"
           "mapping before the first fault, for free at run time —\n"
           "supporting the paper's choice of the static approach.\n";
    return 0;
}
