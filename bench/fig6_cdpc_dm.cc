/**
 * @file
 * Figure 6: impact of compiler-directed page coloring on the base
 * configuration (1MB-class direct-mapped external cache).
 *
 * For each application and CPU count the paper shows a pair of
 * bars, standard page coloring (left) vs CDPC (right), broken into
 * execution/stall categories. apsi and fpppp are omitted as in the
 * paper (CDPC has no effect on them). Expected shapes: large wins
 * for tomcatv, swim and hydro2d growing with CPU count; small gains
 * for turb3d and mgrid at high CPU counts; a slight *loss* for
 * su2cor; nothing for applu at this cache size.
 */

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobs(argc, argv);
    banner("Figure 6 — Impact of Compiler-Directed Page Coloring",
           "Figure 6 (Section 6.1); 1MB-class direct-mapped cache");

    const char *apps[] = {"101.tomcatv", "102.swim", "103.su2cor",
                          "104.hydro2d", "107.mgrid", "110.applu",
                          "125.turb3d", "146.wave5"};

    // One batch over every (app, P, policy) cell of the figure.
    std::vector<runner::JobSpec> specs;
    for (const char *app : apps) {
        for (std::uint32_t p : kSimCpuCounts) {
            for (MappingPolicy pol :
                 {MappingPolicy::PageColoring, MappingPolicy::Cdpc}) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::paperScaled(p);
                cfg.mapping = pol;
                addJob(specs, app, cfg);
            }
        }
    }
    std::vector<ExperimentResult> results = runBatch(specs, jobs);
    std::size_t next = 0;

    for (const char *app : apps) {
        std::cout << "--- " << app << " ---\n";
        std::vector<std::string> header = {"P", "policy", "combined(M)",
                                           "speedup"};
        for (const std::string &h : mcpiHeader())
            header.push_back(h);
        header.push_back("bar (combined time)");
        TextTable table(header);

        double worst = 0.0;
        struct Row
        {
            std::uint32_t p;
            std::string policy;
            double combined;
            WeightedTotals t;
        };
        std::vector<Row> rows;
        for (std::uint32_t p : kSimCpuCounts) {
            for (int i = 0; i < 2; i++) {
                const ExperimentResult &r = results[next++];
                rows.push_back({p, r.policy, r.totals.combinedTime(),
                                r.totals});
                worst = std::max(worst, rows.back().combined);
            }
        }
        double pc_time = 0.0;
        for (const Row &row : rows) {
            if (row.policy == "page-coloring")
                pc_time = row.combined;
            std::vector<std::string> cells = {
                std::to_string(row.p),
                row.policy,
                fmtF(row.combined / 1e6, 0),
                fmtF(pc_time / row.combined, 2) + "x",
            };
            for (const std::string &c : mcpiColumns(row.t))
                cells.push_back(c);
            cells.push_back(textBar(row.combined, worst, 36));
            table.addRow(cells);
        }
        std::cout << table.render() << "\n";
    }
    std::cout << "(apsi and fpppp omitted: CDPC has no effect on "
                 "them, as in the paper)\n";
    return 0;
}
