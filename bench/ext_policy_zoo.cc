/**
 * @file
 * Extension experiment: the wider page-mapping policy zoo.
 *
 * Beyond the paper's two commercial policies, research systems of
 * the era explored *random* mapping (no pathologies, no locality)
 * and *hashed* coloring (deterministic de-aliasing of power-of-two
 * strides). This bench races all six mappings — page coloring, bin
 * hopping, random, hash, CDPC and touch-order CDPC — over the three
 * most policy-sensitive benchmarks, asking whether any "smarter"
 * static policy closes the gap to compiler direction.
 */

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobs(argc, argv);
    banner("Extension — Page-Mapping Policy Zoo",
           "page coloring / bin hopping / random / hash / CDPC");

    const MappingPolicy policies[] = {
        MappingPolicy::PageColoring, MappingPolicy::BinHopping,
        MappingPolicy::Random,       MappingPolicy::Hash,
        MappingPolicy::Cdpc,         MappingPolicy::CdpcTouchOrder,
    };

    const char *apps[] = {"101.tomcatv", "102.swim", "104.hydro2d"};
    std::vector<runner::JobSpec> specs;
    for (const char *app : apps) {
        for (std::uint32_t p : {8u, 16u}) {
            for (MappingPolicy pol : policies) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::paperScaled(p);
                cfg.mapping = pol;
                addJob(specs, app, cfg);
            }
        }
    }
    std::vector<ExperimentResult> results = runBatch(specs, jobs);
    std::size_t next = 0;

    for (const char *app : apps) {
        std::cout << "--- " << app << " ---\n";
        TextTable table({"P", "policy", "combined(M)", "MCPI",
                         "conflict%", "vs page-coloring"});
        for (std::uint32_t p : {8u, 16u}) {
            double pc = 0.0;
            for (MappingPolicy pol : policies) {
                const ExperimentResult &r = results[next++];
                double combined = r.totals.combinedTime();
                if (pol == MappingPolicy::PageColoring)
                    pc = combined;
                double conf =
                    r.totals.memStall > 0
                        ? 100.0 *
                              r.totals.missStallOf(MissKind::Conflict) /
                              r.totals.memStall
                        : 0.0;
                table.addRow({
                    std::to_string(p),
                    r.policy,
                    fmtF(combined / 1e6, 0),
                    fmtF(r.totals.mcpi(), 2),
                    fmtF(conf, 1) + "%",
                    fmtF(pc / combined, 2) + "x",
                });
            }
            table.addSeparator();
        }
        std::cout << table.render() << "\n";
    }
    std::cout
        << "Random and hash avoid page coloring's aligned-array\n"
           "pathology but cannot *pack* each CPU's sparse working set\n"
           "the way CDPC does — de-aliasing is necessary, not\n"
           "sufficient.\n";
    return 0;
}
