/**
 * @file
 * Figure 1: the structure of SUIF-parallelized applications.
 *
 * The paper's Figure 1 diagrams the master/slave execution model:
 * sequential sections run on the master while slaves spin, parallel
 * loops fork to all CPUs and meet at a barrier, and suppressed loops
 * run on the master alone. We reproduce it as a measured timeline: a
 * small program with one nest of each kind is simulated and its
 * per-CPU activity rendered as a text Gantt chart.
 */

#include <algorithm>

#include "bench/bench_util.h"
#include "ir/layout.h"
#include "machine/simulator.h"
#include "mem/memsystem.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/virtual_memory.h"
#include "workloads/builder.h"

using namespace cdpc;
using namespace cdpc::bench;

namespace
{

Program
mixedProgram()
{
    constexpr std::uint64_t n = 64;
    ProgramBuilder b("fig1-model");
    std::uint32_t a = b.array2d("a", n, n);
    std::uint32_t o = b.array2d("o", n, n);
    b.initNest(interleavedInit2d(b, {a, o}, n, n));

    Phase ph;
    ph.name = "iteration";
    auto nest = [&](const char *label, NestKind kind,
                    std::uint64_t rows) {
        LoopNest x;
        x.label = label;
        x.kind = kind;
        x.parallelDim = 0;
        x.bounds = {rows, n};
        x.instsPerIter = 30;
        x.refs = {b.at2(a, 0, 1, 0, 0), b.at2(o, 0, 1, 0, 0, true)};
        ph.nests.push_back(x);
    };
    nest("sequential-setup", NestKind::Sequential, 16);
    nest("parallel-loop-1", NestKind::Parallel, n);
    nest("suppressed-fine-grain", NestKind::Suppressed, 8);
    nest("parallel-loop-2", NestKind::Parallel, n);
    b.phase(ph);
    Program p = b.build();
    assignAddresses(p, LayoutOptions{});
    return p;
}

} // namespace

int
main()
{
    banner("Figure 1 — Structure of SUIF-Parallelized Applications",
           "Figure 1 (Section 1/4.1); measured master/slave timeline");
    constexpr std::uint32_t ncpus = 4;

    MachineConfig config = MachineConfig::paperScaled(ncpus);
    PhysMem phys(config.physPages, config.numColors());
    PageColoringPolicy policy(config.numColors());
    VirtualMemory vm(config, phys, policy);
    MemorySystem mem(config, vm);
    MpSimulator sim(config, mem);

    Program prog = mixedProgram();
    std::vector<NestTimelineEntry> timeline;
    SimOptions opts;
    opts.warmupRounds = 0;
    opts.timeline = &timeline;
    sim.run(prog, opts);

    // Keep one measured occurrence of the steady phase: the last
    // four entries (the init nest precedes them).
    std::vector<NestTimelineEntry> phase(
        timeline.end() - 4, timeline.end());

    Cycles t0 = phase.front().start;
    Cycles t1 = phase.back().end;
    constexpr int width = 100;
    double span = static_cast<double>(t1 - t0);
    auto col = [&](Cycles t) {
        return std::min<int>(
            width - 1,
            static_cast<int>(static_cast<double>(t - t0) / span * width));
    };

    std::cout << "One steady-state iteration on " << ncpus
              << " CPUs (time left to right, " << fmtI(t1 - t0)
              << " cycles):\n"
              << "  '=' working   '.' spinning/idle   '|' barrier\n\n";
    for (CpuId c = 0; c < ncpus; c++) {
        std::string row(width, ' ');
        for (const NestTimelineEntry &e : phase) {
            int s = col(e.start);
            int done = col(e.cpuEnd[c]);
            int fin = col(e.end);
            bool works = e.kind == NestKind::Parallel || c == 0;
            for (int x = s; x <= fin && x < width; x++)
                row[x] = '.';
            if (works) {
                for (int x = s; x <= done && x < width; x++)
                    row[x] = '=';
            }
            if (e.kind == NestKind::Parallel && fin < width)
                row[fin] = '|';
        }
        std::cout << (c == 0 ? "master" : "slave ") << c << " |" << row
                  << "|\n";
    }

    std::cout << "\nNest spans:\n";
    TextTable table({"nest", "kind", "cycles", "share"});
    for (const NestTimelineEntry &e : phase) {
        const char *kind =
            e.kind == NestKind::Parallel
                ? "parallel"
                : e.kind == NestKind::Sequential ? "sequential"
                                                 : "suppressed";
        table.addRow({
            e.label,
            kind,
            fmtI(e.end - e.start),
            fmtF(100.0 * static_cast<double>(e.end - e.start) / span,
                 1) + "%",
        });
    }
    std::cout << table.render();
    std::cout << "\nThe master runs everything; slaves only join for "
                 "the parallel loops\nand spin elsewhere — Figure 1's "
                 "execution model, measured.\n";
    return 0;
}
