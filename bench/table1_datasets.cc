/**
 * @file
 * Table 1: reference data-set sizes of SPEC95fp.
 *
 * Prints the paper's sizes next to the scaled sizes our synthetic
 * stand-ins actually declare, confirming the 1/8 model scale holds
 * per benchmark.
 */

#include "bench/bench_util.h"
#include "ir/layout.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main()
{
    banner("Table 1 — Reference Data Set Sizes of SPEC95fp",
           "Table 1 (Section 3.1)");

    TextTable table({"benchmark", "paper (MB)", "model (scaled)",
                     "x8 (MB)", "arrays", "description"});
    for (const WorkloadInfo &w : allWorkloads()) {
        Program p = w.build();
        double scaled = static_cast<double>(p.dataSetBytes());
        table.addRow({
            w.name,
            w.paperDataSetMB == 1 ? "< 1" : std::to_string(w.paperDataSetMB),
            formatBytes(p.dataSetBytes()),
            fmtF(scaled * 8.0 / (1024.0 * 1024.0), 1),
            std::to_string(p.arrays.size()),
            w.description,
        });
    }
    std::cout << table.render();
    return 0;
}
