/**
 * @file
 * Figure 8: compiler-inserted prefetching combined with CDPC.
 *
 * The paper's findings to reproduce:
 *  - prefetching hides latency effectively for tomcatv, swim and
 *    hydro2d;
 *  - prefetching and CDPC are complementary — the paper's worked
 *    example: tomcatv at 4 CPUs gains ~29% from CDPC alone, ~24%
 *    from prefetching alone, but ~88% combined;
 *  - applu sees little prefetch benefit (tiling inhibits the
 *    software pipeline and large strides drop prefetches on TLB
 *    misses);
 *  - prefetching *degrades* su2cor at higher CPU counts.
 */

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

namespace
{

struct Mode
{
    const char *name;
    MappingPolicy pol;
    bool pf;
};

constexpr Mode kModes[] = {
    {"PC", MappingPolicy::PageColoring, false},
    {"PC+PF", MappingPolicy::PageColoring, true},
    {"CDPC", MappingPolicy::Cdpc, false},
    {"CDPC+PF", MappingPolicy::Cdpc, true},
};

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobs(argc, argv);
    banner("Figure 8 — CDPC Combined with Compiler-Inserted "
           "Prefetching",
           "Figure 8 (Section 6.2); 1MB-class direct-mapped cache");

    const char *apps[] = {"101.tomcatv", "102.swim", "103.su2cor",
                          "104.hydro2d", "110.applu"};

    std::vector<runner::JobSpec> specs;
    for (const char *app : apps) {
        for (std::uint32_t p : kSimCpuCounts) {
            for (const Mode &m : kModes) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::paperScaled(p);
                cfg.mapping = m.pol;
                cfg.prefetch = m.pf;
                addJob(specs, app, cfg);
            }
        }
    }
    std::vector<ExperimentResult> results = runBatch(specs, jobs);
    std::size_t next = 0;

    for (const char *app : apps) {
        std::cout << "--- " << app << " ---\n";
        TextTable table({"P", "config", "combined(M)", "speedup vs PC",
                         "pf issued(K)", "pf dropped%", "pf late(M)",
                         "MCPI"});
        for (std::uint32_t p : kSimCpuCounts) {
            double pc_base = 0.0;
            for (const Mode &m : kModes) {
                const ExperimentResult &r = results[next++];
                double combined = r.totals.combinedTime();
                if (std::string(m.name) == "PC")
                    pc_base = combined;
                double dropped =
                    r.totals.prefetchesIssued > 0
                        ? 100.0 * r.totals.prefetchesDropped /
                              r.totals.prefetchesIssued
                        : 0.0;
                table.addRow({
                    std::to_string(p),
                    m.name,
                    fmtF(combined / 1e6, 0),
                    fmtF(pc_base / combined, 2) + "x",
                    fmtF(r.totals.prefetchesIssued / 1e3, 0),
                    fmtF(dropped, 1) + "%",
                    fmtF(r.totals.prefetchLateStall / 1e6, 1),
                    fmtF(r.totals.mcpi(), 2),
                });
            }
            table.addSeparator();
        }
        std::cout << table.render() << "\n";
    }
    return 0;
}
