/**
 * @file
 * Figure 9: validation on the (modeled) AlphaServer 8400.
 *
 * The real-machine experiment of Section 7: each benchmark at 1-8
 * CPUs under four configurations — bin hopping without data
 * alignment, bin hopping, page coloring, and CDPC. On Digital UNIX
 * both page coloring and CDPC are realized through the native bin
 * hopping policy by touching pages in the desired order; we do the
 * same (CdpcTouchOrder), exercising the no-kernel-change
 * implementation path.
 *
 * Shapes to reproduce: neither static policy dominates; swim and
 * tomcatv are most policy-sensitive, with bin hopping beating page
 * coloring but CDPC beating both (paper: swim 1.4x/2.6x and tomcatv
 * 1.3x/2.2x over BH/PC at 8 CPUs); su2cor/wave5/apsi/fpppp show
 * little variance.
 */

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main()
{
    banner("Figure 9 — AlphaServer 8400 Validation",
           "Figure 9 (Section 7); 4MB-class DM cache, touch-order "
           "CDPC on bin hopping");

    for (const WorkloadInfo &w : allWorkloads()) {
        std::cout << "--- " << w.name << " ---\n";
        TextTable table({"P", "BH-unaligned", "bin-hopping",
                         "page-coloring", "CDPC", "CDPC/BH",
                         "CDPC/PC"});
        for (std::uint32_t p : kAlphaCpuCounts) {
            struct Mode
            {
                MappingPolicy pol;
                bool aligned;
            };
            const Mode modes[] = {
                {MappingPolicy::BinHopping, false},
                {MappingPolicy::BinHopping, true},
                {MappingPolicy::PageColoring, true},
                {MappingPolicy::CdpcTouchOrder, true},
            };
            double combined[4];
            for (int i = 0; i < 4; i++) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::alphaScaled(p);
                cfg.mapping = modes[i].pol;
                cfg.aligned = modes[i].aligned;
                ExperimentResult r = runWorkload(w.name, cfg);
                combined[i] = r.totals.combinedTime();
            }
            table.addRow({
                std::to_string(p),
                fmtF(combined[0] / 1e6, 0),
                fmtF(combined[1] / 1e6, 0),
                fmtF(combined[2] / 1e6, 0),
                fmtF(combined[3] / 1e6, 0),
                fmtF(combined[1] / combined[3], 2) + "x",
                fmtF(combined[2] / combined[3], 2) + "x",
            });
        }
        std::cout << table.render() << "\n";
    }
    return 0;
}
