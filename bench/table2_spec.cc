/**
 * @file
 * Table 2: execution time and SPEC95fp rating on the (modeled)
 * AlphaServer with bin hopping, page coloring and CDPC.
 *
 * Per-benchmark SPEC ratios at 1, 4 and 8 CPUs for the three
 * policies, anchored so the uniprocessor bin-hopping rating is the
 * paper's 13.7 (see harness/spec.h). The paper's headline numbers
 * to reproduce in *shape*: CDPC improves the 8-CPU rating by ~8%
 * over bin hopping and ~20% over page coloring, and the rating
 * improves ~2.9x at 4 CPUs and ~4.2x at 8 CPUs over one processor.
 */

#include <map>

#include "bench/bench_util.h"

using namespace cdpc;
using namespace cdpc::bench;

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobs(argc, argv);
    banner("Table 2 — SPEC95fp Ratings on the AlphaServer Model",
           "Table 2 (Section 7)");

    const MappingPolicy policies[] = {MappingPolicy::BinHopping,
                                      MappingPolicy::PageColoring,
                                      MappingPolicy::CdpcTouchOrder};
    const char *pol_names[] = {"bin-hopping", "page-coloring", "CDPC"};
    const std::uint32_t cpu_counts[] = {1, 4, 8};

    // The full cross product is one embarrassingly parallel batch;
    // results come back in submission order, so the (workload, cpus,
    // policy) loop below replays against the same indices.
    std::vector<runner::JobSpec> specs;
    for (const WorkloadInfo &w : allWorkloads()) {
        for (std::uint32_t p : cpu_counts) {
            for (int i = 0; i < 3; i++) {
                ExperimentConfig cfg;
                cfg.machine = MachineConfig::alphaScaled(p);
                cfg.mapping = policies[i];
                specs.push_back(runner::makeJob(w.name, cfg));
            }
        }
    }
    std::vector<ExperimentResult> results = runBatch(specs, jobs);

    // wall[policy][ncpus][workload]
    std::map<std::string, std::map<std::uint32_t,
                                   std::map<std::string, double>>> wall;
    std::size_t next = 0;
    for (const WorkloadInfo &w : allWorkloads()) {
        for (std::uint32_t p : cpu_counts) {
            for (int i = 0; i < 3; i++) {
                wall[pol_names[i]][p][w.name] =
                    results[next++].totals.wall;
            }
        }
    }

    for (std::uint32_t p : cpu_counts) {
        std::cout << "--- " << p << " CPU" << (p > 1 ? "s" : "")
                  << " ---\n";
        TextTable table({"benchmark", "bin-hopping", "page-coloring",
                         "CDPC", "best-static", "CDPC>=best?"});
        std::map<std::string, std::vector<double>> ratios;
        for (const WorkloadInfo &w : allWorkloads()) {
            double base = wall["bin-hopping"][1][w.name];
            double r_bh = specRatio(base, wall["bin-hopping"][p][w.name]);
            double r_pc =
                specRatio(base, wall["page-coloring"][p][w.name]);
            double r_cd = specRatio(base, wall["CDPC"][p][w.name]);
            ratios["bin-hopping"].push_back(r_bh);
            ratios["page-coloring"].push_back(r_pc);
            ratios["CDPC"].push_back(r_cd);
            double best_static = std::max(r_bh, r_pc);
            table.addRow({
                w.name,
                fmtF(r_bh, 1),
                fmtF(r_pc, 1),
                fmtF(r_cd, 1),
                fmtF(best_static, 1),
                r_cd >= 0.97 * best_static ? "yes" : "NO",
            });
        }
        table.addSeparator();
        double g_bh = specRating(ratios["bin-hopping"]);
        double g_pc = specRating(ratios["page-coloring"]);
        double g_cd = specRating(ratios["CDPC"]);
        table.addRow({"SPEC95fp (geo mean)", fmtF(g_bh, 1),
                      fmtF(g_pc, 1), fmtF(g_cd, 1), "", ""});
        std::cout << table.render();
        if (p == 8) {
            std::cout << "CDPC vs bin hopping: +"
                      << fmtF(100.0 * (g_cd / g_bh - 1.0), 1)
                      << "% (paper: +8%)\n"
                      << "CDPC vs page coloring: +"
                      << fmtF(100.0 * (g_cd / g_pc - 1.0), 1)
                      << "% (paper: +20%)\n";
        }
        std::cout << "\n";
    }
    return 0;
}
