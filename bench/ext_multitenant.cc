/**
 * @file
 * Extension: multi-tenant isolation sweep (DESIGN.md §12).
 *
 * The paper studies one parallel program owning the whole machine;
 * its motivation — physically indexed external caches shared by
 * everything the OS schedules — is inherently multi-programmed.
 * This sweep co-schedules 1/2/4/8 tenants (distinct SPEC95fp
 * workloads, 2 vcpus each) over 4 physical CPUs and crosses the
 * ColorBroker's budget policies with the two vcpu placement
 * strategies:
 *
 *   budget  hard          disjoint 256/N-color leases, enforced
 *           proportional  weight-partitioned leases (weights 1..N)
 *           best-effort   overlapping 1.5x fair-share requests,
 *                         never enforced
 *   sched   rr            round-robin vcpu placement (naive)
 *           locality      greedy placement minimizing predicted
 *                         cross-tenant color overlap
 *
 * Emits BENCH_ext_multitenant.json — a flat object of "mt."-prefixed
 * per-cell isolation metrics (miss-rate variance, worst p99 slowdown
 * vs running alone, cross-tenant evictions) that bench_diff compares
 * lower-is-better — and fails unless locality-aware placement beats
 * round-robin on cross-tenant evictions in at least one cell.
 */

#include <fstream>
#include <sstream>

#include "bench/bench_util.h"
#include "tenant/scenario.h"
#include "tenant/spec.h"

using namespace cdpc;
using namespace cdpc::bench;

namespace
{

constexpr std::uint32_t kCpus = 4;
constexpr std::uint32_t kVcpus = 2;

const std::vector<std::uint32_t> kTenantCounts = {1, 2, 4, 8};
const std::vector<tenant::BudgetPolicy> kBudgets = {
    tenant::BudgetPolicy::Hard, tenant::BudgetPolicy::Proportional,
    tenant::BudgetPolicy::BestEffort};
const std::vector<tenant::SchedulerKind> kSchedulers = {
    tenant::SchedulerKind::RoundRobin,
    tenant::SchedulerKind::LocalityAware};

/** Distinct workloads make the pairwise color overlaps, and hence
 *  the placement decisions, heterogeneous. */
const char *kRoster[] = {"tomcatv", "swim",   "mgrid",  "hydro2d",
                         "applu",   "su2cor", "turb3d", "wave5"};

/** Short cell tags for the flat JSON keys ("mt.t4.be.la.missvar"). */
const char *
budgetTag(tenant::BudgetPolicy b)
{
    switch (b) {
      case tenant::BudgetPolicy::Hard:
        return "hard";
      case tenant::BudgetPolicy::Proportional:
        return "prop";
      default:
        return "be";
    }
}

const char *
schedTag(tenant::SchedulerKind k)
{
    return k == tenant::SchedulerKind::RoundRobin ? "rr" : "la";
}

/**
 * Build one cell's scenario through the spec parser (the same path
 * `cdpcsim tenants` takes). Hard/proportional tenants request their
 * 256/N fair share — the broker carves disjoint leases, so isolation
 * should hold. Best-effort tenants request 1.5x their share: the
 * wraparound carve makes neighboring leases overlap by different
 * amounts, which is exactly the structure locality-aware placement
 * can exploit and round-robin cannot see.
 */
tenant::ScenarioSpec
makeCell(std::uint32_t tenants, tenant::BudgetPolicy budget,
         tenant::SchedulerKind sched)
{
    const std::uint64_t machineColors = 256;
    std::uint64_t fair = machineColors / tenants;
    std::uint64_t request =
        budget == tenant::BudgetPolicy::BestEffort
            ? std::min<std::uint64_t>(machineColors, fair * 3 / 2)
            : fair;

    std::ostringstream spec;
    spec << "scenario cpus=" << kCpus << " machine=scaled scheduler="
         << schedTag(sched) << " budget=" << budgetPolicyName(budget)
         << " seed=1\n";
    for (std::uint32_t i = 0; i < tenants; i++) {
        spec << "tenant " << kRoster[i] << " workload=" << kRoster[i]
             << " vcpus=" << kVcpus << " colors=" << request
             << " weight=" << (i + 1) << " policy=cdpc\n";
    }
    std::istringstream in(spec.str());
    std::ostringstream name;
    name << "t" << tenants << "." << budgetTag(budget) << "."
         << schedTag(sched);
    tenant::ScenarioSpec parsed = tenant::parseScenario(in, name.str());
    parsed.name = name.str();
    return parsed;
}

/** Worst per-tenant p99 slowdown in the cell. */
double
worstP99(const tenant::ScenarioResult &res)
{
    double worst = 0;
    for (const tenant::TenantResult &t : res.tenants)
        worst = std::max(worst, t.p99Slowdown);
    return worst;
}

} // namespace

int
main(int argc, char **argv)
{
    unsigned jobs = parseJobs(argc, argv);
    banner("Extension: multi-tenant isolation sweep",
           "beyond the paper -- per-process color budgets and "
           "locality-aware co-scheduling (DESIGN.md §12)");

    tenant::AloneCache cache;
    std::vector<tenant::ScenarioResult> cells;
    for (std::uint32_t n : kTenantCounts) {
        for (tenant::BudgetPolicy b : kBudgets) {
            for (tenant::SchedulerKind s : kSchedulers) {
                tenant::ScenarioSpec spec = makeCell(n, b, s);
                tenant::ScenarioOptions opts;
                opts.jobs = jobs;
                opts.aloneCache = &cache;
                std::cerr << "  cell " << spec.name << " (" << n
                          << " tenant(s))...\n";
                cells.push_back(runScenario(spec, opts));
            }
        }
    }

    std::ofstream json("BENCH_ext_multitenant.json");
    fatalIf(!json, "cannot open BENCH_ext_multitenant.json");
    json << "{\n  \"bench\": \"ext_multitenant\"";

    TextTable t({"tenants", "budget", "sched", "rounds",
                 "cross-evict", "miss-var", "max slowdown",
                 "worst p99", "overflows"});
    std::size_t i = 0;
    std::size_t localityWins = 0, comparablePairs = 0;
    for (std::uint32_t n : kTenantCounts) {
        for (tenant::BudgetPolicy b : kBudgets) {
            const tenant::ScenarioResult &rr = cells[i];
            const tenant::ScenarioResult &la = cells[i + 1];
            for (std::size_t s = 0; s < 2; s++) {
                const tenant::ScenarioResult &res = cells[i + s];
                std::uint64_t overflows = 0;
                for (const tenant::TenantResult &tr : res.tenants)
                    overflows += tr.budgetOverflows;
                t.addRow({std::to_string(n), budgetTag(b),
                          schedTag(kSchedulers[s]),
                          std::to_string(res.rounds),
                          fmtI(res.totalCrossEvictions),
                          fmtF(res.missRateVariance * 1e4, 3) + "e-4",
                          fmtF(res.maxSlowdown, 3) + "x",
                          fmtF(worstP99(res), 3) + "x",
                          fmtI(overflows)});

                std::string key = "mt." + res.name;
                json << ",\n  \"" << key << ".missvar\": "
                     << res.missRateVariance
                     << ",\n  \"" << key << ".p99slowdown\": "
                     << worstP99(res)
                     << ",\n  \"" << key << ".crossevict\": "
                     << res.totalCrossEvictions
                     << ",\n  \"" << key << ".maxslowdown\": "
                     << res.maxSlowdown
                     << ",\n  \"" << key << ".rounds\": "
                     << res.rounds;
            }
            // The headline comparison: same tenants, same budgets,
            // only the placement differs.
            comparablePairs++;
            if (la.totalCrossEvictions < rr.totalCrossEvictions)
                localityWins++;
            i += 2;
        }
        t.addSeparator();
    }
    json << "\n}\n";
    json.close();
    fatalIf(!json, "write to BENCH_ext_multitenant.json failed");

    std::cout << t.render() << "\nWrote BENCH_ext_multitenant.json ("
              << cells.size() << " cells)\n"
              << "locality-aware beat round-robin on cross-tenant "
                 "evictions in " << localityWins << "/"
              << comparablePairs << " cells\n"
              << "Reading: hard/proportional rows show disjoint "
                 "leases isolating tenants (near-zero cross-tenant\n"
              << "evictions at any co-residency); best-effort rows "
                 "show overlapping leases leaking, and locality-\n"
              << "aware placement recovering isolation that "
                 "round-robin placement gives away.\n";
    fatalIf(localityWins == 0,
            "locality-aware placement never beat round-robin on "
            "cross-tenant evictions — placement model regressed");
    return 0;
}
