/**
 * @file
 * Shared helpers for the figure/table regeneration binaries.
 *
 * Each bench binary reproduces one table or figure of the paper
 * (see DESIGN.md's per-experiment index): it runs the relevant
 * workload x machine x policy cross product and prints the same
 * rows/series the paper reports, with textual bars standing in for
 * the graphical figures.
 */

#ifndef CDPC_BENCH_BENCH_UTIL_H
#define CDPC_BENCH_BENCH_UTIL_H

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/spec.h"
#include "runner/runner.h"
#include "workloads/workload.h"

namespace cdpc::bench
{

/** The CPU counts the paper's simulation figures sweep. */
inline const std::vector<std::uint32_t> kSimCpuCounts = {1, 2, 4, 8, 16};

/** The CPU counts of the AlphaServer validation (Section 7). */
inline const std::vector<std::uint32_t> kAlphaCpuCounts = {1, 2, 4, 8};

/** Standard header printed by every bench binary. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "=== " << what << " ===\n"
              << "Reproduces: " << paper_ref << "\n"
              << "Model: 1/8-scale (cache 1MB->128KB, page 4KB->512B, "
                 "line 128B->64B, data sets /8); see DESIGN.md.\n\n";
}

/** Normalized stall breakdown columns used by several figures. */
inline std::vector<std::string>
mcpiColumns(const WeightedTotals &t)
{
    auto pct = [&](double v) {
        return t.memStall > 0 ? fmtF(100.0 * v / t.memStall, 1) + "%"
                              : std::string("-");
    };
    return {
        fmtF(t.mcpi(), 2),
        pct(t.l2HitStall),
        pct(t.missStallOf(MissKind::Cold) +
            t.missStallOf(MissKind::Capacity)),
        pct(t.missStallOf(MissKind::Conflict)),
        pct(t.communicationStall()),
    };
}

/** The header matching mcpiColumns(). */
inline std::vector<std::string>
mcpiHeader()
{
    return {"MCPI", "on-chip", "cold+cap", "conflict", "comm"};
}

/**
 * Parse the shared bench command line: `--jobs N` (0 or absent
 * means hardware_concurrency). Unknown flags abort with a usage
 * message so each figure binary stays a plain `main`.
 */
inline unsigned
parseJobs(int argc, char **argv)
{
    unsigned jobs = 0;
    for (int i = 1; i < argc; i++) {
        std::string a = argv[i];
        if (a == "--jobs" && i + 1 < argc) {
            jobs = static_cast<unsigned>(std::atoi(argv[++i]));
        } else if (a == "--help" || a == "-h") {
            std::cerr << "usage: " << argv[0] << " [--jobs N]\n";
            std::exit(0);
        } else {
            std::cerr << argv[0] << ": unknown option " << a
                      << " (usage: [--jobs N])\n";
            std::exit(2);
        }
    }
    return jobs;
}

/**
 * Run the experiment cross product behind a figure/table through
 * the work-stealing batch engine and hand the results back in
 * submission order. Any job failure is fatal — a figure with holes
 * is worse than no figure. Progress goes to stderr, rate-limited,
 * so redirecting stdout still captures clean tables.
 */
inline std::vector<ExperimentResult>
runBatch(std::vector<runner::JobSpec> specs, unsigned jobs)
{
    runner::BatchOptions options;
    options.jobs = jobs;
    options.progress = true;
    return runner::runBatchOrThrow(std::move(specs), options);
}

/** Shorthand: queue one workload/config pair onto a spec list. */
inline void
addJob(std::vector<runner::JobSpec> &specs, const std::string &workload,
       ExperimentConfig cfg)
{
    specs.push_back(runner::makeJob(workload, std::move(cfg)));
}

} // namespace cdpc::bench

#endif // CDPC_BENCH_BENCH_UTIL_H
