/**
 * @file
 * Shared helpers for the figure/table regeneration binaries.
 *
 * Each bench binary reproduces one table or figure of the paper
 * (see DESIGN.md's per-experiment index): it runs the relevant
 * workload x machine x policy cross product and prints the same
 * rows/series the paper reports, with textual bars standing in for
 * the graphical figures.
 */

#ifndef CDPC_BENCH_BENCH_UTIL_H
#define CDPC_BENCH_BENCH_UTIL_H

#include <iostream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stats.h"
#include "common/table.h"
#include "harness/experiment.h"
#include "harness/spec.h"
#include "workloads/workload.h"

namespace cdpc::bench
{

/** The CPU counts the paper's simulation figures sweep. */
inline const std::vector<std::uint32_t> kSimCpuCounts = {1, 2, 4, 8, 16};

/** The CPU counts of the AlphaServer validation (Section 7). */
inline const std::vector<std::uint32_t> kAlphaCpuCounts = {1, 2, 4, 8};

/** Standard header printed by every bench binary. */
inline void
banner(const std::string &what, const std::string &paper_ref)
{
    std::cout << "=== " << what << " ===\n"
              << "Reproduces: " << paper_ref << "\n"
              << "Model: 1/8-scale (cache 1MB->128KB, page 4KB->512B, "
                 "line 128B->64B, data sets /8); see DESIGN.md.\n\n";
}

/** Normalized stall breakdown columns used by several figures. */
inline std::vector<std::string>
mcpiColumns(const WeightedTotals &t)
{
    auto pct = [&](double v) {
        return t.memStall > 0 ? fmtF(100.0 * v / t.memStall, 1) + "%"
                              : std::string("-");
    };
    return {
        fmtF(t.mcpi(), 2),
        pct(t.l2HitStall),
        pct(t.missStallOf(MissKind::Cold) +
            t.missStallOf(MissKind::Capacity)),
        pct(t.missStallOf(MissKind::Conflict)),
        pct(t.communicationStall()),
    };
}

/** The header matching mcpiColumns(). */
inline std::vector<std::string>
mcpiHeader()
{
    return {"MCPI", "on-chip", "cold+cap", "conflict", "comm"};
}

} // namespace cdpc::bench

#endif // CDPC_BENCH_BENCH_UTIL_H
