/**
 * @file
 * Deterministic pseudo-random number generator (xorshift64*).
 *
 * The simulator must be reproducible run-to-run, so all stochastic
 * behaviour (the bin-hopping fault race, randomized test sweeps)
 * draws from explicitly seeded Rng instances — never from global
 * state or std::random_device.
 */

#ifndef CDPC_COMMON_RANDOM_H
#define CDPC_COMMON_RANDOM_H

#include <cstdint>

namespace cdpc
{

/** Small, fast, seedable xorshift64* generator. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
        : state(seed ? seed : 1)
    {}

    /** @return the next raw 64-bit value. */
    std::uint64_t
    next()
    {
        std::uint64_t x = state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        state = x;
        return x * 0x2545f4914f6cdd1dULL;
    }

    /** @return a value uniform in [0, bound); @p bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        return next() % bound;
    }

    /** @return a double uniform in [0, 1). */
    double
    real()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

  private:
    std::uint64_t state;
};

} // namespace cdpc

#endif // CDPC_COMMON_RANDOM_H
