/**
 * @file
 * Fundamental scalar types shared by every module in the CDPC
 * reproduction: addresses, cycle counts, page/color/processor ids.
 *
 * All address arithmetic in the simulator is done on 64-bit unsigned
 * integers. Virtual and physical addresses are distinct typedefs for
 * documentation purposes only; the VM layer is the single place where
 * one is converted into the other.
 */

#ifndef CDPC_COMMON_TYPES_H
#define CDPC_COMMON_TYPES_H

#include <cstdint>

namespace cdpc
{

/** Generic 64-bit address. */
using Addr = std::uint64_t;

/** A virtual address within an application's address space. */
using VAddr = Addr;

/** A physical address chosen by the physical memory manager. */
using PAddr = Addr;

/** A virtual or physical page number (address / page size). */
using PageNum = std::uint64_t;

/**
 * A cache color: the index of the cache bin a page maps to.
 * Two physical pages conflict in a physically indexed cache only if
 * they have the same color (paper, Section 2.1).
 */
using Color = std::uint32_t;

/** Processor identifier, 0-based. */
using CpuId = std::uint32_t;

/** Simulated processor cycles. */
using Cycles = std::uint64_t;

/** Simulated instruction counts. */
using Insts = std::uint64_t;

/** Sentinel meaning "no color preference". */
inline constexpr Color kNoColor = ~Color{0};

/** Sentinel meaning "no/invalid CPU". */
inline constexpr CpuId kNoCpu = ~CpuId{0};

} // namespace cdpc

#endif // CDPC_COMMON_TYPES_H
