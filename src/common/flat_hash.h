/**
 * @file
 * FlatHashMap: a small open-addressing hash table over 64-bit keys.
 *
 * The per-reference simulation fast path (mem/memsystem.cc) cannot
 * afford std::unordered_map's node allocation and pointer chasing on
 * every access, so the hot per-port indexes (L1 residence, in-flight
 * prefetches, the LruShadow tag index) live in this flat table
 * instead: one contiguous slot array, linear probing, backward-shift
 * deletion (no tombstones), and amortized doubling at 70% load.
 *
 * Iteration order is unspecified (as with unordered_map); callers on
 * the simulation path must only perform order-independent folds
 * (min/erase-if) so results stay bit-identical across layouts.
 */

#ifndef CDPC_COMMON_FLAT_HASH_H
#define CDPC_COMMON_FLAT_HASH_H

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace cdpc
{

/** Open-addressing map from std::uint64_t keys to V values. */
template <typename V>
class FlatHashMap
{
  public:
    explicit FlatHashMap(std::size_t expected = 16)
    {
        rehash(slotCountFor(expected));
    }

    /** @return pointer to the value for @p key, or nullptr. */
    V *
    find(std::uint64_t key)
    {
        std::size_t i = probe(key);
        return i == kNotFound ? nullptr : &slots[i].value;
    }

    const V *
    find(std::uint64_t key) const
    {
        std::size_t i = probe(key);
        return i == kNotFound ? nullptr : &slots[i].value;
    }

    bool contains(std::uint64_t key) const
    {
        return probe(key) != kNotFound;
    }

    /** Insert or overwrite; @return reference to the stored value. */
    V &
    insertOrAssign(std::uint64_t key, V value)
    {
        V &v = (*this)[key];
        v = std::move(value);
        return v;
    }

    /** unordered_map-style access: default-constructs missing keys. */
    V &
    operator[](std::uint64_t key)
    {
        if ((count + 1) * 10 >= slots.size() * 7)
            rehash(slots.size() * 2);
        std::size_t i = home(key);
        while (used[i]) {
            if (slots[i].key == key)
                return slots[i].value;
            i = (i + 1) & mask;
        }
        used[i] = true;
        slots[i].key = key;
        slots[i].value = V{};
        count++;
        return slots[i].value;
    }

    /** Remove @p key; @return true when it was present. */
    bool
    erase(std::uint64_t key)
    {
        std::size_t i = probe(key);
        if (i == kNotFound)
            return false;
        eraseSlot(i);
        return true;
    }

    std::size_t size() const { return count; }
    bool empty() const { return count == 0; }

    void
    clear()
    {
        std::fill(used.begin(), used.end(), false);
        count = 0;
    }

    /** Grow so @p expected entries fit without rehashing. */
    void
    reserve(std::size_t expected)
    {
        std::size_t want = slotCountFor(expected);
        if (want > slots.size())
            rehash(want);
    }

    /** Visit every entry; fn(key, value&). Order is unspecified. */
    template <typename F>
    void
    forEach(F &&fn)
    {
        for (std::size_t i = 0; i < slots.size(); i++) {
            if (used[i])
                fn(slots[i].key, slots[i].value);
        }
    }

    template <typename F>
    void
    forEach(F &&fn) const
    {
        for (std::size_t i = 0; i < slots.size(); i++) {
            if (used[i])
                fn(slots[i].key, slots[i].value);
        }
    }

    /** Erase every entry for which pred(key, value) holds. */
    template <typename P>
    void
    eraseIf(P &&pred)
    {
        // Backward-shift deletion moves later slots into the hole, so
        // restart the scan at the hole to not skip a shifted entry.
        for (std::size_t i = 0; i < slots.size();) {
            if (used[i] && pred(slots[i].key, slots[i].value))
                eraseSlot(i);
            else
                i++;
        }
    }

  private:
    struct Slot
    {
        std::uint64_t key = 0;
        V value{};
    };

    static constexpr std::size_t kNotFound = ~std::size_t{0};

    static std::size_t
    slotCountFor(std::size_t expected)
    {
        std::size_t n = 16;
        // Keep load factor at/below 70% for the expected entry count.
        while (n * 7 < (expected + 1) * 10)
            n *= 2;
        return n;
    }

    std::size_t
    home(std::uint64_t key) const
    {
        // Fibonacci hashing: one multiply, good avalanche on the high
        // bits, which the mask then selects via the shift.
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ULL) >> 32) &
               mask;
    }

    std::size_t
    probe(std::uint64_t key) const
    {
        std::size_t i = home(key);
        while (used[i]) {
            if (slots[i].key == key)
                return i;
            i = (i + 1) & mask;
        }
        return kNotFound;
    }

    void
    eraseSlot(std::size_t hole)
    {
        std::size_t j = hole;
        while (true) {
            j = (j + 1) & mask;
            if (!used[j])
                break;
            std::size_t h = home(slots[j].key);
            // Slot j may fill the hole iff its home position lies at
            // or cyclically before the hole.
            if (((j - h) & mask) >= ((j - hole) & mask)) {
                slots[hole] = std::move(slots[j]);
                hole = j;
            }
        }
        used[hole] = false;
        count--;
    }

    void
    rehash(std::size_t new_slots)
    {
        std::vector<Slot> old = std::move(slots);
        std::vector<char> old_used = std::move(used);
        slots.assign(new_slots, Slot{});
        used.assign(new_slots, false);
        mask = new_slots - 1;
        count = 0;
        for (std::size_t i = 0; i < old.size(); i++) {
            if (old_used[i])
                (*this)[old[i].key] = std::move(old[i].value);
        }
    }

    std::vector<Slot> slots;
    std::vector<char> used;
    std::size_t mask = 0;
    std::size_t count = 0;
};

/**
 * Open-addressing set of std::uint64_t keys. Insert-only plus clear —
 * exactly the shape of ColdTracker's seen-line set — so deletion
 * machinery is omitted.
 */
class FlatHashSet
{
  public:
    explicit FlatHashSet(std::size_t expected = 16)
    {
        rehash(slotCountFor(expected));
    }

    /** @return true when @p key was newly inserted. */
    bool
    insert(std::uint64_t key)
    {
        if ((count + 1) * 10 >= keys.size() * 7)
            rehash(keys.size() * 2);
        std::size_t i = home(key);
        while (used[i]) {
            if (keys[i] == key)
                return false;
            i = (i + 1) & mask;
        }
        used[i] = true;
        keys[i] = key;
        count++;
        return true;
    }

    bool
    contains(std::uint64_t key) const
    {
        std::size_t i = home(key);
        while (used[i]) {
            if (keys[i] == key)
                return true;
            i = (i + 1) & mask;
        }
        return false;
    }

    std::size_t size() const { return count; }

    void
    clear()
    {
        std::fill(used.begin(), used.end(), false);
        count = 0;
    }

  private:
    static std::size_t
    slotCountFor(std::size_t expected)
    {
        std::size_t n = 16;
        while (n * 7 < (expected + 1) * 10)
            n *= 2;
        return n;
    }

    std::size_t
    home(std::uint64_t key) const
    {
        return static_cast<std::size_t>(
                   (key * 0x9e3779b97f4a7c15ULL) >> 32) &
               mask;
    }

    void
    rehash(std::size_t new_slots)
    {
        std::vector<std::uint64_t> old_keys = std::move(keys);
        std::vector<char> old_used = std::move(used);
        keys.assign(new_slots, 0);
        used.assign(new_slots, false);
        mask = new_slots - 1;
        count = 0;
        for (std::size_t i = 0; i < old_keys.size(); i++) {
            if (old_used[i])
                insert(old_keys[i]);
        }
    }

    std::vector<std::uint64_t> keys;
    std::vector<char> used;
    std::size_t mask = 0;
    std::size_t count = 0;
};

} // namespace cdpc

#endif // CDPC_COMMON_FLAT_HASH_H
