/**
 * @file
 * Cooperative cancellation and graceful signal drain.
 *
 * A CancelToken is a process-visible flag that long-running loops
 * poll: setting it never interrupts anything by force, it only asks
 * politely. The signals::installDrainHandlers() layer converts the
 * first SIGINT/SIGTERM into exactly that — the batch engine stops
 * dequeuing new jobs, lets in-flight jobs finish under the existing
 * watchdog, flushes the journal, and exits with the documented
 * "interrupted, resumable" exit code (4). A *second* signal restores
 * the default disposition first, so an impatient operator's repeat
 * Ctrl-C still kills the process immediately.
 *
 * Everything the handler touches is a lock-free atomic store, keeping
 * the handler async-signal-safe.
 */

#ifndef CDPC_COMMON_SIGNALS_H
#define CDPC_COMMON_SIGNALS_H

#include <atomic>

namespace cdpc
{

/** A cooperative cancellation flag shared between threads. */
class CancelToken
{
  public:
    /** Request cancellation (idempotent, async-signal-safe). */
    void cancel() { flag_.store(true, std::memory_order_relaxed); }

    /** @return whether cancellation has been requested. */
    bool cancelled() const
    {
        return flag_.load(std::memory_order_relaxed);
    }

    /** Clear the flag (tests and handler re-installation only). */
    void reset() { flag_.store(false, std::memory_order_relaxed); }

  private:
    std::atomic<bool> flag_{false};
};

namespace signals
{

/**
 * Route the first SIGINT/SIGTERM into drainToken().cancel() and
 * restore the default disposition so a second signal terminates
 * immediately. Safe to call more than once (also clears any stale
 * token/signal state from a previous installation).
 */
void installDrainHandlers();

/** Restore SIG_DFL for SIGINT/SIGTERM and clear the drain state. */
void resetDrainHandlers();

/** The process-wide token the drain handlers fire. */
CancelToken &drainToken();

/** The signal number that triggered the drain, or 0. */
int drainSignal();

/** "SIGINT" | "SIGTERM" | "none". */
const char *drainSignalName();

} // namespace signals

} // namespace cdpc

#endif // CDPC_COMMON_SIGNALS_H
