/**
 * @file
 * Lightweight statistics primitives: scalar counters, running
 * distributions and fixed-bucket histograms. These are the building
 * blocks for the memory-system and execution statistics that the
 * benchmark harness turns into the paper's tables and figures.
 */

#ifndef CDPC_COMMON_STATS_H
#define CDPC_COMMON_STATS_H

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace cdpc
{

/** A running distribution: count, mean, stddev, min, max. */
class Distribution
{
  public:
    /** Record one sample. */
    void
    sample(double v)
    {
        count_++;
        sum_ += v;
        sumSq_ += v * v;
        if (count_ == 1 || v < min_)
            min_ = v;
        if (count_ == 1 || v > max_)
            max_ = v;
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }

    double
    mean() const
    {
        return count_ ? sum_ / static_cast<double>(count_) : 0.0;
    }

    /** Population standard deviation. */
    double
    stddev() const
    {
        if (count_ < 2)
            return 0.0;
        double m = mean();
        double var = sumSq_ / static_cast<double>(count_) - m * m;
        return var > 0.0 ? std::sqrt(var) : 0.0;
    }

    void
    reset()
    {
        *this = Distribution{};
    }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double sumSq_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width bucket histogram over [0, buckets * bucketWidth).
 * Samples beyond the last bucket are clamped into it.
 */
class Histogram
{
  public:
    Histogram(std::size_t buckets, double bucket_width)
        : width(bucket_width), counts(buckets, 0)
    {
        fatalIf(buckets == 0, "Histogram needs at least one bucket");
        fatalIf(bucket_width <= 0.0, "Histogram bucket width must be > 0");
    }

    void
    sample(double v)
    {
        if (v < 0.0)
            v = 0.0;
        auto idx = static_cast<std::size_t>(v / width);
        if (idx >= counts.size())
            idx = counts.size() - 1;
        counts[idx]++;
        total_++;
    }

    std::uint64_t bucketCount(std::size_t i) const { return counts.at(i); }
    std::size_t buckets() const { return counts.size(); }
    double bucketWidth() const { return width; }
    std::uint64_t total() const { return total_; }

  private:
    double width;
    std::vector<std::uint64_t> counts;
    std::uint64_t total_ = 0;
};

/**
 * @return num / den, or @p fallback when the denominator is zero or
 * the quotient is not finite. Every derived metric that can see a
 * zero-reference run (empty workload phase, quarantined job partial
 * results) must divide through here so NaN/Inf never reaches a
 * report or a JSONL sink.
 */
inline double
safeDiv(double num, double den, double fallback = 0.0)
{
    if (den == 0.0)
        return fallback;
    double q = num / den;
    return std::isfinite(q) ? q : fallback;
}

/** @return the geometric mean of @p values (all must be > 0). */
double geometricMean(const std::vector<double> &values);

/** Format a byte count as "14.0MB" / "512KB" / "32B". */
std::string formatBytes(std::uint64_t bytes);

/** Format a ratio as a fixed-precision percentage, e.g. "42.3%". */
std::string formatPercent(double fraction, int precision = 1);

} // namespace cdpc

#endif // CDPC_COMMON_STATS_H
