#include "common/faultpoint.h"

#include <chrono>
#include <mutex>
#include <thread>

namespace cdpc
{

namespace
{

/** An installed trigger plus its mutable firing state. */
struct ArmedTrigger
{
    FaultTrigger spec;
    std::uint32_t hits = 0;
    std::uint32_t fired = 0;
};

std::mutex gMutex;
std::vector<ArmedTrigger> gTriggers;

std::atomic<faultpoints::FireObserver> gFireObserver{nullptr};

thread_local const std::atomic<bool> *tCancelFlag = nullptr;

/** @return true when @p trigger applies to a hit on @p site. */
bool
matches(const std::string &trigger, const std::string &site)
{
    if (trigger == site)
        return true;
    // A bare trigger matches every "#"-qualified instance of it.
    auto hash = site.find('#');
    return hash != std::string::npos &&
           site.compare(0, hash, trigger) == 0;
}

[[noreturn]] void
throwFor(FaultAction action, const std::string &site)
{
    std::string msg = "injected fault at " + site;
    switch (action) {
      case FaultAction::Fail:
        throw FaultInjectedError(msg);
      case FaultAction::Fatal:
        throw FatalError("fatal: " + msg);
      case FaultAction::Panic:
        throw PanicError("panic: " + msg);
      case FaultAction::Hang:
        break; // handled by the caller
    }
    throw PanicError("panic: unreachable fault action");
}

void
hang(std::uint32_t ms, const std::string &site)
{
    using Clock = std::chrono::steady_clock;
    auto deadline = Clock::now() + std::chrono::milliseconds(ms);
    while (Clock::now() < deadline) {
        if (tCancelFlag &&
            tCancelFlag->load(std::memory_order_relaxed)) {
            throw TransientError("hang at " + site +
                                 " cancelled by watchdog");
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
}

} // namespace

namespace faultpoints
{

std::atomic<bool> enabled{false};

void
install(const FaultPlan &plan)
{
    std::lock_guard<std::mutex> lock(gMutex);
    gTriggers.clear();
    for (const FaultTrigger &t : plan.triggers())
        gTriggers.push_back({t});
    enabled.store(!gTriggers.empty(), std::memory_order_relaxed);
}

void
clear()
{
    std::lock_guard<std::mutex> lock(gMutex);
    gTriggers.clear();
    enabled.store(false, std::memory_order_relaxed);
}

void
hit(const std::string &site)
{
    FaultAction action{};
    std::uint32_t hang_ms = 0;
    bool fire = false;
    {
        std::lock_guard<std::mutex> lock(gMutex);
        for (ArmedTrigger &t : gTriggers) {
            if (!matches(t.spec.site, site))
                continue;
            std::uint32_t hit_no = t.hits++;
            if (hit_no < t.spec.skip || t.fired >= t.spec.count)
                continue;
            t.fired++;
            fire = true;
            action = t.spec.action;
            hang_ms = t.spec.hangMs;
            break;
        }
    }
    if (!fire)
        return;
    // Make every fire auditable before the action takes effect: a
    // hang or a swallowed retry would otherwise leave no record.
    warn("fault point '", site, "' fired");
    if (FireObserver obs =
            gFireObserver.load(std::memory_order_relaxed))
        obs(site);
    if (action == FaultAction::Hang)
        hang(hang_ms, site);
    else
        throwFor(action, site);
}

void
setCancelFlag(const std::atomic<bool> *flag)
{
    tCancelFlag = flag;
}

void
setFireObserver(FireObserver observer)
{
    gFireObserver.store(observer, std::memory_order_relaxed);
}

} // namespace faultpoints

/** Appended to every parse diagnostic so the caller sees the
 *  grammar without digging through docs. */
static const char kPlanUsage[] =
    " (expected site[=action][*count][@skip], e.g. "
    "vm.fault=fail*2@1; action one of fail|fatal|panic|hangN)";

FaultPlan
FaultPlan::parse(const std::string &spec)
{
    FaultPlan plan;
    std::size_t pos = 0;
    while (pos < spec.size()) {
        std::size_t end = spec.find(',', pos);
        if (end == std::string::npos)
            end = spec.size();
        std::string item = spec.substr(pos, end - pos);
        pos = end + 1;
        if (item.empty())
            continue;

        FaultTrigger t;
        // Peel "@skip" then "*count" off the tail, then "=action".
        auto number_after = [&](char sep,
                                std::uint64_t &out) -> bool {
            auto at = item.rfind(sep);
            if (at == std::string::npos)
                return false;
            const std::string digits = item.substr(at + 1);
            // Call out the common mistake — suffixes in the wrong
            // order — before the generic bad-number complaint.
            for (char other : {'=', '*', '@'}) {
                fatalIf(other != sep &&
                            digits.find(other) != std::string::npos,
                        "fault plan: '", other, "' must come before '",
                        sep, "' in '", item, "'", kPlanUsage);
            }
            fatalIf(digits.empty() ||
                        digits.find_first_not_of("0123456789") !=
                            std::string::npos,
                    "fault plan: bad number after '", sep, "' in '",
                    item, "'", kPlanUsage);
            out = std::stoull(digits);
            item.resize(at);
            return true;
        };
        std::uint64_t n = 0;
        if (number_after('@', n))
            t.skip = static_cast<std::uint32_t>(n);
        if (number_after('*', n))
            t.count = static_cast<std::uint32_t>(n);
        fatalIf(t.count == 0, "fault plan: zero count in '", item,
                "'", kPlanUsage);

        auto eq = item.find('=');
        if (eq != std::string::npos) {
            std::string action = item.substr(eq + 1);
            item.resize(eq);
            if (action == "fail") {
                t.action = FaultAction::Fail;
            } else if (action == "fatal") {
                t.action = FaultAction::Fatal;
            } else if (action == "panic") {
                t.action = FaultAction::Panic;
            } else if (action.compare(0, 4, "hang") == 0) {
                t.action = FaultAction::Hang;
                std::string ms = action.substr(4);
                if (!ms.empty()) {
                    fatalIf(ms.find_first_not_of("0123456789") !=
                                std::string::npos,
                            "fault plan: bad hang duration '", action,
                            "'", kPlanUsage);
                    t.hangMs = static_cast<std::uint32_t>(
                        std::stoull(ms));
                }
            } else {
                fatal("fault plan: unknown action '", action, "' in '",
                      item, "'", kPlanUsage);
            }
        }
        fatalIf(item.empty(), "fault plan: empty site in spec '", spec,
                "'", kPlanUsage);
        t.site = item;
        plan.add(t);
    }
    return plan;
}

} // namespace cdpc
