#include "common/stats.h"

#include <cmath>
#include <cstdio>

namespace cdpc
{

double
geometricMean(const std::vector<double> &values)
{
    fatalIf(values.empty(), "geometricMean of an empty set");
    double log_sum = 0.0;
    for (double v : values) {
        fatalIf(v <= 0.0, "geometricMean requires positive values, got ", v);
        log_sum += std::log(v);
    }
    return std::exp(log_sum / static_cast<double>(values.size()));
}

std::string
formatBytes(std::uint64_t bytes)
{
    char buf[32];
    if (bytes >= (1ULL << 30) && bytes % (1ULL << 20) == 0) {
        std::snprintf(buf, sizeof(buf), "%.1fGB",
                      static_cast<double>(bytes) / (1ULL << 30));
    } else if (bytes >= (1ULL << 20)) {
        std::snprintf(buf, sizeof(buf), "%.1fMB",
                      static_cast<double>(bytes) / (1ULL << 20));
    } else if (bytes >= (1ULL << 10)) {
        std::snprintf(buf, sizeof(buf), "%.0fKB",
                      static_cast<double>(bytes) / (1ULL << 10));
    } else {
        std::snprintf(buf, sizeof(buf), "%lluB",
                      static_cast<unsigned long long>(bytes));
    }
    return buf;
}

std::string
formatPercent(double fraction, int precision)
{
    // A zero-reference run can hand us NaN/Inf ratios; render them as
    // 0 rather than leaking "nan%" into a table.
    if (!std::isfinite(fraction))
        fraction = 0.0;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

} // namespace cdpc
