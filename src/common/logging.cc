#include "common/logging.h"

#include <atomic>
#include <iostream>

namespace cdpc
{

namespace
{

std::atomic<bool> quietFlag{false};

} // namespace

void
setQuiet(bool quiet)
{
    quietFlag.store(quiet, std::memory_order_relaxed);
}

bool
isQuiet()
{
    return quietFlag.load(std::memory_order_relaxed);
}

namespace detail
{

void
emitWarn(const std::string &msg)
{
    if (!isQuiet())
        std::cerr << "warn: " << msg << "\n";
}

void
emitInform(const std::string &msg)
{
    if (!isQuiet())
        std::cerr << "info: " << msg << "\n";
}

} // namespace detail

} // namespace cdpc
