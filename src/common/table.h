/**
 * @file
 * Plain-text table and bar rendering used by the benchmark harness to
 * print the paper's tables and figure series on a terminal.
 */

#ifndef CDPC_COMMON_TABLE_H
#define CDPC_COMMON_TABLE_H

#include <string>
#include <vector>

namespace cdpc
{

/**
 * A simple column-aligned text table.
 *
 * Numeric-looking cells are right-aligned, everything else is
 * left-aligned. render() returns the whole table including a header
 * separator row.
 */
class TextTable
{
  public:
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have the same arity as the header. */
    void addRow(std::vector<std::string> cells);

    /** Append a horizontal separator row. */
    void addSeparator();

    /** @return the rendered table, newline-terminated. */
    std::string render() const;

    std::size_t rows() const { return body.size(); }

  private:
    std::vector<std::string> header;
    /** Each row is either a full set of cells or empty (= separator). */
    std::vector<std::vector<std::string>> body;
};

/**
 * Render a horizontal bar of width proportional to value/maxValue,
 * e.g. "#######   " — used to sketch the paper's bar-chart figures.
 */
std::string textBar(double value, double max_value, int width = 40,
                    char fill = '#');

/** Fixed-precision double formatting, e.g. fmtF(3.14159, 2) == "3.14". */
std::string fmtF(double v, int precision = 2);

/** Integer formatting with thousands separators: 1234567 -> "1,234,567". */
std::string fmtI(std::uint64_t v);

} // namespace cdpc

#endif // CDPC_COMMON_TABLE_H
