#include "common/signals.h"

#include <csignal>

namespace cdpc::signals
{

namespace
{

std::atomic<int> g_drain_signal{0};

CancelToken &
token()
{
    static CancelToken t;
    return t;
}

extern "C" void
drainHandler(int sig)
{
    // First signal: record it, raise the cooperative flag, and hand
    // the disposition back to the default action so a second signal
    // is an immediate kill rather than a queued request.
    g_drain_signal.store(sig, std::memory_order_relaxed);
    token().cancel();
    std::signal(sig, SIG_DFL);
}

} // namespace

void
installDrainHandlers()
{
    g_drain_signal.store(0, std::memory_order_relaxed);
    token().reset();
    std::signal(SIGINT, drainHandler);
    std::signal(SIGTERM, drainHandler);
}

void
resetDrainHandlers()
{
    std::signal(SIGINT, SIG_DFL);
    std::signal(SIGTERM, SIG_DFL);
    g_drain_signal.store(0, std::memory_order_relaxed);
    token().reset();
}

CancelToken &
drainToken()
{
    return token();
}

int
drainSignal()
{
    return g_drain_signal.load(std::memory_order_relaxed);
}

const char *
drainSignalName()
{
    switch (drainSignal()) {
      case SIGINT:
        return "SIGINT";
      case SIGTERM:
        return "SIGTERM";
      default:
        return "none";
    }
}

} // namespace cdpc::signals
