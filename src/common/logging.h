/**
 * @file
 * Error-reporting and status-message helpers, following the
 * gem5 fatal()/panic() discipline:
 *
 *  - panic():  an internal invariant was violated — a bug in this
 *              library, never the user's fault.
 *  - fatal():  the simulation cannot continue because of a user error
 *              (bad configuration, invalid arguments).
 *  - warn():   something works, but not as well as it should.
 *  - inform(): purely informational status output.
 *
 * Because this code is a library used from tests, panic() and fatal()
 * throw typed exceptions (PanicError / FatalError) rather than calling
 * abort()/exit(); a standalone binary that does not catch them still
 * terminates with the message on stderr.
 */

#ifndef CDPC_COMMON_LOGGING_H
#define CDPC_COMMON_LOGGING_H

#include <sstream>
#include <stdexcept>
#include <string>

namespace cdpc
{

/** Thrown by panic(): an internal invariant of the library failed. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg) : std::logic_error(msg) {}
};

/** Thrown by fatal(): the user asked for something unsatisfiable. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * A failure that may succeed on retry (injected faults, transient
 * resource trouble). The batch runner's retry machinery only retries
 * errors of this family; FatalError and PanicError stay permanent.
 */
class TransientError : public std::runtime_error
{
  public:
    explicit TransientError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

namespace detail
{

/** Fold a pack of stream-insertable values into one string. */
template <typename... Args>
std::string
concat(Args &&...args)
{
    std::ostringstream os;
    (os << ... << std::forward<Args>(args));
    return os.str();
}

void emitWarn(const std::string &msg);
void emitInform(const std::string &msg);

} // namespace detail

/**
 * Report an internal bug and throw PanicError.
 * Use when a condition should be impossible regardless of user input.
 */
template <typename... Args>
[[noreturn]] void
panic(Args &&...args)
{
    throw PanicError("panic: " +
                     detail::concat(std::forward<Args>(args)...));
}

/**
 * Report an unrecoverable user error and throw FatalError.
 * Use for bad configurations and invalid arguments.
 */
template <typename... Args>
[[noreturn]] void
fatal(Args &&...args)
{
    throw FatalError("fatal: " +
                     detail::concat(std::forward<Args>(args)...));
}

/** panic() unless @p cond holds. */
template <typename Cond, typename... Args>
void
panicIfNot(const Cond &cond, Args &&...args)
{
    if (!cond)
        panic(std::forward<Args>(args)...);
}

/** fatal() if @p cond holds. */
template <typename Cond, typename... Args>
void
fatalIf(const Cond &cond, Args &&...args)
{
    if (cond)
        fatal(std::forward<Args>(args)...);
}

/** Print a warning to stderr; never throws, never stops execution. */
template <typename... Args>
void
warn(Args &&...args)
{
    detail::emitWarn(detail::concat(std::forward<Args>(args)...));
}

/** Print a status message to stderr. */
template <typename... Args>
void
inform(Args &&...args)
{
    detail::emitInform(detail::concat(std::forward<Args>(args)...));
}

/** Globally silence warn()/inform() output (used by tests/benches). */
void setQuiet(bool quiet);

/** @return whether warn()/inform() output is currently suppressed. */
bool isQuiet();

} // namespace cdpc

#endif // CDPC_COMMON_LOGGING_H
