/**
 * @file
 * Deterministic fault injection.
 *
 * A FaultPlan is a seeded-free, fully explicit list of triggers:
 * which instrumented site fires, after how many hits, how many
 * times, and what happens (a retryable failure, a fatal error, an
 * internal panic, or a hang). Production code marks its interesting
 * failure points with faultPoint("site"); when no plan is installed
 * the check is one relaxed atomic load, so instrumenting hot paths
 * (page allocation, trace reads) costs nothing in normal runs.
 *
 * Site names may carry an instance qualifier after '#'
 * (e.g. "job.run#101.tomcatv/cdpc/8cpu"). A trigger written for the
 * bare site matches every instance; a qualified trigger matches only
 * its instance — which is what makes fault batches reproducible
 * regardless of worker count or scheduling order.
 *
 * Plan spec grammar (comma-separated triggers):
 *
 *     site[=action][*count][@skip]
 *
 *  - action: fail (default; throws TransientError), fatal (throws
 *    FatalError), panic (throws PanicError), hangN (sleeps N ms,
 *    default 60000, honoring the cooperative cancel flag)
 *  - count:  how many hits fire the trigger (default 1)
 *  - skip:   hits to let pass before the first firing (default 0)
 *
 * Example: --fault-plan 'physmem.alloc=fail*2@100,job.run#bad=panic'
 */

#ifndef CDPC_COMMON_FAULTPOINT_H
#define CDPC_COMMON_FAULTPOINT_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/logging.h"

namespace cdpc
{

/** Thrown by a firing fault point with action "fail". */
class FaultInjectedError : public TransientError
{
  public:
    explicit FaultInjectedError(const std::string &msg)
        : TransientError(msg)
    {}
};

/** What a firing trigger does to the calling thread. */
enum class FaultAction
{
    Fail,  ///< throw FaultInjectedError (retryable)
    Fatal, ///< throw FatalError (permanent)
    Panic, ///< throw PanicError (permanent, "a bug")
    Hang,  ///< sleep hangMs, checking the cancel flag
};

/** One armed trigger of a FaultPlan. */
struct FaultTrigger
{
    /** Site to match, optionally "#"-qualified to one instance. */
    std::string site;
    FaultAction action = FaultAction::Fail;
    /** Firings before the trigger disarms. */
    std::uint32_t count = 1;
    /** Matching hits to let pass before the first firing. */
    std::uint32_t skip = 0;
    /** Sleep length for FaultAction::Hang. */
    std::uint32_t hangMs = 60000;
};

/** A parsed, installable set of fault triggers. */
class FaultPlan
{
  public:
    FaultPlan() = default;

    /** Parse the --fault-plan spec; fatal() on a malformed spec. */
    static FaultPlan parse(const std::string &spec);

    void add(FaultTrigger trigger) { triggers_.push_back(trigger); }
    bool empty() const { return triggers_.empty(); }
    const std::vector<FaultTrigger> &triggers() const { return triggers_; }

  private:
    std::vector<FaultTrigger> triggers_;
};

namespace faultpoints
{

/** Install @p plan process-wide (replaces any previous plan). */
void install(const FaultPlan &plan);

/** Remove the installed plan and reset all hit counters. */
void clear();

/** @return true when a non-empty plan is installed (fast check). */
inline bool
active()
{
    extern std::atomic<bool> enabled;
    return enabled.load(std::memory_order_relaxed);
}

/** Slow path of faultPoint(); may throw or sleep. */
void hit(const std::string &site);

/**
 * Register the calling thread's cooperative cancel flag. A hanging
 * trigger polls it and aborts the sleep (throwing TransientError)
 * once set — this is what lets the batch watchdog reel a hung job
 * back in instead of abandoning its thread. Pass nullptr to clear.
 */
void setCancelFlag(const std::atomic<bool> *flag);

/**
 * Process-wide observer invoked on every armed-site fire, before the
 * action (throw/hang) takes effect. The observability layer hooks
 * this to turn fires into trace events; faultpoints itself cannot
 * call up into obs (obs links against common). Pass nullptr to
 * clear. The observer must not throw.
 */
using FireObserver = void (*)(const std::string &site);
void setFireObserver(FireObserver observer);

} // namespace faultpoints

/**
 * Declare an injectable failure site. No-op (one atomic load) unless
 * a plan with a matching armed trigger is installed.
 */
inline void
faultPoint(const char *site)
{
    if (faultpoints::active())
        faultpoints::hit(site);
}

/** faultPoint() for sites with a runtime "#" instance qualifier. */
inline void
faultPoint(const std::string &site)
{
    if (faultpoints::active())
        faultpoints::hit(site);
}

} // namespace cdpc

#endif // CDPC_COMMON_FAULTPOINT_H
