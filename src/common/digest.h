/**
 * @file
 * FNV-1a 64-bit hashing, shared by the golden-output registry
 * (src/verify/golden) and the crash-safe batch journal
 * (src/runner/journal). Header-only so low layers can digest without
 * linking against the verification library.
 */

#ifndef CDPC_COMMON_DIGEST_H
#define CDPC_COMMON_DIGEST_H

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

namespace cdpc
{

inline constexpr std::uint64_t kFnv1aOffsetBasis = 0xcbf29ce484222325ull;
inline constexpr std::uint64_t kFnv1aPrime = 0x100000001b3ull;

/** 64-bit FNV-1a over @p n bytes, continuing from @p h. */
inline std::uint64_t
fnv1a(const void *data, std::size_t n,
      std::uint64_t h = kFnv1aOffsetBasis)
{
    const unsigned char *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; i++) {
        h ^= p[i];
        h *= kFnv1aPrime;
    }
    return h;
}

/** 64-bit FNV-1a over @p text. */
inline std::uint64_t
fnv1a(const std::string &text)
{
    return fnv1a(text.data(), text.size());
}

/** Canonical 16-digit lowercase hex rendering of a digest. */
inline std::string
digestHex(std::uint64_t h)
{
    char buf[17];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  static_cast<unsigned long long>(h));
    return buf;
}

} // namespace cdpc

#endif // CDPC_COMMON_DIGEST_H
