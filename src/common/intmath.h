/**
 * @file
 * Small integer-math helpers used throughout the cache and VM layers.
 * Everything here is constexpr and branch-light; these functions sit
 * on the per-reference hot path of the simulator.
 */

#ifndef CDPC_COMMON_INTMATH_H
#define CDPC_COMMON_INTMATH_H

#include <bit>
#include <cstdint>

#include "common/logging.h"

namespace cdpc
{

/** @return true iff @p n is a (nonzero) power of two. */
constexpr bool
isPowerOf2(std::uint64_t n)
{
    return n != 0 && (n & (n - 1)) == 0;
}

/** @return floor(log2(n)); @p n must be nonzero. */
constexpr unsigned
floorLog2(std::uint64_t n)
{
    return 63u - static_cast<unsigned>(std::countl_zero(n | 1));
}

/** @return ceil(log2(n)); @p n must be nonzero. */
constexpr unsigned
ceilLog2(std::uint64_t n)
{
    return floorLog2(n) + (isPowerOf2(n) ? 0u : 1u);
}

/** @return ceil(a / b) for b > 0. */
constexpr std::uint64_t
divCeil(std::uint64_t a, std::uint64_t b)
{
    return (a + b - 1) / b;
}

/** @return @p a rounded up to the next multiple of @p align. */
constexpr std::uint64_t
roundUp(std::uint64_t a, std::uint64_t align)
{
    return divCeil(a, align) * align;
}

/** @return @p a rounded down to a multiple of @p align. */
constexpr std::uint64_t
roundDown(std::uint64_t a, std::uint64_t align)
{
    return (a / align) * align;
}

/**
 * Positive modulo: result is always in [0, m) even for "negative"
 * differences computed in unsigned arithmetic.
 */
constexpr std::uint64_t
posMod(std::int64_t a, std::uint64_t m)
{
    std::int64_t r = a % static_cast<std::int64_t>(m);
    return static_cast<std::uint64_t>(r < 0 ?
                                      r + static_cast<std::int64_t>(m) : r);
}

} // namespace cdpc

#endif // CDPC_COMMON_INTMATH_H
