#include "common/table.h"

#include <algorithm>
#include <cctype>
#include <cstdint>
#include <cstdio>
#include <sstream>

#include "common/logging.h"

namespace cdpc
{

namespace
{

bool
looksNumeric(const std::string &s)
{
    if (s.empty())
        return false;
    for (char c : s) {
        if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' &&
            c != '-' && c != '+' && c != '%' && c != ',' && c != 'x') {
            return false;
        }
    }
    return true;
}

} // namespace

TextTable::TextTable(std::vector<std::string> headers)
    : header(std::move(headers))
{
    fatalIf(header.empty(), "TextTable needs at least one column");
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    fatalIf(cells.size() != header.size(),
            "TextTable row arity ", cells.size(), " != header arity ",
            header.size());
    body.push_back(std::move(cells));
}

void
TextTable::addSeparator()
{
    body.emplace_back();
}

std::string
TextTable::render() const
{
    std::vector<std::size_t> widths(header.size());
    for (std::size_t c = 0; c < header.size(); c++)
        widths[c] = header[c].size();
    for (const auto &row : body) {
        for (std::size_t c = 0; c < row.size(); c++)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto emit_row = [&](std::ostringstream &os,
                        const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); c++) {
            os << (c == 0 ? "| " : " ");
            bool right = looksNumeric(row[c]);
            std::size_t pad = widths[c] - row[c].size();
            if (right)
                os << std::string(pad, ' ') << row[c];
            else
                os << row[c] << std::string(pad, ' ');
            os << " |";
        }
        os << "\n";
    };

    auto emit_sep = [&](std::ostringstream &os) {
        for (std::size_t c = 0; c < widths.size(); c++) {
            os << (c == 0 ? "|" : "") << std::string(widths[c] + 2, '-')
               << "|";
        }
        os << "\n";
    };

    std::ostringstream os;
    emit_row(os, header);
    emit_sep(os);
    for (const auto &row : body) {
        if (row.empty())
            emit_sep(os);
        else
            emit_row(os, row);
    }
    return os.str();
}

std::string
textBar(double value, double max_value, int width, char fill)
{
    if (max_value <= 0.0 || value < 0.0)
        return std::string(static_cast<std::size_t>(width), ' ');
    double frac = std::min(1.0, value / max_value);
    auto n = static_cast<std::size_t>(frac * width + 0.5);
    std::string bar(n, fill);
    bar.resize(static_cast<std::size_t>(width), ' ');
    return bar;
}

std::string
fmtF(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
fmtI(std::uint64_t v)
{
    std::string digits = std::to_string(v);
    std::string out;
    int seen = 0;
    for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
        if (seen && seen % 3 == 0)
            out.push_back(',');
        out.push_back(*it);
        seen++;
    }
    std::reverse(out.begin(), out.end());
    return out;
}

} // namespace cdpc
