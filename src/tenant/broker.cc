#include "tenant/broker.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace cdpc::tenant
{

bool
ColorLease::contains(Color c) const
{
    return std::binary_search(colors.begin(), colors.end(), c);
}

Color
ColorLease::project(Color c) const
{
    if (unlimited || colors.empty() || contains(c))
        return c;
    return colors[c % colors.size()];
}

namespace
{

ColorLease
fullLease(std::uint64_t colors)
{
    ColorLease l;
    l.colors.resize(colors);
    for (std::uint64_t c = 0; c < colors; c++)
        l.colors[c] = static_cast<Color>(c);
    l.unlimited = true;
    return l;
}

/** Carve @p count colors starting at @p cursor, wrapping. */
ColorLease
carve(std::uint64_t colors, std::uint64_t &cursor,
      std::uint64_t count)
{
    if (count >= colors)
        return fullLease(colors);
    ColorLease l;
    l.colors.reserve(count);
    for (std::uint64_t i = 0; i < count; i++)
        l.colors.push_back(
            static_cast<Color>((cursor + i) % colors));
    cursor = (cursor + count) % colors;
    std::sort(l.colors.begin(), l.colors.end());
    return l;
}

/**
 * Largest-remainder division of @p colors by tenant weight: every
 * tenant gets at least one color, the shares sum exactly to the
 * color count, and ties break toward the lower tenant index so the
 * partition is deterministic.
 */
std::vector<std::uint64_t>
proportionalShares(const ScenarioSpec &spec, std::uint64_t colors)
{
    const std::size_t n = spec.tenants.size();
    double totalWeight = 0;
    for (const TenantSpec &t : spec.tenants)
        totalWeight += t.weight;

    std::vector<std::uint64_t> share(n, 1);
    std::vector<double> remainder(n, 0.0);
    std::uint64_t assigned = 0;
    for (std::size_t i = 0; i < n; i++) {
        double exact = static_cast<double>(colors) *
                       spec.tenants[i].weight / totalWeight;
        share[i] = std::max<std::uint64_t>(
            1, static_cast<std::uint64_t>(exact));
        remainder[i] = exact - std::floor(exact);
        assigned += share[i];
    }
    // Hand out the leftover colors by descending remainder,
    // low index first on ties.
    std::vector<std::size_t> order(n);
    for (std::size_t i = 0; i < n; i++)
        order[i] = i;
    std::stable_sort(order.begin(), order.end(),
                     [&](std::size_t a, std::size_t b) {
                         return remainder[a] > remainder[b];
                     });
    std::size_t k = 0;
    while (assigned < colors) {
        share[order[k % n]]++;
        assigned++;
        k++;
    }
    // More tenants than colors would underflow here; the parser
    // bounds tenants by cpus <= 32 and every machine has >= 64
    // colors, but guard the invariant anyway.
    while (assigned > colors) {
        std::size_t victim = order[n - 1 - (k % n)];
        if (share[victim] > 1) {
            share[victim]--;
            assigned--;
        }
        k++;
    }
    return share;
}

} // namespace

ColorBroker::ColorBroker(const ScenarioSpec &spec)
    : colors_(spec.machine.numColors())
{
    leases_.reserve(spec.tenants.size());
    std::uint64_t cursor = 0;
    switch (spec.budget) {
      case BudgetPolicy::Hard:
      case BudgetPolicy::BestEffort:
        // Requested budgets, carved sequentially. colors=0 means
        // unlimited. Oversubscription (sum of budgets > colors)
        // wraps, so late tenants overlap early ones — contention,
        // not an error.
        for (const TenantSpec &t : spec.tenants) {
            leases_.push_back(t.colors == 0
                                  ? fullLease(colors_)
                                  : carve(colors_, cursor, t.colors));
        }
        break;
      case BudgetPolicy::Proportional: {
        std::vector<std::uint64_t> share =
            proportionalShares(spec, colors_);
        for (std::size_t i = 0; i < spec.tenants.size(); i++)
            leases_.push_back(carve(colors_, cursor, share[i]));
        break;
      }
    }
}

const ColorLease &
ColorBroker::lease(std::size_t tenant) const
{
    panicIfNot(tenant < leases_.size(), "broker: no tenant ", tenant);
    return leases_[tenant];
}

void
ColorBroker::reclaim(std::size_t tenant)
{
    panicIfNot(tenant < leases_.size(), "broker: no tenant ", tenant);
    ColorLease &l = leases_[tenant];
    if (l.released)
        return;
    l.released = true;
    releasedColors_ += l.colors.size();
}

LeasedMappingPolicy::LeasedMappingPolicy(PageMappingPolicy &inner,
                                         const ColorLease &lease,
                                         bool hard)
    : inner_(inner), lease_(lease), hard_(hard)
{
}

Color
LeasedMappingPolicy::preferredColor(const FaultContext &ctx)
{
    Color c = inner_.preferredColor(ctx);
    if (c == kNoColor) {
        if (!hard_ || lease_.colors.empty())
            return c;
        // A hard budget turns "no preference" into "anywhere in my
        // lease": cycle by vpn for spread without new RNG state.
        return lease_.colors[ctx.vpn % lease_.colors.size()];
    }
    return lease_.project(c);
}

std::string
LeasedMappingPolicy::name() const
{
    return "leased(" + inner_.name() + ")";
}

LeasedFallbackPolicy::LeasedFallbackPolicy(
    std::unique_ptr<ColorFallbackPolicy> base,
    const ColorLease &lease, bool hard)
    : base_(std::move(base)), lease_(lease), hard_(hard)
{
}

std::optional<PageNum>
LeasedFallbackPolicy::allocFallback(PhysMem &phys, VirtualMemory *vm,
                                    Color preferred)
{
    // Scan the lease ring-wise from the preferred color.
    const std::vector<Color> &lc = lease_.colors;
    if (!lc.empty()) {
        auto start = std::lower_bound(lc.begin(), lc.end(),
                                      preferred) -
                     lc.begin();
        for (std::size_t i = 0; i < lc.size(); i++) {
            Color c = lc[(start + i) % lc.size()];
            if (auto page = phys.tryAllocExact(c)) {
                leaseAllocs_++;
                return page;
            }
        }
        // Lease physically dry: reclaim a competitor page of a
        // lease color before leaving the budget.
        for (std::size_t i = 0; i < lc.size(); i++) {
            Color c = lc[(start + i) % lc.size()];
            if (phys.freePagesOfColor(c) == 0) {
                if (auto page = phys.reclaim(c)) {
                    if (phys.colorOf(*page) == c) {
                        leaseAllocs_++;
                        return page;
                    }
                    // reclaim() roamed outside the lease; give the
                    // page back rather than silently overflowing.
                    phys.markReclaimable(*page);
                }
            }
        }
    }
    // Budget exhausted. Liveness beats isolation: fall through to
    // the scenario's base policy on the whole machine.
    if (hard_)
        overflows_++;
    return base_->allocFallback(phys, vm, preferred);
}

} // namespace cdpc::tenant
