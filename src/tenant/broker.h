/**
 * @file
 * ColorBroker: partitions and leases the machine's page-color space
 * among tenants (DESIGN.md §12).
 *
 * The broker is the scenario-level analogue of a cgroup colormask:
 * each tenant receives a ColorLease — an ordered set of colors it
 * may occupy — computed once from the scenario's budget policy, and
 * returns it when the tenant exits. Enforcement happens through the
 * existing VM machinery, not a new allocator: LeasedMappingPolicy
 * projects every preferred color into the lease before the page
 * fault reaches PhysMem, and LeasedFallbackPolicy constrains the
 * pressure path (scan, reclaim, steal) to lease colors, overflowing
 * to the base fallback only when the lease is physically dry — a
 * simulated process must never deadlock on its own budget.
 *
 * A lease covering the whole color space is *unlimited*: the
 * scenario runner installs no wrappers at all, so an unlimited
 * tenant takes the exact allocation path of a plain experiment
 * (the 1-tenant degeneracy contract).
 */

#ifndef CDPC_TENANT_BROKER_H
#define CDPC_TENANT_BROKER_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.h"
#include "tenant/spec.h"
#include "vm/fallback.h"
#include "vm/policy.h"

namespace cdpc::tenant
{

/** The colors one tenant may occupy, in ascending order. */
struct ColorLease
{
    std::vector<Color> colors;
    /** Lease covers every machine color: no enforcement needed. */
    bool unlimited = false;
    /** Returned to the broker (tenant exited). */
    bool released = false;

    bool contains(Color c) const;
    /** Deterministic projection of any color into the lease. */
    Color project(Color c) const;
};

/**
 * Grants one lease per tenant according to the scenario's budget
 * policy. Leases are computed deterministically from the spec alone
 * (no RNG), so a scenario's color partition is reproducible and
 * printable before anything runs.
 */
class ColorBroker
{
  public:
    /** Compute every tenant's lease up front. */
    ColorBroker(const ScenarioSpec &spec);

    const ColorLease &lease(std::size_t tenant) const;

    /**
     * Return tenant @p tenant's colors to the pool (the tenant
     * exited). Idempotent. The freed colors are visible through
     * releasedColors() — under hard budgets a real kernel would
     * re-lease them; this model just stops the exited tenant from
     * polluting anyone.
     */
    void reclaim(std::size_t tenant);

    /** Colors currently held by no live lease. */
    std::uint64_t releasedColors() const { return releasedColors_; }

    std::uint64_t numColors() const { return colors_; }

  private:
    std::uint64_t colors_;
    std::vector<ColorLease> leases_;
    std::uint64_t releasedColors_ = 0;
};

/**
 * Budget enforcement, policy side: wraps the tenant's active mapping
 * policy and projects every preferred color into the lease, so the
 * page-fault path below (PhysMem exact-alloc, then fallback) only
 * ever chases colors the tenant owns. kNoColor preferences stay
 * unconstrained under best-effort semantics but are pinned to the
 * lease under a hard budget.
 */
class LeasedMappingPolicy : public PageMappingPolicy
{
  public:
    /**
     * @param inner the tenant's native policy (not owned)
     * @param lease the tenant's colors (not owned; must outlive)
     * @param hard pin even no-preference faults to the lease
     */
    LeasedMappingPolicy(PageMappingPolicy &inner,
                        const ColorLease &lease, bool hard);

    Color preferredColor(const FaultContext &ctx) override;
    std::string name() const override;
    void reset() override { inner_.reset(); }

  private:
    PageMappingPolicy &inner_;
    const ColorLease &lease_;
    bool hard_;
};

/**
 * Budget enforcement, pressure side: when the preferred (leased)
 * color is empty, scan the rest of the lease, then reclaim
 * competitor pages within the lease, then delegate to the base
 * fallback policy (counted as a budget overflow under hard
 * budgets — the escape hatch that trades isolation for liveness).
 */
class LeasedFallbackPolicy : public ColorFallbackPolicy
{
  public:
    /**
     * @param base the scenario's fallback policy (owned)
     * @param lease the tenant's colors (not owned; must outlive)
     * @param hard exhaust the lease before touching foreign colors
     */
    LeasedFallbackPolicy(std::unique_ptr<ColorFallbackPolicy> base,
                         const ColorLease &lease, bool hard);

    std::optional<PageNum> allocFallback(PhysMem &phys,
                                         VirtualMemory *vm,
                                         Color preferred) override;
    const char *name() const override { return "leased"; }

    /** Allocations served from within the lease. */
    std::uint64_t leaseAllocs() const { return leaseAllocs_; }
    /** Hard-budget allocations that had to leave the lease. */
    std::uint64_t overflows() const { return overflows_; }

  private:
    std::unique_ptr<ColorFallbackPolicy> base_;
    const ColorLease &lease_;
    bool hard_;
    std::uint64_t leaseAllocs_ = 0;
    std::uint64_t overflows_ = 0;
};

} // namespace cdpc::tenant

#endif // CDPC_TENANT_BROKER_H
