#include "tenant/spec.h"

#include <cstdlib>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "mem/memsystem.h"
#include "workloads/workload.h"

namespace cdpc::tenant
{

namespace
{

/** Appended to every parse diagnostic so the caller sees the
 *  grammar without digging through docs (FaultPlan style). */
const char kSpecUsage[] =
    " (expected 'scenario [key=value]...' then one 'tenant <name> "
    "[key=value]...' per tenant; scenario keys cpus|machine|"
    "scheduler|budget|fallback|pressure|pattern|physpages|prealloc|"
    "seed|interval|warmup|rounds|simthreads, tenant keys "
    "workload|vcpus|colors|"
    "weight|policy|prefetch|aligned|racy|seed)";

MachineConfig
machinePreset(const std::string &name, std::uint32_t cpus,
              std::size_t lineno)
{
    if (name == "scaled")
        return MachineConfig::paperScaled(cpus);
    if (name == "scaled-2way")
        return MachineConfig::paperScaledTwoWay(cpus);
    if (name == "scaled-4mb")
        return MachineConfig::paperScaledBig(cpus);
    if (name == "alpha")
        return MachineConfig::alphaScaled(cpus);
    if (name == "full")
        return MachineConfig::paperFull(cpus);
    fatal("tenant spec line ", lineno, ": unknown machine preset '",
          name, "'", kSpecUsage);
}

MappingPolicy
parseMapping(const std::string &s, std::size_t lineno)
{
    if (s == "pc" || s == "page-coloring")
        return MappingPolicy::PageColoring;
    if (s == "bh" || s == "bin-hopping")
        return MappingPolicy::BinHopping;
    if (s == "cdpc")
        return MappingPolicy::Cdpc;
    if (s == "cdpc-touch")
        return MappingPolicy::CdpcTouchOrder;
    if (s == "random")
        return MappingPolicy::Random;
    if (s == "hash")
        return MappingPolicy::Hash;
    fatal("tenant spec line ", lineno, ": unknown policy '", s, "'",
          kSpecUsage);
}

bool
parseFlag(const std::string &value, const std::string &key,
          std::size_t lineno)
{
    fatalIf(value != "0" && value != "1", "tenant spec line ", lineno,
            ": ", key, " wants 0 or 1, got '", value, "'", kSpecUsage);
    return value == "1";
}

std::uint64_t
parseU64(const std::string &value, const std::string &key,
         std::size_t lineno)
{
    fatalIf(value.empty() ||
                value.find_first_not_of("0123456789") !=
                    std::string::npos,
            "tenant spec line ", lineno, ": ", key,
            " wants a non-negative integer, got '", value, "'",
            kSpecUsage);
    return std::strtoull(value.c_str(), nullptr, 10);
}

/** Split one "key=value" token; fatal on a bare word. */
void
splitKv(const std::string &kv, std::size_t lineno, std::string &key,
        std::string &value)
{
    auto eq = kv.find('=');
    fatalIf(eq == std::string::npos || eq == 0, "tenant spec line ",
            lineno, ": expected key=value, got '", kv, "'",
            kSpecUsage);
    key = kv.substr(0, eq);
    value = kv.substr(eq + 1);
    fatalIf(value.empty(), "tenant spec line ", lineno, ": key '",
            key, "' has an empty value (truncated line?)", kSpecUsage);
}

struct ScenarioDefaults
{
    double pressurePct = 0.0;
    std::string pattern = "fragmented";
};

void
parseScenarioLine(std::istringstream &in, std::size_t lineno,
                  ScenarioSpec &spec, ScenarioDefaults &defs)
{
    std::string kv;
    while (in >> kv) {
        std::string key, value;
        splitKv(kv, lineno, key, value);
        if (key == "cpus")
            spec.cpus = static_cast<std::uint32_t>(
                parseU64(value, key, lineno));
        else if (key == "machine")
            spec.machineName = value;
        else if (key == "scheduler")
            spec.scheduler = parseScheduler(value);
        else if (key == "budget")
            spec.budget = parseBudgetPolicy(value);
        else if (key == "fallback")
            spec.fallback = parseFallback(value);
        else if (key == "pressure")
            defs.pressurePct = std::atof(value.c_str());
        else if (key == "pattern")
            defs.pattern = value;
        else if (key == "physpages")
            spec.physPages = parseU64(value, key, lineno);
        else if (key == "prealloc")
            spec.preallocatedPages = parseU64(value, key, lineno);
        else if (key == "seed")
            spec.seed = parseU64(value, key, lineno);
        else if (key == "interval")
            spec.sim.statsInterval = static_cast<std::uint32_t>(
                parseU64(value, key, lineno));
        else if (key == "warmup")
            spec.sim.warmupRounds = static_cast<std::uint32_t>(
                parseU64(value, key, lineno));
        else if (key == "rounds")
            spec.sim.measureRounds = static_cast<std::uint32_t>(
                parseU64(value, key, lineno));
        else if (key == "simthreads")
            spec.sim.simThreads =
                value == "auto"
                    ? 0
                    : static_cast<std::uint32_t>(
                          parseU64(value, key, lineno));
        else
            fatal("tenant spec line ", lineno,
                  ": unknown scenario key '", key, "'", kSpecUsage);
    }
}

TenantSpec
parseTenantLine(std::istringstream &in, std::size_t lineno,
                const ScenarioSpec &scenario)
{
    TenantSpec t;
    in >> t.name;
    fatalIf(t.name.empty() || t.name.find('=') != std::string::npos,
            "tenant spec line ", lineno,
            ": tenant needs a name before its keys", kSpecUsage);

    bool racy = t.base.binHopRacy;
    std::string kv;
    while (in >> kv) {
        std::string key, value;
        splitKv(kv, lineno, key, value);
        if (key == "workload")
            t.workload = value;
        else if (key == "vcpus")
            t.vcpus = static_cast<std::uint32_t>(
                parseU64(value, key, lineno));
        else if (key == "colors")
            t.colors = parseU64(value, key, lineno);
        else if (key == "weight")
            t.weight = std::atof(value.c_str());
        else if (key == "policy")
            t.base.mapping = parseMapping(value, lineno);
        else if (key == "prefetch")
            t.base.prefetch = parseFlag(value, key, lineno);
        else if (key == "aligned")
            t.base.aligned = parseFlag(value, key, lineno);
        else if (key == "racy")
            racy = parseFlag(value, key, lineno);
        else if (key == "seed")
            t.base.seed = parseU64(value, key, lineno);
        else
            fatal("tenant spec line ", lineno,
                  ": unknown tenant key '", key, "'", kSpecUsage);
    }
    fatalIf(t.workload.empty(), "tenant spec line ", lineno,
            ": tenant '", t.name, "' has no workload= key",
            kSpecUsage);
    // Resolve the registry name now so a typo dies at parse time,
    // not mid-scenario.
    t.workload = findWorkload(t.workload).name;
    fatalIf(t.vcpus == 0, "tenant spec line ", lineno, ": tenant '",
            t.name, "' has vcpus=0 (zero-CPU placement)", kSpecUsage);
    fatalIf(t.weight <= 0.0, "tenant spec line ", lineno,
            ": tenant '", t.name, "' has a non-positive weight",
            kSpecUsage);

    t.base.machine = machinePreset(scenario.machineName, t.vcpus,
                                   lineno);
    t.base.binHopRacy = racy;
    t.base.fallback = scenario.fallback;
    t.base.sim = scenario.sim;
    return t;
}

} // namespace

const char *
budgetPolicyName(BudgetPolicy p)
{
    switch (p) {
      case BudgetPolicy::Hard:
        return "hard";
      case BudgetPolicy::Proportional:
        return "proportional";
      case BudgetPolicy::BestEffort:
        return "best-effort";
    }
    return "unknown";
}

BudgetPolicy
parseBudgetPolicy(const std::string &name)
{
    if (name == "hard")
        return BudgetPolicy::Hard;
    if (name == "proportional" || name == "prop")
        return BudgetPolicy::Proportional;
    if (name == "best-effort" || name == "besteffort")
        return BudgetPolicy::BestEffort;
    fatal("unknown budget policy '", name,
          "' (have: hard proportional best-effort)");
}

const char *
schedulerName(SchedulerKind k)
{
    switch (k) {
      case SchedulerKind::RoundRobin:
        return "round-robin";
      case SchedulerKind::LocalityAware:
        return "locality";
    }
    return "unknown";
}

SchedulerKind
parseScheduler(const std::string &name)
{
    if (name == "rr" || name == "round-robin")
        return SchedulerKind::RoundRobin;
    if (name == "locality" || name == "la" ||
        name == "locality-aware")
        return SchedulerKind::LocalityAware;
    fatal("unknown scheduler '", name,
          "' (have: rr|round-robin locality|locality-aware)");
}

ScenarioSpec
parseScenario(std::istream &in, const std::string &name)
{
    ScenarioSpec spec;
    spec.name = name;
    ScenarioDefaults defs;
    bool sawScenario = false;

    // First pass: the scenario header must come first because every
    // tenant line resolves its machine preset against it.
    std::string line;
    std::size_t lineno = 0;
    std::vector<std::pair<std::size_t, std::string>> tenantLines;
    while (std::getline(in, line)) {
        lineno++;
        auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream ls(line.substr(first));
        std::string head;
        ls >> head;
        if (head == "scenario") {
            fatalIf(sawScenario, "tenant spec line ", lineno,
                    ": duplicate scenario header", kSpecUsage);
            fatalIf(!tenantLines.empty(), "tenant spec line ", lineno,
                    ": scenario header must precede every tenant",
                    kSpecUsage);
            sawScenario = true;
            parseScenarioLine(ls, lineno, spec, defs);
        } else if (head == "tenant") {
            fatalIf(!sawScenario, "tenant spec line ", lineno,
                    ": tenant before the scenario header",
                    kSpecUsage);
            std::string rest;
            std::getline(ls, rest);
            tenantLines.emplace_back(lineno, rest);
        } else {
            fatal("tenant spec line ", lineno,
                  ": expected 'scenario' or 'tenant', got '", head,
                  "'", kSpecUsage);
        }
    }
    fatalIf(!sawScenario, "tenant spec '", name,
            "': no scenario header (empty or truncated file?)",
            kSpecUsage);
    fatalIf(spec.cpus == 0, "tenant spec '", name,
            "': scenario has cpus=0", kSpecUsage);
    fatalIf(spec.cpus > kMaxCpus, "tenant spec '", name,
            "': scenario cpus=", spec.cpus, " exceeds the ", kMaxCpus,
            "-CPU simulator limit", kSpecUsage);

    spec.machine = machinePreset(spec.machineName, spec.cpus, 1);
    spec.pressure.occupancy = defs.pressurePct / 100.0;
    spec.pressure.pattern = parsePressurePattern(defs.pattern);
    spec.pressure.seed = spec.seed;

    const std::uint64_t colors = spec.machine.numColors();
    for (auto &[tlineno, rest] : tenantLines) {
        std::istringstream ls(rest);
        TenantSpec t = parseTenantLine(ls, tlineno, spec);
        t.base.pressure = spec.pressure;
        for (const TenantSpec &prev : spec.tenants)
            fatalIf(prev.name == t.name, "tenant spec line ", tlineno,
                    ": duplicate tenant name '", t.name, "'",
                    kSpecUsage);
        fatalIf(t.colors > colors, "tenant spec line ", tlineno,
                ": tenant '", t.name, "' wants colors=", t.colors,
                " but machine '", spec.machineName, "' has only ",
                colors, " colors", kSpecUsage);
        fatalIf(t.vcpus > spec.cpus, "tenant spec line ", tlineno,
                ": tenant '", t.name, "' has vcpus=", t.vcpus,
                " but the scenario machine has only ", spec.cpus,
                " CPUs", kSpecUsage);
        spec.tenants.push_back(std::move(t));
    }
    fatalIf(spec.tenants.empty(), "tenant spec '", name,
            "': no tenants declared", kSpecUsage);
    return spec;
}

ScenarioSpec
parseScenarioFile(const std::string &path)
{
    std::ifstream in(path);
    fatalIf(!in, "cannot open tenant spec ", path);
    auto slash = path.find_last_of('/');
    return parseScenario(
        in, slash == std::string::npos ? path
                                       : path.substr(slash + 1));
}

ScenarioSpec
singleTenantSpec(const std::string &workload,
                 const ExperimentConfig &config)
{
    ScenarioSpec spec;
    spec.name = "single:" + workload;
    spec.cpus = config.machine.numCpus;
    spec.machineName = config.machine.name;
    spec.machine = config.machine;
    spec.budget = BudgetPolicy::BestEffort;
    spec.scheduler = SchedulerKind::RoundRobin;
    spec.fallback = config.fallback;
    spec.pressure = config.pressure;
    spec.preallocatedPages = config.preallocatedPages;
    spec.physPages = config.machine.physPages;
    spec.seed = config.seed;
    spec.sim = config.sim;

    TenantSpec t;
    t.name = "solo";
    t.workload = findWorkload(workload).name;
    t.vcpus = config.machine.numCpus;
    t.colors = 0; // unlimited
    t.base = config;
    spec.tenants.push_back(std::move(t));
    return spec;
}

} // namespace cdpc::tenant
