/**
 * @file
 * Tenant co-scheduler: maps every tenant's virtual CPUs onto the
 * scenario's physical CPUs (DESIGN.md §12).
 *
 * Two placement policies:
 *
 *  - round-robin: vcpus take physical CPUs cyclically in tenant
 *    declaration order — the naive baseline, blind to what each
 *    tenant's pages will do to its neighbors' caches;
 *  - locality-aware: greedy minimization of predicted cross-tenant
 *    color conflicts. Each tenant's compiler summaries (and, for
 *    CDPC tenants, the computed hint plan) yield a per-color page
 *    footprint; the pairwise conflict cost of two tenants is the
 *    elementwise-min overlap of their footprints, i.e. how many page
 *    pairs would fight over the same external-cache bins if their
 *    vcpus time-share a physical CPU. Greedy placement assigns each
 *    vcpu to the CPU with the lowest accumulated overlap against
 *    the vcpus already resident there, breaking ties toward the
 *    emptier CPU and then the lower CPU id — fully deterministic,
 *    which the placement-stability test locks.
 *
 * Co-residency is what makes placement matter: the scenario runner
 * models a context switch onto a physical CPU by evicting (from the
 * incoming vcpu's external cache) every color currently resident in
 * a co-located foreign vcpu's cache, plus a TLB flush.
 */

#ifndef CDPC_TENANT_SCHEDULER_H
#define CDPC_TENANT_SCHEDULER_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "tenant/spec.h"

namespace cdpc::tenant
{

/** Predicted pages-per-color footprint of one tenant. */
struct TenantFootprint
{
    /** weight[c] ~ pages the tenant will map at color c. */
    std::vector<double> weight;
};

/** Predicted conflict cost of co-locating tenants @p a and @p b. */
double footprintOverlap(const TenantFootprint &a,
                        const TenantFootprint &b);

/** Where every tenant's vcpus landed. */
struct Placement
{
    /** cpuOf[tenant][vcpu] = physical CPU. */
    std::vector<std::vector<CpuId>> cpuOf;
    /** residents[cpu] = (tenant, vcpu) pairs sharing that CPU. */
    std::vector<std::vector<std::pair<std::size_t, CpuId>>> residents;

    /** Foreign tenants co-resident with (tenant, vcpu). */
    std::vector<std::size_t> coResidents(std::size_t tenant,
                                         CpuId vcpu) const;
};

/**
 * Place every tenant's vcpus on @p physCpus physical CPUs.
 * @p footprints must have one entry per tenant (used only by the
 * locality-aware policy; pass empty footprints for round-robin).
 * Deterministic for a given (spec, footprints) input.
 */
Placement placeTenants(const ScenarioSpec &spec,
                       const std::vector<TenantFootprint> &footprints,
                       SchedulerKind kind, std::uint32_t physCpus);

} // namespace cdpc::tenant

#endif // CDPC_TENANT_SCHEDULER_H
