#include "tenant/scenario.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "common/logging.h"
#include "common/stats.h"
#include "mem/memsystem.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "runner/thread_pool.h"
#include "tenant/broker.h"
#include "verify/differential.h"
#include "vm/hints.h"
#include "vm/physmem.h"
#include "vm/policy.h"
#include "vm/pressure.h"
#include "vm/virtual_memory.h"

namespace cdpc::tenant
{

std::optional<AloneOutcome>
AloneCache::find(const std::string &key) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end())
        return std::nullopt;
    return it->second;
}

void
AloneCache::store(const std::string &key, const AloneOutcome &outcome)
{
    std::lock_guard<std::mutex> lock(mutex_);
    entries_.emplace(key, outcome);
}

std::size_t
AloneCache::size() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return entries_.size();
}

std::string
aloneKey(const ScenarioSpec &spec, std::size_t idx)
{
    const TenantSpec &t = spec.tenants[idx];
    const ExperimentConfig &c = t.base;
    std::ostringstream os;
    os << t.workload << "/" << mappingName(c.mapping)
       << "/vcpus=" << t.vcpus << "/machine=" << spec.machineName
       << "/aligned=" << c.aligned << "/prefetch=" << c.prefetch
       << "/racy=" << c.binHopRacy << "/seed=" << c.seed
       << "/fallback=" << static_cast<int>(c.fallback)
       << "/press=" << c.pressure.occupancy << ","
       << static_cast<int>(c.pressure.pattern) << ","
       << c.pressure.seed << "/prealloc=" << spec.preallocatedPages
       << "/pages=" << spec.sharedPhysPages()
       << "/warm=" << c.sim.warmupRounds
       << "/meas=" << c.sim.measureRounds
       << "/init=" << c.sim.runInit;
    return os.str();
}

namespace
{

/**
 * One tenant's full stack — everything runProgram() keeps on its
 * stack frame, built in the same order, with two deliberate
 * deviations: physical memory is the scenario's shared allocator
 * (injected, with the hog/pressure steps hoisted to scenario scope),
 * and a non-unlimited lease interposes the broker's enforcement
 * wrappers between the native policy/fallback and the VM.
 */
struct TenantRig
{
    Program program;
    CompileResult compiled;
    std::unique_ptr<RandomPolicy> random;
    std::unique_ptr<HashPolicy> hash;
    std::unique_ptr<ColorFallbackPolicy> fallback;
    std::unique_ptr<PageColoringPolicy> coloring;
    std::unique_ptr<BinHoppingPolicy> binhop;
    std::unique_ptr<CdpcHintPolicy> hints;
    PageMappingPolicy *active = nullptr;
    std::unique_ptr<LeasedMappingPolicy> leasedMapping;
    std::unique_ptr<LeasedFallbackPolicy> leasedFallback;
    std::unique_ptr<VirtualMemory> vm;
    std::unique_ptr<MemorySystem> mem;
    std::unique_ptr<DynamicRecolorer> recolorer;
    std::unique_ptr<verify::DifferentialVerifier> verifier;
    std::unique_ptr<obs::ConflictProfiler> profiler;
    std::unique_ptr<MpSimulator> sim;
    /** Partial result; plan/summaries land here at build time. */
    ExperimentResult res;
    SimOptions simopts;
};

std::unique_ptr<TenantRig>
buildRig(const TenantSpec &t, PhysMem &phys, const ColorLease &lease,
         bool hard, const std::vector<std::string> &tenant_names,
         std::size_t self)
{
    const ExperimentConfig &config = t.base;
    const MachineConfig &m = config.machine;
    m.validate();

    auto rig = std::make_unique<TenantRig>();
    rig->program = buildWorkload(t.workload);

    // --- Compile (mirrors runProgram step for step) -------------------
    CompilerOptions copts;
    copts.align = config.aligned;
    copts.prefetch = config.prefetch;
    copts.aligner.lineBytes = m.l2.lineBytes;
    copts.aligner.l1SpanBytes = m.l1d.sizeBytes / m.l1d.assoc;
    copts.prefetcher.lineBytes = m.l2.lineBytes;
    copts.prefetcher.targetLatency = m.memLatencyCycles;
    copts.prefetcher.minArrayBytes = m.l2.sizeBytes / 2;
    obs::PhaseSpan compile_span("compile");
    rig->compiled = compileProgram(rig->program, copts);
    compile_span.end();

    // --- Operating system (phys is shared; hog/pressure already
    // applied by the scenario) -----------------------------------------
    rig->random =
        std::make_unique<RandomPolicy>(m.numColors(), config.seed);
    rig->hash = std::make_unique<HashPolicy>(m.numColors());
    rig->fallback = makeFallbackPolicy(config.fallback);
    rig->coloring = std::make_unique<PageColoringPolicy>(m.numColors());
    rig->binhop = std::make_unique<BinHoppingPolicy>(
        m.numColors(), config.binHopRacy, config.seed);

    PageMappingPolicy *base = nullptr;
    switch (config.mapping) {
      case MappingPolicy::PageColoring:
      case MappingPolicy::Cdpc:
        base = rig->coloring.get();
        break;
      case MappingPolicy::BinHopping:
      case MappingPolicy::CdpcTouchOrder:
        base = rig->binhop.get();
        break;
      case MappingPolicy::Random:
        base = rig->random.get();
        break;
      case MappingPolicy::Hash:
        base = rig->hash.get();
        break;
    }
    rig->hints = std::make_unique<CdpcHintPolicy>(*base);

    bool use_cdpc = config.mapping == MappingPolicy::Cdpc ||
                    config.mapping == MappingPolicy::CdpcTouchOrder;
    rig->active = config.mapping == MappingPolicy::Cdpc
                      ? static_cast<PageMappingPolicy *>(rig->hints.get())
                      : base;

    // Budget enforcement: only a real (non-unlimited) lease changes
    // the stack. An unlimited tenant gets the exact runProgram()
    // wiring — the degeneracy contract depends on this.
    PageMappingPolicy *policy = rig->active;
    ColorFallbackPolicy *fb = rig->fallback.get();
    if (!lease.unlimited) {
        rig->leasedMapping = std::make_unique<LeasedMappingPolicy>(
            *rig->active, lease, hard);
        rig->leasedFallback = std::make_unique<LeasedFallbackPolicy>(
            std::move(rig->fallback), lease, hard);
        policy = rig->leasedMapping.get();
        fb = rig->leasedFallback.get();
    }

    rig->vm = std::make_unique<VirtualMemory>(m, phys, *policy, fb);

    // --- CDPC run-time library ----------------------------------------
    rig->res.summaries = rig->compiled.summaries;
    if (use_cdpc) {
        obs::PhaseSpan coloring_span("coloring");
        CdpcPlan plan = computeCdpcPlan(rig->compiled.summaries,
                                        cdpcParams(m),
                                        config.cdpcOptions);
        if (config.mapping == MappingPolicy::Cdpc)
            applyHints(plan, *rig->hints);
        else
            applyByTouchOrder(plan, *rig->vm);
        rig->res.plan = std::move(plan);
    }

    // --- Simulator ------------------------------------------------------
    rig->mem = std::make_unique<MemorySystem>(m, *rig->vm);
    MemorySystem *mem = rig->mem.get();
    std::uint64_t page_bytes = m.pageBytes;
    rig->vm->setRemapObserver([mem, page_bytes](PageNum vpn) {
        mem->purgePage(vpn * page_bytes);
    });
    if (config.dynamicRecolor) {
        rig->recolorer = std::make_unique<DynamicRecolorer>(
            *rig->vm, phys, *rig->mem, config.recolor);
        DynamicRecolorer *rc = rig->recolorer.get();
        rig->mem->setConflictObserver(
            [rc](CpuId cpu, PageNum vpn, Cycles now) {
                return rc->onConflictMiss(cpu, vpn, now);
            });
    }
    if (config.verifyEvery) {
        rig->verifier =
            std::make_unique<verify::DifferentialVerifier>(
                m, *rig->mem, *rig->vm, config.verifyEvery);
        rig->mem->setMemObserver(rig->verifier.get());
    }
    if (config.auditEvery)
        rig->mem->setAuditEvery(config.auditEvery);
    // Conflict attribution in tenant mode: entities are the
    // co-resident tenants themselves (immovable — the advisor has no
    // array to remap), every miss of this rig is "us", and the
    // context-switch evictor is stamped by the co-scheduler right
    // before each cross-tenant eviction pass.
    if (config.profile) {
        obs::ConflictProfiler::Config pc;
        pc.numCpus = m.numCpus;
        pc.numColors = static_cast<std::uint32_t>(m.numColors());
        pc.pageBytes = m.pageBytes;
        pc.lineBytes = m.l2.lineBytes;
        pc.colorCapacityBytes = m.l2.sizeBytes / m.numColors();
        pc.index = m.indexFunction();
        for (const std::string &name : tenant_names)
            pc.entities.push_back({name, 0, 0});
        rig->profiler = std::make_unique<obs::ConflictProfiler>(pc);
        rig->profiler->setSelfEntity(
            static_cast<std::uint32_t>(self));
        rig->mem->setConflictProfiler(rig->profiler.get());
    }
    rig->sim = std::make_unique<MpSimulator>(m, *rig->mem);
    rig->simopts = config.sim;
    if (rig->simopts.statsInterval && !rig->simopts.snapshots)
        rig->simopts.snapshots = &rig->res.snapshots;
    rig->simopts.profiler = rig->profiler.get();
    return rig;
}

/**
 * Finish a tenant's bookkeeping exactly the way runProgram() ends:
 * same fields, same formulas, so the degenerate scenario's result is
 * indistinguishable from the plain harness's.
 */
void
finalizeRig(TenantRig &rig, const TenantSpec &t,
            const WeightedTotals &totals,
            std::uint64_t pressure_pages)
{
    ExperimentResult &res = rig.res;
    res.totals = totals;
    if (rig.recolorer)
        res.recolorStats = rig.recolorer->stats();
    if (rig.verifier) {
        res.verifiedRefs = rig.verifier->stats().refsChecked;
        res.verifiedDeepCompares = rig.verifier->stats().deepCompares;
    }
    res.auditsRun = rig.mem->auditsRun();
    if (rig.profiler) {
        res.profile = rig.profiler->result(rig.mem->colorOccupancy());
        res.profile.classifiedConflicts =
            rig.mem->totalStats().missCount[static_cast<std::size_t>(
                MissKind::Conflict)];
    }
    res.workload = rig.program.name;
    res.policy = mappingName(t.base.mapping);
    res.ncpus = t.base.machine.numCpus;
    res.dataSetBytes = rig.program.dataSetBytes();
    res.degradation = rig.vm->stats();
    res.pressurePages = pressure_pages;
    const VmStats &vs = res.degradation;
    std::uint64_t expressed =
        vs.hintHonored + vs.hintFallback + vs.hintDenied;
    res.hintsHonored = safeDiv(static_cast<double>(vs.hintHonored),
                               static_cast<double>(expressed), 1.0);
}

/**
 * Resumable replica of MpSimulator::run(): the whole warmup/measure
 * schedule is flattened into quanta of one phase-round each, so the
 * co-scheduler can interleave tenants at phase-round granularity
 * while each tenant still executes the exact round sequence — and
 * accumulates the exact occurrence-weighted totals — that run()
 * would produce.
 */
class TenantStepper
{
  public:
    explicit TenantStepper(TenantRig &rig) : rig_(rig)
    {
        const SimOptions &opts = rig.simopts;
        fatalIf(opts.measureRounds == 0,
                "measureRounds must be at least 1");
        if (opts.runInit)
            sched_.push_back({Kind::Init, &rig.program.init, false,
                              false});
        for (const Phase &phase : rig.program.steady) {
            for (std::uint32_t w = 0; w < opts.warmupRounds; w++)
                sched_.push_back({Kind::Warmup, &phase, false, false});
            for (std::uint32_t m = 0; m < opts.measureRounds; m++)
                sched_.push_back({Kind::Measure, &phase, m == 0,
                                  m + 1 == opts.measureRounds});
        }
    }

    bool done() const { return cursor_ == sched_.size(); }

    /** Execute one quantum (one phase-round). */
    void
    step()
    {
        panicIfNot(!done(), "stepping a finished tenant");
        const Quantum &q = sched_[cursor_++];
        MpSimulator &sim = *rig_.sim;
        switch (q.kind) {
          case Kind::Init:
          case Kind::Warmup: {
            // run() nulls the page trace for init and warmup rounds
            // (Figures 3/5 plot steady state only).
            SimOptions o = rig_.simopts;
            o.trace = nullptr;
            sim.runPhase(rig_.program, *q.phase, o);
            break;
          }
          case Kind::Measure: {
            if (q.firstRound) {
                before_ = sim.snapshot();
                lastWall_ = before_.wall;
            }
            sim.runPhase(rig_.program, *q.phase, rig_.simopts);
            RunTotals now = sim.snapshot();
            roundWalls_.push_back(
                static_cast<double>(now.wall - lastWall_));
            lastWall_ = now.wall;
            if (q.lastRound) {
                double weight =
                    static_cast<double>(q.phase->occurrences) /
                    rig_.simopts.measureRounds;
                totals_.add(before_, now, weight);
            }
            break;
          }
        }
    }

    const WeightedTotals &totals() const { return totals_; }
    const std::vector<double> &roundWalls() const { return roundWalls_; }

  private:
    enum class Kind
    {
        Init,
        Warmup,
        Measure
    };
    struct Quantum
    {
        Kind kind;
        const Phase *phase;
        bool firstRound;
        bool lastRound;
    };

    TenantRig &rig_;
    std::vector<Quantum> sched_;
    std::size_t cursor_ = 0;
    RunTotals before_;
    Cycles lastWall_ = 0;
    WeightedTotals totals_;
    std::vector<double> roundWalls_;
};

/**
 * Predicted pages-per-color footprint: for CDPC tenants the plan's
 * hints (projected through the lease the broker actually granted);
 * for everyone else a uniform spread of the data set over the lease.
 */
TenantFootprint
predictFootprint(const TenantRig &rig, const ColorLease &lease,
                 std::uint64_t num_colors, std::uint64_t page_bytes)
{
    TenantFootprint fp;
    fp.weight.assign(num_colors, 0.0);
    if (rig.res.plan && !rig.res.plan->coloring.hints.empty()) {
        for (const ColorHint &h : rig.res.plan->coloring.hints)
            fp.weight[lease.project(h.color) % num_colors] += 1.0;
        return fp;
    }
    double pages = static_cast<double>(rig.program.dataSetBytes()) /
                   static_cast<double>(page_bytes);
    if (lease.colors.empty())
        return fp;
    double per = pages / static_cast<double>(lease.colors.size());
    for (Color c : lease.colors)
        fp.weight[c % num_colors] += per;
    return fp;
}

double
sumWalls(const std::vector<double> &walls)
{
    double s = 0;
    for (double w : walls)
        s += w;
    return s;
}

/** Nearest-rank p99 of the per-round slowdown samples. */
double
p99Of(std::vector<double> samples)
{
    if (samples.empty())
        return 0;
    std::sort(samples.begin(), samples.end());
    std::size_t rank = static_cast<std::size_t>(
        std::ceil(0.99 * static_cast<double>(samples.size())));
    rank = std::min(std::max<std::size_t>(rank, 1), samples.size());
    return samples[rank - 1];
}

AloneOutcome
runTenantAlone(const ScenarioSpec &spec, std::size_t idx)
{
    const TenantSpec &t = spec.tenants[idx];
    // Same machine-wide environment as the shared run — hog pages,
    // competitor pressure — minus the other tenants, so slowdown
    // isolates exactly the co-residency effect.
    PhysMem phys(spec.sharedPhysPages(), spec.machine.indexFunction());
    std::uint64_t half =
        std::max<std::uint64_t>(spec.machine.numColors() / 2, 1);
    for (std::uint64_t i = 0; i < spec.preallocatedPages; i++)
        phys.alloc(static_cast<Color>(i % half));
    PressureStats pressure = applyMemoryPressure(phys, spec.pressure);

    ColorLease all;
    all.colors.resize(spec.machine.numColors());
    for (std::uint64_t c = 0; c < spec.machine.numColors(); c++)
        all.colors[c] = static_cast<Color>(c);
    all.unlimited = true;

    std::unique_ptr<TenantRig> rig =
        buildRig(t, phys, all, false, {t.name}, 0);
    TenantStepper stepper(*rig);
    while (!stepper.done())
        stepper.step();
    finalizeRig(*rig, t, stepper.totals(), pressure.claimedPages);

    AloneOutcome out;
    out.result = std::move(rig->res);
    out.roundWalls = stepper.roundWalls();
    out.wall = sumWalls(out.roundWalls);
    return out;
}

} // namespace

ScenarioResult
runScenario(const ScenarioSpec &spec, const ScenarioOptions &opts)
{
    spec.machine.validate();
    fatalIf(spec.tenants.empty(), "scenario has no tenants");
    const std::size_t n = spec.tenants.size();
    const std::uint64_t phys_pages = spec.sharedPhysPages();
    fatalIf(spec.preallocatedPages >= phys_pages,
            "preallocatedPages leaves no memory for the tenants");

    // --- Shared physical memory (one allocator, all tenants) ----------
    PhysMem phys(phys_pages, spec.machine.indexFunction());
    std::uint64_t half =
        std::max<std::uint64_t>(spec.machine.numColors() / 2, 1);
    for (std::uint64_t i = 0; i < spec.preallocatedPages; i++)
        phys.alloc(static_cast<Color>(i % half));
    PressureStats pressure = applyMemoryPressure(phys, spec.pressure);

    // --- Leases and per-tenant stacks ---------------------------------
    ColorBroker broker(spec);
    bool hard = spec.budget != BudgetPolicy::BestEffort;
    std::vector<std::string> tenant_names;
    tenant_names.reserve(n);
    for (const TenantSpec &t : spec.tenants)
        tenant_names.push_back(t.name);
    std::vector<std::unique_ptr<TenantRig>> rigs;
    rigs.reserve(n);
    for (std::size_t i = 0; i < n; i++)
        rigs.push_back(buildRig(spec.tenants[i], phys,
                                broker.lease(i), hard, tenant_names,
                                i));

    // --- Placement ----------------------------------------------------
    std::vector<TenantFootprint> footprints;
    if (spec.scheduler == SchedulerKind::LocalityAware) {
        footprints.reserve(n);
        for (std::size_t i = 0; i < n; i++)
            footprints.push_back(predictFootprint(
                *rigs[i], broker.lease(i), spec.machine.numColors(),
                spec.machine.pageBytes));
    }
    Placement placement = placeTenants(spec, footprints,
                                       spec.scheduler, spec.cpus);

    ScenarioResult out;
    out.name = spec.name;
    out.cpus = spec.cpus;
    out.budget = spec.budget;
    out.scheduler = spec.scheduler;
    out.placement = placement;
    out.tenants.resize(n);
    for (std::size_t i = 0; i < n; i++) {
        TenantResult &tr = out.tenants[i];
        tr.name = spec.tenants[i].name;
        tr.leaseSize = broker.lease(i).colors.size();
        tr.unlimited = broker.lease(i).unlimited;
    }

    // --- Co-schedule --------------------------------------------------
    std::vector<std::unique_ptr<TenantStepper>> steppers;
    steppers.reserve(n);
    for (std::size_t i = 0; i < n; i++)
        steppers.push_back(std::make_unique<TenantStepper>(*rigs[i]));

    std::size_t live = 0;
    std::uint64_t round = 0;
    auto retire = [&](std::size_t t) {
        finalizeRig(*rigs[t], spec.tenants[t], steppers[t]->totals(),
                    pressure.claimedPages);
        out.tenants[t].exitRound = round;
        // Process exit: pages go back to the shared pool, the lease
        // goes back to the broker, and (via the done() check in the
        // pollution pass) the tenant stops costing anyone evictions.
        rigs[t]->vm->unmapAll();
        broker.reclaim(t);
        out.leasesReclaimed++;
    };
    for (std::size_t i = 0; i < n; i++) {
        if (steppers[i]->done())
            retire(i); // empty program; keep the loop below finite
        else
            live++;
    }

    while (live > 0) {
        for (std::size_t t = 0; t < n; t++) {
            if (steppers[t]->done())
                continue;
            // Context-switch interference: before this tenant's
            // quantum, every vcpu sharing a physical CPU with a live
            // foreign tenant loses the cache bins that tenant
            // occupies, plus its TLB contents.
            TenantRig &rig = *rigs[t];
            for (CpuId v = 0; v < spec.tenants[t].vcpus; v++) {
                CpuId pc = placement.cpuOf[t][v];
                bool foreign = false;
                for (const auto &[u, uv] : placement.residents[pc]) {
                    if (u == t || steppers[u]->done())
                        continue;
                    foreign = true;
                    // Attribute the lines this pass evicts to the
                    // foreign tenant that owns the colors.
                    if (rig.profiler)
                        rig.profiler->setContextEvictor(
                            static_cast<std::uint32_t>(u));
                    std::uint64_t evicted = rig.mem->evictColors(
                        v, rigs[u]->mem->colorFootprint(uv));
                    out.tenants[t].crossTenantEvictions += evicted;
                    out.tenants[u].evictionsInflicted += evicted;
                }
                if (rig.profiler)
                    rig.profiler->clearContextEvictor();
                if (foreign) {
                    rig.mem->flushTlb(v);
                    out.tenants[t].tlbFlushes++;
                }
            }
            steppers[t]->step();
            if (steppers[t]->done()) {
                retire(t);
                live--;
            }
        }
        round++;
    }
    out.rounds = round;

    // --- Per-tenant accounting ----------------------------------------
    for (std::size_t i = 0; i < n; i++) {
        TenantResult &tr = out.tenants[i];
        tr.result = std::move(rigs[i]->res);
        if (rigs[i]->leasedFallback) {
            tr.leaseAllocs = rigs[i]->leasedFallback->leaseAllocs();
            tr.budgetOverflows = rigs[i]->leasedFallback->overflows();
        }
        tr.roundWalls = steppers[i]->roundWalls();
        tr.wall = sumWalls(tr.roundWalls);
        const WeightedTotals &wt = tr.result.totals;
        tr.missRate = safeDiv(wt.l2Misses, wt.refs, 0.0);
        out.totalCrossEvictions += tr.crossTenantEvictions;
    }

    double mean = 0;
    for (const TenantResult &tr : out.tenants)
        mean += tr.missRate;
    mean /= static_cast<double>(n);
    for (const TenantResult &tr : out.tenants) {
        double d = tr.missRate - mean;
        out.missRateVariance += d * d;
    }
    out.missRateVariance /= static_cast<double>(n);

    // --- Alone baselines (slowdown metrics) ---------------------------
    if (opts.computeAlone) {
        std::vector<std::optional<AloneOutcome>> alone(n);
        std::vector<std::string> keys(n);
        std::vector<std::size_t> missing;
        for (std::size_t i = 0; i < n; i++) {
            keys[i] = aloneKey(spec, i);
            if (opts.aloneCache)
                alone[i] = opts.aloneCache->find(keys[i]);
            if (!alone[i])
                missing.push_back(i);
        }
        if (!missing.empty()) {
            // Fan the baseline simulations out over the
            // work-stealing runner; each writes its own slot, so
            // the join is deterministic regardless of job count.
            runner::ThreadPool pool(opts.jobs);
            for (std::size_t i : missing) {
                pool.submit([&spec, &alone, i] {
                    alone[i] = runTenantAlone(spec, i);
                });
            }
            pool.waitIdle();
            if (opts.aloneCache) {
                for (std::size_t i : missing)
                    opts.aloneCache->store(keys[i], *alone[i]);
            }
        }
        for (std::size_t i = 0; i < n; i++) {
            TenantResult &tr = out.tenants[i];
            const AloneOutcome &base = *alone[i];
            tr.aloneWall = base.wall;
            tr.aloneMissRate = safeDiv(base.result.totals.l2Misses,
                                       base.result.totals.refs, 0.0);
            tr.slowdown = safeDiv(tr.wall, base.wall, 1.0);
            std::vector<double> ratios;
            std::size_t rounds = std::min(tr.roundWalls.size(),
                                          base.roundWalls.size());
            ratios.reserve(rounds);
            for (std::size_t r = 0; r < rounds; r++) {
                if (base.roundWalls[r] > 0)
                    ratios.push_back(tr.roundWalls[r] /
                                     base.roundWalls[r]);
            }
            tr.p99Slowdown = p99Of(std::move(ratios));
            out.maxSlowdown = std::max(out.maxSlowdown, tr.slowdown);
        }
    }

    // --- Observability ------------------------------------------------
    if (obs::metricsEnabled()) {
        obs::MetricsRegistry &reg = obs::MetricsRegistry::global();
        reg.counter("tenant.scenarios").inc();
        for (const TenantResult &tr : out.tenants) {
            std::string p = "tenant." + tr.name + ".";
            reg.counter(p + "crossEvictions")
                .inc(tr.crossTenantEvictions);
            reg.counter(p + "tlbFlushes").inc(tr.tlbFlushes);
            reg.counter(p + "budgetOverflows").inc(tr.budgetOverflows);
            reg.counter(p + "leaseAllocs").inc(tr.leaseAllocs);
            reg.counter(p + "hintHonored")
                .inc(tr.result.degradation.hintHonored);
            reg.counter(p + "hintFallback")
                .inc(tr.result.degradation.hintFallback);
        }
    }
    CDPC_METRIC_COUNT("tenant.runs", 1);
    return out;
}

ExperimentResult
runSingleTenant(const std::string &workload,
                const ExperimentConfig &config)
{
    ScenarioSpec spec = singleTenantSpec(workload, config);
    ScenarioOptions opts;
    opts.computeAlone = false;
    ScenarioResult res = runScenario(spec, opts);
    return std::move(res.tenants[0].result);
}

namespace
{

std::string
g17(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    return buf;
}

} // namespace

std::string
canonicalScenario(const ScenarioResult &res)
{
    std::ostringstream os;
    os << "scenario " << res.name << " cpus=" << res.cpus
       << " budget=" << budgetPolicyName(res.budget)
       << " scheduler=" << schedulerName(res.scheduler)
       << " rounds=" << res.rounds
       << " crossEvictions=" << res.totalCrossEvictions
       << " reclaimed=" << res.leasesReclaimed
       << " missVar=" << g17(res.missRateVariance)
       << " maxSlowdown=" << g17(res.maxSlowdown) << "\n";
    for (std::size_t t = 0; t < res.tenants.size(); t++) {
        os << "placement " << res.tenants[t].name;
        for (CpuId cpu : res.placement.cpuOf[t])
            os << " " << cpu;
        os << "\n";
    }
    for (const TenantResult &tr : res.tenants) {
        const WeightedTotals &wt = tr.result.totals;
        const VmStats &vs = tr.result.degradation;
        os << "tenant " << tr.name << " workload=" << tr.result.workload
           << " policy=" << tr.result.policy
           << " ncpus=" << tr.result.ncpus
           << " lease=" << tr.leaseSize
           << " unlimited=" << (tr.unlimited ? 1 : 0)
           << " exitRound=" << tr.exitRound
           << " crossEvictions=" << tr.crossTenantEvictions
           << " inflicted=" << tr.evictionsInflicted
           << " tlbFlushes=" << tr.tlbFlushes
           << " leaseAllocs=" << tr.leaseAllocs
           << " overflows=" << tr.budgetOverflows
           << " refs=" << g17(wt.refs)
           << " l1Misses=" << g17(wt.l1Misses)
           << " l2Misses=" << g17(wt.l2Misses)
           << " tlbMisses=" << g17(wt.tlbMisses)
           << " pageFaults=" << g17(wt.pageFaults)
           << " wall=" << g17(wt.wall)
           << " combined=" << g17(wt.combinedTime())
           << " missRate=" << g17(tr.missRate)
           << " measuredWall=" << g17(tr.wall)
           << " hintsHonored=" << g17(tr.result.hintsHonored)
           << " honored=" << vs.hintHonored
           << " fallback=" << vs.hintFallback
           << " denied=" << vs.hintDenied
           << " steals=" << vs.hintStolen
           << " aloneWall=" << g17(tr.aloneWall)
           << " slowdown=" << g17(tr.slowdown)
           << " p99Slowdown=" << g17(tr.p99Slowdown);
        os << " roundWalls=";
        for (std::size_t r = 0; r < tr.roundWalls.size(); r++)
            os << (r ? "," : "") << g17(tr.roundWalls[r]);
        os << "\n";
        // Both blocks below are emitted only when the run asked for
        // them (--stats-interval / --profile), so every pre-existing
        // serialization — including the tenant1 golden — is
        // byte-identical.
        for (const obs::IntervalSnapshot &s : tr.result.snapshots) {
            double refs = 0, l1 = 0, l2 = 0;
            for (const obs::CpuSnapshot &cs : s.cpus) {
                refs += static_cast<double>(cs.refs);
                l1 += static_cast<double>(cs.l1Misses);
                l2 += static_cast<double>(cs.l2Misses);
            }
            os << "snapshot " << tr.name << " seq=" << s.seq
               << " cycles=" << s.cycles << " refs=" << g17(refs)
               << " l1Misses=" << g17(l1) << " l2Misses=" << g17(l2)
               << "\n";
        }
        if (tr.result.profile.enabled) {
            const obs::ProfileResult &p = tr.result.profile;
            os << "profile " << tr.name
               << " conflicts=" << p.totalConflicts
               << " classified=" << p.classifiedConflicts
               << " reconciled=" << (p.reconciled() ? 1 : 0)
               << " colorConflicts=";
            for (std::size_t c = 0; c < p.colorConflicts.size(); c++)
                os << (c ? "," : "") << p.colorConflicts[c];
            os << "\n";
        }
    }
    return os.str();
}

} // namespace cdpc::tenant
