#include "tenant/scheduler.h"

#include <algorithm>

#include "common/logging.h"

namespace cdpc::tenant
{

double
footprintOverlap(const TenantFootprint &a, const TenantFootprint &b)
{
    std::size_t n = std::min(a.weight.size(), b.weight.size());
    double overlap = 0;
    for (std::size_t c = 0; c < n; c++)
        overlap += std::min(a.weight[c], b.weight[c]);
    return overlap;
}

std::vector<std::size_t>
Placement::coResidents(std::size_t tenant, CpuId vcpu) const
{
    std::vector<std::size_t> out;
    CpuId cpu = cpuOf[tenant][vcpu];
    for (const auto &[t, v] : residents[cpu]) {
        if (t != tenant &&
            std::find(out.begin(), out.end(), t) == out.end())
            out.push_back(t);
    }
    return out;
}

Placement
placeTenants(const ScenarioSpec &spec,
             const std::vector<TenantFootprint> &footprints,
             SchedulerKind kind, std::uint32_t physCpus)
{
    fatalIf(physCpus == 0, "placement: zero physical CPUs");
    const std::size_t n = spec.tenants.size();
    Placement p;
    p.cpuOf.resize(n);
    p.residents.resize(physCpus);

    if (kind == SchedulerKind::RoundRobin) {
        CpuId next = 0;
        for (std::size_t t = 0; t < n; t++) {
            for (CpuId v = 0; v < spec.tenants[t].vcpus; v++) {
                CpuId cpu = next % physCpus;
                next++;
                p.cpuOf[t].push_back(cpu);
                p.residents[cpu].emplace_back(t, v);
            }
        }
        return p;
    }

    fatalIf(footprints.size() != n,
            "placement: need one footprint per tenant");
    // Greedy: tenants in declaration order, each vcpu onto the CPU
    // with the least accumulated overlap against its residents.
    // Same-tenant residents count with full self-overlap, which
    // spreads a tenant's own vcpus before it doubles anyone up.
    for (std::size_t t = 0; t < n; t++) {
        for (CpuId v = 0; v < spec.tenants[t].vcpus; v++) {
            CpuId best = 0;
            double bestCost = -1;
            std::size_t bestLoad = 0;
            for (CpuId cpu = 0; cpu < physCpus; cpu++) {
                double cost = 0;
                for (const auto &[rt, rv] : p.residents[cpu])
                    cost += footprintOverlap(footprints[t],
                                             footprints[rt]);
                std::size_t load = p.residents[cpu].size();
                // Strictly cheaper wins; ties go to the emptier
                // CPU, then the lower CPU id (loop order).
                if (bestCost < 0 || cost < bestCost ||
                    (cost == bestCost && load < bestLoad)) {
                    best = cpu;
                    bestCost = cost;
                    bestLoad = load;
                }
            }
            p.cpuOf[t].push_back(best);
            p.residents[best].emplace_back(t, v);
        }
    }
    return p;
}

} // namespace cdpc::tenant
