/**
 * @file
 * The multi-tenant scenario runner (DESIGN.md §12).
 *
 * runScenario() co-schedules N tenants — each an independent process
 * with its own address space, caches and simulator, built exactly
 * the way runProgram() builds a plain experiment — over one shared
 * physical memory and one set of physical CPUs:
 *
 *  - the ColorBroker leases each tenant a slice of the color space
 *    (budget enforcement rides the existing VM policy/fallback
 *    machinery; an unlimited lease installs no wrappers at all);
 *  - placeTenants() maps tenant vcpus onto physical CPUs
 *    (round-robin baseline vs locality-aware greedy placement);
 *  - a round-robin co-scheduler hands each live tenant one quantum
 *    (one phase-round of its program) per scheduling round. Before a
 *    tenant's quantum, every vcpu that shares a physical CPU with a
 *    foreign tenant suffers a context-switch: all cache lines whose
 *    page colors are resident in the foreign tenant's external cache
 *    are evicted (dirty ones written back), and the TLB is flushed.
 *    Cross-tenant conflict pressure therefore scales with how much
 *    of the color space co-resident tenants share — exactly what the
 *    broker's budgets and the locality-aware placement reduce.
 *
 * Isolation metrics: per-tenant miss rates and their population
 * variance, per-tenant slowdown vs running alone on the same machine
 * (total and p99 over per-phase-round wall-clock samples,
 * nearest-rank), cross-tenant eviction and budget-overflow counts.
 * Alone baselines run through the work-stealing runner::ThreadPool
 * and are join-ordered, so results are independent of the job count
 * (the serial==parallel identity locked by tests/test_tenant.cc).
 *
 * Degeneracy contract: a 1-tenant unlimited-budget scenario takes
 * the exact code path of a plain experiment — same construction
 * order, same phase-round sequence, no wrappers, no pollution — and
 * reproduces runWorkload() byte-for-byte (the tenant1 golden).
 */

#ifndef CDPC_TENANT_SCENARIO_H
#define CDPC_TENANT_SCENARIO_H

#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "harness/experiment.h"
#include "tenant/scheduler.h"
#include "tenant/spec.h"

namespace cdpc::tenant
{

/** One tenant's run-alone baseline (no co-residents, no budget). */
struct AloneOutcome
{
    ExperimentResult result;
    /** Wall-clock cycles of each measured phase-round. */
    std::vector<double> roundWalls;
    /** Total measured wall (sum of roundWalls). */
    double wall = 0;
};

/**
 * Memoizes alone baselines across scenarios (the bench sweeps many
 * cells that share tenants). Thread-safe; keys come from aloneKey().
 */
class AloneCache
{
  public:
    std::optional<AloneOutcome> find(const std::string &key) const;
    void store(const std::string &key, const AloneOutcome &outcome);
    std::size_t size() const;

  private:
    mutable std::mutex mutex_;
    std::map<std::string, AloneOutcome> entries_;
};

/**
 * Cache key of tenant @p idx's alone baseline: every knob that can
 * change the baseline (workload, vcpus, mapping flags, seeds, the
 * shared machine and its scenario-global pressure) and nothing that
 * cannot (budget policy, scheduler, the other tenants).
 */
std::string aloneKey(const ScenarioSpec &spec, std::size_t idx);

/** Everything one tenant's shared run produced. */
struct TenantResult
{
    std::string name;
    /** Assembled exactly like runProgram()'s result. */
    ExperimentResult result;
    /** Colors leased (== machine colors when unlimited). */
    std::uint64_t leaseSize = 0;
    bool unlimited = false;
    /** Fallback allocations served from within the lease. */
    std::uint64_t leaseAllocs = 0;
    /** Hard-budget allocations that had to leave the lease. */
    std::uint64_t budgetOverflows = 0;
    /** L2 lines this tenant lost to co-resident tenants. */
    std::uint64_t crossTenantEvictions = 0;
    /** L2 lines this tenant's residency evicted from others. */
    std::uint64_t evictionsInflicted = 0;
    /** Context-switch TLB flushes suffered. */
    std::uint64_t tlbFlushes = 0;
    /** Scheduling round in which the tenant finished. */
    std::uint64_t exitRound = 0;
    /** l2Misses / refs over the measured window. */
    double missRate = 0;
    /** Measured wall-clock cycles (shared run). */
    double wall = 0;
    /** Wall-clock cycles of each measured phase-round (shared). */
    std::vector<double> roundWalls;

    // Populated only when the alone baseline ran:
    double aloneWall = 0;
    double aloneMissRate = 0;
    /** wall / aloneWall (1.0 = perfect isolation). */
    double slowdown = 0;
    /** Nearest-rank p99 of per-round wall ratios. */
    double p99Slowdown = 0;
};

/** A whole scenario's outcome. */
struct ScenarioResult
{
    std::string name;
    std::uint32_t cpus = 0;
    BudgetPolicy budget = BudgetPolicy::Hard;
    SchedulerKind scheduler = SchedulerKind::RoundRobin;
    std::vector<TenantResult> tenants;
    Placement placement;
    /** Scheduling rounds until the last tenant exited. */
    std::uint64_t rounds = 0;
    /** Sum of per-tenant crossTenantEvictions. */
    std::uint64_t totalCrossEvictions = 0;
    /** Leases returned to the broker (== tenant count at the end). */
    std::uint64_t leasesReclaimed = 0;
    /** Population variance of per-tenant miss rates. */
    double missRateVariance = 0;
    /** Max per-tenant slowdown (0 when baselines were skipped). */
    double maxSlowdown = 0;
};

/** Controls orthogonal to the spec. */
struct ScenarioOptions
{
    /** Worker threads for the alone-baseline fan-out. */
    unsigned jobs = 1;
    /** Compute run-alone baselines (slowdown metrics). */
    bool computeAlone = true;
    /** Optional cross-scenario baseline memo. */
    AloneCache *aloneCache = nullptr;
};

/** Run @p spec to completion. Deterministic for a given spec. */
ScenarioResult runScenario(const ScenarioSpec &spec,
                           const ScenarioOptions &opts = {});

/**
 * The degeneracy path: run the 1-tenant unlimited-budget scenario
 * for (@p workload, @p config) and return the tenant's result. The
 * tenant1 golden and tests compare this byte-for-byte against
 * runWorkload(workload, config).
 */
ExperimentResult runSingleTenant(const std::string &workload,
                                 const ExperimentConfig &config);

/**
 * Canonical text serialization of a scenario result: every numeric
 * field rendered with %.17g, so two results are equal iff their
 * serializations are equal (the serial==parallel identity test and
 * `cdpcsim tenants --out` both use it).
 */
std::string canonicalScenario(const ScenarioResult &res);

} // namespace cdpc::tenant

#endif // CDPC_TENANT_SCENARIO_H
