/**
 * @file
 * Multi-tenant scenario specification (DESIGN.md §12).
 *
 * A scenario describes N concurrent *tenants* — independent
 * processes, each running one workload from the registry in its own
 * address space — co-scheduled on one simulated machine and fighting
 * over the same physically indexed external cache. The spec grammar
 * is line-oriented and reuses the batch-file key=value vocabulary:
 *
 *   # comment
 *   scenario cpus=8 machine=scaled scheduler=locality budget=hard
 *   tenant web workload=101.tomcatv vcpus=2 colors=64 policy=cdpc
 *   tenant db  workload=102.swim    vcpus=2 colors=64 weight=2
 *
 * The first non-comment line must be the `scenario` header; every
 * following line declares one tenant. Scenario keys: cpus, machine,
 * scheduler (rr|locality), budget (hard|proportional|best-effort),
 * fallback, pressure (percent), pattern, physpages, prealloc, seed,
 * interval, warmup, rounds. Tenant keys: workload (required), vcpus,
 * colors (color budget; 0 = unlimited), weight (proportional share),
 * policy, prefetch, aligned, racy, seed. Parse errors are typed
 * fatals that name the offending line and append the grammar, in the
 * FaultPlan parser's style.
 */

#ifndef CDPC_TENANT_SPEC_H
#define CDPC_TENANT_SPEC_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "harness/experiment.h"

namespace cdpc::tenant
{

/** How the ColorBroker divides the color space among tenants. */
enum class BudgetPolicy
{
    /** Each tenant gets exactly its requested colors, carved
     *  sequentially; enforcement is strict (see broker.h). */
    Hard,
    /** The whole color space is partitioned by tenant weight
     *  (largest-remainder division, deterministic ties). */
    Proportional,
    /** Requested colors are preferred but never enforced: the
     *  fallback may roam the whole machine. */
    BestEffort,
};

/** @return "hard" | "proportional" | "best-effort". */
const char *budgetPolicyName(BudgetPolicy p);

/** Parse a budget policy name; fatal() on an unknown one. */
BudgetPolicy parseBudgetPolicy(const std::string &name);

/** How tenant vcpus are placed on the physical CPUs. */
enum class SchedulerKind
{
    /** Naive baseline: vcpus take physical CPUs cyclically in
     *  declaration order. */
    RoundRobin,
    /** Greedy placement minimizing predicted cross-tenant color
     *  overlap between co-resident vcpus (scheduler.h). */
    LocalityAware,
};

/** @return "round-robin" | "locality". */
const char *schedulerName(SchedulerKind k);

/** Parse a scheduler name ("rr", "round-robin", "locality", "la"). */
SchedulerKind parseScheduler(const std::string &name);

/** One tenant: a process running one workload in its own VM. */
struct TenantSpec
{
    /** Unique display name (the spec line's first token). */
    std::string name;
    /** Workload registry name. */
    std::string workload;
    /** Virtual CPUs this tenant's program is parallelized across. */
    std::uint32_t vcpus = 1;
    /** Color budget in colors; 0 means unlimited. */
    std::uint64_t colors = 0;
    /** Share weight under the proportional budget policy. */
    double weight = 1.0;
    /**
     * Fully resolved per-tenant experiment configuration. The
     * scenario runner builds each tenant's stack from this exactly
     * the way runProgram() would, which is what makes the 1-tenant
     * unlimited-budget scenario byte-identical to a plain
     * experiment. machine.numCpus equals vcpus; pressure and
     * preallocatedPages are scenario-global and applied once to the
     * shared allocator, never per tenant.
     */
    ExperimentConfig base;
};

/** A whole scenario: the machine plus its tenants. */
struct ScenarioSpec
{
    /** Display name (spec file stem or "scenario"). */
    std::string name = "scenario";
    /** Physical CPUs of the shared machine. */
    std::uint32_t cpus = 8;
    std::string machineName = "scaled";
    /** Resolved machine preset with numCpus = cpus. */
    MachineConfig machine;
    BudgetPolicy budget = BudgetPolicy::Hard;
    SchedulerKind scheduler = SchedulerKind::LocalityAware;
    FallbackKind fallback = FallbackKind::AnyColor;
    /** Competitor pressure on the *shared* physical memory. */
    MemPressureConfig pressure;
    /** Non-reclaimable hog pages on the shared allocator. */
    std::uint64_t preallocatedPages = 0;
    /** Shared physical pages; 0 means machine.physPages. */
    std::uint64_t physPages = 0;
    std::uint64_t seed = 1;
    /** Per-tenant simulation controls (warmup/measure/interval). */
    SimOptions sim;
    std::vector<TenantSpec> tenants;

    /** Shared physical pages after defaulting. */
    std::uint64_t
    sharedPhysPages() const
    {
        return physPages ? physPages : machine.physPages;
    }
};

/**
 * Parse a scenario spec from @p in. @p name labels diagnostics (the
 * file path). fatal() on any grammar or semantic violation:
 * truncated lines, unknown keys, duplicate tenant names, a color
 * budget exceeding the machine's colors, zero-vcpu tenants, more
 * vcpus than physical CPUs, or an empty scenario.
 */
ScenarioSpec parseScenario(std::istream &in, const std::string &name);

/** parseScenario() on a file; fatal() when unopenable. */
ScenarioSpec parseScenarioFile(const std::string &path);

/**
 * The 1-tenant unlimited-budget scenario equivalent to a plain
 * experiment: tenant "solo" runs @p workload under exactly
 * @p config on a machine with config.machine.numCpus CPUs. The
 * degeneracy contract (locked by the tenant1 golden figure) is that
 * running this scenario reproduces runWorkload(workload, config)
 * byte-for-byte.
 */
ScenarioSpec singleTenantSpec(const std::string &workload,
                              const ExperimentConfig &config);

} // namespace cdpc::tenant

#endif // CDPC_TENANT_SPEC_H
