#include "cdpc/segments.h"

#include <algorithm>

#include "common/logging.h"
#include "ir/loop.h"

namespace cdpc
{

namespace
{

/** Mark pages covering byte range [b0, b1) of an array with @p cpu. */
void
markRange(std::vector<ProcSet> &pages, VAddr array_start,
          std::uint64_t page_bytes, PageNum first_vpn, std::uint64_t b0,
          std::uint64_t b1, CpuId cpu)
{
    if (b0 >= b1)
        return;
    PageNum from = (array_start + b0) / page_bytes;
    PageNum to = (array_start + b1 - 1) / page_bytes;
    for (PageNum v = from; v <= to; v++) {
        std::uint64_t idx = v - first_vpn;
        if (idx < pages.size())
            pages[idx].add(cpu);
    }
}

} // namespace

std::vector<Segment>
buildSegments(const AccessSummaries &summaries, const CdpcParams &params)
{
    fatalIf(params.numCpus == 0, "CDPC needs at least one CPU");
    fatalIf(params.pageBytes == 0, "CDPC needs a nonzero page size");

    // Process arrays in ascending address order so that a page shared
    // by two adjacent arrays is claimed exactly once.
    std::vector<ArrayExtent> arrays = summaries.arrays;
    std::sort(arrays.begin(), arrays.end(),
              [](const ArrayExtent &a, const ArrayExtent &b) {
                  return a.start < b.start;
              });

    std::vector<Segment> segments;
    PageNum last_claimed = 0;
    bool any_claimed = false;

    for (const ArrayExtent &arr : arrays) {
        if (!arr.analyzable || arr.sizeBytes == 0)
            continue;

        PageNum first_vpn = arr.start / params.pageBytes;
        PageNum last_vpn =
            (arr.start + arr.sizeBytes - 1) / params.pageBytes;
        if (any_claimed && first_vpn <= last_claimed)
            first_vpn = last_claimed + 1;
        if (first_vpn > last_vpn)
            continue;
        std::uint64_t npages = last_vpn - first_vpn + 1;

        std::vector<ProcSet> pages(npages);

        bool partitioned = false;
        for (const ArrayPartitionSummary &part : summaries.partitions) {
            if (part.arrayId != arr.arrayId || part.numUnits == 0)
                continue;
            partitioned = true;
            Partition sched{part.policy, part.dir};
            for (CpuId cpu = 0; cpu < params.numCpus; cpu++) {
                std::uint64_t lo, hi;
                sched.range(part.numUnits, params.numCpus, cpu, lo, hi);
                if (lo >= hi)
                    continue;
                std::uint64_t b0 = lo * part.unitBytes;
                std::uint64_t b1 =
                    std::min(hi * part.unitBytes, part.sizeBytes);
                markRange(pages, arr.start, params.pageBytes, first_vpn,
                          b0, b1, cpu);

                // Boundary communication: this CPU also touches the
                // neighbouring chunks' boundary units.
                for (const CommPatternSummary &comm : summaries.comms) {
                    if (comm.arrayId != arr.arrayId)
                        continue;
                    std::uint64_t b = comm.boundaryUnits;
                    bool low = comm.dir != CommDir::High;
                    bool high = comm.dir != CommDir::Low;
                    if (low) {
                        // Units just below this chunk.
                        std::uint64_t left_lo = lo >= b ? lo - b : 0;
                        markRange(pages, arr.start, params.pageBytes,
                                  first_vpn, left_lo * part.unitBytes,
                                  lo * part.unitBytes, cpu);
                    }
                    if (high) {
                        // Units just above this chunk.
                        std::uint64_t right_hi =
                            std::min(hi + b, part.numUnits);
                        markRange(pages, arr.start, params.pageBytes,
                                  first_vpn, hi * part.unitBytes,
                                  std::min(right_hi * part.unitBytes,
                                           part.sizeBytes),
                                  cpu);
                    }
                    if (comm.type == CommType::Rotate) {
                        if (lo == 0 && low) {
                            std::uint64_t w0 = part.numUnits >= b
                                                   ? part.numUnits - b
                                                   : 0;
                            markRange(pages, arr.start,
                                      params.pageBytes, first_vpn,
                                      w0 * part.unitBytes,
                                      std::min(part.numUnits *
                                                   part.unitBytes,
                                               part.sizeBytes),
                                      cpu);
                        }
                        if (hi == part.numUnits && high) {
                            markRange(pages, arr.start,
                                      params.pageBytes, first_vpn, 0,
                                      std::min(b * part.unitBytes,
                                               part.sizeBytes),
                                      cpu);
                        }
                    }
                }
            }
        }

        if (!partitioned) {
            // Analyzable but replicated: every CPU touches it.
            ProcSet everyone = ProcSet::all(params.numCpus);
            for (ProcSet &s : pages)
                s = everyone;
        }

        // Split into maximal runs of identical processor sets.
        std::uint64_t i = 0;
        while (i < npages) {
            if (pages[i].empty()) {
                i++;
                continue;
            }
            std::uint64_t j = i + 1;
            while (j < npages && pages[j] == pages[i])
                j++;
            Segment seg;
            seg.firstVpn = first_vpn + i;
            seg.numPages = j - i;
            seg.arrayId = arr.arrayId;
            seg.procs = pages[i];
            segments.push_back(seg);
            i = j;
        }

        last_claimed = last_vpn;
        any_claimed = true;
    }
    return segments;
}

} // namespace cdpc
