/**
 * @file
 * ProcSet: a set of processors, the key attribute of a uniform
 * access segment in the CDPC algorithm (paper, Section 5.2).
 */

#ifndef CDPC_CDPC_PROCSET_H
#define CDPC_CDPC_PROCSET_H

#include <bit>
#include <cstdint>
#include <string>

#include "common/types.h"

namespace cdpc
{

/** A set of CPUs as a bitmask (up to 32 CPUs). */
struct ProcSet
{
    std::uint32_t mask = 0;

    static ProcSet
    single(CpuId cpu)
    {
        return ProcSet{1u << cpu};
    }

    static ProcSet
    all(std::uint32_t ncpus)
    {
        return ProcSet{ncpus >= 32 ? ~0u : (1u << ncpus) - 1};
    }

    void add(CpuId cpu) { mask |= 1u << cpu; }
    bool contains(CpuId cpu) const { return (mask >> cpu) & 1u; }
    bool empty() const { return mask == 0; }
    unsigned count() const { return std::popcount(mask); }
    bool singleton() const { return count() == 1; }

    bool
    intersects(const ProcSet &o) const
    {
        return (mask & o.mask) != 0;
    }

    unsigned
    overlap(const ProcSet &o) const
    {
        return std::popcount(mask & o.mask);
    }

    bool operator==(const ProcSet &) const = default;

    /** Display form like "{0,1,5}". */
    std::string str() const;
};

} // namespace cdpc

#endif // CDPC_CDPC_PROCSET_H
