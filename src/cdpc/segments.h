/**
 * @file
 * Step 1 of the CDPC run-time algorithm: build the maximal uniform
 * access segments (paper, Section 5.2).
 *
 * "The algorithm starts by treating the entire virtual address space
 *  as a single access segment. It processes each array partitioning
 *  and communication pattern summary in turn, by splitting segments
 *  at boundaries of arrays and whenever the access pattern within
 *  the array changes."
 *
 * The result is a list of segments — maximal runs of consecutive
 * virtual pages within one array that are accessed by the same set
 * of processors — computed from the compiler's summaries plus the
 * parameters known only at start-up (CPU count, page size).
 */

#ifndef CDPC_CDPC_SEGMENTS_H
#define CDPC_CDPC_SEGMENTS_H

#include <cstdint>
#include <vector>

#include "cdpc/procset.h"
#include "common/types.h"
#include "compiler/summaries.h"

namespace cdpc
{

/** Machine parameters bound at program start-up. */
struct CdpcParams
{
    std::uint32_t numCpus = 1;
    std::uint64_t pageBytes = 512;
    std::uint64_t numColors = 256;
};

/** A maximal uniform access segment. */
struct Segment
{
    /** First virtual page (inclusive). */
    PageNum firstVpn = 0;
    /** Number of consecutive pages. */
    std::uint64_t numPages = 0;
    /** Array the segment belongs to. */
    std::uint32_t arrayId = 0;
    /** Processors that access these pages. */
    ProcSet procs;

    PageNum lastVpn() const { return firstVpn + numPages - 1; }
};

/**
 * Compute the uniform access segments for every analyzable array.
 *
 * Pages of unanalyzable arrays (and of analyzable arrays' pages that
 * nobody accesses) produce no segments; those pages keep the OS's
 * native mapping policy, as in the paper's su2cor discussion.
 */
std::vector<Segment> buildSegments(const AccessSummaries &summaries,
                                   const CdpcParams &params);

} // namespace cdpc

#endif // CDPC_CDPC_SEGMENTS_H
