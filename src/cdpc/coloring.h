/**
 * @file
 * Steps 4 and 5 of the CDPC run-time algorithm (paper, Section 5.2):
 * cyclic page ordering within each segment, then round-robin color
 * assignment over the final page order.
 *
 * Step 4: within a segment the pages are not laid out in ascending
 * virtual order; a starting point is chosen and the pages wrap
 * around, so that *conflicting* segments — same loop (group access),
 * intersecting processor sets, partial cache overlap — start at
 * colors spaced as far apart as possible.
 *
 * Step 5: walking the pages in this final order, colors are handed
 * out round robin, which also makes the order realizable on a
 * bin-hopping kernel purely by touch order (paper, Section 5.3).
 */

#ifndef CDPC_CDPC_COLORING_H
#define CDPC_CDPC_COLORING_H

#include <cstdint>
#include <vector>

#include "cdpc/ordering.h"
#include "cdpc/segments.h"
#include "vm/hints.h"

namespace cdpc
{

/** The output of Steps 4-5. */
struct ColoringResult
{
    /** Segment ids in final (Step 2 + Step 3) order. */
    std::vector<std::size_t> segmentOrder;
    /** Chosen Step-4 rotation per segment (indexed by segment id). */
    std::vector<std::uint64_t> rotation;
    /** All hinted pages in coloring order. */
    std::vector<PageNum> pageOrder;
    /** Final page -> color hints. */
    std::vector<ColorHint> hints;
    /** Start color of each segment's first *virtual* page. */
    std::vector<Color> startColor;
};

/**
 * Assign colors to every page of every segment.
 *
 * @param segs all segments (Step 1)
 * @param ordered_sets sets in Step-2 order with Step-3 segment order
 * @param groups group access info (conflict condition 1)
 * @param params machine parameters
 * @param cyclic enable Step 4 (disable for the ablation study)
 */
ColoringResult assignColors(const std::vector<Segment> &segs,
                            const std::vector<UniformSet> &ordered_sets,
                            const std::vector<GroupAccessPair> &groups,
                            const CdpcParams &params,
                            bool cyclic = true);

} // namespace cdpc

#endif // CDPC_CDPC_COLORING_H
