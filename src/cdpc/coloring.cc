#include "cdpc/coloring.h"

#include <algorithm>

#include "common/logging.h"

namespace cdpc
{

namespace
{

/** Circular distance between two colors. */
std::uint64_t
circDist(std::uint64_t a, std::uint64_t b, std::uint64_t c)
{
    std::uint64_t d = a > b ? a - b : b - a;
    return std::min(d, c - d);
}

/** Do circular intervals [a0, a0+la) and [b0, b0+lb) mod c overlap? */
bool
circOverlap(std::uint64_t a0, std::uint64_t la, std::uint64_t b0,
            std::uint64_t lb, std::uint64_t c)
{
    if (la >= c || lb >= c)
        return true;
    // Distance from a0 forward to b0 and vice versa.
    std::uint64_t fwd = (b0 + c - a0) % c;
    std::uint64_t bwd = (a0 + c - b0) % c;
    return fwd < la || bwd < lb;
}

bool
grouped(std::uint32_t a, std::uint32_t b,
        const std::vector<GroupAccessPair> &groups)
{
    if (a == b)
        return true;
    for (const GroupAccessPair &g : groups) {
        if ((g.arrayA == a && g.arrayB == b) ||
            (g.arrayA == b && g.arrayB == a)) {
            return true;
        }
    }
    return false;
}

} // namespace

ColoringResult
assignColors(const std::vector<Segment> &segs,
             const std::vector<UniformSet> &ordered_sets,
             const std::vector<GroupAccessPair> &groups,
             const CdpcParams &params, bool cyclic)
{
    fatalIf(params.numColors == 0, "coloring needs at least one color");
    const std::uint64_t c = params.numColors;

    ColoringResult res;
    res.rotation.assign(segs.size(), 0);
    res.startColor.assign(segs.size(), 0);

    for (const UniformSet &set : ordered_sets) {
        for (std::size_t id : set.segIds)
            res.segmentOrder.push_back(id);
    }

    std::uint64_t total_pages = 0;
    for (std::size_t id : res.segmentOrder)
        total_pages += segs[id].numPages;
    res.pageOrder.reserve(total_pages);
    res.hints.reserve(total_pages);

    std::uint64_t g = 0; // global page index
    std::vector<std::size_t> placed;
    for (std::size_t id : res.segmentOrder) {
        const Segment &seg = segs[id];
        std::uint64_t len = seg.numPages;
        std::uint64_t base_color = g % c;

        // Step 4: pick the rotation that spaces this segment's start
        // color away from the start colors of the conflicting
        // segments already placed.
        std::uint64_t best_x = 0;
        if (cyclic) {
            std::vector<std::uint64_t> rivals;
            for (std::size_t pid : placed) {
                const Segment &e = segs[pid];
                if (!grouped(seg.arrayId, e.arrayId, groups))
                    continue;
                if (!seg.procs.intersects(e.procs))
                    continue;
                if (!circOverlap(base_color, len,
                                 res.startColor[pid], e.numPages, c)) {
                    continue;
                }
                rivals.push_back(res.startColor[pid]);
            }
            if (!rivals.empty()) {
                std::uint64_t best_score = 0;
                std::uint64_t limit = std::min(len, c);
                for (std::uint64_t x = 0; x < limit; x++) {
                    std::uint64_t color = (base_color + x) % c;
                    std::uint64_t score = c;
                    for (std::uint64_t rc : rivals)
                        score = std::min(score, circDist(color, rc, c));
                    if (x == 0 || score > best_score) {
                        best_score = score;
                        best_x = x;
                    }
                }
            }
        }
        std::uint64_t rot = (len - best_x % len) % len;
        res.rotation[id] = rot;
        res.startColor[id] =
            static_cast<Color>((base_color + best_x) % c);

        // Step 5: emit pages in rotated order; colors are round robin
        // over the global order.
        for (std::uint64_t i = 0; i < len; i++) {
            PageNum vpn = seg.firstVpn + (rot + i) % len;
            Color color = static_cast<Color>((g + i) % c);
            res.pageOrder.push_back(vpn);
            res.hints.push_back(ColorHint{vpn, color});
        }
        g += len;
        placed.push_back(id);
    }
    return res;
}

} // namespace cdpc
