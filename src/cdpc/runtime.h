/**
 * @file
 * The CDPC run-time library (paper, Section 5.2-5.3): the start-up
 * code linked into the application that turns the compiler's access
 * summaries plus the machine parameters into page-color hints and
 * hands them to the operating system.
 *
 * Two kernel-side realizations are provided, matching the paper's
 * two implementations:
 *  - applyHints(): the madvise-style single system call (IRIX);
 *  - applyByTouchOrder(): no kernel change at all — touch the pages
 *    serially in coloring order and let the native bin-hopping
 *    policy produce the desired mapping (Digital UNIX). Step 5's
 *    round-robin color assignment makes the two exactly equivalent
 *    up to a constant rotation of all colors.
 */

#ifndef CDPC_CDPC_RUNTIME_H
#define CDPC_CDPC_RUNTIME_H

#include <cstdint>

#include "cdpc/coloring.h"
#include "cdpc/ordering.h"
#include "cdpc/segments.h"
#include "compiler/summaries.h"
#include "machine/config.h"
#include "vm/hints.h"
#include "vm/virtual_memory.h"

namespace cdpc
{

/** Everything the run-time library computed for one program. */
struct CdpcPlan
{
    CdpcParams params;
    std::vector<Segment> segments;
    /** Uniform access sets in final (Step 2) order. */
    std::vector<UniformSet> sets;
    ColoringResult coloring;
};

/** Tuning knobs (ablation hooks). */
struct CdpcOptions
{
    /** Step 4 cyclic assignment (conflict spacing). */
    bool cyclicAssignment = true;
    /** Steps 2-3 greedy ordering; false = raw address order. */
    bool greedyOrdering = true;
};

/** Extract the parameters CDPC needs from a machine description. */
CdpcParams cdpcParams(const MachineConfig &config);

/** Run the full five-step algorithm. */
CdpcPlan computeCdpcPlan(const AccessSummaries &summaries,
                         const CdpcParams &params,
                         const CdpcOptions &opts = {});

/** Install the plan's hints into the kernel's hint table (IRIX). */
void applyHints(const CdpcPlan &plan, CdpcHintPolicy &policy);

/**
 * Realize the plan by touch order on a bin-hopping kernel (Digital
 * UNIX): pre-fault the pages serially in coloring order.
 * @return the number of pages touched (each cost one serialized
 *         page fault, the drawback the paper notes).
 */
std::uint64_t applyByTouchOrder(const CdpcPlan &plan, VirtualMemory &vm);

} // namespace cdpc

#endif // CDPC_CDPC_RUNTIME_H
