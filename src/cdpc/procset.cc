#include "cdpc/procset.h"

#include <sstream>

namespace cdpc
{

std::string
ProcSet::str() const
{
    std::ostringstream os;
    os << "{";
    bool first = true;
    for (CpuId c = 0; c < 32; c++) {
        if (contains(c)) {
            if (!first)
                os << ",";
            os << c;
            first = false;
        }
    }
    os << "}";
    return os.str();
}

} // namespace cdpc
