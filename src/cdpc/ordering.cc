#include "cdpc/ordering.h"

#include <algorithm>

#include "common/logging.h"

namespace cdpc
{

std::vector<UniformSet>
groupIntoSets(const std::vector<Segment> &segs)
{
    std::vector<UniformSet> sets;
    for (std::size_t i = 0; i < segs.size(); i++) {
        auto it = std::find_if(sets.begin(), sets.end(),
                               [&](const UniformSet &s) {
                                   return s.procs == segs[i].procs;
                               });
        if (it == sets.end()) {
            sets.push_back(UniformSet{segs[i].procs, {i}});
        } else {
            it->segIds.push_back(i);
        }
    }
    return sets;
}

std::vector<UniformSet>
orderUniformSets(std::vector<UniformSet> sets)
{
    std::size_t n = sets.size();
    if (n <= 1)
        return sets;

    std::vector<bool> visited(n, false);
    std::vector<std::size_t> path;
    path.reserve(n);

    // Deterministic starting node: the singleton set with the
    // smallest mask; failing that, the smallest set.
    auto better_start = [&](std::size_t a, std::size_t b) {
        unsigned ca = sets[a].procs.count();
        unsigned cb = sets[b].procs.count();
        if (ca != cb)
            return ca < cb;
        return sets[a].procs.mask < sets[b].procs.mask;
    };

    // Phase 1: greedy path over the subgraph of small (1-2 CPU) sets.
    auto in_subgraph = [&](std::size_t i) {
        return sets[i].procs.count() <= 2;
    };
    bool subgraph_nonempty = false;
    for (std::size_t i = 0; i < n; i++)
        subgraph_nonempty |= in_subgraph(i);

    if (subgraph_nonempty) {
        std::size_t start = n;
        for (std::size_t i = 0; i < n; i++) {
            if (in_subgraph(i) && (start == n || better_start(i, start)))
                start = i;
        }
        path.push_back(start);
        visited[start] = true;

        for (;;) {
            std::size_t cur = path.back();
            // Prefer an adjacent unvisited subgraph node with maximum
            // processor overlap; smallest mask breaks ties.
            std::size_t next = n;
            unsigned best_overlap = 0;
            for (std::size_t i = 0; i < n; i++) {
                if (visited[i] || !in_subgraph(i))
                    continue;
                unsigned ov = sets[cur].procs.overlap(sets[i].procs);
                if (ov == 0)
                    continue;
                if (next == n || ov > best_overlap ||
                    (ov == best_overlap &&
                     sets[i].procs.mask < sets[next].procs.mask)) {
                    next = i;
                    best_overlap = ov;
                }
            }
            if (next == n) {
                // No adjacent node; jump to the best remaining
                // subgraph node, if any.
                for (std::size_t i = 0; i < n; i++) {
                    if (!visited[i] && in_subgraph(i) &&
                        (next == n || better_start(i, next))) {
                        next = i;
                    }
                }
                if (next == n)
                    break;
            }
            path.push_back(next);
            visited[next] = true;
        }
    }

    // Phase 2: insert every remaining node next to the path node with
    // the maximum processor overlap.
    for (std::size_t i = 0; i < n; i++) {
        if (visited[i])
            continue;
        if (path.empty()) {
            path.push_back(i);
            visited[i] = true;
            continue;
        }
        std::size_t best_pos = 0;
        unsigned best_overlap = 0;
        for (std::size_t p = 0; p < path.size(); p++) {
            unsigned ov = sets[i].procs.overlap(sets[path[p]].procs);
            if (p == 0 || ov > best_overlap) {
                best_overlap = ov;
                best_pos = p;
            }
        }
        path.insert(path.begin() +
                        static_cast<std::ptrdiff_t>(best_pos) + 1,
                    i);
        visited[i] = true;
    }

    std::vector<UniformSet> ordered;
    ordered.reserve(n);
    for (std::size_t idx : path)
        ordered.push_back(std::move(sets[idx]));
    return ordered;
}

void
orderSegmentsWithinSets(std::vector<UniformSet> &sets,
                        const std::vector<Segment> &segs,
                        const std::vector<GroupAccessPair> &groups)
{
    auto grouped = [&](std::uint32_t a, std::uint32_t b) {
        if (a == b)
            return true;
        for (const GroupAccessPair &g : groups) {
            if ((g.arrayA == a && g.arrayB == b) ||
                (g.arrayA == b && g.arrayB == a)) {
                return true;
            }
        }
        return false;
    };

    for (UniformSet &set : sets) {
        std::size_t n = set.segIds.size();
        if (n <= 1)
            continue;

        std::vector<bool> visited(n, false);
        std::vector<std::size_t> path; // positions within set.segIds
        path.reserve(n);

        auto vpn_of = [&](std::size_t pos) {
            return segs[set.segIds[pos]].firstVpn;
        };

        // Start from the smallest virtual address.
        std::size_t start = 0;
        for (std::size_t i = 1; i < n; i++) {
            if (vpn_of(i) < vpn_of(start))
                start = i;
        }
        path.push_back(start);
        visited[start] = true;

        while (path.size() < n) {
            std::size_t cur = path.back();
            std::uint32_t cur_arr = segs[set.segIds[cur]].arrayId;
            std::size_t next = n;
            // Adjacent = group-access partner; tie-break smallest
            // virtual address.
            for (std::size_t i = 0; i < n; i++) {
                if (visited[i])
                    continue;
                if (!grouped(cur_arr, segs[set.segIds[i]].arrayId))
                    continue;
                if (next == n || vpn_of(i) < vpn_of(next))
                    next = i;
            }
            if (next == n) {
                // Stuck: continue from the smallest-address segment.
                for (std::size_t i = 0; i < n; i++) {
                    if (!visited[i] && (next == n ||
                                        vpn_of(i) < vpn_of(next))) {
                        next = i;
                    }
                }
            }
            path.push_back(next);
            visited[next] = true;
        }

        std::vector<std::size_t> reordered;
        reordered.reserve(n);
        for (std::size_t pos : path)
            reordered.push_back(set.segIds[pos]);
        set.segIds = std::move(reordered);
    }
}

} // namespace cdpc
