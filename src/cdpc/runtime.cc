#include "cdpc/runtime.h"

#include "common/logging.h"

namespace cdpc
{

CdpcParams
cdpcParams(const MachineConfig &config)
{
    CdpcParams p;
    p.numCpus = config.numCpus;
    p.pageBytes = config.pageBytes;
    p.numColors = config.numColors();
    return p;
}

CdpcPlan
computeCdpcPlan(const AccessSummaries &summaries, const CdpcParams &params,
                const CdpcOptions &opts)
{
    CdpcPlan plan;
    plan.params = params;

    // Step 1: maximal uniform access segments.
    plan.segments = buildSegments(summaries, params);

    // Step 2: order the uniform access sets.
    std::vector<UniformSet> sets = groupIntoSets(plan.segments);
    if (opts.greedyOrdering)
        sets = orderUniformSets(std::move(sets));

    // Step 3: order the segments within each set.
    if (opts.greedyOrdering)
        orderSegmentsWithinSets(sets, plan.segments, summaries.groups);
    plan.sets = std::move(sets);

    // Steps 4-5: cyclic assignment and round-robin coloring.
    plan.coloring = assignColors(plan.segments, plan.sets,
                                 summaries.groups, params,
                                 opts.cyclicAssignment);
    return plan;
}

void
applyHints(const CdpcPlan &plan, CdpcHintPolicy &policy)
{
    policy.madviseColors(plan.coloring.hints);
}

std::uint64_t
applyByTouchOrder(const CdpcPlan &plan, VirtualMemory &vm)
{
    for (PageNum vpn : plan.coloring.pageOrder)
        vm.touch(vpn * vm.pageBytes(), 0);
    return plan.coloring.pageOrder.size();
}

} // namespace cdpc
