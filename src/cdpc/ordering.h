/**
 * @file
 * Steps 2 and 3 of the CDPC run-time algorithm (paper, Section 5.2):
 * ordering the uniform access sets, then the segments within each.
 *
 * Both steps are path-building problems on small undirected graphs,
 * solved with the paper's greedy heuristics:
 *
 *  Step 2 — nodes are uniform access sets, edges join sets whose
 *  processor sets intersect. Start from a singleton-processor node,
 *  extend to adjacent unvisited nodes (the subgraph of one- and
 *  two-processor sets first), then insert the remaining nodes next
 *  to the path node with maximum processor overlap. This clusters
 *  the pages of each processor.
 *
 *  Step 3 — within a set, nodes are segments and edges join
 *  segments of arrays listed together in the group access
 *  information; ties break toward the smallest virtual address.
 */

#ifndef CDPC_CDPC_ORDERING_H
#define CDPC_CDPC_ORDERING_H

#include <cstdint>
#include <vector>

#include "cdpc/segments.h"
#include "compiler/summaries.h"

namespace cdpc
{

/** A group of segments sharing one processor set. */
struct UniformSet
{
    ProcSet procs;
    /** Indices into the segment vector. */
    std::vector<std::size_t> segIds;
};

/** Group segments into uniform access sets (same processor set). */
std::vector<UniformSet> groupIntoSets(const std::vector<Segment> &segs);

/** Step 2: order the uniform access sets; returns a new ordering. */
std::vector<UniformSet>
orderUniformSets(std::vector<UniformSet> sets);

/**
 * Step 3: order each set's segments along the group-access graph
 * (in place).
 */
void orderSegmentsWithinSets(std::vector<UniformSet> &sets,
                             const std::vector<Segment> &segs,
                             const std::vector<GroupAccessPair> &groups);

} // namespace cdpc

#endif // CDPC_CDPC_ORDERING_H
