/**
 * @file
 * ConflictProfiler: streaming conflict-attribution engine and
 * recoloring advisor (DESIGN.md §15).
 *
 * The memory system reports raw events through ConflictProfilerHook
 * (mem/profile_hook.h); this class turns them into an answer to the
 * question the paper's argument hinges on but the repro could not
 * previously ask: *who evicted whom on which color*. An entity is an
 * array segment of the running workload (the same owner-lookup rule
 * harness/attribution uses) or a tenant in multi-tenant scenarios.
 *
 * Attribution model: every eviction of a valid external-cache line
 * records (cpu, line) → evictor entity, where the evictor is the
 * entity of the reference whose fill displaced the line (replacement),
 * the recolor sentinel (purge), or the foreign tenant (context
 * switch). When a later demand miss on that line classifies as a
 * conflict, the faulting address *is* the displaced data, so the
 * victim entity comes from the faulting va, the color from the
 * physical page, and the matrix cell
 * matrix[color][evictor][victim] increments — exactly once per
 * classified conflict miss, which is what makes the per-color totals
 * reconcile exactly with miss_classify's counters. Lines whose last
 * eviction predates profiling (or was consumed) attribute to the
 * "(extern)" sentinel; totals still reconcile.
 */

#ifndef CDPC_OBS_PROFILE_H
#define CDPC_OBS_PROFILE_H

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "machine/index_function.h"
#include "mem/profile_hook.h"

namespace cdpc::obs
{

/** One va-range → entity binding (an array segment, or a tenant
 *  with bytes == 0, which makes it unaddressable and immovable). */
struct ProfileEntity
{
    std::string name;
    VAddr base = 0;
    std::uint64_t bytes = 0;
};

/** One advised recoloring move, derived from a ranked matrix cell. */
struct ProfileAdvice
{
    /** The contested cell: entity ids index ProfileResult::entities. */
    std::uint32_t color = 0;
    std::uint32_t evictor = 0;
    std::uint32_t victim = 0;
    std::uint64_t conflicts = 0;

    /**
     * The proposal: remap @c moveEntity's conflicting pages at
     * @c color (exactly @c movePageList, the pages the profiler saw
     * conflict there) to @c toColor. Moving the slice rather than
     * the whole entity keeps the move legal for entities far larger
     * than the cache behind one color.
     */
    std::uint32_t moveEntity = 0;
    std::uint32_t toColor = 0;
    /** Pages the move remaps (== movePageList.size()). */
    std::uint64_t movePages = 0;
    /** The mover's vpns with observed conflicts at @c color. */
    std::vector<PageNum> movePageList;
    /**
     * Predicted conflict-miss change (negative = improvement):
     * −(mover's conflict involvement at the contested color) scaled
     * back up by the destination color's relative load.
     */
    double predictedDelta = 0;
    /**
     * Measured conflict-miss change of the validation re-run
     * (after − before); meaningful only when @c validated.
     */
    double measuredDelta = 0;
    bool validated = false;
};

/** Everything a profiled run learned, ready for rendering. */
struct ProfileResult
{
    bool enabled = false;
    std::uint32_t numColors = 0;
    std::vector<std::string> entities;
    /** Dense [color][evictor][victim] conflict counts. */
    std::vector<std::uint64_t> matrix;
    /** Per-color conflict totals (row sums of the matrix). */
    std::vector<std::uint64_t> colorConflicts;
    /** End-of-run resident external-cache lines per color. */
    std::vector<std::uint64_t> occupancy;
    std::uint64_t totalConflicts = 0;
    /** miss_classify's conflict count on the same run (harness
     *  fills this; reconciled() must hold by construction). */
    std::uint64_t classifiedConflicts = 0;
    /** Ranked advice, best predicted improvement first. */
    std::vector<ProfileAdvice> advice;

    std::uint64_t
    cell(std::uint32_t color, std::uint32_t evictor,
         std::uint32_t victim) const
    {
        std::size_t n = entities.size();
        return matrix[(color * n + evictor) * n + victim];
    }

    bool reconciled() const
    {
        return totalConflicts == classifiedConflicts;
    }
};

/** The streaming engine; see the file comment for the model. */
class ConflictProfiler final : public ConflictProfilerHook
{
  public:
    struct Config
    {
        std::uint32_t numCpus = 1;
        std::uint32_t numColors = 1;
        std::uint64_t pageBytes = 4096;
        std::uint32_t lineBytes = 64;
        /**
         * Cache bytes behind one page color (l2 size / colors): a
         * conflicting-page slice larger than this would overflow its
         * destination color, so the advisor refuses the move.
         */
        std::uint64_t colorCapacityBytes = 0;
        /**
         * The machine's page→color mapping. The same-set⇒same-color
         * inference behind the evictor-side page evidence only
         * attributes to the right color cell if the profiler colors
         * pages exactly as the cache does — `ppn % numColors` is
         * wrong on sliced-hash / DRAM-cache machines. When left
         * default-constructed, falls back to modulo over numColors.
         */
        IndexFunction index;
        /** Application arrays (or tenants, with bytes == 0). */
        std::vector<ProfileEntity> entities;
    };

    explicit ConflictProfiler(const Config &cfg);

    // --- ConflictProfilerHook ----------------------------------------
    void onRefStart(CpuId cpu, VAddr va) override;
    void onEvict(CpuId cpu, Addr victim_line, EvictCause cause) override;
    void onConflictMiss(CpuId cpu, VAddr va, PAddr pa,
                        Cycles now) override;
    void onReset() override;

    // --- Tenant mode --------------------------------------------------
    /** Attribute every reference/victim of this rig to one tenant. */
    void setSelfEntity(std::uint32_t id);
    /** Entity charged for ContextSwitch evictions until cleared. */
    void setContextEvictor(std::uint32_t id);
    void clearContextEvictor();

    // --- Introspection -------------------------------------------------
    /** Entity of @p va: its array segment, or the "(other)" id. */
    std::uint32_t entityOf(VAddr va) const;
    std::size_t numEntities() const { return names_.size(); }
    std::uint32_t otherEntity() const { return otherId_; }
    std::uint32_t recolorEntity() const { return recolorId_; }
    std::uint32_t externEntity() const { return externId_; }

    /** Cumulative per-color conflict totals (snapshot sampling). */
    const std::vector<std::uint64_t> &colorConflicts() const
    {
        return colorConflicts_;
    }
    std::uint64_t totalConflicts() const { return totalConflicts_; }

    /**
     * Freeze the accumulated matrix into a renderable result and run
     * the advisor over it. @p occupancy is the end-of-run per-color
     * occupancy sample (MemorySystem::colorOccupancy()); empty falls
     * back to conflict totals as the load measure.
     */
    ProfileResult result(std::vector<std::uint64_t> occupancy,
                         std::size_t max_advice = 16) const;

  private:
    struct Range
    {
        VAddr base = 0;
        VAddr end = 0;
        std::uint32_t id = 0;
    };

    bool movable(std::uint32_t id) const;

    Config cfg_;
    std::vector<std::string> names_;
    std::vector<std::uint64_t> entityBytes_;
    /** Sorted, disjoint va ranges for entityOf(). */
    std::vector<Range> ranges_;
    std::uint32_t otherId_ = 0;
    std::uint32_t recolorId_ = 0;
    std::uint32_t externId_ = 0;
    /** Tenant mode: every local reference resolves to this id. */
    std::uint32_t selfId_ = ~0u;
    std::uint32_t ctxEvictorId_ = 0;
    unsigned lineShift_ = 0;

    /** Who last evicted a line, and from which of its own pages. */
    struct EvictRec
    {
        std::uint32_t id = 0;
        PageNum vpn = 0;
        /** Replace evictions know the evictor's faulting page;
         *  recolor/context-switch evictions do not. */
        bool hasPage = false;
    };

    /** Entity of the reference currently in its external-cache leg. */
    std::vector<std::uint32_t> currentRef_;
    /** Its va (the evictor-page evidence for Replace evictions). */
    std::vector<VAddr> currentRefVa_;
    /** Per CPU: line → record of the last eviction of that line. */
    std::vector<std::unordered_map<Addr, EvictRec>> lastEvictor_;

    std::vector<std::uint64_t> matrix_;
    std::vector<std::uint64_t> colorConflicts_;
    std::uint64_t totalConflicts_ = 0;
    /**
     * (vpn * numColors + color) → conflicts that page was involved in
     * at that color (victim side from the faulting va; evictor side
     * from the displacing reference's va — a set conflict implies the
     * same page color, so both pages live on the contested color).
     * This is what turns a matrix cell into a concrete page list the
     * advisor can remap.
     */
    std::unordered_map<std::uint64_t, std::uint64_t> pageConflicts_;
};

} // namespace cdpc::obs

#endif // CDPC_OBS_PROFILE_H
