/**
 * @file
 * Event tracer: Chrome trace_event JSON output, loadable in Perfetto
 * (ui.perfetto.dev) or chrome://tracing.
 *
 * Two time domains keep traces useful without breaking determinism:
 *
 *  - Experiment/sim events are stamped with *simulated* time. Each
 *    job gets a logical microsecond axis: fixed-width spans for the
 *    setup phases (summaries, coloring, ...), then the simulate span
 *    whose interior timestamps are simulated cycles / 1000. These
 *    stamps are a pure function of the job spec, so the events a job
 *    emits are identical no matter which worker runs it.
 *  - Runner events (queue wait, attempts, retry/quarantine) are
 *    stamped with wall-clock microseconds — they describe host
 *    behaviour, which is the one thing sim time cannot show.
 *
 * Within a trace, pid identifies the job (pid 0 = the process
 * itself, pid j+1 = batch job j); tid separates the domains
 * (kRunnerTid = wall-clock runner lane, kSimTid = sim-time lane).
 *
 * Tracing is process-global and off unless installTraceWriter() ran;
 * every emit helper starts with the same relaxed-load gate the
 * metrics macros use, so instrumentation sites are free when no
 * trace is requested.
 */

#ifndef CDPC_OBS_TRACE_H
#define CDPC_OBS_TRACE_H

#include <atomic>
#include <cstdint>

#include <string>
#include <vector>

#include "common/types.h"

namespace cdpc::obs
{

/** tid of the wall-clock runner lane of a job's trace track. */
inline constexpr int kRunnerTid = 0;
/** tid of the simulated-time experiment lane. */
inline constexpr int kSimTid = 1;

/** One "key": value pair of a trace event's args object. */
struct TraceArg
{
    TraceArg(const char *k, const char *v);
    TraceArg(const char *k, const std::string &v);
    TraceArg(const char *k, double v);
    TraceArg(const char *k, std::uint64_t v);
    TraceArg(const char *k, std::int64_t v);
    TraceArg(const char *k, std::uint32_t v)
        : TraceArg(k, static_cast<std::uint64_t>(v))
    {}
    TraceArg(const char *k, int v)
        : TraceArg(k, static_cast<std::int64_t>(v))
    {}

    std::string key;
    /** Pre-rendered JSON value (quoted/escaped for strings). */
    std::string json;
};

/** Args list; brace-init at call sites, dynamic for counters. */
using TraceArgs = std::vector<TraceArg>;

/** @return whether a trace writer is installed (one relaxed load). */
bool traceActive();

/**
 * Open @p path and start collecting events process-wide; also
 * registers the fault-point fire observer so armed-site fires appear
 * as instants. fatal() when the file cannot be opened.
 */
void installTraceWriter(const std::string &path);

/** Flush the footer, close the file, stop collecting. Idempotent. */
void finalizeTrace();

/** Wall-clock µs since the first call (process-local epoch). */
double wallUs();

/**
 * The per-thread trace context: which job's track (pid) events land
 * on, whether sim-level events are wanted for this job, and the
 * job's logical clock.
 */
struct JobTraceContext
{
    int pid = 0;
    /** Emit sim/experiment events (batch jobs opt in per spec). */
    bool simEvents = true;
    /** Logical cursor for fixed-width setup-phase spans (µs). */
    double cursorUs = 0;
    /** µs of simulated-cycle zero within the active SimSpan. */
    double simUsBase = 0;
    /** Latest sim-time stamp (µs); instants are emitted here. */
    double simNowUs = 0;
    /** Sampling tick for high-frequency bus-stall events. */
    std::uint64_t busStallTick = 0;
};

/** The calling thread's context (a default pid-0 one if none set). */
JobTraceContext &traceContext();

/**
 * RAII: route the calling thread's events to job @p pid until scope
 * exit, and name the track after the job. Installed by the runner
 * around each attempt; works on watchdog executor threads too since
 * the context is thread-local.
 */
class ScopedJobTrace
{
  public:
    ScopedJobTrace(int pid, bool sim_events, const std::string &name);
    ~ScopedJobTrace();

    ScopedJobTrace(const ScopedJobTrace &) = delete;
    ScopedJobTrace &operator=(const ScopedJobTrace &) = delete;

  private:
    JobTraceContext ctx_;
    JobTraceContext *prev_;
};

/**
 * RAII span for a setup phase (summaries, coloring, plan, ...) on
 * the sim lane. Occupies a fixed 1000 µs logical slot so phases
 * stack left-to-right regardless of host speed. Exception-safe: the
 * destructor closes the span, keeping B/E balanced even when a
 * fault-injected phase throws.
 */
class PhaseSpan
{
  public:
    explicit PhaseSpan(const char *name);
    ~PhaseSpan() { end(); }
    void end();

    PhaseSpan(const PhaseSpan &) = delete;
    PhaseSpan &operator=(const PhaseSpan &) = delete;

  private:
    const char *name_;
    bool open_ = false;
};

/**
 * RAII span for the simulation itself. Interior timestamps advance
 * with setSimCycles(); the span closes at the last simulated stamp.
 */
class SimSpan
{
  public:
    explicit SimSpan(const char *name);
    ~SimSpan() { end(); }
    void end();

    SimSpan(const SimSpan &) = delete;
    SimSpan &operator=(const SimSpan &) = delete;

  private:
    const char *name_;
    bool open_ = false;
};

/** Advance the sim-time stamp to simulated cycle @p c (monotonic). */
void setSimCycles(Cycles c);

/** Instant event on the sim lane at the current sim-time stamp. */
void simInstant(const char *name, const TraceArgs &args);

/** simInstant() with an explicit event category ("cat" field). */
void simInstant(const char *name, const char *cat,
                const TraceArgs &args);

/**
 * simInstant() for high-frequency sites (bus stalls): emits every
 * @p every-th call per job context, so files stay small and the
 * subset emitted is deterministic.
 */
void simInstantSampled(const char *name, std::uint64_t every,
                       const TraceArgs &args);

/** simInstantSampled() with an explicit event category. */
void simInstantSampled(const char *name, const char *cat,
                       std::uint64_t every, const TraceArgs &args);

/** Counter ('C') event on job @p pid's sim lane. */
void counterEvent(const char *name, int pid, double ts_us,
                  const TraceArgs &args);

/** Wall-clock B on job @p pid's runner lane. */
void runnerBegin(const char *name, int pid, const TraceArgs &args);

/** Wall-clock E matching runnerBegin(). */
void runnerEnd(const char *name, int pid);

/** Wall-clock span with explicit bounds (e.g. queue wait). */
void runnerSpan(const char *name, int pid, double begin_us,
                double end_us, const TraceArgs &args);

/** Wall-clock instant on the runner lane (retry, quarantine). */
void runnerInstant(const char *name, int pid, const TraceArgs &args);

} // namespace cdpc::obs

#endif // CDPC_OBS_TRACE_H
