#include "obs/metrics.h"

#include <array>
#include <bit>
#include <deque>
#include <fstream>
#include <map>
#include <mutex>

#include "common/logging.h"

namespace cdpc::obs
{

std::atomic<bool> gMetricsEnabled{false};

void
setMetricsEnabled(bool enabled)
{
    gMetricsEnabled.store(enabled, std::memory_order_relaxed);
}

void
Histogram::observe(std::uint64_t v)
{
    unsigned b = v == 0 ? 0 : 64 - std::countl_zero(v);
    if (b >= kBuckets)
        b = kBuckets - 1;
    buckets_[b].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(v, std::memory_order_relaxed);
    // Lock-free running max.
    std::uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v,
                                       std::memory_order_relaxed)) {
    }
}

void
Histogram::reset()
{
    for (auto &b : buckets_)
        b.store(0, std::memory_order_relaxed);
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    max_.store(0, std::memory_order_relaxed);
}

/**
 * Metric storage: std::deque gives stable addresses under growth, so
 * handles returned by counter()/gauge()/histogram() survive later
 * registrations; std::map keeps the JSON output name-sorted for
 * free.
 */
struct MetricsRegistry::Impl
{
    mutable std::mutex mutex;
    std::deque<Counter> counters;
    std::deque<Gauge> gauges;
    std::deque<Histogram> histograms;
    std::map<std::string, Counter *> counterByName;
    std::map<std::string, Gauge *> gaugeByName;
    std::map<std::string, Histogram *> histogramByName;
};

MetricsRegistry::MetricsRegistry() : impl_(new Impl) {}

MetricsRegistry::~MetricsRegistry()
{
    delete impl_;
}

Counter &
MetricsRegistry::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->counterByName.find(name);
    if (it != impl_->counterByName.end())
        return *it->second;
    impl_->counters.emplace_back();
    Counter *c = &impl_->counters.back();
    impl_->counterByName.emplace(name, c);
    return *c;
}

Gauge &
MetricsRegistry::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->gaugeByName.find(name);
    if (it != impl_->gaugeByName.end())
        return *it->second;
    impl_->gauges.emplace_back();
    Gauge *g = &impl_->gauges.back();
    impl_->gaugeByName.emplace(name, g);
    return *g;
}

Histogram &
MetricsRegistry::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->histogramByName.find(name);
    if (it != impl_->histogramByName.end())
        return *it->second;
    impl_->histograms.emplace_back();
    Histogram *h = &impl_->histograms.back();
    impl_->histogramByName.emplace(name, h);
    return *h;
}

const Counter *
MetricsRegistry::findCounter(const std::string &name) const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    auto it = impl_->counterByName.find(name);
    return it == impl_->counterByName.end() ? nullptr : it->second;
}

void
MetricsRegistry::resetAll()
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    for (Counter &c : impl_->counters)
        c.reset();
    for (Gauge &g : impl_->gauges)
        g.reset();
    for (Histogram &h : impl_->histograms)
        h.reset();
}

namespace
{

std::string
jsonQuoted(const std::string &s)
{
    // Metric names are identifiers ("runner.job_ms"); escape the two
    // characters that could break the quoting anyway.
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\')
            out += '\\';
        out += c;
    }
    out += '"';
    return out;
}

} // namespace

void
MetricsRegistry::writeJson(std::ostream &out) const
{
    std::lock_guard<std::mutex> lock(impl_->mutex);
    out << "{\n  \"counters\": {";
    bool first = true;
    for (const auto &[name, c] : impl_->counterByName) {
        out << (first ? "\n" : ",\n") << "    " << jsonQuoted(name)
            << ": " << c->value();
        first = false;
    }
    out << (first ? "}" : "\n  }") << ",\n  \"gauges\": {";
    first = true;
    for (const auto &[name, g] : impl_->gaugeByName) {
        out << (first ? "\n" : ",\n") << "    " << jsonQuoted(name)
            << ": " << g->value();
        first = false;
    }
    out << (first ? "}" : "\n  }") << ",\n  \"histograms\": {";
    first = true;
    for (const auto &[name, h] : impl_->histogramByName) {
        // One consistent copy of the buckets: the quantiles and the
        // rendered buckets must agree even while observers run.
        std::array<std::uint64_t, Histogram::kBuckets> counts{};
        std::uint64_t total = 0;
        for (unsigned b = 0; b < Histogram::kBuckets; b++) {
            counts[b] = h->bucket(b);
            total += counts[b];
        }
        // Nearest-rank quantile over the power-of-two bucket bounds:
        // the reported value is the exclusive upper bound of the
        // bucket holding the rank-th observation.
        auto quantile = [&](double q) -> std::uint64_t {
            if (total == 0)
                return 0;
            auto rank = static_cast<std::uint64_t>(
                q * static_cast<double>(total) + 0.9999999);
            if (rank < 1)
                rank = 1;
            std::uint64_t cum = 0;
            for (unsigned b = 0; b < Histogram::kBuckets; b++) {
                cum += counts[b];
                if (cum >= rank)
                    return b == 0 ? 1 : (1ull << b);
            }
            return 1ull << (Histogram::kBuckets - 1);
        };
        out << (first ? "\n" : ",\n") << "    " << jsonQuoted(name)
            << ": {\"count\": " << h->count()
            << ", \"sum\": " << h->sum() << ", \"max\": " << h->max()
            << ", \"p50\": " << quantile(0.50)
            << ", \"p95\": " << quantile(0.95)
            << ", \"p99\": " << quantile(0.99) << ", \"buckets\": {";
        bool bfirst = true;
        for (unsigned b = 0; b < Histogram::kBuckets; b++) {
            std::uint64_t n = counts[b];
            if (n == 0)
                continue;
            // Key: exclusive upper bound of the bucket ("lt").
            std::uint64_t bound = b == 0 ? 1 : (1ull << b);
            if (!bfirst)
                out << ", ";
            out << "\"" << bound << "\": " << n;
            bfirst = false;
        }
        out << "}}";
        first = false;
    }
    out << (first ? "}" : "\n  }") << "\n}\n";
}

void
MetricsRegistry::writeJsonFile(const std::string &path) const
{
    std::ofstream out(path, std::ios::trunc);
    fatalIf(!out, "cannot open metrics file ", path);
    writeJson(out);
}

MetricsRegistry &
MetricsRegistry::global()
{
    // Leaked on purpose: instrumented library code caches handles in
    // function-local statics whose last use can be arbitrarily late
    // in process shutdown.
    static MetricsRegistry *reg = new MetricsRegistry;
    return *reg;
}

} // namespace cdpc::obs
