#include "obs/trace.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <mutex>

#include "common/faultpoint.h"
#include "common/logging.h"
#include "obs/metrics.h"

namespace cdpc::obs
{

namespace
{

/** Width of one setup-phase slot on the logical time axis. */
constexpr double kPhaseWidthUs = 1000.0;

std::string
jsonString(const std::string &s)
{
    std::string out = "\"";
    for (char c : s) {
        if (c == '"' || c == '\\') {
            out += '\\';
            out += c;
        } else if (static_cast<unsigned char>(c) < 0x20) {
            out += ' ';
        } else {
            out += c;
        }
    }
    out += '"';
    return out;
}

/**
 * The JSON file behind the global tracer. All emission funnels
 * through event() under one mutex: concurrent jobs interleave whole
 * lines, never partial ones.
 */
class TraceWriter
{
  public:
    explicit TraceWriter(const std::string &path)
        : out_(path, std::ios::trunc)
    {
        fatalIf(!out_, "cannot open trace file ", path);
        out_ << "{\"traceEvents\": [";
    }

    void
    event(char ph, const std::string &name, int pid, int tid,
          double ts_us, const std::vector<TraceArg> &args,
          const char *cat = nullptr)
    {
        char stamp[32];
        std::snprintf(stamp, sizeof(stamp), "%.3f", ts_us);
        std::lock_guard<std::mutex> lock(mutex_);
        out_ << (first_ ? "\n" : ",\n");
        first_ = false;
        out_ << "{\"name\": " << jsonString(name) << ", \"ph\": \""
             << ph << "\", \"pid\": " << pid << ", \"tid\": " << tid
             << ", \"ts\": " << stamp;
        if (cat)
            out_ << ", \"cat\": " << jsonString(cat);
        if (ph == 'i')
            out_ << ", \"s\": \"t\"";
        if (!args.empty()) {
            out_ << ", \"args\": {";
            bool afirst = true;
            for (const TraceArg &a : args) {
                if (!afirst)
                    out_ << ", ";
                out_ << jsonString(a.key) << ": " << a.json;
                afirst = false;
            }
            out_ << "}";
        }
        out_ << "}";
    }

    void
    close()
    {
        std::lock_guard<std::mutex> lock(mutex_);
        out_ << "\n]}\n";
        out_.close();
    }

  private:
    std::ofstream out_;
    std::mutex mutex_;
    bool first_ = true;
};

std::atomic<bool> gTraceActive{false};
std::mutex gWriterMutex;
TraceWriter *gWriter = nullptr;

thread_local JobTraceContext *tCtx = nullptr;

void
emit(char ph, const std::string &name, int pid, int tid, double ts_us,
     const std::vector<TraceArg> &args = {}, const char *cat = nullptr)
{
    std::lock_guard<std::mutex> lock(gWriterMutex);
    if (gWriter)
        gWriter->event(ph, name, pid, tid, ts_us, args, cat);
}

/** Whether the calling thread should emit sim-lane events now. */
bool
simLaneActive()
{
    return traceActive() && traceContext().simEvents;
}

void
onFaultFire(const std::string &site)
{
    CDPC_METRIC_COUNT("fault.fires", 1);
    if (!traceActive())
        return;
    JobTraceContext &ctx = traceContext();
    // A fire is interesting even for jobs that opted out of sim
    // events — fault-plan runs must be auditable.
    emit('i', "faultFire", ctx.pid, kSimTid, ctx.simNowUs,
         {TraceArg{"site", site}}, "fault");
}

} // namespace

TraceArg::TraceArg(const char *k, const char *v)
    : key(k), json(jsonString(v))
{}

TraceArg::TraceArg(const char *k, const std::string &v)
    : key(k), json(jsonString(v))
{}

TraceArg::TraceArg(const char *k, double v) : key(k)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.6g", v);
    json = buf;
}

TraceArg::TraceArg(const char *k, std::uint64_t v)
    : key(k), json(std::to_string(v))
{}

TraceArg::TraceArg(const char *k, std::int64_t v)
    : key(k), json(std::to_string(v))
{}

bool
traceActive()
{
    return gTraceActive.load(std::memory_order_relaxed);
}

void
installTraceWriter(const std::string &path)
{
    std::lock_guard<std::mutex> lock(gWriterMutex);
    fatalIf(gWriter != nullptr, "trace writer already installed");
    gWriter = new TraceWriter(path);
    faultpoints::setFireObserver(&onFaultFire);
    gTraceActive.store(true, std::memory_order_relaxed);
}

void
finalizeTrace()
{
    gTraceActive.store(false, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(gWriterMutex);
    if (!gWriter)
        return;
    faultpoints::setFireObserver(nullptr);
    gWriter->close();
    delete gWriter;
    gWriter = nullptr;
}

double
wallUs()
{
    using Clock = std::chrono::steady_clock;
    static const Clock::time_point epoch = Clock::now();
    return std::chrono::duration<double, std::micro>(Clock::now() -
                                                     epoch)
        .count();
}

JobTraceContext &
traceContext()
{
    // Threads outside a ScopedJobTrace (cdpcsim run, tests, benches)
    // get a default context on the process track.
    thread_local JobTraceContext def;
    return tCtx ? *tCtx : def;
}

ScopedJobTrace::ScopedJobTrace(int pid, bool sim_events,
                               const std::string &name)
    : prev_(tCtx)
{
    ctx_.pid = pid;
    ctx_.simEvents = sim_events;
    tCtx = &ctx_;
    if (traceActive())
        emit('M', "process_name", pid, kRunnerTid, 0,
             {TraceArg{"name", name}});
}

ScopedJobTrace::~ScopedJobTrace()
{
    tCtx = prev_;
}

PhaseSpan::PhaseSpan(const char *name) : name_(name)
{
    if (!simLaneActive())
        return;
    JobTraceContext &ctx = traceContext();
    emit('B', name_, ctx.pid, kSimTid, ctx.cursorUs, {}, "phase");
    open_ = true;
}

void
PhaseSpan::end()
{
    if (!open_)
        return;
    open_ = false;
    JobTraceContext &ctx = traceContext();
    ctx.cursorUs += kPhaseWidthUs;
    emit('E', name_, ctx.pid, kSimTid, ctx.cursorUs, {}, "phase");
}

SimSpan::SimSpan(const char *name) : name_(name)
{
    if (!simLaneActive())
        return;
    JobTraceContext &ctx = traceContext();
    ctx.simUsBase = ctx.cursorUs;
    ctx.simNowUs = ctx.cursorUs;
    emit('B', name_, ctx.pid, kSimTid, ctx.cursorUs, {}, "sim");
    open_ = true;
}

void
SimSpan::end()
{
    if (!open_)
        return;
    open_ = false;
    JobTraceContext &ctx = traceContext();
    // Close at the last simulated stamp, then park the cursor after
    // it so any later phase starts to the right of the sim span.
    emit('E', name_, ctx.pid, kSimTid, ctx.simNowUs, {}, "sim");
    ctx.cursorUs = ctx.simNowUs + kPhaseWidthUs;
}

void
setSimCycles(Cycles c)
{
    JobTraceContext &ctx = traceContext();
    double ts = ctx.simUsBase + static_cast<double>(c) / 1000.0;
    if (ts > ctx.simNowUs)
        ctx.simNowUs = ts;
}

void
simInstant(const char *name, const TraceArgs &args)
{
    simInstant(name, "sim", args);
}

void
simInstant(const char *name, const char *cat, const TraceArgs &args)
{
    if (!simLaneActive())
        return;
    JobTraceContext &ctx = traceContext();
    emit('i', name, ctx.pid, kSimTid, ctx.simNowUs, args, cat);
}

void
simInstantSampled(const char *name, std::uint64_t every,
                  const TraceArgs &args)
{
    simInstantSampled(name, "sim", every, args);
}

void
simInstantSampled(const char *name, const char *cat,
                  std::uint64_t every, const TraceArgs &args)
{
    if (!simLaneActive())
        return;
    JobTraceContext &ctx = traceContext();
    if (ctx.busStallTick++ % every != 0)
        return;
    emit('i', name, ctx.pid, kSimTid, ctx.simNowUs, args, cat);
}

void
counterEvent(const char *name, int pid, double ts_us, const TraceArgs &args)
{
    if (!traceActive())
        return;
    emit('C', name, pid, kSimTid, ts_us, args, "counter");
}

void
runnerBegin(const char *name, int pid, const TraceArgs &args)
{
    if (!traceActive())
        return;
    emit('B', name, pid, kRunnerTid, wallUs(), args, "runner");
}

void
runnerEnd(const char *name, int pid)
{
    if (!traceActive())
        return;
    emit('E', name, pid, kRunnerTid, wallUs(), {}, "runner");
}

void
runnerSpan(const char *name, int pid, double begin_us, double end_us,
           const TraceArgs &args)
{
    if (!traceActive())
        return;
    emit('B', name, pid, kRunnerTid, begin_us, args, "runner");
    emit('E', name, pid, kRunnerTid,
         end_us < begin_us ? begin_us : end_us, {}, "runner");
}

void
runnerInstant(const char *name, int pid, const TraceArgs &args)
{
    if (!traceActive())
        return;
    emit('i', name, pid, kRunnerTid, wallUs(), args, "runner");
}

} // namespace cdpc::obs
