/**
 * @file
 * Interval snapshots: the per-CPU miss-rate / miss-class /
 * color-occupancy time series sampled every N simulated references
 * (cdpcsim --stats-interval N).
 *
 * Snapshots are *pure simulation data*: captured inside the
 * deterministic simulation loop, stamped with simulated cycles, and
 * stored in the ExperimentResult. They are therefore bit-identical
 * across worker counts (--jobs 1 vs --jobs 8) and across reruns —
 * unlike trace files, whose runner spans carry wall-clock times.
 *
 * Counters are cumulative at the capture instant; consumers diff
 * adjacent snapshots to get per-interval rates.
 */

#ifndef CDPC_OBS_SNAPSHOT_H
#define CDPC_OBS_SNAPSHOT_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"

namespace cdpc::obs
{

/** Cumulative per-CPU memory counters at one capture instant. */
struct CpuSnapshot
{
    std::uint64_t refs = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t l2Misses = 0;
    /** Demand-miss counts per MissKind (6 kinds, by enum value). */
    std::array<std::uint64_t, 6> missCount{};
};

/** One sample of the interval time series. */
struct IntervalSnapshot
{
    /** 0-based capture index within the run. */
    std::uint64_t seq = 0;
    /** Simulated wall time (max per-CPU local time) at capture. */
    Cycles cycles = 0;
    /** Total references across all CPUs at capture. */
    std::uint64_t refs = 0;
    std::vector<CpuSnapshot> cpus;
    /** Mapped pages per cache color (color-occupancy profile). */
    std::vector<std::uint32_t> colorPages;
    /**
     * Resident external-cache lines per color, summed over CPUs —
     * the profiler's set-pressure sample. Empty unless the run has a
     * conflict profiler installed, so profile-off output is
     * unchanged.
     */
    std::vector<std::uint64_t> colorOccupancy;
    /** Cumulative conflict misses per color (profiled runs only). */
    std::vector<std::uint64_t> colorConflicts;
};

} // namespace cdpc::obs

#endif // CDPC_OBS_SNAPSHOT_H
