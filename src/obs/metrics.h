/**
 * @file
 * The metrics registry: named counters, gauges and histograms with
 * O(1) hot-path updates, shared by the simulator, the VM layer and
 * the batch runner.
 *
 * Design constraints (DESIGN.md §10):
 *
 *  - Hot-path cost when disabled must be one relaxed atomic load and
 *    a predictable branch — the same contract faultPoint() honors —
 *    so instrumentation can live on the per-reference fast path
 *    without moving the PR 3 perf baseline.
 *  - Updates when enabled are lock-free relaxed atomic adds on a
 *    handle the site obtained once (function-local static), so a
 *    counter increment never takes the registry mutex.
 *  - Instrument sites are *observers*: they must never change
 *    simulation results. Everything in this header is side-effect
 *    free with respect to experiment state.
 *
 * Runtime gating: metrics are OFF by default; cdpcsim --metrics (or
 * a test) turns them on with setMetricsEnabled(true). Compile-time
 * gating: building with -DCDPC_OBS_ENABLED=0 turns every helper into
 * a no-op that the optimizer deletes entirely.
 */

#ifndef CDPC_OBS_METRICS_H
#define CDPC_OBS_METRICS_H

#include <array>
#include <atomic>
#include <cstdint>
#include <ostream>
#include <string>

#ifndef CDPC_OBS_ENABLED
#define CDPC_OBS_ENABLED 1
#endif

namespace cdpc::obs
{

/** Turn runtime metric collection on or off (default: off). */
void setMetricsEnabled(bool enabled);

/** @return whether metric updates are currently collected. */
inline bool
metricsEnabled()
{
#if CDPC_OBS_ENABLED
    extern std::atomic<bool> gMetricsEnabled;
    return gMetricsEnabled.load(std::memory_order_relaxed);
#else
    return false;
#endif
}

/** Monotonically increasing event count. */
class Counter
{
  public:
    /** Unconditional add; callers gate on metricsEnabled(). */
    void
    inc(std::uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::uint64_t> value_{0};
};

/** Last-writer-wins instantaneous value. */
class Gauge
{
  public:
    void
    set(std::int64_t v)
    {
        value_.store(v, std::memory_order_relaxed);
    }

    void
    add(std::int64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    std::int64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

  private:
    std::atomic<std::int64_t> value_{0};
};

/**
 * Power-of-two-bucket histogram of non-negative integer samples.
 * Bucket b counts samples whose value v satisfies
 * 2^(b-1) <= v < 2^b (bucket 0 counts v == 0), so observe() is a
 * bit-scan plus one relaxed add — no allocation, no locking.
 */
class Histogram
{
  public:
    static constexpr unsigned kBuckets = 64;

    void observe(std::uint64_t v);

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t sum() const
    {
        return sum_.load(std::memory_order_relaxed);
    }
    std::uint64_t max() const
    {
        return max_.load(std::memory_order_relaxed);
    }
    std::uint64_t bucket(unsigned b) const
    {
        return buckets_[b].load(std::memory_order_relaxed);
    }

    void reset();

  private:
    std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> sum_{0};
    std::atomic<std::uint64_t> max_{0};
};

/**
 * Name -> metric directory. Registration (counter()/gauge()/
 * histogram()) takes a mutex and is meant to happen once per site —
 * cache the returned reference in a function-local static. Handles
 * are stable for the registry's lifetime; the global() registry is
 * never destroyed, so cached references in instrumented library code
 * outlive every experiment.
 */
class MetricsRegistry
{
  public:
    MetricsRegistry();
    ~MetricsRegistry();

    MetricsRegistry(const MetricsRegistry &) = delete;
    MetricsRegistry &operator=(const MetricsRegistry &) = delete;

    /** Find-or-create; the reference stays valid forever. */
    Counter &counter(const std::string &name);
    Gauge &gauge(const std::string &name);
    Histogram &histogram(const std::string &name);

    /**
     * Look up a counter without registering it: nullptr when no site
     * has created @p name yet. Lets tests and reporting code ask
     * "did this event ever fire?" without perturbing the registry.
     */
    const Counter *findCounter(const std::string &name) const;

    /** Zero every registered metric (names stay registered). */
    void resetAll();

    /**
     * Serialize every metric as one JSON object:
     * {"counters":{...},"gauges":{...},"histograms":{...}}.
     * Names are emitted in sorted order; loadable by python's
     * json.load (the CI validation contract).
     */
    void writeJson(std::ostream &out) const;

    /** writeJson() to @p path; fatal() when unopenable. */
    void writeJsonFile(const std::string &path) const;

    /** The process-wide registry used by instrumented library code. */
    static MetricsRegistry &global();

  private:
    struct Impl;
    Impl *impl_;
};

} // namespace cdpc::obs

/**
 * Hot-path helpers: runtime gate + one-time registration + O(1)
 * update in one statement. The function-local static handle is
 * resolved on the first *enabled* hit of the site and reused
 * afterwards, so the steady state is one relaxed load, one branch
 * and one relaxed add. With CDPC_OBS_ENABLED=0 the statements (and
 * their arguments) vanish at compile time.
 */
#if CDPC_OBS_ENABLED
#define CDPC_METRIC_COUNT(name, n)                                    \
    do {                                                              \
        if (::cdpc::obs::metricsEnabled()) {                          \
            static ::cdpc::obs::Counter &cdpc_metric_ =               \
                ::cdpc::obs::MetricsRegistry::global().counter(name); \
            cdpc_metric_.inc(n);                                      \
        }                                                             \
    } while (0)
#define CDPC_METRIC_OBSERVE(name, v)                                  \
    do {                                                              \
        if (::cdpc::obs::metricsEnabled()) {                          \
            static ::cdpc::obs::Histogram &cdpc_metric_ =             \
                ::cdpc::obs::MetricsRegistry::global().histogram(     \
                    name);                                            \
            cdpc_metric_.observe(v);                                  \
        }                                                             \
    } while (0)
#define CDPC_METRIC_GAUGE_SET(name, v)                                \
    do {                                                              \
        if (::cdpc::obs::metricsEnabled()) {                          \
            static ::cdpc::obs::Gauge &cdpc_metric_ =                 \
                ::cdpc::obs::MetricsRegistry::global().gauge(name);   \
            cdpc_metric_.set(v);                                      \
        }                                                             \
    } while (0)
#else
#define CDPC_METRIC_COUNT(name, n)                                    \
    do {                                                              \
    } while (0)
#define CDPC_METRIC_OBSERVE(name, v)                                  \
    do {                                                              \
    } while (0)
#define CDPC_METRIC_GAUGE_SET(name, v)                                \
    do {                                                              \
    } while (0)
#endif

#endif // CDPC_OBS_METRICS_H
