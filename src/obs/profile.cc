#include "obs/profile.h"

#include <algorithm>

#include "common/intmath.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace cdpc::obs
{

namespace
{

/** Sampling period for conflict instants on the trace's sim lane. */
constexpr std::uint64_t kConflictTraceEvery = 256;

} // namespace

ConflictProfiler::ConflictProfiler(const Config &cfg) : cfg_(cfg)
{
    fatalIf(cfg_.numCpus == 0 || cfg_.numColors == 0,
            "profiler needs at least one CPU and one color");
    if (!cfg_.index.hasColorGeometry())
        cfg_.index = IndexFunction::moduloColors(cfg_.numColors);
    fatalIf(cfg_.index.numColors() != cfg_.numColors,
            "profiler index function has ", cfg_.index.numColors(),
            " colors but the profiler was configured for ",
            cfg_.numColors);
    lineShift_ = floorLog2(cfg_.lineBytes);

    for (const ProfileEntity &e : cfg_.entities) {
        auto id = static_cast<std::uint32_t>(names_.size());
        names_.push_back(e.name);
        entityBytes_.push_back(e.bytes);
        if (e.bytes > 0)
            ranges_.push_back({e.base, e.base + e.bytes, id});
    }
    otherId_ = static_cast<std::uint32_t>(names_.size());
    names_.push_back("(other)");
    entityBytes_.push_back(0);
    recolorId_ = static_cast<std::uint32_t>(names_.size());
    names_.push_back("(recolor)");
    entityBytes_.push_back(0);
    externId_ = static_cast<std::uint32_t>(names_.size());
    names_.push_back("(extern)");
    entityBytes_.push_back(0);

    std::sort(ranges_.begin(), ranges_.end(),
              [](const Range &a, const Range &b) {
                  return a.base < b.base;
              });

    ctxEvictorId_ = externId_;
    currentRef_.assign(cfg_.numCpus, externId_);
    currentRefVa_.assign(cfg_.numCpus, 0);
    lastEvictor_.resize(cfg_.numCpus);
    std::size_t n = names_.size();
    matrix_.assign(static_cast<std::size_t>(cfg_.numColors) * n * n, 0);
    colorConflicts_.assign(cfg_.numColors, 0);
}

std::uint32_t
ConflictProfiler::entityOf(VAddr va) const
{
    if (selfId_ != ~0u)
        return selfId_;
    // Same rule as harness/attribution's owner(): the array whose
    // [base, end) range holds the address, else the catch-all.
    auto it = std::upper_bound(ranges_.begin(), ranges_.end(), va,
                               [](VAddr v, const Range &r) {
                                   return v < r.base;
                               });
    if (it != ranges_.begin()) {
        const Range &r = *std::prev(it);
        if (va >= r.base && va < r.end)
            return r.id;
    }
    return otherId_;
}

void
ConflictProfiler::onRefStart(CpuId cpu, VAddr va)
{
    currentRef_[cpu] = entityOf(va);
    currentRefVa_[cpu] = va;
}

void
ConflictProfiler::onEvict(CpuId cpu, Addr victim_line, EvictCause cause)
{
    EvictRec rec;
    switch (cause) {
      case EvictCause::Replace:
        rec.id = currentRef_[cpu];
        rec.vpn = currentRefVa_[cpu] / cfg_.pageBytes;
        rec.hasPage = true;
        break;
      case EvictCause::Recolor:
        rec.id = recolorId_;
        break;
      case EvictCause::ContextSwitch:
        rec.id = ctxEvictorId_;
        break;
      default:
        rec.id = externId_;
        break;
    }
    lastEvictor_[cpu][victim_line] = rec;
}

void
ConflictProfiler::onConflictMiss(CpuId cpu, VAddr va, PAddr pa,
                                 Cycles now)
{
    (void)now;
    std::uint32_t victim = entityOf(va);
    auto color = static_cast<std::uint32_t>(
        cfg_.index.pageColorOf(pa / cfg_.pageBytes));
    std::uint32_t evictor = externId_;
    Addr line = pa >> lineShift_;
    auto &evictors = lastEvictor_[cpu];
    auto it = evictors.find(line);
    if (it != evictors.end()) {
        evictor = it->second.id;
        // Evictor-side page evidence: a set conflict implies the
        // displacing page shares the victim's color.
        if (it->second.hasPage)
            pageConflicts_[it->second.vpn * cfg_.numColors + color]++;
        evictors.erase(it);
    }
    pageConflicts_[(va / cfg_.pageBytes) * cfg_.numColors + color]++;

    std::size_t n = names_.size();
    matrix_[(static_cast<std::size_t>(color) * n + evictor) * n +
            victim]++;
    colorConflicts_[color]++;
    totalConflicts_++;

    if (traceActive()) {
        simInstantSampled("conflict", "profile", kConflictTraceEvery,
                          {TraceArg{"color", color},
                           TraceArg{"evictor", names_[evictor]},
                           TraceArg{"victim", names_[victim]},
                           TraceArg{"cpu", static_cast<std::uint32_t>(
                                               cpu)}});
    }
}

void
ConflictProfiler::onReset()
{
    // reset() wipes the caches *and* the stats; the matrix mirrors
    // the miss counters, so it goes with them.
    for (auto &m : lastEvictor_)
        m.clear();
    std::fill(currentRef_.begin(), currentRef_.end(),
              selfId_ != ~0u ? selfId_ : externId_);
    std::fill(currentRefVa_.begin(), currentRefVa_.end(), 0);
    std::fill(matrix_.begin(), matrix_.end(), 0);
    std::fill(colorConflicts_.begin(), colorConflicts_.end(), 0);
    totalConflicts_ = 0;
    pageConflicts_.clear();
}

void
ConflictProfiler::setSelfEntity(std::uint32_t id)
{
    panicIfNot(id < names_.size(), "self entity ", id, " out of range");
    selfId_ = id;
    std::fill(currentRef_.begin(), currentRef_.end(), id);
}

void
ConflictProfiler::setContextEvictor(std::uint32_t id)
{
    panicIfNot(id < names_.size(), "context evictor ", id,
               " out of range");
    ctxEvictorId_ = id;
}

void
ConflictProfiler::clearContextEvictor()
{
    ctxEvictorId_ = externId_;
}

bool
ConflictProfiler::movable(std::uint32_t id) const
{
    // Only a real va range can be remapped; tenants and the
    // sentinels (bytes == 0) cannot. Size is no obstacle — the
    // advisor moves the entity's conflicting-page slice, not the
    // whole entity.
    return entityBytes_[id] > 0;
}

ProfileResult
ConflictProfiler::result(std::vector<std::uint64_t> occupancy,
                         std::size_t max_advice) const
{
    ProfileResult r;
    r.enabled = true;
    r.numColors = cfg_.numColors;
    r.entities = names_;
    r.matrix = matrix_;
    r.colorConflicts = colorConflicts_;
    r.occupancy = std::move(occupancy);
    r.totalConflicts = totalConflicts_;

    // --- Rank the contested cells -------------------------------------
    struct CellRef
    {
        std::uint32_t color, evictor, victim;
        std::uint64_t count;
    };
    std::size_t n = names_.size();
    std::vector<CellRef> cells;
    for (std::uint32_t c = 0; c < cfg_.numColors; c++) {
        for (std::uint32_t e = 0; e < n; e++) {
            for (std::uint32_t v = 0; v < n; v++) {
                std::uint64_t count =
                    matrix_[(static_cast<std::size_t>(c) * n + e) * n +
                            v];
                if (count)
                    cells.push_back({c, e, v, count});
            }
        }
    }
    std::sort(cells.begin(), cells.end(),
              [](const CellRef &a, const CellRef &b) {
                  if (a.count != b.count)
                      return a.count > b.count;
                  if (a.color != b.color)
                      return a.color < b.color;
                  if (a.evictor != b.evictor)
                      return a.evictor < b.evictor;
                  return a.victim < b.victim;
              });

    // Load measure for "least-loaded legal color": conflict
    // pressure, not occupancy — a warm cache is uniformly full per
    // color, but conflicts concentrate where working sets collide,
    // and that concentration is exactly what a move can escape.
    const std::vector<std::uint64_t> &load = colorConflicts_;

    // An entity that conflicts on (almost) every color is capacity-
    // like pressure, not a placement accident: its conflicts follow
    // the mover to any destination, so they must not count as
    // removable when predicting a move's payoff.
    std::vector<std::uint32_t> coverage(n, 0);
    for (std::uint32_t c = 0; c < cfg_.numColors; c++) {
        for (std::uint32_t e = 0; e < n; e++) {
            for (std::uint32_t x = 0; x < n; x++) {
                std::size_t row =
                    (static_cast<std::size_t>(c) * n + e) * n;
                if (matrix_[row + x] ||
                    matrix_[(static_cast<std::size_t>(c) * n + x) * n +
                            e]) {
                    coverage[e]++;
                    break;
                }
            }
        }
    }
    auto ubiquitous = [&](std::uint32_t e) {
        return static_cast<std::uint64_t>(coverage[e]) * 2 >
               cfg_.numColors;
    };

    std::vector<bool> advised(n, false);
    for (const CellRef &cell : cells) {
        if (r.advice.size() >= max_advice)
            break;

        // The cheaper entity of the pair moves: fewer pages to remap.
        std::uint32_t mover;
        bool em = movable(cell.evictor), vm = movable(cell.victim);
        if (em && vm)
            mover = entityBytes_[cell.victim] <= entityBytes_[cell.evictor]
                        ? cell.victim
                        : cell.evictor;
        else if (vm)
            mover = cell.victim;
        else if (em)
            mover = cell.evictor;
        else
            continue;
        if (advised[mover])
            continue; // one move per entity; top cell decides it

        // The concrete slice: the mover's pages the profiler saw
        // conflicting at the contested color. No evidence, no move.
        std::vector<PageNum> pages;
        for (const auto &[key, count] : pageConflicts_) {
            if (static_cast<std::uint32_t>(key % cfg_.numColors) !=
                cell.color)
                continue;
            PageNum vpn = key / cfg_.numColors;
            if (entityOf(vpn * cfg_.pageBytes) == mover)
                pages.push_back(vpn);
        }
        if (pages.empty())
            continue;
        std::sort(pages.begin(), pages.end());
        // A slice bigger than the cache behind one color would just
        // recreate the conflict at the destination.
        if (cfg_.colorCapacityBytes > 0 &&
            static_cast<std::uint64_t>(pages.size()) * cfg_.pageBytes >
                cfg_.colorCapacityBytes)
            continue;

        // Least-loaded legal color (any color but the contested one;
        // ties break low for determinism).
        std::uint32_t to = cell.color;
        for (std::uint32_t k = 0; k < cfg_.numColors; k++) {
            if (k == cell.color)
                continue;
            if (to == cell.color || load[k] < load[to])
                to = k;
        }
        if (to == cell.color)
            continue; // single-color machine: nowhere to go

        // Predicted delta: the mover's removable conflict involvement
        // at the contested color disappears, and a fraction of it —
        // scaled by the destination's relative load — reappears
        // there. Involvement with ubiquitous partners is not
        // removable (it follows the mover) and is excluded.
        std::uint64_t removed = 0;
        for (std::uint32_t x = 0; x < n; x++) {
            if (ubiquitous(x))
                continue;
            removed +=
                matrix_[(static_cast<std::size_t>(cell.color) * n +
                         mover) *
                            n +
                        x];
            removed +=
                matrix_[(static_cast<std::size_t>(cell.color) * n + x) *
                            n +
                        mover];
        }
        if (!ubiquitous(mover))
            removed -= matrix_[(static_cast<std::size_t>(cell.color) *
                                    n +
                                mover) *
                                   n +
                               mover];
        double scale =
            load[cell.color] == 0
                ? 0.0
                : static_cast<double>(load[to]) /
                      static_cast<double>(load[cell.color]);
        double added = static_cast<double>(removed) * scale;
        double delta = added - static_cast<double>(removed);
        if (delta >= 0)
            continue; // no predicted improvement: not advice

        ProfileAdvice a;
        a.color = cell.color;
        a.evictor = cell.evictor;
        a.victim = cell.victim;
        a.conflicts = cell.count;
        a.moveEntity = mover;
        a.toColor = to;
        a.movePages = pages.size();
        a.movePageList = std::move(pages);
        a.predictedDelta = delta;
        r.advice.push_back(a);
        advised[mover] = true;
    }
    return r;
}

} // namespace cdpc::obs
