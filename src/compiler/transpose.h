/**
 * @file
 * Data-layout transposition — the Anderson-Lam data transformation
 * the paper's Section 2.2 cites ([2]): "transformations that make
 * data elements accessed by the same processor contiguous in the
 * shared address space".
 *
 * CDPC's partition summaries only describe *contiguous* per-CPU
 * footprints, so an array whose parallel loop drives a
 * non-outermost index (a column-partitioned row-major array) falls
 * back to replicated treatment. This pass fixes the layout instead:
 * when every parallel access to an array consistently partitions the
 * same non-outermost dimension, the array's dimensions are permuted
 * to move that dimension outermost and every reference is rewritten
 * — after which the ordinary analysis emits a clean partition
 * summary.
 */

#ifndef CDPC_COMPILER_TRANSPOSE_H
#define CDPC_COMPILER_TRANSPOSE_H

#include <cstdint>

#include "ir/program.h"

namespace cdpc
{

/** What the pass did. */
struct TransposeResult
{
    std::uint32_t arraysTransposed = 0;
    /** Candidates skipped: inconsistent partition dims across nests. */
    std::uint32_t skippedInconsistent = 0;
    /** Candidates skipped: a reference was not exactly analyzable. */
    std::uint32_t skippedUnanalyzable = 0;
};

/**
 * Transpose every array whose accesses consistently partition a
 * non-outermost dimension. References (coefficients and constant
 * offsets) are rewritten in place; iteration semantics — the
 * (loop iteration -> array element) mapping — are preserved exactly,
 * only the element's address changes.
 *
 * Must run before address assignment (layout uses the final dims).
 */
TransposeResult transposeForContiguity(Program &program);

} // namespace cdpc

#endif // CDPC_COMPILER_TRANSPOSE_H
