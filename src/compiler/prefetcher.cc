#include "compiler/prefetcher.h"

#include <algorithm>
#include <cstdlib>

#include "common/intmath.h"

namespace cdpc
{

namespace
{

std::int64_t
innerCoeff(const AffineRef &ref, std::uint32_t inner_dim)
{
    std::int64_t c = 0;
    for (const AffineTerm &t : ref.terms) {
        if (t.loopDim == inner_dim)
            c += t.coeffElems;
    }
    return c;
}

void
annotateNest(const Program &program, LoopNest &nest,
             const PrefetcherOptions &opts, PrefetcherResult &res)
{
    auto inner = static_cast<std::uint32_t>(nest.bounds.size() - 1);
    for (std::size_t i = 0; i < nest.refs.size(); i++) {
        AffineRef &ref = nest.refs[i];
        const ArrayDecl &arr = program.arrays[ref.arrayId];

        if (arr.sizeBytes() < opts.minArrayBytes) {
            res.refsSkippedSmallArray++;
            continue;
        }
        std::int64_t stride =
            innerCoeff(ref, inner) * static_cast<std::int64_t>(
                                         arr.elemBytes);
        if (stride == 0) {
            res.refsSkippedZeroStride++;
            continue;
        }

        // Group reuse: when an earlier reference walks the same array
        // with the same stride less than a line apart, it already
        // covers this one's lines.
        bool covered = false;
        for (std::size_t j = 0; j < i; j++) {
            const AffineRef &lead = nest.refs[j];
            if (lead.arrayId != ref.arrayId ||
                lead.prefetchDistLines == 0) {
                continue;
            }
            if (innerCoeff(lead, inner) == innerCoeff(ref, inner) &&
                static_cast<std::uint64_t>(
                    std::llabs(lead.constElems - ref.constElems)) *
                        arr.elemBytes < opts.lineBytes) {
                covered = true;
                break;
            }
        }
        if (covered) {
            res.refsSkippedGroupReuse++;
            continue;
        }

        // Software pipelining: distance (in lines) that covers the
        // memory latency given the instructions executed per line.
        std::uint64_t abs_stride =
            static_cast<std::uint64_t>(std::llabs(stride));
        std::uint64_t insts_per_line = nest.instsPerIter;
        if (abs_stride < opts.lineBytes) {
            insts_per_line *=
                std::max<std::uint64_t>(opts.lineBytes / abs_stride, 1);
        }
        std::uint32_t dist = static_cast<std::uint32_t>(
            divCeil(opts.targetLatency,
                    std::max<std::uint64_t>(insts_per_line, 1)) + 1);
        dist = std::min(dist, opts.maxDistLines);
        dist = std::max<std::uint32_t>(dist, 1);
        if (nest.prefetchPipelineInhibited) {
            // Tiling defeats the software pipeline: the prefetch is
            // still emitted, but too close to its use to help.
            dist = 1;
            ref.prefetchLate = true;
        } else {
            ref.prefetchLate = false;
        }

        ref.prefetchDistLines = dist;
        res.refsAnnotated++;
    }
}

} // namespace

PrefetcherResult
insertPrefetches(Program &program, const PrefetcherOptions &opts)
{
    clearPrefetches(program);
    PrefetcherResult res;
    for (Phase &phase : program.steady) {
        for (LoopNest &nest : phase.nests)
            annotateNest(program, nest, opts, res);
    }
    return res;
}

void
clearPrefetches(Program &program)
{
    for (Phase &phase : program.steady) {
        for (LoopNest &nest : phase.nests) {
            for (AffineRef &ref : nest.refs) {
                ref.prefetchDistLines = 0;
                ref.prefetchLate = false;
            }
        }
    }
}

} // namespace cdpc
