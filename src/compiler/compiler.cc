#include "compiler/compiler.h"

namespace cdpc
{

CompileResult
compileProgram(Program &program, const CompilerOptions &opts)
{
    program.validate();

    CompileResult res;
    res.parallelizer = parallelize(program, opts.parallelizer);

    // Layout transformation must precede the analysis and the
    // address assignment: it rewrites dimensions and references.
    if (opts.transpose)
        res.transpose = transposeForContiguity(program);

    // The analysis needs the final nest kinds but not addresses; the
    // aligner needs the group access info; layout must precede any
    // address-dependent consumer (CDPC, simulation).
    AccessSummaries pre = analyzeProgram(program);
    res.layout = opts.align
                     ? computeAlignedLayout(program, pre.groups,
                                            opts.aligner)
                     : computeUnalignedLayout();
    assignAddresses(program, res.layout);

    if (opts.prefetch)
        res.prefetcher = insertPrefetches(program, opts.prefetcher);
    else
        clearPrefetches(program);

    // Re-run the analysis now that base addresses are final (the
    // partition summaries carry starting virtual addresses).
    res.summaries = analyzeProgram(program);
    return res;
}

} // namespace cdpc
