/**
 * @file
 * The compiler analyses that produce the CDPC access-pattern
 * summaries: array partitioning, communication patterns and group
 * access information (paper, Section 5.1).
 *
 * "The compiler uses information that is directly derived from its
 *  parallelization and locality analysis" — here, derived from the
 * static schedules and affine references of the parallel loop nests.
 */

#ifndef CDPC_COMPILER_ANALYSIS_H
#define CDPC_COMPILER_ANALYSIS_H

#include "compiler/summaries.h"
#include "ir/program.h"

namespace cdpc
{

/**
 * Derive the full summary bundle for @p program.
 *
 * For every parallel nest and affine reference, the analysis
 * determines the array's partition unit (|coefficient of the
 * distributed loop| * element size), the schedule (policy and
 * direction), shift-type boundary communication (constant offsets of
 * a small whole number of units), and the group-access pairs (arrays
 * co-referenced in one nest). References with wrapped (non-affine)
 * index expressions mark their array unanalyzable, excluding it from
 * CDPC exactly as in the paper's su2cor discussion.
 */
AccessSummaries analyzeProgram(const Program &program);

} // namespace cdpc

#endif // CDPC_COMPILER_ANALYSIS_H
