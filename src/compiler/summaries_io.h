/**
 * @file
 * Binary serialization of the compiler's access-pattern summaries.
 *
 * In the paper the compiler "generates function calls that pass the
 * array access patterns to a run-time library" — the summaries are
 * baked into the binary at compile time and interpreted at start-up
 * with the machine parameters. This module makes that staging
 * literal: a compile step can save the AccessSummaries next to the
 * "binary", and any later run-time step (a different process, a
 * different machine configuration) loads them and computes its own
 * plan.
 *
 * Format: little-endian, length-prefixed sections, magic "CDPCSUM1".
 */

#ifndef CDPC_COMPILER_SUMMARIES_IO_H
#define CDPC_COMPILER_SUMMARIES_IO_H

#include <iosfwd>
#include <string>

#include "compiler/summaries.h"

namespace cdpc
{

/** Serialize @p summaries to a stream. */
void saveSummaries(const AccessSummaries &summaries, std::ostream &out);

/** Serialize to a file (created/truncated). */
void saveSummaries(const AccessSummaries &summaries,
                   const std::string &path);

/** Deserialize from a stream; fatal() on malformed input. */
AccessSummaries loadSummaries(std::istream &in);

/** Deserialize from a file. */
AccessSummaries loadSummaries(const std::string &path);

} // namespace cdpc

#endif // CDPC_COMPILER_SUMMARIES_IO_H
