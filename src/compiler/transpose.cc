#include "compiler/transpose.h"

#include <algorithm>
#include <cstdlib>
#include <optional>
#include <set>
#include <vector>

#include "common/logging.h"

namespace cdpc
{

namespace
{

/** Which array dimension a term's coefficient walks, with its sign. */
struct DimDrive
{
    std::size_t dim;
    std::int64_t sign;
};

std::optional<DimDrive>
decomposeCoeff(const ArrayDecl &arr, std::int64_t coeff)
{
    if (coeff == 0)
        return std::nullopt;
    std::int64_t mag = std::llabs(coeff);
    for (std::size_t d = 0; d < arr.dims.size(); d++) {
        if (static_cast<std::int64_t>(arr.strideElems(d)) == mag)
            return DimDrive{d, coeff > 0 ? 1 : -1};
    }
    return std::nullopt;
}

/** Decompose a constant offset into per-dimension offsets. */
std::optional<std::vector<std::int64_t>>
decomposeConst(const ArrayDecl &arr, std::int64_t c)
{
    std::vector<std::int64_t> offs(arr.dims.size(), 0);
    for (std::size_t d = 0; d < arr.dims.size(); d++) {
        auto stride = static_cast<std::int64_t>(arr.strideElems(d));
        offs[d] = c / stride; // truncates toward zero
        c -= offs[d] * stride;
        if (std::llabs(offs[d]) >=
            static_cast<std::int64_t>(arr.dims[d])) {
            return std::nullopt; // out-of-range offset
        }
    }
    if (c != 0)
        return std::nullopt;
    return offs;
}

/** All references to @p aid across init and steady phases. */
template <typename F>
void
forEachRef(Program &p, std::uint32_t aid, F &&fn)
{
    auto scan = [&](Phase &phase) {
        for (LoopNest &nest : phase.nests) {
            for (AffineRef &r : nest.refs) {
                if (r.arrayId == aid)
                    fn(nest, r);
            }
        }
    };
    scan(p.init);
    for (Phase &phase : p.steady)
        scan(phase);
}

} // namespace

TransposeResult
transposeForContiguity(Program &program)
{
    TransposeResult res;

    for (std::uint32_t aid = 0; aid < program.arrays.size(); aid++) {
        ArrayDecl &arr = program.arrays[aid];
        if (!arr.summarizable || arr.dims.size() < 2)
            continue;
        if (std::any_of(arr.dims.begin(), arr.dims.end(),
                        [](std::uint64_t d) { return d < 2; })) {
            continue;
        }

        // Pass 1: every reference must decompose exactly, and the
        // parallel loops must consistently partition one dimension.
        bool analyzable = true;
        std::set<std::size_t> partitioned_dims;
        forEachRef(program, aid, [&](LoopNest &nest, AffineRef &r) {
            if (!analyzable)
                return;
            if (r.wrapModElems != 0 ||
                !decomposeConst(arr, r.constElems)) {
                analyzable = false;
                return;
            }
            std::int64_t par_coeff = 0;
            for (const AffineTerm &t : r.terms) {
                auto drive = decomposeCoeff(arr, t.coeffElems);
                if (!drive) {
                    analyzable = false;
                    return;
                }
                if (nest.kind == NestKind::Parallel &&
                    t.loopDim == nest.parallelDim) {
                    par_coeff = t.coeffElems;
                }
            }
            if (nest.kind == NestKind::Parallel && par_coeff != 0)
                partitioned_dims.insert(
                    decomposeCoeff(arr, par_coeff)->dim);
        });

        if (!analyzable) {
            res.skippedUnanalyzable++;
            continue;
        }
        if (partitioned_dims.size() != 1) {
            if (partitioned_dims.size() > 1)
                res.skippedInconsistent++;
            continue;
        }
        std::size_t target = *partitioned_dims.begin();
        if (target == 0)
            continue; // already outermost

        // Build the permutation: target dimension first, the rest in
        // their original order. perm[new position] = old dimension.
        std::vector<std::size_t> perm;
        perm.push_back(target);
        for (std::size_t d = 0; d < arr.dims.size(); d++) {
            if (d != target)
                perm.push_back(d);
        }

        ArrayDecl new_arr = arr;
        for (std::size_t n = 0; n < perm.size(); n++)
            new_arr.dims[n] = arr.dims[perm[n]];

        // old dim -> stride in the new layout.
        std::vector<std::int64_t> new_stride_of_old(arr.dims.size());
        for (std::size_t n = 0; n < perm.size(); n++) {
            new_stride_of_old[perm[n]] =
                static_cast<std::int64_t>(new_arr.strideElems(n));
        }

        // Pass 2: rewrite every reference.
        forEachRef(program, aid, [&](LoopNest &, AffineRef &r) {
            for (AffineTerm &t : r.terms) {
                DimDrive drive = *decomposeCoeff(arr, t.coeffElems);
                t.coeffElems =
                    drive.sign * new_stride_of_old[drive.dim];
            }
            std::vector<std::int64_t> offs =
                *decomposeConst(arr, r.constElems);
            std::int64_t c = 0;
            for (std::size_t d = 0; d < offs.size(); d++)
                c += offs[d] * new_stride_of_old[d];
            r.constElems = c;
        });

        arr = new_arr;
        res.arraysTransposed++;
    }
    return res;
}

} // namespace cdpc
