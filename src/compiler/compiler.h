/**
 * @file
 * The compiler driver: runs the full SUIF-like pipeline on an IR
 * program — parallelization (suppression), layout (alignment and
 * padding), access-pattern analysis, and optionally prefetch
 * insertion — and returns the summary bundle CDPC's run-time
 * library consumes.
 */

#ifndef CDPC_COMPILER_COMPILER_H
#define CDPC_COMPILER_COMPILER_H

#include "compiler/aligner.h"
#include "compiler/analysis.h"
#include "compiler/parallelizer.h"
#include "compiler/prefetcher.h"
#include "compiler/transpose.h"
#include "ir/layout.h"
#include "ir/program.h"

namespace cdpc
{

/** End-to-end compilation options. */
struct CompilerOptions
{
    /** Apply the Section 5.4 alignment + padding layout. */
    bool align = true;
    /** Insert software prefetches (Section 6.2). */
    bool prefetch = false;
    /** Transpose arrays for per-CPU contiguity (Section 2.2 [2]). */
    bool transpose = true;
    ParallelizerOptions parallelizer;
    PrefetcherOptions prefetcher;
    AlignerOptions aligner;
};

/** Everything the driver produced besides the mutated program. */
struct CompileResult
{
    AccessSummaries summaries;
    ParallelizerResult parallelizer;
    PrefetcherResult prefetcher;
    TransposeResult transpose;
    LayoutOptions layout;
};

/**
 * Compile @p program in place: decide suppression, assign addresses,
 * (optionally) insert prefetches, and derive the CDPC summaries.
 */
CompileResult compileProgram(Program &program,
                             const CompilerOptions &opts = {});

} // namespace cdpc

#endif // CDPC_COMPILER_COMPILER_H
