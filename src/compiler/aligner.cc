#include "compiler/aligner.h"

#include <set>
#include <vector>

#include "common/intmath.h"
#include "common/logging.h"

namespace cdpc
{

LayoutOptions
computeAlignedLayout(const Program &program,
                     const std::vector<GroupAccessPair> &groups,
                     const AlignerOptions &opts)
{
    fatalIf(opts.lineBytes == 0, "aligner line size must be nonzero");
    fatalIf(opts.l1SpanBytes % opts.lineBytes != 0,
            "L1 span must be a multiple of the line size");

    LayoutOptions layout;
    layout.alignToLine = true;
    layout.lineBytes = opts.lineBytes;
    layout.padBytes.assign(program.arrays.size(), 0);

    // Adjacency from the group access information.
    std::vector<std::set<std::uint32_t>> partners(program.arrays.size());
    for (const GroupAccessPair &g : groups) {
        if (g.arrayA < partners.size() && g.arrayB < partners.size()) {
            partners[g.arrayA].insert(g.arrayB);
            partners[g.arrayB].insert(g.arrayA);
        }
    }

    // Simulate the layout walk, nudging each array forward until its
    // start offset within one L1 way differs from every already
    // placed group partner.
    std::vector<std::uint64_t> start(program.arrays.size(), 0);
    VAddr cursor = layout.dataBase;
    for (std::size_t i = 0; i < program.arrays.size(); i++) {
        cursor = roundUp(cursor, opts.lineBytes);
        std::uint64_t pad = 0;
        auto collides = [&](VAddr at) {
            std::uint64_t off = at % opts.l1SpanBytes;
            for (std::uint32_t p : partners[i]) {
                if (p < i && start[p] % opts.l1SpanBytes == off)
                    return true;
            }
            return false;
        };
        std::uint64_t max_pad = opts.l1SpanBytes;
        while (collides(cursor + pad) && pad < max_pad)
            pad += opts.lineBytes;
        layout.padBytes[i] = pad;
        start[i] = cursor + pad;
        cursor = start[i] + program.arrays[i].sizeBytes();
    }
    return layout;
}

LayoutOptions
computeUnalignedLayout()
{
    LayoutOptions layout;
    layout.alignToLine = false;
    layout.deliberatelyUnaligned = true;
    return layout;
}

} // namespace cdpc
