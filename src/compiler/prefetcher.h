/**
 * @file
 * Compiler-inserted prefetching (paper, Section 6.2).
 *
 * Mowry-style selective prefetching: locality analysis picks the
 * references likely to miss, software pipelining schedules the
 * prefetch far enough ahead to cover the memory latency. The pass
 * annotates each selected AffineRef with a prefetch distance in
 * external-cache lines; the machine simulator issues the prefetches
 * while executing the reference stream.
 *
 * Two pathologies from the paper are modeled faithfully:
 *  - nests whose tiling inhibits software pipelining get a distance
 *    of one line ("they are not scheduled early enough" — applu);
 *  - prefetches to pages absent from the TLB are dropped by the
 *    hardware (handled in MemorySystem), which defeats large-stride
 *    prefetching.
 */

#ifndef CDPC_COMPILER_PREFETCHER_H
#define CDPC_COMPILER_PREFETCHER_H

#include <cstdint>

#include "ir/program.h"

namespace cdpc
{

/** Knobs for the prefetching pass. */
struct PrefetcherOptions
{
    /** External cache line size (bytes). */
    std::uint32_t lineBytes = 32;
    /** Latency (cycles) a prefetch must cover. */
    std::uint64_t targetLatency = 200;
    /**
     * Skip references into arrays smaller than this fraction of the
     * external cache: they have enough temporal locality that they
     * are unlikely to miss (the "selective" in selective prefetching).
     */
    std::uint64_t minArrayBytes = 64 * 1024;
    /** Maximum software-pipelined distance, in lines. */
    std::uint32_t maxDistLines = 8;
};

/** Statistics the pass reports. */
struct PrefetcherResult
{
    std::uint32_t refsAnnotated = 0;
    std::uint32_t refsSkippedSmallArray = 0;
    std::uint32_t refsSkippedZeroStride = 0;
    std::uint32_t refsSkippedGroupReuse = 0;
};

/**
 * Annotate the program's steady-state references with prefetch
 * distances. Clears any previous annotations first, so the pass is
 * idempotent and can be toggled per experiment.
 */
PrefetcherResult insertPrefetches(Program &program,
                                  const PrefetcherOptions &opts = {});

/** Remove all prefetch annotations (the no-prefetch baseline). */
void clearPrefetches(Program &program);

} // namespace cdpc

#endif // CDPC_COMPILER_PREFETCHER_H
