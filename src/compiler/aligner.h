/**
 * @file
 * Data-structure alignment and padding (paper, Section 5.4).
 *
 * Two compile-time layout decisions complement page coloring:
 *  - every array starts on a cache-line boundary, eliminating false
 *    sharing between structures;
 *  - arrays used together (per the group access information) get
 *    small pads so their starting addresses never map to the same
 *    location in the *on-chip* cache, which page mapping cannot fix
 *    because that cache is virtually indexed.
 */

#ifndef CDPC_COMPILER_ALIGNER_H
#define CDPC_COMPILER_ALIGNER_H

#include <cstdint>
#include <vector>

#include "compiler/summaries.h"
#include "ir/layout.h"
#include "ir/program.h"

namespace cdpc
{

/** Knobs for the alignment pass. */
struct AlignerOptions
{
    std::uint32_t lineBytes = 32;
    /** Span of one on-chip cache way (size / assoc), in bytes. */
    std::uint64_t l1SpanBytes = 2 * 1024;
};

/**
 * Compute layout options implementing the Section 5.4 policy: line
 * alignment plus inter-array pads such that group-access partners
 * start at distinct on-chip cache offsets.
 *
 * @param program the program (addresses need not be assigned yet)
 * @param groups group access pairs from the analysis
 */
LayoutOptions computeAlignedLayout(const Program &program,
                                   const std::vector<GroupAccessPair> &groups,
                                   const AlignerOptions &opts = {});

/** The naive layout of Figure 9's "not aligned" configuration. */
LayoutOptions computeUnalignedLayout();

} // namespace cdpc

#endif // CDPC_COMPILER_ALIGNER_H
