/**
 * @file
 * The parallelizer pass: granularity-based suppression.
 *
 * SUIF statically schedules parallel loops but suppresses those too
 * fine-grained to pay for synchronization on real machines:
 * "Both apsi and wave5 have fine-grain loop-level parallelism that
 *  is suppressed ... because of their high synchronization and
 *  communication costs" (Section 4.1). This pass walks every nest
 * marked Parallel and demotes it to Suppressed when the work per
 * invocation falls below a threshold.
 */

#ifndef CDPC_COMPILER_PARALLELIZER_H
#define CDPC_COMPILER_PARALLELIZER_H

#include <cstdint>

#include "ir/program.h"

namespace cdpc
{

/** Knobs for the suppression heuristic. */
struct ParallelizerOptions
{
    /**
     * Minimum total instructions a parallel nest must execute per
     * invocation to be worth the barrier; below this it is
     * suppressed and runs on the master alone.
     */
    std::uint64_t suppressionThresholdInsts = 50000;
};

/** Statistics the pass reports. */
struct ParallelizerResult
{
    std::uint32_t parallelNests = 0;
    std::uint32_t suppressedNests = 0;
    std::uint32_t sequentialNests = 0;
};

/**
 * Apply granularity-based suppression to every steady-state nest.
 * Nests authored Sequential or Suppressed are left as-is.
 */
ParallelizerResult parallelize(Program &program,
                               const ParallelizerOptions &opts = {});

} // namespace cdpc

#endif // CDPC_COMPILER_PARALLELIZER_H
