/**
 * @file
 * The compiler -> run-time interface of CDPC (paper, Section 5.1).
 *
 * "The compiler extracts three kinds of information from the
 *  program: array partitioning, communication patterns, and group
 *  access information."
 *
 * These structures are exactly that interface: everything the
 * run-time library needs, with machine-specific parameters (CPU
 * count, cache geometry, page size) left to be bound at program
 * start-up, as in the paper.
 */

#ifndef CDPC_COMPILER_SUMMARIES_H
#define CDPC_COMPILER_SUMMARIES_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/types.h"
#include "ir/loop.h"

namespace cdpc
{

/**
 * How one array is partitioned across the processors by the static
 * schedule of the parallel loops that access it.
 */
struct ArrayPartitionSummary
{
    std::uint32_t arrayId = 0;
    /** Starting virtual address of the array. */
    VAddr start = 0;
    /** Total array size in bytes. */
    std::uint64_t sizeBytes = 0;
    /**
     * The data partitioning unit: the bytes operated on in one
     * iteration of the parallel loop (e.g. one column/row).
     */
    std::uint64_t unitBytes = 0;
    /** Number of units along the distributed dimension. */
    std::uint64_t numUnits = 0;
    PartitionPolicy policy = PartitionPolicy::Even;
    PartitionDir dir = PartitionDir::Forward;
};

/** Inter-processor communication shape on an array's boundaries. */
enum class CommType : unsigned char
{
    /** Neighbouring processors exchange boundary units. */
    Shift,
    /** Boundary exchange wraps around (CPU p-1 <-> CPU 0). */
    Rotate,
};

/** Which neighbour's boundary a processor reads. */
enum class CommDir : unsigned char
{
    /** Units just below the chunk (a[i-1]-style references). */
    Low,
    /** Units just above the chunk (a[i+1]-style references). */
    High,
    /** Both neighbours. */
    Both,
};

/** One communication pattern record. */
struct CommPatternSummary
{
    std::uint32_t arrayId = 0;
    CommType type = CommType::Shift;
    /** Width of the exchanged boundary region, in partition units. */
    std::uint32_t boundaryUnits = 1;
    CommDir dir = CommDir::Both;
};

/** A pair of arrays accessed within the same loops. */
struct GroupAccessPair
{
    std::uint32_t arrayA = 0;
    std::uint32_t arrayB = 0;

    bool operator==(const GroupAccessPair &) const = default;
};

/** Placement facts about one array (start-up-time information). */
struct ArrayExtent
{
    std::uint32_t arrayId = 0;
    VAddr start = 0;
    std::uint64_t sizeBytes = 0;
    /** False when the array carries unanalyzable accesses. */
    bool analyzable = true;
};

/** The full summary bundle the compiler emits for one program. */
struct AccessSummaries
{
    std::string programName;
    /** Every array's extent, in declaration order. */
    std::vector<ArrayExtent> arrays;
    std::vector<ArrayPartitionSummary> partitions;
    std::vector<CommPatternSummary> comms;
    std::vector<GroupAccessPair> groups;

    /** Arrays with at least one unanalyzable access (no summary). */
    std::vector<std::uint32_t> unanalyzable;

    bool
    isAnalyzable(std::uint32_t array_id) const
    {
        for (std::uint32_t a : unanalyzable) {
            if (a == array_id)
                return false;
        }
        return true;
    }
};

} // namespace cdpc

#endif // CDPC_COMPILER_SUMMARIES_H
