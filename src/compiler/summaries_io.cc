#include "compiler/summaries_io.h"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "common/faultpoint.h"
#include "common/logging.h"

namespace cdpc
{

namespace
{

constexpr char kMagic[8] = {'C', 'D', 'P', 'C', 'S', 'U', 'M', '1'};

void
putU64(std::ostream &out, std::uint64_t v)
{
    out.write(reinterpret_cast<const char *>(&v), sizeof(v));
}

std::uint64_t
getU64(std::istream &in)
{
    std::uint64_t v = 0;
    in.read(reinterpret_cast<char *>(&v), sizeof(v));
    fatalIf(!in, "truncated summaries stream");
    return v;
}

void
putString(std::ostream &out, const std::string &s)
{
    putU64(out, s.size());
    out.write(s.data(), static_cast<std::streamsize>(s.size()));
}

std::string
getString(std::istream &in)
{
    std::uint64_t n = getU64(in);
    fatalIf(n > (1u << 20), "implausible string length in summaries");
    std::string s(n, '\0');
    in.read(s.data(), static_cast<std::streamsize>(n));
    fatalIf(!in, "truncated summaries stream");
    return s;
}

/** Decode a serialized enum, rejecting out-of-range raw values. */
template <typename Enum>
Enum
getEnum(std::istream &in, Enum max, const char *what)
{
    std::uint64_t raw = getU64(in);
    fatalIf(raw > static_cast<std::uint64_t>(max),
            "corrupt summaries: ", what, " value ", raw,
            " out of range");
    return static_cast<Enum>(raw);
}

} // namespace

void
saveSummaries(const AccessSummaries &s, std::ostream &out)
{
    out.write(kMagic, sizeof(kMagic));
    putString(out, s.programName);

    putU64(out, s.arrays.size());
    for (const ArrayExtent &a : s.arrays) {
        putU64(out, a.arrayId);
        putU64(out, a.start);
        putU64(out, a.sizeBytes);
        putU64(out, a.analyzable ? 1 : 0);
    }

    putU64(out, s.partitions.size());
    for (const ArrayPartitionSummary &p : s.partitions) {
        putU64(out, p.arrayId);
        putU64(out, p.start);
        putU64(out, p.sizeBytes);
        putU64(out, p.unitBytes);
        putU64(out, p.numUnits);
        putU64(out, static_cast<std::uint64_t>(p.policy));
        putU64(out, static_cast<std::uint64_t>(p.dir));
    }

    putU64(out, s.comms.size());
    for (const CommPatternSummary &c : s.comms) {
        putU64(out, c.arrayId);
        putU64(out, static_cast<std::uint64_t>(c.type));
        putU64(out, c.boundaryUnits);
        putU64(out, static_cast<std::uint64_t>(c.dir));
    }

    putU64(out, s.groups.size());
    for (const GroupAccessPair &g : s.groups) {
        putU64(out, g.arrayA);
        putU64(out, g.arrayB);
    }

    putU64(out, s.unanalyzable.size());
    for (std::uint32_t a : s.unanalyzable)
        putU64(out, a);

    fatalIf(!out, "summaries write failed");
}

void
saveSummaries(const AccessSummaries &s, const std::string &path)
{
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    fatalIf(!out, "cannot open summaries file for writing: ", path);
    saveSummaries(s, out);
}

AccessSummaries
loadSummaries(std::istream &in)
{
    faultPoint("summaries.load");
    char magic[8];
    in.read(magic, sizeof(magic));
    fatalIf(!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0,
            "not a CDPC summaries stream");

    AccessSummaries s;
    s.programName = getString(in);

    std::uint64_t n = getU64(in);
    fatalIf(n > (1u << 20), "implausible array count");
    for (std::uint64_t i = 0; i < n; i++) {
        ArrayExtent a;
        std::uint64_t raw_id = getU64(in);
        fatalIf(raw_id > (1u << 20),
                "corrupt summaries: implausible array id ", raw_id);
        a.arrayId = static_cast<std::uint32_t>(raw_id);
        a.start = getU64(in);
        a.sizeBytes = getU64(in);
        a.analyzable = getU64(in) != 0;
        s.arrays.push_back(a);
    }

    n = getU64(in);
    fatalIf(n > (1u << 20), "implausible partition count");
    for (std::uint64_t i = 0; i < n; i++) {
        ArrayPartitionSummary p;
        p.arrayId = static_cast<std::uint32_t>(getU64(in));
        p.start = getU64(in);
        p.sizeBytes = getU64(in);
        p.unitBytes = getU64(in);
        p.numUnits = getU64(in);
        p.policy = getEnum(in, PartitionPolicy::Blocked,
                           "partition policy");
        p.dir = getEnum(in, PartitionDir::Reverse, "partition dir");
        s.partitions.push_back(p);
    }

    n = getU64(in);
    fatalIf(n > (1u << 20), "implausible comm count");
    for (std::uint64_t i = 0; i < n; i++) {
        CommPatternSummary c;
        c.arrayId = static_cast<std::uint32_t>(getU64(in));
        c.type = getEnum(in, CommType::Rotate, "comm type");
        c.boundaryUnits = static_cast<std::uint32_t>(getU64(in));
        c.dir = getEnum(in, CommDir::Both, "comm dir");
        s.comms.push_back(c);
    }

    n = getU64(in);
    fatalIf(n > (1u << 20), "implausible group count");
    for (std::uint64_t i = 0; i < n; i++) {
        GroupAccessPair g;
        g.arrayA = static_cast<std::uint32_t>(getU64(in));
        g.arrayB = static_cast<std::uint32_t>(getU64(in));
        s.groups.push_back(g);
    }

    n = getU64(in);
    fatalIf(n > (1u << 20), "implausible unanalyzable count");
    for (std::uint64_t i = 0; i < n; i++)
        s.unanalyzable.push_back(
            static_cast<std::uint32_t>(getU64(in)));

    return s;
}

AccessSummaries
loadSummaries(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    fatalIf(!in, "cannot open summaries file: ", path);
    return loadSummaries(in);
}

} // namespace cdpc
