#include "compiler/analysis.h"

#include <algorithm>
#include <cstdlib>
#include <set>

#include "common/logging.h"

namespace cdpc
{

namespace
{

/** Net coefficient of @p dim in @p ref's index expression. */
std::int64_t
coeffOf(const AffineRef &ref, std::uint32_t dim)
{
    std::int64_t c = 0;
    for (const AffineTerm &t : ref.terms) {
        if (t.loopDim == dim)
            c += t.coeffElems;
    }
    return c;
}

bool
samePartition(const ArrayPartitionSummary &a,
              const ArrayPartitionSummary &b)
{
    return a.arrayId == b.arrayId && a.unitBytes == b.unitBytes &&
           a.policy == b.policy && a.dir == b.dir;
}

void
analyzeNest(const Program &program, const LoopNest &nest,
            AccessSummaries &out, std::set<std::uint32_t> &unanalyzable)
{
    // Group access: every pair of distinct arrays in this nest.
    std::set<std::uint32_t> arrays_here;
    for (const AffineRef &r : nest.refs)
        arrays_here.insert(r.arrayId);
    for (auto a = arrays_here.begin(); a != arrays_here.end(); ++a) {
        for (auto b = std::next(a); b != arrays_here.end(); ++b) {
            GroupAccessPair pair{*a, *b};
            if (std::find(out.groups.begin(), out.groups.end(), pair) ==
                out.groups.end()) {
                out.groups.push_back(pair);
            }
        }
    }

    for (const AffineRef &ref : nest.refs) {
        const ArrayDecl &arr = program.arrays[ref.arrayId];
        if (ref.wrapModElems != 0 || !arr.summarizable) {
            unanalyzable.insert(ref.arrayId);
            continue;
        }
        if (nest.kind != NestKind::Parallel)
            continue;

        std::int64_t c_p = coeffOf(ref, nest.parallelDim);
        if (c_p == 0)
            continue; // replicated access in this nest

        // The summary model describes contiguous per-processor data:
        // it only applies when the distributed loop drives the
        // outermost (largest-stride) array index. Otherwise the
        // processor footprint is strided and no partition summary is
        // emitted — the array falls back to replicated treatment,
        // like the structures SUIF could not restructure.
        bool outermost = true;
        for (const AffineTerm &t : ref.terms) {
            if (t.loopDim != nest.parallelDim &&
                std::llabs(t.coeffElems) > std::llabs(c_p)) {
                outermost = false;
                break;
            }
        }
        if (!outermost)
            continue;

        ArrayPartitionSummary part;
        part.arrayId = ref.arrayId;
        part.start = arr.base;
        part.sizeBytes = arr.sizeBytes();
        part.unitBytes = static_cast<std::uint64_t>(std::llabs(c_p)) *
                         arr.elemBytes;
        part.numUnits = part.sizeBytes / std::max<std::uint64_t>(
                                             part.unitBytes, 1);
        part.policy = nest.partition.policy;
        part.dir = nest.partition.dir;

        bool duplicate = false;
        for (const ArrayPartitionSummary &p : out.partitions) {
            if (samePartition(p, part)) {
                duplicate = true;
                break;
            }
        }
        if (!duplicate)
            out.partitions.push_back(part);

        // Shift communication: a constant offset of a small whole
        // number of partition units means this CPU reads its
        // neighbour's boundary units.
        if (ref.constElems != 0 && ref.constElems % c_p == 0) {
            std::int64_t units = ref.constElems / c_p;
            if (units != 0 && std::llabs(units) <= 2) {
                CommPatternSummary comm;
                comm.arrayId = ref.arrayId;
                comm.type = CommType::Shift;
                comm.boundaryUnits =
                    static_cast<std::uint32_t>(std::llabs(units));
                comm.dir = units < 0 ? CommDir::Low : CommDir::High;
                bool seen = false;
                for (CommPatternSummary &c : out.comms) {
                    if (c.arrayId == comm.arrayId &&
                        c.type == comm.type) {
                        // Merge: widen and combine directions.
                        c.boundaryUnits =
                            std::max(c.boundaryUnits,
                                     comm.boundaryUnits);
                        if (c.dir != comm.dir)
                            c.dir = CommDir::Both;
                        seen = true;
                        break;
                    }
                }
                if (!seen)
                    out.comms.push_back(comm);
            }
        }
    }
}

} // namespace

AccessSummaries
analyzeProgram(const Program &program)
{
    AccessSummaries out;
    out.programName = program.name;
    std::set<std::uint32_t> unanalyzable;

    // Arrays the workload author already flagged (e.g. indirect
    // accesses the real compiler could not analyze).
    for (std::size_t i = 0; i < program.arrays.size(); i++) {
        if (!program.arrays[i].summarizable)
            unanalyzable.insert(static_cast<std::uint32_t>(i));
    }

    for (const Phase &phase : program.steady) {
        for (const LoopNest &nest : phase.nests)
            analyzeNest(program, nest, out, unanalyzable);
    }

    // Author-declared communication (e.g. periodic boundaries done
    // through index arithmetic the affine analysis cannot see).
    for (const DeclaredComm &d : program.declaredComms) {
        fatalIf(d.arrayId >= program.arrays.size(),
                "declared comm names nonexistent array ", d.arrayId);
        CommPatternSummary comm;
        comm.arrayId = d.arrayId;
        comm.type = d.rotate ? CommType::Rotate : CommType::Shift;
        comm.boundaryUnits = d.boundaryUnits;
        comm.dir = CommDir::Both;
        bool merged = false;
        for (CommPatternSummary &c : out.comms) {
            if (c.arrayId == comm.arrayId && c.type == comm.type) {
                c.boundaryUnits =
                    std::max(c.boundaryUnits, comm.boundaryUnits);
                c.dir = CommDir::Both;
                merged = true;
                break;
            }
        }
        if (!merged)
            out.comms.push_back(comm);
    }

    // Drop partitions of arrays that later turned out unanalyzable.
    std::erase_if(out.partitions,
                  [&](const ArrayPartitionSummary &p) {
                      return unanalyzable.contains(p.arrayId);
                  });
    std::erase_if(out.comms, [&](const CommPatternSummary &c) {
        return unanalyzable.contains(c.arrayId);
    });

    out.unanalyzable.assign(unanalyzable.begin(), unanalyzable.end());

    out.arrays.reserve(program.arrays.size());
    for (std::size_t i = 0; i < program.arrays.size(); i++) {
        const ArrayDecl &a = program.arrays[i];
        ArrayExtent ext;
        ext.arrayId = static_cast<std::uint32_t>(i);
        ext.start = a.base;
        ext.sizeBytes = a.sizeBytes();
        ext.analyzable =
            !unanalyzable.contains(static_cast<std::uint32_t>(i));
        out.arrays.push_back(ext);
    }
    return out;
}

} // namespace cdpc
