#include "compiler/parallelizer.h"

namespace cdpc
{

namespace
{

std::uint64_t
nestWork(const LoopNest &nest)
{
    // Instructions plus one unit per reference: a rough cost model of
    // a nest invocation, enough to separate fine-grain loops from
    // real computational kernels.
    std::uint64_t per_iter = nest.instsPerIter + nest.refs.size();
    return nest.totalIters() * per_iter;
}

} // namespace

ParallelizerResult
parallelize(Program &program, const ParallelizerOptions &opts)
{
    ParallelizerResult res;
    for (Phase &phase : program.steady) {
        for (LoopNest &nest : phase.nests) {
            switch (nest.kind) {
              case NestKind::Sequential:
                res.sequentialNests++;
                break;
              case NestKind::Suppressed:
                res.suppressedNests++;
                break;
              case NestKind::Parallel:
                if (nestWork(nest) < opts.suppressionThresholdInsts) {
                    nest.kind = NestKind::Suppressed;
                    res.suppressedNests++;
                } else {
                    res.parallelNests++;
                }
                break;
            }
        }
    }
    return res;
}

} // namespace cdpc
