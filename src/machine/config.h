/**
 * @file
 * MachineConfig: every architectural parameter of the simulated
 * multiprocessor in one value type, with named presets.
 *
 * The paper's base machine (Section 3.2) is a bus-based SMP of
 * single-issue 400MHz R4400s with 32KB 2-way split L1 caches, a 1MB
 * direct-mapped external cache with 128B lines, 4KB pages, a
 * 1.2GB/s split-transaction bus, and 500ns/750ns miss latencies.
 *
 * Presets derive a 1/8-scale model (see DESIGN.md §6) that keeps the
 * quantities CDPC cares about identical: 256 page colors for the
 * direct-mapped cache, the data-set/cache ratio, and latencies in
 * cycles. paperFull() keeps the paper's absolute sizes.
 */

#ifndef CDPC_MACHINE_CONFIG_H
#define CDPC_MACHINE_CONFIG_H

#include <cstdint>
#include <string>

#include "common/types.h"

namespace cdpc
{

/**
 * How a cache maps addresses to sets and physical pages to colors
 * (machine/index_function.h holds the actual mappings).
 */
enum class IndexKind : std::uint8_t
{
    /** Power-of-two bit-select (the paper's machines). */
    Modulo,
    /** Sliced LLC with an XOR-of-address-bits slice hash. */
    SlicedHash,
    /** Channel-interleaved direct-mapped DRAM cache tier. */
    DramCache,
};

/** Cache geometry for one level. */
struct CacheConfig
{
    std::uint64_t sizeBytes = 0;
    std::uint32_t assoc = 1;
    std::uint32_t lineBytes = 32;
    /** Address→set / page→color mapping family. */
    IndexKind indexKind = IndexKind::Modulo;
    /**
     * Slice count (SlicedHash) or channel count (DramCache); must
     * divide numSets(). Ignored (must be 1) for Modulo.
     */
    std::uint32_t slices = 1;

    std::uint64_t numLines() const { return sizeBytes / lineBytes; }
    std::uint64_t numSets() const { return numLines() / assoc; }
    std::uint64_t setsPerSlice() const { return numSets() / slices; }
};

/** Full machine description. */
struct MachineConfig
{
    /** Human-readable preset name (appears in reports). */
    std::string name = "unnamed";

    std::uint32_t numCpus = 1;

    /** Per-CPU on-chip data cache (virtually indexed). */
    CacheConfig l1d{4 * 1024, 2, 32};
    /** Per-CPU on-chip instruction cache (virtually indexed). */
    CacheConfig l1i{4 * 1024, 2, 32};
    /** Per-CPU external cache (physically indexed). */
    CacheConfig l2{128 * 1024, 1, 32};

    std::uint64_t pageBytes = 512;

    /** Number of physical pages available to the application. */
    std::uint64_t physPages = 64 * 1024;

    /** TLB entries (fully associative, LRU). */
    std::uint32_t tlbEntries = 64;

    /** Kernel cycles to service one TLB refill. */
    Cycles tlbMissCycles = 30;
    /** Kernel cycles to service one page fault (allocation + zeroing). */
    Cycles pageFaultCycles = 2000;

    /** Stall cycles for an L1 miss that hits in the external cache. */
    Cycles l2HitCycles = 10;
    /** Minimum latency of an external-cache miss served by memory. */
    Cycles memLatencyCycles = 200;
    /** Minimum latency when the line is dirty in another cache. */
    Cycles remoteDirtyLatencyCycles = 300;

    /** Bus occupancy (cycles) of one cache-line data transfer. */
    Cycles busDataCycles = 40;
    /** Bus occupancy of a writeback transfer. */
    Cycles busWritebackCycles = 40;
    /** Bus occupancy of an ownership upgrade (address-only). */
    Cycles busUpgradeCycles = 8;

    /** Cost of one barrier episode (software barrier, Section 4.1). */
    Cycles barrierCycles = 400;
    /** Fixed per-parallel-loop fork/dispatch overhead on each CPU. */
    Cycles forkCycles = 200;

    /**
     * Maximum outstanding prefetches per CPU; one more stalls the
     * processor (the paper's R10000 model allows 4).
     */
    std::uint32_t maxOutstandingPrefetches = 4;

    /**
     * Number of page colors in the external cache. The count is the
     * paper's formula for every index kind — size / (page * assoc) —
     * only the page→color *mapping* varies (see indexFunction()).
     */
    std::uint64_t
    numColors() const
    {
        return l2.sizeBytes / (pageBytes * l2.assoc);
    }

    /**
     * The external cache's address→set / page→color mapping. Every
     * layer that turns a physical page into a color (PhysMem, the
     * profiler, the differential verifier) must derive it from this
     * one object; inlining `ppn % numColors()` silently breaks on
     * SlicedHash / DramCache machines.
     */
    class IndexFunction indexFunction() const;

    /** Lines per page. */
    std::uint64_t linesPerPage() const { return pageBytes / l2.lineBytes; }

    /** Sanity-check invariants; calls fatal() on a bad configuration. */
    void validate() const;

    /**
     * The 1/8-scale model of the paper's base SimOS machine:
     * 128KB direct-mapped external cache, 32B lines, 512B pages
     * (256 colors), 4KB 2-way L1s.
     */
    static MachineConfig paperScaled(std::uint32_t ncpus);

    /** paperScaled() with a two-way set-associative external cache. */
    static MachineConfig paperScaledTwoWay(std::uint32_t ncpus);

    /** paperScaled() with a 4x larger (512KB ~ "4MB") external cache. */
    static MachineConfig paperScaledBig(std::uint32_t ncpus);

    /**
     * 1/8-scale model of the AlphaServer 8400 used for validation in
     * Section 7: 4MB-class direct-mapped external cache.
     */
    static MachineConfig alphaScaled(std::uint32_t ncpus);

    /** The paper's full-size base machine (slow to simulate). */
    static MachineConfig paperFull(std::uint32_t ncpus);

    /**
     * paperScaled() with a hostile external cache: three 64KB slices
     * selected by a Sandy-Bridge-style XOR hash of the physical
     * address bits above the slice footprint. 3072 sets and 384
     * colors — neither a power of two — and consecutive physical
     * pages no longer cycle the color space linearly.
     */
    static MachineConfig paperScaledSlicedHash(std::uint32_t ncpus);

    /**
     * A DRAM-as-cache memory-mode machine (Optane-style): the
     * "external cache" is a 2MB direct-mapped DRAM tier in front of
     * slow persistent memory, pages are large (4KB) and the color
     * space explodes to 512. Pages interleave across 4 channels, so
     * ppn % colors is the wrong color for three of every four pages.
     */
    static MachineConfig dramCacheMode(std::uint32_t ncpus);
};

} // namespace cdpc

#endif // CDPC_MACHINE_CONFIG_H
