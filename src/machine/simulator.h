/**
 * @file
 * MpSimulator: execution-driven simulation of a compiled Program on
 * the modeled multiprocessor.
 *
 * The simulator plays the role SimOS plays in the paper: it executes
 * the parallelized program's reference streams against the memory
 * hierarchy with full timing. The SUIF execution model (paper,
 * Figure 1) is reproduced: a master CPU runs sequential sections
 * while slaves spin; parallel loops fork to all CPUs, which run
 * their statically scheduled chunks and meet at a barrier; loops the
 * compiler suppressed run on the master alone.
 *
 * CPUs are interleaved in local-time order (the CPU with the
 * smallest clock executes next), which keeps the shared bus and the
 * MESI coherence protocol causally consistent.
 *
 * The measurement methodology is the paper's representative
 * execution window (Section 3.3): each steady-state phase is
 * simulated warmupRounds times with statistics discarded (cold-start
 * transients) and measureRounds times with statistics kept, and the
 * measured deltas are weighted by the phase's occurrence count.
 */

#ifndef CDPC_MACHINE_SIMULATOR_H
#define CDPC_MACHINE_SIMULATOR_H

#include <cstdint>
#include <vector>

#include "common/types.h"
#include "ir/exec.h"
#include "ir/program.h"
#include "machine/config.h"
#include "machine/stats.h"
#include "machine/trace.h"
#include "machine/tracefile.h"
#include "mem/memsystem.h"
#include "obs/snapshot.h"

namespace cdpc
{

/**
 * One nest's execution record: when it started (all CPUs are
 * synchronized at nest boundaries), when each CPU finished its part,
 * and when the program moved on. This is the raw material for the
 * paper's Figure 1 (the SUIF master/slave execution model).
 */
struct NestTimelineEntry
{
    std::string phase;
    std::string label;
    NestKind kind = NestKind::Parallel;
    Cycles start = 0;
    /** Per-CPU completion of its own work (master only for
     *  sequential/suppressed nests; slaves show start). */
    std::vector<Cycles> cpuEnd;
    /** Time after the barrier / join. */
    Cycles end = 0;
};

/** Simulation controls. */
struct SimOptions
{
    /** Rounds of each phase executed and discarded (cache warmup). */
    std::uint32_t warmupRounds = 1;
    /** Rounds of each phase measured (deltas weighted by occurrence). */
    std::uint32_t measureRounds = 1;
    /** Execute the init phase (first-touch order, page faults). */
    bool runInit = true;
    /**
     * Line accesses a CPU executes per scheduling turn. Larger
     * batches run faster but let a CPU race ahead of its peers
     * within the turn, distorting bus queueing; 1 keeps the shared
     * bus causally exact.
     */
    std::uint32_t batchLines = 1;
    /** Optional page-level trace sink (Figures 3 and 5). */
    PageTraceCollector *trace = nullptr;
    /** Optional per-nest timeline sink (Figure 1). */
    std::vector<NestTimelineEntry> *timeline = nullptr;
    /**
     * Optional demand-reference trace sink. Records are written in
     * global execution order; software prefetches are not recorded.
     */
    TraceWriter *record = nullptr;
    /**
     * Capture an interval snapshot every this many demand line
     * accesses (0 = off). Snapshots are simulation data — stamped
     * with simulated cycles, independent of host scheduling.
     */
    std::uint32_t statsInterval = 0;
    /** Where captured snapshots go; required when statsInterval. */
    std::vector<obs::IntervalSnapshot> *snapshots = nullptr;
};

/** Execution-driven multiprocessor simulator. */
class MpSimulator
{
  public:
    /**
     * @param config machine parameters
     * @param mem memory hierarchy (not owned; shares the config)
     */
    MpSimulator(const MachineConfig &config, MemorySystem &mem);

    /**
     * Run @p program: init phase once, then each steady phase
     * warmupRounds + measureRounds times, returning the
     * occurrence-weighted totals of the measured rounds.
     */
    WeightedTotals run(const Program &program,
                       const SimOptions &opts = {});

    /**
     * Execute every nest of @p phase once (all CPUs). Exposed for
     * tests and custom harnesses; statistics accumulate into the
     * simulator's counters, snapshot() reads them.
     */
    void runPhase(const Program &program, const Phase &phase,
                  const SimOptions &opts);

    /** Capture the current raw totals. */
    RunTotals snapshot() const;

    /** Per-CPU clock (cycles since construction/reset). */
    Cycles cpuClock(CpuId cpu) const { return clock.at(cpu); }

    /** Reset CPU clocks and execution counters (not the caches). */
    void resetExecState();

  private:
    MachineConfig cfg;
    MemorySystem &mem;
    std::uint32_t ncpus;

    std::vector<Cycles> clock;
    std::vector<CpuExecStats> exec;
    std::uint64_t barriers = 0;

    /** Demand line accesses since the last interval snapshot. */
    std::uint64_t sinceSnapshot = 0;

    /** Instruction-fetch modeling state. */
    std::vector<Insts> ifetchDebt;
    std::vector<std::uint64_t> textCursor;

    void runParallelNest(const Program &program, const LoopNest &nest,
                         const SimOptions &opts,
                         const std::string &phase_name);
    void runMasterNest(const Program &program, const LoopNest &nest,
                       const SimOptions &opts, bool suppressed,
                       const std::string &phase_name);

    /**
     * Execute one line access (with its prefetches and optional
     * instruction fetches) on @p cpu; advances the CPU's clock and
     * execution counters.
     */
    void executeLine(const Program &program, CpuId cpu,
                     const LineAccess &la, std::uint32_t concurrent,
                     const SimOptions &opts);

    /** Synchronize every CPU to @p t, attributing the wait. */
    void idleUntil(Cycles t, Cycles CpuExecStats::*category,
                   CpuId except);

    /** Append one interval snapshot to opts.snapshots. */
    void captureSnapshot(const SimOptions &opts);
};

} // namespace cdpc

#endif // CDPC_MACHINE_SIMULATOR_H
