/**
 * @file
 * MpSimulator: execution-driven simulation of a compiled Program on
 * the modeled multiprocessor.
 *
 * The simulator plays the role SimOS plays in the paper: it executes
 * the parallelized program's reference streams against the memory
 * hierarchy with full timing. The SUIF execution model (paper,
 * Figure 1) is reproduced: a master CPU runs sequential sections
 * while slaves spin; parallel loops fork to all CPUs, which run
 * their statically scheduled chunks and meet at a barrier; loops the
 * compiler suppressed run on the master alone.
 *
 * CPUs are interleaved in local-time order (the CPU with the
 * smallest clock executes next), which keeps the shared bus and the
 * MESI coherence protocol causally consistent.
 *
 * The measurement methodology is the paper's representative
 * execution window (Section 3.3): each steady-state phase is
 * simulated warmupRounds times with statistics discarded (cold-start
 * transients) and measureRounds times with statistics kept, and the
 * measured deltas are weighted by the phase's occurrence count.
 */

#ifndef CDPC_MACHINE_SIMULATOR_H
#define CDPC_MACHINE_SIMULATOR_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "ir/exec.h"
#include "ir/program.h"
#include "machine/config.h"
#include "machine/stats.h"
#include "machine/trace.h"
#include "machine/tracefile.h"
#include "mem/memsystem.h"
#include "obs/snapshot.h"

namespace cdpc
{

namespace obs
{
class ConflictProfiler;
}

/**
 * One nest's execution record: when it started (all CPUs are
 * synchronized at nest boundaries), when each CPU finished its part,
 * and when the program moved on. This is the raw material for the
 * paper's Figure 1 (the SUIF master/slave execution model).
 */
struct NestTimelineEntry
{
    std::string phase;
    std::string label;
    NestKind kind = NestKind::Parallel;
    Cycles start = 0;
    /** Per-CPU completion of its own work (master only for
     *  sequential/suppressed nests; slaves show start). */
    std::vector<Cycles> cpuEnd;
    /** Time after the barrier / join. */
    Cycles end = 0;
};

/** Simulation controls. */
struct SimOptions
{
    /** Rounds of each phase executed and discarded (cache warmup). */
    std::uint32_t warmupRounds = 1;
    /** Rounds of each phase measured (deltas weighted by occurrence). */
    std::uint32_t measureRounds = 1;
    /** Execute the init phase (first-touch order, page faults). */
    bool runInit = true;
    /**
     * Line accesses a CPU executes per scheduling turn. Larger
     * batches run faster but let a CPU race ahead of its peers
     * within the turn, distorting bus queueing; 1 keeps the shared
     * bus causally exact.
     */
    std::uint32_t batchLines = 1;
    /** Optional page-level trace sink (Figures 3 and 5). */
    PageTraceCollector *trace = nullptr;
    /** Optional per-nest timeline sink (Figure 1). */
    std::vector<NestTimelineEntry> *timeline = nullptr;
    /**
     * Optional demand-reference trace sink. Records are written in
     * global execution order; software prefetches are not recorded.
     */
    TraceWriter *record = nullptr;
    /**
     * Capture an interval snapshot every this many demand line
     * accesses (0 = off). Snapshots are simulation data — stamped
     * with simulated cycles, independent of host scheduling.
     */
    std::uint32_t statsInterval = 0;
    /** Where captured snapshots go; required when statsInterval. */
    std::vector<obs::IntervalSnapshot> *snapshots = nullptr;
    /**
     * The run's conflict-attribution profiler (null = off). Only the
     * snapshot capturer reads it — per-color occupancy/conflict rows
     * are sampled when present; the serial degrade itself comes from
     * MemorySystem::parallelSafe() seeing the installed hook.
     */
    const obs::ConflictProfiler *profiler = nullptr;
    /**
     * Host threads sharding one experiment's per-CPU reference
     * streams (the epoch-parallel engine, DESIGN.md §14). 1 = the
     * classic serial interleave; 0 = auto (hardware concurrency);
     * N > 1 runs parallel nests in bounded local-time epochs with
     * bus/MESI reconciliation at epoch boundaries. Outputs are
     * bit-identical at every value — nests whose active hooks need
     * the global reference order (lockstep verification, dynamic
     * recoloring, cadence audits, trace recording, interval
     * snapshots, ifetch modeling, steal fallback) degrade to serial
     * automatically.
     */
    std::uint32_t simThreads = 1;
    /**
     * Epoch window in simulated cycles; 0 = auto, derived from the
     * bus's minimum transaction occupancy. Pacing only: any value
     * >= 1 produces identical outputs (the window bounds how far a
     * CPU may run past the slowest peer between reconciliations, not
     * what it may touch).
     */
    Cycles epochWindow = 0;
};

/** Counters describing how the epoch engine executed (tests/metrics). */
struct EpochStats
{
    /** Parallel phases executed (gang dispatches). */
    std::uint64_t epochs = 0;
    /** Line accesses committed on the provably-local fast path. */
    std::uint64_t localLines = 0;
    /** Line accesses executed serially at epoch boundaries. */
    std::uint64_t deferredLines = 0;
    /** Parallel nests run by the epoch engine. */
    std::uint64_t parallelNests = 0;
    /** Parallel nests that degraded to serial despite simThreads>1. */
    std::uint64_t serialNests = 0;
};

class EpochGang;

/** Execution-driven multiprocessor simulator. */
class MpSimulator
{
  public:
    /**
     * @param config machine parameters
     * @param mem memory hierarchy (not owned; shares the config)
     */
    MpSimulator(const MachineConfig &config, MemorySystem &mem);
    ~MpSimulator();

    /**
     * Run @p program: init phase once, then each steady phase
     * warmupRounds + measureRounds times, returning the
     * occurrence-weighted totals of the measured rounds.
     */
    WeightedTotals run(const Program &program,
                       const SimOptions &opts = {});

    /**
     * Execute every nest of @p phase once (all CPUs). Exposed for
     * tests and custom harnesses; statistics accumulate into the
     * simulator's counters, snapshot() reads them.
     */
    void runPhase(const Program &program, const Phase &phase,
                  const SimOptions &opts);

    /** Capture the current raw totals. */
    RunTotals snapshot() const;

    /** Per-CPU clock (cycles since construction/reset). */
    Cycles cpuClock(CpuId cpu) const { return clock.at(cpu); }

    /** Reset CPU clocks and execution counters (not the caches). */
    void resetExecState();

    /** How the epoch engine executed since the last reset. */
    const EpochStats &epochStats() const { return epochStats_; }

    /**
     * Resolve opts.simThreads against auto-detection and the CPU
     * count: 0 maps to hardware concurrency, and more threads than
     * simulated CPUs are pointless (static cpu -> thread partition).
     */
    static std::uint32_t effectiveSimThreads(std::uint32_t requested,
                                             std::uint32_t ncpus);

  private:
    MachineConfig cfg;
    MemorySystem &mem;
    std::uint32_t ncpus;

    std::vector<Cycles> clock;
    std::vector<CpuExecStats> exec;
    std::uint64_t barriers = 0;

    /** Demand line accesses since the last interval snapshot. */
    std::uint64_t sinceSnapshot = 0;

    /** Instruction-fetch modeling state. */
    std::vector<Insts> ifetchDebt;
    std::vector<std::uint64_t> textCursor;

    /**
     * Per-CPU exclusive page intervals for one nest: a page appears
     * in priv[c] iff c's reference stream (demand and prefetch
     * targets, conservatively over-approximated from the nest's Run
     * records) can touch it and no other CPU's stream can. Exclusive
     * pages are the privacy half of the local-execution proof; the
     * footprint is a pure function of (program, nest) and is cached
     * across rounds.
     */
    struct PageInterval
    {
        PageNum lo = 0; ///< first page (inclusive)
        PageNum hi = 0; ///< last page + 1 (exclusive)
    };
    struct NestFootprint
    {
        const LoopNest *nest = nullptr;
        const Program *program = nullptr;
        /** Per CPU: sorted disjoint exclusively-owned page ranges. */
        std::vector<std::vector<PageInterval>> priv;
    };

    void runParallelNest(const Program &program, const LoopNest &nest,
                         const SimOptions &opts,
                         const std::string &phase_name);

    /** Epoch-parallel execution of one parallel nest. */
    void runParallelNestEpoch(const Program &program,
                              const LoopNest &nest,
                              const SimOptions &opts,
                              const std::string &phase_name,
                              std::uint32_t nthreads);

    /** True when this run's hooks permit the epoch engine at all. */
    bool epochEligible(const Program &program,
                       const SimOptions &opts) const;

    /** Build (or fetch the cached) footprint for @p nest. */
    const NestFootprint &footprintFor(const Program &program,
                                      const LoopNest &nest);

    /** Is @p va's page exclusively @p cpu's within @p fp? */
    bool pagePrivateTo(const NestFootprint &fp, CpuId cpu,
                       VAddr va) const;

    /**
     * Pure proof that @p la can execute entirely on @p cpu's local
     * state: page privacy plus the memory system's hit-only proof
     * for the demand leg and the prefetch leg (whose classification
     * is returned for the commit).
     */
    bool lineIsLocal(const NestFootprint &fp, CpuId cpu,
                     const LineAccess &la,
                     MemorySystem::PrefetchLocality *pf) const;

    /**
     * Commit one proven-local line access: the exact clock and stat
     * transitions of executeLine() minus the hooks the eligibility
     * check guarantees are off.
     */
    void commitLocalLine(CpuId cpu, const LineAccess &la,
                         MemorySystem::PrefetchLocality pf,
                         const SimOptions &opts);

    /** Lazily (re)create the worker gang for @p nthreads. */
    void ensureGang(std::uint32_t nthreads);
    void runMasterNest(const Program &program, const LoopNest &nest,
                       const SimOptions &opts, bool suppressed,
                       const std::string &phase_name);

    /**
     * Execute one line access (with its prefetches and optional
     * instruction fetches) on @p cpu; advances the CPU's clock and
     * execution counters.
     */
    void executeLine(const Program &program, CpuId cpu,
                     const LineAccess &la, std::uint32_t concurrent,
                     const SimOptions &opts);

    /** Synchronize every CPU to @p t, attributing the wait. */
    void idleUntil(Cycles t, Cycles CpuExecStats::*category,
                   CpuId except);

    /** Append one interval snapshot to opts.snapshots. */
    void captureSnapshot(const SimOptions &opts);

    /** Persistent epoch worker gang (lazily created, sized to the
     *  last effective simThreads). */
    std::unique_ptr<EpochGang> gang_;
    EpochStats epochStats_;
    /** Per-nest footprint cache: rounds re-run identical nests. */
    std::unordered_map<const void *, NestFootprint> footprints_;
};

} // namespace cdpc

#endif // CDPC_MACHINE_SIMULATOR_H
