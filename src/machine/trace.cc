#include "machine/trace.h"

#include <algorithm>
#include <set>

namespace cdpc
{

std::vector<PageNum>
PageTraceCollector::allPages() const
{
    std::set<PageNum> all;
    for (const auto &s : perCpu)
        all.insert(s.begin(), s.end());
    return {all.begin(), all.end()};
}

std::uint32_t
PageTraceCollector::sharersOf(PageNum vpn) const
{
    std::uint32_t n = 0;
    for (const auto &s : perCpu) {
        if (s.contains(vpn))
            n++;
    }
    return n;
}

void
PageTraceCollector::clear()
{
    for (auto &s : perCpu)
        s.clear();
}

} // namespace cdpc
