#include "machine/stats.h"

#include <algorithm>

#include "common/logging.h"

namespace cdpc
{

namespace
{

double
delta(std::uint64_t before, std::uint64_t after)
{
    return static_cast<double>(after - before);
}

} // namespace

void
WeightedTotals::add(const RunTotals &before, const RunTotals &after,
                    double weight)
{
    panicIfNot(before.cpus.size() == after.cpus.size(),
               "snapshot CPU counts differ");

    for (std::size_t c = 0; c < after.cpus.size(); c++) {
        const CpuExecStats &b = before.cpus[c];
        const CpuExecStats &a = after.cpus[c];
        insts += delta(b.insts, a.insts) * weight;
        busy += delta(b.busy, a.busy) * weight;
        memStall += delta(b.memStall, a.memStall) * weight;
        kernel += delta(b.kernel, a.kernel) * weight;
        imbalance += delta(b.imbalance, a.imbalance) * weight;
        sequential += delta(b.sequential, a.sequential) * weight;
        suppressed += delta(b.suppressed, a.suppressed) * weight;
        sync += delta(b.sync, a.sync) * weight;
    }

    wall += delta(before.wall, after.wall) * weight;
    barriers += delta(before.barriers, after.barriers) * weight;

    const CpuMemStats &mb = before.mem;
    const CpuMemStats &ma = after.mem;
    refs += delta(mb.totalRefs(), ma.totalRefs()) * weight;
    l1Misses += delta(mb.l1Misses, ma.l1Misses) * weight;
    l2Hits += delta(mb.l2Hits, ma.l2Hits) * weight;
    l2Misses += delta(mb.l2Misses, ma.l2Misses) * weight;
    pageFaults += delta(mb.pageFaults, ma.pageFaults) * weight;
    tlbMisses += delta(mb.tlbMisses, ma.tlbMisses) * weight;
    l2HitStall += delta(mb.l2HitStall, ma.l2HitStall) * weight;
    prefetchLateStall +=
        delta(mb.prefetchLateStall, ma.prefetchLateStall) * weight;
    prefetchFullStall +=
        delta(mb.prefetchFullStall, ma.prefetchFullStall) * weight;
    for (std::size_t k = 0; k < missCount.size(); k++) {
        missCount[k] += delta(mb.missCount[k], ma.missCount[k]) * weight;
        missStall[k] += delta(mb.missStall[k], ma.missStall[k]) * weight;
    }
    prefetchesIssued +=
        delta(mb.prefetchesIssued, ma.prefetchesIssued) * weight;
    prefetchesDropped +=
        delta(mb.prefetchesDropped, ma.prefetchesDropped) * weight;
    prefetchesUseful +=
        delta(mb.prefetchesUseful, ma.prefetchesUseful) * weight;

    const BusStats &bb = before.bus;
    const BusStats &ba = after.bus;
    busDataBusy += delta(bb.dataBusy, ba.dataBusy) * weight;
    busWritebackBusy +=
        delta(bb.writebackBusy, ba.writebackBusy) * weight;
    busUpgradeBusy += delta(bb.upgradeBusy, ba.upgradeBusy) * weight;
    busQueueing += delta(bb.queueing, ba.queueing) * weight;
}

} // namespace cdpc
