/**
 * @file
 * IndexFunction: the pluggable address→set / page→color mapping of a
 * physically indexed cache (DESIGN.md §16).
 *
 * Every earlier MachineConfig derived cache sets and page colors with
 * power-of-two modulo arithmetic — `(addr >> lineShift) & setMask`
 * and `ppn % numColors` — which modern hardware abandoned. This class
 * makes the mapping a selectable property of a CacheConfig:
 *
 *  - Modulo: the classic mapping of the paper's machines. Consecutive
 *    physical pages cycle through the colors; sets are a bit-field of
 *    the address. Bit-identical to the historical inline math.
 *
 *  - SlicedHash: a sliced LLC in the style of Sandy Bridge's
 *    recovered slice hash ("Cracking Intel Sandy Bridge's Cache Hash
 *    Function"). The cache is `slices` equal slices; the slice is an
 *    XOR-of-address-bits hash of the bits *above* the within-slice
 *    footprint (the recovered functions use bits 17..31, all above
 *    the page offset), and the set within a slice is the usual low
 *    bits. Non-power-of-two slice counts are supported (real parts
 *    shipped 3-, 6- and 10-slice rings) via a mixed fold of the same
 *    input bits reduced mod `slices`, which makes the *total* set and
 *    color counts non-powers-of-two.
 *
 *  - DramCache: a direct-mapped DRAM tier used as a cache in front of
 *    slow memory (Optane "memory mode"): `PA % DRAM_SIZE` placement,
 *    huge color counts, large pages — except that multi-channel
 *    systems interleave *pages* across channels, so consecutive
 *    physical pages stride the channels instead of walking the color
 *    space linearly. `slices` is the channel count here.
 *
 * The invariant every consumer relies on: two pages have the same
 * color iff their lines land in exactly the same cache sets. All
 * three mappings preserve it, so "same set ⇒ same color" inference
 * (the profiler's page-conflict evidence) and per-color free lists
 * (PhysMem) stay sound under hostile index functions.
 *
 * Each query has two implementations: the optimized one (shifts,
 * masks, popcount) used by the simulator, and a *Ref variant written
 * with division, modulo and bit loops, used by the differential
 * reference model (src/verify/) so the two sides share no clever
 * machinery.
 *
 * Header-only on purpose: PhysMem (cdpc_vm) and Cache (cdpc_mem) sit
 * *below* cdpc_machine in the link graph but both consume the
 * mapping, so the implementation cannot live in a machine-layer
 * object file.
 */

#ifndef CDPC_MACHINE_INDEX_FUNCTION_H
#define CDPC_MACHINE_INDEX_FUNCTION_H

#include <bit>
#include <cstdint>
#include <initializer_list>

#include "common/intmath.h"
#include "common/logging.h"
#include "common/types.h"
#include "machine/config.h"

namespace cdpc
{

namespace detail
{

/** Set the listed bit positions in a 64-bit mask. */
constexpr std::uint64_t
bitsOf(std::initializer_list<int> bits)
{
    std::uint64_t p = 0;
    for (int b : bits)
        p |= std::uint64_t{1} << b;
    return p;
}

/**
 * The recovered Sandy Bridge hash covers physical bits 17..31, a
 * 15-bit window; tile the window across all 64 input bits so the
 * hash keeps discriminating however much memory is simulated.
 */
constexpr std::uint64_t
tile15(std::uint64_t pattern)
{
    std::uint64_t m = 0;
    for (unsigned s = 0; s < 64; s += 15)
        m |= pattern << s;
    return m;
}

/**
 * XOR-parity masks per slice-index bit. The first two rows are the
 * published Sandy Bridge o0/o1 functions expressed relative to bit
 * 17; the third is a synthetic companion of the same family for
 * 8-slice parts.
 */
inline constexpr std::uint64_t kSliceMask[3] = {
    tile15(bitsOf({1, 2, 4, 6, 8, 10, 12, 13, 14})),
    tile15(bitsOf({0, 2, 3, 4, 5, 6, 7, 9, 11, 12, 14})),
    tile15(bitsOf({0, 1, 3, 5, 7, 9, 10, 11, 13})),
};

/** murmur3 finalizer: the mixed fold for non-pow2 slice counts. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdULL;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ULL;
    x ^= x >> 33;
    return x;
}

} // namespace detail

/** @return "modulo", "sliced-hash" or "dram-cache". */
inline const char *
indexKindName(IndexKind k)
{
    switch (k) {
      case IndexKind::Modulo:
        return "modulo";
      case IndexKind::SlicedHash:
        return "sliced-hash";
      case IndexKind::DramCache:
        return "dram-cache";
    }
    return "unknown";
}

/** Address→set and page→color mapping for one cache level. */
class IndexFunction
{
  public:
    /** Degenerate single-color modulo map (placeholder only). */
    IndexFunction() = default;

    /**
     * Build the mapping for @p cache under @p page_bytes pages.
     *
     * @param cache geometry and index kind
     * @param page_bytes page size; pass 0 for a set-index-only
     *        function (pageColorOf/numColors then panic — the
     *        virtually indexed L1s never ask for colors)
     */
    inline IndexFunction(const CacheConfig &cache,
                         std::uint64_t page_bytes);

    /**
     * A color-math-only modulo map over @p num_colors (no cache
     * geometry): what legacy PhysMem(pages, colors) callers get.
     * setOf() panics.
     */
    static IndexFunction
    moduloColors(std::uint64_t num_colors)
    {
        fatalIf(num_colors == 0,
                "a color map needs at least one color");
        IndexFunction f;
        f.colors_ = num_colors;
        return f;
    }

    IndexKind kind() const { return kind_; }
    std::uint64_t numSets() const { return numSets_; }

    /** Whether page→color queries are available (a page size was
     *  given, or moduloColors() built a color-only map). */
    bool hasColorGeometry() const { return colors_ != 0; }

    /** Page colors in the cache; identical across kinds (only the
     *  page→color *mapping* differs). */
    std::uint64_t
    numColors() const
    {
        panicIfNot(colors_ != 0, "IndexFunction has no color geometry "
                   "(constructed without a page size)");
        return colors_;
    }

    /** @return set index of byte address @p addr, in [0, numSets). */
    std::uint64_t
    setOf(Addr addr) const
    {
        switch (kind_) {
          case IndexKind::Modulo:
            panicIfNot(numSets_ != 0,
                       "set index on a color-only IndexFunction");
            return (addr >> lineShift_) & setMask_;
          case IndexKind::SlicedHash: {
            Addr line = addr >> lineShift_;
            std::uint64_t within = line & withinMask_;
            return sliceOf(line >> spsShift_) * setsPerSlice_ + within;
          }
          case IndexKind::DramCache: {
            std::uint64_t in_page =
                (addr >> lineShift_) & (linesPerPage_ - 1);
            return pageColorOf(addr >> pageShift_) * linesPerPage_ +
                   in_page;
          }
        }
        panic("bad index kind");
    }

    /** Reference implementation of setOf(): division/modulo/bit-loop
     *  arithmetic only, for the differential model. */
    std::uint64_t
    setOfRef(Addr addr) const
    {
        std::uint64_t line = addr / lineBytes_;
        switch (kind_) {
          case IndexKind::Modulo:
            panicIfNot(numSets_ != 0,
                       "set index on a color-only IndexFunction");
            return line % numSets_;
          case IndexKind::SlicedHash:
            return sliceOfRef(line / setsPerSlice_) * setsPerSlice_ +
                   line % setsPerSlice_;
          case IndexKind::DramCache: {
            std::uint64_t ppn = addr / pageBytes_;
            std::uint64_t color =
                (ppn % slices_) * colorsPerSlice_ +
                (ppn / slices_) % colorsPerSlice_;
            return color * linesPerPage_ + line % linesPerPage_;
          }
        }
        panic("bad index kind");
    }

    /** @return color of physical page @p ppn, in [0, numColors). */
    Color
    pageColorOf(PageNum ppn) const
    {
        switch (kind_) {
          case IndexKind::Modulo:
            panicIfNot(colors_ != 0, "page color without geometry");
            return static_cast<Color>(ppn % colors_);
          case IndexKind::SlicedHash:
            return static_cast<Color>(
                sliceOf(ppn >> cpsShift_) * colorsPerSlice_ +
                (ppn & (colorsPerSlice_ - 1)));
          case IndexKind::DramCache: {
            std::uint64_t ch = ppn % slices_;
            std::uint64_t group = (ppn / slices_) % colorsPerSlice_;
            return static_cast<Color>(ch * colorsPerSlice_ + group);
          }
        }
        panic("bad index kind");
    }

    /**
     * Reference derivation of a page's color: project the page's
     * first line through setOfRef() and divide by lines-per-page —
     * the same-set⇒same-color relation run backwards. Used by the
     * differential verifier as an independent cross-check.
     */
    Color
    pageColorRef(PageNum ppn) const
    {
        panicIfNot(colors_ != 0, "page color without geometry");
        if (numSets_ == 0) // color-only modulo map
            return static_cast<Color>(ppn % colors_);
        return static_cast<Color>(setOfRef(ppn * pageBytes_) /
                                  linesPerPage_);
    }

    /**
     * True when pages @p a and @p b have identical set footprints —
     * the contract audit behind same-set⇒same-color; tests assert it
     * agrees with pageColorOf() equality over sampled page pairs.
     */
    bool
    sameFootprint(PageNum a, PageNum b) const
    {
        panicIfNot(linesPerPage_ != 0,
                   "footprint of a color-only IndexFunction");
        for (std::uint64_t k = 0; k < linesPerPage_; ++k) {
            if (setOf(a * pageBytes_ + k * lineBytes_) !=
                setOf(b * pageBytes_ + k * lineBytes_)) {
                return false;
            }
        }
        return true;
    }

  private:
    std::uint64_t
    sliceOf(std::uint64_t input) const
    {
        if (slices_ == 1)
            return 0;
        if (slicesPow2_) {
            std::uint64_t s = 0;
            for (unsigned b = 0; b < sliceBits_; ++b) {
                s |= std::uint64_t{
                    static_cast<unsigned>(std::popcount(
                        input & detail::kSliceMask[b])) & 1u} << b;
            }
            return s;
        }
        return detail::mix64(input) % slices_;
    }

    /** Bit-loop parity variant of sliceOf() for the reference side.
     *  (The non-pow2 fold is a hash with one definition; only the
     *  parity computation admits an independent expression.) */
    std::uint64_t
    sliceOfRef(std::uint64_t input) const
    {
        if (slices_ == 1)
            return 0;
        if (!slicesPow2_)
            return detail::mix64(input) % slices_;
        std::uint64_t s = 0;
        for (unsigned b = 0; b < sliceBits_; ++b) {
            std::uint64_t masked = input & detail::kSliceMask[b];
            unsigned parity = 0;
            while (masked != 0) {
                parity ^= static_cast<unsigned>(masked & 1);
                masked >>= 1;
            }
            s += std::uint64_t{parity} << b;
        }
        return s;
    }

    IndexKind kind_ = IndexKind::Modulo;
    unsigned lineShift_ = 0;
    std::uint32_t lineBytes_ = 0;
    std::uint64_t numSets_ = 0;
    std::uint64_t setMask_ = 0;
    /** Slice (SlicedHash) or channel (DramCache) count. */
    std::uint64_t slices_ = 1;
    std::uint64_t setsPerSlice_ = 0;
    std::uint64_t withinMask_ = 0;
    unsigned spsShift_ = 0;
    bool slicesPow2_ = false;
    unsigned sliceBits_ = 0;
    std::uint64_t pageBytes_ = 0;
    unsigned pageShift_ = 0;
    std::uint64_t linesPerPage_ = 0;
    /** Colors per slice (SlicedHash) / per channel (DramCache). */
    std::uint64_t colorsPerSlice_ = 0;
    unsigned cpsShift_ = 0;
    std::uint64_t colors_ = 0;
};

inline
IndexFunction::IndexFunction(const CacheConfig &cache,
                             std::uint64_t page_bytes)
{
    kind_ = cache.indexKind;
    lineBytes_ = cache.lineBytes;
    fatalIf(lineBytes_ == 0 || !isPowerOf2(lineBytes_),
            "index function: line size must be a power of two, got ",
            cache.lineBytes);
    lineShift_ = floorLog2(lineBytes_);
    fatalIf(cache.assoc == 0, "index function: associativity must be "
            "nonzero");
    numSets_ = cache.numSets();
    fatalIf(numSets_ == 0, "index function: cache has no sets");
    slices_ = cache.slices;
    fatalIf(slices_ == 0, "index function: slice count must be "
            "nonzero");
    fatalIf(numSets_ % slices_ != 0, "index function: slice count ",
            slices_, " must divide the ", numSets_, " sets");
    setsPerSlice_ = numSets_ / slices_;
    slicesPow2_ = isPowerOf2(slices_);

    if (page_bytes != 0) {
        pageBytes_ = page_bytes;
        fatalIf(!isPowerOf2(page_bytes),
                "index function: page size must be a power of two");
        pageShift_ = floorLog2(page_bytes);
        fatalIf(page_bytes % lineBytes_ != 0,
                "index function: page size must be a multiple of the "
                "line size");
        linesPerPage_ = page_bytes / lineBytes_;
        colors_ = cache.sizeBytes /
                  (page_bytes * static_cast<std::uint64_t>(cache.assoc));
        fatalIf(colors_ == 0, "index function: cache smaller than one "
                "page per way yields zero colors");
    }

    switch (kind_) {
      case IndexKind::Modulo:
        fatalIf(slices_ != 1,
                "modulo-indexed caches have exactly one slice");
        fatalIf(!isPowerOf2(numSets_),
                "modulo indexing needs a power-of-two set count, got ",
                numSets_);
        setMask_ = numSets_ - 1;
        break;
      case IndexKind::SlicedHash:
        fatalIf(!isPowerOf2(setsPerSlice_),
                "sliced-hash needs a power-of-two sets per slice, "
                "got ", setsPerSlice_);
        fatalIf(slices_ > 8, "sliced-hash supports at most 8 slices "
                "(3 hash functions), got ", slices_);
        withinMask_ = setsPerSlice_ - 1;
        spsShift_ = floorLog2(setsPerSlice_);
        sliceBits_ = slicesPow2_ ? floorLog2(slices_) : 0;
        if (page_bytes != 0) {
            fatalIf(setsPerSlice_ < linesPerPage_,
                    "sliced-hash: a page (", linesPerPage_,
                    " lines) must fit within one ", setsPerSlice_,
                    "-set slice");
            colorsPerSlice_ = setsPerSlice_ / linesPerPage_;
            cpsShift_ = floorLog2(colorsPerSlice_);
        }
        break;
      case IndexKind::DramCache:
        fatalIf(cache.assoc != 1,
                "a DRAM-cache tier is direct-mapped (assoc 1)");
        fatalIf(page_bytes == 0,
                "a DRAM-cache tier needs page geometry");
        fatalIf(colors_ % slices_ != 0, "dram-cache: channel count ",
                slices_, " must divide the ", colors_, " colors");
        colorsPerSlice_ = colors_ / slices_;
        break;
    }
}

} // namespace cdpc

#endif // CDPC_MACHINE_INDEX_FUNCTION_H
