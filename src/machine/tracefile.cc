#include "machine/tracefile.h"

#include <cstring>

#include "common/faultpoint.h"
#include "common/logging.h"
#include "mem/memsystem.h"

namespace cdpc
{

namespace
{

constexpr char kMagic[8] = {'C', 'D', 'P', 'C', 'T', 'R', 'C', '1'};

struct Header
{
    char magic[8];
    std::uint32_t version;
    std::uint32_t ncpus;
    std::uint64_t records;
};

static_assert(sizeof(Header) == 24, "trace header must be packed");

} // namespace

TraceWriter::TraceWriter(const std::string &path, std::uint32_t ncpus)
    : out(path, std::ios::binary | std::ios::trunc), ncpus(ncpus)
{
    fatalIf(!out, "cannot open trace file for writing: ", path);
    writeHeader();
}

void
TraceWriter::writeHeader()
{
    Header h{};
    std::memcpy(h.magic, kMagic, sizeof(kMagic));
    h.version = 1;
    h.ncpus = ncpus;
    h.records = count;
    out.seekp(0);
    out.write(reinterpret_cast<const char *>(&h), sizeof(h));
    fatalIf(!out, "trace header write failed");
}

void
TraceWriter::append(const TraceRecord &rec)
{
    panicIfNot(!closed, "append to a closed trace");
    out.write(reinterpret_cast<const char *>(&rec), sizeof(rec));
    fatalIf(!out, "trace record write failed");
    count++;
}

void
TraceWriter::close()
{
    if (closed)
        return;
    writeHeader(); // patch the final record count
    out.close();
    closed = true;
}

TraceWriter::~TraceWriter()
{
    close();
}

TraceReader::TraceReader(const std::string &path)
    : in(path, std::ios::binary)
{
    fatalIf(!in, "cannot open trace file: ", path);
    Header h{};
    in.read(reinterpret_cast<char *>(&h), sizeof(h));
    fatalIf(!in || std::memcmp(h.magic, kMagic, sizeof(kMagic)) != 0,
            "not a CDPC trace file: ", path);
    fatalIf(h.version != 1, "unsupported trace version ", h.version);
    fatalIf(h.ncpus == 0 || h.ncpus > 4096,
            "corrupt trace header: implausible CPU count ", h.ncpus);
    // A lying record count must be caught here, not as a mid-replay
    // truncation surprise: the payload has to actually be on disk.
    in.seekg(0, std::ios::end);
    auto file_bytes = static_cast<std::uint64_t>(in.tellg());
    in.seekg(sizeof(Header), std::ios::beg);
    fatalIf(file_bytes < sizeof(Header) ||
                h.records >
                    (file_bytes - sizeof(Header)) / sizeof(TraceRecord),
            "corrupt trace header: ", h.records,
            " records do not fit in ", file_bytes, " bytes");
    ncpus = h.ncpus;
    count = h.records;
}

bool
TraceReader::next(TraceRecord &rec)
{
    if (consumed >= count)
        return false;
    faultPoint("tracefile.read");
    in.read(reinterpret_cast<char *>(&rec), sizeof(rec));
    fatalIf(!in, "truncated trace file");
    consumed++;
    return true;
}

ReplayResult
replayTrace(TraceReader &reader, MemorySystem &mem)
{
    fatalIf(reader.numCpus() > mem.numCpus(),
            "trace was recorded on ", reader.numCpus(),
            " CPUs but the memory system has ", mem.numCpus());

    ReplayResult res;
    res.cpuClock.assign(mem.numCpus(), 0);

    TraceRecord rec;
    while (reader.next(rec)) {
        // Corrupt input is the user's problem, not an internal bug.
        fatalIf(rec.cpu >= mem.numCpus(),
                "corrupt trace: record names CPU ", unsigned(rec.cpu),
                " on a ", mem.numCpus(), "-CPU memory system");
        Cycles &clk = res.cpuClock[rec.cpu];
        clk += rec.insts;

        MemAccess a;
        a.va = rec.va;
        a.kind = rec.isIfetch()
                     ? AccessKind::Ifetch
                     : rec.isWrite() ? AccessKind::Store
                                     : AccessKind::Load;
        a.wordMask = rec.wordMask;
        AccessOutcome out = mem.access(rec.cpu, a, clk);
        clk += out.stall;
        res.records++;
    }
    return res;
}

} // namespace cdpc
