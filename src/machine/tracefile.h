/**
 * @file
 * Reference-trace capture and replay.
 *
 * SimOS-style workflow: record the demand reference stream of an
 * execution-driven run once (in global interleaved order, so the
 * coherence-relevant ordering is preserved), then replay it through
 * any memory-system configuration without re-interpreting the
 * program. Useful for regression baselines, for feeding the stream
 * into other tools, and for separating "what the program does" from
 * "how the hierarchy responds".
 *
 * The file format is a little-endian binary: a 24-byte header
 * (magic, version, CPU count, record count) followed by fixed-size
 * 24-byte records. Software prefetches are not recorded — a trace
 * captures the demand stream (see DESIGN.md).
 */

#ifndef CDPC_MACHINE_TRACEFILE_H
#define CDPC_MACHINE_TRACEFILE_H

#include <cstdint>
#include <fstream>
#include <string>
#include <vector>

#include "common/types.h"

namespace cdpc
{

class MemorySystem;

/** One demand reference in a trace. */
struct TraceRecord
{
    VAddr va = 0;
    /** Instructions executed along with this reference. */
    std::uint32_t insts = 0;
    std::uint32_t wordMask = 0;
    /** Element references this record stands for. */
    std::uint32_t elems = 0;
    std::uint8_t cpu = 0;
    /** Bit 0: write; bit 1: instruction fetch. */
    std::uint8_t flags = 0;
    std::uint16_t pad = 0;

    bool isWrite() const { return flags & 1; }
    bool isIfetch() const { return flags & 2; }
};

static_assert(sizeof(TraceRecord) == 24, "trace record must be packed");

/** Sequential trace writer. */
class TraceWriter
{
  public:
    /**
     * @param path output file (created/truncated)
     * @param ncpus CPU count recorded in the header
     */
    TraceWriter(const std::string &path, std::uint32_t ncpus);
    ~TraceWriter();

    TraceWriter(const TraceWriter &) = delete;
    TraceWriter &operator=(const TraceWriter &) = delete;

    /** Append one record (in global execution order). */
    void append(const TraceRecord &rec);

    /** Finalize the header; implicit in the destructor. */
    void close();

    std::uint64_t records() const { return count; }

  private:
    std::ofstream out;
    std::uint32_t ncpus;
    std::uint64_t count = 0;
    bool closed = false;

    void writeHeader();
};

/** Sequential trace reader. */
class TraceReader
{
  public:
    explicit TraceReader(const std::string &path);

    /** @return false at end of trace. */
    bool next(TraceRecord &rec);

    std::uint32_t numCpus() const { return ncpus; }
    std::uint64_t records() const { return count; }

  private:
    std::ifstream in;
    std::uint32_t ncpus = 0;
    std::uint64_t count = 0;
    std::uint64_t consumed = 0;
};

/** Outcome of a trace replay. */
struct ReplayResult
{
    std::uint64_t records = 0;
    /** Per-CPU final clocks (instructions + stalls). */
    std::vector<Cycles> cpuClock;

    Cycles
    combinedCycles() const
    {
        Cycles sum = 0;
        for (Cycles c : cpuClock)
            sum += c;
        return sum;
    }
};

/**
 * Replay a trace through @p mem, advancing per-CPU clocks by the
 * recorded instruction counts plus the memory system's stalls. The
 * records are applied in file order, preserving the recorded
 * coherence interleaving.
 */
ReplayResult replayTrace(TraceReader &reader, MemorySystem &mem);

} // namespace cdpc

#endif // CDPC_MACHINE_TRACEFILE_H
