/**
 * @file
 * Page-level access tracing: which CPUs touch which virtual pages
 * during the steady state. This is the raw material of the paper's
 * Figure 3 (sparse per-CPU footprints under the default layout) and
 * Figure 5 (dense footprints in CDPC coloring order).
 */

#ifndef CDPC_MACHINE_TRACE_H
#define CDPC_MACHINE_TRACE_H

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "common/types.h"

namespace cdpc
{

/** Records the set of virtual pages each CPU touches. */
class PageTraceCollector
{
  public:
    explicit PageTraceCollector(std::uint32_t ncpus) : perCpu(ncpus) {}

    void
    note(CpuId cpu, PageNum vpn)
    {
        perCpu[cpu].insert(vpn);
    }

    /** Pages CPU @p cpu touched. */
    const std::unordered_set<PageNum> &
    pagesOf(CpuId cpu) const
    {
        return perCpu.at(cpu);
    }

    std::uint32_t
    numCpus() const
    {
        return static_cast<std::uint32_t>(perCpu.size());
    }

    /** All pages touched by any CPU, sorted. */
    std::vector<PageNum> allPages() const;

    /** Number of CPUs that touched @p vpn. */
    std::uint32_t sharersOf(PageNum vpn) const;

    void clear();

  private:
    std::vector<std::unordered_set<PageNum>> perCpu;
};

} // namespace cdpc

#endif // CDPC_MACHINE_TRACE_H
