#include "machine/simulator.h"

#include <algorithm>
#include <queue>

#include "common/intmath.h"
#include "common/logging.h"
#include "obs/trace.h"

namespace cdpc
{

MpSimulator::MpSimulator(const MachineConfig &config, MemorySystem &mem)
    : cfg(config), mem(mem), ncpus(config.numCpus),
      clock(config.numCpus, 0), exec(config.numCpus),
      ifetchDebt(config.numCpus, 0), textCursor(config.numCpus, 0)
{
    fatalIf(mem.numCpus() != ncpus,
            "memory system CPU count disagrees with machine config");
}

void
MpSimulator::idleUntil(Cycles t, Cycles CpuExecStats::*category,
                       CpuId except)
{
    for (CpuId c = 0; c < ncpus; c++) {
        if (c == except)
            continue;
        if (clock[c] < t) {
            exec[c].*category += t - clock[c];
            clock[c] = t;
        }
    }
}

void
MpSimulator::executeLine(const Program &program, CpuId cpu,
                         const LineAccess &la, std::uint32_t concurrent,
                         const SimOptions &opts)
{
    CpuExecStats &e = exec[cpu];

    // Instruction execution: the body computation plus one issue slot
    // per memory reference (single-issue CPU).
    Insts ni = la.insts + la.elems;
    if (ni) {
        clock[cpu] += ni;
        e.busy += ni;
        e.insts += ni;
    }

    // Instruction-stream fetches (fpppp's bottleneck).
    if (program.modelIfetch && ni) {
        ifetchDebt[cpu] += ni;
        const Insts per_line = cfg.l2.lineBytes / 4; // 4-byte insts
        const std::uint64_t text_span =
            roundUp(program.textBytes, cfg.l2.lineBytes);
        while (ifetchDebt[cpu] >= per_line) {
            ifetchDebt[cpu] -= per_line;
            MemAccess ia;
            ia.va = program.textBase + textCursor[cpu];
            ia.kind = AccessKind::Ifetch;
            // lineBytes = 256 would shift a u32 by 32 (UB); saturate.
            const std::uint32_t words = cfg.l2.lineBytes / 8;
            ia.wordMask = words >= 32 ? ~std::uint32_t{0}
                                      : (std::uint32_t{1} << words) - 1;
            if (opts.record) {
                TraceRecord rec;
                rec.va = ia.va;
                rec.wordMask = ia.wordMask;
                rec.cpu = static_cast<std::uint8_t>(cpu);
                rec.flags = 2; // ifetch
                opts.record->append(rec);
            }
            AccessOutcome out = mem.access(cpu, ia, clock[cpu]);
            clock[cpu] += out.stall;
            e.memStall += out.stall - out.kernel;
            e.kernel += out.kernel;
            textCursor[cpu] =
                (textCursor[cpu] + cfg.l2.lineBytes) % text_span;
        }
    }

    if (la.elems == 0 || la.ref == nullptr)
        return; // compute-only record

    // Compiler-inserted prefetch, software-pipelined dist lines ahead
    // in the run's direction of travel.
    if (la.ref->prefetchDistLines) {
        std::uint64_t off = static_cast<std::uint64_t>(
                                la.ref->prefetchDistLines) *
                            cfg.l2.lineBytes;
        // A late (pipeline-inhibited) prefetch targets the line the
        // demand reference is about to touch: it starts the fetch a
        // cycle early, covering essentially nothing.
        if (la.ref->prefetchLate)
            off = 0;
        VAddr pva = la.backward ? la.va - off : la.va + off;
        // One issue slot for the prefetch instruction itself.
        clock[cpu] += 1;
        e.busy += 1;
        e.insts += 1;
        Cycles st = mem.prefetch(cpu, pva, clock[cpu]);
        clock[cpu] += st;
        e.memStall += st;
    }

    if (opts.record) {
        TraceRecord rec;
        rec.va = la.va;
        rec.insts = static_cast<std::uint32_t>(ni);
        rec.wordMask = la.wordMask;
        rec.elems = la.elems;
        rec.cpu = static_cast<std::uint8_t>(cpu);
        rec.flags = la.isWrite ? 1 : 0;
        opts.record->append(rec);
    }

    // Keep the trace clock on simulated time so sim-level events
    // fired inside mem.access (recolor, steal, bus stall) carry this
    // reference's stamp. One relaxed load + branch when not tracing.
    if (obs::traceActive())
        obs::setSimCycles(clock[cpu]);

    MemAccess a;
    a.va = la.va;
    a.kind = la.isWrite ? AccessKind::Store : AccessKind::Load;
    a.wordMask = la.wordMask;
    a.concurrentFaults = concurrent;
    AccessOutcome out = mem.access(cpu, a, clock[cpu]);
    clock[cpu] += out.stall;
    e.memStall += out.stall - out.kernel;
    e.kernel += out.kernel;

    if (opts.trace)
        opts.trace->note(cpu, la.va / cfg.pageBytes);

    if (opts.statsInterval && ++sinceSnapshot >= opts.statsInterval) {
        sinceSnapshot = 0;
        captureSnapshot(opts);
    }
}

void
MpSimulator::runParallelNest(const Program &program, const LoopNest &nest,
                             const SimOptions &opts,
                             const std::string &phase_name)
{
    NestTimelineEntry entry;
    if (opts.timeline) {
        entry.phase = phase_name;
        entry.label = nest.label;
        entry.kind = NestKind::Parallel;
        entry.start = clock[0];
    }

    // Fork/dispatch cost on every CPU.
    for (CpuId c = 0; c < ncpus; c++) {
        clock[c] += cfg.forkCycles;
        exec[c].sync += cfg.forkCycles;
    }

    std::vector<RunCursor> cursors;
    cursors.reserve(ncpus);
    for (CpuId c = 0; c < ncpus; c++)
        cursors.emplace_back(program, nest, c, ncpus, cfg.l2.lineBytes);

    using Entry = std::pair<Cycles, CpuId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    std::vector<Cycles> arrival(ncpus, 0);
    for (CpuId c = 0; c < ncpus; c++)
        pq.emplace(clock[c], c);

    std::uint32_t batch = std::max<std::uint32_t>(opts.batchLines, 1);
    LineAccess la;
    while (!pq.empty()) {
        CpuId cpu = pq.top().second;
        pq.pop();
        bool alive = true;
        for (std::uint32_t k = 0; k < batch; k++) {
            if (!cursors[cpu].next(la)) {
                alive = false;
                break;
            }
            executeLine(program, cpu, la, ncpus, opts);
        }
        if (alive)
            pq.emplace(clock[cpu], cpu);
        else
            arrival[cpu] = clock[cpu];
    }

    // Barrier: the spread of arrival times is load imbalance; the
    // barrier episode itself is synchronization cost.
    Cycles latest = *std::max_element(arrival.begin(), arrival.end());
    for (CpuId c = 0; c < ncpus; c++) {
        exec[c].imbalance += latest - arrival[c];
        clock[c] = latest + cfg.barrierCycles;
        exec[c].sync += cfg.barrierCycles;
    }
    barriers++;

    if (opts.timeline) {
        entry.cpuEnd = arrival;
        entry.end = clock[0];
        opts.timeline->push_back(std::move(entry));
    }
}

void
MpSimulator::runMasterNest(const Program &program, const LoopNest &nest,
                           const SimOptions &opts, bool suppressed,
                           const std::string &phase_name)
{
    NestTimelineEntry entry;
    if (opts.timeline) {
        entry.phase = phase_name;
        entry.label = nest.label;
        entry.kind = suppressed ? NestKind::Suppressed
                                : NestKind::Sequential;
        entry.start = clock[0];
        entry.cpuEnd.assign(ncpus, clock[0]);
    }

    RunCursor cursor(program, nest, 0, 1, cfg.l2.lineBytes);
    LineAccess la;
    while (cursor.next(la))
        executeLine(program, 0, la, 1, opts);
    idleUntil(clock[0],
              suppressed ? &CpuExecStats::suppressed
                         : &CpuExecStats::sequential,
              0);

    if (opts.timeline) {
        entry.cpuEnd[0] = clock[0];
        entry.end = clock[0];
        opts.timeline->push_back(std::move(entry));
    }
}

void
MpSimulator::runPhase(const Program &program, const Phase &phase,
                      const SimOptions &opts)
{
    for (const LoopNest &nest : phase.nests) {
        switch (nest.kind) {
          case NestKind::Parallel:
            runParallelNest(program, nest, opts, phase.name);
            break;
          case NestKind::Sequential:
            runMasterNest(program, nest, opts, false, phase.name);
            break;
          case NestKind::Suppressed:
            runMasterNest(program, nest, opts, true, phase.name);
            break;
        }
    }
}

void
MpSimulator::captureSnapshot(const SimOptions &opts)
{
    if (!opts.snapshots)
        return;
    obs::IntervalSnapshot snap;
    snap.seq = opts.snapshots->size();
    snap.cycles = *std::max_element(clock.begin(), clock.end());
    snap.cpus.reserve(ncpus);
    for (CpuId c = 0; c < ncpus; c++) {
        const CpuMemStats &s = mem.cpuStats(c);
        obs::CpuSnapshot cs;
        cs.refs = s.totalRefs();
        cs.l1Misses = s.l1Misses;
        cs.l2Misses = s.l2Misses;
        cs.missCount = s.missCount;
        snap.refs += cs.refs;
        snap.cpus.push_back(cs);
    }
    snap.colorPages = mem.addressSpace().mappedPagesPerColor();

    // Mirror the sample into the trace as counter tracks: per-CPU
    // external-cache miss rate over the interval just ended.
    if (obs::traceActive() && obs::traceContext().simEvents) {
        const obs::IntervalSnapshot *prev =
            opts.snapshots->empty() ? nullptr
                                    : &opts.snapshots->back();
        obs::TraceArgs args;
        for (CpuId c = 0; c < ncpus; c++) {
            const obs::CpuSnapshot &cs = snap.cpus[c];
            std::uint64_t refs = cs.refs;
            std::uint64_t misses = cs.l2Misses;
            if (prev && c < prev->cpus.size()) {
                refs -= prev->cpus[c].refs;
                misses -= prev->cpus[c].l2Misses;
            }
            args.emplace_back(("cpu" + std::to_string(c)).c_str(),
                              refs ? static_cast<double>(misses) /
                                         static_cast<double>(refs)
                                   : 0.0);
        }
        obs::setSimCycles(snap.cycles);
        obs::counterEvent("l2MissRate", obs::traceContext().pid,
                          obs::traceContext().simNowUs, args);
    }

    opts.snapshots->push_back(std::move(snap));
}

RunTotals
MpSimulator::snapshot() const
{
    RunTotals t;
    t.cpus = exec;
    t.mem = mem.totalStats();
    t.bus = mem.busStats();
    t.wall = *std::max_element(clock.begin(), clock.end());
    t.barriers = barriers;
    return t;
}

WeightedTotals
MpSimulator::run(const Program &program, const SimOptions &opts)
{
    fatalIf(opts.measureRounds == 0, "measureRounds must be at least 1");

    if (opts.runInit) {
        SimOptions init_opts = opts;
        init_opts.trace = nullptr; // Figures 3/5 plot steady state only
        runPhase(program, program.init, init_opts);
    }

    WeightedTotals out;
    for (const Phase &phase : program.steady) {
        for (std::uint32_t w = 0; w < opts.warmupRounds; w++) {
            SimOptions warm_opts = opts;
            warm_opts.trace = nullptr;
            runPhase(program, phase, warm_opts);
        }
        RunTotals before = snapshot();
        for (std::uint32_t m = 0; m < opts.measureRounds; m++)
            runPhase(program, phase, opts);
        RunTotals after = snapshot();
        double weight = static_cast<double>(phase.occurrences) /
                        opts.measureRounds;
        out.add(before, after, weight);
    }
    return out;
}

void
MpSimulator::resetExecState()
{
    std::fill(clock.begin(), clock.end(), 0);
    std::fill(exec.begin(), exec.end(), CpuExecStats{});
    std::fill(ifetchDebt.begin(), ifetchDebt.end(), 0);
    std::fill(textCursor.begin(), textCursor.end(), 0);
    barriers = 0;
    sinceSnapshot = 0;
}

} // namespace cdpc
