#include "machine/simulator.h"

#include <algorithm>
#include <bit>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>

#include "common/intmath.h"
#include "common/logging.h"
#include "obs/profile.h"
#include "obs/trace.h"

namespace cdpc
{

/**
 * Persistent worker gang for the epoch engine: T-1 parked threads
 * plus the calling thread as worker 0. Each parallel phase is one
 * run() — the generation counter releases the workers, the done
 * counter collects them, and the mutex hand-offs give every phase a
 * happens-before edge around the workers' per-CPU state writes (the
 * single-threaded boundary code may then read them freely).
 */
class EpochGang
{
  public:
    explicit EpochGang(std::uint32_t nthreads) : size_(nthreads)
    {
        threads_.reserve(nthreads > 0 ? nthreads - 1 : 0);
        for (std::uint32_t w = 1; w < nthreads; w++)
            threads_.emplace_back([this, w] { workerLoop(w); });
    }

    ~EpochGang()
    {
        {
            std::lock_guard<std::mutex> lock(m_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    std::uint32_t size() const { return size_; }

    /** Run fn(worker) on every worker; the caller runs worker 0. */
    void
    run(const std::function<void(std::uint32_t)> &fn)
    {
        if (size_ <= 1) {
            fn(0);
            return;
        }
        {
            std::lock_guard<std::mutex> lock(m_);
            job_ = &fn;
            pending_ = size_ - 1;
            gen_++;
        }
        cv_.notify_all();
        fn(0);
        {
            std::unique_lock<std::mutex> lock(m_);
            doneCv_.wait(lock, [this] { return pending_ == 0; });
            job_ = nullptr;
        }
    }

  private:
    void
    workerLoop(std::uint32_t w)
    {
        std::uint64_t seen = 0;
        for (;;) {
            const std::function<void(std::uint32_t)> *job = nullptr;
            {
                std::unique_lock<std::mutex> lock(m_);
                cv_.wait(lock,
                         [&] { return stop_ || gen_ != seen; });
                if (stop_)
                    return;
                seen = gen_;
                job = job_;
            }
            (*job)(w);
            {
                std::lock_guard<std::mutex> lock(m_);
                if (--pending_ == 0)
                    doneCv_.notify_one();
            }
        }
    }

    std::uint32_t size_;
    std::vector<std::thread> threads_;
    std::mutex m_;
    std::condition_variable cv_;
    std::condition_variable doneCv_;
    const std::function<void(std::uint32_t)> *job_ = nullptr;
    std::uint64_t gen_ = 0;
    std::uint32_t pending_ = 0;
    bool stop_ = false;
};

MpSimulator::MpSimulator(const MachineConfig &config, MemorySystem &mem)
    : cfg(config), mem(mem), ncpus(config.numCpus),
      clock(config.numCpus, 0), exec(config.numCpus),
      ifetchDebt(config.numCpus, 0), textCursor(config.numCpus, 0)
{
    fatalIf(mem.numCpus() != ncpus,
            "memory system CPU count disagrees with machine config");
}

MpSimulator::~MpSimulator() = default;

std::uint32_t
MpSimulator::effectiveSimThreads(std::uint32_t requested,
                                 std::uint32_t ncpus)
{
    std::uint32_t t = requested;
    if (t == 0) {
        t = std::thread::hardware_concurrency();
        if (t == 0)
            t = 1;
    }
    return std::clamp<std::uint32_t>(t, 1, ncpus);
}

void
MpSimulator::ensureGang(std::uint32_t nthreads)
{
    if (!gang_ || gang_->size() != nthreads)
        gang_ = std::make_unique<EpochGang>(nthreads);
}

void
MpSimulator::idleUntil(Cycles t, Cycles CpuExecStats::*category,
                       CpuId except)
{
    for (CpuId c = 0; c < ncpus; c++) {
        if (c == except)
            continue;
        if (clock[c] < t) {
            exec[c].*category += t - clock[c];
            clock[c] = t;
        }
    }
}

void
MpSimulator::executeLine(const Program &program, CpuId cpu,
                         const LineAccess &la, std::uint32_t concurrent,
                         const SimOptions &opts)
{
    CpuExecStats &e = exec[cpu];

    // Instruction execution: the body computation plus one issue slot
    // per memory reference (single-issue CPU).
    Insts ni = la.insts + la.elems;
    if (ni) {
        clock[cpu] += ni;
        e.busy += ni;
        e.insts += ni;
    }

    // Instruction-stream fetches (fpppp's bottleneck).
    if (program.modelIfetch && ni) {
        ifetchDebt[cpu] += ni;
        const Insts per_line = cfg.l2.lineBytes / 4; // 4-byte insts
        const std::uint64_t text_span =
            roundUp(program.textBytes, cfg.l2.lineBytes);
        while (ifetchDebt[cpu] >= per_line) {
            ifetchDebt[cpu] -= per_line;
            MemAccess ia;
            ia.va = program.textBase + textCursor[cpu];
            ia.kind = AccessKind::Ifetch;
            // lineBytes = 256 would shift a u32 by 32 (UB); saturate.
            const std::uint32_t words = cfg.l2.lineBytes / 8;
            ia.wordMask = words >= 32 ? ~std::uint32_t{0}
                                      : (std::uint32_t{1} << words) - 1;
            if (opts.record) {
                TraceRecord rec;
                rec.va = ia.va;
                rec.wordMask = ia.wordMask;
                rec.cpu = static_cast<std::uint8_t>(cpu);
                rec.flags = 2; // ifetch
                opts.record->append(rec);
            }
            AccessOutcome out = mem.access(cpu, ia, clock[cpu]);
            clock[cpu] += out.stall;
            e.memStall += out.stall - out.kernel;
            e.kernel += out.kernel;
            textCursor[cpu] =
                (textCursor[cpu] + cfg.l2.lineBytes) % text_span;
        }
    }

    if (la.elems == 0 || la.ref == nullptr)
        return; // compute-only record

    // Compiler-inserted prefetch, software-pipelined dist lines ahead
    // in the run's direction of travel.
    if (la.ref->prefetchDistLines) {
        std::uint64_t off = static_cast<std::uint64_t>(
                                la.ref->prefetchDistLines) *
                            cfg.l2.lineBytes;
        // A late (pipeline-inhibited) prefetch targets the line the
        // demand reference is about to touch: it starts the fetch a
        // cycle early, covering essentially nothing.
        if (la.ref->prefetchLate)
            off = 0;
        VAddr pva = la.backward ? la.va - off : la.va + off;
        // One issue slot for the prefetch instruction itself.
        clock[cpu] += 1;
        e.busy += 1;
        e.insts += 1;
        Cycles st = mem.prefetch(cpu, pva, clock[cpu]);
        clock[cpu] += st;
        e.memStall += st;
    }

    if (opts.record) {
        TraceRecord rec;
        rec.va = la.va;
        rec.insts = static_cast<std::uint32_t>(ni);
        rec.wordMask = la.wordMask;
        rec.elems = la.elems;
        rec.cpu = static_cast<std::uint8_t>(cpu);
        rec.flags = la.isWrite ? 1 : 0;
        opts.record->append(rec);
    }

    // Keep the trace clock on simulated time so sim-level events
    // fired inside mem.access (recolor, steal, bus stall) carry this
    // reference's stamp. One relaxed load + branch when not tracing.
    if (obs::traceActive())
        obs::setSimCycles(clock[cpu]);

    MemAccess a;
    a.va = la.va;
    a.kind = la.isWrite ? AccessKind::Store : AccessKind::Load;
    a.wordMask = la.wordMask;
    a.concurrentFaults = concurrent;
    AccessOutcome out = mem.access(cpu, a, clock[cpu]);
    clock[cpu] += out.stall;
    e.memStall += out.stall - out.kernel;
    e.kernel += out.kernel;

    if (opts.trace)
        opts.trace->note(cpu, la.va / cfg.pageBytes);

    if (opts.statsInterval && ++sinceSnapshot >= opts.statsInterval) {
        sinceSnapshot = 0;
        captureSnapshot(opts);
    }
}

void
MpSimulator::runParallelNest(const Program &program, const LoopNest &nest,
                             const SimOptions &opts,
                             const std::string &phase_name)
{
    std::uint32_t nthreads =
        effectiveSimThreads(opts.simThreads, ncpus);
    if (nthreads > 1) {
        if (epochEligible(program, opts)) {
            runParallelNestEpoch(program, nest, opts, phase_name,
                                 nthreads);
            return;
        }
        // A hook that needs the global reference order is active:
        // run this nest on the classic serial interleave (identical
        // output by construction, just no sharding).
        epochStats_.serialNests++;
    }

    NestTimelineEntry entry;
    if (opts.timeline) {
        entry.phase = phase_name;
        entry.label = nest.label;
        entry.kind = NestKind::Parallel;
        entry.start = clock[0];
    }

    // Fork/dispatch cost on every CPU.
    for (CpuId c = 0; c < ncpus; c++) {
        clock[c] += cfg.forkCycles;
        exec[c].sync += cfg.forkCycles;
    }

    std::vector<RunCursor> cursors;
    cursors.reserve(ncpus);
    for (CpuId c = 0; c < ncpus; c++)
        cursors.emplace_back(program, nest, c, ncpus, cfg.l2.lineBytes);

    using Entry = std::pair<Cycles, CpuId>;
    std::priority_queue<Entry, std::vector<Entry>, std::greater<>> pq;
    std::vector<Cycles> arrival(ncpus, 0);
    for (CpuId c = 0; c < ncpus; c++)
        pq.emplace(clock[c], c);

    std::uint32_t batch = std::max<std::uint32_t>(opts.batchLines, 1);
    LineAccess la;
    while (!pq.empty()) {
        CpuId cpu = pq.top().second;
        pq.pop();
        bool alive = true;
        for (std::uint32_t k = 0; k < batch; k++) {
            if (!cursors[cpu].next(la)) {
                alive = false;
                break;
            }
            executeLine(program, cpu, la, ncpus, opts);
        }
        if (alive)
            pq.emplace(clock[cpu], cpu);
        else
            arrival[cpu] = clock[cpu];
    }

    // Barrier: the spread of arrival times is load imbalance; the
    // barrier episode itself is synchronization cost.
    Cycles latest = *std::max_element(arrival.begin(), arrival.end());
    for (CpuId c = 0; c < ncpus; c++) {
        exec[c].imbalance += latest - arrival[c];
        clock[c] = latest + cfg.barrierCycles;
        exec[c].sync += cfg.barrierCycles;
    }
    barriers++;

    if (opts.timeline) {
        entry.cpuEnd = arrival;
        entry.end = clock[0];
        opts.timeline->push_back(std::move(entry));
    }
}

bool
MpSimulator::epochEligible(const Program &program,
                           const SimOptions &opts) const
{
    // Every exclusion here names a hook whose semantics depend on
    // the global (clock, cpu) reference order, which only the serial
    // interleave materializes ref-by-ref:
    //  - batchLines > 1 changes the serial interleave itself;
    //  - record writes demand references in global order;
    //  - statsInterval counts references globally between snapshots;
    //  - ifetch modeling streams every CPU through the shared text
    //    pages (never private, and the debt accounting is ordered);
    //  - an active Chrome trace stamps sim time per global event;
    //  - mem.parallelSafe() covers the lockstep observer, dynamic
    //    recoloring, cadence audits, and the page-stealing fallback.
    return ncpus > 1 && opts.batchLines <= 1 && !opts.record &&
           opts.statsInterval == 0 && !program.modelIfetch &&
           !obs::traceActive() && mem.parallelSafe();
}

const MpSimulator::NestFootprint &
MpSimulator::footprintFor(const Program &program, const LoopNest &nest)
{
    NestFootprint &fp = footprints_[&nest];
    if (fp.nest == &nest && fp.program == &program)
        return fp;

    fp.nest = &nest;
    fp.program = &program;
    fp.priv.assign(ncpus, {});

    // Over-approximate each CPU's touchable pages from its Run
    // records: the linear span (or wrap window) of every run,
    // widened by one line for coalescing slack and by the prefetch
    // distance for software-pipelined prefetch targets. Soundness
    // needs supersets — a page outside every other CPU's cover that
    // is inside mine is provably mine alone; widening can only
    // demote pages from private to shared (slower, never wrong).
    const std::uint64_t page_bytes = cfg.pageBytes;
    const std::int64_t line_slack = cfg.l2.lineBytes;
    std::vector<std::vector<PageInterval>> cover(ncpus);
    for (CpuId c = 0; c < ncpus; c++) {
        RunGenerator gen(program, nest, c, ncpus);
        Run run;
        while (gen.next(run)) {
            if (run.ref == nullptr || run.count == 0)
                continue; // compute-only: touches no memory
            std::int64_t lo, hi;
            if (run.wrapModBytes != 0) {
                std::int64_t mod = run.wrapModBytes < 0
                                       ? -run.wrapModBytes
                                       : run.wrapModBytes;
                lo = static_cast<std::int64_t>(run.wrapBase);
                hi = lo + mod;
            } else {
                auto first = static_cast<std::int64_t>(run.start);
                std::int64_t last =
                    first + run.strideBytes *
                                static_cast<std::int64_t>(run.count - 1);
                lo = std::min(first, last);
                hi = std::max(first, last);
            }
            std::int64_t slack = line_slack;
            if (run.ref->prefetchDistLines)
                slack += static_cast<std::int64_t>(
                             run.ref->prefetchDistLines) *
                         cfg.l2.lineBytes;
            lo -= slack;
            hi += slack;
            if (lo < 0)
                lo = 0;
            PageInterval pi;
            pi.lo = static_cast<PageNum>(lo) / page_bytes;
            pi.hi = static_cast<PageNum>(hi) / page_bytes + 1;
            cover[c].push_back(pi);
        }
        // Merge into sorted disjoint intervals.
        std::vector<PageInterval> &v = cover[c];
        std::sort(v.begin(), v.end(),
                  [](const PageInterval &a, const PageInterval &b) {
                      return a.lo < b.lo;
                  });
        std::size_t out = 0;
        for (std::size_t i = 0; i < v.size(); i++) {
            if (out > 0 && v[i].lo <= v[out - 1].hi)
                v[out - 1].hi = std::max(v[out - 1].hi, v[i].hi);
            else
                v[out++] = v[i];
        }
        v.resize(out);
    }

    // Sweep all CPUs' covers together; segments covered by exactly
    // one CPU become that CPU's exclusive intervals.
    struct Event
    {
        PageNum page;
        CpuId cpu;
        std::int8_t delta;
    };
    std::vector<Event> events;
    for (CpuId c = 0; c < ncpus; c++) {
        for (const PageInterval &pi : cover[c]) {
            events.push_back({pi.lo, c, +1});
            events.push_back({pi.hi, c, -1});
        }
    }
    std::sort(events.begin(), events.end(),
              [](const Event &a, const Event &b) {
                  return a.page < b.page;
              });
    std::uint32_t active_mask = 0;
    unsigned active_count = 0;
    PageNum prev = 0;
    for (std::size_t i = 0; i < events.size();) {
        PageNum page = events[i].page;
        if (active_count == 1 && page > prev) {
            auto owner = static_cast<CpuId>(
                std::countr_zero(active_mask));
            std::vector<PageInterval> &v = fp.priv[owner];
            if (!v.empty() && v.back().hi == prev)
                v.back().hi = page;
            else
                v.push_back({prev, page});
        }
        while (i < events.size() && events[i].page == page) {
            if (events[i].delta > 0) {
                active_mask |= 1u << events[i].cpu;
                active_count++;
            } else {
                active_mask &= ~(1u << events[i].cpu);
                active_count--;
            }
            i++;
        }
        prev = page;
    }
    return fp;
}

bool
MpSimulator::pagePrivateTo(const NestFootprint &fp, CpuId cpu,
                           VAddr va) const
{
    const std::vector<PageInterval> &v = fp.priv[cpu];
    PageNum page = va / cfg.pageBytes;
    auto it = std::upper_bound(
        v.begin(), v.end(), page,
        [](PageNum p, const PageInterval &pi) { return p < pi.lo; });
    return it != v.begin() && page < (it - 1)->hi;
}

bool
MpSimulator::lineIsLocal(const NestFootprint &fp, CpuId cpu,
                         const LineAccess &la,
                         MemorySystem::PrefetchLocality *pf) const
{
    *pf = MemorySystem::PrefetchLocality::No;
    if (la.elems == 0 || la.ref == nullptr)
        return true; // compute-only record: touches no memory

    if (!pagePrivateTo(fp, cpu, la.va))
        return false;
    MemAccess a;
    a.va = la.va;
    a.kind = la.isWrite ? AccessKind::Store : AccessKind::Load;
    a.wordMask = la.wordMask;
    if (!mem.isLocalAccess(cpu, a))
        return false;

    if (la.ref->prefetchDistLines) {
        std::uint64_t off = static_cast<std::uint64_t>(
                                la.ref->prefetchDistLines) *
                            cfg.l2.lineBytes;
        if (la.ref->prefetchLate)
            off = 0;
        VAddr pva = la.backward ? la.va - off : la.va + off;
        MemorySystem::PrefetchLocality k =
            mem.classifyLocalPrefetch(cpu, pva);
        if (k == MemorySystem::PrefetchLocality::No)
            return false;
        if (k == MemorySystem::PrefetchLocality::Present &&
            !pagePrivateTo(fp, cpu, pva))
            return false;
        *pf = k;
    }
    return true;
}

void
MpSimulator::commitLocalLine(CpuId cpu, const LineAccess &la,
                             MemorySystem::PrefetchLocality pf,
                             const SimOptions &opts)
{
    CpuExecStats &e = exec[cpu];

    Insts ni = la.insts + la.elems;
    if (ni) {
        clock[cpu] += ni;
        e.busy += ni;
        e.insts += ni;
    }

    if (la.elems == 0 || la.ref == nullptr)
        return; // compute-only record

    if (la.ref->prefetchDistLines) {
        // One issue slot for the prefetch instruction; a Drop or
        // Present prefetch never stalls (proof guaranteed).
        clock[cpu] += 1;
        e.busy += 1;
        e.insts += 1;
        mem.prefetchLocal(cpu, pf);
    }

    MemAccess a;
    a.va = la.va;
    a.kind = la.isWrite ? AccessKind::Store : AccessKind::Load;
    a.wordMask = la.wordMask;
    a.concurrentFaults = ncpus;
    AccessOutcome out = mem.accessLocal(cpu, a, clock[cpu]);
    clock[cpu] += out.stall;
    e.memStall += out.stall - out.kernel;
    e.kernel += out.kernel;

    if (opts.trace)
        opts.trace->note(cpu, la.va / cfg.pageBytes);
}

void
MpSimulator::runParallelNestEpoch(const Program &program,
                                  const LoopNest &nest,
                                  const SimOptions &opts,
                                  const std::string &phase_name,
                                  std::uint32_t nthreads)
{
    epochStats_.parallelNests++;
    ensureGang(nthreads);
    const NestFootprint &fp = footprintFor(program, nest);

    NestTimelineEntry entry;
    if (opts.timeline) {
        entry.phase = phase_name;
        entry.label = nest.label;
        entry.kind = NestKind::Parallel;
        entry.start = clock[0];
    }

    // Fork/dispatch cost on every CPU.
    for (CpuId c = 0; c < ncpus; c++) {
        clock[c] += cfg.forkCycles;
        exec[c].sync += cfg.forkCycles;
    }

    std::vector<RunCursor> cursors;
    cursors.reserve(ncpus);
    for (CpuId c = 0; c < ncpus; c++)
        cursors.emplace_back(program, nest, c, ncpus, cfg.l2.lineBytes);

    Cycles window = opts.epochWindow;
    if (window == 0)
        window = std::max<Cycles>(
            4096, 256 * mem.busMinTransactionCycles());

    // Per-CPU execution state. A CPU is Local while its next line
    // access is (believed) provably local, Deferred while that
    // access waits in the boundary queue, Done when its stream is
    // exhausted. Program order per CPU is absolute: a CPU never runs
    // past an unproven reference.
    enum class St : unsigned char
    {
        Local,
        Deferred,
        Done,
    };
    std::vector<St> state(ncpus, St::Local);
    std::vector<LineAccess> pending(ncpus);
    std::vector<Cycles> arrival(ncpus, 0);
    std::vector<std::uint8_t> inPq(ncpus, 0);
    std::vector<std::uint64_t> localByCpu(ncpus, 0);

    for (CpuId c = 0; c < ncpus; c++) {
        if (!cursors[c].next(pending[c])) {
            state[c] = St::Done;
            arrival[c] = clock[c];
        }
    }

    using QEntry = std::pair<Cycles, CpuId>;
    std::priority_queue<QEntry, std::vector<QEntry>, std::greater<>>
        pq;

    auto jobFor = [&](std::uint32_t worker, Cycles epoch_end) {
        for (CpuId c = worker; c < ncpus; c += nthreads) {
            if (state[c] != St::Local)
                continue;
            while (clock[c] < epoch_end) {
                MemorySystem::PrefetchLocality pf;
                if (!lineIsLocal(fp, c, pending[c], &pf)) {
                    state[c] = St::Deferred;
                    break;
                }
                commitLocalLine(c, pending[c], pf, opts);
                localByCpu[c]++;
                if (!cursors[c].next(pending[c])) {
                    state[c] = St::Done;
                    arrival[c] = clock[c];
                    break;
                }
            }
        }
    };

    for (;;) {
        // ---- Parallel phase: every Local CPU runs its provably-
        // local prefix inside the epoch window. ----
        Cycles horizon = 0;
        bool has_local = false;
        for (CpuId c = 0; c < ncpus; c++) {
            if (state[c] == St::Local) {
                horizon = has_local ? std::min(horizon, clock[c])
                                    : clock[c];
                has_local = true;
            }
        }
        if (has_local) {
            Cycles epoch_end = horizon + window;
            epochStats_.epochs++;
            gang_->run([&](std::uint32_t w) { jobFor(w, epoch_end); });
        }

        // ---- Boundary (single-threaded): reconcile. ----
        for (CpuId c = 0; c < ncpus; c++) {
            if (state[c] == St::Deferred && !inPq[c]) {
                pq.emplace(clock[c], c);
                inPq[c] = 1;
            }
        }
        horizon = 0;
        has_local = false;
        for (CpuId c = 0; c < ncpus; c++) {
            if (state[c] == St::Local) {
                horizon = has_local ? std::min(horizon, clock[c])
                                    : clock[c];
                has_local = true;
            }
        }
        if (pq.empty() && !has_local)
            break; // every stream exhausted

        // Drain deferred references in exact serial (clock, cpu)
        // order, but only strictly below the horizon: a Local CPU
        // parked at clock H may still defer a future reference at
        // (H, cpu), which must precede any queued (H, cpu') with
        // cpu' > cpu — strict < sidesteps the tie entirely.
        while (!pq.empty() &&
               (!has_local || pq.top().first < horizon)) {
            auto [t, c] = pq.top();
            pq.pop();
            inPq[c] = 0;
            panicIfNot(t == clock[c],
                       "boundary queue clock drifted for cpu ", c);
            executeLine(program, c, pending[c], ncpus, opts);
            epochStats_.deferredLines++;
            if (!cursors[c].next(pending[c])) {
                state[c] = St::Done;
                arrival[c] = clock[c];
                continue;
            }
            MemorySystem::PrefetchLocality pf;
            if (lineIsLocal(fp, c, pending[c], &pf)) {
                // Back to the fast path next phase. Its clock may
                // undercut the horizon — tighten it, or queued refs
                // above this CPU's future deferrals could jump the
                // serial order.
                state[c] = St::Local;
                horizon = has_local ? std::min(horizon, clock[c])
                                    : clock[c];
                has_local = true;
            } else {
                state[c] = St::Deferred;
                pq.emplace(clock[c], c);
                inPq[c] = 1;
            }
        }
    }

    for (CpuId c = 0; c < ncpus; c++)
        epochStats_.localLines += localByCpu[c];
    mem.commitMemoNotes();

    // Barrier: identical accounting to the serial engine.
    Cycles latest = *std::max_element(arrival.begin(), arrival.end());
    for (CpuId c = 0; c < ncpus; c++) {
        exec[c].imbalance += latest - arrival[c];
        clock[c] = latest + cfg.barrierCycles;
        exec[c].sync += cfg.barrierCycles;
    }
    barriers++;

    if (opts.timeline) {
        entry.cpuEnd = arrival;
        entry.end = clock[0];
        opts.timeline->push_back(std::move(entry));
    }
}

void
MpSimulator::runMasterNest(const Program &program, const LoopNest &nest,
                           const SimOptions &opts, bool suppressed,
                           const std::string &phase_name)
{
    NestTimelineEntry entry;
    if (opts.timeline) {
        entry.phase = phase_name;
        entry.label = nest.label;
        entry.kind = suppressed ? NestKind::Suppressed
                                : NestKind::Sequential;
        entry.start = clock[0];
        entry.cpuEnd.assign(ncpus, clock[0]);
    }

    RunCursor cursor(program, nest, 0, 1, cfg.l2.lineBytes);
    LineAccess la;
    while (cursor.next(la))
        executeLine(program, 0, la, 1, opts);
    idleUntil(clock[0],
              suppressed ? &CpuExecStats::suppressed
                         : &CpuExecStats::sequential,
              0);

    if (opts.timeline) {
        entry.cpuEnd[0] = clock[0];
        entry.end = clock[0];
        opts.timeline->push_back(std::move(entry));
    }
}

void
MpSimulator::runPhase(const Program &program, const Phase &phase,
                      const SimOptions &opts)
{
    for (const LoopNest &nest : phase.nests) {
        switch (nest.kind) {
          case NestKind::Parallel:
            runParallelNest(program, nest, opts, phase.name);
            break;
          case NestKind::Sequential:
            runMasterNest(program, nest, opts, false, phase.name);
            break;
          case NestKind::Suppressed:
            runMasterNest(program, nest, opts, true, phase.name);
            break;
        }
    }
}

void
MpSimulator::captureSnapshot(const SimOptions &opts)
{
    if (!opts.snapshots)
        return;
    obs::IntervalSnapshot snap;
    snap.seq = opts.snapshots->size();
    snap.cycles = *std::max_element(clock.begin(), clock.end());
    snap.cpus.reserve(ncpus);
    for (CpuId c = 0; c < ncpus; c++) {
        const CpuMemStats &s = mem.cpuStats(c);
        obs::CpuSnapshot cs;
        cs.refs = s.totalRefs();
        cs.l1Misses = s.l1Misses;
        cs.l2Misses = s.l2Misses;
        cs.missCount = s.missCount;
        snap.refs += cs.refs;
        snap.cpus.push_back(cs);
    }
    snap.colorPages = mem.addressSpace().mappedPagesPerColor();
    // Per-color set pressure and conflict attribution ride the same
    // cadence when a profiler is attached; unprofiled runs keep the
    // rows empty so their rendered output is unchanged.
    if (opts.profiler) {
        snap.colorOccupancy = mem.colorOccupancy();
        snap.colorConflicts = opts.profiler->colorConflicts();
    }

    // Mirror the sample into the trace as counter tracks: per-CPU
    // external-cache miss rate over the interval just ended.
    if (obs::traceActive() && obs::traceContext().simEvents) {
        const obs::IntervalSnapshot *prev =
            opts.snapshots->empty() ? nullptr
                                    : &opts.snapshots->back();
        obs::TraceArgs args;
        for (CpuId c = 0; c < ncpus; c++) {
            const obs::CpuSnapshot &cs = snap.cpus[c];
            std::uint64_t refs = cs.refs;
            std::uint64_t misses = cs.l2Misses;
            if (prev && c < prev->cpus.size()) {
                refs -= prev->cpus[c].refs;
                misses -= prev->cpus[c].l2Misses;
            }
            args.emplace_back(("cpu" + std::to_string(c)).c_str(),
                              refs ? static_cast<double>(misses) /
                                         static_cast<double>(refs)
                                   : 0.0);
        }
        obs::setSimCycles(snap.cycles);
        obs::counterEvent("l2MissRate", obs::traceContext().pid,
                          obs::traceContext().simNowUs, args);
    }

    opts.snapshots->push_back(std::move(snap));
}

RunTotals
MpSimulator::snapshot() const
{
    RunTotals t;
    t.cpus = exec;
    t.mem = mem.totalStats();
    t.bus = mem.busStats();
    t.wall = *std::max_element(clock.begin(), clock.end());
    t.barriers = barriers;
    return t;
}

WeightedTotals
MpSimulator::run(const Program &program, const SimOptions &opts)
{
    fatalIf(opts.measureRounds == 0, "measureRounds must be at least 1");

    if (opts.runInit) {
        SimOptions init_opts = opts;
        init_opts.trace = nullptr; // Figures 3/5 plot steady state only
        runPhase(program, program.init, init_opts);
    }

    WeightedTotals out;
    for (const Phase &phase : program.steady) {
        for (std::uint32_t w = 0; w < opts.warmupRounds; w++) {
            SimOptions warm_opts = opts;
            warm_opts.trace = nullptr;
            runPhase(program, phase, warm_opts);
        }
        RunTotals before = snapshot();
        for (std::uint32_t m = 0; m < opts.measureRounds; m++)
            runPhase(program, phase, opts);
        RunTotals after = snapshot();
        double weight = static_cast<double>(phase.occurrences) /
                        opts.measureRounds;
        out.add(before, after, weight);
    }
    return out;
}

void
MpSimulator::resetExecState()
{
    std::fill(clock.begin(), clock.end(), 0);
    std::fill(exec.begin(), exec.end(), CpuExecStats{});
    std::fill(ifetchDebt.begin(), ifetchDebt.end(), 0);
    std::fill(textCursor.begin(), textCursor.end(), 0);
    barriers = 0;
    sinceSnapshot = 0;
    epochStats_ = EpochStats{};
    footprints_.clear();
}

} // namespace cdpc
