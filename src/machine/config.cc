#include "machine/config.h"

#include "common/intmath.h"
#include "common/logging.h"
#include "machine/index_function.h"

namespace cdpc
{

IndexFunction
MachineConfig::indexFunction() const
{
    return IndexFunction(l2, pageBytes);
}

void
MachineConfig::validate() const
{
    fatalIf(numCpus == 0, "machine needs at least one CPU");
    fatalIf(!isPowerOf2(pageBytes), "page size must be a power of two");
    struct Named
    {
        const char *name;
        const CacheConfig *c;
    };
    for (const Named &n : {Named{"l1d", &l1d}, Named{"l1i", &l1i},
                           Named{"l2", &l2}}) {
        const CacheConfig *c = n.c;
        fatalIf(c->sizeBytes == 0, n.name,
                ": cache size must be nonzero");
        fatalIf(!isPowerOf2(c->lineBytes), n.name,
                ": cache line size must be a power of two, got ",
                c->lineBytes);
        fatalIf(c->assoc == 0, n.name,
                ": cache associativity must be nonzero");
        fatalIf(c->sizeBytes % (static_cast<std::uint64_t>(c->assoc) *
                                c->lineBytes) != 0,
                n.name,
                ": cache size must be a multiple of assoc * line size");
        fatalIf(c->slices == 0, n.name,
                ": slice/channel count must be nonzero");
        fatalIf(c->numSets() % c->slices != 0, n.name, ": slice count ",
                c->slices, " must divide the ", c->numSets(),
                " cache sets");
        switch (c->indexKind) {
          case IndexKind::Modulo:
            // Only bit-select indexing needs a power-of-two set
            // count; hash-indexed caches legitimately have non-pow2
            // slice counts (3-, 6-, 10-slice rings shipped).
            fatalIf(!isPowerOf2(c->numSets()), n.name,
                    ": number of cache sets must be a power of two, "
                    "got ", c->numSets());
            fatalIf(c->slices != 1, n.name,
                    ": modulo-indexed caches have exactly one slice");
            break;
          case IndexKind::SlicedHash:
            fatalIf(!isPowerOf2(c->setsPerSlice()), n.name,
                    ": sets per slice must be a power of two, got ",
                    c->setsPerSlice());
            break;
          case IndexKind::DramCache:
            fatalIf(c->assoc != 1, n.name,
                    ": a DRAM cache tier is direct-mapped (assoc 1)");
            break;
        }
        // Word masks track 8-byte words of a line in a 32-bit mask;
        // a wider line would silently alias false-sharing state.
        fatalIf(c->lineBytes > 256, n.name,
                ": cache line size above 256B overflows the 32-bit "
                "word mask");
    }
    fatalIf(l2.sizeBytes % (pageBytes * l2.assoc) != 0,
            "l2: external cache size must be a multiple of page size "
            "* assoc");
    fatalIf(numColors() == 0, "machine must have at least one page color");
    fatalIf(pageBytes % l2.lineBytes != 0,
            "page size must be a multiple of the external line size");
    fatalIf(physPages < numColors(),
            "physical memory must cover at least one page per color");
    // Unequal per-color free-list depths silently skew fallback and
    // pressure statistics toward the overfull colors, so a modulo
    // machine must slice physical memory into whole color cycles. A
    // hashed mapping's depths are inherently what the hash gives
    // (documented in DESIGN.md §16), but divisibility stays the
    // baseline sanity requirement there too.
    fatalIf(physPages % numColors() != 0, "physical pages (", physPages,
            ") must be a multiple of the ", numColors(),
            " page colors: the remainder would seed unequal per-color "
            "free lists and skew pressure statistics");
    if (l2.indexKind == IndexKind::SlicedHash) {
        fatalIf(l2.setsPerSlice() < linesPerPage(),
                "l2: a page (", linesPerPage(), " lines) must fit in "
                "one ", l2.setsPerSlice(), "-set slice");
    }
    if (l2.indexKind == IndexKind::DramCache) {
        fatalIf(numColors() % l2.slices != 0, "l2: channel count ",
                l2.slices, " must divide the ", numColors(),
                " page colors");
    }
    // Exercise every IndexFunction construction invariant too, so a
    // validated machine can never fail to build its mapping later.
    (void)indexFunction();
}

MachineConfig
MachineConfig::paperScaled(std::uint32_t ncpus)
{
    MachineConfig m;
    m.name = "simos-scaled-1MB-dm";
    m.numCpus = ncpus;
    m.l1d = {4 * 1024, 2, 64};
    m.l1i = {4 * 1024, 2, 64};
    m.l2 = {128 * 1024, 1, 64};
    m.pageBytes = 512;
    m.physPages = 64 * 1024; // 32MB of 512B pages, ample for scaled sets
    // 64B at the paper's 1.2GB/s is ~53ns ~ 21 cycles at 400MHz.
    m.busDataCycles = 22;
    m.busWritebackCycles = 22;
    m.busUpgradeCycles = 6;
    m.validate();
    return m;
}

MachineConfig
MachineConfig::paperScaledTwoWay(std::uint32_t ncpus)
{
    MachineConfig m = paperScaled(ncpus);
    m.name = "simos-scaled-1MB-2way";
    m.l2.assoc = 2;
    m.validate();
    return m;
}

MachineConfig
MachineConfig::paperScaledBig(std::uint32_t ncpus)
{
    MachineConfig m = paperScaled(ncpus);
    m.name = "simos-scaled-4MB-dm";
    m.l2.sizeBytes = 512 * 1024;
    m.validate();
    return m;
}

MachineConfig
MachineConfig::alphaScaled(std::uint32_t ncpus)
{
    // The AlphaServer 8400's 21164 has two on-chip levels and a 4MB
    // direct-mapped board cache. We model the on-chip hierarchy as a
    // single L1 and scale the board cache like everything else.
    MachineConfig m = paperScaled(ncpus);
    m.name = "alphaserver-scaled-4MB-dm";
    m.l2.sizeBytes = 512 * 1024;
    m.l1d = {8 * 1024, 2, 64};
    m.l1i = {8 * 1024, 2, 64};
    // The 21164's memory system is markedly faster relative to its
    // clock than the base SimOS model's.
    m.memLatencyCycles = 120;
    m.remoteDirtyLatencyCycles = 190;
    m.l2HitCycles = 8;
    m.validate();
    return m;
}

MachineConfig
MachineConfig::paperScaledSlicedHash(std::uint32_t ncpus)
{
    MachineConfig m = paperScaled(ncpus);
    m.name = "simos-scaled-slicedhash-3x64KB";
    // Three 64KB direct-mapped slices: 3072 sets, 1024 per slice,
    // 384 colors — both counts non-powers-of-two. The slice is an
    // XOR hash of the physical bits above the slice footprint.
    m.l2.sizeBytes = 3 * 64 * 1024;
    m.l2.indexKind = IndexKind::SlicedHash;
    m.l2.slices = 3;
    // 384 colors do not divide the base model's 64K pages; keep the
    // same ~32MB of memory in whole color cycles (170 * 384 pages).
    m.physPages = 65280;
    m.validate();
    return m;
}

MachineConfig
MachineConfig::dramCacheMode(std::uint32_t ncpus)
{
    MachineConfig m;
    m.name = "dram-cache-512c";
    m.numCpus = ncpus;
    m.l1d = {8 * 1024, 2, 64};
    m.l1i = {8 * 1024, 2, 64};
    // The "external cache" is a 2MB direct-mapped DRAM tier in front
    // of persistent memory: 512 page colors at 4KB pages, physical
    // pages interleaved across 4 channels.
    m.l2 = {2 * 1024 * 1024, 1, 64};
    m.l2.indexKind = IndexKind::DramCache;
    m.l2.slices = 4;
    m.pageBytes = 4096;
    m.physPages = 16 * 1024; // 64MB of 4KB pages
    // DRAM-tier hit is a DRAM access, not an SRAM one; the miss path
    // goes to persistent memory (~3x DRAM latency).
    m.l2HitCycles = 80;
    m.memLatencyCycles = 600;
    m.remoteDirtyLatencyCycles = 700;
    m.busDataCycles = 22;
    m.busWritebackCycles = 22;
    m.busUpgradeCycles = 6;
    m.validate();
    return m;
}

MachineConfig
MachineConfig::paperFull(std::uint32_t ncpus)
{
    MachineConfig m;
    m.name = "simos-full-1MB-dm";
    m.numCpus = ncpus;
    m.l1d = {32 * 1024, 2, 64};
    m.l1i = {32 * 1024, 2, 64};
    m.l2 = {1024 * 1024, 1, 128};
    m.pageBytes = 4096;
    m.physPages = 64 * 1024; // 256MB
    m.validate();
    return m;
}

} // namespace cdpc
