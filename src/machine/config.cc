#include "machine/config.h"

#include "common/intmath.h"
#include "common/logging.h"

namespace cdpc
{

void
MachineConfig::validate() const
{
    fatalIf(numCpus == 0, "machine needs at least one CPU");
    fatalIf(!isPowerOf2(pageBytes), "page size must be a power of two");
    for (const CacheConfig *c : {&l1d, &l1i, &l2}) {
        fatalIf(c->sizeBytes == 0, "cache size must be nonzero");
        fatalIf(!isPowerOf2(c->lineBytes),
                "cache line size must be a power of two");
        fatalIf(c->assoc == 0, "cache associativity must be nonzero");
        fatalIf(c->sizeBytes % (static_cast<std::uint64_t>(c->assoc) *
                                c->lineBytes) != 0,
                "cache size must be a multiple of assoc * line size");
        fatalIf(!isPowerOf2(c->numSets()),
                "number of cache sets must be a power of two");
        // Word masks track 8-byte words of a line in a 32-bit mask;
        // a wider line would silently alias false-sharing state.
        fatalIf(c->lineBytes > 256,
                "cache line size above 256B overflows the 32-bit "
                "word mask");
    }
    fatalIf(l2.sizeBytes % (pageBytes * l2.assoc) != 0,
            "external cache size must be a multiple of page size * assoc");
    fatalIf(numColors() == 0, "machine must have at least one page color");
    fatalIf(pageBytes % l2.lineBytes != 0,
            "page size must be a multiple of the external line size");
    fatalIf(physPages < numColors(),
            "physical memory must cover at least one page per color");
}

MachineConfig
MachineConfig::paperScaled(std::uint32_t ncpus)
{
    MachineConfig m;
    m.name = "simos-scaled-1MB-dm";
    m.numCpus = ncpus;
    m.l1d = {4 * 1024, 2, 64};
    m.l1i = {4 * 1024, 2, 64};
    m.l2 = {128 * 1024, 1, 64};
    m.pageBytes = 512;
    m.physPages = 64 * 1024; // 32MB of 512B pages, ample for scaled sets
    // 64B at the paper's 1.2GB/s is ~53ns ~ 21 cycles at 400MHz.
    m.busDataCycles = 22;
    m.busWritebackCycles = 22;
    m.busUpgradeCycles = 6;
    m.validate();
    return m;
}

MachineConfig
MachineConfig::paperScaledTwoWay(std::uint32_t ncpus)
{
    MachineConfig m = paperScaled(ncpus);
    m.name = "simos-scaled-1MB-2way";
    m.l2.assoc = 2;
    m.validate();
    return m;
}

MachineConfig
MachineConfig::paperScaledBig(std::uint32_t ncpus)
{
    MachineConfig m = paperScaled(ncpus);
    m.name = "simos-scaled-4MB-dm";
    m.l2.sizeBytes = 512 * 1024;
    m.validate();
    return m;
}

MachineConfig
MachineConfig::alphaScaled(std::uint32_t ncpus)
{
    // The AlphaServer 8400's 21164 has two on-chip levels and a 4MB
    // direct-mapped board cache. We model the on-chip hierarchy as a
    // single L1 and scale the board cache like everything else.
    MachineConfig m = paperScaled(ncpus);
    m.name = "alphaserver-scaled-4MB-dm";
    m.l2.sizeBytes = 512 * 1024;
    m.l1d = {8 * 1024, 2, 64};
    m.l1i = {8 * 1024, 2, 64};
    // The 21164's memory system is markedly faster relative to its
    // clock than the base SimOS model's.
    m.memLatencyCycles = 120;
    m.remoteDirtyLatencyCycles = 190;
    m.l2HitCycles = 8;
    m.validate();
    return m;
}

MachineConfig
MachineConfig::paperFull(std::uint32_t ncpus)
{
    MachineConfig m;
    m.name = "simos-full-1MB-dm";
    m.numCpus = ncpus;
    m.l1d = {32 * 1024, 2, 64};
    m.l1i = {32 * 1024, 2, 64};
    m.l2 = {1024 * 1024, 1, 128};
    m.pageBytes = 4096;
    m.physPages = 64 * 1024; // 256MB
    m.validate();
    return m;
}

} // namespace cdpc
