/**
 * @file
 * Execution statistics: the quantities behind the paper's Figure 2
 * (combined execution time, overhead breakdown, MCPI breakdown, bus
 * utilization) and the speedup/ratio tables.
 *
 * RunTotals is a raw integer snapshot of one execution segment.
 * WeightedTotals accumulates (after - before) deltas scaled by phase
 * occurrence weights — the paper's representative-execution-window
 * methodology, where each phase is simulated a few times and its
 * statistics weighted by how often it occurs in the steady state
 * (Section 3.3).
 */

#ifndef CDPC_MACHINE_STATS_H
#define CDPC_MACHINE_STATS_H

#include <array>
#include <cstdint>
#include <vector>

#include "common/types.h"
#include "mem/bus.h"
#include "mem/memsystem.h"

namespace cdpc
{

/** Per-CPU execution-side counters. */
struct CpuExecStats
{
    Insts insts = 0;
    /** Cycles spent executing instructions (single issue, 1 IPC). */
    Cycles busy = 0;
    /** Demand memory stall cycles (excludes kernel time). */
    Cycles memStall = 0;
    /** Kernel cycles: TLB refills and page faults. */
    Cycles kernel = 0;
    /** Cycles waiting at barriers for slower CPUs. */
    Cycles imbalance = 0;
    /** Cycles idle while the master runs unparallelized code. */
    Cycles sequential = 0;
    /** Cycles idle while the master runs suppressed parallel code. */
    Cycles suppressed = 0;
    /** Barrier and fork/dispatch costs. */
    Cycles sync = 0;

    Cycles
    total() const
    {
        return busy + memStall + kernel + imbalance + sequential +
               suppressed + sync;
    }
};

/** Raw snapshot of one execution segment. */
struct RunTotals
{
    std::vector<CpuExecStats> cpus;
    CpuMemStats mem;
    BusStats bus;
    /** Wall-clock cycles elapsed (all CPUs synchronized at ends). */
    Cycles wall = 0;
    std::uint64_t barriers = 0;
};

/**
 * Occurrence-weighted statistics, aggregated over CPUs.
 * All fields are in cycles (or counts) summed over the processors,
 * matching the paper's "combined execution time" metric.
 */
struct WeightedTotals
{
    double insts = 0;
    double busy = 0;
    double memStall = 0;
    double kernel = 0;
    double imbalance = 0;
    double sequential = 0;
    double suppressed = 0;
    double sync = 0;
    double wall = 0;
    double barriers = 0;

    double refs = 0;
    double l1Misses = 0;
    double l2Hits = 0;
    double l2Misses = 0;
    double pageFaults = 0;
    double tlbMisses = 0;

    double l2HitStall = 0;
    double prefetchLateStall = 0;
    double prefetchFullStall = 0;
    /** Indexed by MissKind. */
    std::array<double, 6> missCount{};
    std::array<double, 6> missStall{};

    double busDataBusy = 0;
    double busWritebackBusy = 0;
    double busUpgradeBusy = 0;
    double busQueueing = 0;

    double prefetchesIssued = 0;
    double prefetchesDropped = 0;
    double prefetchesUseful = 0;

    /** Accumulate (after - before) scaled by @p weight. */
    void add(const RunTotals &before, const RunTotals &after,
             double weight);

    /** Sum of all per-CPU time categories ("combined exec time"). */
    double
    combinedTime() const
    {
        return busy + memStall + kernel + imbalance + sequential +
               suppressed + sync;
    }

    /** Overheads portion of the combined time (Figure 2, graph 2). */
    double
    overheadTime() const
    {
        return kernel + imbalance + sequential + suppressed + sync;
    }

    /** Memory cycles per instruction during useful execution. */
    double mcpi() const { return insts > 0 ? memStall / insts : 0.0; }

    /** Fraction of wall-clock cycles the bus was occupied. */
    double
    busUtilization() const
    {
        double busy_cycles =
            busDataBusy + busWritebackBusy + busUpgradeBusy;
        return wall > 0 ? std::min(1.0, busy_cycles / wall) : 0.0;
    }

    double
    missStallOf(MissKind k) const
    {
        return missStall[static_cast<std::size_t>(k)];
    }

    double
    missCountOf(MissKind k) const
    {
        return missCount[static_cast<std::size_t>(k)];
    }

    /** Replacement-miss stall: cold + capacity + conflict. */
    double
    replacementStall() const
    {
        return missStallOf(MissKind::Cold) +
               missStallOf(MissKind::Capacity) +
               missStallOf(MissKind::Conflict);
    }

    /** Communication-miss stall: true + false sharing + upgrades. */
    double
    communicationStall() const
    {
        return missStallOf(MissKind::TrueSharing) +
               missStallOf(MissKind::FalseSharing) +
               missStallOf(MissKind::Upgrade);
    }
};

} // namespace cdpc

#endif // CDPC_MACHINE_STATS_H
