/**
 * @file
 * The shared split-transaction bus.
 *
 * The paper's machine has a 1.2GB/s split-transaction bus whose
 * contention is a first-order effect: "With 16 processors, the
 * average occupancy of the bus ranges from 50% to over 95% for five
 * of the ten benchmarks" (Section 4.1). We model the bus as a single
 * resource with per-transaction occupancy; a transaction issued while
 * the bus is busy queues behind it, lengthening the requester's miss
 * latency exactly the way the paper describes MCPI inflation under
 * contention.
 *
 * Occupancy is tracked per transaction category (data transfers,
 * writebacks, upgrades) so the harness can regenerate the Figure 2
 * bus-utilization breakdown.
 */

#ifndef CDPC_MEM_BUS_H
#define CDPC_MEM_BUS_H

#include <cstdint>

#include "common/types.h"

namespace cdpc
{

/** Bus transaction categories (Figure 2's utilization breakdown). */
enum class BusKind : unsigned char
{
    Data,      ///< request + reply line transfer
    Writeback, ///< dirty line written back to memory
    Upgrade,   ///< address-only ownership upgrade
};

/** Per-category occupancy accounting. */
struct BusStats
{
    std::uint64_t dataTxns = 0;
    std::uint64_t writebackTxns = 0;
    std::uint64_t upgradeTxns = 0;
    Cycles dataBusy = 0;
    Cycles writebackBusy = 0;
    Cycles upgradeBusy = 0;
    Cycles queueing = 0;

    Cycles totalBusy() const { return dataBusy + writebackBusy + upgradeBusy; }
    std::uint64_t totalTxns() const
    {
        return dataTxns + writebackTxns + upgradeTxns;
    }
};

/** Single shared bus with FIFO occupancy. */
class Bus
{
  public:
    /**
     * @param data_cycles   occupancy of one line transfer
     * @param wb_cycles     occupancy of one writeback
     * @param upgrade_cycles occupancy of one upgrade
     */
    Bus(Cycles data_cycles, Cycles wb_cycles, Cycles upgrade_cycles);

    /**
     * Acquire the bus for one transaction.
     *
     * @param kind transaction category
     * @param now  requester's current time
     * @return the cycle at which the transaction *starts* (>= now);
     *         the requester's added latency is (start - now) plus
     *         whatever service latency it models on top.
     */
    Cycles acquire(BusKind kind, Cycles now);

    /** The first cycle at which the bus will next be free. */
    Cycles freeAt() const { return nextFree; }

    /**
     * The shortest occupancy of any transaction category: a lower
     * bound on how quickly one CPU's bus activity can become visible
     * to another. The epoch-parallel engine derives its epoch window
     * from this (DESIGN.md §14); it paces the barriers and never
     * affects simulated output.
     */
    Cycles minTransactionCycles() const
    {
        Cycles m = dataCycles;
        if (wbCycles < m)
            m = wbCycles;
        if (upgradeCycles < m)
            m = upgradeCycles;
        return m;
    }

    const BusStats &stats() const { return stats_; }

    /**
     * Bus utilization over a window of @p window cycles (typically
     * the run's wall-clock span): busy cycles / window.
     */
    double utilization(Cycles window) const;

    void reset();

  private:
    Cycles dataCycles;
    Cycles wbCycles;
    Cycles upgradeCycles;
    Cycles nextFree = 0;
    BusStats stats_;
};

} // namespace cdpc

#endif // CDPC_MEM_BUS_H
