/**
 * @file
 * A generic set-associative cache tag array with true-LRU
 * replacement. It stores no data — the simulator only needs hit/miss
 * behaviour, per-line MESI state and dirty/writable bits.
 *
 * The same class models:
 *  - the virtually indexed on-chip caches (indexed by virtual
 *    address, tagged by physical line address), and
 *  - the physically indexed external caches (indexed and tagged by
 *    physical address) whose interaction with page colors is the
 *    whole subject of the paper.
 */

#ifndef CDPC_MEM_CACHE_H
#define CDPC_MEM_CACHE_H

#include <cstdint>
#include <vector>

#include "common/intmath.h"
#include "common/types.h"
#include "machine/config.h"
#include "machine/index_function.h"
#include "mem/mesi.h"

namespace cdpc
{

/** One cache line's bookkeeping. */
struct CacheLine
{
    /** Physical line address (paddr / lineBytes); tag identity. */
    Addr lineAddr = 0;
    Mesi state = Mesi::Invalid;
    /** L1 lines: was the line written since fill. */
    bool dirty = false;
    /** LRU timestamp (monotone per cache). */
    std::uint64_t lastUse = 0;
};

/** Basic hit/miss/eviction counters. */
struct CacheStats
{
    std::uint64_t accesses = 0;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t evictions = 0;
    std::uint64_t invalidations = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/**
 * Set-associative tag array.
 *
 * The caller supplies both the index address (virtual for L1,
 * physical for L2) and the physical line address used as the tag, so
 * one class covers both indexing schemes.
 */
class Cache
{
  public:
    /**
     * @param config geometry and index kind
     * @param page_bytes page size for color-aware index kinds; the
     *        virtually indexed L1s pass 0 (set indexing only)
     */
    explicit Cache(const CacheConfig &config,
                   std::uint64_t page_bytes = 0);

    /**
     * Look up a line.
     * @param index_addr address used for set selection
     * @param phys_line physical line address (tag match)
     * @return pointer to the line, or nullptr on miss.
     *         Updates LRU and hit/miss counters.
     */
    CacheLine *access(Addr index_addr, Addr phys_line);

    /** Look up without touching LRU or counters. */
    CacheLine *probe(Addr index_addr, Addr phys_line);
    const CacheLine *probe(Addr index_addr, Addr phys_line) const;

    /**
     * Insert a line (after a miss), evicting the set's LRU entry if
     * needed.
     * @param[out] victim filled with the evicted line when one was
     *             valid; untouched otherwise
     * @return pointer to the newly inserted line
     */
    CacheLine *insert(Addr index_addr, Addr phys_line, Mesi state,
                      CacheLine *victim = nullptr);

    /** Invalidate a specific line if present; @return true if it was. */
    bool invalidate(Addr index_addr, Addr phys_line);

    /** Invalidate everything (between experiment runs). */
    void reset();

    /** Visit every valid line (auditing / statistics walks). */
    template <typename F>
    void
    forEachValid(F &&fn) const
    {
        for (const CacheLine &l : lines) {
            if (mesiValid(l.state))
                fn(l);
        }
    }

    /** @return set index for an address (exposed for tests). */
    std::uint64_t
    setIndex(Addr index_addr) const
    {
        return idx.setOf(index_addr);
    }

    /** The cache's address→set / page→color mapping. */
    const IndexFunction &indexFunction() const { return idx; }

    /** @return physical line address for a physical byte address. */
    Addr lineAddrOf(Addr paddr) const { return paddr >> lineShift; }

    std::uint32_t lineBytes() const { return config.lineBytes; }
    std::uint64_t numSets() const { return config.numSets(); }
    std::uint32_t assoc() const { return config.assoc; }
    const CacheStats &stats() const { return stats_; }

  private:
    CacheConfig config;
    IndexFunction idx;
    unsigned lineShift;
    std::uint64_t useClock = 0;
    /** lines[set * assoc + way]. */
    std::vector<CacheLine> lines;
    CacheStats stats_;

    CacheLine *findInSet(std::uint64_t set, Addr phys_line);
};

} // namespace cdpc

#endif // CDPC_MEM_CACHE_H
