/**
 * @file
 * MESI coherence states for lines of the physically indexed external
 * caches. The simulated machine is a bus-based SMP with an
 * invalidation protocol, like the SGI machine SimOS models.
 */

#ifndef CDPC_MEM_MESI_H
#define CDPC_MEM_MESI_H

namespace cdpc
{

/** Classic MESI line states. */
enum class Mesi : unsigned char
{
    Invalid,
    Shared,
    Exclusive,
    Modified,
};

/** @return true when the state grants write permission. */
constexpr bool
mesiWritable(Mesi s)
{
    return s == Mesi::Exclusive || s == Mesi::Modified;
}

/** @return true when the state holds valid data. */
constexpr bool
mesiValid(Mesi s)
{
    return s != Mesi::Invalid;
}

/** @return a short name for tracing ("I", "S", "E", "M"). */
constexpr const char *
mesiName(Mesi s)
{
    switch (s) {
      case Mesi::Invalid:
        return "I";
      case Mesi::Shared:
        return "S";
      case Mesi::Exclusive:
        return "E";
      case Mesi::Modified:
        return "M";
    }
    return "?";
}

} // namespace cdpc

#endif // CDPC_MEM_MESI_H
