#include "mem/bus.h"

#include <algorithm>

#include "common/logging.h"
#include "obs/trace.h"

namespace cdpc
{

Bus::Bus(Cycles data_cycles, Cycles wb_cycles, Cycles upgrade_cycles)
    : dataCycles(data_cycles), wbCycles(wb_cycles),
      upgradeCycles(upgrade_cycles)
{
    fatalIf(data_cycles == 0 || wb_cycles == 0 || upgrade_cycles == 0,
            "bus occupancies must be nonzero");
}

Cycles
Bus::acquire(BusKind kind, Cycles now)
{
    Cycles start = std::max(now, nextFree);
    Cycles occ = 0;
    switch (kind) {
      case BusKind::Data:
        occ = dataCycles;
        stats_.dataTxns++;
        stats_.dataBusy += occ;
        break;
      case BusKind::Writeback:
        occ = wbCycles;
        stats_.writebackTxns++;
        stats_.writebackBusy += occ;
        break;
      case BusKind::Upgrade:
        occ = upgradeCycles;
        stats_.upgradeTxns++;
        stats_.upgradeBusy += occ;
        break;
    }
    stats_.queueing += start - now;
    nextFree = start + occ;
    if (start > now && obs::traceActive())
        obs::simInstantSampled(
            "busStall", 1024,
            {{"waitCycles", static_cast<std::uint64_t>(start - now)}});
    return start;
}

double
Bus::utilization(Cycles window) const
{
    if (window == 0)
        return 0.0;
    return std::min(1.0, static_cast<double>(stats_.totalBusy()) /
                             static_cast<double>(window));
}

void
Bus::reset()
{
    nextFree = 0;
    stats_ = BusStats{};
}

} // namespace cdpc
