/**
 * @file
 * Per-CPU TLB model: fully associative over virtual page numbers with
 * true-LRU replacement.
 *
 * TLB behaviour matters to the paper in two ways: TLB refills are the
 * dominant kernel overhead in Figure 2, and the R10000 drops
 * prefetches whose page is not mapped in the TLB — which is why
 * prefetching is ineffective for applu's large-stride accesses
 * (Section 6.2).
 */

#ifndef CDPC_MEM_TLB_H
#define CDPC_MEM_TLB_H

#include <cstdint>
#include <list>
#include <unordered_map>

#include "common/types.h"

namespace cdpc
{

/** TLB statistics. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/** Fully associative LRU TLB over virtual page numbers. */
class Tlb
{
  public:
    explicit Tlb(std::uint32_t entries);

    /**
     * Access the TLB for @p vpn; on a miss the entry is refilled
     * (evicting LRU).
     * @return true on hit, false on miss.
     */
    bool access(PageNum vpn);

    /** Check for presence without refilling or updating LRU. */
    bool contains(PageNum vpn) const;

    /** Drop one entry if present (shootdown); @return true if it was. */
    bool invalidate(PageNum vpn);

    /** Drop every entry (e.g. around a recoloring flush). */
    void flush();

    std::uint32_t capacity() const { return entries; }
    std::size_t size() const { return map.size(); }
    const TlbStats &stats() const { return stats_; }

  private:
    std::uint32_t entries;
    /** LRU order: front = most recent. */
    std::list<PageNum> lru;
    std::unordered_map<PageNum, std::list<PageNum>::iterator> map;
    TlbStats stats_;
};

} // namespace cdpc

#endif // CDPC_MEM_TLB_H
