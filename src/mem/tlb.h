/**
 * @file
 * Per-CPU TLB model: fully associative over virtual page numbers with
 * true-LRU replacement.
 *
 * TLB behaviour matters to the paper in two ways: TLB refills are the
 * dominant kernel overhead in Figure 2, and the R10000 drops
 * prefetches whose page is not mapped in the TLB — which is why
 * prefetching is ineffective for applu's large-stride accesses
 * (Section 6.2).
 *
 * The implementation is a fixed flat slot pool threaded into an
 * intrusive LRU list by slot index, with a flat open-addressing
 * index (vpn -> slot) for lookups: hits and refills are both O(1)
 * with no allocation, and the true-LRU policy is identical to the
 * previous list+unordered_map implementation (the equivalence suite
 * in tests/test_fastpath_equiv.cc checks them against each other on
 * randomized access/invalidate streams).
 *
 * Entries are addressed by slot so MemorySystem's translation
 * micro-cache can revalidate a memoized (vpn -> slot) pair with one
 * array read instead of any hash lookup (hitAt/residentAt).
 */

#ifndef CDPC_MEM_TLB_H
#define CDPC_MEM_TLB_H

#include <cstdint>
#include <vector>

#include "common/flat_hash.h"
#include "common/types.h"

namespace cdpc
{

/** TLB statistics. */
struct TlbStats
{
    std::uint64_t accesses = 0;
    std::uint64_t misses = 0;

    double
    missRate() const
    {
        return accesses ? static_cast<double>(misses) / accesses : 0.0;
    }
};

/** Fully associative LRU TLB over virtual page numbers. */
class Tlb
{
  public:
    explicit Tlb(std::uint32_t entries);

    /**
     * Access the TLB for @p vpn; on a miss the entry is refilled
     * (evicting true-LRU).
     * @param[out] slot_out when non-null, receives the slot now
     *             holding @p vpn (hit or refill) — the handle the
     *             translation micro-cache memoizes.
     * @return true on hit, false on miss.
     */
    bool access(PageNum vpn, std::uint32_t *slot_out = nullptr);

    /**
     * Fast-path revalidation: when slot @p slot still holds @p vpn,
     * count the access, touch LRU and return true; otherwise return
     * false WITHOUT counting (the caller then runs the full
     * access()). Equivalent to access() when it returns true.
     */
    bool
    hitAt(std::uint32_t slot, PageNum vpn)
    {
        Slot &e = slots[slot];
        if (!e.valid || e.vpn != vpn)
            return false;
        stats_.accesses++;
        if (slot != head) {
            unlink(slot);
            pushFront(slot);
        }
        return true;
    }

    /** Stat-free presence probe of one slot (prefetch fast path). */
    bool
    residentAt(std::uint32_t slot, PageNum vpn) const
    {
        const Slot &e = slots[slot];
        return e.valid && e.vpn == vpn;
    }

    /** Check for presence without refilling or updating LRU. */
    bool contains(PageNum vpn) const;

    /** Drop one entry if present (shootdown); @return true if it was. */
    bool invalidate(PageNum vpn);

    /** Drop every entry (e.g. around a recoloring flush). */
    void flush();

    std::uint32_t capacity() const { return entries; }
    std::size_t size() const { return index.size(); }
    const TlbStats &stats() const { return stats_; }

    /**
     * Audit the intrusive-LRU structure: the lru list and the flat
     * index must describe the same resident set, list links must be
     * symmetric, free-chain slots must be invalid, and every slot
     * must be accounted for exactly once. panic()s on violation.
     */
    void audit() const;

  private:
    static constexpr std::uint32_t kNil = ~std::uint32_t{0};

    /** One TLB entry threaded into the intrusive LRU list. */
    struct Slot
    {
        PageNum vpn = 0;
        std::uint32_t prev = kNil;
        std::uint32_t next = kNil;
        bool valid = false;
    };

    void unlink(std::uint32_t s);
    void pushFront(std::uint32_t s);

    std::uint32_t entries;
    std::vector<Slot> slots;
    /** Slots [used, entries) have never been filled. */
    std::uint32_t used = 0;
    std::uint32_t head = kNil; ///< most recently used
    std::uint32_t tail = kNil; ///< least recently used
    std::uint32_t freeHead = kNil; ///< chain of invalidated slots
    FlatHashMap<std::uint32_t> index; ///< vpn -> slot
    TlbStats stats_;
};

} // namespace cdpc

#endif // CDPC_MEM_TLB_H
