#include "mem/recolor.h"

#include <algorithm>

#include "common/logging.h"
#include "mem/memsystem.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "vm/physmem.h"
#include "vm/virtual_memory.h"

namespace cdpc
{

DynamicRecolorer::DynamicRecolorer(VirtualMemory &vm, PhysMem &phys,
                                   MemorySystem &mem,
                                   const RecolorConfig &config)
    : vm(vm), phys(phys), mem(mem), cfg(config),
      colorPressure(phys.numColors(), 0)
{
    fatalIf(cfg.missThreshold == 0,
            "recolor threshold must be nonzero");
}

Color
DynamicRecolorer::pickTargetColor(Color current) const
{
    // Prefer the emptiest color (fewest mapped pages, proxied by the
    // free count) so recolored pages spread out instead of piling
    // onto one conflict-cold color; break ties toward the color with
    // the least observed conflict pressure.
    Color best = current;
    std::uint64_t best_free = 0;
    std::uint64_t best_pressure = ~0ULL;
    for (Color c = 0; c < colorPressure.size(); c++) {
        if (c == current)
            continue;
        std::uint64_t free = phys.freePagesOfColor(c);
        if (free == 0)
            continue;
        if (free > best_free ||
            (free == best_free && colorPressure[c] < best_pressure)) {
            best_free = free;
            best_pressure = colorPressure[c];
            best = c;
        }
    }
    return best;
}

void
DynamicRecolorer::decay()
{
    for (auto &[vpn, count] : missCount)
        count /= 2;
    for (std::uint64_t &p : colorPressure)
        p /= 2;
}

Cycles
DynamicRecolorer::onConflictMiss(CpuId cpu, PageNum vpn, Cycles now)
{
    (void)now;
    stats_.conflictsObserved++;

    VAddr va = vpn * vm.pageBytes();
    if (!vm.isMapped(va))
        return 0;
    Color current = vm.colorOf(va);
    colorPressure[current]++;

    std::uint32_t &count = missCount[vpn];
    if (++count < cfg.missThreshold)
        return 0;
    count = 0;

    if (stats_.recolorings >= cfg.maxRecolorings)
        return 0;

    Color target = pickTargetColor(current);
    if (target == current) {
        stats_.recoloringsDenied++;
        return 0;
    }

    // The expensive part the paper warns about: purge the page from
    // every cache, shoot down every TLB, copy the contents.
    mem.purgePage(va);
    if (!vm.remap(vpn, target)) {
        stats_.recoloringsDenied++;
        return 0;
    }
    stats_.recolorings++;
    CDPC_METRIC_COUNT("recolor.moves", 1);
    if (obs::traceActive())
        obs::simInstant("recolor", {{"vpn", vpn},
                                    {"from", current},
                                    {"to", target},
                                    {"cpu", cpu}});
    if (cfg.decayEvery && stats_.recolorings % cfg.decayEvery == 0)
        decay();

    Cycles cost = cfg.copyCyclesPerPage +
                  static_cast<Cycles>(cfg.tlbShootdownCyclesPerCpu) *
                      mem.numCpus();
    stats_.overheadCycles += cost;
    return cost;
}

} // namespace cdpc
