#include "mem/cache.h"

#include "common/logging.h"

namespace cdpc
{

Cache::Cache(const CacheConfig &config, std::uint64_t page_bytes)
    : config(config),
      idx(config, page_bytes),
      lineShift(floorLog2(config.lineBytes)),
      lines(config.numLines())
{
    // Geometry validation (power-of-two lines, kind-specific set
    // constraints) happens in the IndexFunction constructor.
}

CacheLine *
Cache::findInSet(std::uint64_t set, Addr phys_line)
{
    // Direct-mapped (the configuration of the paper's base external
    // cache): one way, no scan.
    if (config.assoc == 1) {
        CacheLine &l = lines[set];
        return mesiValid(l.state) && l.lineAddr == phys_line ? &l
                                                            : nullptr;
    }
    CacheLine *base = &lines[set * config.assoc];
    for (std::uint32_t w = 0; w < config.assoc; w++) {
        CacheLine &l = base[w];
        if (mesiValid(l.state) && l.lineAddr == phys_line)
            return &l;
    }
    return nullptr;
}

CacheLine *
Cache::access(Addr index_addr, Addr phys_line)
{
    stats_.accesses++;
    CacheLine *l = findInSet(setIndex(index_addr), phys_line);
    if (l) {
        stats_.hits++;
        l->lastUse = ++useClock;
    } else {
        stats_.misses++;
    }
    return l;
}

CacheLine *
Cache::probe(Addr index_addr, Addr phys_line)
{
    return findInSet(setIndex(index_addr), phys_line);
}

const CacheLine *
Cache::probe(Addr index_addr, Addr phys_line) const
{
    return const_cast<Cache *>(this)->findInSet(setIndex(index_addr),
                                                phys_line);
}

CacheLine *
Cache::insert(Addr index_addr, Addr phys_line, Mesi state,
              CacheLine *victim)
{
    panicIfNot(mesiValid(state), "inserting an Invalid line");
    std::uint64_t set = setIndex(index_addr);
    panicIfNot(findInSet(set, phys_line) == nullptr,
               "inserting a line that is already present");
    // Prefer an invalid way; otherwise evict true-LRU. Direct-mapped
    // caches have exactly one candidate — no scan.
    CacheLine *slot;
    if (config.assoc == 1) {
        slot = &lines[set];
    } else {
        CacheLine *base = &lines[set * config.assoc];
        slot = nullptr;
        for (std::uint32_t w = 0; w < config.assoc; w++) {
            CacheLine &l = base[w];
            if (!mesiValid(l.state)) {
                slot = &l;
                break;
            }
            if (!slot || l.lastUse < slot->lastUse)
                slot = &l;
        }
    }

    if (mesiValid(slot->state)) {
        stats_.evictions++;
        if (victim)
            *victim = *slot;
    }

    slot->lineAddr = phys_line;
    slot->state = state;
    slot->dirty = false;
    slot->lastUse = ++useClock;
    return slot;
}

bool
Cache::invalidate(Addr index_addr, Addr phys_line)
{
    CacheLine *l = findInSet(setIndex(index_addr), phys_line);
    if (!l)
        return false;
    l->state = Mesi::Invalid;
    l->dirty = false;
    stats_.invalidations++;
    return true;
}

void
Cache::reset()
{
    for (CacheLine &l : lines)
        l = CacheLine{};
    useClock = 0;
    stats_ = CacheStats{};
}

} // namespace cdpc
