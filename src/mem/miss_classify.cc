#include "mem/miss_classify.h"

#include "common/logging.h"

namespace cdpc
{

const char *
missKindName(MissKind k)
{
    switch (k) {
      case MissKind::Cold:
        return "cold";
      case MissKind::Capacity:
        return "capacity";
      case MissKind::Conflict:
        return "conflict";
      case MissKind::TrueSharing:
        return "true-sharing";
      case MissKind::FalseSharing:
        return "false-sharing";
      case MissKind::Upgrade:
        return "upgrade";
    }
    return "unknown";
}

LruShadow::LruShadow(std::uint64_t capacity_lines)
    : capacityLines(capacity_lines),
      slots(static_cast<std::size_t>(capacity_lines)),
      index(static_cast<std::size_t>(capacity_lines))
{
    fatalIf(capacity_lines == 0, "LruShadow needs nonzero capacity");
}

void
LruShadow::unlink(std::uint32_t s)
{
    Slot &e = slots[s];
    if (e.prev != kNil)
        slots[e.prev].next = e.next;
    else
        head = e.next;
    if (e.next != kNil)
        slots[e.next].prev = e.prev;
    else
        tail = e.prev;
}

void
LruShadow::pushFront(std::uint32_t s)
{
    Slot &e = slots[s];
    e.prev = kNil;
    e.next = head;
    if (head != kNil)
        slots[head].prev = s;
    head = s;
    if (tail == kNil)
        tail = s;
}

bool
LruShadow::accessAndUpdate(Addr line)
{
    if (std::uint32_t *s = index.find(line)) {
        if (*s != head) {
            unlink(*s);
            pushFront(*s);
        }
        return true;
    }

    std::uint32_t s;
    if (used < capacityLines) {
        s = used++;
    } else {
        // Evict true-LRU: recycle the tail slot.
        s = tail;
        index.erase(slots[s].line);
        unlink(s);
    }
    slots[s].line = line;
    pushFront(s);
    index.insertOrAssign(line, s);
    return false;
}

bool
LruShadow::contains(Addr line) const
{
    return index.contains(line);
}

void
LruShadow::audit() const
{
    // The shadow never invalidates single lines, so every ever-used
    // slot is on the LRU list and indexed at its own position.
    std::uint64_t listed = 0;
    std::uint32_t prev = kNil;
    for (std::uint32_t s = head; s != kNil; s = slots[s].next) {
        panicIfNot(s < used, "shadow audit: list slot ", s,
                   " beyond used range ", used);
        const Slot &e = slots[s];
        panicIfNot(e.prev == prev,
                   "shadow audit: asymmetric links at slot ", s);
        const std::uint32_t *idx = index.find(e.line);
        panicIfNot(idx && *idx == s, "shadow audit: line ", e.line,
                   " in slot ", s, " not indexed there");
        listed++;
        panicIfNot(listed <= used, "shadow audit: LRU list cycles");
        prev = s;
    }
    panicIfNot(tail == prev,
               "shadow audit: tail does not end the list");
    panicIfNot(listed == used && listed == index.size(),
               "shadow audit: ", listed, " listed slots, ", used,
               " used, ", index.size(), " indexed lines");
}

void
LruShadow::reset()
{
    index.clear();
    used = 0;
    head = kNil;
    tail = kNil;
}

} // namespace cdpc
