#include "mem/miss_classify.h"

#include "common/logging.h"

namespace cdpc
{

const char *
missKindName(MissKind k)
{
    switch (k) {
      case MissKind::Cold:
        return "cold";
      case MissKind::Capacity:
        return "capacity";
      case MissKind::Conflict:
        return "conflict";
      case MissKind::TrueSharing:
        return "true-sharing";
      case MissKind::FalseSharing:
        return "false-sharing";
      case MissKind::Upgrade:
        return "upgrade";
    }
    return "unknown";
}

LruShadow::LruShadow(std::uint64_t capacity_lines)
    : capacityLines(capacity_lines)
{
    fatalIf(capacity_lines == 0, "LruShadow needs nonzero capacity");
    map.reserve(capacity_lines * 2);
}

bool
LruShadow::accessAndUpdate(Addr line)
{
    auto it = map.find(line);
    if (it != map.end()) {
        lru.splice(lru.begin(), lru, it->second);
        return true;
    }
    if (map.size() >= capacityLines) {
        map.erase(lru.back());
        lru.pop_back();
    }
    lru.push_front(line);
    map[line] = lru.begin();
    return false;
}

bool
LruShadow::contains(Addr line) const
{
    return map.contains(line);
}

void
LruShadow::reset()
{
    lru.clear();
    map.clear();
}

} // namespace cdpc
