#include "mem/tlb.h"

#include "common/logging.h"

namespace cdpc
{

Tlb::Tlb(std::uint32_t entries)
    : entries(entries), slots(entries), index(entries)
{
    fatalIf(entries == 0, "TLB needs at least one entry");
}

void
Tlb::unlink(std::uint32_t s)
{
    Slot &e = slots[s];
    if (e.prev != kNil)
        slots[e.prev].next = e.next;
    else
        head = e.next;
    if (e.next != kNil)
        slots[e.next].prev = e.prev;
    else
        tail = e.prev;
}

void
Tlb::pushFront(std::uint32_t s)
{
    Slot &e = slots[s];
    e.prev = kNil;
    e.next = head;
    if (head != kNil)
        slots[head].prev = s;
    head = s;
    if (tail == kNil)
        tail = s;
}

bool
Tlb::access(PageNum vpn, std::uint32_t *slot_out)
{
    stats_.accesses++;
    if (std::uint32_t *s = index.find(vpn)) {
        if (*s != head) {
            unlink(*s);
            pushFront(*s);
        }
        if (slot_out)
            *slot_out = *s;
        return true;
    }

    stats_.misses++;
    std::uint32_t s;
    if (freeHead != kNil) {
        s = freeHead;
        freeHead = slots[s].next;
    } else if (used < entries) {
        s = used++;
    } else {
        // Evict true-LRU: recycle the tail slot.
        s = tail;
        index.erase(slots[s].vpn);
        unlink(s);
    }
    slots[s].vpn = vpn;
    slots[s].valid = true;
    pushFront(s);
    index.insertOrAssign(vpn, s);
    if (slot_out)
        *slot_out = s;
    return false;
}

bool
Tlb::contains(PageNum vpn) const
{
    return index.contains(vpn);
}

bool
Tlb::invalidate(PageNum vpn)
{
    std::uint32_t *s = index.find(vpn);
    if (!s)
        return false;
    std::uint32_t slot = *s;
    index.erase(vpn);
    unlink(slot);
    slots[slot].valid = false;
    slots[slot].next = freeHead;
    freeHead = slot;
    return true;
}

void
Tlb::audit() const
{
    // Walk the LRU list head -> tail checking link symmetry and that
    // every listed slot is valid and indexed at its own position.
    std::uint64_t listed = 0;
    std::uint32_t prev = kNil;
    for (std::uint32_t s = head; s != kNil; s = slots[s].next) {
        panicIfNot(s < entries, "tlb audit: list slot ", s,
                   " out of range");
        const Slot &e = slots[s];
        panicIfNot(e.valid, "tlb audit: invalid slot ", s,
                   " on the LRU list");
        panicIfNot(e.prev == prev, "tlb audit: asymmetric links at "
                   "slot ", s);
        const std::uint32_t *idx = index.find(e.vpn);
        panicIfNot(idx && *idx == s, "tlb audit: vpn ", e.vpn,
                   " in slot ", s, " not indexed there");
        listed++;
        panicIfNot(listed <= entries, "tlb audit: LRU list cycles");
        prev = s;
    }
    panicIfNot(tail == prev, "tlb audit: tail does not end the list");
    panicIfNot(listed == index.size(), "tlb audit: ", listed,
               " listed slots but ", index.size(), " indexed vpns");

    // Free-chain slots must be invalid, and together with the listed
    // and never-used slots account for every slot exactly once.
    std::uint64_t freed = 0;
    for (std::uint32_t s = freeHead; s != kNil; s = slots[s].next) {
        panicIfNot(s < entries, "tlb audit: free slot ", s,
                   " out of range");
        panicIfNot(!slots[s].valid, "tlb audit: valid slot ", s,
                   " on the free chain");
        freed++;
        panicIfNot(freed <= entries, "tlb audit: free chain cycles");
    }
    panicIfNot(used <= entries && listed + freed == used,
               "tlb audit: slot accounting broken (", listed,
               " listed + ", freed, " free != ", used, " used)");
}

void
Tlb::flush()
{
    for (Slot &e : slots)
        e.valid = false;
    index.clear();
    used = 0;
    head = kNil;
    tail = kNil;
    freeHead = kNil;
}

} // namespace cdpc
