#include "mem/tlb.h"

#include "common/logging.h"

namespace cdpc
{

Tlb::Tlb(std::uint32_t entries) : entries(entries)
{
    fatalIf(entries == 0, "TLB needs at least one entry");
    map.reserve(entries * 2);
}

bool
Tlb::access(PageNum vpn)
{
    stats_.accesses++;
    auto it = map.find(vpn);
    if (it != map.end()) {
        lru.splice(lru.begin(), lru, it->second);
        return true;
    }
    stats_.misses++;
    if (map.size() >= entries) {
        map.erase(lru.back());
        lru.pop_back();
    }
    lru.push_front(vpn);
    map[vpn] = lru.begin();
    return false;
}

bool
Tlb::contains(PageNum vpn) const
{
    return map.contains(vpn);
}

bool
Tlb::invalidate(PageNum vpn)
{
    auto it = map.find(vpn);
    if (it == map.end())
        return false;
    lru.erase(it->second);
    map.erase(it);
    return true;
}

void
Tlb::flush()
{
    lru.clear();
    map.clear();
}

} // namespace cdpc
