#include "mem/tlb.h"

#include "common/logging.h"

namespace cdpc
{

Tlb::Tlb(std::uint32_t entries)
    : entries(entries), slots(entries), index(entries)
{
    fatalIf(entries == 0, "TLB needs at least one entry");
}

void
Tlb::unlink(std::uint32_t s)
{
    Slot &e = slots[s];
    if (e.prev != kNil)
        slots[e.prev].next = e.next;
    else
        head = e.next;
    if (e.next != kNil)
        slots[e.next].prev = e.prev;
    else
        tail = e.prev;
}

void
Tlb::pushFront(std::uint32_t s)
{
    Slot &e = slots[s];
    e.prev = kNil;
    e.next = head;
    if (head != kNil)
        slots[head].prev = s;
    head = s;
    if (tail == kNil)
        tail = s;
}

bool
Tlb::access(PageNum vpn, std::uint32_t *slot_out)
{
    stats_.accesses++;
    if (std::uint32_t *s = index.find(vpn)) {
        if (*s != head) {
            unlink(*s);
            pushFront(*s);
        }
        if (slot_out)
            *slot_out = *s;
        return true;
    }

    stats_.misses++;
    std::uint32_t s;
    if (freeHead != kNil) {
        s = freeHead;
        freeHead = slots[s].next;
    } else if (used < entries) {
        s = used++;
    } else {
        // Evict true-LRU: recycle the tail slot.
        s = tail;
        index.erase(slots[s].vpn);
        unlink(s);
    }
    slots[s].vpn = vpn;
    slots[s].valid = true;
    pushFront(s);
    index.insertOrAssign(vpn, s);
    if (slot_out)
        *slot_out = s;
    return false;
}

bool
Tlb::contains(PageNum vpn) const
{
    return index.contains(vpn);
}

bool
Tlb::invalidate(PageNum vpn)
{
    std::uint32_t *s = index.find(vpn);
    if (!s)
        return false;
    std::uint32_t slot = *s;
    index.erase(vpn);
    unlink(slot);
    slots[slot].valid = false;
    slots[slot].next = freeHead;
    freeHead = slot;
    return true;
}

void
Tlb::flush()
{
    for (Slot &e : slots)
        e.valid = false;
    index.clear();
    used = 0;
    head = kNil;
    tail = kNil;
    freeHead = kNil;
}

} // namespace cdpc
