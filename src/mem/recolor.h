/**
 * @file
 * Dynamic page recoloring — the alternative the paper chose *not* to
 * pursue, built here as an extension experiment.
 *
 * Section 2.1: "Recently dynamic policies have also been proposed
 * that recolor a page by copying its contents to a newly allocated
 * page of a different color ... To our knowledge, the performance of
 * dynamic policies for multiprocessors has not been studied. ...
 * The TLB state of each processor must be individually flushed and
 * the recoloring operation may generate significant inter-processor
 * communication."
 *
 * DynamicRecolorer implements the Bershad-style cache-miss-lookaside
 * idea in our framework: it observes conflict misses per virtual
 * page (the hardware detector's job), and when a page crosses a
 * miss threshold it is recolored — a new physical page of the
 * currently least-conflicted color is allocated, the mapping is
 * switched, every CPU's TLB entry is shot down and the page is
 * copied. All of those costs are charged to the CPU that triggered
 * the recoloring, using exactly the overheads the paper worries
 * about.
 */

#ifndef CDPC_MEM_RECOLOR_H
#define CDPC_MEM_RECOLOR_H

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"

namespace cdpc
{

class MemorySystem;
class PhysMem;
class VirtualMemory;

/** Tuning and cost parameters of the dynamic policy. */
struct RecolorConfig
{
    /** Conflict misses on one page before it is recolored. */
    std::uint32_t missThreshold = 64;
    /** Kernel cycles to copy one page (load+store per line). */
    Cycles copyCyclesPerPage = 600;
    /** Kernel cycles per CPU for the TLB shootdown. */
    Cycles tlbShootdownCyclesPerCpu = 150;
    /** Decay: halve all counters every this many recolorings. */
    std::uint32_t decayEvery = 64;
    /** Maximum recolorings (guards against ping-ponging forever). */
    std::uint64_t maxRecolorings = 1 << 20;
};

/** What the dynamic policy did during a run. */
struct RecolorStats
{
    std::uint64_t conflictsObserved = 0;
    std::uint64_t recolorings = 0;
    std::uint64_t recoloringsDenied = 0; ///< no page of the target color
    Cycles overheadCycles = 0;
};

/**
 * Conflict-miss-driven page recolorer.
 *
 * Wire it into a MemorySystem with setConflictObserver(); it then
 * sees every conflict-classified external-cache miss and may remap
 * the page on the spot.
 */
class DynamicRecolorer
{
  public:
    /**
     * @param vm address space whose mappings are rewritten (not owned)
     * @param phys allocator supplying new-color pages (not owned)
     * @param mem memory system whose caches/TLBs must be purged on a
     *        remap (not owned; also the observer source)
     */
    DynamicRecolorer(VirtualMemory &vm, PhysMem &phys, MemorySystem &mem,
                     const RecolorConfig &config = {});

    /**
     * Observer entry point: a conflict miss on @p vpn by @p cpu.
     * @return kernel cycles charged for any recoloring performed.
     */
    Cycles onConflictMiss(CpuId cpu, PageNum vpn, Cycles now);

    const RecolorStats &stats() const { return stats_; }

  private:
    VirtualMemory &vm;
    PhysMem &phys;
    MemorySystem &mem;
    RecolorConfig cfg;
    RecolorStats stats_;

    std::unordered_map<PageNum, std::uint32_t> missCount;
    /** Running conflict pressure per color, to pick cool targets. */
    std::vector<std::uint64_t> colorPressure;

    Color pickTargetColor(Color current) const;
    void decay();
};

} // namespace cdpc

#endif // CDPC_MEM_RECOLOR_H
